package repro

// One benchmark per table and figure of the paper's evaluation (Section
// VII), each exercising the same code path as the corresponding qbfbench
// suite at smoke scale, plus ablation benchmarks for the design choices
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// The absolute numbers here are for regression tracking; the properly
// scaled experiment (Table I counts, scatter CSVs, scaling series) is
// produced by cmd/qbfbench and recorded in EXPERIMENTS.md.

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dia"
	"repro/internal/models"
	"repro/internal/ncf"
	"repro/internal/prenex"
	"repro/internal/qbf"
)

var benchCfg = bench.Config{Timeout: 2 * time.Second, Workers: 1}

// lazily built instance sets, shared across benchmark iterations.
var (
	onceNCF   sync.Once
	ncfInsts  []bench.Instance
	onceFPV   sync.Once
	fpvInsts  []bench.Instance
	onceDIA   sync.Once
	diaInsts  []bench.Instance
	onceProb  sync.Once
	probInsts []bench.Instance
	onceFixed sync.Once
	fixInsts  []bench.Instance
)

func ncfSet() []bench.Instance {
	onceNCF.Do(func() {
		s := bench.ScaleSmoke
		all := bench.NCFSuite(s)
		// A spread of cells keeps the benchmark representative but quick.
		for i := 0; i < len(all); i += 10 {
			ncfInsts = append(ncfInsts, all[i])
		}
	})
	return ncfInsts
}

func fpvSet() []bench.Instance {
	onceFPV.Do(func() { fpvInsts = bench.FPVSuite(bench.ScaleSmoke) })
	return fpvInsts
}

func diaSet() []bench.Instance {
	onceDIA.Do(func() {
		all := bench.DIASuite(bench.ScaleSmoke)
		for i := 0; i < len(all); i += 3 {
			diaInsts = append(diaInsts, all[i])
		}
	})
	return diaInsts
}

func probSet() []bench.Instance {
	onceProb.Do(func() { probInsts = bench.EvalSuite(bench.ScaleSmoke, false) })
	return probInsts
}

func fixedSet() []bench.Instance {
	onceFixed.Do(func() { fixInsts = bench.EvalSuite(bench.ScaleSmoke, true) })
	return fixInsts
}

// benchTableRow runs a suite and aggregates one Table I row per iteration.
func benchTableRow(b *testing.B, insts []bench.Instance, strategy prenex.Strategy) {
	if len(insts) == 0 {
		b.Skip("suite empty at smoke scale")
	}
	b.ReportMetric(float64(len(insts)), "instances")
	for i := 0; i < b.N; i++ {
		results := bench.RunSuite(context.Background(), insts, benchCfg)
		row := bench.Aggregate("bench", results, strategy, bench.ScaleSmoke.Margin())
		if row.Total != len(insts) {
			b.Fatalf("aggregated %d of %d", row.Total, len(insts))
		}
	}
}

// Table I rows 1–4: the NCF suite under each prenexing strategy.

func BenchmarkTableI_NCF_EupAup(b *testing.B)     { benchTableRow(b, ncfSet(), prenex.EUpAUp) }
func BenchmarkTableI_NCF_EdownAdown(b *testing.B) { benchTableRow(b, ncfSet(), prenex.EDownADown) }
func BenchmarkTableI_NCF_EdownAup(b *testing.B)   { benchTableRow(b, ncfSet(), prenex.EDownAUp) }
func BenchmarkTableI_NCF_EupAdown(b *testing.B)   { benchTableRow(b, ncfSet(), prenex.EUpADown) }

// Table I row 5: the FPV suite.
func BenchmarkTableI_FPV(b *testing.B) { benchTableRow(b, fpvSet(), prenex.EUpAUp) }

// Table I row 6: the DIA suite.
func BenchmarkTableI_DIA(b *testing.B) { benchTableRow(b, diaSet(), prenex.EUpAUp) }

// Table I rows 7 and 8: the miniscoped QBFEVAL-style classes.
func BenchmarkTableI_PROB(b *testing.B)  { benchTableRow(b, probSet(), prenex.EUpAUp) }
func BenchmarkTableI_FIXED(b *testing.B) { benchTableRow(b, fixedSet(), prenex.EUpAUp) }

// Figure 3: median scatter of QUBE(PO) vs the ideal QUBE(TO)* on NCF.
func BenchmarkFig3_NCFScatter(b *testing.B) {
	insts := ncfSet()
	for i := 0; i < b.N; i++ {
		results := bench.RunSuite(context.Background(), insts, benchCfg)
		pts := bench.MedianScatter(results, prenex.EUpAUp, true)
		if len(pts) == 0 {
			b.Fatal("no scatter points")
		}
	}
}

// Figure 4: per-instance scatter on FPV.
func BenchmarkFig4_FPVScatter(b *testing.B) {
	insts := fpvSet()
	for i := 0; i < b.N; i++ {
		results := bench.RunSuite(context.Background(), insts, benchCfg)
		if pts := bench.Scatter(results, prenex.EUpAUp, false); len(pts) != len(insts) {
			b.Fatal("scatter size mismatch")
		}
	}
}

// Figure 5: per-instance scatter on DIA.
func BenchmarkFig5_DIAScatter(b *testing.B) {
	insts := diaSet()
	for i := 0; i < b.N; i++ {
		results := bench.RunSuite(context.Background(), insts, benchCfg)
		if pts := bench.Scatter(results, prenex.EUpAUp, false); len(pts) != len(insts) {
			b.Fatal("scatter size mismatch")
		}
	}
}

// Figure 6 (left): counter<N> scaling series, PO vs TO.
func BenchmarkFig6_CounterScaling(b *testing.B) {
	m := models.Counter(2)
	po := dia.SolverPO(context.Background(), core.Options{TimeLimit: benchCfg.Timeout})
	to := dia.SolverTO(context.Background(), prenex.EUpAUp, core.Options{TimeLimit: benchCfg.Timeout})
	for i := 0; i < b.N; i++ {
		if pts := bench.ScalingSeries(m, m.KnownDiameter+1, po); len(pts) == 0 {
			b.Fatal("empty PO series")
		}
		if pts := bench.ScalingSeries(m, m.KnownDiameter+1, to); len(pts) == 0 {
			b.Fatal("empty TO series")
		}
	}
}

// Figure 6 (right): semaphore<N> scaling series, PO vs TO.
func BenchmarkFig6_SemaphoreScaling(b *testing.B) {
	m := models.Semaphore(3)
	po := dia.SolverPO(context.Background(), core.Options{TimeLimit: benchCfg.Timeout})
	to := dia.SolverTO(context.Background(), prenex.EUpAUp, core.Options{TimeLimit: benchCfg.Timeout})
	for i := 0; i < b.N; i++ {
		if pts := bench.ScalingSeries(m, m.KnownDiameter+1, po); len(pts) == 0 {
			b.Fatal("empty PO series")
		}
		if pts := bench.ScalingSeries(m, m.KnownDiameter+1, to); len(pts) == 0 {
			b.Fatal("empty TO series")
		}
	}
}

// Figure 7: scatter on the miniscoped probabilistic + fixed classes.
func BenchmarkFig7_EvalScatter(b *testing.B) {
	insts := append(append([]bench.Instance{}, probSet()...), fixedSet()...)
	if len(insts) == 0 {
		b.Skip("eval suites empty at smoke scale")
	}
	for i := 0; i < b.N; i++ {
		results := bench.RunSuite(context.Background(), insts, benchCfg)
		if pts := bench.Scatter(results, prenex.EUpAUp, false); len(pts) != len(insts) {
			b.Fatal("scatter size mismatch")
		}
	}
}

// --- Ablations -----------------------------------------------------------

// Ablation: the ladder CNF conversion of φn against the naive coarse one.
// The ladder's per-step definition blocks let the solver commit to a break
// early; the coarse form forces a full universal assignment first.
func BenchmarkAblation_DiaLadder(b *testing.B) {
	m := models.DME(3)
	phi := dia.Phi(m, m.KnownDiameter-1)
	for i := 0; i < b.N; i++ {
		if r, _ := dia.SolverPO(context.Background(), core.Options{})(phi); r != core.True {
			b.Fatal(r)
		}
	}
}

func BenchmarkAblation_DiaCoarse(b *testing.B) {
	m := models.DME(3)
	phi := dia.PhiCoarse(m, m.KnownDiameter-1)
	for i := 0; i < b.N; i++ {
		if r, _ := dia.SolverPO(context.Background(), core.Options{})(phi); r != core.True {
			b.Fatal(r)
		}
	}
}

// Ablation: cube (good) learning on the solution-heavy DIA instances.
func BenchmarkAblation_CubeLearningOn(b *testing.B) {
	phi := dia.Phi(models.Semaphore(2), 2)
	for i := 0; i < b.N; i++ {
		core.MustSolve(context.Background(), phi, core.Options{})
	}
}

func BenchmarkAblation_CubeLearningOff(b *testing.B) {
	phi := dia.Phi(models.Semaphore(2), 2)
	for i := 0; i < b.N; i++ {
		core.MustSolve(context.Background(), phi, core.Options{DisableCubeLearning: true})
	}
}

// Ablation: clause (nogood) learning on a false DIA instance.
func BenchmarkAblation_ClauseLearningOn(b *testing.B) {
	phi := dia.Phi(models.DME(3), 3) // n = diameter: false
	for i := 0; i < b.N; i++ {
		core.MustSolve(context.Background(), phi, core.Options{})
	}
}

func BenchmarkAblation_ClauseLearningOff(b *testing.B) {
	phi := dia.Phi(models.DME(3), 3)
	for i := 0; i < b.N; i++ {
		core.MustSolve(context.Background(), phi, core.Options{DisableClauseLearning: true})
	}
}

// Ablation: pure literal fixing on an NCF instance.
func BenchmarkAblation_PureOn(b *testing.B) {
	q := ncf.Generate(ncf.Params{Dep: 4, Var: 8, Cls: 16, Lpc: 3, Seed: 3})
	for i := 0; i < b.N; i++ {
		core.MustSolve(context.Background(), q, core.Options{})
	}
}

func BenchmarkAblation_PureOff(b *testing.B) {
	q := ncf.Generate(ncf.Params{Dep: 4, Var: 8, Cls: 16, Lpc: 3, Seed: 3})
	for i := 0; i < b.N; i++ {
		core.MustSolve(context.Background(), q, core.Options{DisablePureLiterals: true})
	}
}

// Microbenchmarks of the substrate.

func BenchmarkMicro_UniversalReduce(b *testing.B) {
	p := qbf.NewPrenexPrefix(60,
		qbf.Run{Quant: qbf.Exists, Vars: seqVars(1, 20)},
		qbf.Run{Quant: qbf.Forall, Vars: seqVars(21, 40)},
		qbf.Run{Quant: qbf.Exists, Vars: seqVars(41, 60)})
	c := qbf.Clause{1, -25, 30, 45, -50, 15, -38}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(qbf.UniversalReduce(p, c)) == 0 {
			b.Fatal("unexpected empty reduction")
		}
	}
}

func BenchmarkMicro_PrenexApply(b *testing.B) {
	q := ncf.Generate(ncf.Params{Dep: 5, Var: 8, Cls: 16, Lpc: 3, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := prenex.Apply(q, prenex.EUpAUp); !r.Prefix.IsPrenex() {
			b.Fatal("not prenex")
		}
	}
}

func BenchmarkMicro_Miniscope(b *testing.B) {
	q := prenex.Apply(ncf.Generate(ncf.Params{Dep: 4, Var: 8, Cls: 16, Lpc: 3, Seed: 2}), prenex.EUpAUp)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := prenex.Miniscope(q); m == nil {
			b.Fatal("nil result")
		}
	}
}

func seqVars(from, to int) []qbf.Var {
	out := make([]qbf.Var, 0, to-from+1)
	for v := from; v <= to; v++ {
		out = append(out, qbf.Var(v))
	}
	return out
}
