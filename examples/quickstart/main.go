// Quickstart: build a non-prenex QBF with the library API, decide it with
// the partial-order engine (QUBE(PO)), and round-trip it through the QTREE
// text format.
//
// The example formula is
//
//	∃x1 ( ∀y2 ∃x3 (x3 ≡ y2) ∧ ∀y4 ∃x5 ((x5 ≡ y4) ∧ (x1 ∨ x5)) )
//
// whose two ∀∃ subtrees are incomparable — exactly the structure a prenex
// conversion would destroy.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/qbf"
	"repro/internal/qdimacs"
)

func main() {
	// Build the quantifier tree: variables are integers from 1; blocks are
	// attached to their parent scope.
	p := qbf.NewPrefix(5)
	root := p.AddBlock(nil, qbf.Exists, 1)
	left := p.AddBlock(root, qbf.Forall, 2)
	p.AddBlock(left, qbf.Exists, 3)
	right := p.AddBlock(root, qbf.Forall, 4)
	p.AddBlock(right, qbf.Exists, 5)

	// The CNF matrix. Positive literals are variable indices, negative
	// literals negated indices, as in DIMACS.
	matrix := []qbf.Clause{
		{2, -3}, {-2, 3}, // x3 ≡ y2
		{4, -5}, {-4, 5}, // x5 ≡ y4
		{1, 5}, // x1 ∨ x5
	}
	formula := qbf.New(p, matrix)

	fmt.Println("formula:", formula)
	fmt.Println("prenex?", formula.Prefix.IsPrenex())

	// Decide it. The zero Options value runs the full QUBE(PO)
	// configuration: partial-order heuristic, clause and cube learning,
	// pure literal fixing.
	res, err := core.Solve(context.Background(), formula, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("result:", res.Verdict)
	fmt.Printf("effort: %d decisions, %d propagations, %d learned constraints\n",
		res.Stats.Decisions, res.Stats.Propagations, res.Stats.LearnedClauses+res.Stats.LearnedCubes)

	// Serialize to the QTREE text format and read it back.
	text, err := qdimacs.WriteString(formula)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nQTREE serialization:")
	os.Stdout.WriteString(text)

	again, err := qdimacs.ReadString(text)
	if err != nil {
		log.Fatal(err)
	}
	r2, err := core.Solve(context.Background(), again, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nround-tripped result:", r2.Verdict)
}
