// Miniscoping prenex QBFs (Section VII.D): take prenex instances, minimize
// the scope of every quantifier, keep the ones whose recovered tree makes
// at least 20% of the ∃/∀ variable pairs incomparable (footnote 9), and
// compare solving the original prenex form with QUBE(TO) against the
// recovered tree with QUBE(PO) — the Figure 7 experiment in miniature.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/randqbf"
)

func main() {
	kept, dropped := 0, 0
	var poTotal, toTotal time.Duration

	for _, p := range randqbf.ProbSuite(3) {
		original := randqbf.Prob(p)
		tree, share, keep := randqbf.MiniscopeFilter(original, 0.2)
		if !keep {
			dropped++
			continue
		}
		kept++

		opt := core.Options{TimeLimit: 10 * time.Second}
		opt.Mode = core.ModePartialOrder
		start := time.Now()
		resPO, err := core.Solve(context.Background(), tree, opt)
		if err != nil {
			log.Fatal(err)
		}
		rPO := resPO.Verdict
		dPO := time.Since(start)

		opt.Mode = core.ModeTotalOrder
		start = time.Now()
		resTO, err := core.Solve(context.Background(), original, opt)
		if err != nil {
			log.Fatal(err)
		}
		rTO := resTO.Verdict
		dTO := time.Since(start)

		if rPO != core.Unknown && rTO != core.Unknown && rPO != rTO {
			log.Fatalf("%v: PO=%v TO=%v disagree", p, rPO, rTO)
		}
		poTotal += dPO
		toTotal += dTO
		fmt.Printf("%-24s share=%.2f  %-6s PO=%-10v TO=%v\n",
			p, share, rPO, dPO.Round(time.Microsecond), dTO.Round(time.Microsecond))
	}

	fmt.Printf("\nfootnote-9 filter: kept %d, dropped %d (most prenex instances do not decompose)\n",
		kept, dropped)
	fmt.Printf("total time on kept instances: PO %v, TO %v\n",
		poTotal.Round(time.Millisecond), toTotal.Round(time.Millisecond))
}
