// Diameter calculation (Section VII.C): compute the state-space diameter
// of the bundled symbolic models through the QBF formulation φn, with both
// the partial-order solver on the natural non-prenex form and the
// total-order solver on the ∃↑∀↑ prenex form, and cross-check against
// explicit-state BFS.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dia"
	"repro/internal/models"
	"repro/internal/prenex"
)

func main() {
	cases := []*models.Model{
		models.TwoBit(),     // the paper's worked example: diameter 2
		models.Counter(2),   // diameter 2^2−1 = 3
		models.Semaphore(3), // diameter 3 regardless of size
		models.DME(4),       // diameter 4 (token ring)
		models.Ring(4),      // asynchronous inverter ring
	}
	budget := core.Options{TimeLimit: 30 * time.Second}

	for _, m := range cases {
		bfs, err := models.ExplicitDiameter(m, 14)
		if err != nil {
			log.Fatal(err)
		}

		po := dia.ComputeDiameter(m, bfs+2, dia.SolverPO(context.Background(), budget))
		to := dia.ComputeDiameter(m, bfs+2, dia.SolverTO(context.Background(), prenex.EUpAUp, budget))

		fmt.Printf("%-11s BFS=%d  QBF/PO=%s  QBF/TO=%s\n",
			m.Name, bfs, render(po), render(to))
		if po.Decided && po.Diameter != bfs {
			log.Fatalf("%s: PO diameter %d disagrees with BFS %d", m.Name, po.Diameter, bfs)
		}
		if to.Decided && to.Diameter != bfs {
			log.Fatalf("%s: TO diameter %d disagrees with BFS %d", m.Name, to.Diameter, bfs)
		}

		// Per-step detail for the last model solved: the data behind one
		// Figure 6 line.
		if m.Name == "dme4" {
			fmt.Println("  per-step times (PO):")
			for _, st := range po.Steps {
				fmt.Printf("    φ%-2d %-6s %8v  (%d vars, %d clauses)\n",
					st.N, st.Result, st.Stats.Time.Round(time.Microsecond), st.Vars, st.Clauses)
			}
		}
	}
}

func render(r dia.Result) string {
	if !r.Decided {
		return "timeout"
	}
	total := time.Duration(0)
	for _, st := range r.Steps {
		total += st.Stats.Time
	}
	return fmt.Sprintf("%d (%v)", r.Diameter, total.Round(time.Millisecond))
}
