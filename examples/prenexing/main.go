// Prenexing strategies (Section V): reproduce the paper's equation (10) —
// the four prenex-optimal strategies of Egly et al. applied to formula (9)
// — and then compare QUBE(PO) against QUBE(TO) under each strategy on a
// nested-counterfactual instance, the Table I / Figure 3 experiment in
// miniature.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/ncf"
	"repro/internal/prenex"
	"repro/internal/qbf"
)

func main() {
	// Formula (9): ∃x(∀y1∃x1∀y2∃x2 ϕ0 ∧ ∀y1'∃x1' ϕ1 ∧ ∃x1'' ϕ2), numbered
	// x=1, y1=2, x1=3, y2=4, x2=5, y1'=6, x1'=7, x1''=8.
	p := qbf.NewPrefix(8)
	x := p.AddBlock(nil, qbf.Exists, 1)
	y1 := p.AddBlock(x, qbf.Forall, 2)
	x1 := p.AddBlock(y1, qbf.Exists, 3)
	y2 := p.AddBlock(x1, qbf.Forall, 4)
	p.AddBlock(y2, qbf.Exists, 5)
	y1p := p.AddBlock(x, qbf.Forall, 6)
	p.AddBlock(y1p, qbf.Exists, 7)
	p.AddBlock(x, qbf.Exists, 8)
	nine := qbf.New(p, []qbf.Clause{
		{1, 2, -3, 4, 5}, {-2, 3, -5},
		{1, -6, 7}, {6, -7},
		{-1, 8},
	})

	fmt.Println("formula (9) tree prefix:", nine.Prefix)
	fmt.Println("\nequation (10) — the four prenex-optimal prefixes:")
	for _, s := range prenex.Strategies {
		pr := prenex.Apply(nine, s)
		fmt.Printf("  %-12s %v\n", s, pr.Prefix)
	}

	// Now the behavioral comparison on a nested-counterfactual instance.
	inst := ncf.Generate(ncf.Params{Dep: 4, Var: 8, Cls: 24, Lpc: 3, Seed: 11})
	fmt.Printf("\nNCF instance: %d vars, %d clauses, prefix level %d, PO/TO share %.2f\n",
		inst.Stats().Vars, inst.Stats().Clauses, inst.Prefix.MaxLevel(),
		prenex.POTOShare(inst))

	solve := func(q *qbf.QBF, mode core.Mode) (core.Verdict, time.Duration) {
		start := time.Now()
		r, err := core.Solve(context.Background(), q, core.Options{Mode: mode, TimeLimit: 20 * time.Second})
		if err != nil {
			log.Fatal(err)
		}
		return r.Verdict, time.Since(start)
	}

	rPO, tPO := solve(inst, core.ModePartialOrder)
	fmt.Printf("  QUBE(PO) on the tree:        %-6s in %v\n", rPO, tPO.Round(time.Microsecond))
	for _, s := range prenex.Strategies {
		r, t := solve(prenex.Apply(inst, s), core.ModeTotalOrder)
		fmt.Printf("  QUBE(TO) with %-12s %-6s in %v\n", fmt.Sprint(s, ":"), r, t.Round(time.Microsecond))
		if r != core.Unknown && rPO != core.Unknown && r != rPO {
			log.Fatalf("strategy %v disagrees with PO", s)
		}
	}
}
