// Command qbfstat reports structural statistics of a QBF instance read
// from a file or stdin (QDIMACS or QTREE): variable/clause counts, prefix
// level, block structure, the PO/TO share of footnote 9, and the effect of
// miniscoping and preprocessing. With -dot it emits the quantifier tree in
// Graphviz format instead.
//
// The trace subcommand summarizes a JSONL solver-event trace written by
// qbfsolve/qbfbench/qbfd with -trace: total events, per-kind and
// per-worker counts, the decision distribution over prefix depth, and —
// for qbfd traces with the session journal enabled — the journal line
// (appends, recovered sessions, compactions, truncated bytes, degrades).
//
// Usage:
//
//	qbfstat [-miniscope] [-preprocess] [-dot] [file]
//	qbfstat trace [trace.jsonl]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/prenex"
	"repro/internal/preprocess"
	"repro/internal/qbf"
	"repro/internal/qdimacs"
	"repro/internal/telemetry"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		runTrace(os.Args[2:])
		return
	}
	doMini := flag.Bool("miniscope", false, "also report the miniscoped form")
	doPrep := flag.Bool("preprocess", false, "also report the preprocessed form")
	doDot := flag.Bool("dot", false, "emit the quantifier tree as Graphviz DOT and exit")
	flag.Parse()

	var (
		q   *qbf.QBF
		err error
	)
	if path := flag.Arg(0); path == "" || path == "-" {
		q, err = qdimacs.Read(os.Stdin)
	} else {
		f, ferr := os.Open(path)
		if ferr != nil {
			fail(ferr)
		}
		defer f.Close()
		q, err = qdimacs.Read(f)
	}
	if err != nil {
		fail(err)
	}

	if *doDot {
		if err := qbf.WriteDOT(os.Stdout, q); err != nil {
			fail(err)
		}
		return
	}

	report("input", q)
	if *doMini {
		report("miniscoped", prenex.Miniscope(q))
	}
	if *doPrep {
		if isTrue, decided := preprocess.TrivialTruth(context.Background(), q, 2*time.Second); decided {
			fmt.Printf("trivial truth: DECIDED %v (Cadoli et al. [15])\n", isTrue)
		}
		if isFalse, decided := preprocess.TrivialFalsity(context.Background(), q, 2*time.Second); decided {
			fmt.Printf("trivial falsity: DECIDED false=%v\n", isFalse)
		}
		out, res := preprocess.Run(q, preprocess.Options{})
		if res.Decided {
			fmt.Printf("preprocessed: DECIDED %v (units=%d pures=%d reduced=%d)\n",
				res.Value, res.UnitsAssigned, res.PuresAssigned, res.LiteralsReduced)
		} else {
			report("preprocessed", out)
			fmt.Printf("  units=%d pures=%d reduced-literals=%d tautologies=%d duplicates=%d subsumed=%d\n",
				res.UnitsAssigned, res.PuresAssigned, res.LiteralsReduced,
				res.TautologiesGone, res.DuplicatesGone, res.Subsumed)
		}
	}
}

// runTrace implements `qbfstat trace [file]`: replay a JSONL event trace
// and print its summary. A corrupt line (truncated write, unknown event
// kind) fails with its line number rather than summarizing silently
// wrong numbers.
func runTrace(args []string) {
	fs := flag.NewFlagSet("qbfstat trace", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: qbfstat trace [trace.jsonl]")
		fs.PrintDefaults()
	}
	fs.Parse(args) //nolint:errcheck // ExitOnError
	in := os.Stdin
	if path := fs.Arg(0); path != "" && path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	sum, err := telemetry.Summarize(in)
	if err != nil {
		fail(err)
	}
	sum.WriteText(os.Stdout)
}

func report(label string, q *qbf.QBF) {
	s := q.Stats()
	fmt.Printf("%s: vars=%d (∃%d ∀%d) clauses=%d literals=%d level=%d blocks=%d prenex=%v po/to-share=%.3f\n",
		label, s.Vars, s.Existentials, s.Universals, s.Clauses, s.Literals,
		s.PrefixLevel, s.Blocks, s.Prenex, prenex.POTOShare(q))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qbfstat:", err)
	os.Exit(1)
}
