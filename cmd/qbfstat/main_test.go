package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// The CLI tests re-execute the test binary as qbfstat (TestMain dispatches
// to main when the marker variable is set), mirroring the qbfsolve harness.

func TestMain(m *testing.M) {
	if os.Getenv("QBFSTAT_TEST_RUN_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func runCLI(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "QBFSTAT_TEST_RUN_MAIN=1")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	code = 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("re-exec failed: %v", err)
	}
	return out.String(), errb.String(), code
}

// TestTraceRoundTrip emits a known mix of events through the JSONL sink and
// checks that `qbfstat trace` replays exactly those counts: the emit side
// and the replay side agree on the wire format.
func TestTraceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := telemetry.NewJSONLSink(f)
	tr := telemetry.New(sink, nil)
	counts := map[telemetry.Kind]int{
		telemetry.KindDecision: 7,
		telemetry.KindConflict: 3,
		telemetry.KindLearn:    3,
		telemetry.KindImport:   2,
		telemetry.KindStop:     1,
	}
	for w := int32(0); w < 2; w++ {
		wt := tr.Fork(int(w), 0)
		for kind, n := range counts {
			for i := 0; i < n; i++ {
				wt.Emit(kind, i, 1+i%3, int64(i), 0)
			}
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	stdout, stderr, code := runCLI(t, "trace", path)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr)
	}
	total := 0
	for kind, n := range counts {
		total += 2 * n
		want := fmt.Sprintf("%-10s %d", kind, 2*n)
		if !strings.Contains(stdout, want) {
			t.Errorf("summary lacks %q:\n%s", want, stdout)
		}
	}
	if want := fmt.Sprintf("events=%d workers=2", total); !strings.Contains(stdout, want) {
		t.Errorf("summary lacks %q:\n%s", want, stdout)
	}
	for w := 0; w < 2; w++ {
		want := fmt.Sprintf("worker %-3d %d", w, total/2)
		if !strings.Contains(stdout, want) {
			t.Errorf("summary lacks %q:\n%s", want, stdout)
		}
	}
}

// TestTraceRejectsCorruptInput: a truncated line must fail with a
// positioned error, not a silently wrong summary.
func TestTraceRejectsCorruptInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	content := `{"t":1,"ev":"decision","w":0,"g":0,"lvl":1,"d":1,"a":5,"b":0}` + "\n" + `{"t":2,"ev":"dec`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stderr, code := runCLI(t, "trace", path)
	if code != 1 || !strings.Contains(stderr, "line 2") {
		t.Fatalf("exit %d stderr %q, want exit 1 naming line 2", code, stderr)
	}
}

// TestStructuralReportStillWorks guards the subcommand dispatch: plain
// instance statistics must be unaffected by the trace subcommand.
func TestStructuralReportStillWorks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.qdimacs")
	qdimacs := "p cnf 2 2\na 1 0\ne 2 0\n1 2 0\n-1 2 0\n"
	if err := os.WriteFile(path, []byte(qdimacs), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, stderr, code := runCLI(t, path)
	if code != 0 || !strings.Contains(stdout, "input: vars=2") {
		t.Fatalf("exit %d stdout %q stderr %q, want a structural report", code, stdout, stderr)
	}
}

// TestTraceSummarizesGateKinds: route/hedge/cachehit events from a qbfgate
// trace produce the per-backend counts, hedge win rate, and cache hit
// ratio lines — golden strings, so the report format cannot drift
// silently.
func TestTraceSummarizesGateKinds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gate.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := telemetry.NewJSONLSink(f)
	tr := telemetry.New(sink, nil)
	// 5 routes to backend 0 (one a failover), 3 to backend 1; 2 hedges
	// resolved, 1 won by the hedge; 4 cache lookups, 3 hits.
	for i := 0; i < 4; i++ {
		tr.Emit(telemetry.KindRoute, 0, 0, 0, 0)
	}
	tr.Emit(telemetry.KindRoute, 0, 0, 0, 1) // failover attempt to backend 0
	for i := 0; i < 3; i++ {
		tr.Emit(telemetry.KindRoute, 0, 0, 1, 0)
	}
	tr.Emit(telemetry.KindHedge, 0, 0, 1, 1)
	tr.Emit(telemetry.KindHedge, 0, 0, 0, 1)
	tr.Emit(telemetry.KindCacheHit, 0, 0, 1, 1)
	tr.Emit(telemetry.KindCacheHit, 0, 0, 1, 2)
	tr.Emit(telemetry.KindCacheHit, 0, 0, 1, 3)
	tr.Emit(telemetry.KindCacheHit, 0, 0, 0, 3)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	stdout, stderr, code := runCLI(t, "trace", path)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr)
	}
	for _, want := range []string{
		"backend 0   5",
		"backend 1   3",
		"failovers  1",
		"hedge-wins 1/2 (50.0%)",
		"cache-hits 3/4 (75.0%)",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("summary lacks %q:\n%s", want, stdout)
		}
	}
}
