// Command qdia computes the state-space diameter of one of the bundled
// symbolic models through the QBF formulation of Section VII.C: it solves
// φ0, φ1, … until the first false formula, whose index is the diameter.
//
// Example:
//
//	qdia -model counter -size 3 -solver po -timeout 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dia"
	"repro/internal/models"
	"repro/internal/prenex"
)

func main() {
	model := flag.String("model", "counter", "model family: counter, ring, semaphore, dme, twobit, gray, shift, arbiter")
	size := flag.Int("size", 3, "model size parameter")
	solver := flag.String("solver", "po", "solver: po (tree) or to (prenex ∃↑∀↑)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-φn time limit")
	maxN := flag.Int("maxn", 64, "give up beyond this path length")
	verify := flag.Bool("verify", false, "cross-check with explicit-state BFS (small models)")
	flag.Parse()

	m, err := pickModel(*model, *size)
	if err != nil {
		fail(err)
	}

	var solve dia.SolveFunc
	switch *solver {
	case "po":
		solve = dia.SolverPO(context.Background(), core.Options{TimeLimit: *timeout})
	case "to":
		solve = dia.SolverTO(context.Background(), prenex.EUpAUp, core.Options{TimeLimit: *timeout})
	default:
		fail(fmt.Errorf("unknown solver %q", *solver))
	}

	res := dia.ComputeDiameter(m, *maxN, solve)
	for _, st := range res.Steps {
		fmt.Printf("phi_%-3d %-7s vars=%-5d clauses=%-6d decisions=%-8d time=%v\n",
			st.N, st.Result, st.Vars, st.Clauses, st.Stats.Decisions, st.Stats.Time.Round(time.Microsecond))
	}
	if !res.Decided {
		fmt.Printf("%s: UNDECIDED within budget (last n=%d)\n", m.Name, len(res.Steps)-1)
		os.Exit(1)
	}
	fmt.Printf("%s: diameter = %d\n", m.Name, res.Diameter)

	if *verify {
		d, err := models.ExplicitDiameter(m, 20)
		if err != nil {
			fail(err)
		}
		if d != res.Diameter {
			fail(fmt.Errorf("BFS disagrees: %d vs QBF %d", d, res.Diameter))
		}
		fmt.Printf("%s: BFS cross-check OK (%d)\n", m.Name, d)
	}
}

func pickModel(name string, size int) (*models.Model, error) {
	switch name {
	case "counter":
		return models.Counter(size), nil
	case "ring":
		return models.Ring(size), nil
	case "semaphore":
		return models.Semaphore(size), nil
	case "dme":
		return models.DME(size), nil
	case "twobit":
		return models.TwoBit(), nil
	case "gray":
		return models.GrayCounter(size), nil
	case "shift":
		return models.ShiftRegister(size), nil
	case "arbiter":
		return models.Arbiter(size), nil
	}
	return nil, fmt.Errorf("unknown model %q", name)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qdia:", err)
	os.Exit(1)
}
