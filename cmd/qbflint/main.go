// Command qbflint runs the project's static analysis rules over Go source
// files. It is stdlib-only and wired into scripts/check.sh as part of the
// verification gate.
//
// Usage:
//
//	qbflint [flags] [patterns...]
//
// Patterns are ./... (recursive), directories, or .go files; the default
// is ./... from the current directory. Exit status: 0 when clean, 1 when
// findings were reported, 2 on usage or processing errors.
//
// Flags:
//
//	-json            emit findings as a JSON array instead of text
//	-list            list the available rules and exit
//	-enable  L1,L2   run only the named rules
//	-disable L3      drop the named rules from the set
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(argv []string) int {
	fl := flag.NewFlagSet("qbflint", flag.ContinueOnError)
	jsonOut := fl.Bool("json", false, "emit findings as JSON")
	list := fl.Bool("list", false, "list available rules and exit")
	enable := fl.String("enable", "", "comma-separated rules to run (default: all)")
	disable := fl.String("disable", "", "comma-separated rules to skip")
	if err := fl.Parse(argv); err != nil {
		return 2
	}

	if *list {
		for _, r := range lint.DefaultRules() {
			fmt.Printf("%s  %s\n", r.Name(), r.Doc())
		}
		return 0
	}

	patterns := fl.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	runner, err := lint.NewRunner(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "qbflint:", err)
		return 2
	}
	runner.Rules = lint.RulesByName(splitList(*enable), splitList(*disable))
	if len(runner.Rules) == 0 {
		fmt.Fprintln(os.Stderr, "qbflint: no rules selected")
		return 2
	}

	findings, err := runner.Run(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qbflint:", err)
		return 2
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "qbflint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
