// Command qbflint runs the project's static analysis rules over Go source
// files. It is stdlib-only and wired into scripts/check.sh as part of the
// verification gate.
//
// Usage:
//
//	qbflint [flags] [patterns...]
//
// Patterns are ./... (recursive), directories, or .go files; the default
// is ./... from the current directory. Every pattern is type-checked with
// go/types before the rules run, so the typed rules (L9-L12) see real
// type information. Exit status: 0 when clean, 1 when findings were
// reported, 2 on usage or processing errors. Warnings (//lint:allow
// directives naming unknown rules) go to stderr and do not affect the
// exit status.
//
// Flags:
//
//	-json            emit the report as JSON ({"findings":[...],"warnings":[...]})
//	-list            list the available rules and exit
//	-enable  L1,L2   run only the named rules
//	-disable L3      drop the named rules from the set
//	-gate hotpath    run the L13 allocation gate over the pattern dirs
//	                 instead of the lint rules (see internal/lint/escape)
//	-gcflags flags   compiler flags for the gate build (default "-m -m")
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/escape"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("qbflint", flag.ContinueOnError)
	fl.SetOutput(stderr)
	jsonOut := fl.Bool("json", false, "emit the report as JSON")
	list := fl.Bool("list", false, "list available rules and exit")
	enable := fl.String("enable", "", "comma-separated rules to run (default: all)")
	disable := fl.String("disable", "", "comma-separated rules to skip")
	gate := fl.String("gate", "", `run a compiler-assisted gate instead of the lint rules ("hotpath")`)
	gcflags := fl.String("gcflags", "", `compiler flags for -gate hotpath (default "-m -m")`)
	if err := fl.Parse(argv); err != nil {
		return 2
	}

	if *list {
		for _, r := range lint.DefaultRules() {
			fmt.Fprintf(stdout, "%s  %s\n", r.Name(), r.Doc())
		}
		fmt.Fprintf(stdout, "L13  %s-annotated functions must not allocate (compiler escape analysis; run via -gate hotpath)\n", escape.Directive)
		return 0
	}

	runner, err := lint.NewRunner(".")
	if err != nil {
		fmt.Fprintln(stderr, "qbflint:", err)
		return 2
	}

	switch *gate {
	case "":
		// fall through to the lint rules below
	case "hotpath":
		return runGate(fl.Args(), runner.ModuleRoot, *gcflags, *jsonOut, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "qbflint: unknown gate %q (have: hotpath)\n", *gate)
		return 2
	}

	patterns := fl.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	runner.Rules = lint.RulesByName(splitList(*enable), splitList(*disable))
	if len(runner.Rules) == 0 {
		fmt.Fprintln(stderr, "qbflint: no rules selected")
		return 2
	}

	report, err := runner.Run(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "qbflint:", err)
		return 2
	}

	if *jsonOut {
		if report.Findings == nil {
			report.Findings = []lint.Finding{}
		}
		if report.Warnings == nil {
			report.Warnings = []lint.Finding{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, "qbflint:", err)
			return 2
		}
	} else {
		for _, f := range report.Findings {
			fmt.Fprintln(stdout, f)
		}
	}
	for _, w := range report.Warnings {
		fmt.Fprintln(stderr, "qbflint: warning:", w)
	}
	if len(report.Findings) > 0 {
		return 1
	}
	return 0
}

// runGate executes the L13 hot-path allocation gate over the given
// package directories. Exit status mirrors the lint mode: 0 clean (or
// skipped with a stderr warning), 1 on violations, 2 on errors.
func runGate(dirs []string, moduleRoot, gcflags string, jsonOut bool, stdout, stderr io.Writer) int {
	if len(dirs) == 0 {
		fmt.Fprintln(stderr, "qbflint: -gate hotpath needs package directories (e.g. ./internal/core)")
		return 2
	}
	rep, err := escape.Gate(dirs, escape.Config{ModuleRoot: moduleRoot, Gcflags: gcflags})
	if err != nil {
		fmt.Fprintln(stderr, "qbflint:", err)
		return 2
	}
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "qbflint:", err)
			return 2
		}
	} else {
		for _, v := range rep.Violations {
			fmt.Fprintln(stdout, v)
		}
	}
	if rep.Skipped {
		fmt.Fprintln(stderr, "qbflint: warning: hotpath gate skipped:", rep.SkipReason)
		return 0
	}
	if len(rep.Violations) > 0 {
		return 1
	}
	fmt.Fprintf(stderr, "qbflint: hotpath gate: %d annotated function(s) clean (%d compiler diagnostics inspected)\n",
		len(rep.Funcs), rep.Diagnostics)
	return 0
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
