package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a fixture module and chdirs into it: run()
// resolves the module root from the working directory exactly as the
// real invocation from scripts/check.sh does.
func writeTree(t *testing.T, files map[string]string) {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module repro\n\ngo 1.22\n"
	for path, src := range files {
		full := filepath.Join(root, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(root)
}

// seededTree holds violations in two files whose walk order (b before z,
// models before telemetry) the golden output locks down.
func seededTree(t *testing.T) {
	writeTree(t, map[string]string{
		"internal/models/z.go": "package models\n\nfunc f() {\n\tpanic(\"one\")\n}\n",
		"internal/models/b.go": "package models\n\nfunc g() {\n\tpanic(\"two\")\n\tpanic(\"three\")\n}\n",
	})
}

func TestRunTextOutputIsDeterministicallyOrdered(t *testing.T) {
	seededTree(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("findings = %d, want 3:\n%s", len(lines), stdout.String())
	}
	// b.go's two findings in line order, then z.go.
	wantOrder := []struct{ file, pos string }{
		{"internal/models/b.go", ":4:"},
		{"internal/models/b.go", ":5:"},
		{"internal/models/z.go", ":4:"},
	}
	for i, w := range wantOrder {
		if !strings.Contains(lines[i], filepath.FromSlash(w.file)) || !strings.Contains(lines[i], w.pos) {
			t.Fatalf("line %d = %q, want %s%s", i, lines[i], w.file, w.pos)
		}
	}
	// A second run must produce byte-identical output.
	var again bytes.Buffer
	if code := run([]string{"./..."}, &again, &stderr); code != 1 {
		t.Fatalf("second run exit = %d", code)
	}
	if again.String() != stdout.String() {
		t.Fatalf("output not deterministic:\n--- first\n%s--- second\n%s", stdout.String(), again.String())
	}
}

func TestRunJSONShape(t *testing.T) {
	seededTree(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	var rep struct {
		Findings []struct {
			Rule string `json:"rule"`
			File string `json:"file"`
			Line int    `json:"line"`
			Col  int    `json:"col"`
		} `json:"findings"`
		Warnings []any `json:"warnings"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("output is not the report object: %v\n%s", err, stdout.String())
	}
	if len(rep.Findings) != 3 || rep.Findings[0].Rule != "L3" {
		t.Fatalf("findings = %+v", rep.Findings)
	}
	if rep.Warnings == nil {
		t.Fatal("warnings key must be present (empty array, not null)")
	}
}

func TestRunCleanTreeAndJSONEmptyArrays(t *testing.T) {
	writeTree(t, map[string]string{
		"internal/models/x.go": "package models\n\nfunc ok() {}\n",
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, `"findings": []`) || !strings.Contains(out, `"warnings": []`) {
		t.Fatalf("clean JSON must carry empty arrays:\n%s", out)
	}
}

func TestRunUnknownAllowWarnsOnStderrButExitsZero(t *testing.T) {
	writeTree(t, map[string]string{
		"internal/models/x.go": "package models\n\n//lint:allow L99 typo\nfunc ok() {}\n",
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0 (warnings are not findings); stderr: %s", code, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("warnings must not pollute stdout: %s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "warning") || !strings.Contains(stderr.String(), "L99") {
		t.Fatalf("stderr = %q, want an unknown-rule warning", stderr.String())
	}
}

func TestListIncludesGateRule(t *testing.T) {
	writeTree(t, map[string]string{})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	out := stdout.String()
	for _, rule := range []string{"L1", "L9", "L10", "L11", "L12", "L13"} {
		if !strings.Contains(out, rule+"  ") {
			t.Fatalf("-list output missing %s:\n%s", rule, out)
		}
	}
}

func TestUnknownGateIsUsageError(t *testing.T) {
	writeTree(t, map[string]string{})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-gate", "nope", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "hotpath") {
		t.Fatalf("stderr should name the available gates: %s", stderr.String())
	}
}

func TestGateModeEndToEnd(t *testing.T) {
	writeTree(t, map[string]string{
		"hot/hot.go": `package hot

//qbf:hotpath
func Leak() *int {
	n := 41
	return &n
}
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-gate", "hotpath", "./hot"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "[L13]") || !strings.Contains(stdout.String(), "Leak") {
		t.Fatalf("stdout = %q", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-gate", "hotpath", "-json", "./hot"}, &stdout, &stderr); code != 1 {
		t.Fatalf("json gate exit = %d, want 1", code)
	}
	var rep struct {
		Violations []struct {
			Func string `json:"func"`
		} `json:"violations"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("gate -json output: %v\n%s", err, stdout.String())
	}
	if len(rep.Violations) != 1 || rep.Violations[0].Func != "Leak" {
		t.Fatalf("violations = %+v", rep.Violations)
	}
}

func TestGateModeNeedsDirs(t *testing.T) {
	writeTree(t, map[string]string{})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-gate", "hotpath"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
