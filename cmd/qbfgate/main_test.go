package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/result"
	"repro/internal/server"
)

// The gate tests run qbfgate end to end: the test binary re-executes
// itself as the real command (TestMain dispatches to main when the marker
// variable is set), with an in-process stub standing in for the qbfd
// backend fleet.

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata")

func TestMain(m *testing.M) {
	if os.Getenv("QBFGATE_TEST_RUN_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// fakeBackend is a minimal qbfd: green health endpoints and a /solve that
// answers TRUE, counting hits.
func fakeBackend(t *testing.T) (*httptest.Server, *int64) {
	t.Helper()
	var hits int64
	var mu sync.Mutex
	mux := http.NewServeMux()
	ok := func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) }
	mux.HandleFunc("/healthz", ok)
	mux.HandleFunc("/readyz", ok)
	mux.HandleFunc("/solve", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hits++
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(server.SolveResponse{Verdict: result.True.String()}) //nolint:errcheck
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, &hits
}

type gateProc struct {
	cmd      *exec.Cmd
	addr     string
	scanDone chan struct{}

	mu     sync.Mutex
	stderr bytes.Buffer
}

var listenLine = regexp.MustCompile(`listening on (127\.0\.0\.1:\d+)`)

func startGate(t *testing.T, extra ...string) *gateProc {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	g := &gateProc{cmd: exec.Command(os.Args[0], args...), scanDone: make(chan struct{})}
	g.cmd.Env = append(os.Environ(), "QBFGATE_TEST_RUN_MAIN=1")
	pipe, err := g.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if g.cmd.ProcessState == nil {
			g.cmd.Process.Kill() //nolint:errcheck // last-resort teardown
			g.cmd.Wait()         //nolint:errcheck
		}
	})
	addrCh := make(chan string, 1)
	go func() {
		defer close(g.scanDone)
		sc := bufio.NewScanner(pipe)
		for sc.Scan() {
			line := sc.Text()
			g.mu.Lock()
			g.stderr.WriteString(line)
			g.stderr.WriteByte('\n')
			g.mu.Unlock()
			if m := listenLine.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		g.addr = "http://" + addr
	case <-time.After(10 * time.Second):
		t.Fatal("qbfgate never printed its listening line")
	}
	return g
}

func (g *gateProc) wait(t *testing.T) int {
	t.Helper()
	select {
	case <-g.scanDone:
	case <-time.After(30 * time.Second):
		t.Fatal("stderr never reached EOF")
	}
	err := g.cmd.Wait()
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	return 0
}

func (g *gateProc) stderrText() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stderr.String()
}

func postSolve(t *testing.T, url, body string) (int, server.SolveResponse) {
	t.Helper()
	resp, err := http.Post(url+"/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	defer resp.Body.Close()
	var out server.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp.StatusCode, out
}

var portField = regexp.MustCompile(`127\.0\.0\.1:\d+`)

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	norm := portField.ReplaceAllString(got, "127.0.0.1:<PORT>")
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(norm), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if norm != string(want) {
		t.Errorf("%s mismatch\n--- got ---\n%s--- want ---\n%s", name, norm, want)
	}
}

// TestGateServeCacheAndShutdown: the gate proxies a solve, serves the
// rename variant from its canonical-form cache, reports both in /statusz,
// and shuts down cleanly on SIGTERM with the exact stderr framing.
func TestGateServeCacheAndShutdown(t *testing.T) {
	backend, hits := fakeBackend(t)
	g := startGate(t, "-backends", backend.URL, "-no-hedge")

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(g.addr + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d", path, resp.StatusCode)
		}
	}

	status, out := postSolve(t, g.addr, `{"formula":"p cnf 2 1\ne 1 2 0\n1 -2 0\n"}`)
	if status != http.StatusOK || out.Verdict != "TRUE" || out.Source != "" {
		t.Fatalf("proxied solve: status=%d %+v", status, out)
	}
	// The rename variant (1↔2 swapped) must hit the cache, not the backend.
	status, out = postSolve(t, g.addr, `{"formula":"p cnf 2 1\ne 2 1 0\n2 -1 0\n"}`)
	if status != http.StatusOK || out.Verdict != "TRUE" || out.Source != server.SourceCache {
		t.Fatalf("variant solve: status=%d %+v", status, out)
	}
	if *hits != 1 {
		t.Fatalf("backend hits = %d, want 1", *hits)
	}

	resp, err := http.Get(g.addr + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Requests  int64 `json:"requests"`
		CacheHits int64 `json:"cache_hits"`
		Backends  []struct {
			State string `json:"state"`
		} `json:"backends"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Requests != 2 || snap.CacheHits != 1 || len(snap.Backends) != 1 || snap.Backends[0].State != "healthy" {
		t.Fatalf("statusz = %+v", snap)
	}

	if err := g.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := g.wait(t); code != 0 {
		t.Fatalf("exit %d, want 0\nstderr: %s", code, g.stderrText())
	}
	checkGolden(t, "shutdown.golden", g.stderrText())
}

// TestGateRequiresBackends: starting without -backends is a usage error.
func TestGateRequiresBackends(t *testing.T) {
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "QBFGATE_TEST_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("err = %v, want exit 1", err)
	}
	if !strings.Contains(string(out), "-backends is required") {
		t.Errorf("stderr = %q", out)
	}
}
