// Command qbfgate fronts a fleet of qbfd backends with health-checked
// failover, hedged retries, and a canonical-form verdict cache. POST a
// JSON SolveRequest to /solve (or /v1/solve); probe liveness at /healthz
// and readiness at /readyz; read routing/cache/backend counters at
// /statusz.
//
// Usage:
//
//	qbfgate -backends URL[,URL...] [flags]
//
// Routing: each request is canonicalized (variables renamed to first-use
// order, matrix sorted) and hashed; the hash picks a home backend on a
// consistent-hash ring, so rename and clause-order variants of one
// formula always land on the same backend and share one cache entry.
// Retryable outcomes (transport errors, 429/503/504) fail over to the
// next ring node; slow primaries are hedged with a second request after
// the observed p95 latency, first verdict wins.
//
// Degradation: decided verdicts are cached by canonical form. When every
// backend is unreachable, cached formulas keep answering (flagged with
// "source":"cache"); anything uncacheable is shed with 503 + Retry-After
// rather than left hanging.
//
// Shutdown: SIGTERM or SIGINT flips /readyz to 503 and stops the probe
// loops; in-flight proxied requests finish first. Exit status 0.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gate"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8081", "listen address (host:port; port 0 picks a free port)")
	backends := flag.String("backends", "", "comma-separated qbfd base URLs (required)")
	hedgeDelay := flag.Duration("hedge-delay", 30*time.Millisecond, "floor on the hedging delay; the effective delay is max(this, observed p95 latency)")
	noHedge := flag.Bool("no-hedge", false, "disable hedged second requests")
	maxAttempts := flag.Int("max-attempts", 0, "max distinct backends tried per request, hedge included (0 = all)")
	cacheEntries := flag.Int("cache-entries", 4096, "canonical-form verdict cache capacity")
	probeInterval := flag.Duration("probe-interval", time.Second, "base period between health probes per backend (jittered ±25%)")
	probeTimeout := flag.Duration("probe-timeout", 500*time.Millisecond, "per-probe round-trip timeout")
	suspectAfter := flag.Int("suspect-after", 2, "consecutive failures demoting a backend to suspect")
	ejectAfter := flag.Int("eject-after", 4, "consecutive failures ejecting a backend from routing")
	recoverAfter := flag.Int("recover-after", 2, "consecutive probe successes re-promoting a backend")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on gate-originated 503s")
	tracePath := flag.String("trace", "", "write a JSONL event trace to FILE (summarize with `qbfstat trace FILE`)")
	metricsAddr := flag.String("metrics-addr", "", "serve expvar event counters and pprof on ADDR (e.g. localhost:6060)")
	profile := flag.String("profile", "", "capture CPU and heap profiles to PREFIX.cpu.pprof / PREFIX.heap.pprof")
	flag.Parse()

	urls := splitBackends(*backends)
	if len(urls) == 0 {
		fail(fmt.Errorf("-backends is required (comma-separated qbfd base URLs)"))
	}

	obs, err := telemetry.Setup(*tracePath, *metricsAddr, *profile)
	if err != nil {
		fail(err)
	}
	if obs.Addr != "" {
		fmt.Fprintf(os.Stderr, "qbfgate: metrics and pprof at http://%s/debug/\n", obs.Addr)
	}

	g, err := gate.New(gate.Config{
		Backends: urls,
		Pool: gate.PoolConfig{
			ProbeInterval: *probeInterval,
			ProbeTimeout:  *probeTimeout,
			SuspectAfter:  *suspectAfter,
			EjectAfter:    *ejectAfter,
			RecoverAfter:  *recoverAfter,
		},
		HedgeDelay:   *hedgeDelay,
		DisableHedge: *noHedge,
		MaxAttempts:  *maxAttempts,
		CacheEntries: *cacheEntries,
		RetryAfter:   *retryAfter,
		Tracer:       obs.Tracer,
	})
	if err != nil {
		fail(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	// The listening line goes to stderr so scripts (and the golden CLI
	// tests) can discover the bound port when -addr uses port 0.
	fmt.Fprintf(os.Stderr, "qbfgate: listening on %s (backends=%d hedge=%v cache=%d)\n",
		ln.Addr(), len(urls), !*noHedge, *cacheEntries)

	hs := &http.Server{Handler: g.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		finish(obs)
		fail(err)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "qbfgate: %v received, shutting down\n", s)
	}

	g.Stop()
	hs.Close() //nolint:errcheck // proxied requests resolve via backend contexts
	finish(obs)
	fmt.Fprintln(os.Stderr, "qbfgate: stopped")
}

// splitBackends parses the -backends list, tolerating blanks and spaces.
func splitBackends(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, strings.TrimRight(p, "/"))
		}
	}
	return out
}

func finish(obs *telemetry.Observability) {
	if err := obs.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "qbfgate:", err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qbfgate:", err)
	os.Exit(1)
}
