package main

import (
	"bytes"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/qdimacs"
	"repro/internal/randqbf"
	"repro/internal/result"
	"repro/internal/telemetry"
)

// The CLI tests run qbfsolve end to end: the test binary re-executes itself
// as the real command (TestMain dispatches to main when the marker variable
// is set), so exit codes, stdout/stderr framing, and signal handling are
// all exercised exactly as a shell would see them — no in-process shortcuts.

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata")

func TestMain(m *testing.M) {
	if os.Getenv("QBFSOLVE_TEST_RUN_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// runCLI re-executes the test binary as qbfsolve with the given arguments
// and returns its output and exit code.
func runCLI(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "QBFSOLVE_TEST_RUN_MAIN=1")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	code = 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("re-exec failed: %v", err)
	}
	return out.String(), errb.String(), code
}

// hardInstanceFile writes an instance the default configuration needs
// thousands of decisions for, so limit and signal paths have time to fire.
// blockSize 24 gives tens of milliseconds of work; 32 gives seconds.
func hardInstanceFile(t *testing.T, blockSize int, seed int64) string {
	t.Helper()
	q := randqbf.Prob(randqbf.ProbParams{
		Blocks: 3, BlockSize: blockSize, Clauses: 21 * blockSize, Length: 5, MaxUniversal: 1, Seed: seed,
	})
	path := filepath.Join(t.TempDir(), "hard.qdimacs")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := qdimacs.Write(f, q); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCLIVerdictExitCodes(t *testing.T) {
	cases := []struct {
		args []string
		out  string
		code int
	}{
		{[]string{"testdata/true.qdimacs"}, "TRUE", 10},
		{[]string{"testdata/false.qdimacs"}, "FALSE", 20},
		{[]string{"testdata/tree.qtree"}, "TRUE", 10},
		{[]string{"-mode", "to", "testdata/tree.qtree"}, "TRUE", 10},
		{[]string{"-mode", "to", "-strategy", "ed-ad", "testdata/tree.qtree"}, "TRUE", 10},
		{[]string{"-miniscope", "testdata/true.qdimacs"}, "TRUE", 10},
		{[]string{"-portfolio", "-det", "testdata/true.qdimacs"}, "TRUE", 10},
		{[]string{"-workers", "4", "-share", "testdata/false.qdimacs"}, "FALSE", 20},
		{[]string{"-workers", "2", "testdata/tree.qtree"}, "TRUE", 10},
	}
	for _, c := range cases {
		stdout, stderr, code := runCLI(t, c.args...)
		if strings.TrimSpace(stdout) != c.out || code != c.code {
			t.Errorf("%v: got (%q, exit %d), want (%q, exit %d)\nstderr: %s",
				c.args, strings.TrimSpace(stdout), code, c.out, c.code, stderr)
		}
	}
}

func TestCLIWitness(t *testing.T) {
	stdout, _, code := runCLI(t, "-witness", "testdata/true.qdimacs")
	if code != 10 || !strings.Contains(stdout, "v 1 0") {
		t.Fatalf("witness output %q (exit %d), want a 'v 1 0' model line", stdout, code)
	}
	stdout, _, code = runCLI(t, "-portfolio", "-det", "-witness", "testdata/true.qdimacs")
	if code != 10 || !strings.Contains(stdout, "v 1 0") {
		t.Fatalf("portfolio witness output %q (exit %d), want a 'v 1 0' model line", stdout, code)
	}
}

func TestCLIErrorExit(t *testing.T) {
	for _, args := range [][]string{
		{"testdata/no-such-file.qdimacs"},
		{"-mode", "bogus", "testdata/true.qdimacs"},
		{"-mode", "to", "-strategy", "bogus", "testdata/tree.qtree"},
	} {
		_, stderr, code := runCLI(t, args...)
		if code != 1 || !strings.Contains(stderr, "qbfsolve:") {
			t.Errorf("%v: exit %d stderr %q, want exit 1 with a qbfsolve: message", args, code, stderr)
		}
	}
}

// TestCLINodeLimit: the decision budget must surface as exit 31 with the
// node-limit stop reason, on both the sequential and the portfolio path.
func TestCLINodeLimit(t *testing.T) {
	path := hardInstanceFile(t, 24, 2)
	for _, args := range [][]string{
		{"-nodes", "50", path},
		{"-nodes", "50", "-workers", "4", "-det", path},
	} {
		stdout, stderr, code := runCLI(t, args...)
		if code != 31 || strings.TrimSpace(stdout) != "UNKNOWN" {
			t.Fatalf("%v: got (%q, exit %d), want (UNKNOWN, exit 31)\nstderr: %s", args, stdout, code, stderr)
		}
		if !strings.Contains(stderr, "stopped: node-limit") {
			t.Fatalf("%v: stderr %q lacks the node-limit stop reason", args, stderr)
		}
	}
}

// TestCLITimeout: an expired time budget must surface as exit 30, on both
// paths. The instance needs well over the budget sequentially.
func TestCLITimeout(t *testing.T) {
	path := hardInstanceFile(t, 24, 15)
	for _, args := range [][]string{
		{"-timeout", "5ms", path},
		{"-timeout", "5ms", "-portfolio", path},
	} {
		stdout, stderr, code := runCLI(t, args...)
		if code == 10 || code == 20 {
			t.Skipf("%v: instance solved within the budget on this machine", args)
		}
		if code != 30 || strings.TrimSpace(stdout) != "UNKNOWN" || !strings.Contains(stderr, "stopped: timeout") {
			t.Fatalf("%v: got (%q, exit %d, stderr %q), want (UNKNOWN, exit 30, timeout stop)",
				args, strings.TrimSpace(stdout), code, stderr)
		}
	}
}

// TestCLIInterrupt: SIGINT must wind the search down at the next fixpoint
// and exit 33 (cancelled), for the sequential and the portfolio engine.
func TestCLIInterrupt(t *testing.T) {
	path := hardInstanceFile(t, 32, 4)
	for _, extra := range [][]string{nil, {"-workers", "4", "-share"}} {
		args := append(append([]string{}, extra...), path)
		cmd := exec.Command(os.Args[0], args...)
		cmd.Env = append(os.Environ(), "QBFSOLVE_TEST_RUN_MAIN=1")
		var out, errb bytes.Buffer
		cmd.Stdout, cmd.Stderr = &out, &errb
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(100 * time.Millisecond)
		_ = cmd.Process.Signal(os.Interrupt)
		err := cmd.Wait()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		}
		if code == 10 || code == 20 {
			t.Skipf("%v: instance solved before the signal arrived", args)
		}
		if code != 33 || !strings.Contains(errb.String(), "stopped: cancelled") {
			t.Fatalf("%v: exit %d stdout %q stderr %q, want exit 33 with cancelled stop",
				args, code, out.String(), errb.String())
		}
	}
}

// TestExitCodeMapping pins the full documented mapping, including the codes
// that are impractical to trigger from a real process run (mem-limit needs
// a multi-MiB learned database; a contained panic needs a fault build).
func TestExitCodeMapping(t *testing.T) {
	cases := []struct {
		v    core.Verdict
		stop core.StopReason
		want int
	}{
		{core.True, core.StopNone, 10},
		{core.False, core.StopNone, 20},
		{core.True, core.StopTimeout, 10}, // verdict wins over a stale stop
		{core.Unknown, core.StopTimeout, 30},
		{core.Unknown, core.StopNodeLimit, 31},
		{core.Unknown, core.StopMemLimit, 32},
		{core.Unknown, core.StopCancelled, 33},
		{core.Unknown, core.StopPanicked, 34},
		{core.Unknown, core.StopNone, 1},
	}
	for _, c := range cases {
		if got := result.ExitCode(c.v, c.stop); got != c.want {
			t.Errorf("ExitCode(%v, %v) = %d, want %d", c.v, c.stop, got, c.want)
		}
	}
}

var timeField = regexp.MustCompile(`time=[^ \n]+`)

// checkGolden compares got (with wall-clock fields masked) against the
// golden file, rewriting it under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	norm := timeField.ReplaceAllString(got, "time=<T>")
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, []byte(norm), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if norm != string(want) {
		t.Errorf("%s mismatch\n--- got ---\n%s--- want ---\n%s", name, norm, want)
	}
}

// TestCLIGoldenStats pins the exact -stats output framing. The sequential
// engine and the deterministic portfolio are both fully reproducible on
// these inputs once wall-clock fields are masked, so any drift in the
// search (decision counts, learned constraints) or in the report format
// shows up as a golden diff.
func TestCLIGoldenStats(t *testing.T) {
	_, stderr, code := runCLI(t, "-stats", "testdata/false.qdimacs")
	if code != 20 {
		t.Fatalf("exit %d, want 20", code)
	}
	checkGolden(t, "stats_false.golden", stderr)

	_, stderr, code = runCLI(t, "-portfolio", "-det", "-share", "-stats", "testdata/tree.qtree")
	if code != 10 {
		t.Fatalf("exit %d, want 10", code)
	}
	if !strings.Contains(stderr, "winner=po-default(0)") {
		t.Fatalf("deterministic portfolio stats %q: want worker 0 to win on a trivial instance", stderr)
	}
	checkGolden(t, "portfolio_stats_tree.golden", stderr)
}

// TestCLITraceJSONL runs -trace end to end on the deterministic portfolio
// and cross-checks the JSONL artifact against the -stats counters: every
// required event kind is present, per-kind counts match the search
// statistics, and every event carries a worker tag.
func TestCLITraceJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	_, stderr, code := runCLI(t, "-portfolio", "-det", "-share", "-stats", "-trace", path, "testdata/false.qdimacs")
	if code != 20 {
		t.Fatalf("exit %d, want 20\nstderr: %s", code, stderr)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sum, err := telemetry.Summarize(f)
	if err != nil {
		t.Fatalf("trace does not replay: %v", err)
	}
	for _, kind := range []telemetry.Kind{telemetry.KindDecision, telemetry.KindConflict,
		telemetry.KindLearn, telemetry.KindSlice, telemetry.KindStop} {
		if sum.ByKind[kind] == 0 {
			t.Errorf("trace has no %q events: %v", kind, sum.ByKind)
		}
	}
	if len(sum.ByWorker) == 0 {
		t.Error("no event carries a worker tag")
	}
	// The stderr counters and the trace describe the same run.
	for _, c := range []struct {
		field string
		kind  telemetry.Kind
	}{{"decisions", telemetry.KindDecision}, {"conflicts", telemetry.KindConflict}, {"fixpoints", telemetry.KindFixpoint}} {
		m := regexp.MustCompile(c.field + `=(\d+)`).FindStringSubmatch(stderr)
		if m == nil {
			t.Fatalf("stats line lacks %s=: %q", c.field, stderr)
		}
		if want := m[1]; strconv.FormatInt(sum.ByKind[c.kind], 10) != want {
			t.Errorf("%s: stats say %s, trace has %d", c.field, want, sum.ByKind[c.kind])
		}
	}
}

// TestCLITraceSequential covers the non-portfolio path: the root tracer
// (no worker fork) must still produce a replayable trace ending in a stop
// event that encodes the verdict.
func TestCLITraceSequential(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	_, _, code := runCLI(t, "-trace", path, "testdata/true.qdimacs")
	if code != 10 {
		t.Fatalf("exit %d, want 10", code)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var last telemetry.Event
	n := 0
	if err := telemetry.ReadEvents(f, func(e telemetry.Event) error {
		last = e
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("empty trace")
	}
	if last.Kind != telemetry.KindStop || last.A != int64(core.True) {
		t.Fatalf("last event %+v, want a stop carrying the TRUE verdict", last)
	}
}
