// Command qbfsolve decides a QBF read from a file or stdin. It accepts
// prenex instances in QDIMACS and non-prenex instances in the QTREE format
// (see internal/qdimacs), and runs the QUBE(PO)-style partial-order engine
// by default; -mode=to selects the QUBE(TO) total-order configuration,
// prenexing a tree input first with -strategy.
//
// Usage:
//
//	qbfsolve [flags] [file.qdimacs]
//
// Exit status: 10 when the formula is TRUE, 20 when FALSE (the SAT solver
// convention), 1 on errors or when a limit stopped the search.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/prenex"
	"repro/internal/qbf"
	"repro/internal/qdimacs"
)

func main() {
	mode := flag.String("mode", "po", "solver mode: po (partial order) or to (total order)")
	strategy := flag.String("strategy", "eu-au", "prenexing strategy for -mode=to on tree inputs: eu-au, eu-ad, ed-au, ed-ad")
	timeout := flag.Duration("timeout", 0, "per-solve time limit (0 = none)")
	nodes := flag.Int64("nodes", 0, "decision limit (0 = none)")
	noCl := flag.Bool("no-clause-learning", false, "disable nogood learning")
	noCu := flag.Bool("no-cube-learning", false, "disable good learning")
	noPure := flag.Bool("no-pure", false, "disable pure literal fixing")
	miniscope := flag.Bool("miniscope", false, "minimize quantifier scopes before solving (Section VII.D)")
	stats := flag.Bool("stats", false, "print search statistics")
	witness := flag.Bool("witness", false, "on TRUE, print the outermost existential assignment (a full model for SAT inputs)")
	flag.Parse()

	q, err := readInput(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	if *miniscope {
		q = prenex.Miniscope(q)
	}

	opt := core.Options{
		TimeLimit:             *timeout,
		NodeLimit:             *nodes,
		DisableClauseLearning: *noCl,
		DisableCubeLearning:   *noCu,
		DisablePureLiterals:   *noPure,
	}
	switch *mode {
	case "po":
		opt.Mode = core.ModePartialOrder
	case "to":
		opt.Mode = core.ModeTotalOrder
		if !q.Prefix.IsPrenex() {
			s, err := parseStrategy(*strategy)
			if err != nil {
				fail(err)
			}
			q = prenex.Apply(q, s)
		}
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}

	solver, err := core.NewSolver(q, opt)
	if err != nil {
		fail(err)
	}
	r := solver.Solve()
	st := solver.Stats()
	fmt.Println(r)
	if *witness && r == core.True {
		if model, ok := solver.Witness(); ok {
			fmt.Print("v")
			for v := qbf.MinVar; v.Int() <= q.MaxVar(); v++ {
				if val, has := model[v]; has {
					if val {
						fmt.Printf(" %d", v)
					} else {
						fmt.Printf(" -%d", v)
					}
				}
			}
			fmt.Println(" 0")
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr,
			"decisions=%d propagations=%d pures=%d conflicts=%d solutions=%d learned-clauses=%d learned-cubes=%d backjumps=%d restarts=%d time=%v\n",
			st.Decisions, st.Propagations, st.PureAssignments, st.Conflicts,
			st.Solutions, st.LearnedClauses, st.LearnedCubes, st.Backjumps,
			st.Restarts, st.Time)
	}
	switch r {
	case core.True:
		os.Exit(10)
	case core.False:
		os.Exit(20)
	default:
		os.Exit(1)
	}
}

func readInput(path string) (*qbf.QBF, error) {
	if path == "" || path == "-" {
		return qdimacs.Read(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return qdimacs.Read(f)
}

func parseStrategy(s string) (prenex.Strategy, error) {
	switch s {
	case "eu-au":
		return prenex.EUpAUp, nil
	case "eu-ad":
		return prenex.EUpADown, nil
	case "ed-au":
		return prenex.EDownAUp, nil
	case "ed-ad":
		return prenex.EDownADown, nil
	}
	return 0, fmt.Errorf("unknown strategy %q", s)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qbfsolve:", err)
	os.Exit(1)
}
