// Command qbfsolve decides a QBF read from a file or stdin. It accepts
// prenex instances in QDIMACS and non-prenex instances in the QTREE format
// (see internal/qdimacs), and runs the QUBE(PO)-style partial-order engine
// by default; -mode=to selects the QUBE(TO) total-order configuration,
// prenexing a tree input first with -strategy.
//
// Usage:
//
//	qbfsolve [flags] [file.qdimacs]
//
// Observability: -trace FILE streams every solver event (decisions,
// conflicts, learning, imports, …) as JSONL for `qbfstat trace`;
// -metrics-addr serves expvar event counters and pprof endpoints over
// HTTP while solving; -profile PREFIX captures CPU and heap profiles.
//
// Exit status: 10 when the formula is TRUE, 20 when FALSE (the SAT solver
// convention), 1 on errors. A governed stop exits with a code naming the
// stop reason: 30 timeout, 31 node limit, 32 memory limit, 33 cancelled
// (SIGINT/SIGTERM), 34 contained solver panic. On SIGINT or SIGTERM the
// solver stops at its next propagation fixpoint and the partial statistics
// are still printed under -stats.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/portfolio"
	"repro/internal/prenex"
	"repro/internal/qbf"
	"repro/internal/qdimacs"
	"repro/internal/result"
	"repro/internal/telemetry"
)

func main() {
	mode := flag.String("mode", "po", "solver mode: po (partial order) or to (total order)")
	strategy := flag.String("strategy", "eu-au", "prenexing strategy for -mode=to on tree inputs: eu-au, eu-ad, ed-au, ed-ad")
	timeout := flag.Duration("timeout", 0, "per-solve time limit (0 = none)")
	nodes := flag.Int64("nodes", 0, "decision limit (0 = none)")
	mem := flag.Int64("mem", 0, "learned-constraint memory limit in MiB (0 = none)")
	noCl := flag.Bool("no-clause-learning", false, "disable nogood learning")
	noCu := flag.Bool("no-cube-learning", false, "disable good learning")
	noPure := flag.Bool("no-pure", false, "disable pure literal fixing")
	miniscope := flag.Bool("miniscope", false, "minimize quantifier scopes before solving (Section VII.D)")
	stats := flag.Bool("stats", false, "print search statistics")
	witness := flag.Bool("witness", false, "on TRUE, print the outermost existential assignment (a full model for SAT inputs)")
	usePortfolio := flag.Bool("portfolio", false, "race a portfolio of diverse solver configurations (-mode/-strategy are ignored; see -workers, -share, -det)")
	workers := flag.Int("workers", 0, "portfolio size (implies -portfolio when > 1; 0 = 4 with -portfolio)")
	share := flag.Bool("share", false, "portfolio: exchange short learned constraints between same-structure workers")
	det := flag.Bool("det", false, "portfolio: deterministic scheduling (serialized, reproducible winner)")
	tracePath := flag.String("trace", "", "write a JSONL event trace to FILE (summarize with `qbfstat trace FILE`)")
	metricsAddr := flag.String("metrics-addr", "", "serve expvar event counters and pprof on ADDR (e.g. localhost:6060) while solving")
	profile := flag.String("profile", "", "capture CPU and heap profiles to PREFIX.cpu.pprof / PREFIX.heap.pprof")
	flag.Parse()

	q, err := readInput(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	if *miniscope {
		q = prenex.Miniscope(q)
	}

	obs, err := setupObservability(*tracePath, *metricsAddr, *profile)
	if err != nil {
		fail(err)
	}

	opt := core.Options{
		TimeLimit:             *timeout,
		NodeLimit:             *nodes,
		MemLimit:              *mem << 20,
		DisableClauseLearning: *noCl,
		DisableCubeLearning:   *noCu,
		DisablePureLiterals:   *noPure,
		Telemetry:             obs.Tracer,
	}
	if *usePortfolio || *workers > 1 {
		runPortfolio(q, opt, *workers, *share, *det, *stats, *witness, obs)
		return
	}
	switch *mode {
	case "po":
		opt.Mode = core.ModePartialOrder
	case "to":
		opt.Mode = core.ModeTotalOrder
		if !q.Prefix.IsPrenex() {
			s, err := parseStrategy(*strategy)
			if err != nil {
				fail(err)
			}
			q = prenex.Apply(q, s)
		}
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}

	solver, err := core.NewSolver(q, opt)
	if err != nil {
		fail(err)
	}
	// SIGINT/SIGTERM cancel the context; the solver notices at its next
	// propagation fixpoint and returns UNKNOWN/cancelled with the partial
	// statistics intact instead of the process dying mid-search.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	r, solveErr := solver.SafeSolve(ctx)
	st := solver.Stats()
	finishObservability(obs)
	fmt.Println(r)
	if solveErr != nil {
		fmt.Fprintln(os.Stderr, "qbfsolve: solver panic contained:", solveErr)
	} else if r == core.Unknown && st.StopReason != core.StopNone {
		fmt.Fprintf(os.Stderr, "qbfsolve: stopped: %v\n", st.StopReason)
	}
	if *witness && r == core.True {
		if model, ok := solver.Witness(); ok {
			printWitness(model, q.MaxVar())
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr,
			"decisions=%d propagations=%d pures=%d conflicts=%d solutions=%d learned-clauses=%d learned-cubes=%d backjumps=%d restarts=%d fixpoints=%d peak-learned-bytes=%d mem-reductions=%d time=%v\n",
			st.Decisions, st.Propagations, st.PureAssignments, st.Conflicts,
			st.Solutions, st.LearnedClauses, st.LearnedCubes, st.Backjumps,
			st.Restarts, st.Fixpoints, st.PeakLearnedBytes, st.MemReductions, st.Time)
	}
	os.Exit(result.ExitCode(r, st.StopReason))
}

// runPortfolio decides q by racing diverse configurations. The -mode and
// -strategy flags are ignored: the schedule spans both modes and every
// prenexing strategy on its own. Limits and learning toggles from the
// sequential flags become the portfolio's shared budgets and base options;
// the telemetry tracer on base is forked per worker, so every trace event
// carries its worker index and structure group.
func runPortfolio(q *qbf.QBF, base core.Options, workers int, share, det, stats, witness bool, obs *telemetry.Observability) {
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	rep, err := portfolio.Solve(ctx, q, portfolio.Options{
		Workers:       workers,
		Share:         share,
		Deterministic: det,
		Base:          base,
	})
	if err != nil {
		fail(err)
	}
	finishObservability(obs)
	fmt.Println(rep.Verdict)
	stop := rep.Stop
	if perr := rep.Err(); perr != nil {
		fmt.Fprintln(os.Stderr, "qbfsolve: portfolio failed:", perr)
		stop = core.StopPanicked
	} else if rep.Verdict == core.Unknown && stop != core.StopNone {
		fmt.Fprintf(os.Stderr, "qbfsolve: stopped: %v\n", stop)
	}
	if witness && rep.Verdict == core.True {
		if rep.Witness != nil {
			printWitness(rep.Witness, q.MaxVar())
		} else {
			fmt.Fprintln(os.Stderr, "qbfsolve: no witness available (winner solved a prenex conversion)")
		}
	}
	if stats {
		st := rep.Stats
		fmt.Fprintf(os.Stderr,
			"portfolio: workers=%d ran=%d winner=%s(%d) imports=%d imports-rejected=%d exported=%d dropped=%d\n",
			len(rep.Workers), countRan(rep.Workers), rep.WinnerName(), rep.Winner,
			st.Imports, st.ImportsRejected, rep.Exported, rep.Dropped)
		for i, w := range rep.Workers {
			if !w.Ran {
				continue
			}
			fmt.Fprintf(os.Stderr,
				"worker %d %s: result=%v attempts=%d decisions=%d conflicts=%d solutions=%d imports=%d\n",
				i, w.Name, w.Verdict, w.Attempts, w.Stats.Decisions, w.Stats.Conflicts,
				w.Stats.Solutions, w.Imported)
		}
		fmt.Fprintf(os.Stderr,
			"decisions=%d propagations=%d pures=%d conflicts=%d solutions=%d learned-clauses=%d learned-cubes=%d backjumps=%d restarts=%d fixpoints=%d peak-learned-bytes=%d mem-reductions=%d time=%v\n",
			st.Decisions, st.Propagations, st.PureAssignments, st.Conflicts,
			st.Solutions, st.LearnedClauses, st.LearnedCubes, st.Backjumps,
			st.Restarts, st.Fixpoints, st.PeakLearnedBytes, st.MemReductions, st.Time)
	}
	os.Exit(result.ExitCode(rep.Verdict, stop))
}

// setupObservability wires the exporters requested by the -trace,
// -metrics-addr and -profile flags. finishObservability must run before
// the process exits (os.Exit skips deferred calls, so main calls it
// explicitly).
func setupObservability(tracePath, metricsAddr, profilePrefix string) (*telemetry.Observability, error) {
	obs, err := telemetry.Setup(tracePath, metricsAddr, profilePrefix)
	if err != nil {
		return nil, err
	}
	if obs.Addr != "" {
		fmt.Fprintf(os.Stderr, "qbfsolve: metrics and pprof at http://%s/debug/\n", obs.Addr)
	}
	return obs, nil
}

func finishObservability(obs *telemetry.Observability) {
	if err := obs.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "qbfsolve:", err)
	}
}

func countRan(ws []portfolio.WorkerReport) int {
	n := 0
	for _, w := range ws {
		if w.Ran {
			n++
		}
	}
	return n
}

func printWitness(model map[qbf.Var]bool, maxVar int) {
	fmt.Print("v")
	for v := qbf.MinVar; v.Int() <= maxVar; v++ {
		if val, has := model[v]; has {
			if val {
				fmt.Printf(" %d", v)
			} else {
				fmt.Printf(" -%d", v)
			}
		}
	}
	fmt.Println(" 0")
}

func readInput(path string) (*qbf.QBF, error) {
	if path == "" || path == "-" {
		return qdimacs.Read(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return qdimacs.Read(f)
}

func parseStrategy(s string) (prenex.Strategy, error) {
	switch s {
	case "eu-au":
		return prenex.EUpAUp, nil
	case "eu-ad":
		return prenex.EUpADown, nil
	case "ed-au":
		return prenex.EDownAUp, nil
	case "ed-ad":
		return prenex.EDownADown, nil
	}
	return 0, fmt.Errorf("unknown strategy %q", s)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qbfsolve:", err)
	os.Exit(1)
}
