//go:build qbfdebug

package main

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/result"
	"repro/internal/server"
	"repro/internal/server/client"
)

// The chaos suite runs only under the qbfdebug build tag:
//
//	go test -tags qbfdebug -race -run TestChaosCrashRecovery ./cmd/qbfd/
//
// It SIGKILLs a real daemon at a fault-hook-chosen journal append while
// concurrent session ladders are in flight, restarts it over the same
// journal directory on the same port, and requires every client to
// finish its ladder with verdicts matching the oracle — without ever
// being told a restart happened.

const chaosTiny = "p cnf 2 2\ne 1 2 0\n1 0\n-2 0\n"

// chaosStep is one rung of the oracle ladder on chaosTiny (variable 1
// forced true, variable 2 forced false).
type chaosStep struct {
	ops   []server.SessionOp
	want  string
	depth int
}

var chaosLadder = []chaosStep{
	{nil, "TRUE", 0},
	{[]server.SessionOp{{Op: "push"}, {Op: "add", Lits: []int{-1}}}, "FALSE", 1},
	{[]server.SessionOp{{Op: "pop"}}, "TRUE", 0},
	{[]server.SessionOp{{Op: "push"}, {Op: "add", Lits: []int{2}}}, "FALSE", 1},
	{[]server.SessionOp{{Op: "pop"}}, "TRUE", 0},
}

// runLadder opens a session (retrying through downtime — OpenSession has
// no transparent reconnect of its own) and climbs the oracle ladder.
// Three outcomes are legitimate per rung: a shed (seq untouched — retry
// the rung), a torn-call replay (503/cancelled: the crash interrupted
// this exact call after its ops were applied — advance), or the oracle
// verdict, live or replayed.
func runLadder(ctx context.Context, c *client.Client, id int) error {
	var sess *client.Session
	for {
		s, out, err := c.OpenSession(ctx, server.SessionRequest{Formula: chaosTiny})
		if err == nil && s != nil {
			sess = s
			break
		}
		if ctx.Err() != nil {
			return fmt.Errorf("client %d: open: %v (out %+v)", id, err, out)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for k := 0; k < len(chaosLadder); {
		stp := chaosLadder[k]
		out, err := sess.Solve(ctx, stp.ops, false)
		if err != nil {
			return fmt.Errorf("client %d rung %d: %v", id, k, err)
		}
		if out.Resp.Shed != "" {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if out.Status == result.StatusUnavailable && out.Resp.Stop == "cancelled" {
			k++
			continue
		}
		if out.Status != result.StatusOK || out.Resp.Verdict != stp.want || out.Resp.Depth != stp.depth {
			return fmt.Errorf("client %d rung %d: got %d %s/depth%d (replayed=%v), want %s/depth%d",
				id, k, out.Status, out.Resp.Verdict, out.Resp.Depth, out.Resp.Replayed, stp.want, stp.depth)
		}
		k++
	}
	return nil
}

func TestChaosCrashRecovery(t *testing.T) {
	g0 := runtime.NumGoroutine()
	dir := t.TempDir()
	d1 := startDaemonEnv(t, []string{"QBFD_CHAOS_KILL_AFTER_APPENDS=20"},
		"-addr", "127.0.0.1:0", "-workers", "2", "-journal-dir", dir, "-fsync", "always")
	addr := strings.TrimPrefix(d1.addr, "http://")

	pol := client.Policy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond, Seed: 9}
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	const nClients = 4
	errs := make(chan error, nClients)
	for i := 0; i < nClients; i++ {
		go func(i int) {
			errs <- runLadder(ctx, client.New("http://"+addr, nil, pol), i)
		}(i)
	}

	// The fault hook kills the daemon at the 20th durable append — about
	// halfway through the ~44 appends the four ladders generate.
	if code := d1.wait(t); code == 0 {
		t.Fatalf("daemon exited cleanly; the chaos kill never fired\nstderr: %s", d1.stderrText())
	}
	// Restart on the same port over the same journal, chaos disarmed. The
	// stranded clients reconnect to the recovered sessions on their own.
	d2 := startDaemonEnv(t, nil, "-addr", addr, "-workers", "2", "-journal-dir", dir, "-fsync", "always")
	if !strings.Contains(d2.stderrText(), "qbfd: journal: recovered") {
		t.Errorf("restart never reported recovery\nstderr: %s", d2.stderrText())
	}

	for i := 0; i < nClients; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}

	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := d2.wait(t); code != 0 {
		t.Fatalf("exit %d after clean drain, want 0\nstderr: %s", code, d2.stderrText())
	}

	// Leak check: every client goroutine and transport connection the
	// storm spawned must be gone once the dust settles.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > g0+2 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > g0+2 {
		pprof.Lookup("goroutine").WriteTo(os.Stderr, 1) //nolint:errcheck // diagnostic dump
		t.Errorf("goroutine leak: %d at start, %d after teardown", g0, g)
	}
}
