package main

import (
	"bufio"
	"bytes"
	"context"
	"flag"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/qdimacs"
	"repro/internal/randqbf"
	"repro/internal/result"
	"repro/internal/server"
	"repro/internal/server/client"
)

// The daemon tests run qbfd end to end: the test binary re-executes itself
// as the real command (TestMain dispatches to main when the marker variable
// is set), so listening, signal-driven drain, exit codes, and the stderr
// framing are exercised exactly as an init system would see them.

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata")

func TestMain(m *testing.M) {
	if os.Getenv("QBFD_TEST_RUN_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// daemon is one running qbfd child process.
type daemon struct {
	cmd      *exec.Cmd
	addr     string // base URL, e.g. http://127.0.0.1:43121
	scanDone chan struct{}

	mu     sync.Mutex
	stderr bytes.Buffer
}

var listenLine = regexp.MustCompile(`listening on (127\.0\.0\.1:\d+)`)

// startDaemon launches qbfd on a kernel-assigned port and waits for the
// listening line to learn the address.
func startDaemon(t *testing.T, extra ...string) *daemon {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	d := &daemon{cmd: exec.Command(os.Args[0], args...), scanDone: make(chan struct{})}
	d.cmd.Env = append(os.Environ(), "QBFD_TEST_RUN_MAIN=1")
	pipe, err := d.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if d.cmd.ProcessState == nil {
			d.cmd.Process.Kill() //nolint:errcheck // last-resort teardown
			d.cmd.Wait()         //nolint:errcheck
		}
	})
	addrCh := make(chan string, 1)
	go func() {
		defer close(d.scanDone)
		sc := bufio.NewScanner(pipe)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.stderr.WriteString(line)
			d.stderr.WriteByte('\n')
			d.mu.Unlock()
			if m := listenLine.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		d.addr = "http://" + addr
	case <-time.After(10 * time.Second):
		t.Fatal("qbfd never printed its listening line")
	}
	return d
}

// wait blocks for process exit and returns the exit code. The stderr
// scanner is drained to EOF first — calling Wait with pipe reads still in
// flight can drop the final lines (os/exec's documented constraint).
func (d *daemon) wait(t *testing.T) int {
	t.Helper()
	select {
	case <-d.scanDone:
	case <-time.After(30 * time.Second):
		t.Fatal("stderr never reached EOF")
	}
	err := d.cmd.Wait()
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	return 0
}

func (d *daemon) stderrText() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stderr.String()
}

func (d *daemon) get(t *testing.T, path string) int {
	t.Helper()
	resp, err := http.Get(d.addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// hardFormula returns QDIMACS text that needs seconds of search, so a
// drain deadline can reliably overtake it.
func hardFormula(t *testing.T) string {
	t.Helper()
	q := randqbf.Prob(randqbf.ProbParams{
		Blocks: 3, BlockSize: 32, Clauses: 21 * 32, Length: 5, MaxUniversal: 1, Seed: 4,
	})
	text, err := qdimacs.WriteString(q)
	if err != nil {
		t.Fatal(err)
	}
	return text
}

var portField = regexp.MustCompile(`127\.0\.0\.1:\d+`)

// checkGolden compares got (with the ephemeral port masked) against the
// golden file, rewriting it under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	norm := portField.ReplaceAllString(got, "127.0.0.1:<PORT>")
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, []byte(norm), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if norm != string(want) {
		t.Errorf("%s mismatch\n--- got ---\n%s--- want ---\n%s", name, norm, want)
	}
}

// TestDaemonServeAndCleanDrain: the daemon serves solves over HTTP, then a
// SIGTERM drains it cleanly — exit 0 and the exact stderr framing.
func TestDaemonServeAndCleanDrain(t *testing.T) {
	d := startDaemon(t, "-workers", "2", "-drain-timeout", "5s")
	if st := d.get(t, "/healthz"); st != http.StatusOK {
		t.Fatalf("/healthz = %d", st)
	}
	if st := d.get(t, "/readyz"); st != http.StatusOK {
		t.Fatalf("/readyz = %d", st)
	}
	c := client.New(d.addr, nil, client.Policy{})
	out, err := c.Solve(context.Background(), server.SolveRequest{
		Formula: "p cnf 2 2\ne 1 2 0\n1 0\n-2 0\n", Witness: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Decided() || out.Resp.Verdict != "TRUE" || len(out.Resp.Witness) != 2 {
		t.Fatalf("solve over HTTP: %+v", out)
	}
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := d.wait(t); code != 0 {
		t.Fatalf("exit %d after clean drain, want 0\nstderr: %s", code, d.stderrText())
	}
	checkGolden(t, "drain_clean.golden", d.stderrText())
}

// TestDaemonDrainDeadlineExit130: a SIGTERM with a solve in flight and a
// too-short drain deadline must force-cancel and exit 130.
func TestDaemonDrainDeadlineExit130(t *testing.T) {
	d := startDaemon(t, "-workers", "2", "-drain-timeout", "100ms")
	solveDone := make(chan client.Outcome, 1)
	go func() {
		c := client.New(d.addr, nil, client.Policy{MaxAttempts: 1})
		out, _ := c.Solve(context.Background(), server.SolveRequest{Formula: hardFormula(t)})
		solveDone <- out
	}()
	// Let the solve get admitted and start, then pull the plug.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(d.addr + "/statusz")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body) //nolint:errcheck
		resp.Body.Close()
		if strings.Contains(buf.String(), `"in_flight": 1`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("solve never became in-flight")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	code := d.wait(t)
	out := <-solveDone
	if out.Status == result.StatusOK {
		t.Skip("instance solved before the drain deadline on this machine")
	}
	if code != 130 {
		t.Fatalf("exit %d, want 130\nstderr: %s", code, d.stderrText())
	}
	if out.Status != result.StatusUnavailable || out.Resp.Stop != "cancelled" {
		t.Fatalf("force-cancelled solve got %d/%q, want 503/cancelled", out.Status, out.Resp.Stop)
	}
	checkGolden(t, "drain_forced.golden", d.stderrText())
}

// TestDaemonReadinessFlip: during a drain that is waiting out an in-flight
// solve, /healthz stays 200 (the process lives) while /readyz reports 503
// (send no new traffic) and new solves are shed.
func TestDaemonReadinessFlip(t *testing.T) {
	d := startDaemon(t, "-workers", "2", "-drain-timeout", "30s")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	solveDone := make(chan struct{})
	go func() {
		defer close(solveDone)
		c := client.New(d.addr, nil, client.Policy{MaxAttempts: 1})
		c.Solve(ctx, server.SolveRequest{Formula: hardFormula(t)}) //nolint:errcheck // outcome irrelevant
	}()
	deadline := time.Now().Add(5 * time.Second)
	for d.get(t, "/readyz") == http.StatusOK && time.Now().Before(deadline) {
		// Wait for the solve to be in flight before signalling; readyz
		// stays 200 until then.
		resp, err := http.Get(d.addr + "/statusz")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body) //nolint:errcheck
		resp.Body.Close()
		if strings.Contains(buf.String(), `"in_flight": 1`) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitStatus := func(path, what string, want int) {
		t.Helper()
		dl := time.Now().Add(5 * time.Second)
		for {
			if st := d.get(t, path); st == want {
				return
			} else if time.Now().After(dl) {
				t.Fatalf("%s never reached %d (last %d)", what, want, st)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitStatus("/readyz", "readiness", result.StatusUnavailable)
	if st := d.get(t, "/healthz"); st != http.StatusOK {
		t.Fatalf("/healthz during drain = %d, want 200", st)
	}
	// New work is refused while the old solve keeps its grace period.
	c := client.New(d.addr, nil, client.Policy{MaxAttempts: 1})
	out, err := c.Solve(context.Background(), server.SolveRequest{Formula: "p cnf 1 1\ne 1 0\n1 0\n"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != result.StatusUnavailable || out.Resp.Shed != "draining" {
		t.Fatalf("solve during drain: %d shed=%q, want 503 draining", out.Status, out.Resp.Shed)
	}
	// Disconnect the hard solve's client: its context cancels the solve,
	// the drain completes without hitting the deadline, exit 0.
	cancel()
	<-solveDone
	if code := d.wait(t); code != 0 {
		t.Fatalf("exit %d after drain, want 0\nstderr: %s", code, d.stderrText())
	}
}

// TestDaemonStartupFailure: an unusable listen address must exit 1 with a
// qbfd: message.
func TestDaemonStartupFailure(t *testing.T) {
	cmd := exec.Command(os.Args[0], "-addr", "256.0.0.1:1")
	cmd.Env = append(os.Environ(), "QBFD_TEST_RUN_MAIN=1")
	var errb bytes.Buffer
	cmd.Stderr = &errb
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 || !strings.Contains(errb.String(), "qbfd:") {
		t.Fatalf("err=%v stderr=%q, want exit 1 with a qbfd: message", err, errb.String())
	}
}

// TestDaemonSessions drives a sticky session end to end through the real
// binary with the client handle: open, incremental solves across a
// push/add/pop round trip, close, and a clean drain afterwards.
func TestDaemonSessions(t *testing.T) {
	d := startDaemon(t, "-workers", "1", "-max-sessions", "4", "-session-ttl", "1m")
	c := client.New(d.addr, nil, client.Policy{})
	ctx := context.Background()

	sess, out, err := c.OpenSession(ctx, server.SessionRequest{
		Formula: "p cnf 2 2\ne 1 2 0\n1 0\n-2 0\n"})
	if err != nil || sess == nil {
		t.Fatalf("open: %v (out %+v)", err, out)
	}
	out, err = sess.Solve(ctx, nil, false)
	if err != nil || out.Resp.Verdict != "TRUE" {
		t.Fatalf("solve 1: %v %+v", err, out)
	}
	out, err = sess.Solve(ctx, []server.SessionOp{{Op: "push"}, {Op: "add", Lits: []int{-1}}}, false)
	if err != nil || out.Resp.Verdict != "FALSE" || out.Resp.Depth != 1 {
		t.Fatalf("solve 2: %v %+v", err, out)
	}
	out, err = sess.Solve(ctx, []server.SessionOp{{Op: "pop"}}, false)
	if err != nil || out.Resp.Verdict != "TRUE" || out.Resp.Depth != 0 {
		t.Fatalf("solve 3: %v %+v", err, out)
	}
	if out, err = sess.Close(ctx); err != nil || out.Status != http.StatusOK {
		t.Fatalf("close: %v %+v", err, out)
	}

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := d.wait(t); code != 0 {
		t.Fatalf("exit %d after clean drain, want 0\nstderr: %s", code, d.stderrText())
	}
}
