package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/qdimacs"
	"repro/internal/randqbf"
	"repro/internal/result"
	"repro/internal/server"
	"repro/internal/server/client"
)

// The daemon tests run qbfd end to end: the test binary re-executes itself
// as the real command (TestMain dispatches to main when the marker variable
// is set), so listening, signal-driven drain, exit codes, and the stderr
// framing are exercised exactly as an init system would see them.

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata")

func TestMain(m *testing.M) {
	if os.Getenv("QBFD_TEST_RUN_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// daemon is one running qbfd child process.
type daemon struct {
	cmd      *exec.Cmd
	addr     string // base URL, e.g. http://127.0.0.1:43121
	scanDone chan struct{}

	mu     sync.Mutex
	stderr bytes.Buffer
}

var listenLine = regexp.MustCompile(`listening on (127\.0\.0\.1:\d+)`)

// startDaemon launches qbfd on a kernel-assigned port and waits for the
// listening line to learn the address.
func startDaemon(t *testing.T, extra ...string) *daemon {
	t.Helper()
	return startDaemonEnv(t, nil, append([]string{"-addr", "127.0.0.1:0"}, extra...)...)
}

// startDaemonEnv is startDaemon with extra child environment (chaos
// knobs) and full control of the argument list, including -addr — the
// crash tests restart a daemon on the exact port its predecessor held so
// that client handles reconnect transparently.
func startDaemonEnv(t *testing.T, env []string, args ...string) *daemon {
	t.Helper()
	d := &daemon{cmd: exec.Command(os.Args[0], args...), scanDone: make(chan struct{})}
	d.cmd.Env = append(append(os.Environ(), "QBFD_TEST_RUN_MAIN=1"), env...)
	pipe, err := d.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if d.cmd.ProcessState == nil {
			d.cmd.Process.Kill() //nolint:errcheck // last-resort teardown
			d.cmd.Wait()         //nolint:errcheck
		}
	})
	addrCh := make(chan string, 1)
	go func() {
		defer close(d.scanDone)
		sc := bufio.NewScanner(pipe)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.stderr.WriteString(line)
			d.stderr.WriteByte('\n')
			d.mu.Unlock()
			if m := listenLine.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		d.addr = "http://" + addr
	case <-time.After(10 * time.Second):
		t.Fatal("qbfd never printed its listening line")
	}
	return d
}

// wait blocks for process exit and returns the exit code. The stderr
// scanner is drained to EOF first — calling Wait with pipe reads still in
// flight can drop the final lines (os/exec's documented constraint).
func (d *daemon) wait(t *testing.T) int {
	t.Helper()
	select {
	case <-d.scanDone:
	case <-time.After(30 * time.Second):
		t.Fatal("stderr never reached EOF")
	}
	err := d.cmd.Wait()
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	return 0
}

func (d *daemon) stderrText() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stderr.String()
}

func (d *daemon) get(t *testing.T, path string) int {
	t.Helper()
	resp, err := http.Get(d.addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// hardFormula returns QDIMACS text that needs seconds of search, so a
// drain deadline can reliably overtake it.
func hardFormula(t *testing.T) string {
	t.Helper()
	q := randqbf.Prob(randqbf.ProbParams{
		Blocks: 3, BlockSize: 32, Clauses: 21 * 32, Length: 5, MaxUniversal: 1, Seed: 4,
	})
	text, err := qdimacs.WriteString(q)
	if err != nil {
		t.Fatal(err)
	}
	return text
}

var (
	portField = regexp.MustCompile(`127\.0\.0\.1:\d+`)
	dirField  = regexp.MustCompile(`( (?:from|at)) \S+`)
)

// checkGolden compares got (with the ephemeral port and any journal
// directory path masked) against the golden file, rewriting it under
// -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	norm := portField.ReplaceAllString(got, "127.0.0.1:<PORT>")
	norm = dirField.ReplaceAllString(norm, "$1 <DIR>")
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, []byte(norm), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if norm != string(want) {
		t.Errorf("%s mismatch\n--- got ---\n%s--- want ---\n%s", name, norm, want)
	}
}

// TestDaemonServeAndCleanDrain: the daemon serves solves over HTTP, then a
// SIGTERM drains it cleanly — exit 0 and the exact stderr framing.
func TestDaemonServeAndCleanDrain(t *testing.T) {
	d := startDaemon(t, "-workers", "2", "-drain-timeout", "5s")
	if st := d.get(t, "/healthz"); st != http.StatusOK {
		t.Fatalf("/healthz = %d", st)
	}
	if st := d.get(t, "/readyz"); st != http.StatusOK {
		t.Fatalf("/readyz = %d", st)
	}
	c := client.New(d.addr, nil, client.Policy{})
	out, err := c.Solve(context.Background(), server.SolveRequest{
		Formula: "p cnf 2 2\ne 1 2 0\n1 0\n-2 0\n", Witness: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Decided() || out.Resp.Verdict != "TRUE" || len(out.Resp.Witness) != 2 {
		t.Fatalf("solve over HTTP: %+v", out)
	}
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := d.wait(t); code != 0 {
		t.Fatalf("exit %d after clean drain, want 0\nstderr: %s", code, d.stderrText())
	}
	checkGolden(t, "drain_clean.golden", d.stderrText())
}

// TestDaemonDrainDeadlineExit130: a SIGTERM with a solve in flight and a
// too-short drain deadline must force-cancel and exit 130.
func TestDaemonDrainDeadlineExit130(t *testing.T) {
	d := startDaemon(t, "-workers", "2", "-drain-timeout", "100ms")
	solveDone := make(chan client.Outcome, 1)
	go func() {
		c := client.New(d.addr, nil, client.Policy{MaxAttempts: 1})
		out, _ := c.Solve(context.Background(), server.SolveRequest{Formula: hardFormula(t)})
		solveDone <- out
	}()
	// Let the solve get admitted and start, then pull the plug.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(d.addr + "/statusz")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body) //nolint:errcheck
		resp.Body.Close()
		if strings.Contains(buf.String(), `"in_flight": 1`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("solve never became in-flight")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	code := d.wait(t)
	out := <-solveDone
	if out.Status == result.StatusOK {
		t.Skip("instance solved before the drain deadline on this machine")
	}
	if code != 130 {
		t.Fatalf("exit %d, want 130\nstderr: %s", code, d.stderrText())
	}
	if out.Status != result.StatusUnavailable || out.Resp.Stop != "cancelled" {
		t.Fatalf("force-cancelled solve got %d/%q, want 503/cancelled", out.Status, out.Resp.Stop)
	}
	checkGolden(t, "drain_forced.golden", d.stderrText())
}

// TestDaemonReadinessFlip: during a drain that is waiting out an in-flight
// solve, /healthz stays 200 (the process lives) while /readyz reports 503
// (send no new traffic) and new solves are shed.
func TestDaemonReadinessFlip(t *testing.T) {
	d := startDaemon(t, "-workers", "2", "-drain-timeout", "30s")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	solveDone := make(chan struct{})
	go func() {
		defer close(solveDone)
		c := client.New(d.addr, nil, client.Policy{MaxAttempts: 1})
		c.Solve(ctx, server.SolveRequest{Formula: hardFormula(t)}) //nolint:errcheck // outcome irrelevant
	}()
	deadline := time.Now().Add(5 * time.Second)
	for d.get(t, "/readyz") == http.StatusOK && time.Now().Before(deadline) {
		// Wait for the solve to be in flight before signalling; readyz
		// stays 200 until then.
		resp, err := http.Get(d.addr + "/statusz")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body) //nolint:errcheck
		resp.Body.Close()
		if strings.Contains(buf.String(), `"in_flight": 1`) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitStatus := func(path, what string, want int) {
		t.Helper()
		dl := time.Now().Add(5 * time.Second)
		for {
			if st := d.get(t, path); st == want {
				return
			} else if time.Now().After(dl) {
				t.Fatalf("%s never reached %d (last %d)", what, want, st)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitStatus("/readyz", "readiness", result.StatusUnavailable)
	if st := d.get(t, "/healthz"); st != http.StatusOK {
		t.Fatalf("/healthz during drain = %d, want 200", st)
	}
	// New work is refused while the old solve keeps its grace period.
	c := client.New(d.addr, nil, client.Policy{MaxAttempts: 1})
	out, err := c.Solve(context.Background(), server.SolveRequest{Formula: "p cnf 1 1\ne 1 0\n1 0\n"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != result.StatusUnavailable || out.Resp.Shed != "draining" {
		t.Fatalf("solve during drain: %d shed=%q, want 503 draining", out.Status, out.Resp.Shed)
	}
	// Disconnect the hard solve's client: its context cancels the solve,
	// the drain completes without hitting the deadline, exit 0.
	cancel()
	<-solveDone
	if code := d.wait(t); code != 0 {
		t.Fatalf("exit %d after drain, want 0\nstderr: %s", code, d.stderrText())
	}
}

// TestDaemonStartupFailure: an unusable listen address must exit 1 with a
// qbfd: message.
func TestDaemonStartupFailure(t *testing.T) {
	cmd := exec.Command(os.Args[0], "-addr", "256.0.0.1:1")
	cmd.Env = append(os.Environ(), "QBFD_TEST_RUN_MAIN=1")
	var errb bytes.Buffer
	cmd.Stderr = &errb
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 || !strings.Contains(errb.String(), "qbfd:") {
		t.Fatalf("err=%v stderr=%q, want exit 1 with a qbfd: message", err, errb.String())
	}
}

// postJSON posts a raw JSON body to the daemon and decodes the solve
// response. The crash tests use it to re-send exact sequence numbers —
// something the client.Session handle hides on purpose.
func (d *daemon) postJSON(t *testing.T, path, body string) (int, server.SolveResponse) {
	t.Helper()
	resp, err := http.Post(d.addr+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var out server.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST %s: decoding response: %v", path, err)
	}
	return resp.StatusCode, out
}

// TestDaemonJournalRecovery kills a journaled daemon with SIGKILL — no
// drain, no warning — and boots a fresh one over the same directory: the
// session is recovered, the retried in-flight sequence number replays
// the recorded response, the ladder continues, and the recovery stderr
// line matches the golden file.
func TestDaemonJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	d1 := startDaemon(t, "-workers", "1", "-journal-dir", dir, "-fsync", "always")
	c := client.New(d1.addr, nil, client.Policy{})
	ctx := context.Background()

	sess, out, err := c.OpenSession(ctx, server.SessionRequest{
		Formula: "p cnf 2 2\ne 1 2 0\n1 0\n-2 0\n"})
	if err != nil || sess == nil {
		t.Fatalf("open: %v (out %+v)", err, out)
	}
	if out, err := sess.Solve(ctx, nil, false); err != nil || out.Resp.Verdict != "TRUE" {
		t.Fatalf("solve 1: %v %+v", err, out)
	}
	if out, err := sess.Solve(ctx, []server.SessionOp{{Op: "push"}, {Op: "add", Lits: []int{-1}}}, false); err != nil || out.Resp.Verdict != "FALSE" {
		t.Fatalf("solve 2: %v %+v", err, out)
	}

	if err := d1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	if code := d1.wait(t); code == 0 {
		t.Fatalf("exit 0 after SIGKILL\nstderr: %s", d1.stderrText())
	}

	d2 := startDaemonEnv(t, nil, "-addr", "127.0.0.1:0", "-workers", "1", "-journal-dir", dir, "-fsync", "always")
	// A client that never saw solve 2's response retries the same seq:
	// the recovered idempotency record replays it instead of re-applying
	// the push.
	st, resp := d2.postJSON(t, "/v1/session/"+sess.ID(), `{"seq":2,"ops":[{"op":"push"},{"op":"add","lits":[-1]}]}`)
	if st != http.StatusOK || !resp.Replayed || resp.Verdict != "FALSE" || resp.Depth != 1 {
		t.Fatalf("replayed seq 2: %d %+v", st, resp)
	}
	// The recovered session keeps solving.
	st, resp = d2.postJSON(t, "/v1/session/"+sess.ID(), `{"seq":3,"ops":[{"op":"pop"}]}`)
	if st != http.StatusOK || resp.Verdict != "TRUE" || resp.Depth != 0 {
		t.Fatalf("seq 3 after recovery: %d %+v", st, resp)
	}

	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := d2.wait(t); code != 0 {
		t.Fatalf("exit %d after clean drain, want 0\nstderr: %s", code, d2.stderrText())
	}
	checkGolden(t, "journal_recovery.golden", d2.stderrText())
}

// TestDaemonBadFsyncPolicy: an unknown -fsync value must exit 1 before
// the daemon ever listens.
func TestDaemonBadFsyncPolicy(t *testing.T) {
	cmd := exec.Command(os.Args[0], "-journal-dir", t.TempDir(), "-fsync", "sometimes")
	cmd.Env = append(os.Environ(), "QBFD_TEST_RUN_MAIN=1")
	var errb bytes.Buffer
	cmd.Stderr = &errb
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 || !strings.Contains(errb.String(), "qbfd:") {
		t.Fatalf("err=%v stderr=%q, want exit 1 with a qbfd: message", err, errb.String())
	}
}

// TestDaemonSessions drives a sticky session end to end through the real
// binary with the client handle: open, incremental solves across a
// push/add/pop round trip, close, and a clean drain afterwards.
func TestDaemonSessions(t *testing.T) {
	d := startDaemon(t, "-workers", "1", "-max-sessions", "4", "-session-ttl", "1m")
	c := client.New(d.addr, nil, client.Policy{})
	ctx := context.Background()

	sess, out, err := c.OpenSession(ctx, server.SessionRequest{
		Formula: "p cnf 2 2\ne 1 2 0\n1 0\n-2 0\n"})
	if err != nil || sess == nil {
		t.Fatalf("open: %v (out %+v)", err, out)
	}
	out, err = sess.Solve(ctx, nil, false)
	if err != nil || out.Resp.Verdict != "TRUE" {
		t.Fatalf("solve 1: %v %+v", err, out)
	}
	out, err = sess.Solve(ctx, []server.SessionOp{{Op: "push"}, {Op: "add", Lits: []int{-1}}}, false)
	if err != nil || out.Resp.Verdict != "FALSE" || out.Resp.Depth != 1 {
		t.Fatalf("solve 2: %v %+v", err, out)
	}
	out, err = sess.Solve(ctx, []server.SessionOp{{Op: "pop"}}, false)
	if err != nil || out.Resp.Verdict != "TRUE" || out.Resp.Depth != 0 {
		t.Fatalf("solve 3: %v %+v", err, out)
	}
	if out, err = sess.Close(ctx); err != nil || out.Status != http.StatusOK {
		t.Fatalf("close: %v %+v", err, out)
	}

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := d.wait(t); code != 0 {
		t.Fatalf("exit %d after clean drain, want 0\nstderr: %s", code, d.stderrText())
	}
}
