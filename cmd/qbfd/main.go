// Command qbfd serves QBF solving over HTTP/JSON: a long-lived solver
// process with admission control, load shedding, per-request budget
// governance, panic quarantine with circuit breaking, and graceful
// drain. POST a JSON SolveRequest to /solve; probe liveness at /healthz
// and readiness at /readyz; read counters at /statusz.
//
// Sticky sessions expose incremental solving: POST a SessionRequest to
// /v1/session to pin a solver, then POST frame operations (push, pop,
// add, assume) plus a solve to /v1/session/<id> with a client sequence
// number, and DELETE the path to close. Learned clauses survive across
// calls under the frame-tagging rules, which is what makes a session
// ladder cheaper than re-solving from scratch. The store holds at most
// -max-sessions solvers (beyond that the least-recently-used idle
// session is evicted; 429 when all are busy) and reaps sessions idle
// longer than -session-ttl.
//
// Usage:
//
//	qbfd [flags]
//
// Budgets: each request may ask for time/node/memory budgets; the server
// clamps them to the -max-time/-max-nodes/-max-mem caps. Outcomes map to
// HTTP statuses the way the CLIs map exit codes: 200 for verdicts, 504
// timeout, 422 node limit, 507 memory limit, 503 cancelled/shed/drain,
// 500 contained panic, 429 queue full (with Retry-After).
//
// Durability: with -journal-dir set, every session mutation is written
// to a segmented write-ahead journal before it executes, under the
// -fsync policy (always, interval, or never). After a crash — SIGKILL,
// OOM, power loss — the next boot replays the journal: sessions come
// back with their frame stacks and sequence counters, torn tails are
// truncated at the first bad checksum, and clients that retry an
// in-flight call get a deterministic replay instead of a double
// execution. If the journal disk fails at runtime the daemon keeps
// serving in a visible degraded (non-durable) mode: /readyz stays 200
// with a "degraded:non-durable" marker and /statusz counts the append
// errors — durability is lost, traffic is not.
//
// Shutdown: SIGTERM or SIGINT starts a graceful drain — /readyz flips to
// 503, new and queued requests shed with 503, in-flight solves finish
// within -drain-timeout, after which they are cancelled cooperatively.
// Exit status 0 after a clean drain, 130 when the deadline forced
// cancellation, 1 on startup errors.
//
// Observability: -trace, -metrics-addr and -profile wire the same
// exporters as qbfsolve; server admission/shed/serve events ride in the
// trace alongside solver search events.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/journal"
	"repro/internal/server"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	workers := flag.Int("workers", 0, "solver worker pool size (0 = NumCPU)")
	queue := flag.Int("queue", 64, "admission queue depth; beyond it requests are shed with 429")
	queueTimeout := flag.Duration("queue-timeout", 2*time.Second, "longest a request may wait for a worker before being shed with 503")
	maxTime := flag.Duration("max-time", 30*time.Second, "server-wide cap on per-request time budgets (0 = uncapped)")
	maxNodes := flag.Int64("max-nodes", 0, "server-wide cap on per-request decision budgets (0 = uncapped)")
	maxMem := flag.Int64("max-mem", 0, "server-wide cap on per-request learned-constraint memory budgets in MiB (0 = uncapped)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "grace for in-flight solves on SIGTERM before they are cancelled")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive contained panics that open a configuration's circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "open-breaker cooldown before a half-open probe")
	maxSessions := flag.Int("max-sessions", 0, "sticky-session cap; beyond it the LRU idle session is evicted (0 = 64)")
	sessionTTL := flag.Duration("session-ttl", 0, "idle sessions older than this are reaped (0 = 5m)")
	journalDir := flag.String("journal-dir", "", "session write-ahead journal directory; sessions are recovered from it on boot (empty = non-durable)")
	fsync := flag.String("fsync", "always", "journal durability policy: always (fsync per append), interval (background flush), never")
	tracePath := flag.String("trace", "", "write a JSONL event trace to FILE (summarize with `qbfstat trace FILE`)")
	metricsAddr := flag.String("metrics-addr", "", "serve expvar event counters and pprof on ADDR (e.g. localhost:6060)")
	profile := flag.String("profile", "", "capture CPU and heap profiles to PREFIX.cpu.pprof / PREFIX.heap.pprof")
	flag.Parse()

	// A bad policy string is an operator typo, not a disk fault: fail fast
	// here instead of letting the server degrade to non-durable at boot.
	if _, err := journal.ParsePolicy(*fsync); err != nil {
		fail(err)
	}

	obs, err := telemetry.Setup(*tracePath, *metricsAddr, *profile)
	if err != nil {
		fail(err)
	}
	if obs.Addr != "" {
		fmt.Fprintf(os.Stderr, "qbfd: metrics and pprof at http://%s/debug/\n", obs.Addr)
	}

	srv := server.New(server.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		QueueTimeout: *queueTimeout,
		Caps: server.Caps{
			MaxTime:  *maxTime,
			MaxNodes: *maxNodes,
			MaxMem:   *maxMem << 20,
		},
		Breaker: server.BreakerConfig{
			Threshold: *breakerThreshold,
			Cooldown:  *breakerCooldown,
		},
		MaxSessions:     *maxSessions,
		SessionTTL:      *sessionTTL,
		JournalDir:      *journalDir,
		JournalFsync:    *fsync,
		JournalOnAppend: chaosAppendHook(),
		Tracer:          obs.Tracer,
	})
	if *journalDir != "" {
		js := srv.Snapshot().Journal
		switch {
		case js.Degraded:
			fmt.Fprintf(os.Stderr, "qbfd: journal: DEGRADED (non-durable) at %s\n", *journalDir)
		default:
			fmt.Fprintf(os.Stderr, "qbfd: journal: recovered %d sessions (%d records) from %s\n",
				js.RecoveredSessions, js.RecoveredRecords, *journalDir)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	// The listening line goes to stderr so scripts (and the golden CLI
	// tests) can discover the bound port when -addr uses port 0, without
	// disturbing any future stdout protocol.
	fmt.Fprintf(os.Stderr, "qbfd: listening on %s (workers=%d queue=%d queue-timeout=%v drain-timeout=%v)\n",
		ln.Addr(), effectiveWorkers(*workers), *queue, *queueTimeout, *drainTimeout)

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		finish(obs)
		fail(err)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "qbfd: %v received, draining (timeout %v)\n", s, *drainTimeout)
	}

	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(dctx)
	hs.Close() //nolint:errcheck // drain already resolved every request
	finish(obs)
	if errors.Is(drainErr, server.ErrDrainForced) {
		fmt.Fprintln(os.Stderr, "qbfd: drain deadline exceeded; in-flight solves were cancelled")
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "qbfd: drained cleanly")
}

// effectiveWorkers mirrors the server's default so the startup line
// reports the real pool size.
func effectiveWorkers(n int) int {
	if n > 0 {
		return n
	}
	return server.DefaultWorkers()
}

func finish(obs *telemetry.Observability) {
	if err := obs.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "qbfd:", err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qbfd:", err)
	os.Exit(1)
}
