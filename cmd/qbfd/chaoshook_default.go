//go:build !qbfdebug

package main

// chaosAppendHook is a no-op in production builds. Under the qbfdebug
// build tag it reads crash-injection knobs from the environment so the
// chaos suite can SIGKILL the daemon at an exact journal append.
func chaosAppendHook() func(int64) { return nil }
