//go:build qbfdebug

package main

import (
	"os"
	"strconv"
	"syscall"
)

// chaosAppendHook arms a self-SIGKILL after the Nth durable journal
// append when QBFD_CHAOS_KILL_AFTER_APPENDS is a positive integer.
// SIGKILL cannot be caught or deferred: the process dies with the
// journal in exactly the state the disk holds at that append, which is
// the torn-write scenario boot recovery has to absorb. The hook runs
// under the journal's lock, so the chosen append is the last record
// that can possibly be complete on disk.
func chaosAppendHook() func(int64) {
	n, err := strconv.ParseInt(os.Getenv("QBFD_CHAOS_KILL_AFTER_APPENDS"), 10, 64)
	if err != nil || n <= 0 {
		return nil
	}
	return func(total int64) {
		if total >= n {
			syscall.Kill(os.Getpid(), syscall.SIGKILL) //nolint:errcheck // dying is the point
		}
	}
}
