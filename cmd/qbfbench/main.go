// Command qbfbench regenerates the paper's experimental analysis (Section
// VII): Table I rows and the data series behind Figures 3–7, at a
// configurable scale.
//
// Suites:
//
//	ncf       — Table I rows 1–4 and Figure 3 (nested counterfactuals)
//	fpv       — Table I row 5 and Figure 4
//	dia       — Table I row 6 and Figure 5
//	prob      — Table I row 7 and Figure 7 (probabilistic class)
//	fixed     — Table I row 8 and Figure 7 (fixed class)
//	scaling   — Figure 6 (counter and semaphore series)
//	portfolio — racing-portfolio speedup vs the sequential engine
//	serve     — qbfd service smoke: throughput, shed rate, oracle agreement
//	gate      — qbfgate front-tier smoke: cache hit rate, failover, drain under load
//	session   — incremental-vs-one-shot: ladder agreement and push/assume variant sweep
//	all       — everything above
//
// Scatter CSVs land in -out (default "results/").
//
// Example:
//
//	qbfbench -suite all -scale default -out results/
//
// A SIGINT or SIGTERM cancels the campaign cooperatively: in-flight solves
// stop at their next propagation fixpoint, the tables and CSVs are written
// from whatever completed, and the process exits 130. One crashing or
// limit-stopped instance never takes the campaign down — contained
// failures are listed after the tables and the exit status is 1 when any
// occurred (0 otherwise).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dia"
	"repro/internal/models"
	"repro/internal/prenex"
	"repro/internal/telemetry"
)

// plotFigures enables ASCII figure rendering (the -plot flag).
var plotFigures bool

// campaignFailures counts contained per-instance failures across suites.
var campaignFailures int

func main() {
	suite := flag.String("suite", "all", "suite: ncf, fpv, dia, prob, fixed, scaling, portfolio, serve, gate, session, all")
	scaleName := flag.String("scale", "default", "experiment scale: smoke, default, full")
	outDir := flag.String("out", "results", "directory for CSV artifacts")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel solver instances")
	timeout := flag.Duration("timeout", 0, "override the scale's per-solve budget")
	mem := flag.Int64("mem", 0, "per-solve learned-constraint memory limit in MiB (0 = none)")
	retries := flag.Int("retries", 0, "extra attempts with doubled budgets after a limit stop")
	plot := flag.Bool("plot", false, "render ASCII versions of the figures to stdout")
	pWorkers := flag.Int("pworkers", 4, "portfolio suite: racing configurations per instance")
	share := flag.Bool("share", true, "portfolio suite: exchange learned constraints between workers")
	tracePath := flag.String("trace", "", "write a JSONL solver-event trace to FILE (summarize with `qbfstat trace FILE`)")
	metricsAddr := flag.String("metrics-addr", "", "serve expvar event counters and pprof on ADDR while the campaign runs")
	profile := flag.String("profile", "", "capture CPU and heap profiles to PREFIX.cpu.pprof / PREFIX.heap.pprof")
	flag.Parse()
	plotFigures = *plot

	scale, err := pickScale(*scaleName)
	if err != nil {
		fail(err)
	}
	if *timeout > 0 {
		scale.Timeout = *timeout
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fail(err)
	}
	// SIGINT/SIGTERM wind the campaign down: every in-flight and pending
	// solve returns UNKNOWN/cancelled at its next poll, the results written
	// so far are kept, and qbfbench exits 130 after reporting them.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	obs, err := telemetry.Setup(*tracePath, *metricsAddr, *profile)
	if err != nil {
		fail(err)
	}
	if obs.Addr != "" {
		fmt.Fprintf(os.Stderr, "qbfbench: metrics and pprof at http://%s/debug/\n", obs.Addr)
	}
	cfg := bench.Config{
		Timeout:  scale.Timeout,
		MemLimit: *mem << 20,
		Workers:  *workers,
		Retry:    bench.RetryPolicy{Attempts: *retries},
		SolverOptions: core.Options{
			Telemetry: obs.Tracer,
		},
	}

	var rows []bench.TableRow
	run := func(name string) {
		switch name {
		case "ncf":
			rows = append(rows, runNCF(ctx, scale, cfg, *outDir)...)
		case "fpv":
			rows = append(rows, runSimple(ctx, "FPV", bench.FPVSuite(scale), scale, cfg, filepath.Join(*outDir, "fig4_fpv_scatter.csv")))
		case "dia":
			rows = append(rows, runSimple(ctx, "DIA", bench.DIASuite(scale), scale, cfg, filepath.Join(*outDir, "fig5_dia_scatter.csv")))
		case "prob":
			rows = append(rows, runSimple(ctx, "PROB", bench.EvalSuite(scale, false), scale, cfg, filepath.Join(*outDir, "fig7_prob_scatter.csv")))
		case "fixed":
			rows = append(rows, runSimple(ctx, "FIXED", bench.EvalSuite(scale, true), scale, cfg, filepath.Join(*outDir, "fig7_fixed_scatter.csv")))
		case "scaling":
			runScaling(scale, *outDir)
		case "portfolio":
			runPortfolioSuite(ctx, cfg, *pWorkers, *share, *outDir)
		case "serve":
			runServeSuite(ctx, cfg, *outDir)
		case "gate":
			runGateSuite(ctx, cfg, *outDir)
		case "session":
			runSessionSuite(ctx, cfg, *outDir)
		default:
			fail(fmt.Errorf("unknown suite %q", name))
		}
	}
	if *suite == "all" {
		for _, s := range []string{"ncf", "fpv", "dia", "prob", "fixed", "scaling", "portfolio", "serve", "gate", "session"} {
			run(s)
		}
	} else {
		run(*suite)
	}

	if len(rows) > 0 {
		fmt.Println("\nTable I (regenerated, scaled):")
		bench.WriteTable(os.Stdout, rows)
	}
	// os.Exit skips deferred calls, so flush the trace/profiles explicitly
	// before every exit path.
	if err := obs.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "qbfbench:", err)
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "qbfbench: interrupted — tables and CSVs above are partial")
		os.Exit(130)
	}
	if campaignFailures > 0 {
		fmt.Fprintf(os.Stderr, "qbfbench: %d instance(s) failed (contained); aggregates exclude them\n", campaignFailures)
		os.Exit(1)
	}
}

// reportFailures lists the contained per-instance failures of a suite run
// so a crash in one instance is visible without poisoning the aggregates.
func reportFailures(results []bench.RunResult) {
	for _, r := range bench.Errored(results) {
		campaignFailures++
		fmt.Fprintf(os.Stderr, "  FAILED %s: %v\n", r.Name, r.Failure())
	}
}

func pickScale(name string) (bench.Scale, error) {
	switch name {
	case "smoke":
		return bench.ScaleSmoke, nil
	case "default":
		return bench.ScaleDefault, nil
	case "full":
		return bench.ScaleFull, nil
	}
	return bench.Scale{}, fmt.Errorf("unknown scale %q", name)
}

// runNCF reproduces Table I rows 1–4 (one per strategy) and the Figure 3
// median scatter against QUBE(TO)*.
func runNCF(ctx context.Context, scale bench.Scale, cfg bench.Config, outDir string) []bench.TableRow {
	insts := bench.NCFSuite(scale)
	fmt.Printf("NCF: %d instances × (1 PO + 4 TO) solves, budget %v each\n",
		len(insts), cfg.Timeout)
	start := time.Now()
	results := bench.RunSuite(ctx, insts, cfg)
	fmt.Printf("NCF done in %v\n", time.Since(start).Round(time.Second))
	reportFailures(results)

	var rows []bench.TableRow
	for _, s := range prenex.Strategies {
		rows = append(rows, bench.Aggregate("NCF", results, s, scale.Margin()))
	}
	writeCSV(filepath.Join(outDir, "fig3_ncf_scatter.csv"),
		bench.MedianScatter(results, prenex.EUpAUp, true))
	return rows
}

// runSimple handles the single-strategy suites (FPV, DIA, PROB, FIXED).
func runSimple(ctx context.Context, name string, insts []bench.Instance, scale bench.Scale, cfg bench.Config, csvPath string) bench.TableRow {
	fmt.Printf("%s: %d instances, budget %v each\n", name, len(insts), cfg.Timeout)
	start := time.Now()
	results := bench.RunSuite(ctx, insts, cfg)
	fmt.Printf("%s done in %v\n", name, time.Since(start).Round(time.Second))
	reportFailures(results)
	writeCSV(csvPath, bench.Scatter(results, prenex.EUpAUp, false))
	return bench.Aggregate(name, results, prenex.EUpAUp, scale.Margin())
}

// runScaling reproduces Figure 6: counter<N> (growing diameter) and
// semaphore<N> (fixed diameter, growing size) series for both solvers.
func runScaling(scale bench.Scale, outDir string) {
	series := map[string][]bench.ScalingPoint{}
	po := dia.SolverPO(context.Background(), core.Options{TimeLimit: scale.Timeout})
	to := dia.SolverTO(context.Background(), prenex.EUpAUp, core.Options{TimeLimit: scale.Timeout})

	for n := 2; n <= scale.DIAMaxBits; n++ {
		m := models.Counter(n)
		series["PO"] = append(series["PO"], bench.ScalingSeries(m, m.KnownDiameter+1, po)...)
		series["TO"] = append(series["TO"], bench.ScalingSeries(m, m.KnownDiameter+1, to)...)
	}
	for n := 1; n <= 2*scale.DIAMaxBits+1; n += 2 {
		m := models.Semaphore(n)
		series["PO"] = append(series["PO"], bench.ScalingSeries(m, m.KnownDiameter+1, po)...)
		series["TO"] = append(series["TO"], bench.ScalingSeries(m, m.KnownDiameter+1, to)...)
	}

	path := filepath.Join(outDir, "fig6_scaling.csv")
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	bench.WriteScalingCSV(f, series)
	fmt.Printf("scaling series written to %s\n", path)
	if plotFigures {
		bench.RenderScaling(os.Stdout, series, "Figure 6 (all families)")
	}
}

func writeCSV(path string, pts []bench.ScatterPoint) {
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	bench.WriteScatterCSV(f, pts)
	above, below, on := bench.ScatterSummary(pts)
	fmt.Printf("  scatter %s: %d above diagonal (PO wins), %d below, %d on\n",
		filepath.Base(path), above, below, on)
	if plotFigures {
		bench.RenderScatter(os.Stdout, pts, filepath.Base(path))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qbfbench:", err)
	os.Exit(1)
}
