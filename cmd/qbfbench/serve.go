package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/qdimacs"
	"repro/internal/randqbf"
	"repro/internal/result"
	"repro/internal/server"
	"repro/internal/server/client"
)

// serveInstance is one pooled request payload with its oracle verdict.
type serveInstance struct {
	name    string
	formula string
	oracle  core.Verdict
}

// serveSuite builds the request pool for the serving benchmark: small
// model-A instances plus fixed-class trees, each solved once sequentially
// up front so every service answer can be checked against a known verdict.
// The instances are deliberately quick — the suite measures the service
// machinery (admission, queueing, shedding, retry), not search time.
func serveSuite(ctx context.Context, budget time.Duration) ([]serveInstance, time.Duration, error) {
	var pool []serveInstance
	seqStart := time.Now()
	addProb := func(label string, p randqbf.ProbParams) error {
		q := randqbf.Prob(p)
		text, err := qdimacs.WriteString(q)
		if err != nil {
			return err
		}
		r, err := core.Solve(ctx, q, core.Options{TimeLimit: budget})
		if err != nil {
			return err
		}
		pool = append(pool, serveInstance{name: label, formula: text, oracle: r.Verdict})
		return nil
	}
	for seed := int64(0); seed < 4; seed++ {
		if err := addProb(fmt.Sprintf("prob-%d", seed), randqbf.ProbParams{
			Blocks: 2, BlockSize: 6, Clauses: 26, Length: 3, MaxUniversal: 1, Seed: seed,
		}); err != nil {
			return nil, 0, err
		}
	}
	// Medium instances (tens of milliseconds each) keep the worker pool
	// busy long enough for the admission queue to fill, so the run
	// actually exercises shedding and client backoff.
	for _, bs := range []int{18, 20} {
		for seed := int64(2); seed < 4; seed++ {
			if err := addProb(fmt.Sprintf("prob-med-%d-%d", bs, seed), randqbf.ProbParams{
				Blocks: 3, BlockSize: bs, Clauses: 21 * bs, Length: 5, MaxUniversal: 1, Seed: seed,
			}); err != nil {
				return nil, 0, err
			}
		}
	}
	for seed := int64(0); seed < 4; seed++ {
		tree, _, _ := randqbf.MiniscopeFilter(randqbf.Fixed(seed), 0)
		text, err := qdimacs.WriteString(tree)
		if err != nil {
			return nil, 0, err
		}
		r, err := core.Solve(ctx, tree, core.Options{TimeLimit: budget, Mode: core.ModePartialOrder})
		if err != nil {
			return nil, 0, err
		}
		pool = append(pool, serveInstance{
			name:    fmt.Sprintf("fixed-%d", seed),
			formula: text,
			oracle:  r.Verdict,
		})
	}
	return pool, time.Since(seqStart), nil
}

// serveReport is the BENCH_serve.json schema.
type serveReport struct {
	Suite         string  `json:"suite"`
	Workers       int     `json:"workers"`
	QueueDepth    int     `json:"queue_depth"`
	Clients       int     `json:"clients"`
	Requests      int     `json:"requests"`
	Decided       int     `json:"decided"`
	Undecided     int     `json:"undecided"`
	Disagreements int     `json:"disagreements"`
	Retries       int     `json:"retries"`
	WallSeconds   float64 `json:"wall_seconds"`
	ThroughputRPS float64 `json:"throughput_rps"`
	LatencyP50MS  float64 `json:"latency_p50_ms"`
	LatencyP95MS  float64 `json:"latency_p95_ms"`
	// SequentialSeconds is the up-front oracle pass over the distinct pool
	// instances, for scale context (not comparable to wall_seconds — the
	// service replays each instance many times).
	SequentialSeconds float64          `json:"sequential_seconds"`
	Shed              map[string]int64 `json:"shed"`
	Panics            int64            `json:"panics"`
	DrainClean        bool             `json:"drain_clean"`
}

// runServeSuite measures the solve service end to end: a real qbfd server
// on a loopback socket, a fleet of retrying clients hammering a small
// instance pool, every 200 checked against the sequential oracle, and a
// graceful drain at the end. The admission queue is kept deliberately
// shallow so the run exercises shedding and client backoff, not just the
// happy path. A verdict disagreement is a soundness failure and fails the
// campaign; shed requests that exhaust their retries are reported but are
// not failures — that is the service working as designed under overload.
func runServeSuite(ctx context.Context, cfg bench.Config, outDir string) {
	const (
		svcWorkers = 2
		queueDepth = 4
		clients    = 16
		perClient  = 8
	)
	pool, seqTotal, err := serveSuite(ctx, cfg.Timeout)
	if err != nil {
		fail(fmt.Errorf("serve suite oracle pass: %w", err))
	}
	fmt.Printf("SERVE: %d clients × %d requests over %d pooled instances, %d workers, queue %d\n",
		clients, perClient, len(pool), svcWorkers, queueDepth)

	srv := server.New(server.Config{
		Workers:      svcWorkers,
		QueueDepth:   queueDepth,
		QueueTimeout: 5 * time.Second,
		Caps:         server.Caps{MaxTime: cfg.Timeout},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln) //nolint:errcheck // shut down via Close below
	base := "http://" + ln.Addr().String()

	var (
		mu            sync.Mutex
		latencies     []time.Duration
		decided       int
		undecided     int
		disagreements int
		retries       int
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := client.New(base, nil, client.Policy{
				MaxAttempts: 6,
				BaseDelay:   10 * time.Millisecond,
				MaxDelay:    200 * time.Millisecond,
				Seed:        int64(c) + 1,
			})
			for i := 0; i < perClient; i++ {
				inst := pool[(c*perClient+i)%len(pool)]
				t0 := time.Now()
				out, err := cl.Solve(ctx, server.SolveRequest{Formula: inst.formula})
				took := time.Since(t0)
				mu.Lock()
				retries += out.Attempts - 1
				if err != nil || out.Status != result.StatusOK {
					undecided++
				} else {
					decided++
					latencies = append(latencies, took)
					if out.Resp.Verdict != inst.oracle.String() {
						disagreements++
						fmt.Fprintf(os.Stderr, "  DISAGREE %s: oracle %v, service %v\n",
							inst.name, inst.oracle, out.Resp.Verdict)
					}
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	drainErr := srv.Drain(dctx)
	hs.Close() //nolint:errcheck // drain already resolved every request
	snap := srv.Snapshot()

	rep := serveReport{
		Suite:             "serve",
		Workers:           svcWorkers,
		QueueDepth:        queueDepth,
		Clients:           clients,
		Requests:          clients * perClient,
		Decided:           decided,
		Undecided:         undecided,
		Disagreements:     disagreements,
		Retries:           retries,
		WallSeconds:       wall.Seconds(),
		SequentialSeconds: seqTotal.Seconds(),
		Shed:              snap.Shed,
		Panics:            snap.Panics,
		DrainClean:        drainErr == nil,
	}
	if wall > 0 {
		rep.ThroughputRPS = float64(decided) / wall.Seconds()
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		rep.LatencyP50MS = float64(latencies[len(latencies)/2].Microseconds()) / 1000
		rep.LatencyP95MS = float64(latencies[len(latencies)*95/100].Microseconds()) / 1000
	}

	path := filepath.Join(outDir, "BENCH_serve.json")
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("  %d/%d decided in %v (%.0f solves/s, p50 %.1fms, p95 %.1fms, %d retries, shed %v) → %s\n",
		decided, rep.Requests, wall.Round(time.Millisecond), rep.ThroughputRPS,
		rep.LatencyP50MS, rep.LatencyP95MS, retries, snap.Shed, path)
	if disagreements > 0 {
		campaignFailures += disagreements
	}
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "  serve: drain was forced:", drainErr)
		campaignFailures++
	}
	if snap.Panics > 0 {
		fmt.Fprintf(os.Stderr, "  serve: %d contained panic(s) during the run\n", snap.Panics)
		campaignFailures += int(snap.Panics)
	}
}
