package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/bench"
	"repro/internal/portfolio"
	"repro/internal/randqbf"
)

// portfolioSuite builds the curated portfolio-vs-sequential suite: six
// structured (fixed-class) trees on which the sequential default is already
// near-optimal — the portfolio must not lose ground there — and four
// adversarial model-A instances, found empirically, on which the default
// partial-order configuration is 8–60× slower than some other configuration
// in the default schedule. The adversarial seeds make the comparison mean
// something on a single CPU: a racing portfolio only pays off when
// configuration variance exists, which is the paper's own PO-vs-TO message.
func portfolioSuite() []bench.Instance {
	var insts []bench.Instance
	for i := int64(0); i < 6; i++ {
		tree, _, _ := randqbf.MiniscopeFilter(randqbf.Fixed(i), 0)
		insts = append(insts, bench.MakeInstance(fmt.Sprintf("fixed-%d", i), tree))
	}
	for _, seed := range []int64{2, 15, 20, 37} {
		q := randqbf.Prob(randqbf.ProbParams{
			Blocks: 3, BlockSize: 24, Clauses: 504, Length: 5, MaxUniversal: 1, Seed: seed,
		})
		insts = append(insts, bench.MakeInstance(fmt.Sprintf("prob-adv-%d", seed), q))
	}
	return insts
}

// portfolioReport is the BENCH_portfolio.json schema.
type portfolioReport struct {
	Suite                  string                    `json:"suite"`
	Workers                int                       `json:"workers"`
	Share                  bool                      `json:"share"`
	Instances              []portfolioReportInstance `json:"instances"`
	SequentialTotalSeconds float64                   `json:"sequential_total_seconds"`
	PortfolioTotalSeconds  float64                   `json:"portfolio_total_seconds"`
	Speedup                float64                   `json:"speedup"`
	Disagreements          int                       `json:"disagreements"`
}

type portfolioReportInstance struct {
	Name              string  `json:"name"`
	SequentialResult  string  `json:"sequential_result"`
	PortfolioResult   string  `json:"portfolio_result"`
	SequentialSeconds float64 `json:"sequential_seconds"`
	PortfolioSeconds  float64 `json:"portfolio_seconds"`
	Disagree          bool    `json:"disagree"`
}

// runPortfolioSuite compares the sequential engine against the portfolio
// backend on the curated suite and writes BENCH_portfolio.json. A verdict
// disagreement is a soundness failure and fails the campaign.
func runPortfolioSuite(ctx context.Context, cfg bench.Config, pWorkers int, share bool, outDir string) {
	insts := portfolioSuite()
	fmt.Printf("PORTFOLIO: %d instances, sequential PO vs %d-worker portfolio (share=%v), budget %v each\n",
		len(insts), pWorkers, share, cfg.Timeout)
	backend := portfolio.BackendFunc(portfolio.Options{Workers: pWorkers, Share: share})
	start := time.Now()
	cs := bench.CompareBackends(ctx, insts, cfg, backend)
	fmt.Printf("PORTFOLIO done in %v\n", time.Since(start).Round(time.Millisecond))

	sum := bench.Summarize(cs)
	rep := portfolioReport{
		Suite:                  "portfolio",
		Workers:                pWorkers,
		Share:                  share,
		SequentialTotalSeconds: sum.SequentialTotal.Seconds(),
		PortfolioTotalSeconds:  sum.BackendTotal.Seconds(),
		Disagreements:          sum.Disagreements,
	}
	if sum.BackendTotal > 0 {
		rep.Speedup = float64(sum.SequentialTotal) / float64(sum.BackendTotal)
	}
	for _, c := range cs {
		rep.Instances = append(rep.Instances, portfolioReportInstance{
			Name:              c.Name,
			SequentialResult:  c.Sequential.Result.String(),
			PortfolioResult:   c.Backend.Result.String(),
			SequentialSeconds: c.Sequential.Time.Seconds(),
			PortfolioSeconds:  c.Backend.Time.Seconds(),
			Disagree:          c.Disagree,
		})
		if c.Disagree {
			fmt.Fprintf(os.Stderr, "  DISAGREE %s: sequential %v, portfolio %v\n",
				c.Name, c.Sequential.Result, c.Backend.Result)
		}
	}

	path := filepath.Join(outDir, "BENCH_portfolio.json")
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("  sequential total %v, portfolio total %v (speedup %.2f×) → %s\n",
		sum.SequentialTotal.Round(time.Millisecond), sum.BackendTotal.Round(time.Millisecond),
		rep.Speedup, path)
	if sum.Disagreements > 0 {
		campaignFailures += sum.Disagreements
	}
}
