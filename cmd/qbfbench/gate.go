package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gate"
	"repro/internal/qdimacs"
	"repro/internal/randqbf"
	"repro/internal/result"
	"repro/internal/server"
	"repro/internal/server/client"
)

// gateReport is the BENCH_gate.json schema.
type gateReport struct {
	Suite         string  `json:"suite"`
	Backends      int     `json:"backends"`
	Clients       int     `json:"clients"`
	Requests      int     `json:"requests"`
	Decided       int     `json:"decided"`
	Undecided     int     `json:"undecided"`
	Disagreements int     `json:"disagreements"`
	Dropped       int     `json:"dropped"`
	CacheHits     int64   `json:"cache_hits"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	Coalesced     int64   `json:"coalesced"`
	Hedges        int64   `json:"hedges"`
	HedgeWins     int64   `json:"hedge_wins"`
	Failovers     int64   `json:"failovers"`
	WallSeconds   float64 `json:"wall_seconds"`
	ThroughputRPS float64 `json:"throughput_rps"`
	LatencyP50MS  float64 `json:"latency_p50_ms"`
	LatencyP95MS  float64 `json:"latency_p95_ms"`
	// SequentialSeconds is the up-front oracle pass over the pool.
	SequentialSeconds float64         `json:"sequential_seconds"`
	Drain             gateDrainReport `json:"drain"`
}

// gateDrainReport covers phase 2: one backend drains gracefully while
// clients keep hammering the gate. "Dropped" is a transport-level failure
// toward a client — the contract is that there are none: in-flight solves
// on the draining backend finish, new ones fail over.
type gateDrainReport struct {
	Requests      int  `json:"requests"`
	Decided       int  `json:"decided"`
	Undecided     int  `json:"undecided"`
	Disagreements int  `json:"disagreements"`
	Dropped       int  `json:"dropped"`
	DrainClean    bool `json:"drain_clean"`
}

// gatePool builds the request pool for the gate benchmark: quick model-A
// instances, each solved once sequentially so every gate answer has an
// oracle. Kept small and fast on purpose — the suite measures the front
// tier (routing, caching, failover), not search time.
func gatePool(ctx context.Context, budget time.Duration) ([]serveInstance, time.Duration, error) {
	var pool []serveInstance
	seqStart := time.Now()
	for seed := int64(0); seed < 6; seed++ {
		q := randqbf.Prob(randqbf.ProbParams{
			Blocks: 2, BlockSize: 6, Clauses: 26, Length: 3, MaxUniversal: 1, Seed: 40 + seed,
		})
		text, err := qdimacs.WriteString(q)
		if err != nil {
			return nil, 0, err
		}
		r, err := core.Solve(ctx, q, core.Options{TimeLimit: budget})
		if err != nil {
			return nil, 0, err
		}
		pool = append(pool, serveInstance{
			name:    fmt.Sprintf("gate-prob-%d", seed),
			formula: text,
			oracle:  r.Verdict,
		})
	}
	return pool, time.Since(seqStart), nil
}

// gateStorm drives clients×perClient requests through the gate, checking
// every 200 against the oracle. It returns (decided, undecided,
// disagreements, dropped, latencies); dropped counts transport-level
// client errors, which the gate contract says must not happen.
func gateStorm(ctx context.Context, base string, pool []serveInstance, clients, perClient int) (int, int, int, int, []time.Duration) {
	var (
		mu            sync.Mutex
		latencies     []time.Duration
		decided       int
		undecided     int
		disagreements int
		dropped       int
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := client.New(base, nil, client.Policy{
				MaxAttempts: 4,
				BaseDelay:   10 * time.Millisecond,
				MaxDelay:    200 * time.Millisecond,
				Seed:        int64(c) + 1,
			})
			for i := 0; i < perClient; i++ {
				// Repeat-heavy draw: every client walks the same small pool,
				// so most requests after the first lap are cache hits.
				inst := pool[(c+i)%len(pool)]
				t0 := time.Now()
				out, err := cl.Solve(ctx, server.SolveRequest{Formula: inst.formula})
				took := time.Since(t0)
				mu.Lock()
				switch {
				case err != nil && out.Status == 0:
					dropped++
					fmt.Fprintf(os.Stderr, "  DROPPED %s: %v\n", inst.name, err)
				case err != nil || out.Status != result.StatusOK:
					undecided++
				default:
					decided++
					latencies = append(latencies, took)
					if out.Resp.Verdict != inst.oracle.String() {
						disagreements++
						fmt.Fprintf(os.Stderr, "  DISAGREE %s: oracle %v, gate %v (source %q)\n",
							inst.name, inst.oracle, out.Resp.Verdict, out.Resp.Source)
					}
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	return decided, undecided, disagreements, dropped, latencies
}

// runGateSuite measures the front tier end to end: three real qbfd
// backends on loopback sockets behind one qbfgate, a repeat-heavy client
// storm (phase 1: the canonical cache must convert repeats into hits),
// then a second storm during which backend 0 drains gracefully (phase 2:
// zero dropped requests — in-flight solves finish, new ones fail over).
// A verdict disagreement or a dropped request fails the campaign.
func runGateSuite(ctx context.Context, cfg bench.Config, outDir string) {
	const (
		nBackends = 3
		clients   = 12
		perClient = 10
	)
	pool, seqTotal, err := gatePool(ctx, cfg.Timeout)
	if err != nil {
		fail(fmt.Errorf("gate suite oracle pass: %w", err))
	}
	fmt.Printf("GATE: %d clients × %d requests over %d pooled instances, %d backends\n",
		clients, perClient, len(pool), nBackends)

	var (
		backends  []*server.Server
		httpSrvs  []*http.Server
		listeners []net.Listener
		urls      []string
	)
	for i := 0; i < nBackends; i++ {
		srv := server.New(server.Config{
			Workers:      2,
			QueueDepth:   64,
			QueueTimeout: 5 * time.Second,
			Caps:         server.Caps{MaxTime: cfg.Timeout},
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fail(err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln) //nolint:errcheck // shut down via Close below
		backends = append(backends, srv)
		httpSrvs = append(httpSrvs, hs)
		listeners = append(listeners, ln)
		urls = append(urls, "http://"+ln.Addr().String())
	}

	g, err := gate.New(gate.Config{
		Backends:   urls,
		HedgeDelay: 25 * time.Millisecond,
		Pool: gate.PoolConfig{
			ProbeInterval: 100 * time.Millisecond,
			ProbeTimeout:  500 * time.Millisecond,
		},
	})
	if err != nil {
		fail(err)
	}
	gln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	ghs := &http.Server{Handler: g.Handler()}
	go ghs.Serve(gln) //nolint:errcheck // shut down via Close below
	base := "http://" + gln.Addr().String()

	// Phase 1: repeat-heavy storm. The pool is smaller than the request
	// count, so once each instance has been solved live the canonical
	// cache should answer the rest.
	start := time.Now()
	decided, undecided, disagreements, dropped, latencies := gateStorm(ctx, base, pool, clients, perClient)
	wall := time.Since(start)

	// Phase 2: drain backend 0 mid-storm. The drain starts after the
	// storm is in flight; the gate's probes see /readyz go unready and
	// route around it while the backend finishes what it already admitted.
	drainErrCh := make(chan error, 1)
	go func() {
		time.Sleep(50 * time.Millisecond)
		dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drainErrCh <- backends[0].Drain(dctx)
	}()
	dDecided, dUndecided, dDisagreements, dDropped, _ := gateStorm(ctx, base, pool, clients/2, perClient/2)
	drainErr := <-drainErrCh

	snap := g.Snapshot()
	g.Stop()
	ghs.Close() //nolint:errcheck // storm already finished
	for i, srv := range backends {
		if i != 0 { // backend 0 drained during phase 2
			dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			if err := srv.Drain(dctx); err != nil {
				fmt.Fprintf(os.Stderr, "  gate: backend %d drain was forced: %v\n", i, err)
				campaignFailures++
			}
			cancel()
		}
		httpSrvs[i].Close() //nolint:errcheck // drain already resolved every request
		listeners[i].Close()
	}

	rep := gateReport{
		Suite:             "gate",
		Backends:          nBackends,
		Clients:           clients,
		Requests:          clients * perClient,
		Decided:           decided,
		Undecided:         undecided,
		Disagreements:     disagreements + dDisagreements,
		Dropped:           dropped,
		CacheHits:         snap.CacheHits,
		Coalesced:         snap.Coalesced,
		Hedges:            snap.Hedges,
		HedgeWins:         snap.HedgeWins,
		Failovers:         snap.Failovers,
		WallSeconds:       wall.Seconds(),
		SequentialSeconds: seqTotal.Seconds(),
		Drain: gateDrainReport{
			Requests:      (clients / 2) * (perClient / 2),
			Decided:       dDecided,
			Undecided:     dUndecided,
			Disagreements: dDisagreements,
			Dropped:       dDropped,
			DrainClean:    drainErr == nil,
		},
	}
	if lookups := snap.CacheHits + snap.CacheMisses; lookups > 0 {
		rep.CacheHitRate = float64(snap.CacheHits) / float64(lookups)
	}
	if wall > 0 {
		rep.ThroughputRPS = float64(decided) / wall.Seconds()
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		rep.LatencyP50MS = float64(latencies[len(latencies)/2].Microseconds()) / 1000
		rep.LatencyP95MS = float64(latencies[len(latencies)*95/100].Microseconds()) / 1000
	}

	path := filepath.Join(outDir, "BENCH_gate.json")
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("  phase 1: %d/%d decided in %v (%.0f solves/s, cache hit rate %.0f%%, p50 %.1fms, p95 %.1fms)\n",
		decided, rep.Requests, wall.Round(time.Millisecond), rep.ThroughputRPS,
		100*rep.CacheHitRate, rep.LatencyP50MS, rep.LatencyP95MS)
	fmt.Printf("  phase 2: %d/%d decided during drain, %d dropped, drain clean: %v → %s\n",
		dDecided, rep.Drain.Requests, dDropped, rep.Drain.DrainClean, path)

	if n := rep.Disagreements; n > 0 {
		campaignFailures += n
	}
	if rep.CacheHitRate == 0 {
		fmt.Fprintln(os.Stderr, "  gate: repeat-heavy storm produced no cache hits")
		campaignFailures++
	}
	if total := dropped + dDropped; total > 0 {
		fmt.Fprintf(os.Stderr, "  gate: %d request(s) dropped at the transport level\n", total)
		campaignFailures += total
	}
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "  gate: backend 0 drain was forced:", drainErr)
		campaignFailures++
	}
}
