package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dia"
	"repro/internal/models"
	"repro/internal/qbf"
	"repro/internal/qdimacs"
	"repro/internal/randqbf"
	"repro/internal/result"
	"repro/internal/server"
	"repro/internal/server/client"
)

// The session suite measures what the incremental API is for: amortizing
// learned constraints across closely related solve calls. Two experiments
// over the diameter smoke pool, both oracle-checked:
//
//   - Ladder agreement: the incremental diameter ladder must reproduce the
//     one-shot driver's verdict at every step and the known diameter, with
//     a bounded decision overhead (the ladder prefix is built once for
//     maxN, which makes the early tiny steps slightly more expensive).
//
//   - Variant sweep: solve a ladder step formula φk once, then re-solve
//     perturbations of it — each root-block literal assumed in a pushed
//     frame — against fresh one-shot solves of the same perturbed
//     formulas. All of φk's learning sits at frame 0 and survives every
//     pop, so the incremental session must beat repeated one-shot solving
//     on both decisions (deterministic) and wall clock (min over
//     repetitions, to shave scheduler noise).
//
// check.sh gates on the report: agreement is a soundness failure, and the
// variant decision ratio and wall speedup must both exceed 1.

// sessionLadderResult is one model's ladder-agreement row.
type sessionLadderResult struct {
	Model       string  `json:"model"`
	Diameter    int     `json:"diameter"`
	Agrees      bool    `json:"agrees"`
	OneShotDecs int64   `json:"one_shot_decisions"`
	IncDecs     int64   `json:"incremental_decisions"`
	OneShotMS   float64 `json:"one_shot_ms"`
	IncMS       float64 `json:"incremental_ms"`
}

// sessionVariantResult is one base instance's variant-sweep row.
type sessionVariantResult struct {
	Model       string  `json:"model"`
	Step        int     `json:"step"`
	Variants    int     `json:"variants"`
	Agrees      bool    `json:"agrees"`
	OneShotDecs int64   `json:"one_shot_decisions"`
	IncDecs     int64   `json:"incremental_decisions"`
	OneShotMS   float64 `json:"one_shot_ms"`
	IncMS       float64 `json:"incremental_ms"`
}

// sessionDurabilityResult is the journaled-service phase row: the same
// concurrent session ladder workload driven through a real server over
// loopback twice, once non-durable and once with the write-ahead journal
// on under the interval fsync policy.
type sessionDurabilityResult struct {
	Sessions     int  `json:"sessions"`
	CallsPerSess int  `json:"calls_per_session"`
	Reps         int  `json:"reps"`
	Agrees       bool `json:"agrees"`
	// BaselineMS and DurableMS are each the min over reps.
	BaselineMS float64 `json:"baseline_ms"`
	DurableMS  float64 `json:"durable_ms"`
	// JournalOverhead is durable/baseline wall; check.sh gates it against
	// QBF_JOURNAL_TOLERANCE (durability must cost a bounded factor, not a
	// cliff).
	JournalOverhead float64 `json:"journal_overhead"`
	JournalAppends  int64   `json:"journal_appends"`
}

// sessionReport is the BENCH_session.json schema.
type sessionReport struct {
	Suite      string                   `json:"suite"`
	Ladders    []sessionLadderResult    `json:"ladders"`
	Variant    []sessionVariantResult   `json:"variant_sweep"`
	Durability *sessionDurabilityResult `json:"durability,omitempty"`
	// Agrees is the conjunction of every per-row agreement (hard gate).
	Agrees bool `json:"agrees"`
	// LadderDecisionRatio is incremental/one-shot decisions summed over the
	// ladder pool (gate: ≤ 1.5; the fixed maxN prefix costs a little on
	// tiny steps, but a blowup here means per-solve heuristic state leaked
	// across steps).
	LadderDecisionRatio float64 `json:"ladder_decision_ratio"`
	// VariantDecisionRatio is one-shot/incremental decisions summed over
	// the variant sweep (gate: > 1; learned-constraint survival must pay).
	VariantDecisionRatio float64 `json:"variant_decision_ratio"`
	// VariantWallSpeedup is one-shot/incremental wall time summed over the
	// sweep, each side the min across repetitions (gate: > 1).
	VariantWallSpeedup float64 `json:"variant_wall_speedup"`
	Reps               int     `json:"reps"`
}

// sessionLadderPool is the diameter smoke pool for agreement checking.
func sessionLadderPool() []*models.Model {
	return []*models.Model{
		models.Counter(2),
		models.Semaphore(1),
		models.Semaphore(2),
		models.Ring(3),
		models.TwoBit(),
		models.DME(2),
	}
}

// sessionVariantPool picks base instances with enough search for learned
// constraints to matter but cheap enough for a CI gate: (model, ladder
// step) pairs whose φk solves in the 1ms–500ms range.
func sessionVariantPool() []struct {
	m *models.Model
	k int
} {
	return []struct {
		m *models.Model
		k int
	}{
		{models.Counter(3), 4},
		{models.Semaphore(3), 2},
		{models.DME(2), 1},
		{models.DME(2), 2},
	}
}

func runSessionSuite(ctx context.Context, cfg bench.Config, outDir string) {
	const reps = 3
	rep := sessionReport{Suite: "session", Agrees: true, Reps: reps}

	// Ladder agreement over the smoke pool.
	fmt.Printf("SESSION: ladder agreement over %d models, variant sweep over %d bases × %d reps\n",
		len(sessionLadderPool()), len(sessionVariantPool()), reps)
	var ladderOneDecs, ladderIncDecs int64
	for _, m := range sessionLadderPool() {
		// BFS over the explicit state graph is the ground truth; KnownDiameter
		// is unset (-1) for some pool models (ring3's initial states reach
		// everything in 0 steps).
		bfs, err := models.ExplicitDiameter(m, 12)
		if err != nil {
			fail(fmt.Errorf("session ladder %s: %w", m.Name, err))
		}
		maxN := bfs + 2
		t0 := time.Now()
		one := dia.ComputeDiameter(m, maxN, dia.SolverPO(ctx, cfg.SolverOptions))
		oneWall := time.Since(t0)
		t0 = time.Now()
		inc, err := dia.ComputeDiameterIncremental(ctx, m, maxN, cfg.SolverOptions)
		incWall := time.Since(t0)
		if err != nil {
			fail(fmt.Errorf("session ladder %s: %w", m.Name, err))
		}
		row := sessionLadderResult{
			Model:     m.Name,
			Diameter:  inc.Diameter,
			Agrees:    inc.Decided && one.Decided && inc.Diameter == one.Diameter && inc.Diameter == bfs,
			OneShotMS: float64(oneWall.Microseconds()) / 1000,
			IncMS:     float64(incWall.Microseconds()) / 1000,
		}
		if row.Agrees && len(inc.Steps) == len(one.Steps) {
			for i := range inc.Steps {
				if inc.Steps[i].Result != one.Steps[i].Result {
					row.Agrees = false
				}
			}
		} else {
			row.Agrees = false
		}
		for _, s := range one.Steps {
			row.OneShotDecs += s.Stats.Decisions
		}
		for _, s := range inc.Steps {
			row.IncDecs += s.Stats.Decisions
		}
		ladderOneDecs += row.OneShotDecs
		ladderIncDecs += row.IncDecs
		if !row.Agrees {
			fmt.Fprintf(os.Stderr, "  DISAGREE ladder %s: incremental %v/%d, one-shot %v/%d, BFS %d\n",
				m.Name, inc.Decided, inc.Diameter, one.Decided, one.Diameter, bfs)
		}
		rep.Agrees = rep.Agrees && row.Agrees
		rep.Ladders = append(rep.Ladders, row)
	}
	if ladderOneDecs > 0 {
		rep.LadderDecisionRatio = float64(ladderIncDecs) / float64(ladderOneDecs)
	}

	// Variant sweep: best-of-reps wall on both sides, decisions from the
	// first repetition (they are deterministic across reps).
	var sweepOneDecs, sweepIncDecs int64
	var sweepOneWall, sweepIncWall time.Duration
	for _, p := range sessionVariantPool() {
		row, err := runVariantSweep(ctx, p.m, p.k, reps, cfg.SolverOptions)
		if err != nil {
			fail(fmt.Errorf("session sweep %s step %d: %w", p.m.Name, p.k, err))
		}
		if !row.Agrees {
			fmt.Fprintf(os.Stderr, "  DISAGREE sweep %s step %d: incremental and one-shot verdicts differ\n",
				p.m.Name, p.k)
		}
		rep.Agrees = rep.Agrees && row.Agrees
		sweepOneDecs += row.OneShotDecs
		sweepIncDecs += row.IncDecs
		sweepOneWall += time.Duration(row.OneShotMS * float64(time.Millisecond))
		sweepIncWall += time.Duration(row.IncMS * float64(time.Millisecond))
		rep.Variant = append(rep.Variant, row)
	}
	if sweepIncDecs > 0 {
		rep.VariantDecisionRatio = float64(sweepOneDecs) / float64(sweepIncDecs)
	}
	if sweepIncWall > 0 {
		rep.VariantWallSpeedup = float64(sweepOneWall) / float64(sweepIncWall)
	}

	// Durability phase: what does the write-ahead journal cost a session
	// workload end to end?
	dur, err := runDurabilityPhase(ctx, reps)
	if err != nil {
		fail(fmt.Errorf("session durability: %w", err))
	}
	if !dur.Agrees {
		fmt.Fprintln(os.Stderr, "  DISAGREE durability: journaled and non-durable verdict ladders differ")
	}
	rep.Agrees = rep.Agrees && dur.Agrees
	rep.Durability = &dur

	path := filepath.Join(outDir, "BENCH_session.json")
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("  ladder decision ratio %.3f (inc/one, ≤1.5), sweep decision ratio %.2f (one/inc, >1), sweep wall speedup %.2f (>1), agree=%v → %s\n",
		rep.LadderDecisionRatio, rep.VariantDecisionRatio, rep.VariantWallSpeedup, rep.Agrees, path)
	fmt.Printf("  durability: journal overhead %.2fx (%.1fms durable vs %.1fms baseline, %d appends)\n",
		dur.JournalOverhead, dur.DurableMS, dur.BaselineMS, dur.JournalAppends)
	if !rep.Agrees {
		campaignFailures++
	}
	if ctx.Err() == nil && (rep.VariantDecisionRatio <= 1 || rep.LadderDecisionRatio > 1.5) {
		fmt.Fprintln(os.Stderr, "  session: incremental solving did not beat repeated one-shot solving")
		campaignFailures++
	}
}

// runVariantSweep solves φk of m's ladder once per repetition in an
// incremental session and then re-solves every root-block-literal
// perturbation via push/assume/solve/pop, against fresh one-shot solves
// of the same perturbed formulas. Verdicts must agree pairwise.
func runVariantSweep(ctx context.Context, m *models.Model, k, reps int, opt core.Options) (sessionVariantResult, error) {
	row := sessionVariantResult{Model: m.Name, Step: k, Agrees: true}
	base, err := dia.StepInstance(m, k)
	if err != nil {
		return row, err
	}
	var lits []qbf.Lit
	for _, v := range base.Prefix.Blocks()[0].Vars {
		lits = append(lits, v.PosLit(), v.NegLit())
	}
	row.Variants = len(lits)
	opt.Mode = core.ModePartialOrder

	minInc, minOne := time.Duration(-1), time.Duration(-1)
	for r := 0; r < reps; r++ {
		incOpt := opt
		incOpt.Incremental = true
		t0 := time.Now()
		s, err := core.NewSolver(base, incOpt)
		if err != nil {
			return row, err
		}
		incVerdicts := []core.Verdict{s.Solve(ctx)}
		for _, l := range lits {
			if _, err := s.Push(); err != nil {
				return row, err
			}
			if err := s.Assume(l); err != nil {
				return row, err
			}
			incVerdicts = append(incVerdicts, s.Solve(ctx))
			if _, err := s.Pop(); err != nil {
				return row, err
			}
		}
		incWall := time.Since(t0)
		if minInc < 0 || incWall < minInc {
			minInc = incWall
		}

		t0 = time.Now()
		res, err := core.Solve(ctx, base, opt)
		if err != nil {
			return row, err
		}
		oneVerdicts := []core.Verdict{res.Verdict}
		oneDecs := res.Stats.Decisions
		for _, l := range lits {
			vq := qbf.New(base.Prefix, append(append([]qbf.Clause{}, base.Matrix...), qbf.Clause{l}))
			res, err := core.Solve(ctx, vq, opt)
			if err != nil {
				return row, err
			}
			oneVerdicts = append(oneVerdicts, res.Verdict)
			oneDecs += res.Stats.Decisions
		}
		oneWall := time.Since(t0)
		if minOne < 0 || oneWall < minOne {
			minOne = oneWall
		}

		if r == 0 {
			row.IncDecs = s.Stats().Decisions
			row.OneShotDecs = oneDecs
			for i := range incVerdicts {
				if incVerdicts[i] != oneVerdicts[i] || incVerdicts[i] == core.Unknown {
					row.Agrees = row.Agrees && ctx.Err() != nil // cancellation is not a disagreement
				}
			}
		}
	}
	row.IncMS = float64(minInc.Microseconds()) / 1000
	row.OneShotMS = float64(minOne.Microseconds()) / 1000
	return row, nil
}

// runDurabilityPhase prices crash tolerance: a fleet of concurrent
// client sessions climbs push/add/pop ladders through a real server on a
// loopback socket, once with no journal and once with the write-ahead
// journal on under the interval fsync policy (the recommended production
// setting — "always" pays a disk sync per call and is the operator's
// opt-in). Verdict ladders must be identical in both modes; the wall
// ratio is reported for check.sh to gate.
func runDurabilityPhase(ctx context.Context, reps int) (sessionDurabilityResult, error) {
	const (
		nSessions = 4
		nCalls    = 24
	)
	row := sessionDurabilityResult{Sessions: nSessions, CallsPerSess: nCalls, Reps: reps, Agrees: true}
	q := randqbf.Prob(randqbf.ProbParams{
		Blocks: 2, BlockSize: 6, Clauses: 26, Length: 3, MaxUniversal: 1, Seed: 11,
	})
	text, err := qdimacs.WriteString(q)
	if err != nil {
		return row, err
	}

	// runOnce drives the whole fleet against one freshly started server
	// and returns the wall time, the journal append count, and every
	// session's verdict sequence (index = session id).
	runOnce := func(dir string) (time.Duration, int64, [][]string, error) {
		cfg := server.Config{Workers: 2}
		if dir != "" {
			cfg.JournalDir = dir
			cfg.JournalFsync = "interval"
		}
		srv := server.New(cfg)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 0, 0, nil, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln) //nolint:errcheck // shut down via Close below
		base := "http://" + ln.Addr().String()

		verdicts := make([][]string, nSessions)
		errs := make([]error, nSessions)
		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < nSessions; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				errs[c] = func() error {
					cl := client.New(base, nil, client.Policy{
						MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond, Seed: int64(c) + 1,
					})
					sess, out, err := cl.OpenSession(ctx, server.SessionRequest{Formula: text})
					if err != nil || sess == nil {
						return fmt.Errorf("open: %v (status %d)", err, out.Status)
					}
					for i := 0; i < nCalls; i++ {
						lit := 1 + i%6 // a block-0 variable of the Prob instance
						if i%2 == 1 {
							lit = -lit
						}
						out, err := sess.Solve(ctx, []server.SessionOp{
							{Op: "push"}, {Op: "add", Lits: []int{lit}},
						}, false)
						if err != nil || out.Status != result.StatusOK {
							return fmt.Errorf("call %d: %v (status %d)", i, err, out.Status)
						}
						verdicts[c] = append(verdicts[c], out.Resp.Verdict)
						if out, err := sess.Solve(ctx, []server.SessionOp{{Op: "pop"}}, false); err != nil || out.Status != result.StatusOK {
							return fmt.Errorf("pop %d: %v (status %d)", i, err, out.Status)
						}
					}
					return nil
				}()
			}(c)
		}
		wg.Wait()
		wall := time.Since(start)
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainErr := srv.Drain(dctx)
		hs.Close() //nolint:errcheck // drain already resolved every request
		for _, err := range errs {
			if err != nil {
				return 0, 0, nil, err
			}
		}
		if drainErr != nil {
			return 0, 0, nil, fmt.Errorf("drain: %w", drainErr)
		}
		snap := srv.Snapshot()
		if snap.Journal.Enabled && snap.Journal.Degraded {
			return 0, 0, nil, fmt.Errorf("journal degraded during the benchmark (%d append errors)", snap.Journal.AppendErrors)
		}
		return wall, snap.Journal.Appends, verdicts, nil
	}

	minBase, minDur := time.Duration(-1), time.Duration(-1)
	var refVerdicts [][]string
	for r := 0; r < reps; r++ {
		baseWall, _, baseV, err := runOnce("")
		if err != nil {
			return row, err
		}
		dir, err := os.MkdirTemp("", "qbfbench-journal-*")
		if err != nil {
			return row, err
		}
		durWall, appends, durV, err := runOnce(dir)
		os.RemoveAll(dir) //nolint:errcheck // scratch dir, best-effort cleanup
		if err != nil {
			return row, err
		}
		row.JournalAppends += appends
		if minBase < 0 || baseWall < minBase {
			minBase = baseWall
		}
		if minDur < 0 || durWall < minDur {
			minDur = durWall
		}
		if refVerdicts == nil {
			refVerdicts = baseV
		}
		for _, v := range [][][]string{baseV, durV} {
			for c := range v {
				for i := range v[c] {
					if ctx.Err() == nil && (i >= len(refVerdicts[c]) || v[c][i] != refVerdicts[c][i] || v[c][i] == "") {
						row.Agrees = false
					}
				}
			}
		}
	}
	row.BaselineMS = float64(minBase.Microseconds()) / 1000
	row.DurableMS = float64(minDur.Microseconds()) / 1000
	if minBase > 0 {
		row.JournalOverhead = float64(minDur) / float64(minBase)
	}
	return row, nil
}
