package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/bench"
)

// TestPortfolioSuiteShape: the curated suite mixes structured trees with
// the adversarial model-A instances, under stable names.
func TestPortfolioSuiteShape(t *testing.T) {
	insts := portfolioSuite()
	if len(insts) != 10 {
		t.Fatalf("suite has %d instances, want 10", len(insts))
	}
	if insts[0].Name != "fixed-0" || insts[6].Name != "prob-adv-2" {
		t.Fatalf("unexpected instance names: %q, %q", insts[0].Name, insts[6].Name)
	}
	for _, inst := range insts {
		if inst.Tree == nil || len(inst.Tree.Matrix) == 0 {
			t.Fatalf("%s: empty instance", inst.Name)
		}
	}
}

// TestRunPortfolioSuiteReport runs the whole comparison campaign and
// checks the BENCH_portfolio.json artifact: parseable, one entry per
// instance, zero verdict disagreements, and totals that add up.
func TestRunPortfolioSuiteReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full curated campaign (~1s)")
	}
	dir := t.TempDir()
	failuresBefore := campaignFailures
	runPortfolioSuite(context.Background(), bench.Config{Timeout: 20 * time.Second}, 4, true, dir)
	if campaignFailures != failuresBefore {
		t.Fatalf("campaign recorded %d disagreement(s)", campaignFailures-failuresBefore)
	}

	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_portfolio.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rep portfolioReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if rep.Suite != "portfolio" || rep.Workers != 4 || !rep.Share {
		t.Fatalf("report header off: %+v", rep)
	}
	if len(rep.Instances) != 10 || rep.Disagreements != 0 {
		t.Fatalf("report body off: %d instances, %d disagreements", len(rep.Instances), rep.Disagreements)
	}
	var seq, port float64
	for _, inst := range rep.Instances {
		if inst.Disagree || inst.SequentialResult != inst.PortfolioResult {
			t.Errorf("%s: sequential %s vs portfolio %s", inst.Name, inst.SequentialResult, inst.PortfolioResult)
		}
		seq += inst.SequentialSeconds
		port += inst.PortfolioSeconds
	}
	const eps = 1e-6
	if diff := rep.SequentialTotalSeconds - seq; diff > eps || diff < -eps {
		t.Errorf("sequential total %.6f != sum of instances %.6f", rep.SequentialTotalSeconds, seq)
	}
	if diff := rep.PortfolioTotalSeconds - port; diff > eps || diff < -eps {
		t.Errorf("portfolio total %.6f != sum of instances %.6f", rep.PortfolioTotalSeconds, port)
	}
	if rep.Speedup <= 0 {
		t.Errorf("speedup %.3f not computed", rep.Speedup)
	}
	t.Logf("portfolio suite: seq %.3fs, portfolio %.3fs, speedup %.2f×",
		rep.SequentialTotalSeconds, rep.PortfolioTotalSeconds, rep.Speedup)
}
