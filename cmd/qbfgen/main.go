// Command qbfgen generates benchmark instances from the paper's workload
// families and writes them in QDIMACS (prenex) or QTREE (non-prenex)
// format to stdout.
//
// Families:
//
//	ncf   — nested counterfactual trees (Section VII.A)
//	fpv   — web-service composition games (Section VII.B)
//	dia   — diameter formulas φn for a model (Section VII.C)
//	prob  — random model-A prenex QBFs (Section VII.D)
//	fixed — structured prenex QBFs (Section VII.D)
//
// Examples:
//
//	qbfgen -family ncf -dep 4 -vars 8 -cls 16 -lpc 3 -seed 7
//	qbfgen -family dia -model counter -size 3 -n 4
//	qbfgen -family prob -blocks 3 -blocksize 8 -clauses 24 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dia"
	"repro/internal/fpv"
	"repro/internal/models"
	"repro/internal/ncf"
	"repro/internal/prenex"
	"repro/internal/qbf"
	"repro/internal/qdimacs"
	"repro/internal/randqbf"
)

func main() {
	family := flag.String("family", "ncf", "instance family: ncf, fpv, dia, prob, fixed")
	seed := flag.Int64("seed", 0, "generator seed")
	doPrenex := flag.String("prenex", "", "convert to prenex form with a strategy: eu-au, eu-ad, ed-au, ed-ad")
	doMini := flag.Bool("miniscope", false, "miniscope the result before printing")

	// ncf
	dep := flag.Int("dep", 4, "ncf: nesting depth")
	vars := flag.Int("vars", 4, "ncf: variables per level")
	cls := flag.Int("cls", 8, "ncf: clauses per level")
	lpc := flag.Int("lpc", 3, "ncf: literals per clause")

	// fpv
	services := flag.Int("services", 2, "fpv: number of services")
	steps := flag.Int("steps", 2, "fpv: unrolling depth")
	bits := flag.Int("bits", 2, "fpv: variables per block")

	// dia
	model := flag.String("model", "counter", "dia: model family (counter, ring, semaphore, dme, twobit, gray, shift, arbiter)")
	size := flag.Int("size", 3, "dia: model size parameter")
	n := flag.Int("n", 1, "dia: path length bound of φn")

	// prob
	blocks := flag.Int("blocks", 3, "prob: quantifier blocks")
	blockSize := flag.Int("blocksize", 8, "prob: variables per block")
	clauses := flag.Int("clauses", 24, "prob: number of clauses")
	length := flag.Int("length", 3, "prob: literals per clause")
	communities := flag.Int("communities", 1, "prob: variable communities")
	flag.Parse()

	q, err := generate(genConfig{
		family: *family, seed: *seed,
		dep: *dep, vars: *vars, cls: *cls, lpc: *lpc,
		services: *services, steps: *steps, bits: *bits,
		model: *model, size: *size, n: *n,
		blocks: *blocks, blockSize: *blockSize, clauses: *clauses,
		length: *length, communities: *communities,
	})
	if err != nil {
		fail(err)
	}
	if *doMini {
		q = prenex.Miniscope(q)
	}
	if *doPrenex != "" {
		s, err := parseStrategy(*doPrenex)
		if err != nil {
			fail(err)
		}
		q = prenex.Apply(q, s)
	}
	if err := qdimacs.Write(os.Stdout, q); err != nil {
		fail(err)
	}
}

type genConfig struct {
	family                     string
	seed                       int64
	dep, vars, cls, lpc        int
	services, steps, bits      int
	model                      string
	size, n                    int
	blocks, blockSize, clauses int
	length, communities        int
}

func generate(c genConfig) (*qbf.QBF, error) {
	switch c.family {
	case "ncf":
		return ncf.Generate(ncf.Params{
			Dep: c.dep, Var: c.vars, Cls: c.cls, Lpc: c.lpc, Seed: c.seed,
		}), nil
	case "fpv":
		return fpv.Generate(fpv.Params{
			Services: c.services, Steps: c.steps, Bits: c.bits, Seed: c.seed,
		}), nil
	case "dia":
		m, err := pickModel(c.model, c.size)
		if err != nil {
			return nil, err
		}
		return dia.Phi(m, c.n), nil
	case "prob":
		return randqbf.Prob(randqbf.ProbParams{
			Blocks: c.blocks, BlockSize: c.blockSize, Clauses: c.clauses,
			Length: c.length, MaxUniversal: 1,
			Communities: c.communities, CrossPct: 5, Seed: c.seed,
		}), nil
	case "fixed":
		return randqbf.Fixed(c.seed), nil
	}
	return nil, fmt.Errorf("unknown family %q", c.family)
}

func pickModel(name string, size int) (*models.Model, error) {
	switch name {
	case "counter":
		return models.Counter(size), nil
	case "ring":
		return models.Ring(size), nil
	case "semaphore":
		return models.Semaphore(size), nil
	case "dme":
		return models.DME(size), nil
	case "twobit":
		return models.TwoBit(), nil
	case "gray":
		return models.GrayCounter(size), nil
	case "shift":
		return models.ShiftRegister(size), nil
	case "arbiter":
		return models.Arbiter(size), nil
	}
	return nil, fmt.Errorf("unknown model %q", name)
}

func parseStrategy(s string) (prenex.Strategy, error) {
	switch s {
	case "eu-au":
		return prenex.EUpAUp, nil
	case "eu-ad":
		return prenex.EUpADown, nil
	case "ed-au":
		return prenex.EDownAUp, nil
	case "ed-ad":
		return prenex.EDownADown, nil
	}
	return 0, fmt.Errorf("unknown strategy %q", s)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qbfgen:", err)
	os.Exit(1)
}
