package qbf

import "testing"

// paperPrefix builds the prefix (3) of the paper's running example (1):
// x0 ≺ y1 ≺ x1,x2 and x0 ≺ y2 ≺ x3,x4, with the variable numbering
// x0=1, y1=2, x1=3, x2=4, y2=5, x3=6, x4=7.
func paperPrefix() *Prefix {
	p := NewPrefix(7)
	root := p.AddBlock(nil, Exists, 1)
	y1 := p.AddBlock(root, Forall, 2)
	p.AddBlock(y1, Exists, 3, 4)
	y2 := p.AddBlock(root, Forall, 5)
	p.AddBlock(y2, Exists, 6, 7)
	p.Finalize()
	return p
}

func TestPaperTimestamps(t *testing.T) {
	p := paperPrefix()
	// Section VI gives d(x0)=1, d(y1)=2, d(x1)=d(x2)=3,
	// f(y1)=f(x1)=f(x2)=3, d(y2)=4, d(x3)=d(x4)=5,
	// f(x0)=f(y2)=f(x3)=f(x4)=5.
	wantD := map[Var]int{1: 1, 2: 2, 3: 3, 4: 3, 5: 4, 6: 5, 7: 5}
	wantF := map[Var]int{1: 5, 2: 3, 3: 3, 4: 3, 5: 5, 6: 5, 7: 5}
	for v, d := range wantD {
		if got := p.D(v); got != d {
			t.Errorf("d(%d) = %d, want %d", v, got, d)
		}
	}
	for v, f := range wantF {
		if got := p.F(v); got != f {
			t.Errorf("f(%d) = %d, want %d", v, got, f)
		}
	}
}

func TestPaperBefore(t *testing.T) {
	p := paperPrefix()
	before := [][2]Var{
		{1, 2}, {1, 3}, {1, 4}, {1, 5}, {1, 6}, {1, 7}, // x0 ≺ everything
		{2, 3}, {2, 4}, // y1 ≺ x1, x2
		{5, 6}, {5, 7}, // y2 ≺ x3, x4
	}
	notBefore := [][2]Var{
		{2, 5}, {5, 2}, // y1, y2 incomparable
		{2, 6}, {2, 7}, // y1 ⊀ x3, x4
		{5, 3}, {5, 4}, // y2 ⊀ x1, x2
		{3, 4}, {4, 3}, // same block
		{3, 6}, {6, 3},
		{2, 1}, {3, 1}, // no back edges
	}
	for _, pr := range before {
		if !p.Before(pr[0], pr[1]) {
			t.Errorf("want %d ≺ %d", pr[0], pr[1])
		}
	}
	for _, pr := range notBefore {
		if p.Before(pr[0], pr[1]) {
			t.Errorf("want %d ⊀ %d", pr[0], pr[1])
		}
	}
}

func TestPaperLevels(t *testing.T) {
	p := paperPrefix()
	// Section II: prefix level of x0 is 1; x1 and x2 have level 3; the
	// QBF has level 3.
	wantLevel := map[Var]int{1: 1, 2: 2, 3: 3, 4: 3, 5: 2, 6: 3, 7: 3}
	for v, l := range wantLevel {
		if got := p.Level(v); got != l {
			t.Errorf("level(%d) = %d, want %d", v, got, l)
		}
	}
	if got := p.MaxLevel(); got != 3 {
		t.Errorf("MaxLevel = %d, want 3", got)
	}
	if p.IsPrenex() {
		t.Error("paper prefix (3) must not be prenex")
	}
}

func TestPrenexPrefixTotalOrder(t *testing.T) {
	// Prefix (7): x0 ≺ y1,y2 ≺ x1,x2,x3,x4 — the prenex-optimal form.
	p := NewPrenexPrefix(7,
		Run{Exists, []Var{1}},
		Run{Forall, []Var{2, 5}},
		Run{Exists, []Var{3, 4, 6, 7}},
	)
	if !p.IsPrenex() {
		t.Fatal("prenex prefix not recognized as prenex")
	}
	if got := p.MaxLevel(); got != 3 {
		t.Errorf("MaxLevel = %d, want 3", got)
	}
	// Every ∃/∀ pair must be comparable.
	for _, x := range []Var{1, 3, 4, 6, 7} {
		for _, y := range []Var{2, 5} {
			if !p.Comparable(x, y) {
				t.Errorf("prenex prefix: %d and %d incomparable", x, y)
			}
		}
	}
	// In a total order the alternation test agrees with prefix levels.
	for z := Var(1); z <= 7; z++ {
		for zp := Var(1); zp <= 7; zp++ {
			if z == zp {
				continue
			}
			byLevel := p.Level(z) < p.Level(zp)
			if p.Before(z, zp) != byLevel {
				t.Errorf("Before(%d,%d)=%v but level test gives %v",
					z, zp, p.Before(z, zp), byLevel)
			}
		}
	}
}

func TestPrenexPrefixMergesAdjacentRuns(t *testing.T) {
	p := NewPrenexPrefix(4,
		Run{Exists, []Var{1}},
		Run{Exists, []Var{2}},
		Run{Forall, []Var{3}},
		Run{Exists, []Var{4}},
	)
	if got := len(p.Blocks()); got != 3 {
		t.Fatalf("got %d blocks, want 3 (adjacent ∃ runs merged)", got)
	}
	if p.Before(1, 2) || p.Before(2, 1) {
		t.Error("variables of merged ∃ runs must be incomparable")
	}
	if !p.Before(1, 3) || !p.Before(3, 4) || !p.Before(1, 4) {
		t.Error("chain order broken after merging")
	}
}

func TestSiblingRootsIncomparable(t *testing.T) {
	p := NewPrefix(4)
	a := p.AddBlock(nil, Exists, 1)
	p.AddBlock(a, Forall, 2)
	b := p.AddBlock(nil, Forall, 3)
	p.AddBlock(b, Exists, 4)
	p.Finalize()
	for _, pr := range [][2]Var{{1, 3}, {3, 1}, {1, 4}, {4, 1}, {2, 3}, {2, 4}, {3, 2}} {
		if p.Before(pr[0], pr[1]) {
			t.Errorf("cross-root order %d ≺ %d must not hold", pr[0], pr[1])
		}
	}
	if !p.Before(1, 2) || !p.Before(3, 4) {
		t.Error("in-root order lost")
	}
}

func TestSameQuantifierNestingUnordered(t *testing.T) {
	// ∃x1 (∃x2 …): no alternation, so x1 ⊀ x2 by the Section II order.
	p := NewPrefix(3)
	a := p.AddBlock(nil, Exists, 1)
	b := p.AddBlock(a, Exists, 2)
	p.AddBlock(b, Forall, 3)
	p.Finalize()
	if p.Before(1, 2) || p.Before(2, 1) {
		t.Error("directly nested same-quantifier blocks must be incomparable")
	}
	if !p.Before(1, 3) || !p.Before(2, 3) {
		t.Error("both ∃ levels must precede the ∀ below them")
	}
	if p.Level(1) != 1 || p.Level(2) != 1 || p.Level(3) != 2 {
		t.Errorf("levels = %d,%d,%d want 1,1,2", p.Level(1), p.Level(2), p.Level(3))
	}
}

func TestSameQuantifierSeparatedByAlternation(t *testing.T) {
	// ∃x1 ∀y2 ∃x3: x1 ≺ x3 through rule (b) of the ≺ definition.
	p := NewPrenexPrefix(3,
		Run{Exists, []Var{1}},
		Run{Forall, []Var{2}},
		Run{Exists, []Var{3}},
	)
	if !p.Before(1, 3) {
		t.Error("x1 ≺ x3 must hold across an alternation")
	}
	if p.Before(3, 1) {
		t.Error("order must be antisymmetric")
	}
}

func TestBeforeTransitivityProperty(t *testing.T) {
	p := paperPrefix()
	vars := p.Vars()
	for _, a := range vars {
		for _, b := range vars {
			for _, c := range vars {
				if p.Before(a, b) && p.Before(b, c) && !p.Before(a, c) {
					t.Fatalf("≺ not transitive: %d ≺ %d ≺ %d", a, b, c)
				}
			}
		}
	}
	for _, a := range vars {
		if p.Before(a, a) {
			t.Fatalf("≺ not irreflexive at %d", a)
		}
		for _, b := range vars {
			if p.Before(a, b) && p.Before(b, a) {
				t.Fatalf("≺ not antisymmetric: %d, %d", a, b)
			}
		}
	}
}

func TestFreeVariablesOutermost(t *testing.T) {
	p := paperPrefix() // binds 1..7; treat 9 as free
	p.GrowVar(9)
	p.Finalize()
	if !p.Before(9, 1) || !p.Before(9, 2) {
		t.Error("free variables must precede all bound variables")
	}
	if p.Before(1, 9) {
		t.Error("bound variables must not precede free ones")
	}
	if p.Before(9, 9) {
		t.Error("free/free must be incomparable")
	}
	if p.QuantOf(9) != Exists {
		t.Error("free variables are existential")
	}
}

func TestCloneIndependent(t *testing.T) {
	p := paperPrefix()
	q := p.Clone()
	q.AddBlock(q.Roots()[0], Forall, 0+8)
	q.Finalize()
	if p.Bound(8) {
		t.Error("Clone must not share block storage")
	}
	if !q.Bound(8) {
		t.Error("AddBlock on clone had no effect")
	}
	for v := Var(1); v <= 7; v++ {
		if p.Level(v) != q.Level(v) {
			t.Errorf("clone level mismatch at %d", v)
		}
	}
}

func TestRemoveEmptyBlocks(t *testing.T) {
	p := NewPrefix(3)
	a := p.AddBlock(nil, Exists, 1)
	empty := p.AddBlock(a, Forall) // no vars
	c := p.AddBlock(empty, Exists, 2)
	p.AddBlock(c, Forall, 3)
	p.Finalize()
	q := p.RemoveEmptyBlocks()
	if got := len(q.Blocks()); got != 2 {
		t.Fatalf("got %d blocks, want 2 (empty spliced, ∃∃ merged)", got)
	}
	if q.Before(1, 2) || q.Before(2, 1) {
		t.Error("merged ∃ variables must be incomparable")
	}
	if !q.Before(1, 3) || !q.Before(2, 3) {
		t.Error("order to the ∀ block lost")
	}
}

func TestAncestorOf(t *testing.T) {
	p := paperPrefix()
	bOf := func(v Var) *Block { return p.BlockOf(v) }
	if !bOf(1).AncestorOf(bOf(3)) {
		t.Error("x0 block must be ancestor of x1 block")
	}
	if bOf(2).AncestorOf(bOf(6)) {
		t.Error("y1 block must not be ancestor of x3 block")
	}
	if !bOf(2).AncestorOf(bOf(2)) {
		t.Error("AncestorOf must be reflexive")
	}
	if bOf(3).AncestorOf(bOf(1)) {
		t.Error("AncestorOf must not invert")
	}
}

func TestBoundTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("binding a variable twice must panic")
		}
	}()
	p := NewPrefix(2)
	p.AddBlock(nil, Exists, 1)
	p.AddBlock(nil, Forall, 1)
}

func TestPrefixString(t *testing.T) {
	p := paperPrefix()
	want := "e 1 (a 2 (e 3 4) ; a 5 (e 6 7))"
	if got := p.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestSortedVarsByLevel(t *testing.T) {
	p := paperPrefix()
	got := p.SortedVarsByLevel()
	want := []Var{1, 2, 5, 3, 4, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedVarsByLevel = %v, want %v", got, want)
		}
	}
}

// TestBeforeEdgeCasesTable is a table-driven sweep of the corners of the
// structural Before test: free variables, sibling root scopes, and
// same-quantifier parent/child blocks — the tree shapes on which the naive
// interval test d(z) < d(z') ≤ f(z) diverges from the Section II order.
func TestBeforeEdgeCasesTable(t *testing.T) {
	type pair struct {
		a, b   Var
		before bool
	}
	cases := []struct {
		name  string
		build func() *Prefix
		pairs []pair
	}{
		{
			name: "free vs bound vs free",
			build: func() *Prefix {
				p := NewPrefix(3)
				b := p.AddBlock(nil, Forall, 2)
				p.AddBlock(b, Exists, 3)
				p.GrowVar(1) // 1 stays free
				p.Finalize()
				return p
			},
			pairs: []pair{
				{1, 2, true}, {1, 3, true}, // free precedes every bound var
				{2, 1, false}, {3, 1, false}, // never the reverse
				{1, 1, false},               // irreflexive on free vars too
				{2, 3, true}, {3, 2, false}, // bound order undisturbed
			},
		},
		{
			name: "sibling roots with equal shapes",
			build: func() *Prefix {
				// ∃1(∀2) ; ∃3(∀4): two independent scopes whose
				// timestamp ranges are disjoint by the sibling-root
				// ts bump, so neither interval nor structure links them.
				p := NewPrefix(4)
				a := p.AddBlock(nil, Exists, 1)
				p.AddBlock(a, Forall, 2)
				b := p.AddBlock(nil, Exists, 3)
				p.AddBlock(b, Forall, 4)
				p.Finalize()
				return p
			},
			pairs: []pair{
				{1, 2, true}, {3, 4, true},
				{1, 3, false}, {3, 1, false},
				{1, 4, false}, {4, 1, false},
				{2, 3, false}, {2, 4, false},
			},
		},
		{
			name: "same-quantifier parent with branching",
			build: func() *Prefix {
				// ∃1(∀2 ; ∃3(∀4)): block ∃3 is a same-quantifier child
				// of the root, reached after the sibling ∀2 branch.
				p := NewPrefix(4)
				root := p.AddBlock(nil, Exists, 1)
				p.AddBlock(root, Forall, 2)
				e := p.AddBlock(root, Exists, 3)
				p.AddBlock(e, Forall, 4)
				p.Finalize()
				return p
			},
			pairs: []pair{
				{1, 2, true}, {1, 4, true}, {3, 4, true},
				{1, 3, false}, {3, 1, false}, // same quantifier, same level
				{2, 3, false}, {2, 4, false}, // separate branches
				{4, 3, false},
			},
		},
		{
			name: "universal root with mirrored children",
			build: func() *Prefix {
				// ∀1(∃2(∀5) ; ∀3(∃4)): one child alternates, the other
				// repeats the root's quantifier.
				p := NewPrefix(5)
				root := p.AddBlock(nil, Forall, 1)
				e := p.AddBlock(root, Exists, 2)
				p.AddBlock(e, Forall, 5)
				u := p.AddBlock(root, Forall, 3)
				p.AddBlock(u, Exists, 4)
				p.Finalize()
				return p
			},
			pairs: []pair{
				{1, 2, true}, {1, 5, true}, {1, 4, true},
				{2, 5, true}, {3, 4, true},
				{1, 3, false}, {3, 1, false}, // ∀ child of ∀ root: same level
				{2, 3, false}, {2, 4, false},
				{5, 4, false}, {4, 5, false},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.build()
			for _, pr := range tc.pairs {
				if got := p.Before(pr.a, pr.b); got != pr.before {
					t.Errorf("Before(%d, %d) = %v, want %v", pr.a, pr.b, got, pr.before)
				}
			}
		})
	}
}

// TestIntervalTestOverApproximatesBefore pins down why Before is structural
// rather than the tempting one-liner d(z) < d(z') ≤ f(z): on trees with a
// same-quantifier parent/child block the interval test claims orderings the
// Section II definition rejects. The divergence is one-sided — the interval
// test is never false where Before is true — which is exactly why it cannot
// be caught by testing on prenex or strictly-alternating inputs.
func TestIntervalTestOverApproximatesBefore(t *testing.T) {
	interval := func(p *Prefix, a, b Var) bool {
		return p.D(a) < p.D(b) && p.D(b) <= p.F(a)
	}

	// ∃1(∀2 ; ∃3(∀4)): d(1)=1, f(1)=3, d(3)=2, so the interval test
	// claims 1 ≺ 3, but both blocks are existential at level 1.
	p := NewPrefix(4)
	root := p.AddBlock(nil, Exists, 1)
	p.AddBlock(root, Forall, 2)
	e := p.AddBlock(root, Exists, 3)
	p.AddBlock(e, Forall, 4)
	p.Finalize()
	if !interval(p, 1, 3) {
		t.Fatal("fixture lost its divergence: interval test no longer claims 1 ≺ 3")
	}
	if p.Before(1, 3) {
		t.Error("structural Before must reject the same-quantifier pair 1, 3")
	}

	// ∀1(∃2(∀5) ; ∀3(∃4)): the interval test also falsely claims 1 ≺ 3.
	q := NewPrefix(5)
	qroot := q.AddBlock(nil, Forall, 1)
	qe := q.AddBlock(qroot, Exists, 2)
	q.AddBlock(qe, Forall, 5)
	qu := q.AddBlock(qroot, Forall, 3)
	q.AddBlock(qu, Exists, 4)
	q.Finalize()
	if !interval(q, 1, 3) {
		t.Fatal("fixture lost its divergence: interval test no longer claims 1 ≺ 3")
	}
	if q.Before(1, 3) {
		t.Error("structural Before must reject the same-quantifier pair 1, 3")
	}

	// One-sidedness: wherever Before holds, the interval test agrees.
	for _, pp := range [2]*Prefix{p, q} {
		for _, a := range pp.Vars() {
			for _, b := range pp.Vars() {
				if pp.Before(a, b) && !interval(pp, a, b) {
					t.Errorf("interval test misses true ordering %d ≺ %d", a, b)
				}
			}
		}
	}
}
