package qbf

import "testing"

// paperPrefix builds the prefix (3) of the paper's running example (1):
// x0 ≺ y1 ≺ x1,x2 and x0 ≺ y2 ≺ x3,x4, with the variable numbering
// x0=1, y1=2, x1=3, x2=4, y2=5, x3=6, x4=7.
func paperPrefix() *Prefix {
	p := NewPrefix(7)
	root := p.AddBlock(nil, Exists, 1)
	y1 := p.AddBlock(root, Forall, 2)
	p.AddBlock(y1, Exists, 3, 4)
	y2 := p.AddBlock(root, Forall, 5)
	p.AddBlock(y2, Exists, 6, 7)
	p.Finalize()
	return p
}

func TestPaperTimestamps(t *testing.T) {
	p := paperPrefix()
	// Section VI gives d(x0)=1, d(y1)=2, d(x1)=d(x2)=3,
	// f(y1)=f(x1)=f(x2)=3, d(y2)=4, d(x3)=d(x4)=5,
	// f(x0)=f(y2)=f(x3)=f(x4)=5.
	wantD := map[Var]int{1: 1, 2: 2, 3: 3, 4: 3, 5: 4, 6: 5, 7: 5}
	wantF := map[Var]int{1: 5, 2: 3, 3: 3, 4: 3, 5: 5, 6: 5, 7: 5}
	for v, d := range wantD {
		if got := p.D(v); got != d {
			t.Errorf("d(%d) = %d, want %d", v, got, d)
		}
	}
	for v, f := range wantF {
		if got := p.F(v); got != f {
			t.Errorf("f(%d) = %d, want %d", v, got, f)
		}
	}
}

func TestPaperBefore(t *testing.T) {
	p := paperPrefix()
	before := [][2]Var{
		{1, 2}, {1, 3}, {1, 4}, {1, 5}, {1, 6}, {1, 7}, // x0 ≺ everything
		{2, 3}, {2, 4}, // y1 ≺ x1, x2
		{5, 6}, {5, 7}, // y2 ≺ x3, x4
	}
	notBefore := [][2]Var{
		{2, 5}, {5, 2}, // y1, y2 incomparable
		{2, 6}, {2, 7}, // y1 ⊀ x3, x4
		{5, 3}, {5, 4}, // y2 ⊀ x1, x2
		{3, 4}, {4, 3}, // same block
		{3, 6}, {6, 3},
		{2, 1}, {3, 1}, // no back edges
	}
	for _, pr := range before {
		if !p.Before(pr[0], pr[1]) {
			t.Errorf("want %d ≺ %d", pr[0], pr[1])
		}
	}
	for _, pr := range notBefore {
		if p.Before(pr[0], pr[1]) {
			t.Errorf("want %d ⊀ %d", pr[0], pr[1])
		}
	}
}

func TestPaperLevels(t *testing.T) {
	p := paperPrefix()
	// Section II: prefix level of x0 is 1; x1 and x2 have level 3; the
	// QBF has level 3.
	wantLevel := map[Var]int{1: 1, 2: 2, 3: 3, 4: 3, 5: 2, 6: 3, 7: 3}
	for v, l := range wantLevel {
		if got := p.Level(v); got != l {
			t.Errorf("level(%d) = %d, want %d", v, got, l)
		}
	}
	if got := p.MaxLevel(); got != 3 {
		t.Errorf("MaxLevel = %d, want 3", got)
	}
	if p.IsPrenex() {
		t.Error("paper prefix (3) must not be prenex")
	}
}

func TestPrenexPrefixTotalOrder(t *testing.T) {
	// Prefix (7): x0 ≺ y1,y2 ≺ x1,x2,x3,x4 — the prenex-optimal form.
	p := NewPrenexPrefix(7,
		Run{Exists, []Var{1}},
		Run{Forall, []Var{2, 5}},
		Run{Exists, []Var{3, 4, 6, 7}},
	)
	if !p.IsPrenex() {
		t.Fatal("prenex prefix not recognized as prenex")
	}
	if got := p.MaxLevel(); got != 3 {
		t.Errorf("MaxLevel = %d, want 3", got)
	}
	// Every ∃/∀ pair must be comparable.
	for _, x := range []Var{1, 3, 4, 6, 7} {
		for _, y := range []Var{2, 5} {
			if !p.Comparable(x, y) {
				t.Errorf("prenex prefix: %d and %d incomparable", x, y)
			}
		}
	}
	// In a total order the alternation test agrees with prefix levels.
	for z := Var(1); z <= 7; z++ {
		for zp := Var(1); zp <= 7; zp++ {
			if z == zp {
				continue
			}
			byLevel := p.Level(z) < p.Level(zp)
			if p.Before(z, zp) != byLevel {
				t.Errorf("Before(%d,%d)=%v but level test gives %v",
					z, zp, p.Before(z, zp), byLevel)
			}
		}
	}
}

func TestPrenexPrefixMergesAdjacentRuns(t *testing.T) {
	p := NewPrenexPrefix(4,
		Run{Exists, []Var{1}},
		Run{Exists, []Var{2}},
		Run{Forall, []Var{3}},
		Run{Exists, []Var{4}},
	)
	if got := len(p.Blocks()); got != 3 {
		t.Fatalf("got %d blocks, want 3 (adjacent ∃ runs merged)", got)
	}
	if p.Before(1, 2) || p.Before(2, 1) {
		t.Error("variables of merged ∃ runs must be incomparable")
	}
	if !p.Before(1, 3) || !p.Before(3, 4) || !p.Before(1, 4) {
		t.Error("chain order broken after merging")
	}
}

func TestSiblingRootsIncomparable(t *testing.T) {
	p := NewPrefix(4)
	a := p.AddBlock(nil, Exists, 1)
	p.AddBlock(a, Forall, 2)
	b := p.AddBlock(nil, Forall, 3)
	p.AddBlock(b, Exists, 4)
	p.Finalize()
	for _, pr := range [][2]Var{{1, 3}, {3, 1}, {1, 4}, {4, 1}, {2, 3}, {2, 4}, {3, 2}} {
		if p.Before(pr[0], pr[1]) {
			t.Errorf("cross-root order %d ≺ %d must not hold", pr[0], pr[1])
		}
	}
	if !p.Before(1, 2) || !p.Before(3, 4) {
		t.Error("in-root order lost")
	}
}

func TestSameQuantifierNestingUnordered(t *testing.T) {
	// ∃x1 (∃x2 …): no alternation, so x1 ⊀ x2 by the Section II order.
	p := NewPrefix(3)
	a := p.AddBlock(nil, Exists, 1)
	b := p.AddBlock(a, Exists, 2)
	p.AddBlock(b, Forall, 3)
	p.Finalize()
	if p.Before(1, 2) || p.Before(2, 1) {
		t.Error("directly nested same-quantifier blocks must be incomparable")
	}
	if !p.Before(1, 3) || !p.Before(2, 3) {
		t.Error("both ∃ levels must precede the ∀ below them")
	}
	if p.Level(1) != 1 || p.Level(2) != 1 || p.Level(3) != 2 {
		t.Errorf("levels = %d,%d,%d want 1,1,2", p.Level(1), p.Level(2), p.Level(3))
	}
}

func TestSameQuantifierSeparatedByAlternation(t *testing.T) {
	// ∃x1 ∀y2 ∃x3: x1 ≺ x3 through rule (b) of the ≺ definition.
	p := NewPrenexPrefix(3,
		Run{Exists, []Var{1}},
		Run{Forall, []Var{2}},
		Run{Exists, []Var{3}},
	)
	if !p.Before(1, 3) {
		t.Error("x1 ≺ x3 must hold across an alternation")
	}
	if p.Before(3, 1) {
		t.Error("order must be antisymmetric")
	}
}

func TestBeforeTransitivityProperty(t *testing.T) {
	p := paperPrefix()
	vars := p.Vars()
	for _, a := range vars {
		for _, b := range vars {
			for _, c := range vars {
				if p.Before(a, b) && p.Before(b, c) && !p.Before(a, c) {
					t.Fatalf("≺ not transitive: %d ≺ %d ≺ %d", a, b, c)
				}
			}
		}
	}
	for _, a := range vars {
		if p.Before(a, a) {
			t.Fatalf("≺ not irreflexive at %d", a)
		}
		for _, b := range vars {
			if p.Before(a, b) && p.Before(b, a) {
				t.Fatalf("≺ not antisymmetric: %d, %d", a, b)
			}
		}
	}
}

func TestFreeVariablesOutermost(t *testing.T) {
	p := paperPrefix() // binds 1..7; treat 9 as free
	p.GrowVar(9)
	p.Finalize()
	if !p.Before(9, 1) || !p.Before(9, 2) {
		t.Error("free variables must precede all bound variables")
	}
	if p.Before(1, 9) {
		t.Error("bound variables must not precede free ones")
	}
	if p.Before(9, 9) {
		t.Error("free/free must be incomparable")
	}
	if p.QuantOf(9) != Exists {
		t.Error("free variables are existential")
	}
}

func TestCloneIndependent(t *testing.T) {
	p := paperPrefix()
	q := p.Clone()
	q.AddBlock(q.Roots()[0], Forall, 0+8)
	q.Finalize()
	if p.Bound(8) {
		t.Error("Clone must not share block storage")
	}
	if !q.Bound(8) {
		t.Error("AddBlock on clone had no effect")
	}
	for v := Var(1); v <= 7; v++ {
		if p.Level(v) != q.Level(v) {
			t.Errorf("clone level mismatch at %d", v)
		}
	}
}

func TestRemoveEmptyBlocks(t *testing.T) {
	p := NewPrefix(3)
	a := p.AddBlock(nil, Exists, 1)
	empty := p.AddBlock(a, Forall) // no vars
	c := p.AddBlock(empty, Exists, 2)
	p.AddBlock(c, Forall, 3)
	p.Finalize()
	q := p.RemoveEmptyBlocks()
	if got := len(q.Blocks()); got != 2 {
		t.Fatalf("got %d blocks, want 2 (empty spliced, ∃∃ merged)", got)
	}
	if q.Before(1, 2) || q.Before(2, 1) {
		t.Error("merged ∃ variables must be incomparable")
	}
	if !q.Before(1, 3) || !q.Before(2, 3) {
		t.Error("order to the ∀ block lost")
	}
}

func TestAncestorOf(t *testing.T) {
	p := paperPrefix()
	bOf := func(v Var) *Block { return p.BlockOf(v) }
	if !bOf(1).AncestorOf(bOf(3)) {
		t.Error("x0 block must be ancestor of x1 block")
	}
	if bOf(2).AncestorOf(bOf(6)) {
		t.Error("y1 block must not be ancestor of x3 block")
	}
	if !bOf(2).AncestorOf(bOf(2)) {
		t.Error("AncestorOf must be reflexive")
	}
	if bOf(3).AncestorOf(bOf(1)) {
		t.Error("AncestorOf must not invert")
	}
}

func TestBoundTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("binding a variable twice must panic")
		}
	}()
	p := NewPrefix(2)
	p.AddBlock(nil, Exists, 1)
	p.AddBlock(nil, Forall, 1)
}

func TestPrefixString(t *testing.T) {
	p := paperPrefix()
	want := "e 1 (a 2 (e 3 4) ; a 5 (e 6 7))"
	if got := p.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestSortedVarsByLevel(t *testing.T) {
	p := paperPrefix()
	got := p.SortedVarsByLevel()
	want := []Var{1, 2, 5, 3, 4, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedVarsByLevel = %v, want %v", got, want)
		}
	}
}
