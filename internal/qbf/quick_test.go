package qbf

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomTree wraps a generated QBF for testing/quick.
type randomTree struct {
	Q *QBF
}

// Generate implements quick.Generator: a random scope-consistent QBF.
func (randomTree) Generate(r *rand.Rand, size int) reflect.Value {
	if size < 3 {
		size = 3
	}
	if size > 12 {
		size = 12
	}
	return reflect.ValueOf(randomTree{Q: RandomQBF(r, size, size)})
}

var quickCfg = &quick.Config{MaxCount: 300}

// TestQuickOrderIsStrictPartialOrder: ≺ is irreflexive, antisymmetric and
// transitive on arbitrary random trees.
func TestQuickOrderIsStrictPartialOrder(t *testing.T) {
	prop := func(rt randomTree) bool {
		p := rt.Q.Prefix
		vars := p.Vars()
		for _, a := range vars {
			if p.Before(a, a) {
				return false
			}
			for _, b := range vars {
				if p.Before(a, b) && p.Before(b, a) {
					return false
				}
				for _, c := range vars {
					if p.Before(a, b) && p.Before(b, c) && !p.Before(a, c) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickBeforeImpliesLevel: z ≺ z' implies level(z) < level(z').
func TestQuickBeforeImpliesLevel(t *testing.T) {
	prop := func(rt randomTree) bool {
		p := rt.Q.Prefix
		vars := p.Vars()
		for _, a := range vars {
			for _, b := range vars {
				if p.Before(a, b) && p.Level(a) >= p.Level(b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickDFIntervalAgreesOnAlternatingChains: on prenex prefixes (where
// every edge alternates after run merging) the Section VI parenthesis test
// coincides with Before.
func TestQuickDFIntervalAgreesOnAlternatingChains(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		var runs []Run
		q := Exists
		if rng.Intn(2) == 0 {
			q = Forall
		}
		v := Var(1)
		for int(v) <= n {
			k := 1 + rng.Intn(3)
			var vars []Var
			for i := 0; i < k && int(v) <= n; i++ {
				vars = append(vars, v)
				v++
			}
			runs = append(runs, Run{Quant: q, Vars: vars})
			q = q.Dual()
		}
		p := NewPrenexPrefix(n, runs...)
		for a := Var(1); int(a) <= n; a++ {
			for b := Var(1); int(b) <= n; b++ {
				interval := p.D(a) < p.D(b) && p.D(b) <= p.F(a)
				if interval != p.Before(a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickNormalizeProperties: Normalize yields variable-sorted, duplicate
// free clauses, or correctly reports a tautology.
func TestQuickNormalizeProperties(t *testing.T) {
	prop := func(raw []int8) bool {
		var c Clause
		for _, x := range raw {
			if x == 0 {
				continue
			}
			v := int(x)
			if v < 0 {
				v = -v
			}
			v = v%8 + 1
			l := Var(v).PosLit()
			if x < 0 {
				l = Var(v).NegLit()
			}
			c = append(c, l)
		}
		pos := map[Var]bool{}
		neg := map[Var]bool{}
		for _, l := range c {
			if l.Positive() {
				pos[l.Var()] = true
			} else {
				neg[l.Var()] = true
			}
		}
		wantTaut := false
		for v := range pos {
			if neg[v] {
				wantTaut = true
			}
		}
		nc, taut := c.Clone().Normalize()
		if taut != wantTaut {
			return false
		}
		if taut {
			return true
		}
		seen := map[Var]bool{}
		for i, l := range nc {
			if seen[l.Var()] {
				return false
			}
			seen[l.Var()] = true
			if i > 0 && nc[i-1].Var() > l.Var() {
				return false
			}
		}
		// Same literal set as the input.
		for _, l := range c {
			if !nc.Has(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickUniversalReduceProperties: reduction is idempotent, returns a
// subset, keeps every existential literal, and preserves the value.
func TestQuickUniversalReduceProperties(t *testing.T) {
	prop := func(rt randomTree) bool {
		q := rt.Q
		for _, c := range q.Matrix {
			r1 := UniversalReduce(q.Prefix, c)
			r2 := UniversalReduce(q.Prefix, r1)
			if len(r1) != len(r2) {
				return false
			}
			for _, l := range r1 {
				if !c.Has(l) {
					return false
				}
			}
			for _, l := range c {
				if q.Prefix.QuantOf(l.Var()) == Exists && !r1.Has(l) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickAssignShrinks: assigning any literal removes the variable from
// the prefix and from the matrix.
func TestQuickAssignShrinks(t *testing.T) {
	prop := func(rt randomTree, pick uint8, pol bool) bool {
		q := rt.Q
		vars := q.Prefix.Vars()
		if len(vars) == 0 {
			return true
		}
		v := vars[int(pick)%len(vars)]
		l := v.PosLit()
		if !pol {
			l = v.NegLit()
		}
		r := q.Assign(l)
		if r.Prefix.Bound(v) {
			return false
		}
		for _, c := range r.Matrix {
			for _, m := range c {
				if m.Var() == v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickCloneEquivalent: cloning preserves value and order.
func TestQuickCloneEquivalent(t *testing.T) {
	prop := func(rt randomTree) bool {
		q := rt.Q
		c := q.Clone()
		vars := q.Prefix.Vars()
		for _, a := range vars {
			for _, b := range vars {
				if q.Prefix.Before(a, b) != c.Prefix.Before(a, b) {
					return false
				}
			}
		}
		va, okA := EvalWithBudget(q, 500_000)
		vb, okB := EvalWithBudget(c, 500_000)
		if okA != okB {
			return false
		}
		return !okA || va == vb
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
