// Package qbf defines the core data structures for quantified Boolean
// formulas with a possibly non-prenex (tree shaped) quantifier structure,
// following Giunchiglia, Narizzano and Tacchella, "Quantifier structure in
// search based procedures for QBFs" (DATE 2006).
//
// A QBF is represented, as in Section II of the paper, by a pair
// ⟨prefix, matrix⟩ where the prefix is a partially ordered set of quantified
// variables and the matrix is a set of clauses. The partial order ≺ is
// induced by a quantifier tree: z ≺ z' holds exactly when z' occurs in the
// scope of z separated by at least one quantifier alternation. The package
// provides the tree, the DFS discovery/finish timestamps d(z), f(z) of
// Section VI (so that z ≺ z' ⇔ d(z) < d(z') ≤ f(z) by the parenthesis
// theorem), prefix levels, and an exponential-time semantic evaluator used
// as a ground-truth oracle by the test suites.
package qbf

import (
	"fmt"
	"sort"
	"strings"
)

// Var is a propositional variable, numbered starting from 1 as in DIMACS.
type Var int

// Lit is a literal: +v for the variable v, -v for its negation.
type Lit int

// PosLit returns the positive literal of v.
func (v Var) PosLit() Lit { return Lit(v) }

// NegLit returns the negative literal of v.
func (v Var) NegLit() Lit { return Lit(-v) }

// Var returns the variable occurring in l (the paper's |l|).
func (l Lit) Var() Var {
	if l < 0 {
		return Var(-l)
	}
	return Var(l)
}

// Neg returns the complementary literal (the paper's l̄).
func (l Lit) Neg() Lit { return -l }

// Positive reports whether l is a positive (unnegated) literal.
func (l Lit) Positive() bool { return l > 0 }

// String renders the literal in DIMACS style.
func (l Lit) String() string { return fmt.Sprintf("%d", int(l)) }

// Quant is a quantifier.
type Quant int8

const (
	// Exists is the existential quantifier ∃.
	Exists Quant = iota
	// Forall is the universal quantifier ∀.
	Forall
)

// Dual returns the other quantifier.
func (q Quant) Dual() Quant {
	if q == Exists {
		return Forall
	}
	return Exists
}

// String renders the quantifier as "e" or "a", the QDIMACS block letters.
func (q Quant) String() string {
	if q == Exists {
		return "e"
	}
	return "a"
}

// Clause is a disjunction of literals. The package treats clauses as sets:
// Normalize sorts by variable and reports tautologies and duplicates.
type Clause []Lit

// Clone returns an independent copy of c.
func (c Clause) Clone() Clause {
	out := make(Clause, len(c))
	copy(out, c)
	return out
}

// Has reports whether the literal l occurs in c.
func (c Clause) Has(l Lit) bool {
	for _, m := range c {
		if m == l {
			return true
		}
	}
	return false
}

// Normalize sorts the clause by variable index, removes duplicate literals
// and reports whether the clause is a tautology (contains both z and z̄).
// The receiver is modified in place; the returned clause aliases it.
func (c Clause) Normalize() (Clause, bool) {
	if len(c) == 0 {
		return c, false
	}
	sort.Slice(c, func(i, j int) bool {
		vi, vj := c[i].Var(), c[j].Var()
		if vi != vj {
			return vi < vj
		}
		return c[i] < c[j]
	})
	out := c[:0]
	for i := 0; i < len(c); i++ {
		if i > 0 && c[i] == out[len(out)-1] {
			continue
		}
		if len(out) > 0 && c[i].Var() == out[len(out)-1].Var() {
			return c, true // z and z̄ both present
		}
		out = append(out, c[i])
	}
	return out, false
}

// String renders the clause as a set of DIMACS literals.
func (c Clause) String() string {
	parts := make([]string, len(c))
	for i, l := range c {
		parts[i] = l.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Cube is a conjunction of literals, used for goods (learned terms).
type Cube []Lit

// Clone returns an independent copy of c.
func (c Cube) Clone() Cube {
	out := make(Cube, len(c))
	copy(out, c)
	return out
}

// String renders the cube as a set of DIMACS literals in brackets.
func (c Cube) String() string {
	parts := make([]string, len(c))
	for i, l := range c {
		parts[i] = l.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}
