package qbf

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the quantifier tree of q in Graphviz DOT format: one
// node per block (existential boxes, universal ellipses) labelled with its
// variables and prefix level, with tree edges for scope nesting. Useful to
// inspect what miniscoping or a generator produced:
//
//	qbfgen -family ncf | qbfstat -dot | dot -Tsvg > tree.svg
func WriteDOT(w io.Writer, q *QBF) error {
	p := q.Prefix
	p.Finalize()
	var sb strings.Builder
	sb.WriteString("digraph prefix {\n")
	sb.WriteString("  rankdir=TB;\n  node [fontname=\"monospace\"];\n")
	for _, b := range p.Blocks() {
		shape, q2 := "box", "∃"
		if b.Quant == Forall {
			shape, q2 = "ellipse", "∀"
		}
		vars := make([]string, len(b.Vars))
		for i, v := range b.Vars {
			vars[i] = fmt.Sprint(v)
		}
		fmt.Fprintf(&sb, "  b%d [shape=%s, label=\"%s %s\\nlevel %d\"];\n",
			b.ID(), shape, q2, strings.Join(vars, " "), b.Level())
	}
	for _, b := range p.Blocks() {
		for _, c := range b.Children {
			fmt.Fprintf(&sb, "  b%d -> b%d;\n", b.ID(), c.ID())
		}
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
