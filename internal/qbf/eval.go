package qbf

// Eval decides the value of q by the recursive semantics of Section II:
// an empty matrix is true, a matrix with an empty clause is false, and
// otherwise the formula branches on a top variable (existentially as "or",
// universally as "and"). It runs in exponential time and performs no
// solver-style inference (no unit propagation, no universal reduction), so
// it serves as an independent ground-truth oracle for the solver tests.
func Eval(q *QBF) bool {
	q.Prefix.Finalize()
	return eval(q)
}

func eval(q *QBF) bool {
	if len(q.Matrix) == 0 {
		return true
	}
	for _, c := range q.Matrix {
		if len(c) == 0 {
			return false
		}
	}

	occurs := make(map[Var]bool)
	for _, c := range q.Matrix {
		for _, l := range c {
			occurs[l.Var()] = true
		}
	}

	// Free variables are outermost existentials, hence always top.
	if v, ok := smallestFree(q, occurs); ok {
		return eval(q.Assign(v.PosLit())) || eval(q.Assign(v.NegLit()))
	}

	// Top bound variables: prefix level 1. Prefer one that occurs in the
	// matrix; a top variable absent from the matrix is irrelevant, so a
	// single branch suffices for it.
	relevant, irrelevant := Var(0), Var(0)
	for _, b := range q.Prefix.Blocks() {
		if b.Level() != 1 {
			continue
		}
		for _, v := range b.Vars {
			if occurs[v] {
				if relevant == 0 || v < relevant {
					relevant = v
				}
			} else if irrelevant == 0 || v < irrelevant {
				irrelevant = v
			}
		}
	}
	if relevant != 0 {
		v := relevant
		if q.Prefix.QuantOf(v) == Exists {
			return eval(q.Assign(v.PosLit())) || eval(q.Assign(v.NegLit()))
		}
		return eval(q.Assign(v.PosLit())) && eval(q.Assign(v.NegLit()))
	}
	if irrelevant != 0 {
		return eval(q.Assign(irrelevant.PosLit()))
	}

	// No free and no top variable can remain while the matrix is nonempty
	// and clause-free only if the prefix is empty but the matrix mentions
	// bound variables — impossible by construction. Defensive default:
	// treat remaining matrix variables as free existentials.
	for v := range occurs {
		return eval(q.Assign(v.PosLit())) || eval(q.Assign(v.NegLit()))
	}
	return false
}

func smallestFree(q *QBF, occurs map[Var]bool) (Var, bool) {
	best := Var(0)
	for v := range occurs {
		if !q.Prefix.Bound(v) && (best == 0 || v < best) {
			best = v
		}
	}
	return best, best != 0
}

// EvalWithBudget is Eval with a node budget; it returns (value, true) if the
// evaluation finished within budget recursive calls and (false, false)
// otherwise. Useful to keep randomized test corpora bounded.
func EvalWithBudget(q *QBF, budget int) (bool, bool) {
	q.Prefix.Finalize()
	e := &budgetEval{budget: budget}
	v := e.eval(q)
	if e.exceeded {
		return false, false
	}
	return v, true
}

type budgetEval struct {
	budget   int
	exceeded bool
}

func (e *budgetEval) eval(q *QBF) bool {
	if e.exceeded {
		return false
	}
	e.budget--
	if e.budget < 0 {
		e.exceeded = true
		return false
	}
	if len(q.Matrix) == 0 {
		return true
	}
	for _, c := range q.Matrix {
		if len(c) == 0 {
			return false
		}
	}
	occurs := make(map[Var]bool)
	for _, c := range q.Matrix {
		for _, l := range c {
			occurs[l.Var()] = true
		}
	}
	if v, ok := smallestFree(q, occurs); ok {
		return e.eval(q.Assign(v.PosLit())) || e.eval(q.Assign(v.NegLit()))
	}
	relevant, irrelevant := Var(0), Var(0)
	for _, b := range q.Prefix.Blocks() {
		if b.Level() != 1 {
			continue
		}
		for _, v := range b.Vars {
			if occurs[v] {
				if relevant == 0 || v < relevant {
					relevant = v
				}
			} else if irrelevant == 0 || v < irrelevant {
				irrelevant = v
			}
		}
	}
	if relevant != 0 {
		v := relevant
		if q.Prefix.QuantOf(v) == Exists {
			return e.eval(q.Assign(v.PosLit())) || e.eval(q.Assign(v.NegLit()))
		}
		return e.eval(q.Assign(v.PosLit())) && e.eval(q.Assign(v.NegLit()))
	}
	if irrelevant != 0 {
		return e.eval(q.Assign(irrelevant.PosLit()))
	}
	for v := range occurs {
		return e.eval(q.Assign(v.PosLit())) || e.eval(q.Assign(v.NegLit()))
	}
	return false
}
