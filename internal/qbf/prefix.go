package qbf

import (
	"fmt"
	"sort"
	"strings"
)

// Block is one node of the quantifier tree: a maximal run of variables bound
// by the same quantifier at the same tree position, together with the
// subtrees quantified in its scope. A QBF in prenex form is a degenerate
// tree in which every block has at most one child.
type Block struct {
	Quant    Quant
	Vars     []Var
	Children []*Block

	parent *Block
	id     int // index in Prefix.blocks, set by Prefix.finalize
	level  int // prefix level of the block's variables
	d, f   int // DFS discovery/finish timestamps (Section VI)
	sd, sf int // structural DFS interval (per block, not per alternation)
}

// AncestorOf reports whether b is a (possibly improper) tree ancestor of c,
// i.e. c lies in the scope of b. Valid after the owning Prefix's Finalize.
func (b *Block) AncestorOf(c *Block) bool {
	return b.sd <= c.sd && c.sf <= b.sf
}

// Interval returns the block's structural DFS interval: b is an ancestor of
// c exactly when b's interval contains c's. Valid after Finalize.
func (b *Block) Interval() (sd, sf int) { return b.sd, b.sf }

// Parent returns the block whose scope directly contains b, or nil for a
// root block.
func (b *Block) Parent() *Block { return b.parent }

// ID returns the block's dense index inside its Prefix, assigned in DFS
// preorder. It is only valid after the owning Prefix has been finalized.
func (b *Block) ID() int { return b.id }

// Level returns the prefix level shared by all variables of the block.
func (b *Block) Level() int { return b.level }

// Prefix is the quantifier structure of a QBF: a forest of quantifier
// blocks. The zero value is not usable; build prefixes with NewPrefix,
// NewPrenexPrefix, or incrementally with AddBlock and then Finalize.
type Prefix struct {
	roots  []*Block
	blocks []*Block // DFS preorder

	maxVar   int
	quant    []Quant // 1-based, per variable; meaningful only if bound
	blockOf  []*Block
	d, f     []int // 1-based timestamps; 0 for unbound variables
	level    []int // 1-based prefix levels; 0 for unbound variables
	finished bool
}

// NewPrefix returns an empty prefix able to describe variables 1..maxVar.
// Variables that are never added to a block are free; GrowVar extends the
// range later if needed.
func NewPrefix(maxVar int) *Prefix {
	p := &Prefix{}
	p.grow(maxVar)
	return p
}

func (p *Prefix) grow(maxVar int) {
	if maxVar <= p.maxVar {
		return
	}
	q := make([]Quant, maxVar+1)
	copy(q, p.quant)
	p.quant = q
	bo := make([]*Block, maxVar+1)
	copy(bo, p.blockOf)
	p.blockOf = bo
	p.maxVar = maxVar
}

// GrowVar extends the variable range of the prefix to cover v.
func (p *Prefix) GrowVar(v Var) { p.grow(int(v)) }

// MaxVar returns the largest variable index the prefix can describe.
func (p *Prefix) MaxVar() int { return p.maxVar }

// AddBlock appends a new block binding vars with quantifier q in the scope
// of parent (nil for a new root block) and returns it. Variables must not be
// bound twice; the call panics otherwise, because a QBF in which a variable
// is bound by two quantifiers is outside the representation of Section II.
// Finalize must be called after the last AddBlock.
func (p *Prefix) AddBlock(parent *Block, q Quant, vars ...Var) *Block {
	b := &Block{Quant: q, Vars: append([]Var(nil), vars...), parent: parent}
	for _, v := range vars {
		if v <= 0 {
			panic(fmt.Sprintf("qbf: invalid variable %d", v))
		}
		p.grow(int(v))
		if p.blockOf[v] != nil {
			panic(fmt.Sprintf("qbf: variable %d bound twice", v))
		}
		p.quant[v] = q
		p.blockOf[v] = b
	}
	if parent == nil {
		p.roots = append(p.roots, b)
	} else {
		parent.Children = append(parent.Children, b)
	}
	p.finished = false
	return b
}

// Roots returns the root blocks of the quantifier forest.
func (p *Prefix) Roots() []*Block { return p.roots }

// Blocks returns all blocks in DFS preorder. Valid after Finalize.
func (p *Prefix) Blocks() []*Block { return p.blocks }

// Bound reports whether v is bound by some quantifier of the prefix.
func (p *Prefix) Bound(v Var) bool {
	return int(v) <= p.maxVar && p.blockOf[v] != nil
}

// QuantOf returns the quantifier binding v. Free variables are existential
// (Section II: an unbound x is treated as if the QBF were ∃x ϕ).
func (p *Prefix) QuantOf(v Var) Quant {
	if !p.Bound(v) {
		return Exists
	}
	return p.quant[v]
}

// BlockOf returns the block binding v, or nil if v is free.
func (p *Prefix) BlockOf(v Var) *Block {
	if int(v) > p.maxVar {
		return nil
	}
	return p.blockOf[v]
}

// Finalize computes block ids, prefix levels and the DFS timestamps d(z)
// and f(z) of Section VI. It must be called after the tree is fully built
// and before Before, Level, D or F are used. Finalize is idempotent.
func (p *Prefix) Finalize() {
	if p.finished {
		return
	}
	p.blocks = p.blocks[:0]
	p.d = make([]int, p.maxVar+1)
	p.f = make([]int, p.maxVar+1)
	p.level = make([]int, p.maxVar+1)

	// The timestamp starts at 1 and is incremented each time the DFS
	// enters a block whose quantifier differs from the innermost open
	// block's quantifier (the variable "z′ with the greatest d(z′) whose
	// f(z′) is not yet set" in the paper's formulation).
	ts := 1
	sts := 0
	var walk func(b *Block, parent *Block)
	walk = func(b *Block, parent *Block) {
		if parent != nil && parent.Quant != b.Quant {
			ts++
		}
		sts++
		b.sd = sts
		b.id = len(p.blocks)
		p.blocks = append(p.blocks, b)
		if parent == nil {
			b.level = 1
		} else if parent.Quant == b.Quant {
			b.level = parent.level
		} else {
			b.level = parent.level + 1
		}
		b.d = ts
		for _, v := range b.Vars {
			p.d[v] = ts
			p.level[v] = b.level
		}
		for _, c := range b.Children {
			walk(c, b)
		}
		b.f = ts
		b.sf = sts
		for _, v := range b.Vars {
			p.f[v] = ts
		}
	}
	for i, r := range p.roots {
		// Sibling roots are independent scopes: advance the timestamp so
		// that d intervals of distinct roots do not nest and variables of
		// distinct roots come out incomparable.
		if i > 0 {
			ts++
		}
		walk(r, nil)
	}
	p.finished = true
}

// D returns the DFS discovery timestamp d(v) of Section VI. On trees whose
// edges all alternate quantifiers (the shape the paper's example and all
// the workload generators produce) d and f realize the parenthesis-theorem
// test; Before itself uses the structural test, exact for every tree.
// Valid after Finalize.
func (p *Prefix) D(v Var) int { return p.d[v] }

// F returns the DFS finish timestamp f(v). See D. Valid after Finalize.
func (p *Prefix) F(v Var) int { return p.f[v] }

// Level returns the prefix level of v: the length of the longest chain
// z1 ≺ … ≺ v. Free variables have level 0 (outermost of everything).
// Valid after Finalize.
func (p *Prefix) Level(v Var) int {
	if !p.Bound(v) {
		return 0
	}
	return p.level[v]
}

// MaxLevel returns the prefix level of the whole QBF, i.e. the maximum
// prefix level of its variables. Valid after Finalize.
func (p *Prefix) MaxLevel() int {
	max := 0
	for _, b := range p.blocks {
		if b.level > max {
			max = b.level
		}
	}
	return max
}

// Before reports whether z ≺ z' in the partial prefix order: z' occurs in
// the scope of z separated by at least one quantifier alternation. The test
// is structural: z's block must be a tree ancestor of z”s block with a
// strictly smaller prefix level (levels grow exactly at alternations along
// a path). On trees whose edges all alternate quantifiers this coincides
// with the paper's parenthesis-theorem test d(z) < d(z') ≤ f(z) (Section
// VI, eq. 13); on trees with same-quantifier parent-child blocks and
// branching, no single interval labelling can decide ≺, so the structural
// test is the exact generalization. A free variable precedes every bound
// variable and no bound variable precedes a free one. Valid after Finalize.
func (p *Prefix) Before(z, zp Var) bool {
	zb, zpb := p.Bound(z), p.Bound(zp)
	switch {
	case !zb && !zpb:
		return false
	case !zb:
		return true // free variables are outermost existentials
	case !zpb:
		return false
	}
	bz, bzp := p.blockOf[z], p.blockOf[zp]
	return bz.AncestorOf(bzp) && bz.level < bzp.level
}

// Comparable reports whether z and z' are ordered either way by ≺.
func (p *Prefix) Comparable(z, zp Var) bool {
	return p.Before(z, zp) || p.Before(zp, z)
}

// IsPrenex reports whether the prefix is in prenex form in the paper's
// sense: for each existential x and universal y, either x ≺ y or y ≺ x.
// A chain-shaped tree is always prenex; a branching tree may still qualify
// if the branching never separates an ∃/∀ pair.
func (p *Prefix) IsPrenex() bool {
	return !p.hasAlternationPair()
}

// hasAlternationPair reports whether some existential x and universal y are
// incomparable, which is what makes a prefix genuinely non-prenex.
func (p *Prefix) hasAlternationPair() bool {
	p.Finalize()
	var ex, un []Var
	for _, b := range p.blocks {
		if b.Quant == Exists {
			ex = append(ex, b.Vars...)
		} else {
			un = append(un, b.Vars...)
		}
	}
	for _, x := range ex {
		for _, y := range un {
			if !p.Comparable(x, y) {
				return true
			}
		}
	}
	return false
}

// NewPrenexPrefix builds a prenex (totally ordered) prefix from a sequence
// of (quantifier, variables) runs, outermost first. Adjacent runs with the
// same quantifier are merged into one block.
func NewPrenexPrefix(maxVar int, runs ...Run) *Prefix {
	p := NewPrefix(maxVar)
	var cur *Block
	for _, r := range runs {
		if len(r.Vars) == 0 {
			continue
		}
		if cur != nil && cur.Quant == r.Quant {
			for _, v := range r.Vars {
				p.grow(int(v))
				if p.blockOf[v] != nil {
					panic(fmt.Sprintf("qbf: variable %d bound twice", v))
				}
				p.quant[v] = r.Quant
				p.blockOf[v] = cur
				cur.Vars = append(cur.Vars, v)
			}
			continue
		}
		cur = p.AddBlock(cur, r.Quant, r.Vars...)
	}
	p.Finalize()
	return p
}

// Run is one quantifier block of a prenex prefix, outermost first.
type Run struct {
	Quant Quant
	Vars  []Var
}

// Clone returns a deep copy of the prefix (blocks are fresh objects).
func (p *Prefix) Clone() *Prefix {
	q := NewPrefix(p.maxVar)
	var walk func(src *Block, parent *Block)
	walk = func(src *Block, parent *Block) {
		nb := q.AddBlock(parent, src.Quant, src.Vars...)
		for _, c := range src.Children {
			walk(c, nb)
		}
	}
	for _, r := range p.roots {
		walk(r, nil)
	}
	if p.finished {
		q.Finalize()
	}
	return q
}

// Vars returns all bound variables in DFS preorder of their blocks.
func (p *Prefix) Vars() []Var {
	var out []Var
	var walk func(b *Block)
	walk = func(b *Block) {
		out = append(out, b.Vars...)
		for _, c := range b.Children {
			walk(c)
		}
	}
	for _, r := range p.roots {
		walk(r)
	}
	return out
}

// NumBound returns the number of bound variables.
func (p *Prefix) NumBound() int {
	n := 0
	for _, b := range p.blocks {
		n += len(b.Vars)
	}
	if !p.finished {
		n = len(p.Vars())
	}
	return n
}

// String renders the prefix as a parenthesized tree, e.g.
// "e 1 (a 2 (e 3 4) ; a 5 (e 6))".
func (p *Prefix) String() string {
	var sb strings.Builder
	var walk func(b *Block)
	walk = func(b *Block) {
		sb.WriteString(b.Quant.String())
		for _, v := range b.Vars {
			fmt.Fprintf(&sb, " %d", v)
		}
		if len(b.Children) > 0 {
			sb.WriteString(" (")
			for i, c := range b.Children {
				if i > 0 {
					sb.WriteString(" ; ")
				}
				walk(c)
			}
			sb.WriteString(")")
		}
	}
	for i, r := range p.roots {
		if i > 0 {
			sb.WriteString(" ; ")
		}
		walk(r)
	}
	return sb.String()
}

// RemoveEmptyBlocks returns a copy of the prefix in which blocks that ended
// up with no variables are spliced out (their children are promoted), and
// adjacent same-quantifier parent/child single-chain blocks are merged.
// Useful after transformations that drop variables.
func (p *Prefix) RemoveEmptyBlocks() *Prefix {
	q := NewPrefix(p.maxVar)
	var walk func(src *Block, parent *Block)
	walk = func(src *Block, parent *Block) {
		target := parent
		if len(src.Vars) > 0 {
			if parent != nil && parent.Quant == src.Quant {
				// Merge into the parent run.
				for _, v := range src.Vars {
					q.quant[v] = src.Quant
					q.blockOf[v] = parent
					parent.Vars = append(parent.Vars, v)
				}
			} else {
				target = q.AddBlock(parent, src.Quant, src.Vars...)
			}
		}
		for _, c := range src.Children {
			walk(c, target)
		}
	}
	for _, r := range p.roots {
		walk(r, nil)
	}
	q.Finalize()
	return q
}

// SortedVarsByLevel returns the bound variables sorted by (level, var),
// a convenient deterministic order for total-order solvers and printers.
func (p *Prefix) SortedVarsByLevel() []Var {
	p.Finalize()
	vars := p.Vars()
	sort.Slice(vars, func(i, j int) bool {
		li, lj := p.level[vars[i]], p.level[vars[j]]
		if li != lj {
			return li < lj
		}
		return vars[i] < vars[j]
	})
	return vars
}
