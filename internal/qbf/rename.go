package qbf

// Rename applies the variable permutation perm (1-based: perm[v] is the
// new name of v) to prefix and matrix, preserving the quantifier tree
// shape. Renaming is truth-preserving — the metamorphic suite proves the
// solver invariant under it, and the gate's canonical-form cache relies on
// it to fold rename-variant requests onto one cache key. perm must be an
// injective map over the bound variables; a non-injective table corrupts
// the formula, so it is rejected loudly rather than returned quietly.
func Rename(q *QBF, perm []Var) *QBF {
	p := NewPrefix(q.Prefix.MaxVar())
	var cloneBlock func(b *Block, parent *Block)
	cloneBlock = func(b *Block, parent *Block) {
		vars := make([]Var, len(b.Vars))
		for i, v := range b.Vars {
			vars[i] = perm[v]
		}
		nb := p.AddBlock(parent, b.Quant, vars...)
		for _, c := range b.Children {
			cloneBlock(c, nb)
		}
	}
	for _, r := range q.Prefix.Roots() {
		cloneBlock(r, nil)
	}
	p.Finalize()
	matrix := make([]Clause, len(q.Matrix))
	for i, c := range q.Matrix {
		nc := make(Clause, len(c))
		for j, l := range c {
			nl := perm[l.Var()].PosLit()
			if !l.Positive() {
				nl = nl.Neg()
			}
			nc[j] = nl
		}
		nc, taut := nc.Normalize()
		if taut {
			panic("qbf: Rename created a tautology — the permutation is not injective")
		}
		matrix[i] = nc
	}
	return New(p, matrix)
}

// IdentityPerm returns the 1-based identity permutation over 1..maxVar,
// ready to be partially rewritten before a Rename call.
func IdentityPerm(maxVar int) []Var {
	perm := make([]Var, maxVar+1)
	for v := 1; v <= maxVar; v++ {
		perm[v] = Var(v)
	}
	return perm
}
