package qbf

import (
	"fmt"
	"strings"
)

// QBF is a quantified Boolean formula ⟨prefix, matrix⟩ with a CNF matrix
// and a possibly non-prenex quantifier prefix.
type QBF struct {
	Prefix *Prefix
	Matrix []Clause
}

// New returns a QBF with the given prefix and matrix. The prefix is
// finalized; the matrix is used as is (call NormalizeMatrix to clean it up).
func New(p *Prefix, matrix []Clause) *QBF {
	p.Finalize()
	return &QBF{Prefix: p, Matrix: matrix}
}

// MaxVar returns the largest variable index mentioned by the prefix or the
// matrix.
func (q *QBF) MaxVar() int {
	max := q.Prefix.MaxVar()
	for _, c := range q.Matrix {
		for _, l := range c {
			if int(l.Var()) > max {
				max = int(l.Var())
			}
		}
	}
	return max
}

// NumClauses returns the number of clauses in the matrix.
func (q *QBF) NumClauses() int { return len(q.Matrix) }

// Clone returns a deep copy of the QBF.
func (q *QBF) Clone() *QBF {
	m := make([]Clause, len(q.Matrix))
	for i, c := range q.Matrix {
		m[i] = c.Clone()
	}
	return &QBF{Prefix: q.Prefix.Clone(), Matrix: m}
}

// NormalizeMatrix sorts every clause, drops duplicate literals and removes
// tautological clauses. It returns the number of tautologies removed.
func (q *QBF) NormalizeMatrix() int {
	removed := 0
	out := q.Matrix[:0]
	for _, c := range q.Matrix {
		nc, taut := c.Normalize()
		if taut {
			removed++
			continue
		}
		out = append(out, nc)
	}
	q.Matrix = out
	return removed
}

// Validate checks the structural invariants of Section II: every literal's
// variable is positive, no clause mentions a variable twice, and every
// matrix variable is within the prefix range. Free matrix variables are
// legal (treated as outermost existentials). It returns the first violation
// found, or nil.
func (q *QBF) Validate() error {
	for i, c := range q.Matrix {
		seen := make(map[Var]bool, len(c))
		for _, l := range c {
			v := l.Var()
			if v <= 0 {
				return fmt.Errorf("clause %d: invalid literal %d", i, int(l))
			}
			if seen[v] {
				return fmt.Errorf("clause %d: variable %d occurs twice", i, v)
			}
			seen[v] = true
		}
	}
	return nil
}

// ScopeConsistent checks that every clause's bound variables lie on a single
// root-to-leaf path of the quantifier tree, the condition under which the
// ⟨prefix, matrix⟩ pair represents an actual non-prenex formula (every
// clause of a formula occurs at one node of the tree, so all its variables
// are bound on the path above that node). The recursive semantics is only
// well defined under this condition. Free variables (outermost existential)
// are always consistent. The first offending clause index is returned with
// an error, or -1 and nil.
func (q *QBF) ScopeConsistent() (int, error) {
	q.Prefix.Finalize()
	for i, c := range q.Matrix {
		if _, err := q.ClauseBlock(c); err != nil {
			return i, fmt.Errorf("clause %d %v: %v", i, c, err)
		}
	}
	return -1, nil
}

// ClauseBlock returns the deepest block among the blocks binding c's
// variables, checking that those blocks form a chain (pairwise
// ancestor-related). It returns nil for a clause of free variables only.
func (q *QBF) ClauseBlock(c Clause) (*Block, error) {
	q.Prefix.Finalize()
	var deepest *Block
	for _, l := range c {
		b := q.Prefix.BlockOf(l.Var())
		if b == nil {
			continue
		}
		switch {
		case deepest == nil, deepest.AncestorOf(b):
			deepest = b
		case b.AncestorOf(deepest):
			// keep deepest
		default:
			return nil, fmt.Errorf("variables %v span incomparable scopes", c)
		}
	}
	return deepest, nil
}

// FreeVars returns the matrix variables not bound by the prefix, sorted.
func (q *QBF) FreeVars() []Var {
	seen := make(map[Var]bool)
	var out []Var
	for _, c := range q.Matrix {
		for _, l := range c {
			v := l.Var()
			if !q.Prefix.Bound(v) && !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// BindFreeVars rebuilds the prefix so that every free matrix variable is
// bound by a fresh outermost existential block, per Section II point 2.
// It returns the number of variables bound. The prefix is replaced.
func (q *QBF) BindFreeVars() int {
	free := q.FreeVars()
	if len(free) == 0 {
		return 0
	}
	np := NewPrefix(q.MaxVar())
	top := np.AddBlock(nil, Exists, free...)
	var walk func(src *Block, parent *Block)
	walk = func(src *Block, parent *Block) {
		nb := np.AddBlock(parent, src.Quant, src.Vars...)
		for _, c := range src.Children {
			walk(c, nb)
		}
	}
	for _, r := range q.Prefix.Roots() {
		walk(r, top)
	}
	np.Finalize()
	q.Prefix = np
	return len(free)
}

// Assign returns the QBF q_l of Section II: clauses containing l are
// deleted, l̄ is deleted from the remaining clauses, and |l| is removed
// from the prefix order. The receiver is not modified. Assign is the
// reference (functional, not incremental) implementation used by the
// oracle evaluator and the tests; the solver keeps its own trail instead.
func (q *QBF) Assign(l Lit) *QBF {
	m := make([]Clause, 0, len(q.Matrix))
	neg := l.Neg()
	for _, c := range q.Matrix {
		if c.Has(l) {
			continue
		}
		if c.Has(neg) {
			nc := make(Clause, 0, len(c)-1)
			for _, x := range c {
				if x != neg {
					nc = append(nc, x)
				}
			}
			m = append(m, nc)
		} else {
			m = append(m, c)
		}
	}
	return &QBF{Prefix: q.Prefix.without(l.Var()), Matrix: m}
}

// without returns a copy of the prefix with v removed.
func (p *Prefix) without(v Var) *Prefix {
	np := NewPrefix(p.maxVar)
	var walk func(src *Block, parent *Block)
	walk = func(src *Block, parent *Block) {
		vars := make([]Var, 0, len(src.Vars))
		for _, x := range src.Vars {
			if x != v {
				vars = append(vars, x)
			}
		}
		target := parent
		if len(vars) > 0 {
			if parent != nil && parent.Quant == src.Quant {
				for _, x := range vars {
					np.quant[x] = src.Quant
					np.blockOf[x] = parent
					parent.Vars = append(parent.Vars, x)
				}
			} else {
				target = np.AddBlock(parent, src.Quant, vars...)
			}
		}
		for _, c := range src.Children {
			walk(c, target)
		}
	}
	for _, r := range p.roots {
		walk(r, nil)
	}
	np.Finalize()
	return np
}

// UniversalReduce applies Lemma 3 to a clause: it removes every universal
// literal l for which no existential literal l' of the clause satisfies
// |l| ≺ |l'|. Free variables count as existential and precede everything.
// The input is not modified; the reduced clause is returned.
func (q *QBF) UniversalReduce(c Clause) Clause {
	return UniversalReduce(q.Prefix, c)
}

// UniversalReduce is the prefix-level form of Lemma 3 (see QBF.UniversalReduce).
func UniversalReduce(p *Prefix, c Clause) Clause {
	p.Finalize()
	out := make(Clause, 0, len(c))
	for _, l := range c {
		v := l.Var()
		if p.QuantOf(v) == Exists {
			out = append(out, l)
			continue
		}
		keep := false
		for _, lp := range c {
			vp := lp.Var()
			if p.QuantOf(vp) == Exists && p.Before(v, vp) {
				keep = true
				break
			}
		}
		if keep {
			out = append(out, l)
		}
	}
	return out
}

// ExistentialReduce is the dual of UniversalReduce for cubes (goods): it
// removes every existential literal l for which no universal literal l' of
// the cube satisfies |l| ≺ |l'|.
func ExistentialReduce(p *Prefix, c Cube) Cube {
	p.Finalize()
	out := make(Cube, 0, len(c))
	for _, l := range c {
		v := l.Var()
		if p.QuantOf(v) == Forall {
			out = append(out, l)
			continue
		}
		keep := false
		for _, lp := range c {
			vp := lp.Var()
			if p.QuantOf(vp) == Forall && p.Before(v, vp) {
				keep = true
				break
			}
		}
		if keep {
			out = append(out, l)
		}
	}
	return out
}

// Contradictory reports whether c contains no existential literal, the
// condition of Lemma 4 under which the whole QBF is false.
func (q *QBF) Contradictory(c Clause) bool {
	for _, l := range c {
		if q.Prefix.QuantOf(l.Var()) == Exists {
			return false
		}
	}
	return true
}

// String renders the QBF as "prefix : matrix".
func (q *QBF) String() string {
	var sb strings.Builder
	sb.WriteString(q.Prefix.String())
	sb.WriteString(" : {")
	for i, c := range q.Matrix {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.String())
	}
	sb.WriteString("}")
	return sb.String()
}

// Stats summarizes a formula for reporting.
type Stats struct {
	Vars         int // bound variables
	Existentials int
	Universals   int
	Clauses      int
	Literals     int
	PrefixLevel  int
	Blocks       int
	Prenex       bool
}

// Stats computes summary statistics of the formula.
func (q *QBF) Stats() Stats {
	q.Prefix.Finalize()
	s := Stats{
		Clauses:     len(q.Matrix),
		PrefixLevel: q.Prefix.MaxLevel(),
		Blocks:      len(q.Prefix.Blocks()),
		Prenex:      q.Prefix.IsPrenex(),
	}
	for _, b := range q.Prefix.Blocks() {
		s.Vars += len(b.Vars)
		if b.Quant == Exists {
			s.Existentials += len(b.Vars)
		} else {
			s.Universals += len(b.Vars)
		}
	}
	for _, c := range q.Matrix {
		s.Literals += len(c)
	}
	return s
}
