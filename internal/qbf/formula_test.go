package qbf

import (
	"strings"
	"testing"
)

func mkClause(lits ...int) Clause {
	c := make(Clause, len(lits))
	for i, l := range lits {
		c[i] = Lit(l)
	}
	return c
}

func TestClauseNormalize(t *testing.T) {
	c, taut := mkClause(3, -1, 3, 2).Normalize()
	if taut {
		t.Fatal("not a tautology")
	}
	want := mkClause(-1, 2, 3)
	if len(c) != len(want) {
		t.Fatalf("got %v", c)
	}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("Normalize = %v, want %v", c, want)
		}
	}
	if _, taut := mkClause(1, -2, -1).Normalize(); !taut {
		t.Error("z and z̄ must be reported as tautology")
	}
	if _, taut := mkClause().Normalize(); taut {
		t.Error("empty clause is not a tautology")
	}
}

func TestLitBasics(t *testing.T) {
	l := Lit(-5)
	if l.Var() != 5 || l.Positive() || l.Neg() != 5 {
		t.Errorf("literal arithmetic broken: %v %v %v", l.Var(), l.Positive(), l.Neg())
	}
	if Var(3).PosLit() != 3 || Var(3).NegLit() != -3 {
		t.Error("Var to Lit conversion broken")
	}
	if Exists.Dual() != Forall || Forall.Dual() != Exists {
		t.Error("Quant.Dual broken")
	}
}

func TestUniversalReducePrenex(t *testing.T) {
	// ∃x1 ∀y2 ∃x3, clause {x1, y2}: y2 has no existential in its scope
	// inside the clause, so it is removed (Lemma 3).
	p := NewPrenexPrefix(3,
		Run{Exists, []Var{1}}, Run{Forall, []Var{2}}, Run{Exists, []Var{3}})
	got := UniversalReduce(p, mkClause(1, 2))
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("reduce {x1,y2} = %v, want {1}", got)
	}
	// {y2, x3}: x3 is in the scope of y2, so y2 stays.
	got = UniversalReduce(p, mkClause(2, 3))
	if len(got) != 2 {
		t.Errorf("reduce {y2,x3} = %v, want both kept", got)
	}
	// {x1, -y2, x3}: kept because of x3.
	got = UniversalReduce(p, mkClause(1, -2, 3))
	if len(got) != 3 {
		t.Errorf("reduce {x1,¬y2,x3} = %v, want all kept", got)
	}
}

func TestUniversalReduceNonPrenex(t *testing.T) {
	p := paperPrefix() // x0=1 (y1=2 (x1=3,x2=4) ; y2=5 (x3=6,x4=7))
	// {y1, x3}: x3 is NOT in the scope of y1 (different subtree), remove y1.
	got := UniversalReduce(p, mkClause(2, 6))
	if len(got) != 1 || got[0] != 6 {
		t.Errorf("reduce {y1,x3} = %v, want {6}", got)
	}
	// {y1, x1}: x1 in scope of y1, keep both.
	got = UniversalReduce(p, mkClause(2, 3))
	if len(got) != 2 {
		t.Errorf("reduce {y1,x1} = %v, want both", got)
	}
	// {x0, y1}: x0 not in scope of y1, remove y1.
	got = UniversalReduce(p, mkClause(1, 2))
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("reduce {x0,y1} = %v, want {1}", got)
	}
	// Contradictory clause {y1} reduces to the empty clause.
	got = UniversalReduce(p, mkClause(2))
	if len(got) != 0 {
		t.Errorf("reduce {y1} = %v, want empty", got)
	}
}

func TestExistentialReduceCube(t *testing.T) {
	p := NewPrenexPrefix(3,
		Run{Exists, []Var{1}}, Run{Forall, []Var{2}}, Run{Exists, []Var{3}})
	// Cube [x1, y2, x3]: x3 has no universal after it → removed; x1 has
	// y2 after it → kept.
	got := ExistentialReduce(p, Cube{1, 2, 3})
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("ExistentialReduce = %v, want [1 2]", got)
	}
}

func TestContradictory(t *testing.T) {
	p := paperPrefix()
	q := New(p, nil)
	if !q.Contradictory(mkClause(2, 5)) {
		t.Error("{y1,y2} is contradictory (no existential literal)")
	}
	if !q.Contradictory(mkClause()) {
		t.Error("empty clause is contradictory")
	}
	if q.Contradictory(mkClause(2, 3)) {
		t.Error("{y1,x1} has an existential literal")
	}
}

func TestAssign(t *testing.T) {
	p := NewPrenexPrefix(3,
		Run{Forall, []Var{1}}, Run{Exists, []Var{2, 3}})
	q := New(p, []Clause{mkClause(1, 2), mkClause(-1, 3), mkClause(-2, -3)})
	r := q.Assign(1) // y=true: {1,2} satisfied; {-1,3} → {3}
	if len(r.Matrix) != 2 {
		t.Fatalf("got %d clauses, want 2: %v", len(r.Matrix), r.Matrix)
	}
	if len(r.Matrix[0]) != 1 || r.Matrix[0][0] != 3 {
		t.Errorf("first residual clause %v, want {3}", r.Matrix[0])
	}
	if r.Prefix.Bound(1) {
		t.Error("assigned variable must leave the prefix")
	}
	if len(q.Matrix) != 3 {
		t.Error("Assign must not modify the receiver")
	}
}

func TestScopeConsistent(t *testing.T) {
	p := paperPrefix()
	ok := New(p, []Clause{mkClause(1, 3, 4), mkClause(2, 3), mkClause(1, 6, 7)})
	if i, err := ok.ScopeConsistent(); err != nil {
		t.Fatalf("consistent formula rejected at clause %d: %v", i, err)
	}
	bad := New(p.Clone(), []Clause{mkClause(3, 6)}) // x1 and x3: disjoint subtrees
	if _, err := bad.ScopeConsistent(); err == nil {
		t.Fatal("clause spanning incomparable scopes must be rejected")
	}
}

func TestBindFreeVars(t *testing.T) {
	p := NewPrenexPrefix(2, Run{Forall, []Var{1}}, Run{Exists, []Var{2}})
	q := New(p, []Clause{mkClause(1, 2, 5), mkClause(-5, 2)})
	n := q.BindFreeVars()
	if n != 1 {
		t.Fatalf("bound %d free vars, want 1", n)
	}
	if !q.Prefix.Bound(5) || q.Prefix.QuantOf(5) != Exists {
		t.Error("free variable must become an outermost existential")
	}
	if !q.Prefix.Before(5, 1) {
		t.Error("new existential block must be outermost")
	}
}

func TestStats(t *testing.T) {
	p := paperPrefix()
	q := New(p, []Clause{mkClause(1, 3, 4), mkClause(2, 3)})
	s := q.Stats()
	if s.Vars != 7 || s.Existentials != 5 || s.Universals != 2 {
		t.Errorf("var counts wrong: %+v", s)
	}
	if s.Clauses != 2 || s.Literals != 5 || s.PrefixLevel != 3 || s.Prenex {
		t.Errorf("formula stats wrong: %+v", s)
	}
}

func TestNormalizeMatrix(t *testing.T) {
	p := NewPrenexPrefix(3, Run{Exists, []Var{1, 2, 3}})
	q := New(p, []Clause{mkClause(1, -1), mkClause(2, 3, 2), mkClause(3)})
	removed := q.NormalizeMatrix()
	if removed != 1 {
		t.Errorf("removed %d tautologies, want 1", removed)
	}
	if len(q.Matrix) != 2 || len(q.Matrix[0]) != 2 {
		t.Errorf("matrix after normalize: %v", q.Matrix)
	}
}

func TestValidate(t *testing.T) {
	p := NewPrenexPrefix(2, Run{Exists, []Var{1, 2}})
	good := New(p, []Clause{mkClause(1, -2)})
	if err := good.Validate(); err != nil {
		t.Errorf("valid formula rejected: %v", err)
	}
	dup := New(p.Clone(), []Clause{mkClause(1, 1)})
	if err := dup.Validate(); err == nil {
		t.Error("duplicate variable in clause must be rejected")
	}
}

func TestWriteDOT(t *testing.T) {
	p := paperPrefix()
	q := New(p, []Clause{mkClause(1, 3, 4)})
	var sb strings.Builder
	if err := WriteDOT(&sb, q); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", "b0", "->", "level 3", "∃", "∀"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	if strings.Count(out, "->") != 4 {
		t.Errorf("want 4 tree edges, got %d", strings.Count(out, "->"))
	}
}
