package qbf

import "fmt"

// This file holds the designated constructors between external integers
// (DIMACS indices, loop counters, generator outputs) and the typed Var/Lit
// domain. Lint rule L2 (cmd/qbflint) forbids raw qbf.Var(...)/qbf.Lit(...)
// conversions outside this package and internal/qdimacs, so that every
// int→Var/Lit crossing is validated here instead of silently admitting 0
// or negative variables into the solver.

// MinVar is the smallest valid variable. Iterate the variable range with
//
//	for v := qbf.MinVar; v.Int() <= maxVar; v++ { ... }
const MinVar Var = 1

// NoLit is the zero literal: not a valid literal (0 terminates DIMACS
// clauses) and therefore the designated "absent" sentinel.
const NoLit Lit = 0

// VarOf converts a positive integer to a Var. It panics on n < 1: variable
// 0 would collide with the DIMACS terminator and silently corrupt
// occurrence indexing.
func VarOf(n int) Var {
	if n < 1 {
		panic(fmt.Sprintf("qbf: VarOf(%d): variables are numbered from 1", n))
	}
	return Var(n)
}

// LitOf converts a nonzero DIMACS-encoded integer to a Lit (+v or -v).
// It panics on 0, which is the clause terminator, not a literal.
func LitOf(n int) Lit {
	if n == 0 {
		panic("qbf: LitOf(0): 0 is the DIMACS clause terminator, not a literal")
	}
	return Lit(n)
}

// Int returns the variable's integer index.
func (v Var) Int() int { return int(v) }

// Int returns the literal's DIMACS encoding.
func (l Lit) Int() int { return int(l) }
