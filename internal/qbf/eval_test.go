package qbf

import (
	"math/rand"
	"testing"
)

func TestEvalPrenexBasics(t *testing.T) {
	tests := []struct {
		name   string
		prefix *Prefix
		matrix []Clause
		want   bool
	}{
		{
			name:   "forall exists xor true",
			prefix: NewPrenexPrefix(2, Run{Forall, []Var{1}}, Run{Exists, []Var{2}}),
			matrix: []Clause{mkClause(1, 2), mkClause(-1, -2)},
			want:   true,
		},
		{
			name:   "exists forall xor false",
			prefix: NewPrenexPrefix(2, Run{Exists, []Var{2}}, Run{Forall, []Var{1}}),
			matrix: []Clause{mkClause(1, 2), mkClause(-1, -2)},
			want:   false,
		},
		{
			name:   "empty matrix true",
			prefix: NewPrenexPrefix(1, Run{Forall, []Var{1}}),
			matrix: nil,
			want:   true,
		},
		{
			name:   "empty clause false",
			prefix: NewPrenexPrefix(1, Run{Exists, []Var{1}}),
			matrix: []Clause{{}},
			want:   false,
		},
		{
			name:   "sat instance",
			prefix: NewPrenexPrefix(3, Run{Exists, []Var{1, 2, 3}}),
			matrix: []Clause{mkClause(1, 2), mkClause(-1, 3), mkClause(-2, -3), mkClause(2, 3)},
			want:   true,
		},
		{
			name:   "unsat instance",
			prefix: NewPrenexPrefix(2, Run{Exists, []Var{1, 2}}),
			matrix: []Clause{mkClause(1, 2), mkClause(1, -2), mkClause(-1, 2), mkClause(-1, -2)},
			want:   false,
		},
		{
			name:   "forall needs both",
			prefix: NewPrenexPrefix(2, Run{Forall, []Var{1}}, Run{Exists, []Var{2}}),
			matrix: []Clause{mkClause(1)},
			want:   false,
		},
		{
			name: "two alternations true",
			// ∀y1 ∃x2 ∀y3 ∃x4: (y1∨x2) ∧ (y3∨x4) ∧ (¬y1∨¬x2∨¬y3∨¬x4 is omitted)
			prefix: NewPrenexPrefix(4, Run{Forall, []Var{1}}, Run{Exists, []Var{2}},
				Run{Forall, []Var{3}}, Run{Exists, []Var{4}}),
			matrix: []Clause{mkClause(1, 2), mkClause(3, 4)},
			want:   true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			q := New(tt.prefix, tt.matrix)
			if got := Eval(q); got != tt.want {
				t.Errorf("Eval = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestEvalNonPrenex(t *testing.T) {
	// (∃x1 (x1)) ∧ (∀y2 (y2)): false because ∀y2 y2 is false.
	p := NewPrefix(2)
	p.AddBlock(nil, Exists, 1)
	p.AddBlock(nil, Forall, 2)
	q := New(p, []Clause{mkClause(1), mkClause(2)})
	if Eval(q) {
		t.Error("(∃x x) ∧ (∀y y) must be false")
	}

	// (∃x1 (x1)) ∧ (∀y2 (y2 ∨ x1)) — but x1 is shared, so the tree is
	// ∃x1 ((x1) ∧ ∀y2 (y2 ∨ x1)): true with x1 = true.
	p2 := NewPrefix(2)
	r := p2.AddBlock(nil, Exists, 1)
	p2.AddBlock(r, Forall, 2)
	q2 := New(p2, []Clause{mkClause(1), mkClause(2, 1)})
	if !Eval(q2) {
		t.Error("∃x (x ∧ ∀y (y ∨ x)) must be true")
	}

	// ∃x1 (∀y2 (x1∨¬y2) ∧ ∀y3 (¬x1∨¬y3)): x1=t falsifies the second
	// conjunct at y3=t; x1=f falsifies the first at y2=t → false.
	p3 := NewPrefix(3)
	r3 := p3.AddBlock(nil, Exists, 1)
	p3.AddBlock(r3, Forall, 2)
	p3.AddBlock(r3, Forall, 3)
	q3 := New(p3, []Clause{mkClause(1, -2), mkClause(-1, -3)})
	if Eval(q3) {
		t.Error("∃x (∀y2 (x∨¬y2) ∧ ∀y3 (¬x∨¬y3)) must be false")
	}

	// Same shape but satisfiable: ∃x1 (∀y2 (x1∨y2∨¬y2…)) — instead use
	// ∃x1 (∀y2 ∃x3 ((x1∨x3) ∧ (y2∨¬x3)) ∧ ∀y4 ∃x5 ((¬x1∨x5) ∧ (y4∨¬x5))).
	// With x1 = true: first conjunct satisfied by x3 = y2-dependent? Take
	// x1=true: (x1∨x3) holds; (y2∨¬x3) holds with x3=false. Second
	// conjunct: (¬x1∨x5) needs x5=true, then (y4∨¬x5) needs y4 — fails at
	// y4=false. With x1=false: symmetric failure. Hence false.
	p4 := NewPrefix(5)
	r4 := p4.AddBlock(nil, Exists, 1)
	b2 := p4.AddBlock(r4, Forall, 2)
	p4.AddBlock(b2, Exists, 3)
	b4 := p4.AddBlock(r4, Forall, 4)
	p4.AddBlock(b4, Exists, 5)
	q4 := New(p4, []Clause{
		mkClause(1, 3), mkClause(2, -3),
		mkClause(-1, 5), mkClause(4, -5),
	})
	if Eval(q4) {
		t.Error("q4 must be false")
	}

	// Satisfiable variant: make the inner existentials strong enough.
	// ∃x1 (∀y2 ∃x3 ((x3∨y2) ∧ (¬x3∨¬y2)) ∧ ∀y4 ∃x5 ((x5∨y4) ∧ (¬x5∨¬y4))):
	// each conjunct is the xor pattern, true independently of x1.
	p5 := NewPrefix(5)
	r5 := p5.AddBlock(nil, Exists, 1)
	c2 := p5.AddBlock(r5, Forall, 2)
	p5.AddBlock(c2, Exists, 3)
	c4 := p5.AddBlock(r5, Forall, 4)
	p5.AddBlock(c4, Exists, 5)
	q5 := New(p5, []Clause{
		mkClause(3, 2), mkClause(-3, -2),
		mkClause(5, 4), mkClause(-5, -4),
	})
	if !Eval(q5) {
		t.Error("q5 must be true")
	}
}

func TestEvalFreeVariables(t *testing.T) {
	// Free variable 3 acts as an outermost existential: 3 ∧ (¬3 ∨ x1).
	p := NewPrenexPrefix(1, Run{Exists, []Var{1}})
	q := New(p, []Clause{mkClause(3), mkClause(-3, 1)})
	if !Eval(q) {
		t.Error("free variables must be treated as outermost existentials")
	}
	// 3 ∧ ¬3 is false.
	q2 := New(p.Clone(), []Clause{mkClause(3), mkClause(-3)})
	if Eval(q2) {
		t.Error("contradictory free literals must yield false")
	}
}

func TestEvalWithBudget(t *testing.T) {
	p := NewPrenexPrefix(2, Run{Forall, []Var{1}}, Run{Exists, []Var{2}})
	q := New(p, []Clause{mkClause(1, 2), mkClause(-1, -2)})
	if v, ok := EvalWithBudget(q, 1_000); !ok || !v {
		t.Errorf("EvalWithBudget = (%v,%v), want (true,true)", v, ok)
	}
	if _, ok := EvalWithBudget(q, 1); ok {
		t.Error("budget of 1 node must be exceeded")
	}
}

func TestRandomQBFScopeConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		q := RandomQBF(rng, 10, 8)
		if idx, err := q.ScopeConsistent(); err != nil {
			t.Fatalf("iteration %d: random QBF inconsistent at clause %d: %v", i, idx, err)
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}

// TestEvalOrderIndependence checks the footnote-1 claim: the value of a
// representation is independent of which top variable the recursion picks.
// We compare the default evaluator with one that branches on the *largest*
// top variable instead of the smallest.
func TestEvalOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 150; i++ {
		q := RandomQBF(rng, 8, 6)
		a := Eval(q)
		b := evalLargestFirst(q)
		if a != b {
			t.Fatalf("iteration %d: Eval=%v but largest-first=%v on %v", i, a, b, q)
		}
	}
}

func evalLargestFirst(q *QBF) bool {
	if len(q.Matrix) == 0 {
		return true
	}
	for _, c := range q.Matrix {
		if len(c) == 0 {
			return false
		}
	}
	occurs := make(map[Var]bool)
	for _, c := range q.Matrix {
		for _, l := range c {
			occurs[l.Var()] = true
		}
	}
	best := Var(0)
	for v := range occurs {
		if !q.Prefix.Bound(v) && v > best {
			best = v
		}
	}
	if best != 0 {
		return evalLargestFirst(q.Assign(best.PosLit())) || evalLargestFirst(q.Assign(best.NegLit()))
	}
	var rel, irr Var
	for _, b := range q.Prefix.Blocks() {
		if b.Level() != 1 {
			continue
		}
		for _, v := range b.Vars {
			if occurs[v] {
				if v > rel {
					rel = v
				}
			} else if v > irr {
				irr = v
			}
		}
	}
	if rel != 0 {
		if q.Prefix.QuantOf(rel) == Exists {
			return evalLargestFirst(q.Assign(rel.PosLit())) || evalLargestFirst(q.Assign(rel.NegLit()))
		}
		return evalLargestFirst(q.Assign(rel.PosLit())) && evalLargestFirst(q.Assign(rel.NegLit()))
	}
	if irr != 0 {
		return evalLargestFirst(q.Assign(irr.PosLit()))
	}
	return false
}

// TestLemma3Property: universal reduction preserves the value of the QBF.
func TestLemma3Property(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 150; i++ {
		q := RandomQBF(rng, 8, 6)
		reduced := q.Clone()
		for j, c := range reduced.Matrix {
			reduced.Matrix[j] = UniversalReduce(reduced.Prefix, c)
		}
		if Eval(q) != Eval(reduced) {
			t.Fatalf("iteration %d: universal reduction changed the value of %v", i, q)
		}
	}
}

// TestLemma5Property: assigning a unit literal preserves the value.
func TestLemma5Property(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	checked := 0
	for i := 0; i < 400 && checked < 60; i++ {
		q := RandomQBF(rng, 8, 6)
		l, ok := findUnit(q)
		if !ok {
			continue
		}
		checked++
		if Eval(q) != Eval(q.Assign(l)) {
			t.Fatalf("iteration %d: unit assignment %v changed the value of %v", i, l, q)
		}
	}
	if checked == 0 {
		t.Fatal("no unit literals found in 400 random formulas; generator too weak")
	}
}

// findUnit looks for a literal that is unit by the generalized definition of
// Section IV: an existential l in a clause whose other literals are all
// universal with |li| ⋠ |l|.
func findUnit(q *QBF) (Lit, bool) {
	for _, c := range q.Matrix {
		for _, l := range c {
			if q.Prefix.QuantOf(l.Var()) != Exists {
				continue
			}
			unit := true
			for _, m := range c {
				if m == l {
					continue
				}
				if q.Prefix.QuantOf(m.Var()) != Forall || q.Prefix.Before(m.Var(), l.Var()) {
					unit = false
					break
				}
			}
			if unit {
				return l, true
			}
		}
	}
	return 0, false
}
