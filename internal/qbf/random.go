package qbf

import "math/rand"

// RandomQBF builds a random scope-consistent QBF over a random quantifier
// tree: every clause draws its variables from one root-to-leaf path, so the
// result always represents an actual non-prenex formula. It is primarily
// meant for differential testing of the solver against the Eval oracle.
func RandomQBF(rng *rand.Rand, maxVars, maxClauses int) *QBF {
	n := 2 + rng.Intn(maxVars-1)
	p := NewPrefix(n)
	// Random tree: each block gets 1..2 vars, random quantifier, random
	// parent among existing blocks or root.
	var blocks []*Block
	v := Var(1)
	for int(v) <= n {
		var parent *Block
		if len(blocks) > 0 && rng.Intn(3) > 0 {
			parent = blocks[rng.Intn(len(blocks))]
		}
		q := Exists
		if rng.Intn(2) == 0 {
			q = Forall
		}
		k := 1 + rng.Intn(2)
		vars := []Var{}
		for i := 0; i < k && int(v) <= n; i++ {
			vars = append(vars, v)
			v++
		}
		blocks = append(blocks, p.AddBlock(parent, q, vars...))
	}
	p.Finalize()

	// Paths: for each block, the variables on its root path.
	pathVars := func(b *Block) []Var {
		var out []Var
		for x := b; x != nil; x = x.Parent() {
			out = append(out, x.Vars...)
		}
		return out
	}
	nc := 1 + rng.Intn(maxClauses)
	matrix := make([]Clause, 0, nc)
	for i := 0; i < nc; i++ {
		b := blocks[rng.Intn(len(blocks))]
		pool := pathVars(b)
		k := 1 + rng.Intn(3)
		if k > len(pool) {
			k = len(pool)
		}
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		c := make(Clause, 0, k)
		for _, pv := range pool[:k] {
			l := pv.PosLit()
			if rng.Intn(2) == 0 {
				l = pv.NegLit()
			}
			c = append(c, l)
		}
		c, _ = c.Normalize()
		matrix = append(matrix, c)
	}
	q := New(p, matrix)
	return q
}
