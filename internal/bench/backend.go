package bench

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/qbf"
)

// SolveBackend abstracts "something that solves a QBF under budget
// options": the sequential engine, a parallel portfolio, or a test stub.
// Implementations must honor ctx and the limits in opt, contain their own
// panics, and return an Unknown verdict with a StopReason in the result's
// Stats on a governed stop. It is context-first and returns the unified
// core.Result, the same shape as core.Solve and core.SafeSolve —
// SequentialBackend IS core.SafeSolve. portfolio.BackendFunc adapts a
// portfolio configuration to this signature.
type SolveBackend func(ctx context.Context, q *qbf.QBF, opt core.Options) (core.Result, error)

// SequentialBackend is the default backend: one core solver per call.
func SequentialBackend(ctx context.Context, q *qbf.QBF, opt core.Options) (core.Result, error) {
	return core.SafeSolve(ctx, q, opt)
}

// RunOneBackend is RunOne through an arbitrary backend.
func RunOneBackend(ctx context.Context, q *qbf.QBF, opt core.Options, b SolveBackend) Outcome {
	start := time.Now()
	r, err := b(ctx, q, opt)
	return Outcome{
		Result:   r.Verdict,
		Stop:     r.Stats.StopReason,
		Timeout:  r.Stats.StopReason == core.StopTimeout,
		Time:     time.Since(start),
		Stats:    r.Stats,
		Attempts: 1,
		Err:      err,
	}
}

// runWithRetryBackend applies the retry policy around RunOneBackend,
// mirroring runWithRetry for the sequential path.
func runWithRetryBackend(ctx context.Context, q *qbf.QBF, opt core.Options, pol RetryPolicy, b SolveBackend) Outcome {
	out := RunOneBackend(ctx, q, opt, b)
	growth := pol.Growth
	if growth <= 1 {
		growth = 2
	}
	for a := 0; a < pol.Attempts && retryable(out) && ctx.Err() == nil; a++ {
		if opt.TimeLimit > 0 {
			opt.TimeLimit = time.Duration(float64(opt.TimeLimit) * growth)
		}
		if opt.NodeLimit > 0 {
			opt.NodeLimit = int64(float64(opt.NodeLimit) * growth)
		}
		if opt.MemLimit > 0 {
			opt.MemLimit = int64(float64(opt.MemLimit) * growth)
		}
		next := RunOneBackend(ctx, q, opt, b)
		next.Attempts = out.Attempts + 1
		out = next
	}
	return out
}

// Comparison is one instance of a backend-vs-sequential campaign.
type Comparison struct {
	Name       string
	Sequential Outcome
	Backend    Outcome
	// Disagree marks a soundness failure: both sides decided and returned
	// different verdicts.
	Disagree bool
}

// CompareBackends runs the sequential engine (partial-order mode on the
// tree form) and the given backend on every instance under ctx and the
// same budgets, recording per-instance outcomes, times, and verdict
// agreement. It is the harness behind the portfolio differential suite
// and the BENCH_portfolio smoke report. A nil ctx means Background.
func CompareBackends(ctx context.Context, insts []Instance, cfg Config, backend SolveBackend) []Comparison {
	ctx = contextOr(ctx)
	out := make([]Comparison, len(insts))
	for i, inst := range insts {
		seq := runWithRetry(ctx, inst.Tree, cfg.options(core.ModePartialOrder), cfg.Retry)
		bk := runWithRetryBackend(ctx, inst.Tree, cfg.options(core.ModePartialOrder), cfg.Retry, backend)
		out[i] = Comparison{
			Name:       inst.Name,
			Sequential: seq,
			Backend:    bk,
			Disagree:   seq.Decided() && bk.Decided() && seq.Result != bk.Result,
		}
	}
	return out
}

// ComparisonSummary aggregates a comparison campaign.
type ComparisonSummary struct {
	Instances         int
	Disagreements     int
	SequentialDecided int
	BackendDecided    int
	SequentialTotal   time.Duration
	BackendTotal      time.Duration
}

// Summarize totals a comparison campaign: wall-clock per side, decided
// counts, and the number of verdict disagreements (which must be zero for
// a sound backend).
func Summarize(cs []Comparison) ComparisonSummary {
	var s ComparisonSummary
	s.Instances = len(cs)
	for _, c := range cs {
		if c.Disagree {
			s.Disagreements++
		}
		if c.Sequential.Decided() {
			s.SequentialDecided++
		}
		if c.Backend.Decided() {
			s.BackendDecided++
		}
		s.SequentialTotal += c.Sequential.Time
		s.BackendTotal += c.Backend.Time
	}
	return s
}
