package bench

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/prenex"
	"repro/internal/qbf"
)

func mkClause(ls ...int) qbf.Clause {
	c := make(qbf.Clause, len(ls))
	for i, l := range ls {
		c[i] = qbf.Lit(l)
	}
	return c
}

// hardTree builds a purely existential instance (FALSE, ~6 decisions with
// pure literals disabled): a pigeonhole-flavored matrix that cannot be
// decided by propagation alone, so node-limit stops are deterministic.
func hardTree() *qbf.QBF {
	p := qbf.NewPrenexPrefix(12, qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}})
	var m []qbf.Clause
	m = append(m,
		mkClause(1, 2, 3), mkClause(4, 5, 6), mkClause(7, 8, 9), mkClause(10, 11, 12),
		mkClause(-1, -4), mkClause(-1, -7), mkClause(-1, -10), mkClause(-4, -7),
		mkClause(-4, -10), mkClause(-7, -10), mkClause(-2, -5), mkClause(-2, -8),
		mkClause(-2, -11), mkClause(-5, -8), mkClause(-5, -11), mkClause(-8, -11),
		mkClause(-3, -6), mkClause(-3, -9), mkClause(-3, -12), mkClause(-6, -9),
		mkClause(-6, -12), mkClause(-9, -12))
	return qbf.New(p, m)
}

func easyTree() *qbf.QBF {
	p := qbf.NewPrefix(2)
	r := p.AddBlock(nil, qbf.Exists, 1)
	p.AddBlock(r, qbf.Exists, 2)
	return qbf.New(p, []qbf.Clause{{1}, {-1, 2}})
}

// TestRunSuitePanicContainment: one instance whose solve panics (nil tree
// makes NewSolver dereference nothing) must not take the campaign down —
// the other instances still run and the failure is reported with a stack.
func TestRunSuitePanicContainment(t *testing.T) {
	insts := []Instance{
		MakeInstance("ok-0", easyTree(), prenex.EUpAUp),
		{Name: "boom", Tree: nil},
		MakeInstance("ok-1", easyTree(), prenex.EUpAUp),
	}
	results := RunSuite(context.Background(), insts, Config{Timeout: 2 * time.Second, Workers: 2})
	if len(results) != 3 {
		t.Fatalf("results %d, want 3", len(results))
	}
	for _, i := range []int{0, 2} {
		if !results[i].PO.Decided() || results[i].Failure() != nil {
			t.Errorf("%s: survivors must decide cleanly: %+v", results[i].Name, results[i].PO)
		}
	}
	boom := results[1]
	if boom.Failure() == nil {
		t.Fatal("panicking instance reported no failure")
	}
	var pe *core.PanicError
	if !errors.As(boom.Failure(), &pe) {
		t.Fatalf("failure is %T, want *core.PanicError: %v", boom.Failure(), boom.Failure())
	}
	if len(pe.Stack) == 0 {
		t.Error("contained panic lost its stack trace")
	}
	if boom.PO.Result != core.Unknown || boom.PO.Stop != core.StopPanicked {
		t.Errorf("panicked outcome = %v/%v, want UNKNOWN/panicked", boom.PO.Result, boom.PO.Stop)
	}
	errored := Errored(results)
	if len(errored) != 1 || errored[0].Name != "boom" {
		t.Errorf("Errored = %d entries, want exactly the panicking instance", len(errored))
	}
}

// TestRetryEscalation: a node-limit stop under a retry policy must come
// back decided, with Attempts counting every try. NodeLimit=1 cannot solve
// the hard instance; one ×8 escalation can (6 decisions suffice).
func TestRetryEscalation(t *testing.T) {
	inst := Instance{Name: "hard", Tree: hardTree()}
	cfg := Config{
		Timeout:       5 * time.Second,
		NodeLimit:     1,
		Retry:         RetryPolicy{Attempts: 5, Growth: 8},
		SolverOptions: core.Options{DisablePureLiterals: true},
	}
	res := RunInstance(context.Background(), inst, cfg)
	if res.PO.Result != core.False {
		t.Fatalf("result %v (stop %v), want FALSE after escalation", res.PO.Result, res.PO.Stop)
	}
	if res.PO.Attempts < 2 {
		t.Errorf("Attempts = %d, want >= 2 (first try must hit NodeLimit=1)", res.PO.Attempts)
	}
	if res.PO.Stop != core.StopNone {
		t.Errorf("decided outcome carries stop reason %v", res.PO.Stop)
	}
}

// TestNodeLimitStopIsNotTimeout guards satellite #2: a node-limit stop used
// to be reported as a timeout in the paper tables. It must not be.
func TestNodeLimitStopIsNotTimeout(t *testing.T) {
	o := RunOne(context.Background(), hardTree(), core.Options{NodeLimit: 1, DisablePureLiterals: true})
	if o.Result != core.Unknown {
		t.Fatalf("result %v, want UNKNOWN under NodeLimit=1", o.Result)
	}
	if o.Stop != core.StopNodeLimit {
		t.Errorf("stop %v, want node-limit", o.Stop)
	}
	if o.Timeout {
		t.Error("node-limit stop reported as timeout")
	}
	if o.Err != nil {
		t.Errorf("clean limit stop recorded an error: %v", o.Err)
	}
}

// TestCancelledArgumentContext: a campaign whose context is already
// cancelled winds down immediately — every outcome is UNKNOWN/cancelled,
// never retried, and no instance errors. The context rides in as the
// leading argument, the only channel since the deprecated Config.Context
// field was removed.
func TestCancelledArgumentContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	insts := []Instance{
		MakeInstance("a", easyTree(), prenex.EUpAUp),
		MakeInstance("b", hardTree(), prenex.EUpAUp),
	}
	results := RunSuite(ctx, insts, Config{
		Timeout: 2 * time.Second,
		Retry:   RetryPolicy{Attempts: 3},
	})
	for _, r := range results {
		if r.Failure() != nil {
			t.Errorf("%s: cancellation is not a failure: %v", r.Name, r.Failure())
		}
		outs := []Outcome{r.PO}
		for _, o := range r.TO {
			outs = append(outs, o)
		}
		for _, o := range outs {
			if o.Result != core.Unknown || o.Stop != core.StopCancelled {
				t.Errorf("%s: outcome %v/%v, want UNKNOWN/cancelled", r.Name, o.Result, o.Stop)
			}
			if o.Timeout {
				t.Errorf("%s: cancellation reported as timeout", r.Name)
			}
			if o.Attempts != 1 {
				t.Errorf("%s: cancelled solve retried (%d attempts)", r.Name, o.Attempts)
			}
		}
	}
}
