package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func TestRenderScatter(t *testing.T) {
	pts := []ScatterPoint{
		{Name: "a", X: time.Millisecond, Y: 100 * time.Millisecond},
		{Name: "b", X: 50 * time.Millisecond, Y: 2 * time.Millisecond},
		{Name: "c", X: 2 * time.Second, Y: 2 * time.Second, XTimeout: true, YTimeout: true},
	}
	var sb strings.Builder
	RenderScatter(&sb, pts, "test")
	out := sb.String()
	if !strings.Contains(out, "test") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "x") {
		t.Error("point markers missing")
	}
	if lines := strings.Count(out, "\n"); lines < 20 {
		t.Errorf("plot has %d lines, want a full grid", lines)
	}
	var empty strings.Builder
	RenderScatter(&empty, nil, "empty")
	if !strings.Contains(empty.String(), "no points") {
		t.Error("empty input must be reported")
	}
}

func TestRenderScaling(t *testing.T) {
	series := map[string][]ScalingPoint{
		"PO": {
			{Model: "counter2", N: 0, Time: time.Millisecond, Result: core.True},
			{Model: "counter2", N: 1, Time: 10 * time.Millisecond, Result: core.True},
			{Model: "counter2", N: 2, Time: 100 * time.Millisecond, Result: core.False},
		},
		"TO": {
			{Model: "counter2", N: 0, Time: 2 * time.Millisecond, Result: core.True},
			{Model: "counter2", N: 1, Time: 40 * time.Millisecond, Result: core.True},
			{Model: "counter2", N: 2, Time: time.Second, Result: core.Unknown, Timeout: true},
		},
	}
	var sb strings.Builder
	RenderScaling(&sb, series, "fig6")
	out := sb.String()
	for _, want := range []string{"fig6", "^", "s", "x"} {
		if !strings.Contains(out, want) {
			t.Errorf("scaling plot missing %q:\n%s", want, out)
		}
	}
	var empty strings.Builder
	RenderScaling(&empty, nil, "none")
	if !strings.Contains(empty.String(), "no data") {
		t.Error("empty series must be reported")
	}
}
