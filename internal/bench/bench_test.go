package bench

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dia"
	"repro/internal/models"
	"repro/internal/prenex"
	"repro/internal/qbf"
)

func smokeConfig() Config {
	return Config{Timeout: 2 * time.Second, Workers: 4}
}

func TestRunInstanceAgreement(t *testing.T) {
	p := qbf.NewPrefix(5)
	r := p.AddBlock(nil, qbf.Exists, 1)
	b2 := p.AddBlock(r, qbf.Forall, 2)
	p.AddBlock(b2, qbf.Exists, 3)
	b4 := p.AddBlock(r, qbf.Forall, 4)
	p.AddBlock(b4, qbf.Exists, 5)
	tree := qbf.New(p, []qbf.Clause{{1}, {2, -3}, {-2, 3}, {4, -5}, {-4, 5}})
	inst := MakeInstance("toy", tree, prenex.Strategies...)
	res := RunInstance(context.Background(), inst, smokeConfig())
	if res.PO.Result != core.True {
		t.Fatalf("PO result %v, want TRUE", res.PO.Result)
	}
	if len(res.TO) != 4 {
		t.Fatalf("want 4 TO outcomes, got %d", len(res.TO))
	}
	for s, o := range res.TO {
		if o.Result != core.True {
			t.Errorf("TO %v result %v", s, o.Result)
		}
	}
}

func TestAggregateColumns(t *testing.T) {
	mk := func(po, to time.Duration, poOut, toOut bool) RunResult {
		outcome := func(d time.Duration, out bool) Outcome {
			if out {
				return Outcome{Time: d, Result: core.Unknown, Stop: core.StopTimeout, Timeout: true}
			}
			return Outcome{Time: d, Result: core.True}
		}
		return RunResult{
			Name: "x",
			PO:   outcome(po, poOut),
			TO: map[prenex.Strategy]Outcome{
				prenex.EUpAUp: outcome(to, toOut),
			},
		}
	}
	results := []RunResult{
		mk(10*time.Millisecond, 500*time.Millisecond, false, false), // > and >10x
		mk(500*time.Millisecond, 10*time.Millisecond, false, false), // < and 10x<
		mk(10*time.Millisecond, 11*time.Millisecond, false, false),  // =
		mk(10*time.Millisecond, 2*time.Second, false, true),         // TO timeout
		mk(2*time.Second, 10*time.Millisecond, true, false),         // PO timeout
		mk(2*time.Second, 2*time.Second, true, true),                // both
	}
	row := Aggregate("t", results, prenex.EUpAUp, 100*time.Millisecond)
	if row.Total != 6 {
		t.Fatalf("total %d", row.Total)
	}
	if row.Faster != 2 || row.Slower != 2 || row.Equal != 2 {
		t.Errorf(">/</= = %d/%d/%d, want 2/2/2", row.Faster, row.Slower, row.Equal)
	}
	if row.TOOnly != 1 || row.POOnly != 1 || row.BothOut != 1 {
		t.Errorf("timeout cols %d/%d/%d, want 1/1/1", row.TOOnly, row.POOnly, row.BothOut)
	}
	if row.TO10x != 1 || row.PO10x != 1 {
		t.Errorf("10x cols %d/%d, want 1/1", row.TO10x, row.PO10x)
	}
	var sb strings.Builder
	WriteTable(&sb, []TableRow{row})
	if !strings.Contains(sb.String(), "t ") {
		t.Error("WriteTable lost the suite name")
	}
}

func TestTOBest(t *testing.T) {
	r := RunResult{TO: map[prenex.Strategy]Outcome{
		prenex.EUpAUp:     {Time: 100 * time.Millisecond},
		prenex.EDownAUp:   {Time: 10 * time.Millisecond},
		prenex.EUpADown:   {Time: time.Second, Timeout: true},
		prenex.EDownADown: {Time: 50 * time.Millisecond},
	}}
	if got := r.TOBest().Time; got != 10*time.Millisecond {
		t.Errorf("TOBest = %v, want 10ms", got)
	}
}

func TestScatterAndCSV(t *testing.T) {
	results := []RunResult{
		{
			Name: "cell-a-s0",
			PO:   Outcome{Time: 10 * time.Millisecond},
			TO:   map[prenex.Strategy]Outcome{prenex.EUpAUp: {Time: 30 * time.Millisecond}},
		},
		{
			Name: "cell-a-s1",
			PO:   Outcome{Time: 20 * time.Millisecond},
			TO:   map[prenex.Strategy]Outcome{prenex.EUpAUp: {Time: 40 * time.Millisecond}},
		},
		{
			Name: "cell-b-s0",
			PO:   Outcome{Time: 50 * time.Millisecond},
			TO:   map[prenex.Strategy]Outcome{prenex.EUpAUp: {Time: 5 * time.Millisecond}},
		},
	}
	pts := Scatter(results, prenex.EUpAUp, false)
	if len(pts) != 3 {
		t.Fatalf("scatter points %d", len(pts))
	}
	above, below, _ := ScatterSummary(pts)
	if above != 2 || below != 1 {
		t.Errorf("summary %d above / %d below, want 2/1", above, below)
	}
	med := MedianScatter(results, prenex.EUpAUp, false)
	if len(med) != 2 {
		t.Fatalf("median scatter cells %d, want 2", len(med))
	}
	var sb strings.Builder
	WriteScatterCSV(&sb, pts)
	if lines := strings.Count(sb.String(), "\n"); lines != 4 {
		t.Errorf("CSV has %d lines, want 4", lines)
	}
}

func TestSuitesSmoke(t *testing.T) {
	s := ScaleSmoke
	if n := len(NCFSuite(s)); n != 60 {
		t.Errorf("smoke NCF suite %d instances, want 60 (one per cell)", n)
	}
	if n := len(FPVSuite(s)); n != 2*2*2*2*s.FPVSeeds {
		t.Errorf("smoke FPV suite %d instances, want %d", n, 2*2*2*2*s.FPVSeeds)
	}
	diaInsts := DIASuite(s)
	if len(diaInsts) == 0 {
		t.Fatal("empty DIA suite")
	}
	for _, inst := range diaInsts {
		if inst.Tree.Prefix.IsPrenex() {
			t.Errorf("%s: DIA tree must be non-prenex", inst.Name)
		}
	}
	prob := EvalSuite(s, false)
	if len(prob) == 0 {
		t.Error("prob suite empty after miniscope filter")
	}
	// Fixed suite may legitimately filter down to few, but not zero with
	// the default generator mix.
	if len(EvalSuite(s, true)) == 0 {
		t.Error("fixed suite empty after miniscope filter")
	}
}

func TestRunSuiteParallelAndAggregate(t *testing.T) {
	s := ScaleSmoke
	insts := NCFSuite(s)[:8]
	results := RunSuite(context.Background(), insts, smokeConfig())
	if len(results) != 8 {
		t.Fatalf("results %d", len(results))
	}
	for i, r := range results {
		if r.Name != insts[i].Name {
			t.Errorf("result %d order broken: %s vs %s", i, r.Name, insts[i].Name)
		}
		if r.PO.Result == core.Unknown && !r.PO.Timeout {
			t.Errorf("%s: unknown without timeout", r.Name)
		}
	}
	row := Aggregate("ncf", results, prenex.EUpAUp, s.Margin())
	if row.Total != 8 {
		t.Errorf("aggregated %d, want 8", row.Total)
	}
}

func TestScalingSeries(t *testing.T) {
	m := models.Counter(2)
	pts := ScalingSeries(m, 4, dia.SolverPO(context.Background(), core.Options{TimeLimit: 2 * time.Second}))
	if len(pts) != 4 { // φ0..φ3, stops at the first false
		t.Fatalf("scaling points %d, want 4", len(pts))
	}
	if pts[3].Result != core.False {
		t.Errorf("φ3 should be false for counter2 (d=3): %v", pts[3].Result)
	}
	var sb strings.Builder
	WriteScalingCSV(&sb, map[string][]ScalingPoint{"PO": pts})
	if !strings.Contains(sb.String(), "counter2,PO,3") {
		t.Errorf("CSV missing series row:\n%s", sb.String())
	}
}
