package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/dia"
	"repro/internal/fpv"
	"repro/internal/models"
	"repro/internal/ncf"
	"repro/internal/prenex"
	"repro/internal/qbf"
	"repro/internal/randqbf"
)

// Scale selects how much of each paper experiment a run regenerates. The
// paper's sizes (DEP=6, 100 instances/cell, 600 s budgets on a PIV farm)
// are out of proportion for a single-machine regression run, so every
// suite takes a scale knob; ScaleFull approaches the paper's dimensions.
type Scale struct {
	// NCFDep is the nesting depth (paper: 6).
	NCFDep int
	// PerCell is the number of instances per NCF parameter setting
	// (paper: 100).
	PerCell int
	// FPVSeeds is the seeds per FPV parameter setting.
	FPVSeeds int
	// EvalSeeds is the seeds per PROB setting and the FIXED suite size.
	EvalSeeds int
	// DIAMaxBits caps the counter size; other families scale alongside.
	DIAMaxBits int
	// Timeout is the per-solve budget.
	Timeout time.Duration
}

// ScaleSmoke is a seconds-scale run for tests and CI.
var ScaleSmoke = Scale{
	NCFDep: 3, PerCell: 1, FPVSeeds: 1, EvalSeeds: 2, DIAMaxBits: 2,
	Timeout: 2 * time.Second,
}

// ScaleDefault is the minutes-scale run EXPERIMENTS.md reports.
var ScaleDefault = Scale{
	NCFDep: 5, PerCell: 3, FPVSeeds: 3, EvalSeeds: 4, DIAMaxBits: 3,
	Timeout: 5 * time.Second,
}

// ScaleFull approaches the paper's dimensions (hours of CPU).
var ScaleFull = Scale{
	NCFDep: 6, PerCell: 10, FPVSeeds: 8, EvalSeeds: 10, DIAMaxBits: 4,
	Timeout: 30 * time.Second,
}

// Margin returns the scaled "=±1s" margin: 1 s of a 600 s budget.
func (s Scale) Margin() time.Duration {
	m := s.Timeout / 600
	if m < time.Millisecond {
		m = time.Millisecond
	}
	return m
}

// NCFSuite builds the Section VII.A suite: the paper's grid at the scale's
// depth, each tree instance paired with all four prenex strategies.
func NCFSuite(s Scale) []Instance {
	var out []Instance
	for _, cell := range ncf.Grid(s.NCFDep, s.PerCell) {
		for k := 0; k < cell.Instances; k++ {
			p := cell.Params
			p.Seed = int64(k)
			tree := ncf.Generate(p)
			out = append(out, MakeInstance(p.String(), tree, prenex.Strategies...))
		}
	}
	return out
}

// FPVSuite builds the Section VII.B suite with the ∃↑∀↑ strategy only, as
// the paper does from the FPV experiments onward.
func FPVSuite(s Scale) []Instance {
	var out []Instance
	for _, p := range fpv.Suite(s.FPVSeeds) {
		out = append(out, MakeInstance(p.String(), fpv.Generate(p), prenex.EUpAUp))
	}
	return out
}

// DIAModels returns the model instances of the Section VII.C suite at the
// given scale.
func DIAModels(s Scale) []*models.Model {
	var out []*models.Model
	for n := 2; n <= s.DIAMaxBits; n++ {
		out = append(out, models.Counter(n))
	}
	for n := 3; n <= s.DIAMaxBits+2; n++ {
		out = append(out, models.Ring(n))
	}
	for n := 1; n <= 2*s.DIAMaxBits+1; n += 2 {
		out = append(out, models.Semaphore(n))
	}
	for n := 2; n <= s.DIAMaxBits+2; n++ {
		out = append(out, models.DME(n))
	}
	return out
}

// DIASuite builds one instance per (model, n) pair: the φn needed to
// bracket each model's diameter, plus one beyond it.
func DIASuite(s Scale) []Instance {
	var out []Instance
	for _, m := range DIAModels(s) {
		maxN := m.KnownDiameter
		if maxN < 0 {
			d, err := models.ExplicitDiameter(m, 14)
			if err != nil {
				continue
			}
			maxN = d
		}
		for n := 0; n <= maxN; n++ {
			tree := dia.Phi(m, n)
			out = append(out, MakeInstance(fmt.Sprintf("%s-phi%d", m.Name, n), tree, prenex.EUpAUp))
		}
	}
	return out
}

// EvalSuite builds the Section VII.D suites from QBFEVAL-style instances:
// prenex originals are miniscoped and kept when the PO/TO share passes the
// footnote-9 threshold; PO then solves the tree and TO the original.
func EvalSuite(s Scale, fixed bool) []Instance {
	var out []Instance
	if fixed {
		for i, q := range randqbf.FixedSuite(s.EvalSeeds * 4) {
			tree, _, keep := randqbf.MiniscopeFilter(q, 0.2)
			if !keep {
				continue
			}
			inst := Instance{
				Name:   fmt.Sprintf("fixed-%d", i),
				Tree:   tree,
				Prenex: map[prenex.Strategy]*qbf.QBF{prenex.EUpAUp: q},
			}
			out = append(out, inst)
		}
		return out
	}
	for _, p := range randqbf.ProbSuite(s.EvalSeeds) {
		q := randqbf.Prob(p)
		tree, _, keep := randqbf.MiniscopeFilter(q, 0.2)
		if !keep {
			continue
		}
		out = append(out, Instance{
			Name:   p.String(),
			Tree:   tree,
			Prenex: map[prenex.Strategy]*qbf.QBF{prenex.EUpAUp: q},
		})
	}
	return out
}

// ScalingPoint is one bullet of Figure 6: the CPU time to decide φn.
type ScalingPoint struct {
	Model   string
	N       int
	Time    time.Duration
	Result  core.Verdict
	Timeout bool
}

// ScalingSeries reproduces one line of Figure 6: it runs the diameter
// computation for a model and reports per-step times. Solver is "PO" or a
// strategy-driven TO via the dia helpers.
func ScalingSeries(m *models.Model, maxN int, solve dia.SolveFunc) []ScalingPoint {
	res := dia.ComputeDiameter(m, maxN, solve)
	out := make([]ScalingPoint, 0, len(res.Steps))
	for _, st := range res.Steps {
		out = append(out, ScalingPoint{
			Model:   m.Name,
			N:       st.N,
			Time:    st.Stats.Time,
			Result:  st.Result,
			Timeout: st.Result == core.Unknown,
		})
	}
	return out
}

// WriteScalingCSV emits Figure 6 series data.
func WriteScalingCSV(w io.Writer, series map[string][]ScalingPoint) {
	fmt.Fprintln(w, "model,solver,n,seconds,result")
	for key, pts := range series {
		for _, p := range pts {
			fmt.Fprintf(w, "%s,%s,%d,%.6f,%s\n", p.Model, key, p.N, p.Time.Seconds(), p.Result)
		}
	}
}
