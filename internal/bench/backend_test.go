package bench

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/portfolio"
	"repro/internal/prenex"
	"repro/internal/qbf"
	"repro/internal/randqbf"
)

func compareInstances(n int) []Instance {
	insts := make([]Instance, n)
	for i := range insts {
		q := randqbf.Fixed(int64(i))
		tree, _, _ := randqbf.MiniscopeFilter(q, 0)
		insts[i] = MakeInstance(fmt.Sprintf("fixed-%d", i), tree, prenex.EUpAUp)
	}
	return insts
}

// TestCompareBackendsSequentialSelf: comparing the sequential backend
// against itself must show zero disagreements and identical verdicts.
func TestCompareBackendsSequentialSelf(t *testing.T) {
	insts := compareInstances(4)
	cs := CompareBackends(context.Background(), insts, Config{Timeout: 5 * time.Second}, SequentialBackend)
	sum := Summarize(cs)
	if sum.Disagreements != 0 {
		t.Fatalf("sequential self-comparison disagrees: %+v", sum)
	}
	if sum.Instances != 4 || sum.SequentialDecided != sum.BackendDecided {
		t.Fatalf("summary off: %+v", sum)
	}
	for _, c := range cs {
		if c.Sequential.Result != c.Backend.Result {
			t.Fatalf("%s: %v vs %v", c.Name, c.Sequential.Result, c.Backend.Result)
		}
	}
}

// TestCompareBackendsPortfolio runs the portfolio backend (deterministic,
// 4 workers, sharing on) against the sequential engine: zero disagreements
// and all instances decided.
func TestCompareBackendsPortfolio(t *testing.T) {
	insts := compareInstances(6)
	backend := portfolio.BackendFunc(portfolio.Options{
		Workers: 4, Share: true, Deterministic: true,
	})
	cs := CompareBackends(context.Background(), insts, Config{Timeout: 10 * time.Second}, backend)
	sum := Summarize(cs)
	if sum.Disagreements != 0 {
		for _, c := range cs {
			if c.Disagree {
				t.Errorf("%s: sequential %v, portfolio %v", c.Name, c.Sequential.Result, c.Backend.Result)
			}
		}
		t.Fatalf("portfolio disagreements: %+v", sum)
	}
	if sum.BackendDecided != sum.Instances {
		t.Fatalf("portfolio left %d/%d instances undecided", sum.Instances-sum.BackendDecided, sum.Instances)
	}
}

// TestRunOneBackendLimits checks that backend outcomes carry stop reasons
// through the Outcome mapping (node limit → not a timeout).
func TestRunOneBackendLimits(t *testing.T) {
	q := randqbf.Prob(randqbf.ProbParams{
		Blocks: 3, BlockSize: 24, Clauses: 504, Length: 5, MaxUniversal: 1, Seed: 2,
	})
	o := RunOneBackend(context.Background(), q, core.Options{Mode: core.ModePartialOrder, NodeLimit: 10}, SequentialBackend)
	if o.Decided() {
		t.Skip("instance solved within 10 decisions")
	}
	if o.Stop != core.StopNodeLimit || o.Timeout {
		t.Fatalf("outcome %+v: want StopNodeLimit and Timeout=false", o)
	}
	b := portfolio.BackendFunc(portfolio.Options{Workers: 2, Deterministic: true})
	o = RunOneBackend(context.Background(), q, core.Options{Mode: core.ModePartialOrder, NodeLimit: 10}, b)
	if o.Decided() {
		t.Skip("portfolio solved within 10 decisions per worker")
	}
	if o.Stop != core.StopNodeLimit || o.Timeout {
		t.Fatalf("portfolio outcome %+v: want StopNodeLimit and Timeout=false", o)
	}
}

// TestRunWithRetryBackend: a node-limited stub that succeeds only at a
// raised budget must be retried to a verdict.
func TestRunWithRetryBackend(t *testing.T) {
	calls := 0
	stub := func(ctx context.Context, q *qbf.QBF, opt core.Options) (core.Result, error) {
		calls++
		if opt.NodeLimit < 40 {
			return core.Result{Verdict: core.Unknown, Stats: core.Stats{StopReason: core.StopNodeLimit}}, nil
		}
		return core.Result{Verdict: core.True}, nil
	}
	q := randqbf.Fixed(0)
	o := runWithRetryBackend(context.Background(), q,
		core.Options{NodeLimit: 10}, RetryPolicy{Attempts: 3}, stub)
	if !o.Decided() || o.Attempts != 3 || calls != 3 {
		t.Fatalf("retry escalation broken: outcome %+v after %d calls", o, calls)
	}
}
