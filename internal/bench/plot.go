package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// RenderScatter draws a log-log ASCII scatter in the layout of the paper's
// Figures 3–5 and 7: QUBE(PO) time on the x axis, QUBE(TO) time on the y
// axis, the diagonal as reference. Points above the diagonal are instances
// where PO is faster. Timeouts sit on the top/right edges.
func RenderScatter(w io.Writer, points []ScatterPoint, title string) {
	const width, height = 64, 24
	if len(points) == 0 {
		fmt.Fprintf(w, "%s: no points\n", title)
		return
	}

	minT, maxT := math.MaxFloat64, 0.0
	for _, p := range points {
		for _, d := range []time.Duration{p.X, p.Y} {
			s := clampSeconds(d)
			if s < minT {
				minT = s
			}
			if s > maxT {
				maxT = s
			}
		}
	}
	if minT == maxT {
		maxT = minT * 10
	}
	logMin, logMax := math.Log10(minT), math.Log10(maxT)
	span := logMax - logMin

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	// Diagonal.
	for c := 0; c < width; c++ {
		r := height - 1 - c*height/width
		if r >= 0 && r < height {
			grid[r][c] = '.'
		}
	}
	cell := func(d time.Duration, max int) int {
		s := clampSeconds(d)
		f := (math.Log10(s) - logMin) / span
		i := int(f * float64(max-1))
		if i < 0 {
			i = 0
		}
		if i >= max {
			i = max - 1
		}
		return i
	}
	for _, p := range points {
		c := cell(p.X, width)
		r := height - 1 - cell(p.Y, height)
		ch := byte('o')
		if p.XTimeout || p.YTimeout {
			ch = 'x'
		}
		grid[r][c] = ch
	}

	fmt.Fprintf(w, "%s  (x: PO seconds, y: TO seconds, log-log; o solved, x timeout; above diagonal = PO wins)\n", title)
	fmt.Fprintf(w, "%8.3g ┤%s\n", maxT, string(grid[0]))
	for r := 1; r < height-1; r++ {
		fmt.Fprintf(w, "%8s │%s\n", "", string(grid[r]))
	}
	fmt.Fprintf(w, "%8.3g ┤%s\n", minT, string(grid[height-1]))
	fmt.Fprintf(w, "%8s  %-8.3g%s%8.3g\n", "", minT, strings.Repeat(" ", width-16), maxT)
}

func clampSeconds(d time.Duration) float64 {
	s := d.Seconds()
	if s < 1e-6 {
		return 1e-6
	}
	return s
}

// RenderScaling draws the Figure 6 layout: tested length on the x axis,
// log CPU seconds on the y axis, one letter per solver series.
func RenderScaling(w io.Writer, series map[string][]ScalingPoint, title string) {
	const height = 20
	maxN := 0
	minT, maxT := math.MaxFloat64, 0.0
	type key struct {
		model, solver string
	}
	groups := map[key][]ScalingPoint{}
	for solver, pts := range series {
		for _, p := range pts {
			groups[key{p.Model, solver}] = append(groups[key{p.Model, solver}], p)
			if p.N > maxN {
				maxN = p.N
			}
			s := clampSeconds(p.Time)
			if s < minT {
				minT = s
			}
			if s > maxT {
				maxT = s
			}
		}
	}
	if len(groups) == 0 {
		fmt.Fprintf(w, "%s: no data\n", title)
		return
	}
	if minT == maxT {
		maxT = minT * 10
	}
	logMin, logMax := math.Log10(minT), math.Log10(maxT)
	width := maxN + 2
	if width < 16 {
		width = 16
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	mark := func(solver string) byte {
		if strings.Contains(solver, "TO") {
			return 's' // squares in the paper
		}
		return '^' // triangles in the paper
	}
	var keys []key
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].model != keys[j].model {
			return keys[i].model < keys[j].model
		}
		return keys[i].solver < keys[j].solver
	})
	for _, k := range keys {
		for _, p := range groups[k] {
			f := (math.Log10(clampSeconds(p.Time)) - logMin) / (logMax - logMin)
			r := height - 1 - int(f*float64(height-1))
			if r < 0 {
				r = 0
			}
			if r >= height {
				r = height - 1
			}
			c := p.N * (width - 1) / max(maxN, 1)
			ch := mark(k.solver)
			if p.Timeout {
				ch = 'x'
			}
			grid[r][c] = ch
		}
	}
	fmt.Fprintf(w, "%s  (x: tested length n, y: CPU seconds log scale; ^ PO, s TO, x timeout)\n", title)
	fmt.Fprintf(w, "%8.3g ┤%s\n", maxT, string(grid[0]))
	for r := 1; r < height-1; r++ {
		fmt.Fprintf(w, "%8s │%s\n", "", string(grid[r]))
	}
	fmt.Fprintf(w, "%8.3g ┤%s\n", minT, string(grid[height-1]))
	fmt.Fprintf(w, "%8s  0%s%d\n", "", strings.Repeat(" ", width-3), maxN)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
