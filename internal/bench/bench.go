// Package bench is the experimental-analysis harness of Section VII: it
// runs QUBE(PO) on non-prenex instances against QUBE(TO) on their prenex
// conversions, under a per-instance budget, and aggregates the outcomes
// into the paper's Table I columns, the scatter plots of Figures 3, 4, 5
// and 7, and the scaling series of Figure 6.
package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/prenex"
	"repro/internal/qbf"
)

// Instance is one benchmark formula in both forms.
type Instance struct {
	// Name identifies the instance in reports.
	Name string
	// Tree is the non-prenex form solved by QUBE(PO).
	Tree *qbf.QBF
	// Prenex holds the total-order forms solved by QUBE(TO), one per
	// strategy. Suites that only exercise ∃↑∀↑ populate a single entry.
	Prenex map[prenex.Strategy]*qbf.QBF
}

// MakeInstance derives the prenex forms of a tree instance.
func MakeInstance(name string, tree *qbf.QBF, strategies ...prenex.Strategy) Instance {
	inst := Instance{Name: name, Tree: tree, Prenex: map[prenex.Strategy]*qbf.QBF{}}
	for _, s := range strategies {
		inst.Prenex[s] = prenex.Apply(tree, s)
	}
	return inst
}

// Outcome is one solver run on one instance. The field is named Result
// for historical reasons but carries the verdict only; Stats holds the
// rest of the unified core.Result.
type Outcome struct {
	Result core.Verdict
	// Stop explains an Unknown verdict (core.StopNone on decided runs).
	Stop core.StopReason
	// Timeout reports specifically a time-budget stop. It is derived from
	// Stop — node-limit, memory-limit, cancellation, and panic stops are
	// NOT timeouts and must not be reported as such in the paper tables.
	Timeout bool
	Time    time.Duration
	Stats   core.Stats
	// Attempts is the number of solve attempts made (> 1 when the retry
	// policy escalated budgets after a limit stop; 0 only in zero-value
	// outcomes from hand-built fixtures).
	Attempts int
	// Err carries a contained failure: a solver panic (core.PanicError)
	// or a construction error. The instance counts as undecided.
	Err error
}

// Decided reports whether the run produced a definite True/False verdict.
// Everything else — limit stops, cancellations, contained crashes — is
// "out of budget" for aggregation purposes.
func (o Outcome) Decided() bool {
	return o.Err == nil && o.Result != core.Unknown
}

// RunResult pairs the PO outcome with the TO outcomes per strategy.
type RunResult struct {
	Name string
	PO   Outcome
	TO   map[prenex.Strategy]Outcome
	// Err records an instance-level failure: a panic that escaped the
	// per-solve containment (e.g. in prenexing or instance setup) or a
	// PO/TO answer disagreement. The per-solve outcomes stay readable.
	Err error
}

// TOBest returns the best (fastest decided) TO outcome — the ideal solver
// QUBE(TO)* of Figure 3 — over the strategies present.
func (r RunResult) TOBest() Outcome {
	var best Outcome
	first := true
	for _, o := range r.TO {
		switch {
		case first:
			best, first = o, false
		case o.Decided() && !best.Decided():
			best = o
		case o.Decided() == best.Decided() && o.Time < best.Time:
			best = o
		}
	}
	return best
}

// RetryPolicy escalates budgets for limit-stopped solves: a run stopped by
// a time, node, or memory limit is retried with every configured budget
// multiplied by Growth, up to Attempts extra tries. Cancelled and crashed
// runs are never retried.
type RetryPolicy struct {
	// Attempts is the maximum number of extra attempts (0 = no retry).
	Attempts int
	// Growth multiplies each budget per attempt; values ≤ 1 mean 2.
	Growth float64
}

// Config controls a suite run.
type Config struct {
	// Timeout is the per-solve budget (the paper's 600 s, scaled).
	Timeout time.Duration
	// NodeLimit optionally bounds decisions per solve (0 = none).
	NodeLimit int64
	// MemLimit optionally bounds learned-constraint bytes per solve.
	MemLimit int64
	// Workers is the parallelism across instances; 0 means 1.
	Workers int
	// Retry escalates budgets after limit stops (zero value: no retry).
	Retry RetryPolicy
	// SolverOptions are the shared engine options (learning toggles etc.).
	SolverOptions core.Options
}

func (c Config) options(mode core.Mode) core.Options {
	opt := c.SolverOptions
	opt.Mode = mode
	opt.TimeLimit = c.Timeout
	opt.NodeLimit = c.NodeLimit
	opt.MemLimit = c.MemLimit
	return opt
}

// contextOr normalizes a nil campaign context to Background, preserving
// the documented "nil means Background" contract of the Run entry points
// (runWithRetry consults ctx.Err, so nil cannot flow further down).
func contextOr(ctx context.Context) context.Context {
	if ctx != nil {
		return ctx
	}
	return context.Background() //lint:allow L8 nil-context normalization at the API edge
}

// RunOne solves a single formula under ctx and the budget with panic
// containment: a solver panic is contained by core.SafeSolve and recorded
// in Outcome.Err, and the campaign keeps running. A nil ctx means
// context.Background().
func RunOne(ctx context.Context, q *qbf.QBF, opt core.Options) Outcome {
	start := time.Now()
	r, err := core.SafeSolve(ctx, q, opt)
	return Outcome{
		Result:   r.Verdict,
		Stop:     r.Stats.StopReason,
		Timeout:  r.Stats.StopReason == core.StopTimeout,
		Time:     time.Since(start),
		Stats:    r.Stats,
		Attempts: 1,
		Err:      err,
	}
}

// retryable reports whether an outcome is a limit stop worth escalating.
func retryable(o Outcome) bool {
	if o.Err != nil || o.Result != core.Unknown {
		return false
	}
	switch o.Stop {
	case core.StopTimeout, core.StopNodeLimit, core.StopMemLimit:
		return true
	}
	return false
}

// runWithRetry applies the retry policy around RunOne: limit stops
// are retried with geometrically escalating budgets. The returned outcome
// is the final attempt's, with Attempts counting every try.
func runWithRetry(ctx context.Context, q *qbf.QBF, opt core.Options, pol RetryPolicy) Outcome {
	out := RunOne(ctx, q, opt)
	growth := pol.Growth
	if growth <= 1 {
		growth = 2
	}
	for a := 0; a < pol.Attempts && retryable(out) && ctx.Err() == nil; a++ {
		if opt.TimeLimit > 0 {
			opt.TimeLimit = time.Duration(float64(opt.TimeLimit) * growth)
		}
		if opt.NodeLimit > 0 {
			opt.NodeLimit = int64(float64(opt.NodeLimit) * growth)
		}
		if opt.MemLimit > 0 {
			opt.MemLimit = int64(float64(opt.MemLimit) * growth)
		}
		next := RunOne(ctx, q, opt)
		next.Attempts = out.Attempts + 1
		out = next
	}
	return out
}

// RunInstance runs PO on the tree and TO on every prenex form under ctx
// (nil means Background).
func RunInstance(ctx context.Context, inst Instance, cfg Config) RunResult {
	ctx = contextOr(ctx)
	out := RunResult{Name: inst.Name, TO: map[prenex.Strategy]Outcome{}}
	out.PO = runWithRetry(ctx, inst.Tree, cfg.options(core.ModePartialOrder), cfg.Retry)
	for s, q := range inst.Prenex {
		out.TO[s] = runWithRetry(ctx, q, cfg.options(core.ModeTotalOrder), cfg.Retry)
	}
	// Cross-check: all decided outcomes must agree. A disagreement is a
	// soundness bug, but in a governed campaign it is recorded as an
	// instance failure and reported with the results, not a process kill.
	want := out.PO.Result
	for s, o := range out.TO {
		if o.Decided() && out.PO.Decided() && o.Result != want {
			out.Err = fmt.Errorf("bench: %s: TO(%v)=%v but PO=%v", inst.Name, s, o.Result, want)
		}
	}
	return out
}

// RunSuite runs all instances under ctx, optionally in parallel,
// preserving order. Every worker is panic-contained: one crashing
// instance records an errored RunResult and the remaining instances still
// run.
func RunSuite(ctx context.Context, insts []Instance, cfg Config) []RunResult {
	ctx = contextOr(ctx)
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	out := make([]RunResult, len(insts))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range insts {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			defer func() {
				if p := recover(); p != nil {
					out[i] = RunResult{
						Name: insts[i].Name,
						Err:  fmt.Errorf("bench: %s: instance panicked: %v", insts[i].Name, p),
					}
				}
			}()
			out[i] = RunInstance(ctx, insts[i], cfg)
		}(i)
	}
	wg.Wait()
	return out
}

// Failure returns the first failure recorded for the instance: an
// instance-level error, then the PO solve error, then any TO solve error.
// It is nil for instances whose every solve ran to a clean stop.
func (r RunResult) Failure() error {
	if r.Err != nil {
		return r.Err
	}
	if r.PO.Err != nil {
		return r.PO.Err
	}
	for _, o := range r.TO {
		if o.Err != nil {
			return o.Err
		}
	}
	return nil
}

// Errored collects the failures of a suite run — contained panics (both
// per-solve and instance-level) and cross-check disagreements — in
// instance order, so a campaign report can list what crashed alongside
// the aggregate tables built from the surviving instances.
func Errored(results []RunResult) []RunResult {
	var out []RunResult
	for _, r := range results {
		if r.Failure() != nil {
			out = append(out, r)
		}
	}
	return out
}

// TableRow is one row of Table I.
type TableRow struct {
	Suite    string
	Strategy prenex.Strategy

	Faster  int // ">": TO slower than PO by more than the margin
	Slower  int // "<": TO faster than PO by more than the margin
	Equal   int // "=±1s" (scaled margin), including both-timeout
	TOOnly  int // "⊳": TO times out, PO does not
	POOnly  int // "⊲": PO times out, TO does not
	BothOut int // "⊳⊲": both time out
	TO10x   int // ">10×": both solve, TO ≥ 10× slower
	PO10x   int // "10×<": both solve, PO ≥ 10× slower
	Total   int
}

// Aggregate computes a Table I row for one strategy over suite results.
// The equality margin plays the paper's "within 1 s of a 600 s budget"
// role; pass timeout/600 for a faithfully scaled margin.
func Aggregate(suite string, results []RunResult, s prenex.Strategy, margin time.Duration) TableRow {
	row := TableRow{Suite: suite, Strategy: s}
	for _, r := range results {
		to, ok := r.TO[s]
		if !ok {
			continue
		}
		row.Total++
		po := r.PO
		switch {
		case !to.Decided() && !po.Decided():
			row.BothOut++
			row.Equal++ // the paper counts double timeouts under "="
		case !to.Decided():
			row.TOOnly++
			row.Faster++
		case !po.Decided():
			row.POOnly++
			row.Slower++
		default:
			d := to.Time - po.Time
			switch {
			case d > margin:
				row.Faster++
			case -d > margin:
				row.Slower++
			default:
				row.Equal++
			}
			if po.Time > 0 && to.Time >= 10*po.Time {
				row.TO10x++
			}
			if to.Time > 0 && po.Time >= 10*to.Time {
				row.PO10x++
			}
		}
	}
	return row
}

// WriteTable renders rows in the layout of Table I.
func WriteTable(w io.Writer, rows []TableRow) {
	fmt.Fprintf(w, "%-8s %-12s %5s %5s %7s %4s %4s %5s %6s %6s %6s\n",
		"Suite", "Strategy", ">", "<", "=±m", "TO⊳", "PO⊲", "⊳⊲", ">10x", "10x<", "total")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-12s %5d %5d %7d %4d %4d %5d %6d %6d %6d\n",
			r.Suite, r.Strategy, r.Faster, r.Slower, r.Equal,
			r.TOOnly, r.POOnly, r.BothOut, r.TO10x, r.PO10x, r.Total)
	}
}

// ScatterPoint is one bullet of Figures 3, 4, 5 and 7: PO time on the x
// axis, TO (or TO*) time on the y axis; timeouts are clamped to the
// budget. The XTimeout/YTimeout flags mark undecided runs of any kind
// (time/node/memory limit, cancellation, contained crash) — the "on the
// budget edge" bullets of the paper's plots.
type ScatterPoint struct {
	Name     string
	X, Y     time.Duration
	XTimeout bool
	YTimeout bool
}

// Scatter builds the per-instance scatter against one strategy, or against
// the ideal TO* when best is true.
func Scatter(results []RunResult, s prenex.Strategy, best bool) []ScatterPoint {
	var out []ScatterPoint
	for _, r := range results {
		to := r.TO[s]
		if best {
			to = r.TOBest()
		}
		out = append(out, ScatterPoint{
			Name:     r.Name,
			X:        r.PO.Time,
			Y:        to.Time,
			XTimeout: !r.PO.Decided(),
			YTimeout: !to.Decided(),
		})
	}
	return out
}

// MedianScatter groups results by the cell name prefix (everything before
// the last "-sN" seed suffix) and emits one point per cell with median
// times — the layout of Figure 3, where every bullet is one parameter
// setting.
func MedianScatter(results []RunResult, s prenex.Strategy, best bool) []ScatterPoint {
	groups := map[string][]RunResult{}
	for _, r := range results {
		key := cellKey(r.Name)
		groups[key] = append(groups[key], r)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []ScatterPoint
	for _, k := range keys {
		rs := groups[k]
		var xs, ys []time.Duration
		xOut, yOut := 0, 0
		for _, r := range rs {
			xs = append(xs, r.PO.Time)
			to := r.TO[s]
			if best {
				to = r.TOBest()
			}
			ys = append(ys, to.Time)
			if !r.PO.Decided() {
				xOut++
			}
			if !to.Decided() {
				yOut++
			}
		}
		out = append(out, ScatterPoint{
			Name:     k,
			X:        median(xs),
			Y:        median(ys),
			XTimeout: xOut > len(rs)/2,
			YTimeout: yOut > len(rs)/2,
		})
	}
	return out
}

func cellKey(name string) string {
	if i := strings.LastIndex(name, "-s"); i > 0 {
		return name[:i]
	}
	return name
}

func median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

// WriteScatterCSV emits a CSV with one row per point.
func WriteScatterCSV(w io.Writer, points []ScatterPoint) {
	fmt.Fprintln(w, "name,po_seconds,to_seconds,po_timeout,to_timeout")
	for _, p := range points {
		fmt.Fprintf(w, "%s,%.6f,%.6f,%v,%v\n",
			p.Name, p.X.Seconds(), p.Y.Seconds(), p.XTimeout, p.YTimeout)
	}
}

// ScatterSummary counts which side of the diagonal points fall on.
func ScatterSummary(points []ScatterPoint) (above, below, on int) {
	for _, p := range points {
		switch {
		case p.Y > p.X:
			above++
		case p.Y < p.X:
			below++
		default:
			on++
		}
	}
	return above, below, on
}
