// Package bench is the experimental-analysis harness of Section VII: it
// runs QUBE(PO) on non-prenex instances against QUBE(TO) on their prenex
// conversions, under a per-instance budget, and aggregates the outcomes
// into the paper's Table I columns, the scatter plots of Figures 3, 4, 5
// and 7, and the scaling series of Figure 6.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/invariant"
	"repro/internal/prenex"
	"repro/internal/qbf"
)

// Instance is one benchmark formula in both forms.
type Instance struct {
	// Name identifies the instance in reports.
	Name string
	// Tree is the non-prenex form solved by QUBE(PO).
	Tree *qbf.QBF
	// Prenex holds the total-order forms solved by QUBE(TO), one per
	// strategy. Suites that only exercise ∃↑∀↑ populate a single entry.
	Prenex map[prenex.Strategy]*qbf.QBF
}

// MakeInstance derives the prenex forms of a tree instance.
func MakeInstance(name string, tree *qbf.QBF, strategies ...prenex.Strategy) Instance {
	inst := Instance{Name: name, Tree: tree, Prenex: map[prenex.Strategy]*qbf.QBF{}}
	for _, s := range strategies {
		inst.Prenex[s] = prenex.Apply(tree, s)
	}
	return inst
}

// Outcome is one solver run on one instance.
type Outcome struct {
	Result  core.Result
	Timeout bool
	Time    time.Duration
	Stats   core.Stats
}

// RunResult pairs the PO outcome with the TO outcomes per strategy.
type RunResult struct {
	Name string
	PO   Outcome
	TO   map[prenex.Strategy]Outcome
}

// TOBest returns the best (fastest solved) TO outcome — the ideal solver
// QUBE(TO)* of Figure 3 — over the strategies present.
func (r RunResult) TOBest() Outcome {
	best := Outcome{Timeout: true, Time: -1}
	for _, o := range r.TO {
		if best.Time < 0 {
			best = o
			continue
		}
		switch {
		case best.Timeout && !o.Timeout:
			best = o
		case !best.Timeout && !o.Timeout && o.Time < best.Time:
			best = o
		case best.Timeout && o.Timeout && o.Time < best.Time:
			best = o
		}
	}
	return best
}

// Config controls a suite run.
type Config struct {
	// Timeout is the per-solve budget (the paper's 600 s, scaled).
	Timeout time.Duration
	// NodeLimit optionally bounds decisions per solve (0 = none).
	NodeLimit int64
	// Workers is the parallelism across instances; 0 means 1.
	Workers int
	// SolverOptions are the shared engine options (learning toggles etc.).
	SolverOptions core.Options
}

func (c Config) options(mode core.Mode) core.Options {
	opt := c.SolverOptions
	opt.Mode = mode
	opt.TimeLimit = c.Timeout
	opt.NodeLimit = c.NodeLimit
	return opt
}

// RunOne solves a single formula under the budget.
func RunOne(q *qbf.QBF, opt core.Options) Outcome {
	start := time.Now()
	r, st, err := core.Solve(q, opt)
	if err != nil {
		invariant.Violated("bench: %v", err)
	}
	return Outcome{
		Result:  r,
		Timeout: r == core.Unknown,
		Time:    time.Since(start),
		Stats:   st,
	}
}

// RunInstance runs PO on the tree and TO on every prenex form.
func RunInstance(inst Instance, cfg Config) RunResult {
	out := RunResult{Name: inst.Name, TO: map[prenex.Strategy]Outcome{}}
	out.PO = RunOne(inst.Tree, cfg.options(core.ModePartialOrder))
	for s, q := range inst.Prenex {
		out.TO[s] = RunOne(q, cfg.options(core.ModeTotalOrder))
	}
	// Cross-check: all decided outcomes must agree.
	want := out.PO.Result
	for s, o := range out.TO {
		if o.Result != core.Unknown && want != core.Unknown && o.Result != want {
			invariant.Violated("bench: %s: TO(%v)=%v but PO=%v", inst.Name, s, o.Result, want)
		}
	}
	return out
}

// RunSuite runs all instances, optionally in parallel, preserving order.
func RunSuite(insts []Instance, cfg Config) []RunResult {
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	out := make([]RunResult, len(insts))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range insts {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i] = RunInstance(insts[i], cfg)
		}(i)
	}
	wg.Wait()
	return out
}

// TableRow is one row of Table I.
type TableRow struct {
	Suite    string
	Strategy prenex.Strategy

	Faster  int // ">": TO slower than PO by more than the margin
	Slower  int // "<": TO faster than PO by more than the margin
	Equal   int // "=±1s" (scaled margin), including both-timeout
	TOOnly  int // "⊳": TO times out, PO does not
	POOnly  int // "⊲": PO times out, TO does not
	BothOut int // "⊳⊲": both time out
	TO10x   int // ">10×": both solve, TO ≥ 10× slower
	PO10x   int // "10×<": both solve, PO ≥ 10× slower
	Total   int
}

// Aggregate computes a Table I row for one strategy over suite results.
// The equality margin plays the paper's "within 1 s of a 600 s budget"
// role; pass timeout/600 for a faithfully scaled margin.
func Aggregate(suite string, results []RunResult, s prenex.Strategy, margin time.Duration) TableRow {
	row := TableRow{Suite: suite, Strategy: s}
	for _, r := range results {
		to, ok := r.TO[s]
		if !ok {
			continue
		}
		row.Total++
		po := r.PO
		switch {
		case to.Timeout && po.Timeout:
			row.BothOut++
			row.Equal++ // the paper counts double timeouts under "="
		case to.Timeout:
			row.TOOnly++
			row.Faster++
		case po.Timeout:
			row.POOnly++
			row.Slower++
		default:
			d := to.Time - po.Time
			switch {
			case d > margin:
				row.Faster++
			case -d > margin:
				row.Slower++
			default:
				row.Equal++
			}
			if po.Time > 0 && to.Time >= 10*po.Time {
				row.TO10x++
			}
			if to.Time > 0 && po.Time >= 10*to.Time {
				row.PO10x++
			}
		}
	}
	return row
}

// WriteTable renders rows in the layout of Table I.
func WriteTable(w io.Writer, rows []TableRow) {
	fmt.Fprintf(w, "%-8s %-12s %5s %5s %7s %4s %4s %5s %6s %6s %6s\n",
		"Suite", "Strategy", ">", "<", "=±m", "TO⊳", "PO⊲", "⊳⊲", ">10x", "10x<", "total")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-12s %5d %5d %7d %4d %4d %5d %6d %6d %6d\n",
			r.Suite, r.Strategy, r.Faster, r.Slower, r.Equal,
			r.TOOnly, r.POOnly, r.BothOut, r.TO10x, r.PO10x, r.Total)
	}
}

// ScatterPoint is one bullet of Figures 3, 4, 5 and 7: PO time on the x
// axis, TO (or TO*) time on the y axis; timeouts are clamped to the budget.
type ScatterPoint struct {
	Name     string
	X, Y     time.Duration
	XTimeout bool
	YTimeout bool
}

// Scatter builds the per-instance scatter against one strategy, or against
// the ideal TO* when best is true.
func Scatter(results []RunResult, s prenex.Strategy, best bool) []ScatterPoint {
	var out []ScatterPoint
	for _, r := range results {
		to := r.TO[s]
		if best {
			to = r.TOBest()
		}
		out = append(out, ScatterPoint{
			Name:     r.Name,
			X:        r.PO.Time,
			Y:        to.Time,
			XTimeout: r.PO.Timeout,
			YTimeout: to.Timeout,
		})
	}
	return out
}

// MedianScatter groups results by the cell name prefix (everything before
// the last "-sN" seed suffix) and emits one point per cell with median
// times — the layout of Figure 3, where every bullet is one parameter
// setting.
func MedianScatter(results []RunResult, s prenex.Strategy, best bool) []ScatterPoint {
	groups := map[string][]RunResult{}
	for _, r := range results {
		key := cellKey(r.Name)
		groups[key] = append(groups[key], r)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []ScatterPoint
	for _, k := range keys {
		rs := groups[k]
		var xs, ys []time.Duration
		xOut, yOut := 0, 0
		for _, r := range rs {
			xs = append(xs, r.PO.Time)
			to := r.TO[s]
			if best {
				to = r.TOBest()
			}
			ys = append(ys, to.Time)
			if r.PO.Timeout {
				xOut++
			}
			if to.Timeout {
				yOut++
			}
		}
		out = append(out, ScatterPoint{
			Name:     k,
			X:        median(xs),
			Y:        median(ys),
			XTimeout: xOut > len(rs)/2,
			YTimeout: yOut > len(rs)/2,
		})
	}
	return out
}

func cellKey(name string) string {
	if i := strings.LastIndex(name, "-s"); i > 0 {
		return name[:i]
	}
	return name
}

func median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

// WriteScatterCSV emits a CSV with one row per point.
func WriteScatterCSV(w io.Writer, points []ScatterPoint) {
	fmt.Fprintln(w, "name,po_seconds,to_seconds,po_timeout,to_timeout")
	for _, p := range points {
		fmt.Fprintf(w, "%s,%.6f,%.6f,%v,%v\n",
			p.Name, p.X.Seconds(), p.Y.Seconds(), p.XTimeout, p.YTimeout)
	}
}

// ScatterSummary counts which side of the diagonal points fall on.
func ScatterSummary(points []ScatterPoint) (above, below, on int) {
	for _, p := range points {
		switch {
		case p.Y > p.X:
			above++
		case p.Y < p.X:
			below++
		default:
			on++
		}
	}
	return above, below, on
}
