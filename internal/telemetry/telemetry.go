// Package telemetry is the solver's observability layer: a structured
// event stream (decisions, propagation fixpoints, conflicts/solutions,
// learning, reductions, imports, restarts, scheduling slices, governor
// actions, stops), an atomic metrics registry exposable via expvar, and
// JSONL trace export with a replay/summarize reader.
//
// The paper's claims are about search *dynamics* — where in the prefix
// order the partial-order heuristic branches, how learning pays off per
// decision level — which end-of-run aggregates cannot show. Every event
// therefore carries the decision level and a prefix-depth attribution,
// and portfolio runs tag each event with the worker index and structure
// group, so QUBE(PO)-vs-QUBE(TO) divergence is visible per race.
//
// Cost contract: a nil *Tracer is the disabled state. Every hot-path hook
// in the solver compiles down to a single nil-check and allocates
// nothing; the overhead against a build with the hooks compiled out
// entirely (-tags qbfnotrace) is gated below 2% by scripts/check.sh. With
// tracing enabled, Emit fills one stack-allocated Event, bumps one atomic
// counter, and hands the event to the sink; the bundled JSONL sink
// serializes without reflection into a reused buffer under a mutex, so
// concurrent portfolio workers can share one sink.
package telemetry

import "time"

// Kind identifies the event type.
type Kind uint8

const (
	// KindDecision: a heuristic branch opened a decision level.
	// A = the decision literal, B = cumulative decisions.
	KindDecision Kind = iota
	// KindFixpoint: a propagation fixpoint was reached (one per main-loop
	// iteration). A = trail length, B = fixpoint ordinal.
	KindFixpoint
	// KindConflict: a clause became contradictory (Lemma 4).
	// A = constraint id, B = constraint size.
	KindConflict
	// KindSolution: a cube fired or the matrix emptied.
	// A = constraint id (-1 for matrix-empty), B = constraint size.
	KindSolution
	// KindLearn: a constraint was learned locally.
	// A = length, B = 0 for a clause (nogood), 1 for a cube (good).
	KindLearn
	// KindReduce: universal/existential reduction removed literals from a
	// working constraint during analysis or import.
	// A = literals removed, B = 0 for universal (clause), 1 for
	// existential (cube) reduction.
	KindReduce
	// KindImport: a constraint shared by a sibling solver was accepted.
	// A = length after re-reduction, B = 0 clause / 1 cube.
	KindImport
	// KindRestart: a Luby-scheduled restart abandoned the current branch.
	// A = Luby index, B = next restart limit.
	KindRestart
	// KindSlice: the portfolio scheduler granted a worker one slice.
	// A = attempt ordinal, B = node limit for the slice (0 = none).
	KindSlice
	// KindGovernor: the memory governor ran a forced reduction round.
	// A = learned bytes before, B = byte budget.
	KindGovernor
	// KindStop: a solve call returned. A = verdict (0 unknown / 1 true /
	// 2 false), B = stop reason (result.StopReason numbering).
	KindStop
	// KindAdmit: the solve service admitted a request into its work queue.
	// A = queue depth after admission, B = requests in flight.
	KindAdmit
	// KindShed: the solve service rejected a request before solving.
	// A = shed reason (server.ShedReason numbering), B = queue depth.
	KindShed
	// KindServe: the solve service completed a request. A = verdict,
	// B = stop reason — the same encoding as KindStop, one level up.
	KindServe
	// KindRoute: the gate dispatched a request attempt to a backend.
	// A = backend index, B = attempt ordinal (0 = primary, ≥1 = failover
	// or hedge).
	KindRoute
	// KindHedge: a hedged request pair resolved. A = 1 when the hedge won
	// (its verdict was used and the primary was cancelled), 0 when the
	// primary won; B = the hedge's backend index.
	KindHedge
	// KindCacheHit: the gate consulted its canonical-form verdict cache.
	// A = 1 hit / 0 miss, B = live entries after the lookup.
	KindCacheHit
	// KindFrame: an incremental solver ran a frame operation.
	// A = operation (0 push / 1 pop / 2 add-clause / 3 assume),
	// B = frame depth after the operation.
	KindFrame
	// KindSession: the solve service ran a sticky-session lifecycle event.
	// A = event (0 create / 1 solve / 2 close / 3 expire / 4 evict),
	// B = live sessions after the event.
	KindSession
	// KindJournal: the session write-ahead journal ran a lifecycle event.
	// A = event (0 append / 1 degrade / 2 recover / 3 compact /
	// 4 truncate), B = the event detail: lifetime appends, 0, sessions
	// recovered at boot, records in the compaction snapshot, and bytes
	// dropped truncating a torn tail, respectively.
	KindJournal

	numKinds // count sentinel; keep last
)

var kindNames = [numKinds]string{
	"decision", "fixpoint", "conflict", "solution", "learn", "reduce",
	"import", "restart", "slice", "governor", "stop", "admit", "shed",
	"serve", "route", "hedge", "cachehit", "frame", "session", "journal",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString is the inverse of Kind.String; ok is false for an
// unknown name.
func KindFromString(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return 0, false
}

// Kinds returns every defined kind in numeric order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Event is one structured telemetry record. Worker and Group are -1
// outside portfolio runs; Level is the decision level at emission; Depth
// is the prefix-depth attribution (the prefix level of the variable or
// constraint the event is about, 0 when not applicable). A and B carry
// the per-kind payload documented on the Kind constants.
type Event struct {
	T      int64 // nanoseconds since the tracer started
	Kind   Kind
	Worker int32
	Group  int32
	Level  int32
	Depth  int32
	A, B   int64
}

// Sink consumes events. Implementations must be safe for concurrent use:
// portfolio workers share one sink. Emit must not retain the event past
// the call.
type Sink interface {
	Emit(e Event)
}

// Tracer binds a sink and a metrics registry to static worker/group tags.
// The zero of usefulness is the nil Tracer: every method on a nil
// receiver is a no-op, which is what makes the disabled hot path one
// pointer compare. Tracers are immutable after construction; Fork derives
// per-worker tracers sharing the sink, metrics, and time base.
type Tracer struct {
	sink   Sink
	m      *Metrics
	worker int32
	group  int32
	start  time.Time
}

// New returns a tracer emitting to sink (may be nil for metrics-only) and
// counting into m (may be nil for trace-only). Both nil yields a nil
// tracer, i.e. telemetry disabled.
func New(sink Sink, m *Metrics) *Tracer {
	if sink == nil && m == nil {
		return nil
	}
	return &Tracer{sink: sink, m: m, worker: -1, group: -1, start: time.Now()}
}

// Fork derives a tracer tagged with a portfolio worker index and
// structure group, sharing the parent's sink, metrics, and time base.
// Fork of a nil tracer is nil.
func (t *Tracer) Fork(worker, group int) *Tracer {
	if t == nil {
		return nil
	}
	ft := *t
	ft.worker, ft.group = int32(worker), int32(group)
	return &ft
}

// Emit records one event: the metrics counter for k is bumped and, when a
// sink is attached, a timestamped Event carrying the tracer's tags is
// delivered. Emit on a nil tracer is a no-op.
//
//qbf:hotpath
func (t *Tracer) Emit(k Kind, level, depth int, a, b int64) {
	if t == nil {
		return
	}
	if t.m != nil {
		t.m.inc(k)
	}
	if t.sink != nil {
		t.sink.Emit(Event{
			T:      time.Since(t.start).Nanoseconds(),
			Kind:   k,
			Worker: t.worker,
			Group:  t.group,
			Level:  int32(level),
			Depth:  int32(depth),
			A:      a,
			B:      b,
		})
	}
}
