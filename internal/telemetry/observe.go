package telemetry

import (
	"errors"
	"fmt"
	"os"
)

// Observability bundles the exporters a CLI wires up behind its -trace,
// -metrics-addr and -profile flags: a JSONL trace sink, an expvar metrics
// registry served with pprof over HTTP, and CPU/heap profile capture. A
// run with none of the flags set gets a nil Tracer — the solver's
// disabled path — at the cost of one nil check per event site.
type Observability struct {
	// Tracer is the root tracer to place in core.Options.Telemetry (the
	// portfolio layer forks it per worker). Nil when no exporter was
	// requested.
	Tracer *Tracer
	// Metrics is the expvar-published counter registry, nil unless a
	// metrics address was requested.
	Metrics *Metrics
	// Addr is the bound address of the debug HTTP server ("" when not
	// serving), useful for telling the user where /debug/ lives when the
	// requested address had port 0.
	Addr string

	sink        *JSONLSink
	stopProfile func() error
	shutdown    func() error
	tracePath   string
}

// Setup wires the exporters selected by the three flag values; empty
// strings disable the corresponding exporter. The caller must invoke
// Finish before exiting — os.Exit skips deferred calls, so CLIs call it
// explicitly — or events buffered in the trace sink are lost.
func Setup(tracePath, metricsAddr, profilePrefix string) (*Observability, error) {
	obs := &Observability{tracePath: tracePath}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, err
		}
		obs.sink = NewJSONLSink(f)
	}
	if metricsAddr != "" {
		obs.Metrics = NewMetrics()
		PublishOnce(obs.Metrics, "qbf.events")
		addr, shutdown, err := ServeDebug(metricsAddr)
		if err != nil {
			obs.closeSink()
			return nil, err
		}
		obs.Addr = addr
		obs.shutdown = shutdown
	}
	if obs.sink != nil || obs.Metrics != nil {
		obs.Tracer = New(obs.sink, obs.Metrics)
	}
	if profilePrefix != "" {
		stop, err := StartProfiles(profilePrefix)
		if err != nil {
			obs.closeSink()
			if obs.shutdown != nil {
				obs.shutdown() //nolint:errcheck // best-effort unwind of partial setup
			}
			return nil, err
		}
		obs.stopProfile = stop
	}
	return obs, nil
}

func (o *Observability) closeSink() {
	if o.sink != nil {
		o.sink.Close() //nolint:errcheck // best-effort unwind of partial setup
		o.sink = nil
	}
}

// Finish flushes the trace, writes the profiles, and shuts the debug
// server down, reporting every failure (joined) so a CLI can surface a
// truncated trace instead of exiting 0 with silent data loss. Safe to
// call on a nil receiver and idempotent per exporter.
func (o *Observability) Finish() error {
	if o == nil {
		return nil
	}
	var errs []error
	if o.sink != nil {
		if err := o.sink.Close(); err != nil {
			errs = append(errs, fmt.Errorf("writing trace %s: %w", o.tracePath, err))
		}
		o.sink = nil
	}
	if o.stopProfile != nil {
		if err := o.stopProfile(); err != nil {
			errs = append(errs, fmt.Errorf("writing profiles: %w", err))
		}
		o.stopProfile = nil
	}
	if o.shutdown != nil {
		o.shutdown() //nolint:errcheck // best-effort teardown at exit
		o.shutdown = nil
	}
	return errors.Join(errs...)
}
