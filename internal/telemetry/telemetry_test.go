package telemetry

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(KindDecision, 1, 2, 3, 4) // must not panic
	if tr.Fork(0, 0) != nil {
		t.Fatal("Fork of nil tracer must stay nil")
	}
	if New(nil, nil) != nil {
		t.Fatal("New(nil, nil) must return the disabled (nil) tracer")
	}
}

func TestEmitCountsAndTags(t *testing.T) {
	m := NewMetrics()
	var sink memSink
	tr := New(&sink, m)
	tr.Emit(KindDecision, 3, 2, 7, 0)
	w := tr.Fork(4, 1)
	w.Emit(KindLearn, 5, 3, 9, 1)

	if got := m.Count(KindDecision); got != 1 {
		t.Fatalf("decision count = %d", got)
	}
	if got := m.Count(KindLearn); got != 1 {
		t.Fatalf("learn count = %d", got)
	}
	if len(sink.events) != 2 {
		t.Fatalf("sink got %d events", len(sink.events))
	}
	if e := sink.events[0]; e.Worker != -1 || e.Group != -1 || e.Level != 3 || e.Depth != 2 || e.A != 7 {
		t.Fatalf("root event = %+v", e)
	}
	if e := sink.events[1]; e.Worker != 4 || e.Group != 1 || e.Kind != KindLearn || e.B != 1 {
		t.Fatalf("forked event = %+v", e)
	}
}

type memSink struct {
	mu     sync.Mutex
	events []Event
}

func (s *memSink) Emit(e Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

func TestKindStringsRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, ok := KindFromString(k.String())
		if !ok || got != k {
			t.Errorf("kind %d round-trip failed: %q -> %v ok=%v", k, k.String(), got, ok)
		}
	}
	if _, ok := KindFromString("bogus"); ok {
		t.Error("bogus kind must not resolve")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := New(sink, nil)
	want := []Event{}
	for i, k := range Kinds() {
		w := tr.Fork(i%3, i%2)
		w.Emit(k, i, i+1, int64(i*10), int64(i))
		want = append(want, Event{
			Kind: k, Worker: int32(i % 3), Group: int32(i % 2),
			Level: int32(i), Depth: int32(i + 1), A: int64(i * 10), B: int64(i),
		})
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	var got []Event
	if err := ReadEvents(bytes.NewReader(buf.Bytes()), func(e Event) error {
		got = append(got, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d events, want %d", len(got), len(want))
	}
	for i := range got {
		g := got[i]
		g.T = 0 // timestamps are not asserted
		if g != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, g, want[i])
		}
	}
}

func TestJSONLConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := New(sink, NewMetrics())
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ft := tr.Fork(w, 0)
			for i := 0; i < per; i++ {
				ft.Emit(KindDecision, i, 1, int64(i), 0)
			}
		}(w)
	}
	wg.Wait()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	sum, err := Summarize(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Total != workers*per || sum.ByKind[KindDecision] != workers*per {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Workers != workers {
		t.Fatalf("workers = %d, want %d", sum.Workers, workers)
	}
}

func TestSummarizeRejectsCorruptTrace(t *testing.T) {
	if _, err := Summarize(strings.NewReader("{\"t\":1,\"ev\":\"nope\",\"w\":0,\"g\":0,\"lvl\":0,\"d\":0,\"a\":0,\"b\":0}\n")); err == nil {
		t.Fatal("unknown kind must error")
	}
	if _, err := Summarize(strings.NewReader("not json\n")); err == nil {
		t.Fatal("bad json must error")
	}
}

func TestSummaryWriteText(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := New(sink, nil).Fork(0, 0)
	tr.Emit(KindDecision, 1, 2, 5, 0)
	tr.Emit(KindDecision, 2, 2, 6, 0)
	tr.Emit(KindConflict, 2, 1, 0, 3)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	sum, err := Summarize(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := sum.WriteText(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"events=3", "decision", "conflict", "worker 0", "decisions@depth2"} {
		if !strings.Contains(text, want) {
			t.Errorf("summary text missing %q:\n%s", want, text)
		}
	}
}

func TestMetricsSnapshotAndString(t *testing.T) {
	m := NewMetrics()
	tr := New(discardSink{}, m)
	tr.Emit(KindConflict, 0, 0, 0, 0)
	tr.Emit(KindConflict, 0, 0, 0, 0)
	snap := m.Snapshot()
	if snap["conflict"] != 2 || snap["decision"] != 0 {
		t.Fatalf("snapshot = %v", snap)
	}
	if s := m.String(); s != "conflict=2" {
		t.Fatalf("String() = %q", s)
	}
}

type discardSink struct{}

func (discardSink) Emit(Event) {}

func TestServeDebug(t *testing.T) {
	m := NewMetrics()
	PublishOnce(m, "qbf.test.events")
	m.inc(KindStop)
	addr, shutdown, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "qbf.test.events") {
		t.Fatalf("vars endpoint: status=%d body=%s", resp.StatusCode, body)
	}
	resp2, err := http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("pprof endpoint status=%d", resp2.StatusCode)
	}
	// PublishOnce must tolerate a second registration.
	PublishOnce(m, "qbf.test.events")
}

func TestStartProfiles(t *testing.T) {
	prefix := t.TempDir() + "/prof"
	stop, err := StartProfiles(prefix)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{".cpu.pprof", ".heap.pprof"} {
		fi, err := os.Stat(prefix + suffix)
		if err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", suffix, err)
		}
	}
}

func BenchmarkEmitDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(KindDecision, 3, 2, int64(i), 0)
	}
}

func BenchmarkEmitJSONL(b *testing.B) {
	sink := NewJSONLSink(io.Discard)
	tr := New(sink, NewMetrics()).Fork(0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(KindDecision, 3, 2, int64(i), 0)
	}
}
