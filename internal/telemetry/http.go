package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	rpprof "runtime/pprof"
)

// ServeDebug starts an HTTP server on addr exposing expvar metrics at
// /debug/vars and the pprof endpoints under /debug/pprof/ on a private
// mux (nothing is mounted on http.DefaultServeMux). It returns the bound
// address — useful with a ":0" addr in tests — and a shutdown function.
// The server is opt-in diagnostics for operators; the solve pipeline
// never depends on it.
func ServeDebug(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	//lint:allow L12 stopped via the returned srv.Close, not a ctx/channel at the call site
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return ln.Addr().String(), srv.Close, nil
}

// StartProfiles begins CPU profiling into <prefix>.cpu.pprof and returns
// a stop function that ends the CPU profile and writes a heap profile to
// <prefix>.heap.pprof. Used by the -profile CLI flag.
func StartProfiles(prefix string) (func() error, error) {
	cpuF, err := os.Create(prefix + ".cpu.pprof")
	if err != nil {
		return nil, err
	}
	if err := rpprof.StartCPUProfile(cpuF); err != nil {
		cpuF.Close() //lint:allow L15 profiling never started; the start error supersedes cleanup
		return nil, err
	}
	return func() error {
		rpprof.StopCPUProfile()
		err := cpuF.Close()
		heapF, herr := os.Create(prefix + ".heap.pprof")
		if herr != nil {
			if err == nil {
				err = herr
			}
			return err
		}
		runtime.GC() // settle the heap so the profile reflects live data
		if werr := rpprof.WriteHeapProfile(heapF); werr != nil && err == nil {
			err = werr
		}
		if cerr := heapF.Close(); cerr != nil && err == nil {
			err = cerr
		}
		return err
	}, nil
}

// PublishOnce registers m under name, tolerating re-registration (expvar
// panics on duplicate names, which matters in tests and in processes that
// build more than one pipeline). The first registration wins; later calls
// are no-ops.
func PublishOnce(m *Metrics, name string) {
	if expvar.Get(name) != nil {
		return
	}
	defer func() {
		// Lost a publish race; the winner serves the same registry shape.
		_ = recover()
	}()
	m.Publish(name)
}
