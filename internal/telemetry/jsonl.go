package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// jsonEvent is the wire form of an Event. Every field is always present
// (no omitempty): trace consumers get a fixed schema and zero values stay
// distinguishable from absent ones.
type jsonEvent struct {
	T      int64  `json:"t"`
	Ev     string `json:"ev"`
	Worker int32  `json:"w"`
	Group  int32  `json:"g"`
	Level  int32  `json:"lvl"`
	Depth  int32  `json:"d"`
	A      int64  `json:"a"`
	B      int64  `json:"b"`
}

// JSONLSink writes one JSON object per event to an io.Writer, newline
// delimited. Encoding is hand-rolled into a reused buffer — no
// reflection, no per-event allocation after warm-up — and the sink is
// safe for concurrent emitters (one mutex serializes buffer and writer).
// Call Close (or at least Flush) before reading the output: events are
// buffered.
type JSONLSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer // underlying closer, if the writer has one
	buf []byte
	err error
}

// NewJSONLSink wraps w. If w is also an io.Closer, Close closes it after
// flushing.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit implements Sink.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	b := s.buf[:0]
	b = append(b, `{"t":`...)
	b = strconv.AppendInt(b, e.T, 10)
	b = append(b, `,"ev":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","w":`...)
	b = strconv.AppendInt(b, int64(e.Worker), 10)
	b = append(b, `,"g":`...)
	b = strconv.AppendInt(b, int64(e.Group), 10)
	b = append(b, `,"lvl":`...)
	b = strconv.AppendInt(b, int64(e.Level), 10)
	b = append(b, `,"d":`...)
	b = strconv.AppendInt(b, int64(e.Depth), 10)
	b = append(b, `,"a":`...)
	b = strconv.AppendInt(b, e.A, 10)
	b = append(b, `,"b":`...)
	b = strconv.AppendInt(b, e.B, 10)
	b = append(b, '}', '\n')
	s.buf = b
	if _, err := s.w.Write(b); err != nil {
		s.err = err
	}
}

// Flush pushes buffered events to the underlying writer.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}

// Close flushes and, when the underlying writer is a Closer, closes it.
// The first error wins.
func (s *JSONLSink) Close() error {
	err := s.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ReadEvents replays a JSONL trace, invoking fn for each decoded event in
// file order. Lines that fail to decode or name an unknown kind abort the
// replay with a positioned error, so a truncated or corrupt trace is
// reported rather than silently undercounted.
func ReadEvents(r io.Reader, fn func(Event) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var je jsonEvent
		if err := json.Unmarshal(raw, &je); err != nil {
			return fmt.Errorf("trace line %d: %w", line, err)
		}
		k, ok := KindFromString(je.Ev)
		if !ok {
			return fmt.Errorf("trace line %d: unknown event kind %q", line, je.Ev)
		}
		e := Event{
			T: je.T, Kind: k, Worker: je.Worker, Group: je.Group,
			Level: je.Level, Depth: je.Depth, A: je.A, B: je.B,
		}
		if err := fn(e); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Summary aggregates a replayed trace: event totals per kind, per worker,
// the decision count per prefix depth (the histogram the paper's
// PO-vs-TO comparison needs), and the gate's routing/hedging/cache
// aggregates when the trace carries front-tier events.
type Summary struct {
	Total     int64
	ByKind    map[Kind]int64
	ByWorker  map[int32]int64
	DecDepth  map[int32]int64 // decisions per prefix depth
	LastNanos int64           // timestamp of the last event
	Workers   int             // distinct worker tags (including -1)

	// ByBackend counts gate route events per backend index (KindRoute.A),
	// and Failovers those with a non-zero attempt ordinal.
	ByBackend map[int64]int64
	Failovers int64
	// HedgesResolved / HedgeWins aggregate KindHedge: pairs that resolved
	// and the subset the hedge (not the primary) won.
	HedgesResolved int64
	HedgeWins      int64
	// CacheLookups / CacheHits aggregate KindCacheHit events.
	CacheLookups int64
	CacheHits    int64

	// The Journal* fields aggregate KindJournal: appends recorded,
	// degradations to non-durable mode, sessions recovered at boot,
	// compactions run, and bytes dropped truncating torn tails.
	JournalAppends     int64
	JournalDegrades    int64
	JournalRecovered   int64
	JournalCompactions int64
	JournalTruncated   int64
}

// Summarize replays the trace from r and aggregates it.
func Summarize(r io.Reader) (Summary, error) {
	s := Summary{
		ByKind:    make(map[Kind]int64),
		ByWorker:  make(map[int32]int64),
		DecDepth:  make(map[int32]int64),
		ByBackend: make(map[int64]int64),
	}
	err := ReadEvents(r, func(e Event) error {
		s.Total++
		s.ByKind[e.Kind]++
		s.ByWorker[e.Worker]++
		switch e.Kind {
		case KindDecision:
			s.DecDepth[e.Depth]++
		case KindRoute:
			s.ByBackend[e.A]++
			if e.B > 0 {
				s.Failovers++
			}
		case KindHedge:
			s.HedgesResolved++
			if e.A == 1 {
				s.HedgeWins++
			}
		case KindCacheHit:
			s.CacheLookups++
			if e.A == 1 {
				s.CacheHits++
			}
		case KindJournal:
			switch e.A {
			case 0:
				s.JournalAppends++
			case 1:
				s.JournalDegrades++
			case 2:
				s.JournalRecovered += e.B
			case 3:
				s.JournalCompactions++
			case 4:
				s.JournalTruncated += e.B
			}
		}
		if e.T > s.LastNanos {
			s.LastNanos = e.T
		}
		return nil
	})
	s.Workers = len(s.ByWorker)
	return s, err
}

// WriteText renders the summary as the human-readable report `qbfstat
// trace` prints: totals, per-kind counts in kind order, per-worker
// counts, and the decision-by-prefix-depth histogram.
func (s Summary) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "events=%d workers=%d span=%s\n",
		s.Total, s.Workers, fmtNanos(s.LastNanos)); err != nil {
		return err
	}
	for i := 0; i < int(numKinds); i++ {
		k := Kind(i)
		if n := s.ByKind[k]; n != 0 {
			if _, err := fmt.Fprintf(w, "  %-10s %d\n", k, n); err != nil {
				return err
			}
		}
	}
	workers := make([]int32, 0, len(s.ByWorker))
	for wid := range s.ByWorker {
		workers = append(workers, wid)
	}
	sort.Slice(workers, func(a, b int) bool { return workers[a] < workers[b] })
	for _, wid := range workers {
		if _, err := fmt.Fprintf(w, "  worker %-3d %d\n", wid, s.ByWorker[wid]); err != nil {
			return err
		}
	}
	depths := make([]int32, 0, len(s.DecDepth))
	for d := range s.DecDepth {
		depths = append(depths, d)
	}
	sort.Slice(depths, func(a, b int) bool { return depths[a] < depths[b] })
	for _, d := range depths {
		if _, err := fmt.Fprintf(w, "  decisions@depth%-3d %d\n", d, s.DecDepth[d]); err != nil {
			return err
		}
	}
	backends := make([]int64, 0, len(s.ByBackend))
	for b := range s.ByBackend {
		backends = append(backends, b)
	}
	sort.Slice(backends, func(a, b int) bool { return backends[a] < backends[b] })
	for _, b := range backends {
		if _, err := fmt.Fprintf(w, "  backend %-3d %d\n", b, s.ByBackend[b]); err != nil {
			return err
		}
	}
	if len(s.ByBackend) > 0 && s.Failovers > 0 {
		if _, err := fmt.Fprintf(w, "  failovers  %d\n", s.Failovers); err != nil {
			return err
		}
	}
	if s.HedgesResolved > 0 {
		if _, err := fmt.Fprintf(w, "  hedge-wins %d/%d (%.1f%%)\n",
			s.HedgeWins, s.HedgesResolved, 100*float64(s.HedgeWins)/float64(s.HedgesResolved)); err != nil {
			return err
		}
	}
	if s.CacheLookups > 0 {
		if _, err := fmt.Fprintf(w, "  cache-hits %d/%d (%.1f%%)\n",
			s.CacheHits, s.CacheLookups, 100*float64(s.CacheHits)/float64(s.CacheLookups)); err != nil {
			return err
		}
	}
	if s.JournalAppends > 0 || s.JournalDegrades > 0 || s.JournalRecovered > 0 ||
		s.JournalCompactions > 0 || s.JournalTruncated > 0 {
		if _, err := fmt.Fprintf(w, "  journal    appends=%d recovered=%d compactions=%d truncated=%dB degrades=%d\n",
			s.JournalAppends, s.JournalRecovered, s.JournalCompactions,
			s.JournalTruncated, s.JournalDegrades); err != nil {
			return err
		}
	}
	return nil
}

func fmtNanos(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.3fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
