package telemetry

import (
	"expvar"
	"fmt"
	"sort"
	"sync/atomic"
)

// Metrics is an atomic per-kind event counter registry. One registry is
// shared by every tracer forked from the same New call, so a portfolio
// run aggregates across workers for free. The zero value is ready to use.
type Metrics struct {
	counts [numKinds]atomic.Int64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

func (m *Metrics) inc(k Kind) {
	if int(k) < len(m.counts) {
		m.counts[k].Add(1)
	}
}

// Count returns the number of events of kind k recorded so far.
func (m *Metrics) Count(k Kind) int64 {
	if m == nil || int(k) >= len(m.counts) {
		return 0
	}
	return m.counts[k].Load()
}

// Snapshot returns a point-in-time copy of all counters keyed by kind
// name. Kinds with a zero count are included, so the key set is stable.
func (m *Metrics) Snapshot() map[string]int64 {
	out := make(map[string]int64, numKinds)
	for i := range m.counts {
		out[Kind(i).String()] = m.counts[i].Load()
	}
	return out
}

// Publish registers the registry with the expvar root under the given
// name (e.g. "qbf.events"), making it visible at /debug/vars on any mux
// that mounts expvar.Handler. Publishing the same name twice panics, per
// expvar convention — call once per process.
func (m *Metrics) Publish(name string) {
	expvar.Publish(name, expvar.Func(func() any { return m.Snapshot() }))
}

// String renders the non-zero counters in kind order, for logs and the
// qbfstat trace summary footer.
func (m *Metrics) String() string {
	snap := m.Snapshot()
	keys := make([]string, 0, len(snap))
	for i := 0; i < int(numKinds); i++ {
		k := Kind(i).String()
		if snap[k] != 0 {
			keys = append(keys, k)
		}
	}
	sort.SliceStable(keys, func(a, b int) bool {
		ka, _ := KindFromString(keys[a])
		kb, _ := KindFromString(keys[b])
		return ka < kb
	})
	s := ""
	for _, k := range keys {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", k, snap[k])
	}
	return s
}
