package preprocess

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/qbf"
)

func mk(lits ...int) qbf.Clause {
	c := make(qbf.Clause, len(lits))
	for i, l := range lits {
		c[i] = qbf.Lit(l)
	}
	return c
}

func TestUnitAndReduction(t *testing.T) {
	// ∃x1 ∀y2 ∃x3: {x1} unit; {y2, x1} reduces to {x1} (already there);
	// after x1=true the matrix keeps {y2, x3} and friends.
	p := qbf.NewPrenexPrefix(3,
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{1}},
		qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{2}},
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{3}})
	q := qbf.New(p, []qbf.Clause{mk(1), mk(1, 2), mk(-1, 2, 3), mk(-2, 3)})
	out, res := Run(q, Options{})
	if res.UnitsAssigned < 1 {
		t.Errorf("unit not propagated: %+v", res)
	}
	if out.Prefix.Bound(1) {
		t.Error("assigned variable still bound")
	}
}

func TestDecidesTrivial(t *testing.T) {
	p := qbf.NewPrenexPrefix(2,
		qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{1}},
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{2}})
	// {y1} is contradictory after reduction (no existential).
	_, res := Run(qbf.New(p, []qbf.Clause{mk(1, 2), mk(1)}), Options{})
	if !res.Decided || res.Value {
		t.Errorf("contradictory clause must decide false: %+v", res)
	}

	// All clauses satisfied by units → true.
	p2 := qbf.NewPrenexPrefix(2, qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{1, 2}})
	_, res2 := Run(qbf.New(p2, []qbf.Clause{mk(1), mk(1, 2)}), Options{})
	if !res2.Decided || !res2.Value {
		t.Errorf("unit-satisfiable formula must decide true: %+v", res2)
	}
}

func TestPureFixing(t *testing.T) {
	// ∃x1 ∀y2 ∃x3: x1 occurs only positively → pure; y2 occurs only
	// negatively → universal pure rule assigns ¬y2... which satisfies
	// nothing but shrinks clauses.
	p := qbf.NewPrenexPrefix(3,
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{1}},
		qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{2}},
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{3}})
	q := qbf.New(p, []qbf.Clause{mk(1, -2, 3), mk(1, 3), mk(-2, -3)})
	_, res := Run(q, Options{})
	if res.PuresAssigned == 0 && res.UnitsAssigned == 0 {
		t.Errorf("no monotone literal found: %+v", res)
	}
}

func TestSubsumption(t *testing.T) {
	p := qbf.NewPrenexPrefix(3, qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{1, 2, 3}})
	q := qbf.New(p, []qbf.Clause{mk(1, 2), mk(1, 2, 3), mk(-1, 3), mk(-1, 2, 3)})
	out, res := Run(q, Options{DisableUnits: true, DisablePures: true})
	if res.Subsumed != 2 {
		t.Errorf("subsumed %d clauses, want 2 (%v)", res.Subsumed, out.Matrix)
	}
}

func TestDuplicatesAndTautologies(t *testing.T) {
	p := qbf.NewPrenexPrefix(2, qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{1, 2}})
	q := qbf.New(p, []qbf.Clause{mk(1, -1), mk(1, 2), mk(2, 1), mk(1, 2)})
	out, res := Run(q, Options{DisableUnits: true, DisablePures: true, DisableSubsumption: true})
	if res.TautologiesGone != 1 {
		t.Errorf("tautologies %d, want 1", res.TautologiesGone)
	}
	if len(out.Matrix) != 1 {
		t.Errorf("matrix %v, want a single clause", out.Matrix)
	}
}

// TestPreservesValue is the central property: preprocessing must never
// change the value, under any option combination, on random trees.
func TestPreservesValue(t *testing.T) {
	rng := rand.New(rand.NewSource(307))
	opts := []Options{
		{},
		{DisableUnits: true},
		{DisablePures: true},
		{DisableReduction: true},
		{DisableSubsumption: true},
		{DisableUnits: true, DisablePures: true, DisableReduction: true, DisableSubsumption: true},
	}
	for i := 0; i < 200; i++ {
		q := qbf.RandomQBF(rng, 10, 10)
		want, ok := qbf.EvalWithBudget(q, 1_000_000)
		if !ok {
			continue
		}
		for _, o := range opts {
			out, res := Run(q, o)
			if res.Decided {
				if res.Value != want {
					t.Fatalf("iteration %d opts %+v: decided %v, oracle %v\n%v", i, o, res.Value, want, q)
				}
				continue
			}
			got, ok2 := qbf.EvalWithBudget(out, 2_000_000)
			if !ok2 {
				continue
			}
			if got != want {
				t.Fatalf("iteration %d opts %+v: value %v→%v\nin:  %v\nout: %v", i, o, want, got, q, out)
			}
		}
	}
}

// TestHelpsSolver: preprocessing never changes the QCDCL answer and the
// preprocessed formula is never larger.
func TestHelpsSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	for i := 0; i < 80; i++ {
		q := qbf.RandomQBF(rng, 12, 14)
		out, res := Run(q, Options{})
		wantRes, err := core.Solve(context.Background(), q, core.Options{})
		want := wantRes.Verdict
		if err != nil {
			t.Fatal(err)
		}
		if res.Decided {
			if (want == core.True) != res.Value {
				t.Fatalf("iteration %d: preprocess decided %v, solver %v", i, res.Value, want)
			}
			continue
		}
		gotRes, err := core.Solve(context.Background(), out, core.Options{})
		got := gotRes.Verdict
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("iteration %d: %v→%v after preprocessing", i, want, got)
		}
		inLits, outLits := q.Stats().Literals, out.Stats().Literals
		if outLits > inLits {
			t.Errorf("iteration %d: literals grew %d→%d", i, inLits, outLits)
		}
	}
}
