package preprocess

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/qbf"
)

func TestTrivialTruthPositive(t *testing.T) {
	// ∀y1 ∃x2 x3: (x2 ∨ y1) ∧ (x3 ∨ ¬y1) — x2 = x3 = true works for every
	// y1, so trivial truth fires.
	p := qbf.NewPrenexPrefix(3,
		qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{1}},
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{2, 3}})
	q := qbf.New(p, []qbf.Clause{{2, 1}, {3, -1}})
	isTrue, decided := TrivialTruth(context.Background(), q, time.Second)
	if !decided || !isTrue {
		t.Errorf("trivial truth must decide this instance: %v %v", isTrue, decided)
	}
}

func TestTrivialTruthInconclusive(t *testing.T) {
	// ∀y1 ∃x2: x2 ≡ y1 is true but NOT trivially true (the witness depends
	// on y1).
	p := qbf.NewPrenexPrefix(2,
		qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{1}},
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{2}})
	q := qbf.New(p, []qbf.Clause{{2, 1}, {-2, -1}})
	if _, decided := TrivialTruth(context.Background(), q, time.Second); decided {
		t.Error("trivial truth must be inconclusive when the witness depends on a universal")
	}
}

func TestTrivialFalsityPositive(t *testing.T) {
	// Even with y existential the matrix is UNSAT.
	p := qbf.NewPrenexPrefix(2,
		qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{1}},
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{2}})
	q := qbf.New(p, []qbf.Clause{{1, 2}, {1, -2}, {-1, 2}, {-1, -2}})
	isFalse, decided := TrivialFalsity(context.Background(), q, time.Second)
	if !decided || !isFalse {
		t.Errorf("trivial falsity must decide this instance: %v %v", isFalse, decided)
	}
}

func TestTrivialFalsityInconclusive(t *testing.T) {
	// ∃x ∀y: x ≡ y is false but the relaxation is satisfiable.
	p := qbf.NewPrenexPrefix(2,
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{1}},
		qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{2}})
	q := qbf.New(p, []qbf.Clause{{1, 2}, {-1, -2}})
	if _, decided := TrivialFalsity(context.Background(), q, time.Second); decided {
		t.Error("trivial falsity must be inconclusive on a satisfiable relaxation")
	}
}

// TestTrivialSound: whenever either test decides, the oracle must agree —
// on random prenex and non-prenex instances.
func TestTrivialSound(t *testing.T) {
	rng := rand.New(rand.NewSource(977))
	truths, falsities := 0, 0
	for i := 0; i < 300; i++ {
		q := qbf.RandomQBF(rng, 10, 10)
		want, ok := qbf.EvalWithBudget(q, 1_000_000)
		if !ok {
			continue
		}
		if isTrue, decided := TrivialTruth(context.Background(), q, time.Second); decided {
			truths++
			if !isTrue || !want {
				t.Fatalf("iteration %d: trivial truth unsound (oracle %v)\n%v", i, want, q)
			}
		}
		if isFalse, decided := TrivialFalsity(context.Background(), q, time.Second); decided {
			falsities++
			if !isFalse || want {
				t.Fatalf("iteration %d: trivial falsity unsound (oracle %v)\n%v", i, want, q)
			}
		}
	}
	if truths == 0 || falsities == 0 {
		t.Errorf("tests fired %d truths, %d falsities; want both exercised", truths, falsities)
	}
}
