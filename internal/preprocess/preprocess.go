// Package preprocess implements standard QBF preprocessing on (possibly
// non-prenex) formulas, the simplifications that solvers of the paper's
// era applied before search: top-level unit propagation (the generalized
// unit rule of Lemma 5), monotone (pure) literal fixing, universal
// reduction of every clause (Lemma 3), tautology and duplicate-clause
// removal, and clause subsumption. All rules respect the partial prefix
// order ≺, so the result is equivalent to the input for any downstream
// solver, prenex or not.
package preprocess

import (
	"sort"

	"repro/internal/qbf"
)

// Result reports what a Run did.
type Result struct {
	// Decided is set when preprocessing alone decided the formula.
	Decided bool
	// Value is the formula's value when Decided.
	Value bool

	UnitsAssigned   int
	PuresAssigned   int
	LiteralsReduced int
	TautologiesGone int
	DuplicatesGone  int
	Subsumed        int
}

// Options selects which rules run. The zero value enables everything.
type Options struct {
	DisableUnits       bool
	DisablePures       bool
	DisableReduction   bool
	DisableSubsumption bool
}

// Run preprocesses q and returns the simplified formula with a report.
// The input is not modified.
func Run(q *qbf.QBF, opt Options) (*qbf.QBF, Result) {
	var res Result
	work := q.Clone()
	work.BindFreeVars()
	res.TautologiesGone = work.NormalizeMatrix()
	work.Prefix.Finalize()

	for {
		changed := false

		if !opt.DisableReduction {
			for i, c := range work.Matrix {
				rc := qbf.UniversalReduce(work.Prefix, c)
				if len(rc) != len(c) {
					res.LiteralsReduced += len(c) - len(rc)
					work.Matrix[i] = rc
					changed = true
				}
			}
		}

		// Contradictory clause (Lemma 4) → false.
		for _, c := range work.Matrix {
			if contradictory(work, c) {
				res.Decided, res.Value = true, false
				return emptyFalse(work), res
			}
		}
		if len(work.Matrix) == 0 {
			res.Decided, res.Value = true, true
			return work, res
		}

		if !opt.DisableUnits {
			if l, ok := findUnit(work); ok {
				work = work.Assign(l)
				res.UnitsAssigned++
				changed = true
			}
		}
		if !changed && !opt.DisablePures {
			if l, ok := findPure(work); ok {
				work = work.Assign(l)
				res.PuresAssigned++
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	if d := dedupe(work); d > 0 {
		res.DuplicatesGone = d
	}
	if !opt.DisableSubsumption {
		res.Subsumed = subsume(work)
	}
	if len(work.Matrix) == 0 {
		res.Decided, res.Value = true, true
	}
	return work, res
}

// emptyFalse returns a canonical false formula over the input's prefix.
func emptyFalse(q *qbf.QBF) *qbf.QBF {
	return qbf.New(q.Prefix, []qbf.Clause{{}})
}

func contradictory(q *qbf.QBF, c qbf.Clause) bool {
	for _, l := range c {
		if q.Prefix.QuantOf(l.Var()) == qbf.Exists {
			return false
		}
	}
	return true
}

// findUnit returns a literal that is unit per Lemma 5's generalized rule.
func findUnit(q *qbf.QBF) (qbf.Lit, bool) {
	for _, c := range q.Matrix {
		for _, l := range c {
			if q.Prefix.QuantOf(l.Var()) != qbf.Exists {
				continue
			}
			unit := true
			for _, m := range c {
				if m == l {
					continue
				}
				if q.Prefix.QuantOf(m.Var()) != qbf.Forall ||
					q.Prefix.Before(m.Var(), l.Var()) {
					unit = false
					break
				}
			}
			if unit {
				return l, true
			}
		}
	}
	return 0, false
}

// findPure returns an assignable monotone literal: an existential l with l̄
// absent from the matrix, or a universal l absent itself (Section III).
func findPure(q *qbf.QBF) (qbf.Lit, bool) {
	pos := make(map[qbf.Var]bool)
	neg := make(map[qbf.Var]bool)
	for _, c := range q.Matrix {
		for _, l := range c {
			if l.Positive() {
				pos[l.Var()] = true
			} else {
				neg[l.Var()] = true
			}
		}
	}
	for _, v := range q.Prefix.Vars() {
		if !pos[v] && !neg[v] {
			continue // untouched by the matrix; harmless to keep
		}
		if q.Prefix.QuantOf(v) == qbf.Exists {
			if !neg[v] {
				return v.PosLit(), true
			}
			if !pos[v] {
				return v.NegLit(), true
			}
		} else {
			if !pos[v] {
				return v.PosLit(), true
			}
			if !neg[v] {
				return v.NegLit(), true
			}
		}
	}
	return 0, false
}

// dedupe removes exact duplicate clauses (after normalization order).
func dedupe(q *qbf.QBF) int {
	seen := make(map[string]bool, len(q.Matrix))
	out := q.Matrix[:0]
	removed := 0
	for _, c := range q.Matrix {
		nc, taut := c.Clone().Normalize()
		if taut {
			removed++
			continue
		}
		key := nc.String()
		if seen[key] {
			removed++
			continue
		}
		seen[key] = true
		out = append(out, nc)
	}
	q.Matrix = out
	return removed
}

// subsume removes clauses that are supersets of another clause. Sound for
// QBFs: if C ⊆ D, the matrix with D is equivalent to the matrix without
// it. Quadratic with an early length sort; adequate for preprocessing.
func subsume(q *qbf.QBF) int {
	ms := make([]qbf.Clause, len(q.Matrix))
	copy(ms, q.Matrix)
	sort.Slice(ms, func(i, j int) bool { return len(ms[i]) < len(ms[j]) })
	removed := make(map[string]bool)
	keyOf := func(c qbf.Clause) string { return c.String() }

	for i, small := range ms {
		if removed[keyOf(small)] {
			continue
		}
		for j := i + 1; j < len(ms); j++ {
			big := ms[j]
			if len(big) <= len(small) || removed[keyOf(big)] {
				continue
			}
			all := true
			for _, l := range small {
				if !big.Has(l) {
					all = false
					break
				}
			}
			if all {
				removed[keyOf(big)] = true
			}
		}
	}
	if len(removed) == 0 {
		return 0
	}
	out := q.Matrix[:0]
	n := 0
	for _, c := range q.Matrix {
		if removed[keyOf(c)] {
			n++
			continue
		}
		out = append(out, c)
	}
	q.Matrix = out
	return n
}
