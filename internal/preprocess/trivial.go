package preprocess

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/qbf"
)

// The two "trivial" evaluations of Cadoli, Giovanardi and Schaerf — the
// simplification rules of the paper's reference [15] that Section III
// mentions alongside pure literal fixing. Both reduce the QBF to a plain
// SAT question that the QCDCL engine answers (a SAT instance is the
// degenerate one-block QBF):
//
//   - trivial truth: delete every universal literal from every clause; if
//     the remaining purely existential matrix is satisfiable, one
//     assignment of the existentials satisfies every clause whatever the
//     universal player does, so the QBF is true. Sound for any prefix
//     shape: the witnessing assignment is constant in the universals.
//
//   - trivial falsity: treat every universal variable as existential; if
//     even that relaxation is unsatisfiable, no play can satisfy the
//     matrix and the QBF is false.
//
// Both are one-sided: a negative answer says nothing.

// TrivialTruth reports whether q is decided true by the trivial-truth test
// within the budget (0 = no limit) under ctx. The second result is false
// when the test was inconclusive, ran out of budget, or was cancelled.
func TrivialTruth(ctx context.Context, q *qbf.QBF, budget time.Duration) (isTrue, decided bool) {
	q.Prefix.Finalize()
	matrix := make([]qbf.Clause, 0, len(q.Matrix))
	for _, c := range q.Matrix {
		nc := make(qbf.Clause, 0, len(c))
		for _, l := range c {
			if q.Prefix.QuantOf(l.Var()) == qbf.Exists {
				nc = append(nc, l)
			}
		}
		if len(nc) == 0 {
			return false, false // a clause with only universal literals
		}
		matrix = append(matrix, nc)
	}
	sat := existentialInstance(q, matrix, false)
	r, err := core.Solve(ctx, sat, core.Options{TimeLimit: budget})
	if err != nil || r.Verdict != core.True {
		return false, false
	}
	return true, true
}

// TrivialFalsity reports whether q is decided false by the trivial-falsity
// test within the budget under ctx.
func TrivialFalsity(ctx context.Context, q *qbf.QBF, budget time.Duration) (isFalse, decided bool) {
	q.Prefix.Finalize()
	sat := existentialInstance(q, q.Matrix, true)
	r, err := core.Solve(ctx, sat, core.Options{TimeLimit: budget})
	if err != nil || r.Verdict != core.False {
		return false, false
	}
	return true, true
}

// existentialInstance builds the one-block SAT relaxation: the given
// matrix under a prefix that binds every variable existentially. When
// keepUniversals is false the matrix must already be universal-free.
func existentialInstance(q *qbf.QBF, matrix []qbf.Clause, keepUniversals bool) *qbf.QBF {
	p := qbf.NewPrefix(q.MaxVar())
	var vars []qbf.Var
	for _, v := range q.Prefix.Vars() {
		if keepUniversals || q.Prefix.QuantOf(v) == qbf.Exists {
			vars = append(vars, v)
		}
	}
	if len(vars) > 0 {
		p.AddBlock(nil, qbf.Exists, vars...)
	}
	p.Finalize()
	m := make([]qbf.Clause, len(matrix))
	for i, c := range matrix {
		m[i] = c.Clone()
	}
	return qbf.New(p, m)
}
