package prenex

import (
	"math/rand"
	"testing"

	"repro/internal/qbf"
)

// paperFormula9 builds the quantifier tree of the paper's formula (9):
// ∃x(∀y1∃x1∀y2∃x2 ϕ0 ∧ ∀y1'∃x1' ϕ1 ∧ ∃x1” ϕ2), with the numbering
// x=1, y1=2, x1=3, y2=4, x2=5, y1'=6, x1'=7, x1”=8.
func paperFormula9() *qbf.QBF {
	p := qbf.NewPrefix(8)
	x := p.AddBlock(nil, qbf.Exists, 1)
	y1 := p.AddBlock(x, qbf.Forall, 2)
	x1 := p.AddBlock(y1, qbf.Exists, 3)
	y2 := p.AddBlock(x1, qbf.Forall, 4)
	p.AddBlock(y2, qbf.Exists, 5)
	y1p := p.AddBlock(x, qbf.Forall, 6)
	p.AddBlock(y1p, qbf.Exists, 7)
	p.AddBlock(x, qbf.Exists, 8)
	p.Finalize()
	matrix := []qbf.Clause{
		{1, 2, -3, 4, 5}, {-2, 3, -5}, // ϕ0
		{1, -6, 7}, {6, -7}, // ϕ1
		{-1, 8}, // ϕ2
	}
	return qbf.New(p, matrix)
}

// slotSignature renders a prenex prefix as level→sorted vars for comparing
// against the paper's expected placements.
func slotSignature(q *qbf.QBF) map[int][]qbf.Var {
	out := make(map[int][]qbf.Var)
	for _, b := range q.Prefix.Blocks() {
		vars := append([]qbf.Var(nil), b.Vars...)
		for i := 1; i < len(vars); i++ {
			for j := i; j > 0 && vars[j] < vars[j-1]; j-- {
				vars[j], vars[j-1] = vars[j-1], vars[j]
			}
		}
		out[b.Level()] = append(out[b.Level()], vars...)
	}
	return out
}

func sameVars(a, b []qbf.Var) bool {
	if len(a) != len(b) {
		return false
	}
	seen := map[qbf.Var]int{}
	for _, v := range a {
		seen[v]++
	}
	for _, v := range b {
		seen[v]--
		if seen[v] < 0 {
			return false
		}
	}
	return true
}

// TestPaperEquation10 pins the outcome of the four strategies on formula
// (9) to the prefixes listed in equation (10) of the paper.
func TestPaperEquation10(t *testing.T) {
	q := paperFormula9()
	want := map[Strategy]map[int][]qbf.Var{
		EUpAUp: {
			1: {1, 8}, 2: {2, 6}, 3: {3, 7}, 4: {4}, 5: {5},
		},
		EUpADown: {
			1: {1, 8}, 2: {2, 6}, 3: {3, 7}, 4: {4}, 5: {5},
		},
		EDownAUp: {
			1: {1}, 2: {2, 6}, 3: {3}, 4: {4}, 5: {5, 7, 8},
		},
		EDownADown: {
			1: {1}, 2: {2}, 3: {3}, 4: {4, 6}, 5: {5, 7, 8},
		},
	}
	for strat, sig := range want {
		got := Apply(q, strat)
		if !got.Prefix.IsPrenex() {
			t.Errorf("%v: result not prenex", strat)
		}
		gs := slotSignature(got)
		if len(gs) != len(sig) {
			t.Errorf("%v: got %d levels, want %d (%v)", strat, len(gs), len(sig), gs)
			continue
		}
		for lvl, vars := range sig {
			if !sameVars(gs[lvl], vars) {
				t.Errorf("%v level %d: got %v, want %v", strat, lvl, gs[lvl], vars)
			}
		}
	}
}

func TestApplyPreservesOrderAndLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 150; i++ {
		q := qbf.RandomQBF(rng, 12, 10)
		origLevel := q.Prefix.MaxLevel()
		for _, strat := range Strategies {
			r := Apply(q, strat)
			if !r.Prefix.IsPrenex() {
				t.Fatalf("iteration %d %v: not prenex: %v", i, strat, r.Prefix)
			}
			// The prenex prefix must extend ≺.
			for _, a := range q.Prefix.Vars() {
				for _, b := range q.Prefix.Vars() {
					if q.Prefix.Before(a, b) && !r.Prefix.Before(a, b) {
						t.Fatalf("iteration %d %v: order %d ≺ %d lost\nfrom %v\nto   %v",
							i, strat, a, b, q.Prefix, r.Prefix)
					}
				}
			}
			// Prenex-optimality: at most one extra level (one may be
			// needed when sibling roots mix quantifiers at level 1).
			if got := r.Prefix.MaxLevel(); got > origLevel+1 {
				t.Fatalf("iteration %d %v: level %d from %d", i, strat, got, origLevel)
			}
		}
	}
}

func TestApplyPreservesValue(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 120; i++ {
		q := qbf.RandomQBF(rng, 9, 8)
		want := qbf.Eval(q)
		for _, strat := range Strategies {
			r := Apply(q, strat)
			if got := qbf.Eval(r); got != want {
				t.Fatalf("iteration %d %v: value changed %v→%v\nfrom %v\nto   %v",
					i, strat, want, got, q, r)
			}
		}
	}
}

func TestMiniscopePreservesValue(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for i := 0; i < 150; i++ {
		q := qbf.RandomQBF(rng, 9, 8)
		want := qbf.Eval(q)
		m := Miniscope(q)
		if _, err := m.ScopeConsistent(); err != nil {
			t.Fatalf("iteration %d: miniscoped formula inconsistent: %v", i, err)
		}
		if got := qbf.Eval(m); got != want {
			t.Fatalf("iteration %d: value changed %v→%v\nfrom %v\nto   %v",
				i, want, got, q, m)
		}
	}
}

func TestMiniscopeSeparatesIndependentParts(t *testing.T) {
	// ∃x1 ∀y2 ∃x3 with two independent halves: (x1 ∨ y2) and (x3).
	// Miniscoping must make x3 and y2 incomparable.
	p := qbf.NewPrenexPrefix(3,
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{1}},
		qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{2}},
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{3}})
	q := qbf.New(p, []qbf.Clause{{1, 2}, {1, -2}, {3, 1}, {-3, 1}})
	m := Miniscope(q)
	if m.Prefix.Comparable(3, 2) {
		t.Errorf("x3 and y2 must become incomparable: %v", m.Prefix)
	}
	if qbf.Eval(m) != qbf.Eval(q) {
		t.Error("miniscoping changed the value")
	}
}

func TestMiniscopeSingleClauseRules(t *testing.T) {
	// ∃x1: clause {x1, 2free?}: use bound-only. ∃x1 (x1 ∨ ¬x1) is a
	// tautology and normalization would drop it; instead: ∃x1 ∀y2 with
	// y2's scope a single clause {y2, x1}: the ∀ rule deletes y2 from it;
	// then x1's scope is the single clause {x1}: the ∃ rule deletes the
	// clause. An unrelated pair keeps the matrix nonempty.
	p := qbf.NewPrenexPrefix(4,
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{1, 3}},
		qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{2, 4}})
	q := qbf.New(p, []qbf.Clause{
		{2, 1},          // y2's only clause → y2 removed → {x1}, then ∃ rule drops it
		{3, 4}, {3, -4}, // keep x3/y4 alive
	})
	m := Miniscope(q)
	if len(m.Matrix) != 2 {
		t.Fatalf("got %d clauses, want 2: %v", len(m.Matrix), m.Matrix)
	}
	if m.Prefix.Bound(1) || m.Prefix.Bound(2) {
		t.Errorf("x1 and y2 must vanish from the prefix: %v", m.Prefix)
	}
	if qbf.Eval(m) != qbf.Eval(q) {
		t.Error("single-clause rules changed the value")
	}
}

func TestMiniscopeUniversalEmptyClause(t *testing.T) {
	// ∀y1 with scope a single clause {y1}: deleting y1 empties the clause
	// and the formula becomes false.
	p := qbf.NewPrenexPrefix(1, qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{1}})
	q := qbf.New(p, []qbf.Clause{{1}})
	m := Miniscope(q)
	if qbf.Eval(m) {
		t.Error("∀y (y) must stay false after miniscoping")
	}
}

func TestPOTOShare(t *testing.T) {
	// The paper's prefix (3): y1 vs {x3,x4} and y2 vs {x1,x2} are the
	// incomparable ∃/∀ pairs: 4 of 2·5 = 10 pairs → 0.4.
	p := qbf.NewPrefix(7)
	root := p.AddBlock(nil, qbf.Exists, 1)
	y1 := p.AddBlock(root, qbf.Forall, 2)
	p.AddBlock(y1, qbf.Exists, 3, 4)
	y2 := p.AddBlock(root, qbf.Forall, 5)
	p.AddBlock(y2, qbf.Exists, 6, 7)
	q := qbf.New(p, nil)
	if got := POTOShare(q); got != 0.4 {
		t.Errorf("POTOShare = %v, want 0.4", got)
	}
	// A prenex prefix has share 0.
	pq := Apply(q, EUpAUp)
	if got := POTOShare(pq); got != 0 {
		t.Errorf("prenex POTOShare = %v, want 0", got)
	}
}

func TestMiniscopeThenSolveAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for i := 0; i < 60; i++ {
		q := qbf.RandomQBF(rng, 10, 9)
		m := Miniscope(q)
		// Re-prenexing the miniscoped tree must also preserve the value.
		for _, strat := range Strategies {
			r := Apply(m, strat)
			if qbf.Eval(r) != qbf.Eval(q) {
				t.Fatalf("iteration %d: miniscope+%v changed the value", i, strat)
			}
		}
	}
}
