package prenex

import (
	"sort"

	"repro/internal/qbf"
)

// msNode is a node of the quantifier tree being grown by Miniscope: either
// a leaf carrying clause indices or an internal node binding one variable.
type msNode struct {
	v        qbf.Var // 0 for leaves
	q        qbf.Quant
	children []*msNode
	clauses  []int // leaf payload: indices into the matrix
}

// msItem is a working item: a subtree plus the set of still-unbound
// variables occurring in it.
type msItem struct {
	node    *msNode
	support map[qbf.Var]bool
}

// Miniscope minimizes the scope of every quantifier of q and returns an
// equivalent QBF whose prefix is the resulting quantifier tree. The input
// may be prenex (the paper's Section VII.D use) or already a tree, in which
// case scopes are shrunk further where the rules allow. Single-clause
// scopes are eliminated: ∃z over one clause containing z satisfies the
// clause, ∀z over one clause deletes z's literals from it.
func Miniscope(q *qbf.QBF) *qbf.QBF {
	p := q.Prefix
	p.Finalize()

	matrix := make([]qbf.Clause, len(q.Matrix))
	for i, c := range q.Matrix {
		matrix[i] = c.Clone()
	}
	removed := make([]bool, len(matrix))

	// One item per clause to start with.
	items := make(map[*msItem]bool)
	itemsByVar := make(map[qbf.Var]map[*msItem]bool)
	addIndex := func(it *msItem) {
		for v := range it.support {
			m := itemsByVar[v]
			if m == nil {
				m = make(map[*msItem]bool)
				itemsByVar[v] = m
			}
			m[it] = true
		}
	}
	for i, c := range matrix {
		it := &msItem{
			node:    &msNode{clauses: []int{i}},
			support: make(map[qbf.Var]bool, len(c)),
		}
		for _, l := range c {
			if p.Bound(l.Var()) {
				it.support[l.Var()] = true
			}
		}
		items[it] = true
		addIndex(it)
	}

	// Process variables from the innermost prefix level outward; within a
	// level, higher variable index first (any order is sound thanks to the
	// same-quantifier swap rule).
	vars := p.Vars()
	sort.Slice(vars, func(i, j int) bool {
		li, lj := p.Level(vars[i]), p.Level(vars[j])
		if li != lj {
			return li > lj
		}
		return vars[i] > vars[j]
	})

	for _, z := range vars {
		group := itemsByVar[z]
		if len(group) == 0 {
			continue // z does not occur: the quantifier is dropped
		}
		quant := p.QuantOf(z)

		if len(group) == 1 {
			var only *msItem
			for it := range group {
				only = it
			}
			if leaf := only.node; leaf.v == 0 && len(leaf.clauses) == 1 {
				// Single-clause scope.
				ci := leaf.clauses[0]
				if quant == qbf.Exists {
					// ∃z C with z occurring in C is true: drop the clause.
					removed[ci] = true
					for v := range only.support {
						delete(itemsByVar[v], only)
					}
					delete(items, only)
					continue
				}
				// ∀z C: delete z's literals from C.
				var nc qbf.Clause
				for _, l := range matrix[ci] {
					if l.Var() != z {
						nc = append(nc, l)
					}
				}
				matrix[ci] = nc
				delete(itemsByVar[z], only)
				delete(only.support, z)
				continue
			}
		}

		// Merge the group under a new Qz node.
		merged := &msItem{
			node:    &msNode{v: z, q: quant},
			support: make(map[qbf.Var]bool),
		}
		for it := range group {
			merged.node.children = append(merged.node.children, it.node)
			for v := range it.support {
				if v != z {
					merged.support[v] = true
				}
			}
			for v := range it.support {
				delete(itemsByVar[v], it)
			}
			delete(items, it)
		}
		items[merged] = true
		addIndex(merged)
	}

	// Build the result. Clauses removed by the ∃-single-clause rule are
	// dropped; clause order is preserved otherwise.
	keep := make([]qbf.Clause, 0, len(matrix))
	for i, c := range matrix {
		if !removed[i] {
			keep = append(keep, c)
		}
	}
	np := qbf.NewPrefix(q.MaxVar())
	var build func(n *msNode, parent *qbf.Block)
	build = func(n *msNode, parent *qbf.Block) {
		if n.v == 0 {
			return // leaf: clauses live in the global matrix
		}
		// Compress single-child same-quantifier chains into one block.
		vars := []qbf.Var{n.v}
		cur := n
		for len(cur.children) == 1 && cur.children[0].v != 0 && cur.children[0].q == n.q {
			cur = cur.children[0]
			vars = append(vars, cur.v)
		}
		b := np.AddBlock(parent, n.q, vars...)
		for _, c := range cur.children {
			build(c, b)
		}
	}
	// Deterministic root order: by smallest variable in the subtree.
	var roots []*msItem
	for it := range items {
		roots = append(roots, it)
	}
	sort.Slice(roots, func(i, j int) bool {
		return minVar(roots[i].node) < minVar(roots[j].node)
	})
	for _, it := range roots {
		build(it.node, nil)
	}
	np.Finalize()
	return qbf.New(np, keep)
}

func minVar(n *msNode) qbf.Var {
	best := qbf.VarOf(1 << 30)
	if n.v != 0 && n.v < best {
		best = n.v
	}
	for _, c := range n.children {
		if m := minVar(c); m < best {
			best = m
		}
	}
	return best
}
