// Package prenex converts between non-prenex (tree shaped) and prenex QBFs.
//
// Apply implements the four prenexing strategies of Egly, Seidl, Tompits,
// Woltran and Zolda ("Comparing different prenexing strategies for
// quantified Boolean formulas", SAT 2003), the strategies the paper uses to
// produce the inputs of QUBE(TO): ∃↑∀↑, ∃↑∀↓, ∃↓∀↑ and ∃↓∀↓. All four are
// prenex-optimal: the resulting totally ordered prefix extends the tree's
// partial order ≺ and has the same prefix level.
//
// Miniscope implements the converse direction of Section VII.D: it shrinks
// quantifier scopes of a prenex QBF with the two rules
//
//	Qz(ϕ ∧ ψ) ↦ (Qzϕ ∧ ψ)        when z does not occur in ψ
//	Q1z1 Q2z2 ϕ ↦ Q2z2 Q1z1 ϕ    when Q1 = Q2
//
// applied from the innermost quantifier outward, plus the single-clause
// scope eliminations (an existential whose scope is one clause satisfies
// it; a universal whose scope is one clause is deleted from it). The
// variable-splitting rule (20) of QUBOS/QUANTOR/sKizzo is deliberately not
// applied, matching the paper.
package prenex

import (
	"fmt"

	"repro/internal/qbf"
)

// Strategy selects one of the four prenexing strategies.
type Strategy int

const (
	// EUpAUp is ∃↑∀↑: both quantifiers as outermost as possible.
	EUpAUp Strategy = iota
	// EUpADown is ∃↑∀↓: existentials outermost, universals innermost.
	EUpADown
	// EDownAUp is ∃↓∀↑.
	EDownAUp
	// EDownADown is ∃↓∀↓.
	EDownADown
)

// Strategies lists all four strategies in the paper's order.
var Strategies = []Strategy{EUpAUp, EDownADown, EDownAUp, EUpADown}

func (s Strategy) String() string {
	switch s {
	case EUpAUp:
		return "Eup-Aup"
	case EUpADown:
		return "Eup-Adown"
	case EDownAUp:
		return "Edown-Aup"
	case EDownADown:
		return "Edown-Adown"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// up reports whether the strategy shifts quantifier q upward.
func (s Strategy) up(q qbf.Quant) bool {
	if q == qbf.Exists {
		return s == EUpAUp || s == EUpADown
	}
	return s == EUpAUp || s == EDownAUp
}

// Apply converts q to prenex form with the given strategy. The matrix is
// shared with the input; only the prefix is rebuilt. Free variables of the
// matrix are left free (they stay outermost existentials either way).
func Apply(q *qbf.QBF, s Strategy) *qbf.QBF {
	p := q.Prefix
	p.Finalize()
	blocks := p.Blocks()
	if len(blocks) == 0 {
		return qbf.New(qbf.NewPrefix(p.MaxVar()), q.Matrix)
	}

	// Choose the parity scheme: slot k holds quantifier scheme(k). Try
	// both starting quantifiers, keep the shorter prefix; break ties in
	// favor of an existential innermost slot (the paper's prenex-optimal
	// convention), then of an existential outermost slot.
	upE, lenE := upSlots(blocks, qbf.Exists)
	upA, lenA := upSlots(blocks, qbf.Forall)
	up, start, total := upE, qbf.Exists, lenE
	switch {
	case lenA < lenE:
		up, start, total = upA, qbf.Forall, lenA
	case lenA == lenE && slotQuant(qbf.Forall, lenA) == qbf.Exists &&
		slotQuant(qbf.Exists, lenE) != qbf.Exists:
		up, start, total = upA, qbf.Forall, lenA
	}

	// Final slots: ↑ blocks take their up slot; ↓ blocks take the lowest
	// slot allowed by their (already placed) children, computed bottom-up
	// over the DFS preorder.
	slot := make([]int, len(blocks))
	for i := len(blocks) - 1; i >= 0; i-- {
		b := blocks[i]
		if s.up(b.Quant) {
			slot[i] = up[i]
			continue
		}
		bound := total
		if slotQuant(start, bound) != b.Quant {
			bound--
		}
		for _, c := range b.Children {
			limit := slot[c.ID()]
			if c.Quant != b.Quant {
				limit--
			}
			if slotQuant(start, limit) != b.Quant {
				limit--
			}
			if limit < bound {
				bound = limit
			}
		}
		slot[i] = bound
	}

	// Assemble the prenex prefix.
	runs := make([]qbf.Run, total)
	for k := 1; k <= total; k++ {
		runs[k-1].Quant = slotQuant(start, k)
	}
	for i, b := range blocks {
		runs[slot[i]-1].Vars = append(runs[slot[i]-1].Vars, b.Vars...)
	}
	var nonEmpty []qbf.Run
	for _, r := range runs {
		if len(r.Vars) > 0 {
			nonEmpty = append(nonEmpty, r)
		}
	}
	return qbf.New(qbf.NewPrenexPrefix(p.MaxVar(), nonEmpty...), q.Matrix)
}

// slotQuant returns the quantifier of slot k in the scheme starting with
// start at slot 1.
func slotQuant(start qbf.Quant, k int) qbf.Quant {
	if k%2 == 1 {
		return start
	}
	return start.Dual()
}

// upSlots computes, top-down, the outermost feasible slot of every block
// under the parity scheme starting with start, together with the number of
// slots used.
func upSlots(blocks []*qbf.Block, start qbf.Quant) ([]int, int) {
	slot := make([]int, len(blocks))
	max := 1
	for i, b := range blocks { // DFS preorder: parents precede children
		min := 1
		if p := b.Parent(); p != nil {
			min = slot[p.ID()]
			if p.Quant != b.Quant {
				min++
			}
		}
		if slotQuant(start, min) != b.Quant {
			min++
		}
		slot[i] = min
		if min > max {
			max = min
		}
	}
	return slot, max
}

// ApplyAll returns the four prenex forms in the order of Strategies.
func ApplyAll(q *qbf.QBF) map[Strategy]*qbf.QBF {
	out := make(map[Strategy]*qbf.QBF, len(Strategies))
	for _, s := range Strategies {
		out[s] = Apply(q, s)
	}
	return out
}

// POTOShare computes the footnote-9 metric of a (tree) QBF: the fraction of
// ∃/∀ variable pairs that are incomparable under ≺. A prenex conversion
// makes every such pair comparable, so this is exactly the share of pairs
// whose order the conversion invents. Instances with a share above 0.2 are
// the ones the paper keeps in the QBFEVAL experiment.
func POTOShare(q *qbf.QBF) float64 {
	p := q.Prefix
	p.Finalize()
	var ex, un []qbf.Var
	for _, b := range p.Blocks() {
		if b.Quant == qbf.Exists {
			ex = append(ex, b.Vars...)
		} else {
			un = append(un, b.Vars...)
		}
	}
	if len(ex) == 0 || len(un) == 0 {
		return 0
	}
	incomparable := 0
	for _, x := range ex {
		for _, y := range un {
			if !p.Comparable(x, y) {
				incomparable++
			}
		}
	}
	return float64(incomparable) / float64(len(ex)*len(un))
}
