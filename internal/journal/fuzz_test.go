package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournal feeds arbitrary bytes to the replay path as a segment file.
// The invariants under fuzz:
//
//   - Open never panics and never errors on arbitrary segment content —
//     corruption is a recovery situation, not a fatal one;
//   - replay returns the longest valid record prefix, and a corrupt
//     record is never replayed: re-encoding the returned records must
//     reproduce the file prefix byte for byte;
//   - recovery is idempotent: Open truncates the torn tail, so a second
//     Open of the same directory returns the identical records with
//     nothing further truncated.
//
// Run with: go test -fuzz=FuzzJournal ./internal/journal/
// Regression corpus: testdata/fuzz/FuzzJournal/ (replayed by plain
// go test).
func FuzzJournal(f *testing.F) {
	valid := encode(nil, Record{Type: 1, Data: []byte(`{"id":"s1","req":{}}`)})
	valid = encode(valid, Record{Type: 2, Data: []byte(`{"id":"s1","seq":1,"ops":[{"op":"push"}]}`)})
	valid = encode(valid, Record{Type: 3, Data: []byte(`{"id":"s1","seq":1,"code":200}`)})

	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-1]) // torn tail mid-record
	f.Add(valid[:headerSize/2]) // torn length prefix
	flipped := bytes.Clone(valid)
	flipped[headerSize+3] ^= 0x01 // bit flip in the first payload
	f.Add(flipped)
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0, 1}) // absurd length prefix
	f.Add(bytes.Repeat([]byte{0}, 64))
	f.Add(append(bytes.Clone(valid), 0xde, 0xad)) // valid stream + garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-00000001.seg"), data, 0o644); err != nil {
			t.Skip("cannot seed segment file")
		}
		j, recs, err := Open(Options{Dir: dir, Fsync: FsyncNever})
		if err != nil {
			t.Fatalf("Open on arbitrary segment content: %v", err)
		}

		// The replayed records must be exactly the file's longest valid
		// prefix — no corrupt record decoded, none skipped.
		var enc []byte
		for _, r := range recs {
			enc = encode(enc, r)
		}
		if !bytes.HasPrefix(data, enc) {
			t.Fatalf("replayed records do not re-encode to a prefix of the input (%d records, %d bytes)",
				len(recs), len(enc))
		}
		if got := j.Stats().TruncatedBytes; got != int64(len(data)-len(enc)) {
			t.Fatalf("TruncatedBytes = %d, want %d", got, len(data)-len(enc))
		}
		if err := j.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		// Recovery is idempotent: the truncated journal reopens cleanly.
		j2, recs2, err := Open(Options{Dir: dir, Fsync: FsyncNever})
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		defer j2.Close() //nolint:errcheck // test teardown
		if len(recs2) != len(recs) {
			t.Fatalf("second Open replayed %d records, first %d", len(recs2), len(recs))
		}
		for i := range recs {
			if recs2[i].Type != recs[i].Type || !bytes.Equal(recs2[i].Data, recs[i].Data) {
				t.Fatalf("record %d differs across reopens", i)
			}
		}
		if got := j2.Stats().TruncatedBytes; got != 0 {
			t.Fatalf("second Open truncated %d bytes from an already-clean journal", got)
		}
	})
}
