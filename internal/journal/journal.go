// Package journal is a segmented append-only write-ahead log for the
// solve service's sticky sessions. The server journals every accepted
// session operation before executing it; on boot it replays the log to
// rebuild the sessions a crash destroyed. The package knows nothing about
// sessions — records are an opaque (type, payload) pair — so the wire
// schema lives with its owner and the log stays reusable.
//
// Records are framed as
//
//	[4-byte LE payload length][4-byte LE CRC32C][1-byte type][payload]
//
// where the checksum covers the type byte and the payload. The framing is
// what makes crash recovery deterministic: a torn write (partial frame at
// the tail) or a corrupted record fails its length or CRC check, and
// replay stops there — Open returns the longest valid prefix, truncates
// the torn tail, and discards any later segments, so a corrupt record is
// never replayed and appends resume from a clean boundary.
//
// The log is a directory of numbered segment files (wal-00000001.seg,
// ...). Append rotates to a fresh segment past the size threshold, and
// Compact atomically replaces the whole history with a caller-provided
// snapshot: the snapshot is written to a new (higher-numbered) segment
// and synced before the old segments are removed, so a crash anywhere in
// between replays old history followed by snapshot records — which the
// owner defines to supersede it.
//
// Durability is tunable per Options.Fsync: FsyncAlways syncs after every
// append (each acknowledged record survives power loss), FsyncInterval
// syncs on a background ticker (bounded loss window, near-zero append
// latency), FsyncNever leaves flushing to the OS. Append returns the
// first write or sync error it observes — including errors from the
// background flusher — and the caller decides whether to degrade; the
// journal itself never panics on a bad disk.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Policy selects when appends are fsynced.
type Policy int

const (
	// FsyncInterval (the default) syncs on a background ticker: a crash
	// loses at most the interval's worth of acknowledged appends.
	FsyncInterval Policy = iota
	// FsyncAlways syncs after every append.
	FsyncAlways
	// FsyncNever leaves flushing to the operating system.
	FsyncNever
)

func (p Policy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "interval"
	}
}

// ParsePolicy is the inverse of Policy.String.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval", "":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("unknown fsync policy %q (want always, interval, or never)", s)
}

// Record is one journal entry: an owner-defined type tag and an opaque
// payload. The journal stores and returns it verbatim.
type Record struct {
	Type uint8
	Data []byte
}

// Options configures Open.
type Options struct {
	// Dir is the journal directory (created if missing; required).
	Dir string
	// Fsync selects the durability policy (zero value: FsyncInterval).
	Fsync Policy
	// FsyncInterval is the background flush period under FsyncInterval
	// (0 = 50ms).
	FsyncInterval time.Duration
	// SegmentBytes rotates to a fresh segment once the current one reaches
	// this size (0 = 4 MiB).
	SegmentBytes int64
	// OnAppend, when non-nil, runs after every durably accepted append
	// with the lifetime append count. It is called with the journal lock
	// held; chaos tests use it to kill the process at an exact point.
	OnAppend func(total int64)
}

func (o Options) withDefaults() Options {
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 50 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// Stats is a point-in-time snapshot of the journal counters.
type Stats struct {
	// Segments and Bytes describe the live segment files.
	Segments int
	Bytes    int64
	// Appends counts records accepted since Open; Syncs counts fsyncs.
	Appends int64
	Syncs   int64
	// Compactions counts successful Compact calls.
	Compactions int64
	// RecoveredRecords is the record count Open replayed;
	// TruncatedBytes is what Open dropped truncating a torn or corrupt
	// tail (0 on a clean open).
	RecoveredRecords int
	TruncatedBytes   int64
}

// ErrClosed is returned by operations on a closed journal.
var ErrClosed = errors.New("journal: closed")

const (
	headerSize = 9 // 4-byte length + 4-byte CRC32C + 1-byte type
	// maxPayload rejects absurd length prefixes during replay so a
	// corrupted length cannot drive a giant allocation.
	maxPayload = 64 << 20
)

// castagnoli is the CRC32C table (the polynomial with hardware support
// on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Journal is an open write-ahead log. Safe for concurrent use.
type Journal struct {
	opts Options

	mu     sync.Mutex
	f      *os.File // current segment, open for append
	seq    int      // current segment number
	size   int64    // current segment size
	bytes  int64    // total bytes across live segments
	oldest int      // lowest live segment number
	closed bool
	err    error // first async (flusher) error, surfaced by Append

	appends     int64
	syncs       int64
	compactions int64
	recovered   int
	truncated   int64

	stopFlush chan struct{}
	flushDone chan struct{}
}

// Open scans dir's segments in order, truncates the tail at the first
// corrupt or torn record (discarding any later segments), and returns the
// journal positioned for appending plus every surviving record in append
// order. The returned records alias freshly read buffers and are the
// caller's to keep.
func Open(opts Options) (*Journal, []Record, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, nil, errors.New("journal: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, nil, err
	}

	j := &Journal{opts: opts, oldest: 1, seq: 1}
	var recs []Record
	for i, seg := range segs {
		data, err := os.ReadFile(segPath(opts.Dir, seg))
		if err != nil {
			return nil, nil, fmt.Errorf("journal: reading segment %d: %w", seg, err)
		}
		segRecs, valid := decodeAll(data)
		recs = append(recs, segRecs...)
		j.bytes += valid
		if valid == int64(len(data)) {
			continue
		}
		// Torn or corrupt tail: keep the valid prefix of this segment and
		// drop everything after the first bad record, later segments
		// included — a record past a corruption point has no trustworthy
		// predecessor state to apply onto.
		j.truncated += int64(len(data)) - valid
		if err := os.Truncate(segPath(opts.Dir, seg), valid); err != nil {
			return nil, nil, fmt.Errorf("journal: truncating torn tail of segment %d: %w", seg, err)
		}
		for _, later := range segs[i+1:] {
			st, statErr := os.Stat(segPath(opts.Dir, later))
			if statErr == nil {
				j.truncated += st.Size()
			}
			if err := os.Remove(segPath(opts.Dir, later)); err != nil {
				return nil, nil, fmt.Errorf("journal: dropping segment %d past corruption: %w", later, err)
			}
		}
		segs = segs[:i+1]
		break
	}
	if len(segs) > 0 {
		j.oldest, j.seq = segs[0], segs[len(segs)-1]
	}
	f, err := os.OpenFile(segPath(opts.Dir, j.seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: opening segment %d: %w", j.seq, err)
	}
	st, err := f.Stat()
	if err != nil {
		closeErr := f.Close()
		return nil, nil, errors.Join(fmt.Errorf("journal: %w", err), closeErr)
	}
	j.f, j.size, j.recovered = f, st.Size(), len(recs)
	if opts.Fsync == FsyncInterval {
		j.stopFlush = make(chan struct{})
		j.flushDone = make(chan struct{})
		go j.flusher()
	}
	return j, recs, nil
}

// listSegments returns the live segment numbers in ascending order.
func listSegments(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var segs []int
	for _, e := range ents {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "wal-%08d.seg", &n); err == nil && n > 0 {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

func segPath(dir string, seq int) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.seg", seq))
}

// decodeAll decodes records from the longest valid prefix of data,
// returning them and that prefix's byte length. It never panics on
// arbitrary input.
func decodeAll(data []byte) ([]Record, int64) {
	var recs []Record
	off := int64(0)
	for {
		rec, n := decodeOne(data[off:])
		if n == 0 {
			return recs, off
		}
		recs = append(recs, rec)
		off += n
	}
}

// decodeOne decodes the frame at the start of b, returning the record and
// the frame length, or a zero length when the frame is torn or corrupt.
func decodeOne(b []byte) (Record, int64) {
	if len(b) < headerSize {
		return Record{}, 0
	}
	plen := int64(binary.LittleEndian.Uint32(b))
	if plen > maxPayload || headerSize+plen > int64(len(b)) {
		return Record{}, 0
	}
	sum := binary.LittleEndian.Uint32(b[4:])
	body := b[8 : headerSize+plen] // type byte + payload
	if crc32.Checksum(body, castagnoli) != sum {
		return Record{}, 0
	}
	data := make([]byte, plen)
	copy(data, body[1:])
	return Record{Type: body[0], Data: data}, headerSize + plen
}

// encode appends rec's frame to buf.
func encode(buf []byte, rec Record) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(rec.Data)))
	hdr[8] = rec.Type
	crc := crc32.Checksum(hdr[8:9], castagnoli)
	crc = crc32.Update(crc, castagnoli, rec.Data)
	binary.LittleEndian.PutUint32(hdr[4:], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, rec.Data...)
}

// Append writes one record, rotating segments past the size threshold and
// syncing per the policy. The first write or sync failure — its own or a
// prior background flush's — is returned; the record is not considered
// durable then and the caller decides whether to degrade.
func (j *Journal) Append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(rec)
}

func (j *Journal) appendLocked(rec Record) error {
	if j.closed {
		return ErrClosed
	}
	if j.err != nil {
		return j.err
	}
	frame := encode(nil, rec)
	if j.size > 0 && j.size+int64(len(frame)) > j.opts.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := j.f.Write(frame)
	j.size += int64(n)
	j.bytes += int64(n)
	if err != nil {
		j.err = fmt.Errorf("journal: append: %w", err)
		return j.err
	}
	if j.opts.Fsync == FsyncAlways {
		if err := j.f.Sync(); err != nil {
			j.err = fmt.Errorf("journal: sync: %w", err)
			return j.err
		}
		j.syncs++
	}
	j.appends++
	if j.opts.OnAppend != nil {
		j.opts.OnAppend(j.appends)
	}
	return nil
}

// rotateLocked syncs and closes the current segment and opens the next.
func (j *Journal) rotateLocked() error {
	if err := j.f.Sync(); err != nil {
		j.err = fmt.Errorf("journal: sync on rotate: %w", err)
		return j.err
	}
	j.syncs++
	if err := j.f.Close(); err != nil {
		j.err = fmt.Errorf("journal: close on rotate: %w", err)
		return j.err
	}
	f, err := os.OpenFile(segPath(j.opts.Dir, j.seq+1), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		j.err = fmt.Errorf("journal: rotate: %w", err)
		return j.err
	}
	j.seq++
	j.f, j.size = f, 0
	return nil
}

// Compact atomically replaces the journal's entire history with the given
// snapshot records: they are written to a fresh segment and synced before
// any old segment is removed. The caller must guarantee the snapshot
// captures everything the history it replaces did — the server does so by
// holding every session lock across the call. On error the old history is
// left in place and the journal keeps appending to it.
func (j *Journal) Compact(snapshot []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.err != nil {
		return j.err
	}
	var buf []byte
	for _, rec := range snapshot {
		buf = encode(buf, rec)
	}
	seq := j.seq + 1
	path := segPath(j.opts.Dir, seq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		j.err = fmt.Errorf("journal: compact: %w", err)
		return j.err
	}
	if _, err := f.Write(buf); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		// The partial snapshot segment is harmless if left behind (its
		// records supersede history, and a torn tail truncates), but try
		// to keep the directory tidy.
		os.Remove(path) //nolint:errcheck // best-effort cleanup of a failed compaction
		j.err = fmt.Errorf("journal: compact: %w", err)
		return j.err
	}
	// The snapshot is durable; retire the history it replaces.
	if err := j.f.Close(); err != nil {
		j.err = fmt.Errorf("journal: compact: closing old segment: %w", err)
		return j.err
	}
	for s := j.oldest; s <= j.seq; s++ {
		if err := os.Remove(segPath(j.opts.Dir, s)); err != nil && !errors.Is(err, os.ErrNotExist) {
			j.err = fmt.Errorf("journal: compact: removing segment %d: %w", s, err)
			return j.err
		}
	}
	af, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		j.err = fmt.Errorf("journal: compact: reopening snapshot segment: %w", err)
		return j.err
	}
	j.f, j.seq, j.oldest, j.size = af, seq, seq, int64(len(buf))
	j.bytes = int64(len(buf))
	j.syncs++
	j.compactions++
	return nil
}

// Sync flushes the current segment to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.err != nil {
		return j.err
	}
	if err := j.f.Sync(); err != nil {
		j.err = fmt.Errorf("journal: sync: %w", err)
		return j.err
	}
	j.syncs++
	return nil
}

// flusher is the FsyncInterval background loop; Close stops it.
func (j *Journal) flusher() {
	defer close(j.flushDone)
	tick := time.NewTicker(j.opts.FsyncInterval)
	defer tick.Stop()
	for {
		select {
		case <-j.stopFlush:
			return
		case <-tick.C:
			j.mu.Lock()
			if !j.closed && j.err == nil {
				if err := j.f.Sync(); err != nil {
					// Surfaced by the next Append so the owner can degrade.
					j.err = fmt.Errorf("journal: background sync: %w", err)
				} else {
					j.syncs++
				}
			}
			j.mu.Unlock()
		}
	}
}

// Close stops the background flusher, syncs, and closes the current
// segment. Appends after Close fail with ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	j.closed = true
	stop, done := j.stopFlush, j.flushDone
	err := j.err
	if serr := j.f.Sync(); err == nil {
		err = serr
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return err
}

// Stats reports the journal counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{
		Segments:         j.seq - j.oldest + 1,
		Bytes:            j.bytes,
		Appends:          j.appends,
		Syncs:            j.syncs,
		Compactions:      j.compactions,
		RecoveredRecords: j.recovered,
		TruncatedBytes:   j.truncated,
	}
}
