package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mustOpen(t *testing.T, opts Options) (*Journal, []Record) {
	t.Helper()
	j, recs, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j, recs
}

func rec(typ uint8, data string) Record { return Record{Type: typ, Data: []byte(data)} }

func appendAll(t *testing.T, j *Journal, recs ...Record) {
	t.Helper()
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatalf("Append(%d): %v", r.Type, err)
		}
	}
}

func wantRecords(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Fatalf("record %d: got (%d, %q), want (%d, %q)",
				i, got[i].Type, got[i].Data, want[i].Type, want[i].Data)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := []Record{rec(1, "open"), rec(2, "ops"), rec(3, ""), rec(4, "close")}
	j, recs := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways})
	wantRecords(t, recs, nil)
	appendAll(t, j, want...)
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, recs2 := mustOpen(t, Options{Dir: dir})
	defer j2.Close() //nolint:errcheck // test teardown
	wantRecords(t, recs2, want)
	st := j2.Stats()
	if st.RecoveredRecords != len(want) || st.TruncatedBytes != 0 {
		t.Fatalf("stats after clean reopen: %+v", st)
	}
}

func TestRotationAndReplay(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 64, Fsync: FsyncNever})
	var want []Record
	for i := 0; i < 40; i++ {
		r := rec(2, fmt.Sprintf("payload-%02d", i))
		want = append(want, r)
		appendAll(t, j, r)
	}
	if st := j.Stats(); st.Segments < 2 {
		t.Fatalf("expected rotation, got %d segment(s)", st.Segments)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j2, recs := mustOpen(t, Options{Dir: dir})
	defer j2.Close() //nolint:errcheck // test teardown
	wantRecords(t, recs, want)
}

// TestTornTail truncates the last segment mid-record: replay must return
// every record before the tear, the file must be truncated to that
// boundary, and subsequent appends must land cleanly after it.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir, Fsync: FsyncNever})
	appendAll(t, j, rec(1, "alpha"), rec(2, "beta"), rec(3, "gamma"))
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	seg := filepath.Join(dir, "wal-00000001.seg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, int64(len(data)-3)); err != nil {
		t.Fatal(err)
	}

	j2, recs := mustOpen(t, Options{Dir: dir, Fsync: FsyncNever})
	wantRecords(t, recs, []Record{rec(1, "alpha"), rec(2, "beta")})
	if st := j2.Stats(); st.TruncatedBytes == 0 {
		t.Fatalf("expected truncated bytes, got %+v", st)
	}
	appendAll(t, j2, rec(4, "delta"))
	if err := j2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j3, recs3 := mustOpen(t, Options{Dir: dir})
	defer j3.Close() //nolint:errcheck // test teardown
	wantRecords(t, recs3, []Record{rec(1, "alpha"), rec(2, "beta"), rec(4, "delta")})
}

// TestBitFlip corrupts a byte inside the first record of the first
// segment: nothing after the corruption may be replayed, including whole
// later segments.
func TestBitFlip(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 32, Fsync: FsyncNever})
	for i := 0; i < 10; i++ {
		appendAll(t, j, rec(2, fmt.Sprintf("record-%d", i)))
	}
	if st := j.Stats(); st.Segments < 2 {
		t.Fatalf("expected rotation, got %d segment(s)", st.Segments)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	seg := filepath.Join(dir, "wal-00000001.seg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+2] ^= 0x40 // flip a payload bit in the first record
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, recs := mustOpen(t, Options{Dir: dir})
	defer j2.Close() //nolint:errcheck // test teardown
	wantRecords(t, recs, nil)
	if segs, err := listSegments(dir); err != nil || len(segs) != 1 {
		t.Fatalf("later segments must be dropped past corruption: %v %v", segs, err)
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 48, Fsync: FsyncNever})
	for i := 0; i < 20; i++ {
		appendAll(t, j, rec(2, fmt.Sprintf("history-%02d", i)))
	}
	snap := []Record{rec(5, "snapshot-a"), rec(5, "snapshot-b")}
	if err := j.Compact(snap); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if st := j.Stats(); st.Segments != 1 || st.Compactions != 1 {
		t.Fatalf("stats after compact: %+v", st)
	}
	appendAll(t, j, rec(2, "after"))
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j2, recs := mustOpen(t, Options{Dir: dir})
	defer j2.Close() //nolint:errcheck // test teardown
	wantRecords(t, recs, []Record{rec(5, "snapshot-a"), rec(5, "snapshot-b"), rec(2, "after")})
}

func TestAppendAfterCloseFails(t *testing.T) {
	j, _ := mustOpen(t, Options{Dir: t.TempDir()})
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := j.Append(rec(1, "x")); err != ErrClosed {
		t.Fatalf("Append after Close: got %v, want ErrClosed", err)
	}
	if err := j.Compact(nil); err != ErrClosed {
		t.Fatalf("Compact after Close: got %v, want ErrClosed", err)
	}
}

func TestIntervalFlusher(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir, Fsync: FsyncInterval, FsyncInterval: time.Millisecond})
	appendAll(t, j, rec(1, "tick"))
	deadline := time.Now().Add(2 * time.Second)
	for j.Stats().Syncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background flusher never synced")
		}
		time.Sleep(time.Millisecond)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestOnAppendHook(t *testing.T) {
	var seen []int64
	j, _ := mustOpen(t, Options{Dir: t.TempDir(), OnAppend: func(n int64) { seen = append(seen, n) }})
	appendAll(t, j, rec(1, "a"), rec(1, "b"))
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("OnAppend saw %v, want [1 2]", seen)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
	}{{"always", FsyncAlways}, {"interval", FsyncInterval}, {"", FsyncInterval}, {"never", FsyncNever}} {
		p, err := ParsePolicy(tc.in)
		if err != nil || p != tc.want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", tc.in, p, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("ParsePolicy accepted an unknown policy")
	}
}

func TestHugeLengthPrefixRejected(t *testing.T) {
	dir := t.TempDir()
	// A frame whose length prefix claims far more payload than exists must
	// be treated as a torn tail, not an allocation request.
	frame := encode(nil, rec(1, "ok"))
	bogus := append(frame, 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0, 1)
	if err := os.WriteFile(filepath.Join(dir, "wal-00000001.seg"), bogus, 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs := mustOpen(t, Options{Dir: dir})
	defer j.Close() //nolint:errcheck // test teardown
	wantRecords(t, recs, []Record{rec(1, "ok")})
}
