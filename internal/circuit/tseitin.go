package circuit

import (
	"repro/internal/invariant"
	"repro/internal/qbf"
)

// VarAlloc hands out fresh variable indices above the formula's input
// variables; the Tseitin definition variables of Section VII.C ("x is a
// variable introduced by the CNF conversion") come from here so that the
// encoder can quantify them innermost existentially.
type VarAlloc struct {
	next qbf.Var
}

// NewVarAlloc returns an allocator whose first fresh variable is first.
func NewVarAlloc(first qbf.Var) *VarAlloc { return &VarAlloc{next: first} }

// Fresh returns the next unused variable.
func (a *VarAlloc) Fresh() qbf.Var {
	v := a.next
	a.next++
	return v
}

// Next returns the next variable that Fresh would hand out.
func (a *VarAlloc) Next() qbf.Var { return a.next }

// CNF is the result of a Tseitin conversion: a literal equivalent to the
// root formula, the defining clauses, and the fresh definition variables in
// allocation order.
type CNF struct {
	Root    qbf.Lit
	Clauses []qbf.Clause
	Fresh   []qbf.Var
}

// Tseitin converts the formula rooted at n into CNF with full (two sided)
// Tseitin definitions: the returned Root literal is true exactly when the
// formula is, under the returned Clauses, and the definitions force each
// fresh variable's value from the inputs. Shared subgraphs are converted
// once.
func (b *Builder) Tseitin(n Node, alloc *VarAlloc) CNF {
	t := &tseitin{b: b, alloc: alloc, lits: make(map[Node]qbf.Lit)}
	root := t.lit(n)
	return CNF{Root: root, Clauses: t.clauses, Fresh: t.fresh}
}

type tseitin struct {
	b       *Builder
	alloc   *VarAlloc
	lits    map[Node]qbf.Lit
	clauses []qbf.Clause
	fresh   []qbf.Var
}

func (t *tseitin) lit(n Node) qbf.Lit {
	if n < 0 {
		return t.lit(-n).Neg()
	}
	if l, ok := t.lits[n]; ok {
		return l
	}
	g := t.b.gates[n]
	var l qbf.Lit
	switch g.op {
	case OpConst:
		// Represent true with a fresh variable forced to true; constants
		// are rare after the Builder's folding.
		v := t.alloc.Fresh()
		t.fresh = append(t.fresh, v)
		l = v.PosLit()
		t.clauses = append(t.clauses, qbf.Clause{l})
	case OpVar:
		l = g.v.PosLit()
	case OpAnd:
		args := t.args(g)
		v := t.alloc.Fresh()
		t.fresh = append(t.fresh, v)
		l = v.PosLit()
		// v → each arg; all args → v.
		long := make(qbf.Clause, 0, len(args)+1)
		long = append(long, l)
		for _, a := range args {
			t.clauses = append(t.clauses, qbf.Clause{l.Neg(), a})
			long = append(long, a.Neg())
		}
		t.clauses = append(t.clauses, long)
	case OpOr:
		args := t.args(g)
		v := t.alloc.Fresh()
		t.fresh = append(t.fresh, v)
		l = v.PosLit()
		long := make(qbf.Clause, 0, len(args)+1)
		long = append(long, l.Neg())
		for _, a := range args {
			t.clauses = append(t.clauses, qbf.Clause{l, a.Neg()})
			long = append(long, a)
		}
		t.clauses = append(t.clauses, long)
	case OpXor:
		a, c := t.lit(g.args[0]), t.lit(g.args[1])
		v := t.alloc.Fresh()
		t.fresh = append(t.fresh, v)
		l = v.PosLit()
		t.clauses = append(t.clauses,
			qbf.Clause{l.Neg(), a, c},
			qbf.Clause{l.Neg(), a.Neg(), c.Neg()},
			qbf.Clause{l, a, c.Neg()},
			qbf.Clause{l, a.Neg(), c},
		)
	case OpIff:
		a, c := t.lit(g.args[0]), t.lit(g.args[1])
		v := t.alloc.Fresh()
		t.fresh = append(t.fresh, v)
		l = v.PosLit()
		t.clauses = append(t.clauses,
			qbf.Clause{l.Neg(), a.Neg(), c},
			qbf.Clause{l.Neg(), a, c.Neg()},
			qbf.Clause{l, a, c},
			qbf.Clause{l, a.Neg(), c.Neg()},
		)
	default:
		invariant.Violated("circuit: unknown op in Tseitin")
	}
	t.lits[n] = l
	return l
}

func (t *tseitin) args(g gate) []qbf.Lit {
	out := make([]qbf.Lit, len(g.args))
	for i, a := range g.args {
		out[i] = t.lit(a)
	}
	return out
}
