// Package circuit provides a hash-consed boolean formula DAG (the role the
// propositional extraction of NuSMV's BMC front end and the clause-form
// conversions of Jackson–Sheridan play in the paper) together with a
// Tseitin-style CNF converter. The diameter-calculation workload (Section
// VII.C) builds its I(s), T(s,s') and φn formulas with this package and
// converts the matrix to CNF before handing it to the solver.
package circuit

import (
	"fmt"

	"repro/internal/invariant"
	"repro/internal/qbf"
)

// Op is a gate kind.
type Op int8

const (
	// OpConst is a boolean constant (True/False distinguished by Node sign).
	OpConst Op = iota
	// OpVar is an input variable.
	OpVar
	// OpAnd is an n-ary conjunction.
	OpAnd
	// OpOr is an n-ary disjunction.
	OpOr
	// OpXor is a binary exclusive or.
	OpXor
	// OpIff is a binary equivalence.
	OpIff
)

// Node is a reference to a gate in a Builder. Negative values denote the
// negation of the gate |Node|; node 1 is the constant true, so -1 is false.
// The zero Node is invalid.
type Node int32

// Neg returns the negation of n.
func (n Node) Neg() Node { return -n }

type gate struct {
	op   Op
	v    qbf.Var // OpVar
	args []Node  // OpAnd, OpOr (n-ary), OpXor, OpIff (binary)
}

// Builder owns a DAG of gates with structural hashing: building the same
// gate twice returns the same Node, which keeps Tseitin conversion compact.
type Builder struct {
	gates []gate // index 0 unused; index 1 is the constant true
	hash  map[string]Node
	vars  map[qbf.Var]Node
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	b := &Builder{
		hash: make(map[string]Node),
		vars: make(map[qbf.Var]Node),
	}
	b.gates = append(b.gates, gate{}, gate{op: OpConst})
	return b
}

// True returns the constant true node.
func (b *Builder) True() Node { return 1 }

// False returns the constant false node.
func (b *Builder) False() Node { return -1 }

// Var returns the node of input variable v, creating it on first use.
func (b *Builder) Var(v qbf.Var) Node {
	if v <= 0 {
		invariant.Violated("circuit: invalid variable %d", v)
	}
	if n, ok := b.vars[v]; ok {
		return n
	}
	n := b.push(gate{op: OpVar, v: v})
	b.vars[v] = n
	return n
}

// Lit returns the node for a qbf literal.
func (b *Builder) Lit(l qbf.Lit) Node {
	n := b.Var(l.Var())
	if !l.Positive() {
		n = n.Neg()
	}
	return n
}

func (b *Builder) push(g gate) Node {
	key := gateKey(g)
	if n, ok := b.hash[key]; ok {
		return n
	}
	b.gates = append(b.gates, g)
	n := Node(len(b.gates) - 1)
	b.hash[key] = n
	return n
}

func gateKey(g gate) string {
	key := fmt.Sprintf("%d:%d:", g.op, g.v)
	for _, a := range g.args {
		key += fmt.Sprintf("%d,", a)
	}
	return key
}

// Not returns the negation of n.
func (b *Builder) Not(n Node) Node { return -n }

// And returns the conjunction of ns with constant folding and
// single-operand simplification.
func (b *Builder) And(ns ...Node) Node {
	args := make([]Node, 0, len(ns))
	for _, n := range ns {
		switch n {
		case b.True():
			continue
		case b.False():
			return b.False()
		}
		args = append(args, n)
	}
	switch len(args) {
	case 0:
		return b.True()
	case 1:
		return args[0]
	}
	return b.push(gate{op: OpAnd, args: args})
}

// Or returns the disjunction of ns with constant folding.
func (b *Builder) Or(ns ...Node) Node {
	args := make([]Node, 0, len(ns))
	for _, n := range ns {
		switch n {
		case b.False():
			continue
		case b.True():
			return b.True()
		}
		args = append(args, n)
	}
	switch len(args) {
	case 0:
		return b.False()
	case 1:
		return args[0]
	}
	return b.push(gate{op: OpOr, args: args})
}

// Xor returns x ⊕ y.
func (b *Builder) Xor(x, y Node) Node {
	switch {
	case x == b.False():
		return y
	case y == b.False():
		return x
	case x == b.True():
		return y.Neg()
	case y == b.True():
		return x.Neg()
	case x == y:
		return b.False()
	case x == y.Neg():
		return b.True()
	}
	return b.push(gate{op: OpXor, args: []Node{x, y}})
}

// Iff returns x ≡ y.
func (b *Builder) Iff(x, y Node) Node { return b.Xor(x, y).Neg() }

// Implies returns x ⇒ y.
func (b *Builder) Implies(x, y Node) Node { return b.Or(x.Neg(), y) }

// Ite returns if-then-else(c, t, e).
func (b *Builder) Ite(c, t, e Node) Node {
	return b.Or(b.And(c, t), b.And(c.Neg(), e))
}

// Eval computes the value of n under the input assignment asg (indexed by
// variable). Missing variables default to false.
func (b *Builder) Eval(n Node, asg map[qbf.Var]bool) bool {
	memo := make(map[Node]bool)
	return b.eval(n, asg, memo)
}

func (b *Builder) eval(n Node, asg map[qbf.Var]bool, memo map[Node]bool) bool {
	if n < 0 {
		return !b.eval(-n, asg, memo)
	}
	if v, ok := memo[n]; ok {
		return v
	}
	g := b.gates[n]
	var out bool
	switch g.op {
	case OpConst:
		out = true
	case OpVar:
		out = asg[g.v]
	case OpAnd:
		out = true
		for _, a := range g.args {
			if !b.eval(a, asg, memo) {
				out = false
				break
			}
		}
	case OpOr:
		out = false
		for _, a := range g.args {
			if b.eval(a, asg, memo) {
				out = true
				break
			}
		}
	case OpXor:
		out = b.eval(g.args[0], asg, memo) != b.eval(g.args[1], asg, memo)
	case OpIff:
		out = b.eval(g.args[0], asg, memo) == b.eval(g.args[1], asg, memo)
	default:
		invariant.Violated("circuit: unknown op")
	}
	memo[n] = out
	return out
}

// InputVars returns the set of input variables n depends on.
func (b *Builder) InputVars(n Node) map[qbf.Var]bool {
	out := make(map[qbf.Var]bool)
	seen := make(map[Node]bool)
	var walk func(n Node)
	walk = func(n Node) {
		if n < 0 {
			n = -n
		}
		if seen[n] {
			return
		}
		seen[n] = true
		g := b.gates[n]
		if g.op == OpVar {
			out[g.v] = true
		}
		for _, a := range g.args {
			walk(a)
		}
	}
	walk(n)
	return out
}
