package circuit

import (
	"math/rand"
	"testing"

	"repro/internal/qbf"
)

func TestBuilderFolding(t *testing.T) {
	b := NewBuilder()
	x, y := b.Var(1), b.Var(2)
	if b.And() != b.True() || b.Or() != b.False() {
		t.Error("empty And/Or must fold to constants")
	}
	if b.And(x, b.True()) != x || b.Or(x, b.False()) != x {
		t.Error("identity folding broken")
	}
	if b.And(x, b.False()) != b.False() || b.Or(x, b.True()) != b.True() {
		t.Error("absorbing folding broken")
	}
	if b.Xor(x, x) != b.False() || b.Xor(x, x.Neg()) != b.True() {
		t.Error("xor folding broken")
	}
	if b.Xor(x, b.False()) != x || b.Xor(x, b.True()) != x.Neg() {
		t.Error("xor constant folding broken")
	}
	if b.And(x, y) != b.And(x, y) {
		t.Error("structural hashing must return the same node")
	}
	if b.Not(b.Not(x)) != x {
		t.Error("double negation must cancel")
	}
}

func TestEvalGates(t *testing.T) {
	b := NewBuilder()
	x, y, z := b.Var(1), b.Var(2), b.Var(3)
	formula := b.Or(b.And(x, y.Neg()), b.Iff(y, z))
	cases := []struct {
		vx, vy, vz bool
		want       bool
	}{
		{true, false, false, true},  // x∧¬y
		{false, true, true, true},   // y≡z
		{false, true, false, false}, // neither
		{true, true, true, true},    // y≡z
		{false, false, false, true}, // y≡z
		{false, false, true, false}, // neither
	}
	for _, c := range cases {
		asg := map[qbf.Var]bool{1: c.vx, 2: c.vy, 3: c.vz}
		if got := b.Eval(formula, asg); got != c.want {
			t.Errorf("Eval(%v,%v,%v) = %v, want %v", c.vx, c.vy, c.vz, got, c.want)
		}
	}
	if !b.Eval(b.Ite(x, y, z), map[qbf.Var]bool{1: true, 2: true}) {
		t.Error("Ite(true, true, _) must be true")
	}
	if b.Eval(b.Implies(x, y), map[qbf.Var]bool{1: true, 2: false}) {
		t.Error("true ⇒ false must be false")
	}
}

func TestInputVars(t *testing.T) {
	b := NewBuilder()
	f := b.And(b.Var(2), b.Or(b.Var(5), b.Var(2).Neg()))
	vars := b.InputVars(f)
	if len(vars) != 2 || !vars[2] || !vars[5] {
		t.Errorf("InputVars = %v, want {2,5}", vars)
	}
}

// randomCircuit builds a random formula over variables 1..nv.
func randomCircuit(rng *rand.Rand, b *Builder, nv, depth int) Node {
	if depth == 0 || rng.Intn(4) == 0 {
		n := b.Var(qbf.Var(1 + rng.Intn(nv)))
		if rng.Intn(2) == 0 {
			n = n.Neg()
		}
		return n
	}
	switch rng.Intn(4) {
	case 0:
		return b.And(randomCircuit(rng, b, nv, depth-1), randomCircuit(rng, b, nv, depth-1))
	case 1:
		return b.Or(randomCircuit(rng, b, nv, depth-1), randomCircuit(rng, b, nv, depth-1))
	case 2:
		return b.Xor(randomCircuit(rng, b, nv, depth-1), randomCircuit(rng, b, nv, depth-1))
	default:
		return b.Iff(randomCircuit(rng, b, nv, depth-1), randomCircuit(rng, b, nv, depth-1))
	}
}

// TestTseitinEquisatisfiable checks, for random circuits and every input
// assignment, that the CNF with the inputs fixed as unit clauses forces the
// root literal to the circuit's value: the CNF plus input units plus the
// root literal (asserted to the circuit value) is satisfiable, and with the
// opposite root literal it is unsatisfiable.
func TestTseitinEquisatisfiable(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const nv = 4
	for i := 0; i < 60; i++ {
		b := NewBuilder()
		root := randomCircuit(rng, b, nv, 3)
		alloc := NewVarAlloc(nv + 1)
		cnf := b.Tseitin(root, alloc)
		for mask := 0; mask < 1<<nv; mask++ {
			asg := make(map[qbf.Var]bool, nv)
			units := make([]qbf.Clause, 0, nv+1)
			for v := 1; v <= nv; v++ {
				val := mask&(1<<(v-1)) != 0
				asg[qbf.Var(v)] = val
				l := qbf.Var(v).PosLit()
				if !val {
					l = l.Neg()
				}
				units = append(units, qbf.Clause{l})
			}
			want := b.Eval(root, asg)

			for _, polarity := range []bool{true, false} {
				rootLit := cnf.Root
				if !polarity {
					rootLit = rootLit.Neg()
				}
				matrix := make([]qbf.Clause, 0, len(cnf.Clauses)+nv+1)
				matrix = append(matrix, cnf.Clauses...)
				matrix = append(matrix, units...)
				matrix = append(matrix, qbf.Clause{rootLit})
				all := qbf.NewPrefix(int(alloc.Next()) - 1)
				var vars []qbf.Var
				for v := qbf.Var(1); v < alloc.Next(); v++ {
					vars = append(vars, v)
				}
				all.AddBlock(nil, qbf.Exists, vars...)
				all.Finalize()
				sat := qbf.Eval(qbf.New(all, matrix))
				if polarity && sat != want {
					t.Fatalf("circuit %d mask %b: CNF⊨root=%v, circuit=%v", i, mask, sat, want)
				}
				if !polarity && sat == want {
					t.Fatalf("circuit %d mask %b: CNF with ¬root must be satisfiable iff circuit false", i, mask)
				}
			}
		}
	}
}

func TestTseitinSharing(t *testing.T) {
	b := NewBuilder()
	x, y := b.Var(1), b.Var(2)
	shared := b.And(x, y)
	root := b.Or(shared, b.Xor(shared, y))
	cnf := b.Tseitin(root, NewVarAlloc(3))
	// shared is converted once: fresh vars = {and, xor, or} = 3.
	if len(cnf.Fresh) != 3 {
		t.Errorf("got %d fresh vars, want 3 (shared subgraph converted once)", len(cnf.Fresh))
	}
}

func TestTseitinConstants(t *testing.T) {
	b := NewBuilder()
	cnf := b.Tseitin(b.True(), NewVarAlloc(1))
	matrix := append([]qbf.Clause{}, cnf.Clauses...)
	matrix = append(matrix, qbf.Clause{cnf.Root})
	p := qbf.NewPrefix(int(cnf.Root.Var()))
	p.AddBlock(nil, qbf.Exists, cnf.Root.Var())
	p.Finalize()
	if !qbf.Eval(qbf.New(p, matrix)) {
		t.Error("Tseitin(true) must be satisfiable with root asserted")
	}
}
