package circuit

import (
	"math/rand"
	"testing"

	"repro/internal/qbf"
)

// satWith decides satisfiability of clauses ∪ units with all variables
// existential, via the qbf oracle.
func satWith(t *testing.T, maxVar qbf.Var, clauses []qbf.Clause, units []qbf.Lit) bool {
	t.Helper()
	matrix := append([]qbf.Clause{}, clauses...)
	for _, u := range units {
		matrix = append(matrix, qbf.Clause{u})
	}
	p := qbf.NewPrefix(int(maxVar))
	var vars []qbf.Var
	for v := qbf.Var(1); v <= maxVar; v++ {
		vars = append(vars, v)
	}
	p.AddBlock(nil, qbf.Exists, vars...)
	p.Finalize()
	return qbf.Eval(qbf.New(p, matrix))
}

// TestTseitinPGPolarity: under Pos polarity, CNF + inputs + root is
// satisfiable iff the circuit evaluates true; under Neg polarity, CNF +
// inputs + ¬root is satisfiable iff the circuit evaluates false. Unlike
// the full conversion, the opposite direction need not be forced.
func TestTseitinPGPolarity(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	const nv = 4
	for i := 0; i < 50; i++ {
		b := NewBuilder()
		root := randomCircuit(rng, b, nv, 3)
		for _, pol := range []Polarity{Pos, Neg} {
			alloc := NewVarAlloc(nv + 1)
			cnf := b.TseitinPG(root, pol, alloc)
			for mask := 0; mask < 1<<nv; mask++ {
				asg := make(map[qbf.Var]bool, nv)
				units := make([]qbf.Lit, 0, nv+1)
				for v := 1; v <= nv; v++ {
					val := mask&(1<<(v-1)) != 0
					asg[qbf.Var(v)] = val
					l := qbf.Var(v).PosLit()
					if !val {
						l = l.Neg()
					}
					units = append(units, l)
				}
				val := b.Eval(root, asg)

				rootLit := cnf.Root
				want := val
				if pol == Neg {
					rootLit = rootLit.Neg()
					want = !val
				}
				got := satWith(t, alloc.Next()-1, cnf.Clauses, append(units, rootLit))
				if got != want {
					t.Fatalf("circuit %d pol %d mask %b: sat=%v circuit=%v", i, pol, mask, got, val)
				}
			}
		}
	}
}

// TestTseitinPGSmaller: on AND/OR-only circuits the PG conversion emits at
// most as many clauses as the full two-sided conversion.
func TestTseitinPGSmaller(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for i := 0; i < 40; i++ {
		b := NewBuilder()
		// Bias towards AND/OR by rebuilding xor-free circuits.
		var build func(depth int) Node
		build = func(depth int) Node {
			if depth == 0 || rng.Intn(4) == 0 {
				n := b.Var(qbf.Var(1 + rng.Intn(4)))
				if rng.Intn(2) == 0 {
					n = n.Neg()
				}
				return n
			}
			if rng.Intn(2) == 0 {
				return b.And(build(depth-1), build(depth-1))
			}
			return b.Or(build(depth-1), build(depth-1))
		}
		root := build(4)
		full := b.Tseitin(root, NewVarAlloc(10))
		pg := b.TseitinPG(root, Pos, NewVarAlloc(10))
		if len(pg.Clauses) > len(full.Clauses) {
			t.Fatalf("circuit %d: PG has %d clauses, full %d", i, len(pg.Clauses), len(full.Clauses))
		}
	}
}

// TestTseitinPGSharedBothPolarities: a gate used under both polarities gets
// both definition directions but only one definition variable.
func TestTseitinPGSharedBothPolarities(t *testing.T) {
	b := NewBuilder()
	x, y := b.Var(1), b.Var(2)
	shared := b.And(x, y)
	// Xor forces both polarities onto its arguments.
	root := b.Xor(shared, y)
	cnf := b.TseitinPG(root, Pos, NewVarAlloc(3))
	if len(cnf.Fresh) != 2 { // one for the AND, one for the XOR
		t.Errorf("fresh vars = %d, want 2", len(cnf.Fresh))
	}
}

func TestTseitinPGConstant(t *testing.T) {
	b := NewBuilder()
	cnf := b.TseitinPG(b.True(), Pos, NewVarAlloc(1))
	if !satWith(t, cnf.Root.Var(), cnf.Clauses, []qbf.Lit{cnf.Root}) {
		t.Error("PG(true) with root asserted must be satisfiable")
	}
	cnfF := b.TseitinPG(b.False(), Neg, NewVarAlloc(1))
	if !satWith(t, cnfF.Root.Var(), cnfF.Clauses, []qbf.Lit{cnfF.Root.Neg()}) {
		t.Error("PG(false) with ¬root asserted must be satisfiable")
	}
}
