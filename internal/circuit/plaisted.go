package circuit

import (
	"repro/internal/invariant"
	"repro/internal/qbf"
)

// Polarity says in which polarity a converted formula is asserted.
type Polarity int8

const (
	// Pos means the caller asserts the root literal (root must hold).
	Pos Polarity = 1
	// Neg means the caller asserts the negated root literal.
	Neg Polarity = -1
)

// TseitinPG converts the formula rooted at n into CNF with
// Plaisted–Greenbaum polarity-aware definitions (the clause-form conversion
// of Jackson–Sheridan, the paper's reference [10]): a gate contributes only
// the implication direction(s) required by the polarities under which it is
// used. The returned Root literal may be asserted in the given polarity;
// the conversion is equisatisfiability-preserving (and QBF-value-preserving
// when the fresh variables are quantified existentially innermost within
// the scope of the formula's variables).
//
// Beyond size, the one-sided definitions matter for good (cube) learning:
// under the full two-sided encoding every true gate's definition clauses
// must be covered through the gate's arguments, dragging the whole input
// vector into every initial good; under PG only the falsified branch of
// the circuit pulls its inputs in, which is what makes the solution side
// of the diameter instances tractable.
func (b *Builder) TseitinPG(n Node, pol Polarity, alloc *VarAlloc) CNF {
	t := &pgTseitin{
		b:     b,
		alloc: alloc,
		lits:  make(map[Node]qbf.Lit),
		done:  make(map[pgKey]bool),
	}
	root := t.lit(n)
	t.emit(n, pol)
	return CNF{Root: root, Clauses: t.clauses, Fresh: t.fresh}
}

type pgKey struct {
	n   Node
	pol Polarity
}

type pgTseitin struct {
	b       *Builder
	alloc   *VarAlloc
	lits    map[Node]qbf.Lit
	done    map[pgKey]bool
	clauses []qbf.Clause
	fresh   []qbf.Var
}

// lit returns the literal representing node n, allocating definition
// variables for internal gates (shared across polarities).
func (t *pgTseitin) lit(n Node) qbf.Lit {
	if n < 0 {
		return t.lit(-n).Neg()
	}
	if l, ok := t.lits[n]; ok {
		return l
	}
	g := t.b.gates[n]
	var l qbf.Lit
	switch g.op {
	case OpVar:
		l = g.v.PosLit()
	default:
		v := t.alloc.Fresh()
		t.fresh = append(t.fresh, v)
		l = v.PosLit()
		if g.op == OpConst {
			t.clauses = append(t.clauses, qbf.Clause{l})
		}
	}
	t.lits[n] = l
	return l
}

// emit writes the definition clauses needed for node n in polarity pol.
func (t *pgTseitin) emit(n Node, pol Polarity) {
	if n < 0 {
		t.emit(-n, -pol)
		return
	}
	key := pgKey{n, pol}
	if t.done[key] {
		return
	}
	t.done[key] = true
	g := t.b.gates[n]
	l := t.lit(n)
	switch g.op {
	case OpVar, OpConst:
		return
	case OpAnd:
		if pol == Pos {
			// l → each arg.
			for _, a := range g.args {
				t.clauses = append(t.clauses, qbf.Clause{l.Neg(), t.lit(a)})
				t.emit(a, Pos)
			}
		} else {
			// all args → l.
			c := make(qbf.Clause, 0, len(g.args)+1)
			c = append(c, l)
			for _, a := range g.args {
				c = append(c, t.lit(a).Neg())
				t.emit(a, Neg)
			}
			t.clauses = append(t.clauses, c)
		}
	case OpOr:
		if pol == Pos {
			c := make(qbf.Clause, 0, len(g.args)+1)
			c = append(c, l.Neg())
			for _, a := range g.args {
				c = append(c, t.lit(a))
				t.emit(a, Pos)
			}
			t.clauses = append(t.clauses, c)
		} else {
			for _, a := range g.args {
				t.clauses = append(t.clauses, qbf.Clause{l, t.lit(a).Neg()})
				t.emit(a, Neg)
			}
		}
	case OpXor, OpIff:
		a, c := t.lit(g.args[0]), t.lit(g.args[1])
		x, y := a, c
		if g.op == OpIff {
			// v ≡ (a ≡ c) is v ≡ ¬(a ⊕ c): encode as xor on (a, ¬c).
			y = c.Neg()
		}
		if pol == Pos {
			t.clauses = append(t.clauses,
				qbf.Clause{l.Neg(), x, y},
				qbf.Clause{l.Neg(), x.Neg(), y.Neg()},
			)
		} else {
			t.clauses = append(t.clauses,
				qbf.Clause{l, x, y.Neg()},
				qbf.Clause{l, x.Neg(), y},
			)
		}
		// Arguments of a parity gate are used in both polarities.
		t.emit(g.args[0], Pos)
		t.emit(g.args[0], Neg)
		t.emit(g.args[1], Pos)
		t.emit(g.args[1], Neg)
	default:
		invariant.Violated("circuit: unknown op in TseitinPG")
	}
}
