package ncf

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/prenex"
	"repro/internal/qbf"
)

func TestGenerateStructure(t *testing.T) {
	p := Params{Dep: 4, Var: 4, Cls: 8, Lpc: 3, Seed: 7}
	q := Generate(p)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.ScopeConsistent(); err != nil {
		t.Fatalf("NCF instance not scope consistent: %v", err)
	}
	if got := q.Prefix.MaxLevel(); got < p.Dep {
		t.Errorf("prefix level %d, want ≥ DEP=%d", got, p.Dep)
	}
	st := q.Stats()
	if st.Clauses == 0 || st.Vars < p.Var*(p.Dep+1) {
		t.Errorf("implausible instance: %+v", st)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Params{Dep: 3, Var: 4, Cls: 6, Lpc: 3, Seed: 42}
	a, b := Generate(p), Generate(p)
	if a.String() != b.String() {
		t.Error("same params+seed must generate identical instances")
	}
	p2 := p
	p2.Seed = 43
	if Generate(p2).String() == a.String() {
		t.Error("different seeds must give different instances")
	}
}

func TestGeneratedOftenNonPrenex(t *testing.T) {
	nonPrenex := 0
	for s := int64(0); s < 30; s++ {
		q := Generate(Params{Dep: 4, Var: 4, Cls: 6, Lpc: 3, Seed: s})
		if !q.Prefix.IsPrenex() {
			nonPrenex++
			if share := prenex.POTOShare(q); share <= 0 {
				t.Errorf("seed %d: non-prenex but PO/TO share is 0", s)
			}
		}
	}
	if nonPrenex < 15 {
		t.Errorf("only %d/30 instances non-prenex; the suite needs tree structure", nonPrenex)
	}
}

func TestPOAndTOAgree(t *testing.T) {
	// PO on the tree vs TO on each prenexing must agree — the core
	// consistency requirement behind Table I rows 1–4.
	trueCnt := 0
	for s := int64(0); s < 25; s++ {
		q := Generate(Params{Dep: 3, Var: 4, Cls: 16, Lpc: 3, Seed: s})
		poRes, err := core.Solve(context.Background(), q, core.Options{Mode: core.ModePartialOrder})
		po := poRes.Verdict
		if err != nil {
			t.Fatal(err)
		}
		if po == core.True {
			trueCnt++
		}
		for _, strat := range prenex.Strategies {
			toRes, err := core.Solve(context.Background(), prenex.Apply(q, strat), core.Options{Mode: core.ModeTotalOrder})
			to := toRes.Verdict
			if err != nil {
				t.Fatal(err)
			}
			if to != po {
				t.Fatalf("seed %d strategy %v: TO=%v PO=%v", s, strat, to, po)
			}
		}
	}
	if trueCnt == 0 || trueCnt == 25 {
		t.Errorf("degenerate truth distribution: %d/25 true", trueCnt)
	}
}

func TestSmallInstancesMatchOracle(t *testing.T) {
	for s := int64(0); s < 15; s++ {
		q := Generate(Params{Dep: 2, Var: 2, Cls: 3, Lpc: 2, Seed: s})
		want, ok := qbf.EvalWithBudget(q, 4_000_000)
		if !ok {
			continue
		}
		gotRes, err := core.Solve(context.Background(), q, core.Options{Mode: core.ModePartialOrder})
		got := gotRes.Verdict
		if err != nil {
			t.Fatal(err)
		}
		if (got == core.True) != want {
			t.Fatalf("seed %d: solver %v, oracle %v\n%v", s, got, want, q)
		}
	}
}

func TestGrid(t *testing.T) {
	cells := Grid(4, 10)
	if len(cells) != 3*5*4 {
		t.Fatalf("grid has %d cells, want 60", len(cells))
	}
	seen := map[string]bool{}
	for _, c := range cells {
		if c.Params.Dep != 4 || c.Instances != 10 {
			t.Errorf("bad cell %+v", c)
		}
		if c.Params.Cls%c.Params.Var != 0 {
			t.Errorf("CLS %d not a multiple of VAR %d", c.Params.Cls, c.Params.Var)
		}
		key := c.Params.String()
		if seen[key] {
			t.Errorf("duplicate cell %s", key)
		}
		seen[key] = true
	}
}

func TestBadParamsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero Dep must panic")
		}
	}()
	Generate(Params{Dep: 0, Var: 1, Cls: 1, Lpc: 1})
}
