// Package ncf generates the Nested CounterFactual workload of Section
// VII.A. The paper uses the generator of Egly, Seidl, Tompits, Woltran and
// Zolda [12], which encodes the evaluation of a nested counterfactual
//
//	c1 > (c2 > ( … > cDEP))
//
// over a random propositional theory into a non-prenex QBF: every nesting
// level contributes an existential block (choose a model of the revised
// theory) followed by a universal block (range over all competing models),
// with the next level nested below and with side formulas attached at the
// level where their variables live. The original generator is not publicly
// distributed (the paper's authors obtained it privately), so this package
// reproduces the *shape* the experiment depends on — trees of alternation
// depth DEP whose levels carry random LPC-literal clauses over the level's
// fresh variables and its ancestors, with occasional sibling subtrees that
// make the prefix genuinely non-prenex — over the paper's exact parameter
// grid ⟨DEP, VAR, CLS, LPC⟩.
package ncf

import (
	"fmt"
	"math/rand"

	"repro/internal/invariant"
	"repro/internal/qbf"
)

// Params configures one NCF instance.
type Params struct {
	// Dep is the counterfactual nesting depth (the paper fixes 6; the
	// scaled default grid uses smaller values so a full sweep fits a
	// laptop budget).
	Dep int
	// Var is the number of propositional variables per nesting level.
	Var int
	// Cls is the number of theory clauses attached per nesting level.
	Cls int
	// Lpc is the number of literals per clause.
	Lpc int
	// Branch is the probability (percent, 0–100) that a nesting level
	// spawns an additional independent subtree. The default 40 yields
	// trees whose PO/TO share is comfortably above the footnote-9
	// threshold.
	Branch int
	// Seed drives the pseudo-random choices; instances are deterministic
	// functions of (Params, Seed).
	Seed int64
}

func (p Params) String() string {
	return fmt.Sprintf("ncf-d%d-v%d-c%d-l%d-s%d", p.Dep, p.Var, p.Cls, p.Lpc, p.Seed)
}

// Generate builds the instance for p.
func Generate(p Params) *qbf.QBF {
	if p.Dep < 1 || p.Var < 1 || p.Cls < 1 || p.Lpc < 1 {
		invariant.Violated("ncf: all of Dep, Var, Cls, Lpc must be positive")
	}
	if p.Branch == 0 {
		p.Branch = 40
	}
	rng := rand.New(rand.NewSource(p.Seed ^ 0x5E3779B97F4A7C15))
	g := &gen{p: p, rng: rng, prefix: qbf.NewPrefix(0)}

	// Root existential block: the outer model choice.
	rootVars := g.freshVars()
	root := g.prefix.AddBlock(nil, qbf.Exists, rootVars...)
	g.level(root, rootVars, p.Dep, qbf.Forall)

	g.prefix.Finalize()
	q := qbf.New(g.prefix, g.matrix)
	q.NormalizeMatrix()
	return q
}

type gen struct {
	p      Params
	rng    *rand.Rand
	prefix *qbf.Prefix
	matrix []qbf.Clause
	next   qbf.Var
}

func (g *gen) freshVars() []qbf.Var {
	out := make([]qbf.Var, g.p.Var)
	for i := range out {
		g.next++
		g.prefix.GrowVar(g.next)
		out[i] = g.next
	}
	return out
}

// level adds one nesting level below parent: a block of quantifier q with
// fresh variables, theory clauses over the new variables and the ancestor
// pool, and the next level below it. With probability Branch% the parent
// also gets an independent sibling subtree of the remaining depth.
func (g *gen) level(parent *qbf.Block, pool []qbf.Var, depth int, q qbf.Quant) {
	if depth == 0 {
		return
	}
	vars := g.freshVars()
	b := g.prefix.AddBlock(parent, q, vars...)
	subPool := append(append([]qbf.Var(nil), pool...), vars...)
	if q == qbf.Exists {
		// Theory clauses live at the existential (model choice) levels;
		// the universal levels only contribute variables that those
		// clauses mention as side conditions.
		for i := 0; i < g.p.Cls; i++ {
			g.matrix = append(g.matrix, g.clause(subPool, vars))
		}
	}
	g.level(b, subPool, depth-1, q.Dual())

	if g.rng.Intn(100) < g.p.Branch {
		// An independent counterfactual argument: a sibling subtree whose
		// variables never mix with the main chain below this point.
		sVars := g.freshVars()
		sb := g.prefix.AddBlock(parent, q, sVars...)
		sPool := append(append([]qbf.Var(nil), pool...), sVars...)
		if q == qbf.Exists {
			for i := 0; i < g.p.Cls; i++ {
				g.matrix = append(g.matrix, g.clause(sPool, sVars))
			}
		}
		if depth > 1 {
			g.level(sb, sPool, depth-1, q.Dual())
		}
	}
}

// clause draws an Lpc-literal clause over pool, guaranteeing at least one
// literal from the must set (so every level's variables matter) and at
// most one universal literal (clauses dominated by universal literals are
// almost always falsifiable and would skew the suite towards FALSE).
func (g *gen) clause(pool, must []qbf.Var) qbf.Clause {
	seen := make(map[qbf.Var]bool, g.p.Lpc)
	c := make(qbf.Clause, 0, g.p.Lpc)
	universals := 0
	add := func(v qbf.Var) {
		if seen[v] {
			return
		}
		if g.prefix.QuantOf(v) == qbf.Forall {
			if universals >= 1 {
				return
			}
			universals++
		}
		seen[v] = true
		l := v.PosLit()
		if g.rng.Intn(2) == 0 {
			l = v.NegLit()
		}
		c = append(c, l)
	}
	add(must[g.rng.Intn(len(must))])
	for tries := 0; len(c) < g.p.Lpc && tries < 8*g.p.Lpc; tries++ {
		add(pool[g.rng.Intn(len(pool))])
	}
	return c
}

// Cell is one parameter setting of the paper's grid together with its
// generated instances' seeds.
type Cell struct {
	Params    Params
	Instances int
}

// Grid reproduces the Section VII.A parameter grid: VAR ∈ {4,8,16},
// CLS/VAR ∈ {1..5}, LPC ∈ {3..6}, at the given depth, with k instances per
// setting (the paper uses DEP=6 and k=100; scaled runs shrink both).
func Grid(dep, k int) []Cell {
	var out []Cell
	for _, v := range []int{4, 8, 16} {
		for ratio := 1; ratio <= 5; ratio++ {
			for lpc := 3; lpc <= 6; lpc++ {
				out = append(out, Cell{
					Params:    Params{Dep: dep, Var: v, Cls: ratio * v, Lpc: lpc},
					Instances: k,
				})
			}
		}
	}
	return out
}
