package qdimacs

import (
	"strings"
	"testing"
)

// FuzzRead covers both accepted formats (QDIMACS prenex headers and QTREE
// quantifier-tree headers) through the one entry point CLIs use. The
// properties mirror TestReadNeverPanics/TestReadMutatedValid: the reader
// must never panic, must never return a nil formula without an error, and
// anything it accepts must survive the standard cleanup — normalization
// followed by structural validation — and round-trip through the writer.
//
// Run with: go test -fuzz=FuzzRead ./internal/qdimacs/
// Regression corpus: testdata/fuzz/FuzzRead/ (replayed by plain go test).
func FuzzRead(f *testing.F) {
	seeds := []string{
		"",
		"p cnf 3 2\ne 1 2 0\na 3 0\n1 -2 3 0\n-1 2 0\n",
		"p cnf 2 1\na 1 0\ne 2 0\n1 2 0\n",
		"p qtree 7 3\nq e 1 0\nq a 2 0\nq e 3 4 0\nu 2\nq a 5 0\nq e 6 7 0\nu 3\n1 3 4 0\n2 -3 0\n1 6 -7 0\n",
		"p cnf 2 1\ne 1 2 0\n" + strings.Repeat("1", 400) + " 0\n",
		"c comment\np cnf 1 1\n1 0\n",
		"p cnf 0 0\n",
		"p qtree 1 1\nq e 1 0\n1 0\n",
		"p cnf 2 2\ne 1 0\n1 -1 0\n2 2 0\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		q, err := ReadString(in)
		if err != nil {
			return
		}
		if q == nil {
			t.Fatal("nil formula without error")
		}
		q.NormalizeMatrix()
		if verr := q.Validate(); verr != nil {
			t.Fatalf("accepted formula fails validation: %v\ninput: %q", verr, in)
		}
		// Accepted formulas must be serializable: the writer only sees
		// structures the reader built, so an error here means the reader
		// admitted something the rest of the pipeline cannot represent.
		if _, werr := WriteString(q); werr != nil {
			t.Fatalf("accepted formula fails to serialize: %v\ninput: %q", werr, in)
		}
	})
}
