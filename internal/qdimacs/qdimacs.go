// Package qdimacs reads and writes QBF instances in two concrete syntaxes:
//
//   - QDIMACS, the standard prenex format of the QBF evaluations: a
//     "p cnf <vars> <clauses>" header, quantifier lines "e v… 0" / "a v… 0"
//     outermost first, then 0-terminated clauses.
//
//   - QTREE, a small extension for non-prenex (tree shaped) prefixes used by
//     this repository: the header is "p qtree <vars> <clauses>"; a line
//     "q e v… 0" (or "q a v… 0") opens a quantifier block nested in the
//     previously opened one, and "u <k>" pops k open blocks, so arbitrary
//     quantifier trees can be described in DFS order. Clause lines follow as
//     in DIMACS. Blocks still open at the first clause line are closed
//     implicitly.
//
// Both readers are tolerant of comment lines ("c …") anywhere before the
// clauses and of extra whitespace.
package qdimacs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/qbf"
)

// Read parses either format, dispatching on the problem line.
func Read(r io.Reader) (*qbf.QBF, error) {
	br := bufio.NewReader(r)
	var header string
	for {
		line, err := br.ReadString('\n')
		if len(line) == 0 && err != nil {
			return nil, fmt.Errorf("qdimacs: missing problem line: %w", err)
		}
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "c") {
			if err != nil {
				return nil, fmt.Errorf("qdimacs: missing problem line")
			}
			continue
		}
		header = t
		break
	}
	fields := strings.Fields(header)
	if len(fields) != 4 || fields[0] != "p" {
		return nil, fmt.Errorf("qdimacs: malformed problem line %q", header)
	}
	nv, err := strconv.Atoi(fields[2])
	if err != nil || nv < 0 {
		return nil, fmt.Errorf("qdimacs: bad variable count %q", fields[2])
	}
	nc, err := strconv.Atoi(fields[3])
	if err != nil || nc < 0 {
		return nil, fmt.Errorf("qdimacs: bad clause count %q", fields[3])
	}
	switch fields[1] {
	case "cnf":
		return readBody(br, nv, nc, false)
	case "qtree":
		return readBody(br, nv, nc, true)
	default:
		return nil, fmt.Errorf("qdimacs: unknown format %q", fields[1])
	}
}

// maxPrealloc caps the allocation driven by header counts: the counts are
// advisory in much of the benchmark ecosystem, and an untrusted header must
// not be able to claim gigabytes before a single body line is read. Larger
// genuine instances simply grow on demand past the cap.
const maxPrealloc = 1 << 16

func readBody(br *bufio.Reader, nv, nc int, tree bool) (*qbf.QBF, error) {
	p := qbf.NewPrefix(min(nv, maxPrealloc))
	var stack []*qbf.Block // open blocks (QTREE); in QDIMACS a chain
	matrix := make([]qbf.Clause, 0, min(nc, maxPrealloc))
	var pending qbf.Clause
	bound := map[qbf.Var]bool{} // rebinding is a parse error, not a panic
	inPrefix := true

	lineNo := 1
	for {
		line, rdErr := br.ReadString('\n')
		lineNo++
		t := strings.TrimSpace(line)
		switch {
		case t == "" || strings.HasPrefix(t, "c "), t == "c":
			// comment / blank
		case strings.HasPrefix(t, "e ") || strings.HasPrefix(t, "a ") ||
			(tree && strings.HasPrefix(t, "q ")):
			if !inPrefix {
				return nil, fmt.Errorf("line %d: quantifier line after clauses", lineNo)
			}
			spec := t
			if tree && strings.HasPrefix(t, "q ") {
				spec = strings.TrimSpace(t[2:])
			}
			quant := qbf.Exists
			if strings.HasPrefix(spec, "a") {
				quant = qbf.Forall
			} else if !strings.HasPrefix(spec, "e") {
				return nil, fmt.Errorf("line %d: bad quantifier %q", lineNo, t)
			}
			vars, err := parseVarList(spec[1:])
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			var parent *qbf.Block
			if len(stack) > 0 {
				parent = stack[len(stack)-1]
			}
			for _, v := range vars {
				if bound[v] {
					return nil, fmt.Errorf("line %d: variable %d bound twice", lineNo, v)
				}
				bound[v] = true
				p.GrowVar(v)
			}
			b := p.AddBlock(parent, quant, vars...)
			stack = append(stack, b)
		case tree && (t == "u" || strings.HasPrefix(t, "u ")):
			if !inPrefix {
				return nil, fmt.Errorf("line %d: block pop after clauses", lineNo)
			}
			k := 1
			if t != "u" {
				var err error
				k, err = strconv.Atoi(strings.TrimSpace(t[2:]))
				if err != nil || k < 1 {
					return nil, fmt.Errorf("line %d: bad pop count %q", lineNo, t)
				}
			}
			if k > len(stack) {
				return nil, fmt.Errorf("line %d: popping %d of %d open blocks", lineNo, k, len(stack))
			}
			stack = stack[:len(stack)-k]
		default:
			inPrefix = false
			lits, err := parseLits(t, pending)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			pending, matrix = flushClauses(lits, matrix)
		}
		if rdErr != nil {
			break
		}
	}
	if len(pending) > 0 {
		return nil, fmt.Errorf("qdimacs: last clause not 0-terminated")
	}
	p.Finalize()
	// Header counts are advisory in much of the benchmark ecosystem
	// (QBFLIB instances frequently disagree), so nc is not enforced.
	return qbf.New(p, matrix), nil
}

// parseVarList parses "v1 v2 … 0"; the terminating 0 is required.
func parseVarList(s string) ([]qbf.Var, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return nil, fmt.Errorf("empty quantifier line")
	}
	var vars []qbf.Var
	terminated := false
	for _, f := range fields {
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad variable %q", f)
		}
		if n == 0 {
			terminated = true
			break
		}
		if n < 0 {
			return nil, fmt.Errorf("negative variable %d in quantifier line", n)
		}
		vars = append(vars, qbf.Var(n))
	}
	if !terminated {
		return nil, fmt.Errorf("quantifier line not 0-terminated")
	}
	if len(vars) == 0 {
		return nil, fmt.Errorf("empty quantifier block")
	}
	return vars, nil
}

// parseLits accumulates literals from one clause-section line onto pending.
// A 0 inside the line marks the end of a clause; the in-band clauseEnd
// marker is used by flushClauses to split completed clauses off.
func parseLits(s string, pending qbf.Clause) (qbf.Clause, error) {
	for _, f := range strings.Fields(s) {
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad literal %q", f)
		}
		if n == 0 {
			pending = append(pending, clauseEnd)
			continue
		}
		pending = append(pending, qbf.Lit(n))
	}
	return pending, nil
}

// clauseEnd is an in-band marker separating completed clauses in the
// pending buffer. Variable 0 can never occur in a literal, so the marker is
// unambiguous.
const clauseEnd = qbf.Lit(0)

func flushClauses(pending qbf.Clause, matrix []qbf.Clause) (qbf.Clause, []qbf.Clause) {
	start := 0
	for i, l := range pending {
		if l == clauseEnd {
			c := make(qbf.Clause, i-start)
			copy(c, pending[start:i])
			matrix = append(matrix, c)
			start = i + 1
		}
	}
	if start == 0 {
		return pending, matrix
	}
	rest := make(qbf.Clause, len(pending)-start)
	copy(rest, pending[start:])
	return rest, matrix
}

// ReadString parses a formula from a string.
func ReadString(s string) (*qbf.QBF, error) {
	return Read(strings.NewReader(s))
}

// Write renders q in QDIMACS if its prefix is a chain, and in QTREE
// otherwise.
func Write(w io.Writer, q *qbf.QBF) error {
	if isChain(q.Prefix) {
		return WriteQDIMACS(w, q)
	}
	return WriteQTree(w, q)
}

func isChain(p *qbf.Prefix) bool {
	if len(p.Roots()) > 1 {
		return false
	}
	for _, b := range p.Roots() {
		for x := b; x != nil; {
			if len(x.Children) > 1 {
				return false
			}
			if len(x.Children) == 1 {
				x = x.Children[0]
			} else {
				x = nil
			}
		}
	}
	return true
}

// WriteQDIMACS renders a prenex (chain shaped) formula in QDIMACS. It
// returns an error if the prefix is not a chain.
func WriteQDIMACS(w io.Writer, q *qbf.QBF) error {
	if !isChain(q.Prefix) {
		return fmt.Errorf("qdimacs: prefix is not a chain; use WriteQTree or prenex first")
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p cnf %d %d\n", q.MaxVar(), len(q.Matrix))
	for _, r := range q.Prefix.Roots() {
		for b := r; b != nil; {
			bw.WriteString(b.Quant.String())
			for _, v := range b.Vars {
				fmt.Fprintf(bw, " %d", v)
			}
			bw.WriteString(" 0\n")
			if len(b.Children) == 1 {
				b = b.Children[0]
			} else {
				b = nil
			}
		}
	}
	writeClauses(bw, q.Matrix)
	return bw.Flush()
}

// WriteQTree renders any formula in the QTREE format.
func WriteQTree(w io.Writer, q *qbf.QBF) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p qtree %d %d\n", q.MaxVar(), len(q.Matrix))
	var walk func(b *qbf.Block)
	walk = func(b *qbf.Block) {
		fmt.Fprintf(bw, "q %s", b.Quant.String())
		for _, v := range b.Vars {
			fmt.Fprintf(bw, " %d", v)
		}
		bw.WriteString(" 0\n")
		for _, c := range b.Children {
			walk(c)
		}
		bw.WriteString("u 1\n")
	}
	for _, r := range q.Prefix.Roots() {
		walk(r)
	}
	writeClauses(bw, q.Matrix)
	return bw.Flush()
}

func writeClauses(bw *bufio.Writer, matrix []qbf.Clause) {
	for _, c := range matrix {
		for _, l := range c {
			fmt.Fprintf(bw, "%d ", int(l))
		}
		bw.WriteString("0\n")
	}
}

// WriteString renders q to a string using Write.
func WriteString(q *qbf.QBF) (string, error) {
	var sb strings.Builder
	if err := Write(&sb, q); err != nil {
		return "", err
	}
	return sb.String(), nil
}
