package qdimacs

import (
	"math/rand"
	"strings"
	"testing"
)

// TestReadNeverPanics feeds random byte soup and mutated valid headers to
// the reader: malformed input must produce an error or a parsed formula,
// never a panic.
func TestReadNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(907))
	alphabet := []byte("pcnfqtreau0123456789- \n\t")
	for i := 0; i < 2000; i++ {
		n := rng.Intn(200)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = alphabet[rng.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on input %q: %v", buf, r)
				}
			}()
			q, err := ReadString(string(buf))
			if err == nil && q == nil {
				t.Fatalf("nil formula without error for %q", buf)
			}
		}()
	}
}

// TestReadMutatedValid mutates a correct instance one byte at a time.
func TestReadMutatedValid(t *testing.T) {
	valid := "p qtree 7 3\nq e 1 0\nq a 2 0\nq e 3 4 0\nu 2\nq a 5 0\nq e 6 7 0\nu 3\n1 3 4 0\n2 -3 0\n1 6 -7 0\n"
	for i := 0; i < len(valid); i++ {
		for _, b := range []byte{'0', '9', '-', 'q', 'x', '\n', ' '} {
			mutated := valid[:i] + string(b) + valid[i+1:]
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic on mutation at %d→%q: %v", i, b, r)
					}
				}()
				q, err := ReadString(mutated)
				if err == nil {
					// Accepted mutations must still be structurally sane
					// after the standard cleanup (the reader, like most
					// DIMACS tooling, tolerates duplicate literals and
					// leaves deduplication to NormalizeMatrix).
					q.NormalizeMatrix()
					if err2 := q.Validate(); err2 != nil {
						t.Fatalf("mutation at %d→%q accepted an invalid formula: %v", i, b, err2)
					}
				}
			}()
		}
	}
}

// TestReadHugeTokens guards against pathological token lengths.
func TestReadHugeTokens(t *testing.T) {
	in := "p cnf 2 1\ne 1 2 0\n" + strings.Repeat("1", 400) + " 0\n"
	if _, err := ReadString(in); err == nil {
		t.Error("a 400-digit literal must be rejected")
	}
}
