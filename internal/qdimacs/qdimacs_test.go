package qdimacs

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/qbf"
)

func TestReadQDIMACS(t *testing.T) {
	in := `c a comment
c another
p cnf 4 3
e 1 2 0
a 3 0
e 4 0
1 -3 4 0
-1 2 0
-2 -4 0
`
	q, err := ReadString(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Matrix) != 3 {
		t.Fatalf("got %d clauses, want 3", len(q.Matrix))
	}
	if !q.Prefix.IsPrenex() {
		t.Error("QDIMACS input must yield a prenex prefix")
	}
	if q.Prefix.QuantOf(1) != qbf.Exists || q.Prefix.QuantOf(3) != qbf.Forall {
		t.Error("quantifiers misparsed")
	}
	if !q.Prefix.Before(1, 3) || !q.Prefix.Before(3, 4) {
		t.Error("prefix order misparsed")
	}
	if q.Prefix.Before(1, 2) {
		t.Error("same-block variables must be incomparable")
	}
	if q.Matrix[0][1] != qbf.Lit(-3) {
		t.Errorf("clause 0 = %v", q.Matrix[0])
	}
}

func TestReadQTree(t *testing.T) {
	// The paper's prefix (3): x0 (y1 (x1 x2) ; y2 (x3 x4)).
	in := `c paper example
p qtree 7 3
q e 1 0
q a 2 0
q e 3 4 0
u 2
q a 5 0
q e 6 7 0
u 3
1 3 4 0
2 -3 0
1 6 -7 0
`
	q, err := ReadString(in)
	if err != nil {
		t.Fatal(err)
	}
	if q.Prefix.IsPrenex() {
		t.Error("tree input must be non-prenex")
	}
	if !q.Prefix.Before(2, 3) || q.Prefix.Before(2, 6) {
		t.Error("tree order misparsed")
	}
	if got := q.Prefix.String(); got != "e 1 (a 2 (e 3 4) ; a 5 (e 6 7))" {
		t.Errorf("prefix = %q", got)
	}
	if _, err := q.ScopeConsistent(); err != nil {
		t.Errorf("parsed formula inconsistent: %v", err)
	}
}

func TestReadQTreeImplicitClose(t *testing.T) {
	in := `p qtree 3 1
q e 1 0
q a 2 0
q e 3 0
1 -2 3 0
`
	q, err := ReadString(in)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Prefix.Before(1, 2) || !q.Prefix.Before(2, 3) {
		t.Error("implicitly closed chain misparsed")
	}
}

func TestReadMultilineClause(t *testing.T) {
	in := "p cnf 3 2\ne 1 2 3 0\n1 2\n3 0 -1\n-2 0\n"
	q, err := ReadString(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Matrix) != 2 || len(q.Matrix[0]) != 3 || len(q.Matrix[1]) != 2 {
		t.Fatalf("matrix = %v", q.Matrix)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"no header", "e 1 0\n1 0\n"},
		{"bad header", "p wat 1 1\n"},
		{"unterminated quant", "p cnf 2 1\ne 1 2\n1 0\n"},
		{"unterminated clause", "p cnf 1 1\ne 1 0\n1\n"},
		{"quant after clause", "p cnf 2 2\ne 1 0\n1 0\na 2 0\n2 0\n"},
		{"bad literal", "p cnf 1 1\ne 1 0\nx 0\n"},
		{"pop too far", "p qtree 1 1\nq e 1 0\nu 2\n1 0\n"},
		{"empty block", "p cnf 1 1\ne 0\n1 0\n"},
		{"negative quant var", "p cnf 1 1\ne -1 0\n1 0\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadString(c.in); err == nil {
				t.Errorf("input %q must fail", c.in)
			}
		})
	}
}

func TestWriteQDIMACSRejectsTree(t *testing.T) {
	p := qbf.NewPrefix(3)
	r := p.AddBlock(nil, qbf.Exists, 1)
	p.AddBlock(r, qbf.Forall, 2)
	p.AddBlock(r, qbf.Forall, 3)
	q := qbf.New(p, []qbf.Clause{{1, 2}})
	var sb strings.Builder
	if err := WriteQDIMACS(&sb, q); err == nil {
		t.Error("WriteQDIMACS must reject non-chain prefixes")
	}
}

func TestRoundTripPrenex(t *testing.T) {
	p := qbf.NewPrenexPrefix(4,
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{1, 2}},
		qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{3}},
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{4}},
	)
	q := qbf.New(p, []qbf.Clause{{1, -3, 4}, {-1, 2}, {-2, -4}})
	s, err := WriteString(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(s, "p cnf") {
		t.Errorf("prenex formula must serialize as QDIMACS, got %q", s)
	}
	r, err := ReadString(s)
	if err != nil {
		t.Fatal(err)
	}
	assertSameQBF(t, q, r)
}

func TestRoundTripRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 100; i++ {
		q := qbf.RandomQBF(rng, 12, 10)
		s, err := WriteString(q)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		r, err := ReadString(s)
		if err != nil {
			t.Fatalf("iteration %d: %v\n%s", i, err, s)
		}
		assertSameQBF(t, q, r)
		// Semantics must survive the round trip.
		if qbf.Eval(q) != qbf.Eval(r) {
			t.Fatalf("iteration %d: round trip changed the value\n%s", i, s)
		}
	}
}

// assertSameQBF compares prefix order, quantifiers and matrices.
func assertSameQBF(t *testing.T, a, b *qbf.QBF) {
	t.Helper()
	if len(a.Matrix) != len(b.Matrix) {
		t.Fatalf("clause count %d vs %d", len(a.Matrix), len(b.Matrix))
	}
	for i := range a.Matrix {
		if len(a.Matrix[i]) != len(b.Matrix[i]) {
			t.Fatalf("clause %d: %v vs %v", i, a.Matrix[i], b.Matrix[i])
		}
		for j := range a.Matrix[i] {
			if a.Matrix[i][j] != b.Matrix[i][j] {
				t.Fatalf("clause %d: %v vs %v", i, a.Matrix[i], b.Matrix[i])
			}
		}
	}
	mv := a.MaxVar()
	if bv := b.MaxVar(); bv > mv {
		mv = bv
	}
	for v := qbf.Var(1); int(v) <= mv; v++ {
		if a.Prefix.Bound(v) != b.Prefix.Bound(v) {
			t.Fatalf("var %d bound in one formula only", v)
		}
		if a.Prefix.Bound(v) && a.Prefix.QuantOf(v) != b.Prefix.QuantOf(v) {
			t.Fatalf("var %d quantifier differs", v)
		}
		for w := qbf.Var(1); int(w) <= mv; w++ {
			if a.Prefix.Before(v, w) != b.Prefix.Before(v, w) {
				t.Fatalf("order (%d,%d) differs: %v vs %v",
					v, w, a.Prefix.Before(v, w), b.Prefix.Before(v, w))
			}
		}
	}
}
