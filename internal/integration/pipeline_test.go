// Package integration exercises the full pipeline across packages: generate
// → serialize → parse → preprocess → miniscope/prenex → solve with three
// independent procedures (the QCDCL engine in both modes, the Figure 1
// Q-DLL, and the semantic oracle), asserting that every road leads to the
// same value.
package integration

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dia"
	"repro/internal/fpv"
	"repro/internal/models"
	"repro/internal/ncf"
	"repro/internal/prenex"
	"repro/internal/preprocess"
	"repro/internal/qbf"
	"repro/internal/qdimacs"
	"repro/internal/qdll"
	"repro/internal/randqbf"
)

// decideEveryWay returns the values produced by all decision paths that
// are feasible for the instance size, failing the test on any mismatch.
func decideEveryWay(t *testing.T, name string, q *qbf.QBF) bool {
	t.Helper()

	// 1. QCDCL partial order on the tree.
	rPORes, err := core.Solve(context.Background(), q, core.Options{})
	rPO := rPORes.Verdict
	if err != nil {
		t.Fatalf("%s: PO: %v", name, err)
	}
	want := rPO == core.True

	// 2. QCDCL total order on each prenex form.
	for _, s := range prenex.Strategies {
		rTORes, err := core.Solve(context.Background(), prenex.Apply(q, s), core.Options{Mode: core.ModeTotalOrder})
		rTO := rTORes.Verdict
		if err != nil {
			t.Fatalf("%s: TO %v: %v", name, s, err)
		}
		if (rTO == core.True) != want {
			t.Fatalf("%s: TO %v disagrees: %v vs PO %v", name, s, rTO, rPO)
		}
	}

	// 3. Serialization round trip, then solve again.
	text, err := qdimacs.WriteString(q)
	if err != nil {
		t.Fatalf("%s: write: %v", name, err)
	}
	back, err := qdimacs.ReadString(text)
	if err != nil {
		t.Fatalf("%s: read: %v", name, err)
	}
	rBackRes, err := core.Solve(context.Background(), back, core.Options{})
	rBack := rBackRes.Verdict
	if err != nil {
		t.Fatalf("%s: solve after round trip: %v", name, err)
	}
	if (rBack == core.True) != want {
		t.Fatalf("%s: round trip changed the value", name)
	}

	// 4. Preprocess, then solve.
	pre, res := preprocess.Run(q, preprocess.Options{})
	if res.Decided {
		if res.Value != want {
			t.Fatalf("%s: preprocessing decided %v, solver %v", name, res.Value, want)
		}
	} else {
		rPreRes, err := core.Solve(context.Background(), pre, core.Options{})
		rPre := rPreRes.Verdict
		if err != nil {
			t.Fatalf("%s: solve after preprocess: %v", name, err)
		}
		if (rPre == core.True) != want {
			t.Fatalf("%s: preprocessing changed the value", name)
		}
	}

	// 5. Miniscope, then solve.
	mini := prenex.Miniscope(q)
	rMiniRes, err := core.Solve(context.Background(), mini, core.Options{})
	rMini := rMiniRes.Verdict
	if err != nil {
		t.Fatalf("%s: solve after miniscope: %v", name, err)
	}
	if (rMini == core.True) != want {
		t.Fatalf("%s: miniscoping changed the value", name)
	}

	// 6. Plain Q-DLL (budgeted; skip silently if too slow).
	if v, _, err := qdll.Solve(q, 3_000_000); err == nil && v != want {
		t.Fatalf("%s: Q-DLL disagrees: %v vs %v", name, v, want)
	}

	// 7. The exponential oracle (budgeted).
	if v, ok := qbf.EvalWithBudget(q, 2_000_000); ok && v != want {
		t.Fatalf("%s: oracle disagrees: %v vs %v", name, v, want)
	}
	return want
}

func TestPipelineRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	n := 60
	if testing.Short() {
		n = 15
	}
	for i := 0; i < n; i++ {
		q := qbf.RandomQBF(rng, 12, 12)
		decideEveryWay(t, "random", q)
	}
}

func TestPipelineNCF(t *testing.T) {
	for s := int64(0); s < 8; s++ {
		q := ncf.Generate(ncf.Params{Dep: 3, Var: 4, Cls: 10, Lpc: 3, Seed: s})
		decideEveryWay(t, q.String()[:20], q)
	}
}

func TestPipelineFPV(t *testing.T) {
	for s := int64(0); s < 4; s++ {
		q := fpv.Generate(fpv.Params{Services: 2, Steps: 2, Bits: 4, Density: 4, Seed: s})
		decideEveryWay(t, "fpv", q)
	}
}

func TestPipelineDIA(t *testing.T) {
	for _, m := range []*models.Model{models.TwoBit(), models.Counter(2), models.ShiftRegister(3)} {
		for n := 0; n <= 2; n++ {
			decideEveryWay(t, m.Name, dia.Phi(m, n))
		}
	}
}

func TestPipelineProb(t *testing.T) {
	for s := int64(0); s < 6; s++ {
		q := randqbf.Prob(randqbf.ProbParams{
			Blocks: 3, BlockSize: 4, Clauses: 24, Length: 4,
			MaxUniversal: 1, Communities: 2, Seed: s,
		})
		decideEveryWay(t, "prob", q)
	}
}

func TestQTreeFilesSolvable(t *testing.T) {
	// Write a generated instance in both formats and ensure the headers
	// dispatch correctly.
	q := ncf.Generate(ncf.Params{Dep: 3, Var: 4, Cls: 8, Lpc: 3, Seed: 1})
	tree, err := qdimacs.WriteString(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(tree, "p qtree") {
		t.Errorf("non-prenex instance must serialize as qtree, got %q", tree[:12])
	}
	pq, err := qdimacs.WriteString(prenex.Apply(q, prenex.EUpAUp))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(pq, "p cnf") {
		t.Errorf("prenex instance must serialize as QDIMACS, got %q", pq[:12])
	}
}
