// Package randqbf generates the QBFEVAL'06-style instances of Section
// VII.D. The evaluation's archive divides instances into a "probabilistic"
// class (at least one generation parameter is a random variable — chiefly
// the fixed-clause-length model A generalizing random 3-SAT [35]) and a
// "fixed" class (structured encodings). This package provides:
//
//   - Prob: random prenex QBFs in the fixed-clause-length model — k
//     alternating blocks, every clause with a fixed number of literals, a
//     bounded number of universal literals per clause, and no
//     all-universal clauses (which would be trivially contradictory);
//   - Fixed: structured prenex QBFs obtained by prenexing NCF and FPV
//     instances (exactly the kind of encodings the fixed class holds);
//   - MiniscopeFilter: the footnote-9 pipeline — miniscope a prenex
//     instance and keep it only when the PO/TO share of invented ∃/∀
//     orderings exceeds the threshold (20 % in the paper).
package randqbf

import (
	"fmt"
	"math/rand"

	"repro/internal/dia"
	"repro/internal/fpv"
	"repro/internal/invariant"
	"repro/internal/models"
	"repro/internal/ncf"
	"repro/internal/prenex"
	"repro/internal/qbf"
)

// ProbParams configures one model-A instance.
type ProbParams struct {
	// Blocks is the number of alternating quantifier blocks (innermost is
	// existential, as in the model).
	Blocks int
	// BlockSize is the number of variables per block.
	BlockSize int
	// Clauses is the number of clauses.
	Clauses int
	// Length is the number of literals per clause.
	Length int
	// MaxUniversal bounds the universal literals per clause (model A uses
	// small values so that clauses keep existential literals).
	MaxUniversal int
	// Communities partitions the variables into k loosely coupled groups;
	// clauses draw from one group except for CrossPct% of them. 0 or 1
	// means the classic single-community model A. Dense single-community
	// instances almost never decompose under miniscoping (footnote 9);
	// community-structured ones are the survivors of the filter.
	Communities int
	// CrossPct is the percentage of clauses drawn across communities.
	CrossPct int
	// Seed drives the random choices.
	Seed int64
}

func (p ProbParams) String() string {
	return fmt.Sprintf("prob-b%d-s%d-c%d-l%d-%d", p.Blocks, p.BlockSize, p.Clauses, p.Length, p.Seed)
}

// Prob generates a model-A random prenex QBF.
func Prob(p ProbParams) *qbf.QBF {
	if p.Blocks < 1 || p.BlockSize < 1 || p.Clauses < 0 || p.Length < 1 {
		invariant.Violated("randqbf: invalid Prob parameters")
	}
	if p.MaxUniversal == 0 {
		p.MaxUniversal = p.Length / 2
	}
	rng := rand.New(rand.NewSource(p.Seed ^ 0x3C6EF372FE94F82B))

	if p.Communities < 1 {
		p.Communities = 1
	}

	// Innermost block is existential: with k blocks, block i (outermost
	// first) is existential iff (Blocks-1-i) is even. Variables are dealt
	// round-robin into communities within every block.
	runs := make([]qbf.Run, p.Blocks)
	type comm struct{ ex, un []qbf.Var }
	comms := make([]comm, p.Communities)
	var exAll, unAll []qbf.Var
	v := qbf.MinVar
	for i := 0; i < p.Blocks; i++ {
		q := qbf.Exists
		if (p.Blocks-1-i)%2 == 1 {
			q = qbf.Forall
		}
		vars := make([]qbf.Var, p.BlockSize)
		for j := range vars {
			vars[j] = v
			ci := j % p.Communities
			if q == qbf.Exists {
				comms[ci].ex = append(comms[ci].ex, v)
				exAll = append(exAll, v)
			} else {
				comms[ci].un = append(comms[ci].un, v)
				unAll = append(unAll, v)
			}
			v++
		}
		runs[i] = qbf.Run{Quant: q, Vars: vars}
	}
	prefix := qbf.NewPrenexPrefix(int(v)-1, runs...)

	matrix := make([]qbf.Clause, 0, p.Clauses)
	for len(matrix) < p.Clauses {
		ex, un := exAll, unAll
		if p.Communities > 1 && rng.Intn(100) >= p.CrossPct {
			c := comms[rng.Intn(p.Communities)]
			if len(c.ex) > 0 {
				ex, un = c.ex, c.un
			}
		}
		nu := 0
		if len(un) > 0 && p.MaxUniversal > 0 {
			nu = rng.Intn(p.MaxUniversal + 1)
		}
		if nu >= p.Length {
			nu = p.Length - 1
		}
		seen := make(map[qbf.Var]bool, p.Length)
		c := make(qbf.Clause, 0, p.Length)
		add := func(pool []qbf.Var) {
			vv := pool[rng.Intn(len(pool))]
			if seen[vv] {
				return
			}
			seen[vv] = true
			l := vv.PosLit()
			if rng.Intn(2) == 0 {
				l = vv.NegLit()
			}
			c = append(c, l)
		}
		for i := 0; i < nu; i++ {
			add(un)
		}
		// Fill with community existentials; fall back to the global pool
		// when the community is too small for the clause length.
		for tries := 0; len(c) < p.Length; tries++ {
			if tries >= 4*p.Length {
				ex = exAll
			}
			add(ex)
		}
		c, taut := c.Normalize()
		if taut {
			continue
		}
		matrix = append(matrix, c)
	}
	return qbf.New(prefix, matrix)
}

// ProbSuite sweeps a small grid of model-A settings, seeds instances per
// setting. Low clause densities dominate because those instances decompose
// under miniscoping (dense instances fail the footnote-9 filter, exactly
// as the paper observed for most of the archive).
func ProbSuite(seeds int) []ProbParams {
	var out []ProbParams
	for _, bs := range []int{12, 16} {
		for _, ratio := range []float64{6, 9, 12} {
			nv := 3 * bs
			for _, communities := range []int{1, 2, 3} {
				for s := 0; s < seeds; s++ {
					out = append(out, ProbParams{
						Blocks:       3,
						BlockSize:    bs,
						Clauses:      int(float64(nv) * ratio),
						Length:       5,
						MaxUniversal: 1,
						Communities:  communities,
						// Any cross-community clause glues the scopes
						// back together under miniscoping, so the suite
						// keeps communities fully separate; the paper's
						// footnote-9 survivors are exactly the (nearly)
						// decomposable instances.
						CrossPct: 0,
						Seed:     int64(s),
					})
				}
			}
		}
	}
	return out
}

// Fixed generates the structured ("fixed class") instances: prenexed NCF,
// FPV and diameter-calculation formulas, rotating between the three
// families by seed — the QBFEVAL fixed class mixes exactly these kinds of
// encodings (knowledge-representation, verification, and BMC instances).
func Fixed(seed int64) *qbf.QBF {
	switch seed % 3 {
	case 0:
		q := ncf.Generate(ncf.Params{Dep: 4, Var: 12, Cls: 48, Lpc: 4, Seed: seed})
		return prenex.Apply(q, prenex.EUpAUp)
	case 1:
		q := fpv.Generate(fpv.Params{Services: 2, Steps: 2, Bits: 8, Density: 5, Seed: seed})
		return prenex.Apply(q, prenex.EUpAUp)
	default:
		ms := []*models.Model{models.DME(3), models.Semaphore(3), models.DME(4), models.Counter(2)}
		m := ms[int(seed/3)%len(ms)]
		n := int(seed/3)%m.KnownDiameter + 1
		return prenex.Apply(dia.Phi(m, n), prenex.EUpAUp)
	}
}

// FixedSuite returns n structured prenex instances.
func FixedSuite(n int) []*qbf.QBF {
	out := make([]*qbf.QBF, n)
	for i := range out {
		out[i] = Fixed(int64(i))
	}
	return out
}

// MiniscopeFilter miniscopes a prenex QBF and reports the tree together
// with its PO/TO share; keep is true when the share exceeds threshold
// (footnote 9 uses 0.2).
func MiniscopeFilter(q *qbf.QBF, threshold float64) (tree *qbf.QBF, share float64, keep bool) {
	tree = prenex.Miniscope(q)
	share = prenex.POTOShare(tree)
	return tree, share, share > threshold
}
