package randqbf

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/qbf"
)

func TestProbStructure(t *testing.T) {
	p := ProbParams{Blocks: 3, BlockSize: 5, Clauses: 20, Length: 3, MaxUniversal: 1, Seed: 3}
	q := Prob(p)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if !q.Prefix.IsPrenex() {
		t.Error("model-A instances are prenex")
	}
	if got := q.Prefix.MaxLevel(); got != 3 {
		t.Errorf("prefix level %d, want 3", got)
	}
	if len(q.Matrix) != 20 {
		t.Errorf("%d clauses, want 20", len(q.Matrix))
	}
	for i, c := range q.Matrix {
		if len(c) != 3 {
			t.Errorf("clause %d has %d literals, want 3", i, len(c))
		}
		universals := 0
		existentials := 0
		for _, l := range c {
			if q.Prefix.QuantOf(l.Var()) == qbf.Forall {
				universals++
			} else {
				existentials++
			}
		}
		if universals > 1 {
			t.Errorf("clause %d has %d universal literals, max 1", i, universals)
		}
		if existentials == 0 {
			t.Errorf("clause %d is contradictory by construction", i)
		}
	}
}

func TestProbDeterministicAndVaried(t *testing.T) {
	p := ProbParams{Blocks: 2, BlockSize: 4, Clauses: 10, Length: 3, Seed: 11}
	if Prob(p).String() != Prob(p).String() {
		t.Error("same seed must reproduce the instance")
	}
	p2 := p
	p2.Seed = 12
	if Prob(p2).String() == Prob(p).String() {
		t.Error("seeds must differentiate instances")
	}
}

func TestProbMatchesOracle(t *testing.T) {
	for s := int64(0); s < 20; s++ {
		q := Prob(ProbParams{Blocks: 2, BlockSize: 4, Clauses: 10, Length: 3, MaxUniversal: 1, Seed: s})
		want, ok := qbf.EvalWithBudget(q, 2_000_000)
		if !ok {
			continue
		}
		for _, mode := range []core.Mode{core.ModePartialOrder, core.ModeTotalOrder} {
			gotRes, err := core.Solve(context.Background(), q, core.Options{Mode: mode})
			got := gotRes.Verdict
			if err != nil {
				t.Fatal(err)
			}
			if (got == core.True) != want {
				t.Fatalf("seed %d mode %v: solver %v, oracle %v", s, mode, got, want)
			}
		}
	}
}

func TestMiniscopeFilter(t *testing.T) {
	kept, total := 0, 0
	for _, p := range ProbSuite(5) {
		q := Prob(p)
		tree, share, keep := MiniscopeFilter(q, 0.2)
		total++
		if share < 0 || share > 1 {
			t.Fatalf("share out of range: %v", share)
		}
		if keep {
			kept++
			if tree.Prefix.IsPrenex() {
				t.Errorf("%v: kept instance should be non-prenex after miniscoping", p)
			}
			// The miniscoped tree must agree with the prenex original.
			poRes, err := core.Solve(context.Background(), tree, core.Options{Mode: core.ModePartialOrder})
			po := poRes.Verdict
			if err != nil {
				t.Fatal(err)
			}
			toRes, err := core.Solve(context.Background(), q, core.Options{Mode: core.ModeTotalOrder})
			to := toRes.Verdict
			if err != nil {
				t.Fatal(err)
			}
			if po != to {
				t.Fatalf("%v: PO(miniscoped)=%v TO(prenex)=%v", p, po, to)
			}
		}
	}
	if kept == 0 {
		t.Fatalf("filter kept 0 of %d instances; the Fig. 7 experiment would be empty", total)
	}
	if kept == total {
		t.Errorf("filter kept all %d instances; footnote 9 expects most to fail", total)
	}
	t.Logf("miniscope filter kept %d of %d", kept, total)
}

func TestFixedSuite(t *testing.T) {
	suite := FixedSuite(6)
	if len(suite) != 6 {
		t.Fatalf("got %d instances", len(suite))
	}
	for i, q := range suite {
		if !q.Prefix.IsPrenex() {
			t.Errorf("fixed instance %d must be prenex", i)
		}
		if err := q.Validate(); err != nil {
			t.Errorf("fixed instance %d: %v", i, err)
		}
	}
}

func TestFixedMiniscopeAgreement(t *testing.T) {
	for i := int64(0); i < 6; i++ {
		q := Fixed(i)
		tree, _, keep := MiniscopeFilter(q, 0.0)
		if !keep {
			continue
		}
		poRes, err := core.Solve(context.Background(), tree, core.Options{Mode: core.ModePartialOrder})
		po := poRes.Verdict
		if err != nil {
			t.Fatal(err)
		}
		toRes, err := core.Solve(context.Background(), q, core.Options{Mode: core.ModeTotalOrder})
		to := toRes.Verdict
		if err != nil {
			t.Fatal(err)
		}
		if po != to {
			t.Fatalf("fixed %d: PO(miniscoped)=%v TO=%v", i, po, to)
		}
	}
}
