// Package result is the shared vocabulary of solve outcomes: the verdict
// of a run, the reason an undecided run stopped, the search-effort
// statistics every engine reports, and the process exit codes the CLIs
// derive from them. It exists so that the sequential engine
// (internal/core), the racing portfolio (internal/portfolio), and the
// benchmark harness (internal/bench) agree on one set of types instead of
// each declaring its own — core aliases these types under its historical
// names, so result is the single source of truth without forcing every
// caller to import a second package.
package result

import "time"

// Verdict is the outcome of a solve call.
type Verdict int

const (
	// Unknown means a resource limit or a cancellation stopped the search;
	// Stats.StopReason says which.
	Unknown Verdict = iota
	// True means the QBF evaluated to true.
	True
	// False means the QBF evaluated to false.
	False
)

func (v Verdict) String() string {
	switch v {
	case True:
		return "TRUE"
	case False:
		return "FALSE"
	default:
		return "UNKNOWN"
	}
}

// StopReason explains an Unknown verdict: which budget or event ended the
// search before a verdict. Decided runs carry StopNone.
type StopReason int

const (
	// StopNone: the search ran to a True/False verdict (or never ran).
	StopNone StopReason = iota
	// StopTimeout: the TimeLimit (or context deadline) expired.
	StopTimeout
	// StopNodeLimit: the decision budget was exhausted.
	StopNodeLimit
	// StopMemLimit: the learned-constraint byte budget was exceeded and a
	// reduction round could not recover it.
	StopMemLimit
	// StopCancelled: the context passed to Solve was cancelled.
	StopCancelled
	// StopPanicked: a library panic was contained by SafeSolve.
	StopPanicked
)

func (r StopReason) String() string {
	switch r {
	case StopNone:
		return "none"
	case StopTimeout:
		return "timeout"
	case StopNodeLimit:
		return "node-limit"
	case StopMemLimit:
		return "mem-limit"
	case StopCancelled:
		return "cancelled"
	case StopPanicked:
		return "panicked"
	default:
		return "unknown-stop"
	}
}

// Stats reports search effort.
type Stats struct {
	Decisions        int64
	Propagations     int64
	PureAssignments  int64
	Conflicts        int64
	Solutions        int64
	LearnedClauses   int64
	LearnedCubes     int64
	Backjumps        int64
	ChronoBacktracks int64
	MaxDecisionLevel int
	Restarts         int64
	Time             time.Duration

	// Fixpoints counts propagation fixpoints — the solver's cancellation
	// and budget polling points (one per main-loop iteration).
	Fixpoints int64
	// PeakLearnedBytes is the high-water estimate of learned-constraint
	// memory (the quantity MemLimit governs).
	PeakLearnedBytes int64
	// MemReductions counts aggressive learned-DB reductions forced by
	// memory pressure (as opposed to routine MaxLearned housekeeping).
	MemReductions int64
	// Imports counts constraints accepted from the import hook (including
	// terminal ones); ImportsRejected counts batch entries discarded by
	// structural validation. Both stay 0 outside portfolio runs.
	Imports         int64
	ImportsRejected int64
	// StopReason explains an Unknown verdict; StopNone on decided runs.
	StopReason StopReason
}

// Merge accumulates src into s: counters are summed, high-water marks take
// the maximum. StopReason is left untouched — aggregating stop reasons is
// a policy decision that belongs to the caller (see portfolio's
// aggregateStop).
func (s *Stats) Merge(src Stats) {
	s.Decisions += src.Decisions
	s.Propagations += src.Propagations
	s.PureAssignments += src.PureAssignments
	s.Conflicts += src.Conflicts
	s.Solutions += src.Solutions
	s.LearnedClauses += src.LearnedClauses
	s.LearnedCubes += src.LearnedCubes
	s.Backjumps += src.Backjumps
	s.ChronoBacktracks += src.ChronoBacktracks
	s.Restarts += src.Restarts
	s.Time += src.Time
	s.Fixpoints += src.Fixpoints
	s.MemReductions += src.MemReductions
	s.Imports += src.Imports
	s.ImportsRejected += src.ImportsRejected
	if src.MaxDecisionLevel > s.MaxDecisionLevel {
		s.MaxDecisionLevel = src.MaxDecisionLevel
	}
	if src.PeakLearnedBytes > s.PeakLearnedBytes {
		s.PeakLearnedBytes = src.PeakLearnedBytes
	}
}

// Result is the unified outcome of one solve call: the verdict together
// with the statistics of the search that produced it. It is what the
// context-first entry points of core and the bench backends return.
type Result struct {
	Verdict Verdict
	Stats   Stats
}

// Decided reports whether the run produced a definite True/False verdict.
func (r Result) Decided() bool { return r.Verdict != Unknown }

// Stop returns the stop reason recorded in the statistics (StopNone on
// decided runs).
func (r Result) Stop() StopReason { return r.Stats.StopReason }
