package result

// Process exit codes shared by the CLIs. 10/20 follow the SAT-solver
// convention; 30–34 name the governed stop reasons so scripts can
// distinguish a timeout from a crash; 1 is a usage or input error; 130 is
// the conventional code for a SIGINT wind-down (128+2).
const (
	ExitTrue        = 10
	ExitFalse       = 20
	ExitTimeout     = 30
	ExitNodeLimit   = 31
	ExitMemLimit    = 32
	ExitCancelled   = 33
	ExitPanicked    = 34
	ExitError       = 1
	ExitInterrupted = 130
)

// ExitCode maps a verdict (and, for Unknown, the stop reason) to the
// documented exit status. A definite verdict wins over a stale stop
// reason; an Unknown without a recorded stop is an error.
func ExitCode(v Verdict, stop StopReason) int {
	switch v {
	case True:
		return ExitTrue
	case False:
		return ExitFalse
	}
	switch stop {
	case StopTimeout:
		return ExitTimeout
	case StopNodeLimit:
		return ExitNodeLimit
	case StopMemLimit:
		return ExitMemLimit
	case StopCancelled:
		return ExitCancelled
	case StopPanicked:
		return ExitPanicked
	}
	return ExitError
}
