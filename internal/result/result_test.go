package result

import (
	"testing"
	"time"
)

func TestExitCodeTable(t *testing.T) {
	cases := []struct {
		v    Verdict
		stop StopReason
		want int
	}{
		{True, StopNone, 10},
		{False, StopNone, 20},
		{True, StopTimeout, 10}, // verdict wins over a stale stop
		{Unknown, StopTimeout, 30},
		{Unknown, StopNodeLimit, 31},
		{Unknown, StopMemLimit, 32},
		{Unknown, StopCancelled, 33},
		{Unknown, StopPanicked, 34},
		{Unknown, StopNone, 1},
	}
	for _, c := range cases {
		if got := ExitCode(c.v, c.stop); got != c.want {
			t.Errorf("ExitCode(%v, %v) = %d, want %d", c.v, c.stop, got, c.want)
		}
	}
}

func TestStatsMerge(t *testing.T) {
	a := Stats{Decisions: 3, MaxDecisionLevel: 2, PeakLearnedBytes: 100, Time: time.Second}
	b := Stats{Decisions: 4, MaxDecisionLevel: 5, PeakLearnedBytes: 50, Time: 2 * time.Second, StopReason: StopTimeout}
	a.Merge(b)
	if a.Decisions != 7 || a.MaxDecisionLevel != 5 || a.PeakLearnedBytes != 100 || a.Time != 3*time.Second {
		t.Errorf("merge got %+v", a)
	}
	if a.StopReason != StopNone {
		t.Errorf("Merge must leave StopReason to the caller, got %v", a.StopReason)
	}
}

func TestStrings(t *testing.T) {
	if True.String() != "TRUE" || False.String() != "FALSE" || Unknown.String() != "UNKNOWN" {
		t.Error("verdict strings drifted")
	}
	for r, want := range map[StopReason]string{
		StopNone: "none", StopTimeout: "timeout", StopNodeLimit: "node-limit",
		StopMemLimit: "mem-limit", StopCancelled: "cancelled", StopPanicked: "panicked",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(r), r.String(), want)
		}
	}
	if (Result{Verdict: True}).Decided() != true || (Result{}).Decided() != false {
		t.Error("Decided drifted")
	}
}
