package result

// HTTP status mapping for the solve service, the web-facing sibling of the
// exit-code table in exit.go. The same principle applies: a definite
// verdict wins over a stale stop reason, and every governed stop gets its
// own documented status so clients can tell a retryable condition (the
// server ran out of wall-clock) from a non-retryable one (the caller's own
// node budget was exhausted — retrying with the same budget reproduces the
// same stop).
//
//	TRUE / FALSE        → 200 OK
//	Unknown/timeout     → 504 Gateway Timeout      (retryable)
//	Unknown/node-limit  → 422 Unprocessable Entity (caller's budget; not retryable)
//	Unknown/mem-limit   → 507 Insufficient Storage (caller's budget; not retryable)
//	Unknown/cancelled   → 503 Service Unavailable  (drain or disconnect; retryable)
//	Unknown/panicked    → 500 Internal Server Error
//	Unknown/none        → 500 (a run that never stopped has no explanation)
//
// Admission-layer statuses the service emits before a solve runs — 400
// (malformed request), 429 (queue full), 503 (draining, queue deadline, or
// open circuit breaker) — share the retryability rule: 429 and 503 are
// retryable, 400 is not. StatusRetryable is the one predicate both the
// server's Retry-After decision and the client's backoff loop use, so the
// two sides cannot drift apart.
const (
	// StatusOK is the decided-verdict status (net/http's StatusOK, restated
	// here so the mapping table is self-contained and dependency-free).
	StatusOK = 200
	// StatusBadRequest rejects a request the decoder could not accept.
	StatusBadRequest = 400
	// StatusUnprocessable reports an exhausted caller-supplied node budget.
	StatusUnprocessable = 422
	// StatusTooManyRequests sheds load when the admission queue is full.
	StatusTooManyRequests = 429
	// StatusInternalError reports a contained solver panic (or a run with
	// no recorded stop, which is an internal accounting bug).
	StatusInternalError = 500
	// StatusUnavailable covers cancellation, drain, queue-deadline, and
	// open-breaker rejections: the request was fine, the server's state
	// was not, and retrying after Retry-After is the correct response.
	StatusUnavailable = 503
	// StatusTimeout reports an exhausted wall-clock budget.
	StatusTimeout = 504
	// StatusInsufficientStorage reports an exhausted learned-constraint
	// memory budget.
	StatusInsufficientStorage = 507
)

// HTTPStatus maps a verdict (and, for Unknown, the stop reason) to the
// documented HTTP status, exactly as ExitCode maps them to process exit
// codes.
func HTTPStatus(v Verdict, stop StopReason) int {
	if v == True || v == False {
		return StatusOK
	}
	switch stop {
	case StopTimeout:
		return StatusTimeout
	case StopNodeLimit:
		return StatusUnprocessable
	case StopMemLimit:
		return StatusInsufficientStorage
	case StopCancelled:
		return StatusUnavailable
	case StopPanicked:
		return StatusInternalError
	}
	return StatusInternalError
}

// StatusRetryable reports whether a client should retry the request that
// produced the given status: true only for transient server-side
// conditions (shed load, drain/cancellation, wall-clock timeout). Decided
// verdicts and caller-budget stops are final — retrying cannot change
// them — and 400/500 indicate the request or the server is broken.
func StatusRetryable(code int) bool {
	switch code {
	case StatusTooManyRequests, StatusUnavailable, StatusTimeout:
		return true
	}
	return false
}
