// Package dia implements the diameter-calculation workload of Section
// VII.C: the QBF φn of equation (14) for a symbolic model M, built over
// the closure transition relation T' of equation (15),
//
//	T'(s,s') = (I(s) ∧ I(s')) ∨ T(s,s'),
//
// so that φn is true exactly when n < d and false exactly when n ≥ d,
// where d is the state-space diameter of M. The natural form of φn is
// non-prenex:
//
//	∃x_{n+1} ( ∃x_0…x_n (I(x_0) ∧ ∧ T'(x_i,x_{i+1}))
//	         ∧ ∀y_0…y_n ¬(I(y_0) ∧ ∧ T'(y_i,y_{i+1}) ∧ x_{n+1} ≡ y_n) )
//
// and the x-branch and y-branch subtrees are incomparable — the structure
// QUBE(PO) exploits. (Equation (14) in the paper writes T on the x-side
// and (16) writes T'; the two agree on the truth of φn, and we use T' on
// both sides as in (16).)
//
// The CNF conversion of the universal branch matters enormously. Phi
// builds the negated conjunction as a left-deep AND ladder and converts it
// with polarity-aware Plaisted–Greenbaum definitions (Jackson–Sheridan,
// the paper's [10]), placing every definition variable in an existential
// block directly below the innermost universal block it depends on. The
// result is the maximally miniscoped quantifier tree
//
//	∀y_0 ∃(defs_0) ∀y_1 ∃(defs_1, g_1) … ∀y_n ∃(defs_n, g_n)
//
// in which the solver can commit to "the y-path breaks at step i" after
// assigning only y_0…y_i, so learned goods stay local to the break.
// PhiCoarse keeps all definition variables in a single innermost block
// (the naive conversion); the benchmark suite uses it as an ablation —
// under it the break cannot be committed before the whole y vector is
// assigned and both solver variants degrade to enumeration.
package dia

import (
	"context"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/invariant"
	"repro/internal/models"
	"repro/internal/prenex"
	"repro/internal/qbf"
)

// layout allocates the shared variable vectors of φn.
type layout struct {
	bits    int
	xTarget []qbf.Var
	xs      [][]qbf.Var
	ys      [][]qbf.Var
	next    qbf.Var
}

func newLayout(m *models.Model, n int) *layout {
	bits := m.Bits
	l := &layout{bits: bits, next: 1}
	vec := func() []qbf.Var {
		out := make([]qbf.Var, bits)
		for i := range out {
			out[i] = l.next
			l.next++
		}
		return out
	}
	l.xTarget = vec()
	l.xs = make([][]qbf.Var, n+1)
	for i := range l.xs {
		l.xs[i] = vec()
	}
	l.ys = make([][]qbf.Var, n+1)
	for i := range l.ys {
		l.ys[i] = vec()
	}
	return l
}

// buildPositive converts the reachability side I(x_0) ∧ ∧ T'(x_i,x_{i+1})
// and returns its clauses (including the root assertion) plus the
// definition variables.
func buildPositive(b *circuit.Builder, m *models.Model, l *layout, n int, alloc *circuit.VarAlloc) ([]qbf.Clause, []qbf.Var) {
	tPrime := func(s, t []qbf.Var) circuit.Node {
		return b.Or(b.And(m.Init(b, s), m.Init(b, t)), m.Trans(b, s, t))
	}
	pos := []circuit.Node{m.Init(b, l.xs[0])}
	for i := 0; i < n; i++ {
		pos = append(pos, tPrime(l.xs[i], l.xs[i+1]))
	}
	pos = append(pos, tPrime(l.xs[n], l.xTarget))
	cnf := b.TseitinPG(b.And(pos...), circuit.Pos, alloc)
	clauses := append([]qbf.Clause{}, cnf.Clauses...)
	clauses = append(clauses, qbf.Clause{cnf.Root})
	return clauses, cnf.Fresh
}

// Phi builds the non-prenex φn for model m: true iff n < diameter(m).
func Phi(m *models.Model, n int) *qbf.QBF {
	b := circuit.NewBuilder()
	l := newLayout(m, n)
	alloc := circuit.NewVarAlloc(l.next)

	posClauses, posFresh := buildPositive(b, m, l, n, alloc)
	matrix := posClauses

	tPrime := func(s, t []qbf.Var) circuit.Node {
		return b.Or(b.And(m.Init(b, s), m.Init(b, t)), m.Trans(b, s, t))
	}

	// Universal branch, ladder form. stepDefs[i] collects the definition
	// variables that belong below y_i.
	stepDefs := make([][]qbf.Var, n+1)

	// Step 0: I(y_0).
	i0 := b.TseitinPG(m.Init(b, l.ys[0]), circuit.Neg, alloc)
	matrix = append(matrix, i0.Clauses...)
	stepDefs[0] = append(stepDefs[0], i0.Fresh...)
	g := i0.Root // g_i: "the y-path is valid up to step i"

	for i := 1; i <= n; i++ {
		ti := b.TseitinPG(tPrime(l.ys[i-1], l.ys[i]), circuit.Neg, alloc)
		matrix = append(matrix, ti.Clauses...)
		stepDefs[i] = append(stepDefs[i], ti.Fresh...)
		// g_i ← g_{i-1} ∧ t_i (the AND-ladder definition, Neg polarity).
		gi := alloc.Fresh()
		stepDefs[i] = append(stepDefs[i], gi)
		matrix = append(matrix, qbf.Clause{gi.PosLit(), g.Neg(), ti.Root.Neg()})
		g = gi.PosLit()
	}

	eq := b.TseitinPG(models.EqVec(b, l.xTarget, l.ys[n]), circuit.Neg, alloc)
	matrix = append(matrix, eq.Clauses...)
	stepDefs[n] = append(stepDefs[n], eq.Fresh...)
	// Assert ¬(g_n ∧ eq): no valid length-≤n path ends at x_{n+1}.
	matrix = append(matrix, qbf.Clause{g.Neg(), eq.Root.Neg()})

	// Prefix tree.
	p := qbf.NewPrefix(int(alloc.Next()) - 1)
	root := p.AddBlock(nil, qbf.Exists, l.xTarget...)
	var xAll []qbf.Var
	for _, v := range l.xs {
		xAll = append(xAll, v...)
	}
	xAll = append(xAll, posFresh...)
	p.AddBlock(root, qbf.Exists, xAll...)
	parent := root
	for i := 0; i <= n; i++ {
		parent = p.AddBlock(parent, qbf.Forall, l.ys[i]...)
		if len(stepDefs[i]) > 0 {
			parent = p.AddBlock(parent, qbf.Exists, stepDefs[i]...)
		}
	}
	p.Finalize()
	return qbf.New(p, matrix)
}

// PhiCoarse builds φn with the naive conversion: one flat conjunction on
// the universal branch, all definition variables in a single existential
// block below the whole y vector. Semantically equivalent to Phi; kept as
// the ablation target for the encoding-structure benchmark.
func PhiCoarse(m *models.Model, n int) *qbf.QBF {
	b := circuit.NewBuilder()
	l := newLayout(m, n)
	alloc := circuit.NewVarAlloc(l.next)

	posClauses, posFresh := buildPositive(b, m, l, n, alloc)
	matrix := posClauses

	tPrime := func(s, t []qbf.Var) circuit.Node {
		return b.Or(b.And(m.Init(b, s), m.Init(b, t)), m.Trans(b, s, t))
	}
	neg := []circuit.Node{m.Init(b, l.ys[0])}
	for i := 0; i < n; i++ {
		neg = append(neg, tPrime(l.ys[i], l.ys[i+1]))
	}
	neg = append(neg, models.EqVec(b, l.xTarget, l.ys[n]))
	negCNF := b.TseitinPG(b.And(neg...), circuit.Neg, alloc)
	matrix = append(matrix, negCNF.Clauses...)
	matrix = append(matrix, qbf.Clause{negCNF.Root.Neg()})

	p := qbf.NewPrefix(int(alloc.Next()) - 1)
	root := p.AddBlock(nil, qbf.Exists, l.xTarget...)
	var xAll []qbf.Var
	for _, v := range l.xs {
		xAll = append(xAll, v...)
	}
	xAll = append(xAll, posFresh...)
	p.AddBlock(root, qbf.Exists, xAll...)
	var yAll []qbf.Var
	for _, v := range l.ys {
		yAll = append(yAll, v...)
	}
	yBlock := p.AddBlock(root, qbf.Forall, yAll...)
	if len(negCNF.Fresh) > 0 {
		p.AddBlock(yBlock, qbf.Exists, negCNF.Fresh...)
	}
	p.Finalize()
	return qbf.New(p, matrix)
}

// PhiPrenex builds φn and converts it to prenex form with the given
// strategy; ∃↑∀↑ yields the formulation the paper feeds to QUBE(TO): all
// path variables before all universal variables.
func PhiPrenex(m *models.Model, n int, s prenex.Strategy) *qbf.QBF {
	return prenex.Apply(Phi(m, n), s)
}

// Step records one φn solve during a diameter computation.
type Step struct {
	N       int
	Result  core.Verdict
	Stats   core.Stats
	Vars    int
	Clauses int
}

// Result is the outcome of a diameter computation.
type Result struct {
	Model    string
	Diameter int  // valid when Decided
	Decided  bool // false when a budget ran out or MaxN was reached
	Steps    []Step
}

// SolveFunc decides one φn instance.
type SolveFunc func(*qbf.QBF) (core.Verdict, core.Stats)

// ComputeDiameter iterates n = 0, 1, … solving φn until the first false
// answer: that n is the diameter. The solve function receives the
// non-prenex φn; wrap it to prenex first for a total-order solver. maxN
// bounds the iteration.
func ComputeDiameter(m *models.Model, maxN int, solve SolveFunc) Result {
	res := Result{Model: m.Name}
	for n := 0; n <= maxN; n++ {
		phi := Phi(m, n)
		st := phi.Stats()
		r, sst := solve(phi)
		res.Steps = append(res.Steps, Step{
			N: n, Result: r, Stats: sst, Vars: st.Vars, Clauses: st.Clauses,
		})
		switch r {
		case core.False:
			res.Diameter = n
			res.Decided = true
			return res
		case core.Unknown:
			return res
		}
	}
	return res
}

// SolverPO returns a SolveFunc running QUBE(PO) on the tree form. Every
// solve the returned func starts runs under ctx, so cancelling it stops a
// diameter computation between (and inside) instances.
func SolverPO(ctx context.Context, opt core.Options) SolveFunc {
	opt.Mode = core.ModePartialOrder
	return func(q *qbf.QBF) (core.Verdict, core.Stats) {
		r, err := core.Solve(ctx, q, opt)
		if err != nil {
			invariant.Violated("dia: PO solve: %v", err)
		}
		return r.Verdict, r.Stats
	}
}

// SolverTO returns a SolveFunc that prenexes with the given strategy and
// runs QUBE(TO) under ctx.
func SolverTO(ctx context.Context, strategy prenex.Strategy, opt core.Options) SolveFunc {
	opt.Mode = core.ModeTotalOrder
	return func(q *qbf.QBF) (core.Verdict, core.Stats) {
		r, err := core.Solve(ctx, prenex.Apply(q, strategy), opt)
		if err != nil {
			invariant.Violated("dia: TO solve: %v", err)
		}
		return r.Verdict, r.Stats
	}
}
