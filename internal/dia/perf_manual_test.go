package dia

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/prenex"
)

// TestManualDiaPerf is a manual performance probe; run with -run ManualDiaPerf.
func TestManualDiaPerf(t *testing.T) {
	if os.Getenv("DIA_PERF") == "" {
		t.Skip("manual probe; set DIA_PERF=1 to run")
	}
	fams := []*models.Model{
		models.Semaphore(3), models.Semaphore(5), models.Semaphore(7),
		models.DME(3), models.DME(4), models.DME(5),
		models.Ring(3), models.Ring(4),
		models.Counter(2), models.Counter(3),
	}
	for _, m := range fams {
		for _, lbl := range []string{"PO", "TO"} {
			start := time.Now()
			var r Result
			opt := core.Options{TimeLimit: 15 * time.Second}
			maxN := m.KnownDiameter
			if maxN < 0 {
				maxN = 12
			}
			if lbl == "PO" {
				r = ComputeDiameter(m, maxN+1, SolverPO(context.Background(), opt))
			} else {
				r = ComputeDiameter(m, maxN+1, SolverTO(context.Background(), prenex.EUpAUp, opt))
			}
			fmt.Printf("%-12s %s: decided=%v d=%d in %8v steps=%d\n",
				m.Name, lbl, r.Decided, r.Diameter, time.Since(start).Round(time.Millisecond), len(r.Steps))
		}
	}
}
