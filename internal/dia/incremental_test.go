package dia

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/models"
)

// TestIncrementalDiameterMatchesOneShot pins the incremental ladder against
// both the one-shot PO driver and explicit BFS: same diameter, and the same
// verdict at every intermediate step. The incremental session runs with
// invariant checking on, so frame bookkeeping is deep-checked at every
// propagation fixpoint under -tags qbfdebug.
func TestIncrementalDiameterMatchesOneShot(t *testing.T) {
	cases := []*models.Model{
		models.Counter(2),
		models.Semaphore(1),
		models.Semaphore(2),
		models.Ring(3),
		models.TwoBit(),
	}
	if !testing.Short() {
		cases = append(cases, models.DME(2))
	}
	for _, m := range cases {
		bfs, err := models.ExplicitDiameter(m, 12)
		if err != nil {
			t.Fatal(err)
		}
		maxN := bfs + 2
		one := ComputeDiameter(m, maxN, SolverPO(context.Background(), core.Options{}))
		inc, err := ComputeDiameterIncremental(context.Background(), m, maxN,
			core.Options{CheckInvariants: true})
		if err != nil {
			t.Fatalf("%s: incremental: %v", m.Name, err)
		}
		if !inc.Decided || inc.Diameter != bfs {
			t.Errorf("%s: incremental diameter %v (decided %v), BFS %d",
				m.Name, inc.Diameter, inc.Decided, bfs)
		}
		if len(inc.Steps) != len(one.Steps) {
			t.Fatalf("%s: incremental took %d steps, one-shot %d",
				m.Name, len(inc.Steps), len(one.Steps))
		}
		for i, st := range inc.Steps {
			if st.Result != one.Steps[i].Result {
				t.Errorf("%s φ%d: incremental says %v, one-shot says %v",
					m.Name, st.N, st.Result, one.Steps[i].Result)
			}
		}
	}
}

// TestIncrementalDiameterBudget mirrors the one-shot budget behavior: an
// exhausted maxN leaves the result undecided with one step per n, and an
// exhausted node budget surfaces as an undecided result, not an error.
func TestIncrementalDiameterBudget(t *testing.T) {
	r, err := ComputeDiameterIncremental(context.Background(), models.Counter(3), 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Decided {
		t.Error("maxN=2 cannot decide counter3 (diameter 7)")
	}
	if len(r.Steps) != 3 {
		t.Errorf("got %d steps, want 3", len(r.Steps))
	}

	limited, err := ComputeDiameterIncremental(context.Background(), models.Counter(4), 20,
		core.Options{NodeLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if limited.Decided {
		t.Error("NodeLimit=1 must not decide counter4")
	}
}

// TestIncrementalDiameterCancel: a cancelled context stops the ladder
// between steps with an undecided result.
func TestIncrementalDiameterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := ComputeDiameterIncremental(ctx, models.Counter(2), 5, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Decided {
		t.Error("cancelled computation must not decide")
	}
}
