package dia

import (
	"context"
	"fmt"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/qbf"
)

// This file is the incremental diameter ladder: one core session solves the
// whole φ0, φ1, … sequence instead of building a fresh solver per n. The
// construction exploits how φn grows with n:
//
//   - Monotone parts — the chain links T'(x_{i-1},x_i) and the y-side
//     AND-ladder definitions g_i ← g_{i-1} ∧ t_i, each with its Tseitin
//     cone — enter the formula permanently (depth-0 adds) at the first
//     step that needs them and are never retracted.
//   - The step-local parts — the target link T'(x_n, xTarget) with its
//     cone and root assertion, and the break assertion ¬(g_n ∧ eq_n) with
//     eq_n's cone — live entirely in a pushed frame that pops before
//     advancing. Each TseitinPG call is self-contained (fresh definition
//     variables per call, no cross-call sharing), so a popped cone leaves
//     no dangling references, and retired steps leave no inert clauses
//     behind to dilute propagation or cover cubes.
//
// The prefix is built once for maxN with every definition variable
// pre-placed in its final block (the session prefix is fixed), so variable
// numbering is stable across the whole ladder and lemmas learned from the
// permanent part — frame tag 0 — survive every pop and prune later steps.
// Variables of popped and not-yet-reached cones are unconstrained, which
// costs nothing: an unreferenced variable is never branched on, and the
// matrix-empty solution check ignores it.

// ladderStep is the clause delta of one diameter step.
type ladderStep struct {
	// perm is added permanently (depth 0) when the ladder reaches this step.
	perm []qbf.Clause
	// assert is added inside the step's frame and retracted by its pop.
	assert []qbf.Clause
	// vars counts the prefix variables first used by this step.
	vars int
}

// buildLadder constructs the shared prefix for maxN and the per-step clause
// deltas. The returned QBF carries step 0's permanent clauses as its
// matrix; steps[0].perm is that same set (already installed when the
// session is built over the QBF).
func buildLadder(m *models.Model, maxN int) (*qbf.QBF, []ladderStep) {
	b := circuit.NewBuilder()
	l := newLayout(m, maxN)
	alloc := circuit.NewVarAlloc(l.next)
	tPrime := func(s, t []qbf.Var) circuit.Node {
		return b.Or(b.And(m.Init(b, s), m.Init(b, t)), m.Trans(b, s, t))
	}

	steps := make([]ladderStep, maxN+1)
	stepDefs := make([][]qbf.Var, maxN+1)
	var posFresh []qbf.Var
	g := make([]qbf.Lit, maxN+1)

	for n := 0; n <= maxN; n++ {
		st := &steps[n]
		if n == 0 {
			st.vars = 2 * l.bits // xTarget and x_0; y_0 counted below
			i0x := b.TseitinPG(m.Init(b, l.xs[0]), circuit.Pos, alloc)
			st.perm = append(st.perm, i0x.Clauses...)
			st.perm = append(st.perm, qbf.Clause{i0x.Root})
			posFresh = append(posFresh, i0x.Fresh...)
			st.vars += len(i0x.Fresh)

			i0y := b.TseitinPG(m.Init(b, l.ys[0]), circuit.Neg, alloc)
			st.perm = append(st.perm, i0y.Clauses...)
			stepDefs[0] = append(stepDefs[0], i0y.Fresh...)
			st.vars += len(i0y.Fresh)
			g[0] = i0y.Root
		} else {
			st.vars = l.bits // x_n; y_n counted below
			pn := b.TseitinPG(tPrime(l.xs[n-1], l.xs[n]), circuit.Pos, alloc)
			st.perm = append(st.perm, pn.Clauses...)
			st.perm = append(st.perm, qbf.Clause{pn.Root})
			posFresh = append(posFresh, pn.Fresh...)
			st.vars += len(pn.Fresh)

			tn := b.TseitinPG(tPrime(l.ys[n-1], l.ys[n]), circuit.Neg, alloc)
			st.perm = append(st.perm, tn.Clauses...)
			stepDefs[n] = append(stepDefs[n], tn.Fresh...)
			st.vars += len(tn.Fresh)
			gn := alloc.Fresh()
			stepDefs[n] = append(stepDefs[n], gn)
			st.vars++
			st.perm = append(st.perm, qbf.Clause{gn.PosLit(), g[n-1].Neg(), tn.Root.Neg()})
			g[n] = gn.PosLit()
		}
		st.vars += l.bits // y_n

		ln := b.TseitinPG(tPrime(l.xs[n], l.xTarget), circuit.Pos, alloc)
		st.assert = append(st.assert, ln.Clauses...)
		posFresh = append(posFresh, ln.Fresh...)
		st.vars += len(ln.Fresh)
		st.assert = append(st.assert, qbf.Clause{ln.Root})

		eqn := b.TseitinPG(models.EqVec(b, l.xTarget, l.ys[n]), circuit.Neg, alloc)
		st.assert = append(st.assert, eqn.Clauses...)
		stepDefs[n] = append(stepDefs[n], eqn.Fresh...)
		st.vars += len(eqn.Fresh)
		st.assert = append(st.assert, qbf.Clause{g[n].Neg(), eqn.Root.Neg()})
	}

	// Prefix tree: the same shape as Phi's, built once for maxN — the
	// x-branch and the y-ladder are incomparable siblings under xTarget.
	p := qbf.NewPrefix(int(alloc.Next()) - 1)
	root := p.AddBlock(nil, qbf.Exists, l.xTarget...)
	var xAll []qbf.Var
	for _, v := range l.xs {
		xAll = append(xAll, v...)
	}
	xAll = append(xAll, posFresh...)
	p.AddBlock(root, qbf.Exists, xAll...)
	parent := root
	for i := 0; i <= maxN; i++ {
		parent = p.AddBlock(parent, qbf.Forall, l.ys[i]...)
		if len(stepDefs[i]) > 0 {
			parent = p.AddBlock(parent, qbf.Exists, stepDefs[i]...)
		}
	}
	p.Finalize()
	return qbf.New(p, steps[0].perm), steps
}

// StepInstance materializes φk of m's diameter ladder as one self-contained
// formula: the permanent clauses of steps 0..k plus step k's framed
// assertions, over the ladder prefix built for k. The bench session suite
// uses these as base instances for incremental-vs-one-shot comparisons —
// every clause sits at frame 0, so an incremental session over the result
// keeps all of its learning across push/pop perturbations.
func StepInstance(m *models.Model, k int) (*qbf.QBF, error) {
	if k < 0 {
		return nil, fmt.Errorf("dia: StepInstance: negative step %d", k)
	}
	q, steps := buildLadder(m, k)
	var all []qbf.Clause
	for n := 0; n <= k; n++ {
		all = append(all, steps[n].perm...)
	}
	all = append(all, steps[k].assert...)
	return qbf.New(q.Prefix, all), nil
}

// statsDelta returns the counters cur accumulated since prev; high-water
// marks keep their current value.
func statsDelta(cur, prev core.Stats) core.Stats {
	d := cur
	d.Decisions -= prev.Decisions
	d.Propagations -= prev.Propagations
	d.PureAssignments -= prev.PureAssignments
	d.Conflicts -= prev.Conflicts
	d.Solutions -= prev.Solutions
	d.LearnedClauses -= prev.LearnedClauses
	d.LearnedCubes -= prev.LearnedCubes
	d.Backjumps -= prev.Backjumps
	d.ChronoBacktracks -= prev.ChronoBacktracks
	d.Restarts -= prev.Restarts
	d.Fixpoints -= prev.Fixpoints
	d.MemReductions -= prev.MemReductions
	d.Imports -= prev.Imports
	d.ImportsRejected -= prev.ImportsRejected
	d.Time -= prev.Time
	return d
}

// ComputeDiameterIncremental computes the diameter of m like
// ComputeDiameter, but over one incremental QUBE(PO) session instead of a
// fresh solver per step: each step adds its permanent clause delta, pushes
// a frame with the step-local assertions, solves, and pops. Lemmas learned
// from the permanent part survive across steps. opt.Mode and
// opt.Incremental are overridden; maxN bounds the iteration.
func ComputeDiameterIncremental(ctx context.Context, m *models.Model, maxN int, opt core.Options) (Result, error) {
	opt.Mode = core.ModePartialOrder
	opt.Incremental = true
	q, steps := buildLadder(m, maxN)
	s, err := core.NewSolver(q, opt)
	if err != nil {
		return Result{Model: m.Name}, err
	}
	res := Result{Model: m.Name}
	vars, clauses := 0, 0
	var prev core.Stats
	for n := 0; n <= maxN; n++ {
		if n > 0 {
			for _, c := range steps[n].perm {
				if err := s.AddClause(c); err != nil {
					return res, err
				}
			}
		}
		vars += steps[n].vars
		clauses += len(steps[n].perm) + len(steps[n].assert)
		if _, err := s.Push(); err != nil {
			return res, err
		}
		for _, c := range steps[n].assert {
			if err := s.AddClause(c); err != nil {
				return res, err
			}
		}
		v := s.Solve(ctx)
		cur := s.Stats()
		res.Steps = append(res.Steps, Step{
			N: n, Result: v, Stats: statsDelta(cur, prev), Vars: vars, Clauses: clauses,
		})
		prev = cur
		if _, err := s.Pop(); err != nil {
			return res, err
		}
		switch v {
		case core.False:
			res.Diameter = n
			res.Decided = true
			return res, nil
		case core.Unknown:
			return res, nil
		}
	}
	return res, nil
}
