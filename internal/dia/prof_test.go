package dia

import (
	"context"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/models"
)

func TestProfileHard(t *testing.T) {
	if os.Getenv("DIA_PROF") == "" {
		t.Skip("set DIA_PROF=1")
	}
	phi := Phi(models.Counter(3), 5)
	rRes, _ := core.Solve(context.Background(), phi, core.Options{Mode: core.ModePartialOrder, TimeLimit: 60 * time.Second})
	r, st := rRes.Verdict, rRes.Stats
	t.Logf("%v time=%v dec=%d", r, st.Time, st.Decisions)
}
