package dia

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/prenex"
	"repro/internal/qbf"
)

func TestPhiStructure(t *testing.T) {
	m := models.Counter(2)
	phi := Phi(m, 1)
	if phi.Prefix.IsPrenex() {
		t.Error("φn must be non-prenex")
	}
	if _, err := phi.ScopeConsistent(); err != nil {
		t.Fatalf("φn not scope consistent: %v", err)
	}
	if err := phi.Validate(); err != nil {
		t.Fatal(err)
	}
	if share := prenex.POTOShare(phi); share <= 0 {
		t.Errorf("POTOShare = %v, want > 0 (x-branch vs y-branch incomparable)", share)
	}
	// The ladder encoding interleaves per-step universal blocks with the
	// definition blocks that depend on them: prefix level 2(n+1)+1.
	pr := PhiPrenex(m, 1, prenex.EUpAUp)
	if !pr.Prefix.IsPrenex() {
		t.Fatal("PhiPrenex must be prenex")
	}
	if got, want := phi.Prefix.MaxLevel(), 2*(1+1)+1; got != want {
		t.Errorf("tree φn level = %d, want %d", got, want)
	}
	if got, want := pr.Prefix.MaxLevel(), 2*(1+1)+1; got != want {
		t.Errorf("prenex φn level = %d, want %d", got, want)
	}
	// The coarse (naive conversion) form keeps the paper's three-level
	// shape: ∃(x…) ≺ ∀(y…) ≺ ∃(defs).
	coarse := PhiCoarse(m, 1)
	if got := coarse.Prefix.MaxLevel(); got != 3 {
		t.Errorf("coarse φn level = %d, want 3", got)
	}
	if _, err := coarse.ScopeConsistent(); err != nil {
		t.Errorf("coarse φn inconsistent: %v", err)
	}
	// Both encodings must agree semantically.
	rl, _ := SolverPO(context.Background(), core.Options{})(phi)
	rc, _ := SolverPO(context.Background(), core.Options{})(coarse)
	if rl != rc {
		t.Errorf("ladder gives %v but coarse gives %v", rl, rc)
	}
}

func TestPhiTruthCounter2(t *testing.T) {
	// counter2 has diameter 3: φ0..φ2 true, φ3, φ4 false.
	m := models.Counter(2)
	solve := SolverPO(context.Background(), core.Options{})
	for n := 0; n <= 4; n++ {
		r, _ := solve(Phi(m, n))
		want := core.True
		if n >= 3 {
			want = core.False
		}
		if r != want {
			t.Errorf("φ%d = %v, want %v", n, r, want)
		}
	}
}

func TestComputeDiameterMatchesBFS(t *testing.T) {
	cases := []*models.Model{
		models.Counter(2),
		models.Semaphore(1),
		models.Semaphore(2),
		models.DME(2),
		models.DME(3),
		models.Ring(3),
		models.TwoBit(),
	}
	for _, m := range cases {
		bfs, err := models.ExplicitDiameter(m, 12)
		if err != nil {
			t.Fatal(err)
		}
		po := ComputeDiameter(m, bfs+2, SolverPO(context.Background(), core.Options{}))
		if !po.Decided || po.Diameter != bfs {
			t.Errorf("%s PO: QBF diameter %v (decided %v), BFS %d", m.Name, po.Diameter, po.Decided, bfs)
		}
		to := ComputeDiameter(m, bfs+2, SolverTO(context.Background(), prenex.EUpAUp, core.Options{}))
		if !to.Decided || to.Diameter != bfs {
			t.Errorf("%s TO: QBF diameter %v (decided %v), BFS %d", m.Name, to.Diameter, to.Decided, bfs)
		}
	}
}

func TestComputeDiameterAllStrategies(t *testing.T) {
	m := models.TwoBit()
	for _, s := range prenex.Strategies {
		r := ComputeDiameter(m, 4, SolverTO(context.Background(), s, core.Options{}))
		if !r.Decided || r.Diameter != 2 {
			t.Errorf("strategy %v: diameter %v (decided %v), want 2", s, r.Diameter, r.Decided)
		}
	}
}

func TestComputeDiameterBudget(t *testing.T) {
	m := models.Counter(3)
	r := ComputeDiameter(m, 2, SolverPO(context.Background(), core.Options{}))
	if r.Decided {
		t.Error("maxN=2 cannot decide counter3 (diameter 7)")
	}
	if len(r.Steps) != 3 {
		t.Errorf("got %d steps, want 3", len(r.Steps))
	}

	limited := ComputeDiameter(models.Counter(4), 20, SolverPO(context.Background(), core.Options{NodeLimit: 1}))
	if limited.Decided {
		t.Error("NodeLimit=1 must not decide counter4")
	}
}

func TestPhiPrenexSameValue(t *testing.T) {
	// Tree vs all four prenex strategies must agree on φn for a mix of
	// true and false instances.
	for _, m := range []*models.Model{models.TwoBit(), models.Counter(2), models.DME(2)} {
		for n := 0; n <= 3; n++ {
			phi := Phi(m, n)
			want, _ := SolverPO(context.Background(), core.Options{})(phi)
			for _, s := range prenex.Strategies {
				gotRes, err := core.Solve(context.Background(), prenex.Apply(phi, s), core.Options{Mode: core.ModeTotalOrder})
				got := gotRes.Verdict
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("%s φ%d: %v gives %v, tree gives %v", m.Name, n, s, got, want)
				}
			}
		}
	}
}

func TestSectionVIICPrefixShape(t *testing.T) {
	// For the two-bit example of Section VII.C at n = 1, the non-prenex
	// prefix keeps the y block incomparable with the x_0..x_n block, while
	// prenexing orders all of x_0..x_1 before the y block — the difference
	// behind the goods {y01} vs {x01,x02,x11,x12,y01}.
	m := models.TwoBit()
	phi := Phi(m, 1)
	p := phi.Prefix

	// Variable layout (bits=2, n=1): x_2 = {1,2}, x_0 = {3,4}, x_1 = {5,6},
	// y_0 = {7,8}, y_1 = {9,10}.
	xTarget := []qbf.Var{1, 2}
	xPath := []qbf.Var{3, 4, 5, 6}
	yVars := []qbf.Var{7, 8, 9, 10}
	for _, x := range xTarget {
		for _, y := range yVars {
			if !p.Before(x, y) {
				t.Errorf("x_{n+1} var %d must precede y var %d", x, y)
			}
		}
	}
	for _, x := range xPath {
		for _, y := range yVars {
			if p.Comparable(x, y) {
				t.Errorf("path var %d and y var %d must be incomparable in the tree", x, y)
			}
		}
	}
	pr := PhiPrenex(m, 1, prenex.EUpAUp).Prefix
	for _, x := range xPath {
		for _, y := range yVars {
			if !pr.Before(x, y) {
				t.Errorf("prenex form must order path var %d before y var %d", x, y)
			}
		}
	}
}

func TestPhiVariableCountsGrow(t *testing.T) {
	m := models.Counter(3)
	prev := 0
	for n := 0; n <= 3; n++ {
		st := Phi(m, n).Stats()
		if st.Vars <= prev {
			t.Errorf("φ%d has %d vars, not more than φ%d's %d", n, st.Vars, n-1, prev)
		}
		prev = st.Vars
	}
}
