package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureModule materializes a throwaway module whose files only need to
// parse (they are never compiled), writes the given path→source map under a
// temp dir with a go.mod claiming module path "repro", and returns a runner
// rooted there. Violations seeded in fixtures therefore never touch the
// real build.
func fixtureModule(t *testing.T, files map[string]string) (*Runner, string) {
	t.Helper()
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module repro\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for path, src := range files {
		full := filepath.Join(root, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewRunner(root)
	if err != nil {
		t.Fatal(err)
	}
	return r, root
}

func run(t *testing.T, r *Runner, root string) []Finding {
	t.Helper()
	rep, err := r.Run([]string{root + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	return rep.Findings
}

// runReport is run's sibling for tests that also assert on warnings.
func runReport(t *testing.T, r *Runner, root string) Report {
	t.Helper()
	rep, err := r.Run([]string{root + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// rulesFired collects the distinct rule names among findings.
func rulesFired(fs []Finding) map[string]int {
	m := map[string]int{}
	for _, f := range fs {
		m[f.Rule]++
	}
	return m
}

func TestL1FiresOnTimestampComparison(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/prenex/x.go": `package prenex
import "repro/internal/qbf"
func bad(p *qbf.Prefix, a, b qbf.Var) bool {
	if p.D(a) < p.D(b) && p.D(b) <= p.F(a) {
		return true
	}
	return (p.F(a)) >= p.D(b)
}
`,
	})
	fs := run(t, r, root)
	if got := rulesFired(fs)["L1"]; got != 3 {
		t.Fatalf("L1 findings = %d, want 3: %v", got, fs)
	}
}

func TestL1ExemptInsideQBF(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/qbf/x.go": `package qbf
func (p *Prefix) interval(a, b Var) bool { return p.D(a) < p.D(b) }
`,
	})
	if fs := run(t, r, root); len(fs) != 0 {
		t.Fatalf("findings inside internal/qbf: %v", fs)
	}
}

func TestL1IgnoresNonComparisonUse(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/prenex/x.go": `package prenex
import "repro/internal/qbf"
func ok(p *qbf.Prefix, a qbf.Var) int { return p.D(a) + p.F(a) }
`,
	})
	if fs := run(t, r, root); len(fs) != 0 {
		t.Fatalf("unexpected findings: %v", fs)
	}
}

func TestL2FiresOnRawConversions(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/core/x.go": `package core
import q "repro/internal/qbf"
func bad(n int) (q.Lit, q.Var) { return q.Lit(n), q.Var(n) }
func ok(n int) (q.Lit, q.Var)  { return q.LitOf(n), q.VarOf(n) }
func slices() []q.Var          { return []q.Var(nil) }
`,
	})
	fs := run(t, r, root)
	if got := rulesFired(fs)["L2"]; got != 2 {
		t.Fatalf("L2 findings = %d, want 2 (aliased import, no slice-conversion false positive): %v", got, fs)
	}
}

func TestL2Exemptions(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/qdimacs/x.go": `package qdimacs
import "repro/internal/qbf"
func parse(n int) qbf.Lit { return qbf.Lit(n) }
`,
		"internal/core/x_test.go": `package core
import "repro/internal/qbf"
func helper(n int) qbf.Var { return qbf.Var(n) }
`,
	})
	if fs := run(t, r, root); len(fs) != 0 {
		t.Fatalf("exempt files reported: %v", fs)
	}
}

func TestL3FiresOnLibraryPanic(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/models/x.go": `package models
func bad(x int) {
	if x < 0 {
		panic("negative")
	}
}
`,
	})
	fs := run(t, r, root)
	if got := rulesFired(fs)["L3"]; got != 1 {
		t.Fatalf("L3 findings = %d, want 1: %v", got, fs)
	}
}

func TestL3Exemptions(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"cmd/tool/main.go":        "package main\nfunc main() { panic(\"cli\") }\n",
		"internal/qbf/x.go":       "package qbf\nfunc f() { panic(\"foundation\") }\n",
		"internal/invariant/x.go": "package invariant\nfunc Violated() { panic(\"here\") }\n",
		"internal/core/x_test.go": "package core\nfunc g() { panic(\"test\") }\n",
	})
	if fs := run(t, r, root); len(fs) != 0 {
		t.Fatalf("exempt panics reported: %v", fs)
	}
}

func TestL4FiresOnStringAccumulation(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/core/x.go": `package core
import "fmt"
func bad(xs []int) string {
	s := ""
	for _, x := range xs {
		s += fmt.Sprintf("%d ", x)
	}
	s += "done"
	return fmt.Sprint(s)
}
`,
	})
	fs := run(t, r, root)
	got := rulesFired(fs)["L4"]
	// Three sites: the += with Sprintf (flagged as += and as a Sprint*
	// call), the += with a literal, and the fmt.Sprint.
	if got != 4 {
		t.Fatalf("L4 findings = %d, want 4: %v", got, fs)
	}
}

func TestL4ScopedToCore(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/models/x.go": `package models
import "fmt"
func ok(x int) string { return fmt.Sprintf("%d", x) }
`,
	})
	if fs := run(t, r, root); len(fs) != 0 {
		t.Fatalf("L4 fired outside internal/core: %v", fs)
	}
}

func TestAllowSuppresses(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/core/x.go": `package core
import "fmt"
func traced(n int) {
	trace(fmt.Sprintf("n=%d", n)) //lint:allow L4 trace is debug-only
	//lint:allow L4 building a report, off the solver path
	report := fmt.Sprintf("%d", n)
	_ = report
}
func trace(string) {}
`,
	})
	if fs := run(t, r, root); len(fs) != 0 {
		t.Fatalf("suppressed findings still reported: %v", fs)
	}
}

func TestAllowIsRuleSpecific(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/core/x.go": `package core
import "fmt"
func f(n int) string {
	return fmt.Sprintf("%d", n) //lint:allow L3 wrong rule name
}
`,
	})
	fs := run(t, r, root)
	if got := rulesFired(fs)["L4"]; got != 1 {
		t.Fatalf("allow for L3 must not silence L4: %v", fs)
	}
}

func TestAllowMultipleRules(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/core/x.go": `package core
import "fmt"
func f(n int) string {
	//lint:allow L3,L4 both on the next line
	panic(fmt.Sprintf("%d", n))
}
`,
	})
	if fs := run(t, r, root); len(fs) != 0 {
		t.Fatalf("multi-rule allow failed: %v", fs)
	}
}

func TestRulesByName(t *testing.T) {
	if got := len(RulesByName(nil, nil)); got != 14 {
		t.Fatalf("default rule count = %d, want 14", got)
	}
	only := RulesByName([]string{"L2"}, nil)
	if len(only) != 1 || only[0].Name() != "L2" {
		t.Fatalf("enable filter broken: %v", only)
	}
	without := RulesByName(nil, []string{"L3", "L4"})
	want := []string{"L1", "L2", "L5", "L6", "L7", "L8", "L9", "L10", "L11", "L12", "L14", "L15"}
	if len(without) != len(want) {
		t.Fatalf("disable filter broken: %v", without)
	}
	for i, w := range want {
		if without[i].Name() != w {
			t.Fatalf("disable filter order broken at %d: got %s, want %s", i, without[i].Name(), w)
		}
	}
}

func TestL5FiresOnBareGoroutine(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/bench/x.go": `package bench
func bad(work func()) {
	go func() {
		work()
	}()
	go (func() { work() })()
}
`,
	})
	fs := run(t, r, root)
	if got := rulesFired(fs)["L5"]; got != 2 {
		t.Fatalf("L5 findings = %d, want 2: %v", got, fs)
	}
}

func TestL5AcceptsRecoveredGoroutine(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/bench/x.go": `package bench
func ok(work func()) {
	go func() {
		defer func() {
			if p := recover(); p != nil {
				_ = p
			}
		}()
		work()
	}()
	go work() // named callee: checked at its definition, not the go site
}
`,
	})
	r.Rules = RulesByName(nil, []string{"L12"}) // fixture is about recover, not cancellability
	if fs := run(t, r, root); len(fs) != 0 {
		t.Fatalf("recovered goroutine reported: %v", fs)
	}
}

func TestL5RejectsIneffectiveRecover(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/bench/x.go": `package bench
func bad(work func(func())) {
	go func() {
		// recover in a non-deferred nested literal runs on a callback
		// frame and contains nothing.
		work(func() { recover() })
	}()
	go func() {
		defer recover() // nil by spec: recover must be called BY a deferred function
		work(nil)
	}()
	go func() {
		defer func() {
			// recover buried one literal deeper than the deferred frame.
			f := func() { recover() }
			f()
		}()
		work(nil)
	}()
}
`,
	})
	fs := run(t, r, root)
	if got := rulesFired(fs)["L5"]; got != 3 {
		t.Fatalf("L5 findings = %d, want 3: %v", got, fs)
	}
}

func TestL5AcceptsDeferInsideBlock(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/bench/x.go": `package bench
func ok(work func(), guard bool) {
	go func() {
		if guard {
			// deferred from a block, still the goroutine's own frame.
			defer func() { _ = recover() }()
		}
		work()
	}()
}
`,
	})
	r.Rules = RulesByName(nil, []string{"L12"}) // fixture is about recover, not cancellability
	if fs := run(t, r, root); len(fs) != 0 {
		t.Fatalf("frame-level deferred recover reported: %v", fs)
	}
}

func TestL5ScopedToBench(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/models/x.go": `package models
func f(work func()) {
	go func() { work() }()
}
`,
		"internal/bench/x_test.go": `package bench
func g(work func()) {
	go func() { work() }()
}
`,
	})
	r.Rules = RulesByName(nil, []string{"L12"}) // fixture is about L5 scoping, not cancellability
	if fs := run(t, r, root); len(fs) != 0 {
		t.Fatalf("L5 fired outside non-test internal/bench: %v", fs)
	}
}

func TestL6FiresOnMangledOpeners(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/models/x.go": `package models

/// doubled opener from a careless edit
//// banner made of slashes
//* flattened block opener
// / opener split across the slash
//    / same split, extra indentation
func f() {}
`,
	})
	fs := run(t, r, root)
	if got := rulesFired(fs)["L6"]; got != 5 {
		t.Fatalf("L6 findings = %d, want 5: %v", got, fs)
	}
}

func TestL6IgnoresLegitimateComments(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/models/x.go": `package models

// plain comment
// path mention: /root/repo/x.go is fine
// /root/leading/path is fine too (first token is not a lone slash)
// url https://example.com/a/b
// ---------------------------------------------------------------------------
//go:generate echo directives are untouched
/* block comments parse or they do not */
func f() {}
`,
		"internal/models/x_test.go": `package models

// tests follow the same comment hygiene
func g() {}
`,
	})
	if fs := run(t, r, root); len(fs) != 0 {
		t.Fatalf("false positives: %v", fs)
	}
}

func TestL6Allow(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/models/x.go": `package models

//lint:allow L6 ascii-art needs the slashes
/// deliberately tripled
func f() {}
`,
	})
	if fs := run(t, r, root); len(fs) != 0 {
		t.Fatalf("suppressed L6 still reported: %v", fs)
	}
}

func TestDisabledRuleDoesNotFire(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/models/x.go": "package models\nfunc f() { panic(\"x\") }\n",
	})
	r.Rules = RulesByName(nil, []string{"L3"})
	if fs := run(t, r, root); len(fs) != 0 {
		t.Fatalf("disabled L3 still fired: %v", fs)
	}
}

func TestFindingPositionsAndString(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/models/x.go": "package models\n\nfunc f() {\n\tpanic(\"x\")\n}\n",
	})
	fs := run(t, r, root)
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want exactly one", fs)
	}
	f := fs[0]
	if f.Line != 4 || f.Col != 2 {
		t.Fatalf("position %d:%d, want 4:2", f.Line, f.Col)
	}
	s := f.String()
	if !strings.Contains(s, "x.go:4:2:") || !strings.Contains(s, "[L3]") {
		t.Fatalf("String() = %q", s)
	}
}

func TestWalkSkipsTestdata(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/models/x.go":                "package models\nfunc ok() {}\n",
		"internal/models/testdata/fixture.go": "package fixture\nfunc f() { panic(\"seeded\") }\n",
	})
	if fs := run(t, r, root); len(fs) != 0 {
		t.Fatalf("testdata was linted: %v", fs)
	}
}

func TestParseModulePath(t *testing.T) {
	cases := []struct{ in, want string }{
		{"module repro\n\ngo 1.22\n", "repro"},
		{"// comment\nmodule example.com/x/y\n", "example.com/x/y"},
		{"module \"quoted/path\"\n", "quoted/path"},
		{"go 1.22\n", ""},
	}
	for _, c := range cases {
		if got := parseModulePath(c.in); got != c.want {
			t.Errorf("parseModulePath(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestL7FiresOnLibraryPrints(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/telemetry/x.go": `package telemetry
import (
	"fmt"
	"log"
)
func bad(n int) {
	fmt.Println("solving", n)
	fmt.Printf("n=%d\n", n)
	log.Printf("n=%d", n)
	log.Fatal("dead")
}
`,
	})
	fs := run(t, r, root)
	if got := rulesFired(fs)["L7"]; got != 4 {
		t.Fatalf("L7 findings = %d, want 4: %v", got, fs)
	}
}

func TestL7ExemptMainTestsAndWriters(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"cmd/tool/main.go": `package main
import "fmt"
func main() { fmt.Println("verdict") }
`,
		"internal/bench/x_test.go": `package bench
import "fmt"
func helper() { fmt.Println("debug") }
`,
		"internal/bench/x.go": `package bench
import (
	"fmt"
	"io"
	"os"
)
func table(w io.Writer) { fmt.Fprintf(w, "row\n") }
func report()           { fmt.Fprintln(os.Stderr, "contained failure") }
func allowed()          { fmt.Println("progress") } //lint:allow L7 campaign narration is this package's contract
`,
	})
	if fs := run(t, r, root); len(fs) != 0 {
		t.Fatalf("unexpected findings: %v", fs)
	}
}

func TestL8FiresOnLibraryContextRoots(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/core/x.go": `package core
import "context"
func bad() {
	ctx := context.Background()
	_ = ctx
	go func() { _ = context.TODO() }()
}
`,
	})
	fs := run(t, r, root)
	if got := rulesFired(fs)["L8"]; got != 2 {
		t.Fatalf("L8 findings = %d, want 2: %v", got, fs)
	}
}

func TestL8ExemptMainTestsAndAllows(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"cmd/tool/main.go": `package main
import "context"
func main() { _ = context.Background() }
`,
		"internal/core/x_test.go": `package core
import "context"
func helper() { _ = context.Background() }
`,
		"internal/core/x.go": `package core
import "context"
func edge(ctx context.Context) context.Context {
	if ctx != nil {
		return ctx
	}
	return context.Background() //lint:allow L8 nil-context normalization at the API edge
}
func threaded(ctx context.Context) context.Context { return ctx }
`,
	})
	if fs := run(t, r, root); len(fs) != 0 {
		t.Fatalf("unexpected findings: %v", fs)
	}
}

func TestL8IgnoresNonRootContextCalls(t *testing.T) {
	// Derivation calls (WithCancel, WithTimeout, AfterFunc) thread an
	// existing context and are exactly what the rule steers toward.
	r, root := fixtureModule(t, map[string]string{
		"internal/core/x.go": `package core
import "context"
func derive(ctx context.Context) {
	c, stop := context.WithCancel(ctx)
	defer stop()
	_ = c
}
`,
	})
	if fs := run(t, r, root); len(fs) != 0 {
		t.Fatalf("unexpected findings: %v", fs)
	}
}

func TestL14FiresOnBareSleepInLoops(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/core/x.go": `package core
import "time"
func poll(ready func() bool) {
	for !ready() {
		time.Sleep(10 * time.Millisecond)
	}
	for _, d := range []time.Duration{1, 2} {
		time.Sleep(d)
	}
}
`,
	})
	fs := run(t, r, root)
	if got := rulesFired(fs)["L14"]; got != 2 {
		t.Fatalf("L14 findings = %d, want 2: %v", got, fs)
	}
}

func TestL14ExemptMainTestsNonLoopsAndAllows(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"cmd/tool/main.go": `package main
import "time"
func main() {
	for {
		time.Sleep(time.Second)
	}
}
`,
		"internal/core/x_test.go": `package core
import "time"
func helper() {
	for {
		time.Sleep(time.Millisecond)
	}
}
`,
		"internal/core/x.go": `package core
import "time"
func once() {
	time.Sleep(time.Millisecond) // not in a loop: L14 does not apply
}
func launcher() {
	for i := 0; i < 3; i++ {
		go func() { time.Sleep(time.Second) }() //lint:allow L12 fixture: L14 must ignore another frame's wait
	}
}
func settle() {
	for i := 0; i < 3; i++ {
		time.Sleep(time.Millisecond) //lint:allow L14 fixed settling delay, no cancellation path exists
	}
}
`,
	})
	if fs := run(t, r, root); len(fs) != 0 {
		t.Fatalf("unexpected findings: %v", fs)
	}
}

func TestL14UnknownAllowListsRealRuleNames(t *testing.T) {
	// The unknown-rule warning enumerates the actual rule set; it must
	// include L14 and must not advertise the escape gate's L13 (which is
	// not an //lint:allow target).
	r, root := fixtureModule(t, map[string]string{
		"internal/core/x.go": `package core
func f() int {
	return 1 //lint:allow L99 bogus
}
`,
	})
	rep := runReport(t, r, root)
	if len(rep.Warnings) != 1 || rep.Warnings[0].Rule != "allow" {
		t.Fatalf("warnings = %v, want one allow warning", rep.Warnings)
	}
	msg := rep.Warnings[0].Message
	if !strings.Contains(msg, "L14") || strings.Contains(msg, "L13") {
		t.Fatalf("warning should list L14 but not L13: %q", msg)
	}
}
