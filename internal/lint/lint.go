// Package lint implements qbflint, a project-specific static analyzer
// for this repository. It is deliberately built on the standard library
// only (go/parser, go/types, go/importer): the module stays
// dependency-free while the driver still type-checks everything it
// analyzes.
//
// The driver expands a file set, groups it into per-package units, and
// type-checks each unit under every project build-tag variant
// (DefaultTagSets), so tag-gated files get the same coverage as the
// default build. Rules come in three shapes: syntactic rules that only
// read the AST (L1–L8, and the only coverage for files excluded under
// every tag set), typed per-file rules that consult types.Info
// (L10–L12), and module rules that see every unit at once (L9, whose
// atomic-field discipline is inherently cross-package). Findings carry
// file:line:col positions, deduplicate across tag passes, and sort
// stably. A finding can be suppressed at its site with a comment of the
// form
//
//	//lint:allow RULE[,RULE] optional reason
//
// which silences the named rules on the comment's own line and on the
// line immediately below it (so it works both as a trailing comment and
// as a comment above the offending statement). Suppressions naming a
// rule the driver does not know are reported as warnings — a typo in an
// //lint:allow otherwise silences nothing while looking like it did.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Rule, f.Message)
}

// Report is the outcome of one Run: findings fail the build, warnings
// (currently: //lint:allow directives naming unknown rules) do not.
type Report struct {
	Findings []Finding `json:"findings"`
	Warnings []Finding `json:"warnings"`
}

// File is the per-file context handed to rules.
type File struct {
	Fset *token.FileSet
	AST  *ast.File
	// Path is the file path as reported in findings (as given to Run).
	Path string
	// PkgPath is the import path of the enclosing package, derived from
	// the module path in go.mod and the file's directory.
	PkgPath string
	// IsTest reports whether the file name ends in _test.go.
	IsTest bool
	// QBFImportName is the local name under which the file imports
	// repro/internal/qbf ("" when it does not import it).
	QBFImportName string
	// Pkg and Info hold the type-check results for this file's
	// build-tag variant. Both are nil for files excluded under every
	// configured tag set; typed rules must not apply then.
	Pkg  *types.Package
	Info *types.Info

	// unit links back to the package variant the file was checked in
	// (nil for orphan files analyzed syntactically only).
	unit *unit
	// allow maps a line number to the set of rule names an //lint:allow
	// comment suppresses on that line.
	allow map[int]map[string]bool
}

// Allowed reports whether rule findings on the given line are suppressed.
func (f *File) Allowed(rule string, line int) bool {
	set := f.allow[line]
	return set != nil && (set[rule] || set["all"])
}

// TypeOf returns the type of an expression, nil when the file carries no
// type information or the expression was not reached by the checker.
func (f *File) TypeOf(e ast.Expr) types.Type {
	if f.Info == nil {
		return nil
	}
	return f.Info.TypeOf(e)
}

// Rule is one analyzer. Applies filters whole files (the exemption
// matrix lives there, including the f.Info != nil guard for typed
// rules); Check walks the AST and reports violations.
type Rule interface {
	Name() string // short identifier, e.g. "L1"
	Doc() string  // one-line description for -list
	Applies(f *File) bool
	Check(f *File, report func(pos token.Pos, msg string))
}

// moduleRule is implemented by rules that need the whole-module view:
// CheckModule runs once per tag pass over every unit instead of
// file-by-file. The per-file Check of such a rule is never called.
type moduleRule interface {
	Rule
	CheckModule(units []*unit, report func(f *File, pos token.Pos, msg string))
}

// Runner parses files and applies rules.
type Runner struct {
	Fset       *token.FileSet
	Rules      []Rule
	ModulePath string // module path from go.mod ("" outside a module)
	ModuleRoot string // directory containing go.mod
	// TagSets lists the build-tag variants to type-check (nil means
	// DefaultTagSets). Findings are deduplicated across variants.
	TagSets [][]string

	parsed map[string]*ast.File
	allows map[string]*allowSet
}

// NewRunner locates the enclosing module of dir (walking upward to the
// nearest go.mod) and returns a runner with the default rule set.
func NewRunner(dir string) (*Runner, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath := findModule(abs)
	return &Runner{
		Fset:       token.NewFileSet(),
		Rules:      DefaultRules(),
		ModulePath: modPath,
		ModuleRoot: root,
		parsed:     map[string]*ast.File{},
		allows:     map[string]*allowSet{},
	}, nil
}

// findModule walks from dir toward the filesystem root looking for go.mod
// and returns the module root directory and module path. When no go.mod is
// found it returns dir itself and an empty module path.
func findModule(dir string) (root, modPath string) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			return d, parseModulePath(string(data))
		}
		parent := filepath.Dir(d)
		if parent == d {
			return dir, ""
		}
		d = parent
	}
}

// parseModulePath extracts the module path from go.mod contents.
func parseModulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			return strings.Trim(rest, `"`)
		}
	}
	return ""
}

// Run expands the patterns ("./..." for a recursive walk, directories
// for their immediate .go files, explicit .go file paths), type-checks
// every build-tag variant, applies the rules, and returns the findings
// and warnings, each sorted by position. Parse errors abort the run;
// type errors do not (the build gate owns those — here partial
// information beats none).
func (r *Runner) Run(patterns []string) (Report, error) {
	paths, err := r.expand(patterns)
	if err != nil {
		return Report{}, err
	}
	for _, p := range paths {
		if _, err := r.parseFile(p); err != nil {
			return Report{}, err
		}
	}

	tagSets := r.TagSets
	if tagSets == nil {
		tagSets = DefaultTagSets()
	}
	seen := map[Finding]bool{}
	covered := map[string]bool{}
	var findings []Finding
	for _, tags := range tagSets {
		units := r.buildUnits(paths, tags)
		for _, u := range units {
			for _, f := range u.files {
				covered[f.Path] = true
			}
		}
		findings = append(findings, r.checkUnits(units, seen)...)
	}

	// Files excluded under every tag set still get the syntactic rules.
	var orphans []*File
	for _, p := range paths {
		if !covered[p] {
			orphans = append(orphans, r.newFile(p, nil))
		}
	}
	if len(orphans) > 0 {
		findings = append(findings, r.checkUnits([]*unit{{files: orphans}}, seen)...)
	}

	sortFindings(findings)
	warnings := r.allowWarnings(paths)
	sortFindings(warnings)
	return Report{Findings: findings, Warnings: warnings}, nil
}

// checkUnits applies every rule to the given units, suppressing allowed
// findings and deduplicating across tag passes via seen.
func (r *Runner) checkUnits(units []*unit, seen map[Finding]bool) []Finding {
	var out []Finding
	record := func(rule string, f *File, pos token.Pos, msg string) {
		p := r.Fset.Position(pos)
		if f.Allowed(rule, p.Line) {
			return
		}
		fd := Finding{Rule: rule, File: f.Path, Line: p.Line, Col: p.Column, Message: msg}
		if seen[fd] {
			return
		}
		seen[fd] = true
		out = append(out, fd)
	}
	for _, rule := range r.Rules {
		if mr, ok := rule.(moduleRule); ok {
			name := rule.Name()
			mr.CheckModule(units, func(f *File, pos token.Pos, msg string) {
				record(name, f, pos, msg)
			})
			continue
		}
		for _, u := range units {
			for _, f := range u.files {
				if !rule.Applies(f) {
					continue
				}
				name := rule.Name()
				rule.Check(f, func(pos token.Pos, msg string) {
					record(name, f, pos, msg)
				})
			}
		}
	}
	return out
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// newFile assembles the per-file rule context for one unit (nil for
// orphan, syntax-only files).
func (r *Runner) newFile(path string, u *unit) *File {
	af := r.parsed[path]
	f := &File{
		Fset:          r.Fset,
		AST:           af,
		Path:          path,
		IsTest:        strings.HasSuffix(path, "_test.go"),
		QBFImportName: importName(af, "repro/internal/qbf"),
		allow:         r.allowSet(path).lines,
		unit:          u,
	}
	if u != nil {
		f.PkgPath = u.pkgPath
		f.Pkg = u.pkg
		f.Info = u.info
	} else {
		f.PkgPath = r.pkgPath(path)
	}
	return f
}

// parserParse is the single parse entry point (split out so load.go can
// share it with the import path).
func parserParse(fset *token.FileSet, path string) (*ast.File, error) {
	return parser.ParseFile(fset, path, nil, parser.ParseComments)
}

// expand resolves the command-line patterns to a deduplicated, sorted
// list of .go file paths. Sorting here (not just at finding level) makes
// unit construction — and with it every downstream message that names
// "the first" site — deterministic.
func (r *Runner) expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var files []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			files = append(files, path)
		}
	}
	for _, pat := range patterns {
		switch {
		case strings.HasSuffix(pat, "/...") || pat == "...":
			dir := strings.TrimSuffix(pat, "...")
			dir = strings.TrimSuffix(dir, "/")
			if dir == "" {
				dir = "."
			}
			err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if d.IsDir() {
					if skipDir(d.Name()) && path != dir {
						return filepath.SkipDir
					}
					return nil
				}
				if strings.HasSuffix(path, ".go") {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		default:
			info, err := os.Stat(pat)
			if err != nil {
				return nil, err
			}
			if info.IsDir() {
				entries, err := os.ReadDir(pat)
				if err != nil {
					return nil, err
				}
				for _, e := range entries {
					if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
						add(filepath.Join(pat, e.Name()))
					}
				}
			} else {
				add(pat)
			}
		}
	}
	sort.Strings(files)
	return files, nil
}

// skipDir reports whether a directory is excluded from ./... walks:
// testdata, vendor, and hidden or underscore-prefixed directories, per the
// go tool's conventions.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// pkgPath derives the import path of the package containing path from the
// module path and the file's directory relative to the module root.
func (r *Runner) pkgPath(path string) string {
	if r.ModulePath == "" {
		return filepath.ToSlash(filepath.Dir(path))
	}
	abs, err := filepath.Abs(path)
	if err != nil {
		return r.ModulePath
	}
	rel, err := filepath.Rel(r.ModuleRoot, filepath.Dir(abs))
	if err != nil || rel == "." {
		return r.ModulePath
	}
	if strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(filepath.Dir(path))
	}
	return r.ModulePath + "/" + filepath.ToSlash(rel)
}

// importName returns the local name under which the file imports the given
// path: the explicit alias when one is present, the last path element
// otherwise, and "" when the file does not import it (or blanks/dots it).
func importName(af *ast.File, importPath string) string {
	for _, imp := range af.Imports {
		if strings.Trim(imp.Path.Value, `"`) != importPath {
			continue
		}
		if imp.Name != nil {
			switch imp.Name.Name {
			case "_", ".":
				return ""
			}
			return imp.Name.Name
		}
		if i := strings.LastIndex(importPath, "/"); i >= 0 {
			return importPath[i+1:]
		}
		return importPath
	}
	return ""
}

// allowDirective is one //lint:allow comment: the rule names it lists
// and where it sits, kept so unknown names can be warned about.
type allowDirective struct {
	rules []string
	line  int
	col   int
}

// allowSet is the per-file suppression state.
type allowSet struct {
	lines      map[int]map[string]bool
	directives []allowDirective
}

// allowSet scans (and caches) the file's //lint:allow directives. A
// directive on line C suppresses its rules on lines C and C+1.
func (r *Runner) allowSet(path string) *allowSet {
	if s, ok := r.allows[path]; ok {
		return s
	}
	s := &allowSet{lines: map[int]map[string]bool{}}
	af := r.parsed[path]
	for _, cg := range af.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, "lint:allow")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			pos := r.Fset.Position(c.Pos())
			d := allowDirective{line: pos.Line, col: pos.Column}
			for _, rule := range strings.Split(fields[0], ",") {
				rule = strings.TrimSpace(rule)
				if rule == "" {
					continue
				}
				d.rules = append(d.rules, rule)
				for _, ln := range [2]int{pos.Line, pos.Line + 1} {
					if s.lines[ln] == nil {
						s.lines[ln] = map[string]bool{}
					}
					s.lines[ln][rule] = true
				}
			}
			s.directives = append(s.directives, d)
		}
	}
	r.allows[path] = s
	return s
}

// allowWarnings reports //lint:allow directives naming rules the driver
// does not know: such a suppression silences nothing while looking like
// it did, so a typo must surface instead of rotting.
func (r *Runner) allowWarnings(paths []string) []Finding {
	known := map[string]bool{"all": true}
	// The known list is enumerated by name, not as a contiguous "L1-LN"
	// range: the rule numbers have a gap (L13 is the separate escape-gate
	// analyzer, not an //lint:allow target), so a range would misadvertise.
	names := make([]string, 0, len(DefaultRules()))
	for _, rule := range DefaultRules() {
		known[rule.Name()] = true
		names = append(names, rule.Name())
	}
	knownList := strings.Join(names, " ")
	var out []Finding
	for _, p := range paths {
		for _, d := range r.allowSet(p).directives {
			for _, name := range d.rules {
				if !known[name] {
					out = append(out, Finding{
						Rule: "allow", File: p, Line: d.line, Col: d.col,
						Message: fmt.Sprintf("//lint:allow names unknown rule %q (known: %s, all); the suppression has no effect", name, knownList),
					})
				}
			}
		}
	}
	return out
}
