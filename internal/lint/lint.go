// Package lint implements qbflint, a project-specific static analyzer for
// this repository. It is deliberately built on the standard library only
// (go/parser, go/ast, go/token): rules are purely syntactic, need no type
// information, and the module stays dependency-free.
//
// The driver walks a file set, runs every enabled rule over each parsed
// file, and collects findings with file:line:col positions. A finding can
// be suppressed at its site with a comment of the form
//
//	//lint:allow RULE[,RULE] optional reason
//
// which silences the named rules on the comment's own line and on the line
// immediately below it (so it works both as a trailing comment and as a
// comment above the offending statement).
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Rule, f.Message)
}

// File is the per-file context handed to rules.
type File struct {
	Fset *token.FileSet
	AST  *ast.File
	// Path is the file path as reported in findings (as given to Run).
	Path string
	// PkgPath is the import path of the enclosing package, derived from
	// the module path in go.mod and the file's directory.
	PkgPath string
	// IsTest reports whether the file name ends in _test.go.
	IsTest bool
	// QBFImportName is the local name under which the file imports
	// repro/internal/qbf ("" when it does not import it).
	QBFImportName string

	// allow maps a line number to the set of rule names an //lint:allow
	// comment suppresses on that line.
	allow map[int]map[string]bool
}

// Allowed reports whether rule findings on the given line are suppressed.
func (f *File) Allowed(rule string, line int) bool {
	set := f.allow[line]
	return set != nil && (set[rule] || set["all"])
}

// Rule is one analyzer. Applies filters whole files (the exemption matrix
// lives there); Check walks the AST and reports violations.
type Rule interface {
	Name() string // short identifier, e.g. "L1"
	Doc() string  // one-line description for -list
	Applies(f *File) bool
	Check(f *File, report func(pos token.Pos, msg string))
}

// Runner parses files and applies rules.
type Runner struct {
	Fset       *token.FileSet
	Rules      []Rule
	ModulePath string // module path from go.mod ("" outside a module)
	ModuleRoot string // directory containing go.mod
}

// NewRunner locates the enclosing module of dir (walking upward to the
// nearest go.mod) and returns a runner with the default rule set.
func NewRunner(dir string) (*Runner, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath := findModule(abs)
	return &Runner{
		Fset:       token.NewFileSet(),
		Rules:      DefaultRules(),
		ModulePath: modPath,
		ModuleRoot: root,
	}, nil
}

// findModule walks from dir toward the filesystem root looking for go.mod
// and returns the module root directory and module path. When no go.mod is
// found it returns dir itself and an empty module path.
func findModule(dir string) (root, modPath string) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			return d, parseModulePath(string(data))
		}
		parent := filepath.Dir(d)
		if parent == d {
			return dir, ""
		}
		d = parent
	}
}

// parseModulePath extracts the module path from go.mod contents.
func parseModulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			return strings.Trim(rest, `"`)
		}
	}
	return ""
}

// Run expands the patterns ("./..." for a recursive walk, directories for
// their immediate .go files, explicit .go file paths), parses every file,
// and returns all findings sorted by position. Parse errors abort the run.
func (r *Runner) Run(patterns []string) ([]Finding, error) {
	files, err := r.expand(patterns)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, path := range files {
		fs, err := r.checkFile(path)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return findings, nil
}

// expand resolves the command-line patterns to a deduplicated list of .go
// file paths.
func (r *Runner) expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var files []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			files = append(files, path)
		}
	}
	for _, pat := range patterns {
		switch {
		case strings.HasSuffix(pat, "/...") || pat == "...":
			dir := strings.TrimSuffix(pat, "...")
			dir = strings.TrimSuffix(dir, "/")
			if dir == "" {
				dir = "."
			}
			err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if d.IsDir() {
					if skipDir(d.Name()) && path != dir {
						return filepath.SkipDir
					}
					return nil
				}
				if strings.HasSuffix(path, ".go") {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		default:
			info, err := os.Stat(pat)
			if err != nil {
				return nil, err
			}
			if info.IsDir() {
				entries, err := os.ReadDir(pat)
				if err != nil {
					return nil, err
				}
				for _, e := range entries {
					if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
						add(filepath.Join(pat, e.Name()))
					}
				}
			} else {
				add(pat)
			}
		}
	}
	return files, nil
}

// skipDir reports whether a directory is excluded from ./... walks:
// testdata, vendor, and hidden or underscore-prefixed directories, per the
// go tool's conventions.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// checkFile parses one file and runs every applicable rule over it.
func (r *Runner) checkFile(path string) ([]Finding, error) {
	af, err := parser.ParseFile(r.Fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	f := &File{
		Fset:          r.Fset,
		AST:           af,
		Path:          path,
		PkgPath:       r.pkgPath(path),
		IsTest:        strings.HasSuffix(path, "_test.go"),
		QBFImportName: importName(af, "repro/internal/qbf"),
		allow:         collectAllows(r.Fset, af),
	}
	var findings []Finding
	for _, rule := range r.Rules {
		if !rule.Applies(f) {
			continue
		}
		rule.Check(f, func(pos token.Pos, msg string) {
			p := r.Fset.Position(pos)
			if f.Allowed(rule.Name(), p.Line) {
				return
			}
			findings = append(findings, Finding{
				Rule:    rule.Name(),
				File:    f.Path,
				Line:    p.Line,
				Col:     p.Column,
				Message: msg,
			})
		})
	}
	return findings, nil
}

// pkgPath derives the import path of the package containing path from the
// module path and the file's directory relative to the module root.
func (r *Runner) pkgPath(path string) string {
	if r.ModulePath == "" {
		return filepath.ToSlash(filepath.Dir(path))
	}
	abs, err := filepath.Abs(path)
	if err != nil {
		return r.ModulePath
	}
	rel, err := filepath.Rel(r.ModuleRoot, filepath.Dir(abs))
	if err != nil || rel == "." {
		return r.ModulePath
	}
	if strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(filepath.Dir(path))
	}
	return r.ModulePath + "/" + filepath.ToSlash(rel)
}

// importName returns the local name under which the file imports the given
// path: the explicit alias when one is present, the last path element
// otherwise, and "" when the file does not import it (or blanks/dots it).
func importName(af *ast.File, importPath string) string {
	for _, imp := range af.Imports {
		if strings.Trim(imp.Path.Value, `"`) != importPath {
			continue
		}
		if imp.Name != nil {
			switch imp.Name.Name {
			case "_", ".":
				return ""
			}
			return imp.Name.Name
		}
		if i := strings.LastIndex(importPath, "/"); i >= 0 {
			return importPath[i+1:]
		}
		return importPath
	}
	return ""
}

// collectAllows scans the file's comments for //lint:allow directives and
// returns the per-line suppression sets. A directive on line C suppresses
// its rules on lines C and C+1.
func collectAllows(fset *token.FileSet, af *ast.File) map[int]map[string]bool {
	allow := map[int]map[string]bool{}
	for _, cg := range af.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, "lint:allow")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			line := fset.Position(c.Pos()).Line
			for _, rule := range strings.Split(fields[0], ",") {
				rule = strings.TrimSpace(rule)
				if rule == "" {
					continue
				}
				for _, ln := range [2]int{line, line + 1} {
					if allow[ln] == nil {
						allow[ln] = map[string]bool{}
					}
					allow[ln][rule] = true
				}
			}
		}
	}
	return allow
}
