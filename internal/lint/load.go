package lint

import (
	"go/ast"
	"go/build"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// This file is the type-aware half of the driver: it groups the expanded
// file list into per-package units, filters files by build tags, and
// type-checks every unit with the standard library's go/types +
// go/importer only. Imports that resolve inside the module are
// type-checked from their non-test sources; standard-library imports go
// through the shared source importer; anything unresolvable degrades to
// an empty placeholder package so the checker — and the syntactic rules —
// keep working on partial information instead of aborting the run.

// unit is one type-checked package variant: the files of one
// (directory, package name) group under one build-tag set, sharing a
// types.Package and types.Info.
type unit struct {
	pkgPath string
	files   []*File
	pkg     *types.Package
	info    *types.Info

	decls map[types.Object]*ast.FuncDecl // lazily built by declOf
}

// declOf maps a function or method object back to its declaration within
// the unit, nil when the object is external or has no syntax here.
func (u *unit) declOf(obj types.Object) *ast.FuncDecl {
	if u == nil || obj == nil {
		return nil
	}
	if u.decls == nil {
		u.decls = map[types.Object]*ast.FuncDecl{}
		for _, f := range u.files {
			for _, d := range f.AST.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if o := u.info.Defs[fd.Name]; o != nil {
					u.decls[o] = fd
				}
			}
		}
	}
	return u.decls[obj]
}

// DefaultTagSets returns the build-tag variants the driver type-checks:
// the default build plus each project tag that swaps implementation
// files in. Every variant is analyzed and findings are deduplicated, so
// tag-gated files (deepcheck_qbfdebug.go, trace_off.go, ...) get the
// same coverage as default-build files.
func DefaultTagSets() [][]string {
	return [][]string{nil, {"qbfdebug"}, {"qbfnotrace"}}
}

// matchFile reports whether the file participates in a build with the
// given tags, using the go tool's own file-name and //go:build
// constraint logic.
func matchFile(dir, name string, tags []string) bool {
	ctxt := build.Default
	ctxt.BuildTags = tags
	ok, err := ctxt.MatchFile(dir, name)
	return err == nil && ok
}

// parseFile parses one file with comments, caching the AST: every
// tag-set pass and every import resolution reuses the same syntax tree,
// which also keeps token positions identical across passes (findings
// deduplicate exactly).
func (r *Runner) parseFile(path string) (*ast.File, error) {
	if af, ok := r.parsed[path]; ok {
		return af, nil
	}
	af, err := parserParse(r.Fset, path)
	if err != nil {
		return nil, err
	}
	r.parsed[path] = af
	return af, nil
}

// ldr resolves imports for one build-tag pass.
type ldr struct {
	r    *Runner
	tags []string
	pkgs map[string]*types.Package // memoized results, module and fallback
	busy map[string]bool           // cycle guard for module loads
}

func newLdr(r *Runner, tags []string) *ldr {
	return &ldr{r: r, tags: tags, pkgs: map[string]*types.Package{}, busy: map[string]bool{}}
}

// Import implements types.Importer. It never returns an error: failed
// resolutions yield an empty placeholder package, so type checking (and
// with it the rules) degrades instead of aborting — exactly what the
// seeded-violation fixtures need, since they reference module packages
// that do not exist in their throwaway tree.
func (l *ldr) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if mp := l.r.ModulePath; mp != "" && (path == mp || strings.HasPrefix(path, mp+"/")) {
		return l.modulePkg(path), nil
	}
	if isStdlibPath(path) {
		if pkg, err := stdImport(path); err == nil {
			l.pkgs[path] = pkg
			return pkg, nil
		}
	}
	return l.placeholder(path), nil
}

func (l *ldr) placeholder(path string) *types.Package {
	pkg := types.NewPackage(path, pathBase(path))
	pkg.MarkComplete()
	l.pkgs[path] = pkg
	return pkg
}

// modulePkg type-checks the non-test files of a module-internal package
// under this pass's tag set.
func (l *ldr) modulePkg(path string) *types.Package {
	if l.busy[path] {
		// An import cycle can only come from malformed input; break it
		// with an unmemoized placeholder rather than recursing forever.
		pkg := types.NewPackage(path, pathBase(path))
		pkg.MarkComplete()
		return pkg
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.r.ModulePath), "/")
	dir := filepath.Join(l.r.ModuleRoot, filepath.FromSlash(rel))
	asts := l.importASTs(dir)
	pkg := l.check(path, asts, nil)
	l.pkgs[path] = pkg
	return pkg
}

// importASTs parses the non-test, tag-matched files of dir that belong
// to its importable (non-main) package.
func (l *ldr) importASTs(dir string) []*ast.File {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	byName := map[string][]*ast.File{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if !matchFile(dir, name, l.tags) {
			continue
		}
		af, err := l.r.parseFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		byName[af.Name.Name] = append(byName[af.Name.Name], af)
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		if n != "main" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil
	}
	sort.Strings(names)
	return byName[names[0]]
}

// check runs the type checker tolerantly: errors are swallowed (the
// build gate owns compilation failures; here partial information beats
// none) and a nil result becomes a placeholder.
func (l *ldr) check(path string, asts []*ast.File, info *types.Info) *types.Package {
	if len(asts) == 0 {
		pkg := types.NewPackage(path, pathBase(path))
		pkg.MarkComplete()
		return pkg
	}
	conf := types.Config{
		Importer:    l,
		Error:       func(error) {},
		FakeImportC: true,
	}
	pkg, _ := conf.Check(path, l.r.Fset, asts, info)
	if pkg == nil {
		pkg = types.NewPackage(path, asts[0].Name.Name)
		pkg.MarkComplete()
	}
	return pkg
}

// buildUnits groups the expanded files by (directory, package name)
// under one tag set and type-checks each group, test files included —
// the in-package test variant checks alongside its package, the external
// _test package checks as its own unit.
func (r *Runner) buildUnits(paths []string, tags []string) []*unit {
	l := newLdr(r, tags)
	byDir := map[string][]string{}
	var dirs []string
	for _, p := range paths {
		dir, name := filepath.Dir(p), filepath.Base(p)
		if !matchFile(dir, name, tags) {
			continue
		}
		if _, ok := byDir[dir]; !ok {
			dirs = append(dirs, dir)
		}
		byDir[dir] = append(byDir[dir], p)
	}
	sort.Strings(dirs)

	var units []*unit
	for _, dir := range dirs {
		byName := map[string][]string{}
		var names []string
		for _, p := range byDir[dir] {
			af := r.parsed[p]
			n := af.Name.Name
			if _, ok := byName[n]; !ok {
				names = append(names, n)
			}
			byName[n] = append(byName[n], p)
		}
		sort.Strings(names)
		for _, name := range names {
			group := byName[name]
			pkgPath := r.pkgPath(group[0])
			checkPath := pkgPath
			if strings.HasSuffix(name, "_test") {
				checkPath += "_test"
			}
			info := newInfo()
			asts := make([]*ast.File, len(group))
			for i, p := range group {
				asts[i] = r.parsed[p]
			}
			u := &unit{pkgPath: pkgPath, info: info}
			u.pkg = l.check(checkPath, asts, info)
			for _, p := range group {
				u.files = append(u.files, r.newFile(p, u))
			}
			units = append(units, u)
		}
	}
	return units
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// isStdlibPath reports whether an import path names a standard-library
// package: its first element carries no dot (no domain).
func isStdlibPath(path string) bool {
	first := path
	if i := strings.IndexByte(path, '/'); i >= 0 {
		first = path[:i]
	}
	return !strings.Contains(first, ".")
}

func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// The standard library is type-checked from source once per process and
// shared by every Runner: fixtures and the real module pay the (~seconds)
// cost of importing fmt/context/net once, then hit the importer's cache.
// Stdlib packages live in their own FileSet — the rules never report
// positions inside them.
var (
	stdOnce sync.Once
	stdMu   sync.Mutex
	stdImp  types.Importer
	stdFail map[string]error
)

func stdImport(path string) (*types.Package, error) {
	stdOnce.Do(func() {
		stdImp = importer.ForCompiler(token.NewFileSet(), "source", nil)
		stdFail = map[string]error{}
	})
	stdMu.Lock()
	defer stdMu.Unlock()
	if err, ok := stdFail[path]; ok {
		return nil, err
	}
	pkg, err := stdImp.Import(path)
	if err != nil {
		stdFail[path] = err // failed source imports are expensive; do not retry
		return nil, err
	}
	return pkg, nil
}
