package escape

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// gateModule materializes a throwaway module (these fixtures ARE
// compiled, unlike the lint ones) and returns its root. A comment
// carrying the unique temp path is baked into every source file so the
// build cache can never serve a stale diagnostic replay from a previous
// test process.
func gateModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module gatefix\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for path, src := range files {
		full := filepath.Join(root, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		src += fmt.Sprintf("\n// cache-buster: %s\n", root)
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestGateFlagsAllocatingHotpath(t *testing.T) {
	root := gateModule(t, map[string]string{
		"hot/hot.go": `package hot

// Leak deliberately heap-allocates: the returned pointer outlives the
// frame, so escape analysis must move n to the heap.
//
//qbf:hotpath
func Leak() *int {
	n := 42
	return &n
}

// Clean stays on the stack.
//
//qbf:hotpath
func Clean(a, b int) int {
	s := a + b
	return s * s
}

// Unannotated allocates too, but is not gated.
func Unannotated() *int {
	m := 7
	return &m
}
`,
	})
	rep, err := Gate([]string{"./hot"}, Config{ModuleRoot: root})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped {
		t.Fatalf("gate skipped: %s", rep.SkipReason)
	}
	if len(rep.Funcs) != 2 {
		t.Fatalf("annotated funcs = %v, want Leak and Clean", rep.Funcs)
	}
	if len(rep.Violations) != 1 {
		t.Fatalf("violations = %v, want exactly the Leak allocation", rep.Violations)
	}
	v := rep.Violations[0]
	if v.Func != "Leak" {
		t.Fatalf("violation attributed to %q, want Leak: %+v", v.Func, v)
	}
	if !strings.Contains(v.Msg, "heap") {
		t.Fatalf("violation message %q does not mention the heap", v.Msg)
	}
	if s := v.String(); !strings.Contains(s, "[L13]") || !strings.Contains(s, "Leak") {
		t.Fatalf("String() = %q", s)
	}
}

func TestGateAttributesMethods(t *testing.T) {
	root := gateModule(t, map[string]string{
		"hot/hot.go": `package hot

type Ring struct{ buf []int }

//qbf:hotpath
func (r *Ring) Push(v int) *int {
	x := v
	return &x
}
`,
	})
	rep, err := Gate([]string{"./hot"}, Config{ModuleRoot: root})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 1 || rep.Violations[0].Func != "(*Ring).Push" {
		t.Fatalf("violations = %v, want one attributed to (*Ring).Push", rep.Violations)
	}
}

func TestGateCleanPackagePasses(t *testing.T) {
	root := gateModule(t, map[string]string{
		"hot/hot.go": `package hot

//qbf:hotpath
func Sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
`,
	})
	rep, err := Gate([]string{"./hot"}, Config{ModuleRoot: root})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped {
		t.Fatalf("gate skipped: %s", rep.SkipReason)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("clean function flagged: %v", rep.Violations)
	}
	if rep.Diagnostics == 0 {
		t.Fatal("no diagnostics inspected; the -m parse is broken")
	}
}

func TestGateSkipsWithoutAnnotations(t *testing.T) {
	root := gateModule(t, map[string]string{
		"hot/hot.go": "package hot\n\nfunc Plain() {}\n",
	})
	rep, err := Gate([]string{"./hot"}, Config{ModuleRoot: root})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Skipped || !strings.Contains(rep.SkipReason, Directive) {
		t.Fatalf("want skip naming the directive, got %+v", rep)
	}
}

// TestGateSkipsOnSilentToolchain drives the drift tolerance: a go tool
// that builds "successfully" but emits no diagnostics must yield a skip,
// not a silent pass or a failure.
func TestGateSkipsOnSilentToolchain(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("stub tool is a shell script")
	}
	root := gateModule(t, map[string]string{
		"hot/hot.go": `package hot

//qbf:hotpath
func Leak() *int {
	n := 1
	return &n
}
`,
	})
	stub := filepath.Join(t.TempDir(), "go-silent")
	if err := os.WriteFile(stub, []byte("#!/bin/sh\nexit 0\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	rep, err := Gate([]string{"./hot"}, Config{ModuleRoot: root, GoCmd: stub})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Skipped || !strings.Contains(rep.SkipReason, "drift") {
		t.Fatalf("want drift skip, got %+v", rep)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("skip must not carry violations: %v", rep.Violations)
	}
}

func TestGateFailsOnBrokenBuild(t *testing.T) {
	root := gateModule(t, map[string]string{
		"hot/hot.go": `package hot

//qbf:hotpath
func Broken() { undefined() }
`,
	})
	_, err := Gate([]string{"./hot"}, Config{ModuleRoot: root})
	if err == nil || !strings.Contains(err.Error(), "go build failed") {
		t.Fatalf("want a build error, got %v", err)
	}
}

func TestScanIgnoresContinuationAndNonHeapLines(t *testing.T) {
	rep := &Report{Funcs: []Func{{Name: "F", File: "/m/hot/hot.go", StartLine: 1, EndLine: 20}}}
	stderr := strings.Join([]string{
		"# gatefix/hot",
		"hot/hot.go:3:6: can inline F with cost 7",
		"hot/hot.go:5:2: n escapes to heap:",
		"hot/hot.go:5:2:   flow: ~r0 = &n:", // continuation: indented message
		"hot/hot.go:9:2: m does not escape",
		"hot/hot.go:30:2: x escapes to heap", // outside F's body: counted, not attributed
		"other/o.go:2:2: y escapes to heap",  // outside the gated dirs entirely
		"",
	}, "\n")
	rep.scan([]byte(stderr), "/m", []string{"/m/hot"})
	if rep.Diagnostics != 4 {
		t.Fatalf("diagnostics = %d, want 4 (inline, escape, does-not-escape, out-of-body escape)", rep.Diagnostics)
	}
	if len(rep.Violations) != 1 || rep.Violations[0].Line != 5 {
		t.Fatalf("violations = %v, want the line-5 escape only", rep.Violations)
	}
}
