// Package escape implements the L13 hot-path allocation gate: functions
// annotated with a //qbf:hotpath doc-comment directive are compiled with
// the escape-analysis diagnostics turned on (go build -gcflags
// '<pkg>=-m -m') and any "escapes to heap" / "moved to heap" diagnostic
// attributed to an annotated function fails the gate. The claim the gate
// hardens used to live only in a benchmark ratio (the ≤1.02x tracing
// overhead smoke): a bench can flake, a compiler diagnostic cannot.
//
// The parser is deliberately tolerant of toolchain drift, as the gate
// must never turn wording changes in the compiler's -m output into a red
// build: when the compiler produces no parseable diagnostics at all for
// the gated packages, the gate degrades to a skip-with-warning instead
// of failing (Report.Skipped). Modern go toolchains replay compiler
// diagnostics from the build cache, so in practice the diagnostics are
// always present — the skip path is the safety valve, not the norm.
package escape

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Directive is the annotation marking a function as allocation-gated.
const Directive = "//qbf:hotpath"

// Func is one annotated function: where its body spans, for attributing
// compiler diagnostics.
type Func struct {
	Name      string `json:"name"` // e.g. (*Solver).walkOcc
	File      string `json:"file"` // absolute path
	StartLine int    `json:"start"`
	EndLine   int    `json:"end"`
}

// Violation is one heap-allocation diagnostic inside an annotated
// function.
type Violation struct {
	Func string `json:"func"`
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Msg  string `json:"message"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s:%d:%d: [L13] %s: %s", v.File, v.Line, v.Col, v.Func, v.Msg)
}

// Report is the outcome of one gate run.
type Report struct {
	Funcs       []Func      `json:"funcs"`
	Violations  []Violation `json:"violations"`
	Diagnostics int         `json:"diagnostics"` // parseable compiler lines attributed to gated dirs
	Skipped     bool        `json:"skipped"`
	SkipReason  string      `json:"skipReason,omitempty"`
}

// Config parameterizes a gate run.
type Config struct {
	// ModuleRoot is the directory holding go.mod; go build runs there.
	ModuleRoot string
	// Gcflags is the compiler flag string enabling escape diagnostics
	// (default "-m -m"). check.sh pins this so toolchain defaults cannot
	// drift underneath the gate.
	Gcflags string
	// GoCmd is the go tool to invoke (default "go"); tests substitute a
	// stub to exercise the drift-tolerant skip path.
	GoCmd string
}

// Gate parses the non-test sources of each directory (given relative to
// the module root, e.g. "./internal/core"), collects //qbf:hotpath
// annotations, compiles the directories with escape diagnostics enabled,
// and attributes every heap-allocation diagnostic to the annotated
// function whose body contains it.
func Gate(dirs []string, cfg Config) (*Report, error) {
	if cfg.ModuleRoot == "" {
		return nil, fmt.Errorf("escape: ModuleRoot is required")
	}
	if cfg.Gcflags == "" {
		cfg.Gcflags = "-m -m"
	}
	if cfg.GoCmd == "" {
		cfg.GoCmd = "go"
	}

	rep := &Report{}
	var absDirs []string
	for _, dir := range dirs {
		abs := filepath.Join(cfg.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(dir, "./")))
		absDirs = append(absDirs, abs)
		funcs, err := annotated(abs)
		if err != nil {
			return nil, err
		}
		rep.Funcs = append(rep.Funcs, funcs...)
	}
	if len(rep.Funcs) == 0 {
		rep.Skipped = true
		rep.SkipReason = "no " + Directive + " annotations found in the gated packages"
		return rep, nil
	}

	stderr, err := compile(dirs, cfg)
	if err != nil {
		return nil, err
	}
	rep.scan(stderr, cfg.ModuleRoot, absDirs)
	if rep.Diagnostics == 0 {
		// Tolerant parser: no attributable diagnostics at all means the
		// compiler's output shape drifted (or was suppressed), not that
		// the hot paths are clean. Degrade to a skip the caller warns
		// about rather than a silent pass or a flaky failure.
		rep.Skipped = true
		rep.SkipReason = "compiler produced no parseable escape diagnostics for the gated packages (toolchain -m output drift?)"
	}
	sort.Slice(rep.Violations, func(i, j int) bool {
		a, b := rep.Violations[i], rep.Violations[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	return rep, nil
}

// annotated parses the non-test .go files of dir and returns the
// functions whose doc comment carries the //qbf:hotpath directive.
func annotated(dir string) ([]Func, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("escape: %w", err)
	}
	fset := token.NewFileSet()
	var out []Func
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		af, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for _, d := range af.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || fd.Body == nil {
				continue
			}
			if !hasDirective(fd.Doc) {
				continue
			}
			out = append(out, Func{
				Name:      funcDisplayName(fd),
				File:      path,
				StartLine: fset.Position(fd.Pos()).Line,
				EndLine:   fset.Position(fd.Body.Rbrace).Line,
			})
		}
	}
	return out, nil
}

func hasDirective(doc *ast.CommentGroup) bool {
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == Directive {
			return true
		}
	}
	return false
}

// funcDisplayName renders "name" or "(recv).name" for methods.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	var b strings.Builder
	b.WriteByte('(')
	writeTypeExpr(&b, recv)
	b.WriteString(").")
	b.WriteString(fd.Name.Name)
	return b.String()
}

func writeTypeExpr(b *strings.Builder, e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		b.WriteString(e.Name)
	case *ast.StarExpr:
		b.WriteByte('*')
		writeTypeExpr(b, e.X)
	case *ast.IndexExpr: // generic receiver
		writeTypeExpr(b, e.X)
	default:
		b.WriteString("?")
	}
}

// compile builds the gated directories with the pinned escape-diagnostic
// flags scoped to exactly those packages, returning the compiler's
// stderr. A failed build is a hard error: the build gate owns
// compilation, the escape gate must not mask it.
func compile(dirs []string, cfg Config) ([]byte, error) {
	args := []string{"build", "-o", os.DevNull}
	for _, dir := range dirs {
		args = append(args, "-gcflags="+relPattern(dir)+"="+cfg.Gcflags)
	}
	for _, dir := range dirs {
		args = append(args, relPattern(dir))
	}
	cmd := exec.Command(cfg.GoCmd, args...)
	cmd.Dir = cfg.ModuleRoot
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		if _, ok := err.(*exec.ExitError); ok {
			return nil, fmt.Errorf("escape: go build failed:\n%s", truncate(stderr.String(), 4096))
		}
		return nil, fmt.Errorf("escape: running %s: %w", cfg.GoCmd, err)
	}
	return stderr.Bytes(), nil
}

func relPattern(dir string) string {
	if strings.HasPrefix(dir, "./") || dir == "." {
		return dir
	}
	return "./" + filepath.ToSlash(dir)
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "\n... (truncated)"
}

// diagLine matches one top-level compiler diagnostic. The message must
// start with a non-space character: -m -m explanation traces repeat the
// position with indented "flow:"/"from" continuations, which are
// commentary on a diagnostic, not diagnostics.
var diagLine = regexp.MustCompile(`^([^\s:][^:]*\.go):(\d+):(\d+): (\S.*)$`)

// heapPhrases are the diagnostic shapes that mean a heap allocation was
// attributed to the source position. "does not escape" must NOT match.
var heapPhrases = []string{"escapes to heap", "moved to heap"}

// scan parses the compiler stderr, counting diagnostics that land in the
// gated directories and recording those inside annotated bodies.
func (r *Report) scan(stderr []byte, moduleRoot string, absDirs []string) {
	// One allocation often yields two diagnostics ("n escapes to heap"
	// and "moved to heap: n") at the same position; report it once.
	type site struct {
		file string
		line int
		col  int
	}
	seen := map[site]bool{}
	for _, line := range strings.Split(string(stderr), "\n") {
		m := diagLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(moduleRoot, filepath.FromSlash(file))
		}
		inGated := false
		for _, d := range absDirs {
			if filepath.Dir(file) == d {
				inGated = true
				break
			}
		}
		if !inGated {
			continue
		}
		r.Diagnostics++
		msg := m[4]
		if !containsAny(msg, heapPhrases) {
			continue
		}
		lineNo, _ := strconv.Atoi(m[2])
		colNo, _ := strconv.Atoi(m[3])
		if s := (site{file, lineNo, colNo}); seen[s] {
			continue
		} else {
			seen[s] = true
		}
		for _, fn := range r.Funcs {
			if fn.File == file && lineNo >= fn.StartLine && lineNo <= fn.EndLine {
				r.Violations = append(r.Violations, Violation{
					Func: fn.Name, File: file, Line: lineNo, Col: colNo, Msg: msg,
				})
				break
			}
		}
	}
}

func containsAny(s string, subs []string) bool {
	for _, sub := range subs {
		if strings.Contains(s, sub) {
			return true
		}
	}
	return false
}
