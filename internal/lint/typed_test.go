package lint

// Tests for the typed rules (L9-L12). Fixtures here are type-checked for
// real: module-internal imports resolve against the fixture tree, stdlib
// imports (sync, sync/atomic, context) go through the shared source
// importer, so the rules see genuine types.Info rather than parsed-only
// ASTs.

import (
	"strings"
	"testing"
)

func TestL9FiresOnMixedAtomicPlainAccess(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/ring/ring.go": `package ring
import "sync/atomic"
type Ring struct {
	Head int64
	pad  int64
}
func (r *Ring) Bump() { atomic.AddInt64(&r.Head, 1) }
func (r *Ring) Peek() int64 { return r.Head }
func (r *Ring) Pad() int64 { return r.pad }
`,
		"internal/user/user.go": `package user
import "repro/internal/ring"
func Reset(r *ring.Ring) { r.Head = 0 }
`,
	})
	fs := run(t, r, root)
	// Two plain accesses of Head: the in-package Peek read and the
	// cross-package Reset store. The pad field has no atomic access and
	// must stay silent.
	if got := rulesFired(fs)["L9"]; got != 2 {
		t.Fatalf("L9 findings = %d, want 2: %v", got, fs)
	}
}

func TestL9NegativeAtomicOnlyAndTests(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/ring/ring.go": `package ring
import "sync/atomic"
type Ring struct{ head int64 }
func New() *Ring { return &Ring{head: 0} } // keyed init pre-publication is fine
func (r *Ring) Bump() { atomic.AddInt64(&r.head, 1) }
func (r *Ring) Load() int64 { return atomic.LoadInt64(&r.head) }
`,
		"internal/ring/ring_test.go": `package ring
func peek(r *Ring) int64 { return r.head } // tests may observe freely
`,
	})
	if fs := run(t, r, root); len(fs) != 0 {
		t.Fatalf("unexpected findings: %v", fs)
	}
}

func TestL9Allow(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/ring/ring.go": `package ring
import "sync/atomic"
type Ring struct{ head int64 }
func (r *Ring) Bump() { atomic.AddInt64(&r.head, 1) }
func (r *Ring) reset() {
	r.head = 0 //lint:allow L9 pre-publication reset, no concurrent readers yet
}
`,
	})
	if fs := run(t, r, root); len(fs) != 0 {
		t.Fatalf("suppressed L9 still reported: %v", fs)
	}
}

func TestL10FiresOnContextField(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/models/x.go": `package models
import "context"
type task struct {
	ctx  context.Context
	name string
}
func use(t task) context.Context { return t.ctx }
`,
	})
	fs := run(t, r, root)
	if got := rulesFired(fs)["L10"]; got != 1 {
		t.Fatalf("L10 findings = %d, want 1: %v", got, fs)
	}
}

func TestL10ExemptMainTestsParamsAndAllows(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"cmd/tool/main.go": `package main
import "context"
type app struct{ ctx context.Context } // cmd wiring may hold its root
func main() { _ = app{} }
`,
		"internal/models/x_test.go": `package models
import "context"
type harness struct{ ctx context.Context }
`,
		"internal/models/x.go": `package models
import "context"
func ok(ctx context.Context) context.Context { return ctx } // parameters are the point
type carrier struct {
	//lint:allow L10 request-scoped carrier crossing a queue
	ctx context.Context
}
`,
	})
	if fs := run(t, r, root); len(fs) != 0 {
		t.Fatalf("unexpected findings: %v", fs)
	}
}

func TestL11FiresOnLockCopies(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/models/x.go": `package models
import "sync"
type guarded struct {
	mu sync.Mutex
	n  int
}
func byValueParam(g guarded) int { return g.n }
func byValueRecv(g guarded) {}
type g2 = guarded
func (g g2) method() {}
func assignCopy(src *guarded) {
	cp := *src
	_ = cp
}
func rangeCopy(gs []guarded) int {
	total := 0
	for _, g := range gs {
		total += g.n
	}
	return total
}
`,
	})
	fs := run(t, r, root)
	// Five copies: the by-value parameter, the by-value receiver on
	// method (the free function's own parameter makes byValueRecv's g a
	// parameter too), the *src dereference assignment, and the range
	// value.
	if got := rulesFired(fs)["L11"]; got != 5 {
		t.Fatalf("L11 findings = %d, want 5: %v", got, fs)
	}
}

func TestL11FiresOnAtomicContainers(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/models/x.go": `package models
import "sync/atomic"
type counters struct{ hits atomic.Int64 }
func snapshot(c *counters) {
	cp := *c
	_ = cp
}
`,
	})
	fs := run(t, r, root)
	if got := rulesFired(fs)["L11"]; got != 1 {
		t.Fatalf("L11 findings = %d, want 1: %v", got, fs)
	}
}

func TestL11NegativesAndCmdCoverage(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/models/x.go": `package models
import "sync"
type guarded struct {
	mu sync.Mutex
	n  int
}
func ok(g *guarded) int { return g.n }                  // pointers reference, not contain
func construct() guarded { return guarded{} }          // fresh composite literal, no copy
func viaSlice(gs []*guarded) {
	for _, g := range gs { // pointer elements: no copy
		_ = g
	}
	for i := range gs { // index-only range: no copy
		_ = i
	}
}
var registry = map[string]*guarded{}
`,
		"cmd/tool/main.go": `package main
import "sync"
func main() {
	var a sync.Mutex
	b := a // cmd/ packages are NOT exempt from L11
	_ = b
}
`,
	})
	fs := run(t, r, root)
	var l11Files []string
	for _, f := range fs {
		if f.Rule == "L11" {
			l11Files = append(l11Files, f.File)
		}
	}
	if len(l11Files) != 1 || !strings.Contains(l11Files[0], "cmd") {
		t.Fatalf("want exactly one L11 finding, in cmd/tool: %v", fs)
	}
}

func TestL12FiresOnUnstoppableGoroutines(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/models/x.go": `package models
func spin(work func()) {
	go func() {
		for {
			work()
		}
	}()
}
func loop() {
	for {
	}
}
func named() {
	go loop()
}
`,
	})
	fs := run(t, r, root)
	if got := rulesFired(fs)["L12"]; got != 2 {
		t.Fatalf("L12 findings = %d, want 2 (literal + named callee): %v", got, fs)
	}
}

func TestL12FiresOnExternalCalleeWithoutSignal(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/ext/ext.go": `package ext
func Forever() {
	for {
	}
}
`,
		"internal/models/x.go": `package models
import "repro/internal/ext"
func launch() {
	go ext.Forever()
}
`,
	})
	fs := run(t, r, root)
	if got := rulesFired(fs)["L12"]; got != 1 {
		t.Fatalf("L12 findings = %d, want 1 (external callee, no signal at call site): %v", got, fs)
	}
}

func TestL12AcceptsCancellableShapes(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/models/x.go": `package models
import "context"
func viaCtx(ctx context.Context, work func()) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}
func viaDone(done chan struct{}, work func()) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				work()
			}
		}
	}()
}
func drain(ch chan int) {
	go func() {
		for v := range ch { // range over a channel ends when it closes
			_ = v
		}
	}()
}
func namedWithBody(done chan struct{}) {
	go waiter(done)
}
func waiter(done chan struct{}) {
	<-done
}
func externalWithChanArg(ch chan int, sink func(chan int)) {
	go sink(ch) // channel at the call site: the callee can be stopped
}
`,
		"internal/models/x_test.go": `package models
func testHelper(work func()) {
	go func() { // tests may spin freely
		for {
			work()
		}
	}()
}
`,
		"cmd/tool/main.go": `package main
func main() {
	go func() { // package main owns the process lifetime
		for {
		}
	}()
}
`,
	})
	if fs := run(t, r, root); len(fs) != 0 {
		t.Fatalf("unexpected findings: %v", fs)
	}
}

func TestL12Allow(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/models/x.go": `package models
func spin() {
	//lint:allow L12 process-lifetime janitor, dies with the process by design
	go func() {
		for {
		}
	}()
}
`,
	})
	if fs := run(t, r, root); len(fs) != 0 {
		t.Fatalf("suppressed L12 still reported: %v", fs)
	}
}

func TestL15FiresOnDiscardedSyncAndClose(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/models/x.go": `package models
import "os"
func write(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	f.Sync()
	_ = f.Close()
	return nil
}
`,
	})
	fs := run(t, r, root)
	// Three discards: the statement-position Close on the error path, the
	// statement-position Sync, and the blank-assigned Close.
	if got := rulesFired(fs)["L15"]; got != 3 {
		t.Fatalf("L15 findings = %d, want 3: %v", got, fs)
	}
}

func TestL15ExemptDeferCheckedMainTestsAndOtherClosers(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/models/x.go": `package models
import (
	"bytes"
	"io"
	"os"
)
func read(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // deferred cleanup on a read path is the idiom
	return io.ReadAll(f)
}
func write(f *os.File, b []byte) error {
	if _, err := f.Write(b); err != nil {
		return err
	}
	if err := f.Sync(); err != nil { // checked: fine
		return err
	}
	return f.Close() // returned: fine
}
func other(r io.ReadCloser) {
	r.Close() // not an *os.File: another rule's business
	var buf bytes.Buffer
	buf.Write(nil) // same-named methods elsewhere stay silent
}
`,
		"internal/models/x_test.go": `package models
import "os"
func scratch(f *os.File) {
	f.Close() // tests may discard freely
}
`,
		"cmd/tool/main.go": `package main
import "os"
func main() {
	f, _ := os.Create("x")
	f.Close() // package main is not library code
}
`,
	})
	if fs := run(t, r, root); len(fs) != 0 {
		t.Fatalf("unexpected findings: %v", fs)
	}
}

func TestL15Allow(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/models/x.go": `package models
import "os"
func bestEffort(f *os.File) {
	f.Sync() //lint:allow L15 best-effort flush on the shutdown path
}
`,
	})
	if fs := run(t, r, root); len(fs) != 0 {
		t.Fatalf("suppressed L15 still reported: %v", fs)
	}
}

func TestAllowMultiRuleTypedAndSyntactic(t *testing.T) {
	// One line violating both L7 (library print) and L11 (lock copy),
	// suppressed by a single multi-rule directive.
	r, root := fixtureModule(t, map[string]string{
		"internal/models/x.go": `package models
import (
	"fmt"
	"sync"
)
func f(src *sync.Mutex) {
	cp := *src; fmt.Println("copied") //lint:allow L7,L11 demo of a deliberately unsound line
	_ = cp
}
`,
	})
	if fs := run(t, r, root); len(fs) != 0 {
		t.Fatalf("multi-rule allow failed: %v", fs)
	}
}

func TestAllowUnknownRuleWarns(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/models/x.go": `package models
func f() {
	panic("boom") //lint:allow L99 typo for L3
}
`,
	})
	rep := runReport(t, r, root)
	// The typo silences nothing: the L3 finding must survive, and the
	// unknown name must surface as a warning.
	if got := rulesFired(rep.Findings)["L3"]; got != 1 {
		t.Fatalf("L3 findings = %d, want 1 (L99 allow must not suppress): %v", got, rep.Findings)
	}
	if len(rep.Warnings) != 1 || rep.Warnings[0].Rule != "allow" {
		t.Fatalf("warnings = %v, want one unknown-rule warning", rep.Warnings)
	}
	if !strings.Contains(rep.Warnings[0].Message, "L99") {
		t.Fatalf("warning does not name the unknown rule: %v", rep.Warnings[0])
	}
}

func TestAllowKnownRuleDoesNotWarn(t *testing.T) {
	r, root := fixtureModule(t, map[string]string{
		"internal/models/x.go": `package models
func f() {
	panic("boom") //lint:allow L3 fine
}
`,
	})
	rep := runReport(t, r, root)
	if len(rep.Findings) != 0 || len(rep.Warnings) != 0 {
		t.Fatalf("findings=%v warnings=%v, want none", rep.Findings, rep.Warnings)
	}
}
