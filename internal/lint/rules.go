package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The rule set encodes project conventions that ordinary vet cannot see.
// Exemptions are structural, not ad hoc:
//
//   - internal/qbf owns the Lit/Var representation and the DFS timestamps,
//     so it is exempt from L1 and L2 (the rules exist to funnel everyone
//     else through its API). It is also exempt from L3 because package
//     invariant imports qbf for the deep checks — qbf using invariant
//     would be an import cycle.
//   - internal/qdimacs is the parser boundary where external integers
//     legitimately become Lit/Var, so it is exempt from L2.
//   - internal/invariant is the sanctioned home of panics (Violated), so
//     it is exempt from L3.
//   - Test files and package main (cmd/, examples/) may panic and convert
//     freely: they are not library code.

// DefaultRules returns all rules in canonical order. L1-L8 and L14 are
// syntactic; L9-L12 and L15 (rules_typed.go) consult type information.
// L13 is the allocation escape gate, a separate compiler-assisted
// analyzer.
func DefaultRules() []Rule {
	return []Rule{
		ruleTimestamps{}, ruleConversions{}, rulePanic{}, ruleStringBuild{},
		ruleGoRecover{}, ruleCommentOpener{}, ruleDirectPrint{}, ruleContextRoot{},
		ruleAtomicField{}, ruleCtxField{}, ruleLockCopy{}, ruleGoCancel{},
		ruleSleepLoop{}, ruleFileSyncErr{},
	}
}

// RulesByName filters the default set: enable lists the rules to keep
// (empty = all), disable lists rules to drop.
func RulesByName(enable, disable []string) []Rule {
	keep := map[string]bool{}
	for _, n := range enable {
		keep[n] = true
	}
	drop := map[string]bool{}
	for _, n := range disable {
		drop[n] = true
	}
	var out []Rule
	for _, r := range DefaultRules() {
		if len(keep) > 0 && !keep[r.Name()] {
			continue
		}
		if drop[r.Name()] {
			continue
		}
		out = append(out, r)
	}
	return out
}

// unparen strips redundant parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// ---------------------------------------------------------------------------
// L1: no direct comparison of DFS timestamps.

type ruleTimestamps struct{}

func (ruleTimestamps) Name() string { return "L1" }
func (ruleTimestamps) Doc() string {
	return "no direct comparison of Prefix.D/Prefix.F timestamps outside internal/qbf; use Before/Comparable"
}

func (ruleTimestamps) Applies(f *File) bool {
	return f.PkgPath != "repro/internal/qbf"
}

// isTimestampCall matches a call of the form x.D(v) or x.F(v): the getter
// shape of the DFS timestamps. Purely syntactic — any one-argument method
// named D or F matches, which is precise enough in this codebase.
func isTimestampCall(e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return sel.Sel.Name == "D" || sel.Sel.Name == "F"
}

func (ruleTimestamps) Check(f *File, report func(token.Pos, string)) {
	ast.Inspect(f.AST, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch bin.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		default:
			return true
		}
		if isTimestampCall(bin.X) || isTimestampCall(bin.Y) {
			report(bin.Pos(), "comparing raw DFS timestamps; use Prefix.Before or Prefix.Comparable (the interval test over-approximates ≺ on same-quantifier parent/child blocks)")
		}
		return true
	})
}

// ---------------------------------------------------------------------------
// L2: no raw int↔Lit/Var conversions outside the owning packages.

type ruleConversions struct{}

func (ruleConversions) Name() string { return "L2" }
func (ruleConversions) Doc() string {
	return "no raw qbf.Lit(n)/qbf.Var(n) conversions outside internal/qbf and internal/qdimacs; use LitOf/VarOf"
}

func (ruleConversions) Applies(f *File) bool {
	switch f.PkgPath {
	case "repro/internal/qbf", "repro/internal/qdimacs":
		return false
	}
	return !f.IsTest && f.QBFImportName != ""
}

func (ruleConversions) Check(f *File, report func(token.Pos, string)) {
	ast.Inspect(f.AST, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		// qbf.Lit(x) / qbf.Var(x): the Fun of a conversion to a named
		// type is a plain SelectorExpr. Slice conversions like
		// []qbf.Var(nil) have an ArrayType Fun and do not match.
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != f.QBFImportName {
			return true
		}
		switch sel.Sel.Name {
		case "Lit", "Var":
			report(call.Pos(), "raw integer conversion to qbf."+sel.Sel.Name+"; use qbf."+sel.Sel.Name+"Of (validates the representation) or the zero value")
		}
		return true
	})
}

// ---------------------------------------------------------------------------
// L3: library code must not panic directly.

type rulePanic struct{}

func (rulePanic) Name() string { return "L3" }
func (rulePanic) Doc() string {
	return "no direct panic in library packages; report broken internal state via invariant.Violated"
}

func (rulePanic) Applies(f *File) bool {
	if f.IsTest || f.AST.Name.Name == "main" {
		return false
	}
	switch f.PkgPath {
	case "repro/internal/qbf", "repro/internal/invariant":
		return false
	}
	return true
}

func (rulePanic) Check(f *File, report func(token.Pos, string)) {
	ast.Inspect(f.AST, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
			report(call.Pos(), "direct panic in library code; use invariant.Violated so all unreachable-state reports share one prefix and one grep target")
		}
		return true
	})
}

// ---------------------------------------------------------------------------
// L4: no string accumulation on solver paths under internal/core.

type ruleStringBuild struct{}

func (ruleStringBuild) Name() string { return "L4" }
func (ruleStringBuild) Doc() string {
	return "no fmt.Sprintf/Sprint/Sprintln or string += accumulation in internal/core; use strings.Builder (suppress intentional sites with //lint:allow L4)"
}

func (ruleStringBuild) Applies(f *File) bool {
	return !f.IsTest && strings.HasPrefix(f.PkgPath, "repro/internal/core")
}

// stringish reports whether an expression syntactically produces a string:
// a string literal, a fmt.Sprint* call, or a concatenation involving one.
func stringish(e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.BasicLit:
		return e.Kind == token.STRING
	case *ast.BinaryExpr:
		return e.Op == token.ADD && (stringish(e.X) || stringish(e.Y))
	case *ast.CallExpr:
		return isSprintCall(e)
	}
	return false
}

func isSprintCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "fmt" {
		return false
	}
	switch sel.Sel.Name {
	case "Sprintf", "Sprint", "Sprintln":
		return true
	}
	return false
}

func (ruleStringBuild) Check(f *File, report func(token.Pos, string)) {
	ast.Inspect(f.AST, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Rhs) == 1 && stringish(n.Rhs[0]) {
				report(n.Pos(), "string += accumulation allocates quadratically; use strings.Builder")
			}
		case *ast.CallExpr:
			if isSprintCall(n) {
				report(n.Pos(), "fmt.Sprint* allocates on the solver path; use strings.Builder or fmt.Fprintf into it")
			}
		}
		return true
	})
}

// ---------------------------------------------------------------------------
// L5: campaign goroutines in internal/bench must contain panics.

type ruleGoRecover struct{}

func (ruleGoRecover) Name() string { return "L5" }
func (ruleGoRecover) Doc() string {
	return "go func literals in internal/bench must call recover (via defer); an uncontained goroutine panic kills the whole campaign"
}

func (ruleGoRecover) Applies(f *File) bool {
	return !f.IsTest && f.PkgPath == "repro/internal/bench"
}

// callsRecover reports whether the goroutine body contains a recover that
// can actually contain a panic in that goroutine: a call to the recover
// builtin in the frame of a function literal deferred from the goroutine's
// own frame. A recover in a nested, non-deferred literal (e.g. a callback
// argument) runs on some other frame and stops nothing, and a bare
// `defer recover()` returns nil by spec — neither counts.
func callsRecover(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			// A nested literal is a different frame; a recover inside it
			// cannot contain this goroutine's panic. Deferred literals are
			// reached through the DeferStmt case, not here.
			return false
		case *ast.DeferStmt:
			if lit, ok := unparen(n.Call.Fun).(*ast.FuncLit); ok && recoverInFrame(lit.Body) {
				found = true
			}
			return false
		}
		return true
	})
	return found
}

// recoverInFrame reports whether recover is called in the frame of the
// deferred literal whose body is given — i.e. anywhere in the body except
// inside further nested function literals, where recover is ineffective.
func recoverInFrame(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "recover" {
				found = true
			}
		}
		return true
	})
	return found
}

func (ruleGoRecover) Check(f *File, report func(token.Pos, string)) {
	ast.Inspect(f.AST, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := unparen(g.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true // named callees are checked where they are defined
		}
		if !callsRecover(lit.Body) {
			report(g.Pos(), "goroutine launched without a recover: a panic here crashes the whole benchmark campaign instead of erroring one instance")
		}
		return true
	})
}

// ---------------------------------------------------------------------------
// L6: no mangled comment openers.

type ruleCommentOpener struct{}

func (ruleCommentOpener) Name() string { return "L6" }
func (ruleCommentOpener) Doc() string {
	return "no mangled line-comment openers ('///', '//*', or a stray leading '/ ' in the text): edit and merge damage; write a plain '// ' comment"
}

// Applies everywhere: a broken opener is damage in any file, tests included.
// A truly detached opener like a bare "/ text" line is a parse error and
// never reaches the rules, so this rule covers the mangled forms that still
// parse — a doubled opener ("/// x", "//// banner"), a flattened block
// opener ("//* x"), and a split opener whose second slash landed in the
// comment text ("// / x", the historical options.go defect).
func (ruleCommentOpener) Applies(f *File) bool { return true }

func (ruleCommentOpener) Check(f *File, report func(token.Pos, string)) {
	for _, cg := range f.AST.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//")
			if !ok {
				continue // a malformed /* block is a parse error, not a finding
			}
			switch {
			case strings.HasPrefix(text, "/"):
				report(c.Pos(), "doubled comment opener '///'; write a plain '// ' comment")
			case strings.HasPrefix(text, "*"):
				report(c.Pos(), "flattened block opener '//*'; write '// ' or a real /* */ block")
			default:
				// "// / text": the opener was split by an edit and its second
				// slash ended up leading the text. A lone first token "/" is
				// the tell — "/root/path" or "https://…" do not match.
				trimmed := strings.TrimLeft(text, " \t")
				if trimmed == "/" || strings.HasPrefix(trimmed, "/ ") {
					report(c.Pos(), "comment text begins with a stray '/'; merge it back into the '//' opener")
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// L7: library packages must not print to process-global streams.

type ruleDirectPrint struct{}

func (ruleDirectPrint) Name() string { return "L7" }
func (ruleDirectPrint) Doc() string {
	return "no fmt.Print*/log.Print* in library packages; report through telemetry, returned errors, or a caller-supplied io.Writer (suppress intentional sites with //lint:allow L7)"
}

// Applies to every non-test, non-main package: a library that writes to
// stdout/stderr on its own bypasses the observability layer (traces and
// metrics are attachable, a raw print is not) and corrupts CLI framing —
// qbfsolve's verdict line and golden -stats output share those streams.
func (ruleDirectPrint) Applies(f *File) bool {
	return !f.IsTest && f.AST.Name.Name != "main"
}

func (ruleDirectPrint) Check(f *File, report func(token.Pos, string)) {
	ast.Inspect(f.AST, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		switch pkg.Name {
		case "fmt":
			switch name {
			case "Print", "Printf", "Println":
				report(call.Pos(), "fmt."+name+" writes to process stdout from library code; take an io.Writer or attach a telemetry exporter")
			}
		case "log":
			switch name {
			case "Print", "Printf", "Println", "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
				report(call.Pos(), "log."+name+" uses the process-global logger from library code; return an error or emit a telemetry event")
			}
		}
		return true
	})
}

// ---------------------------------------------------------------------------
// L8: library packages must not invent context roots.

type ruleContextRoot struct{}

func (ruleContextRoot) Name() string { return "L8" }
func (ruleContextRoot) Doc() string {
	return "no context.Background()/context.TODO() in library packages; accept a ctx parameter so cancellation reaches every solve (suppress deliberate lifecycle roots with //lint:allow L8)"
}

// Applies to every non-test, non-main package. The context-first API
// consolidation (DESIGN.md §9.5) made cancellation flow through leading
// ctx arguments; a library call minting its own Background severs that
// flow — the solve it starts can never be cancelled, drained, or traced
// to a request. The legitimate roots are structural and few: API edges
// normalizing a documented nil ctx to Background, and components that own
// a process-lifecycle context (the server's drain root). Those carry
// //lint:allow L8 with a reason.
func (ruleContextRoot) Applies(f *File) bool {
	return !f.IsTest && f.AST.Name.Name != "main"
}

func (ruleContextRoot) Check(f *File, report func(token.Pos, string)) {
	ast.Inspect(f.AST, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != "context" {
			return true
		}
		switch sel.Sel.Name {
		case "Background", "TODO":
			report(call.Pos(), "context."+sel.Sel.Name+"() mints a fresh context root in library code, severing caller cancellation; take a ctx parameter (deliberate lifecycle roots: //lint:allow L8 with a reason)")
		}
		return true
	})
}

// ---------------------------------------------------------------------------
// L14: no bare time.Sleep in library retry/poll loops.

type ruleSleepLoop struct{}

func (ruleSleepLoop) Name() string { return "L14" }
func (ruleSleepLoop) Doc() string {
	return "no bare time.Sleep inside for loops in library packages; wait on a timer/ticker with select over the context or stop channel so the loop is cancellable (suppress deliberate sites with //lint:allow L14)"
}

// Applies to every non-test, non-main package. A retry or poll loop that
// sleeps bare is deaf for the whole sleep: cancellation, drain, and
// shutdown all wait out the delay (and a capped-exponential delay can be
// seconds). Every library wait belongs in a select against the loop's
// ctx.Done() or stop channel — the pattern the probe loops, drain
// poller, and client backoff all follow.
func (ruleSleepLoop) Applies(f *File) bool {
	return !f.IsTest && f.AST.Name.Name != "main"
}

func (ruleSleepLoop) Check(f *File, report func(token.Pos, string)) {
	reported := map[token.Pos]bool{}
	ast.Inspect(f.AST, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.ForStmt:
			body = n.Body
		case *ast.RangeStmt:
			body = n.Body
		default:
			return true
		}
		ast.Inspect(body, func(m ast.Node) bool {
			// A nested function literal runs on its own frame (possibly a
			// different goroutine); its sleeps are not this loop's wait.
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Sleep" {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Name != "time" {
				return true
			}
			if !reported[call.Pos()] {
				reported[call.Pos()] = true
				report(call.Pos(), "bare time.Sleep in a loop cannot be cancelled; use a time.Timer/Ticker in a select with the context or stop channel")
			}
			return true
		})
		return true
	})
}
