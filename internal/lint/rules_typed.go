package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// The typed rules (L9-L12) consult go/types information and therefore
// guard on f.Info != nil in Applies: files excluded under every build-tag
// set, or expressions the checker could not resolve (fixtures referencing
// packages that do not exist), degrade to silence rather than false
// positives. L9 is a module rule — atomic-field discipline is inherently
// cross-package, so it sees every unit of a tag pass at once.

// typeIsContext reports whether t is the context.Context interface type.
func typeIsContext(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// typeIsChan reports whether t's underlying type is a channel.
func typeIsChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// fieldVar resolves a selector expression to the struct field it reads,
// nil when it is not a field selection (package member, method, ...).
func fieldVar(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

// ---------------------------------------------------------------------------
// L9: atomic-field discipline across the whole module.

type ruleAtomicField struct{}

func (ruleAtomicField) Name() string { return "L9" }
func (ruleAtomicField) Doc() string {
	return "a struct field passed to sync/atomic anywhere in the module must never be read or written plainly elsewhere; mixed access races (suppress pre-publication sites with //lint:allow L9)"
}

// Applies is never consulted for a module rule; it documents the scope.
func (ruleAtomicField) Applies(f *File) bool { return f.Info != nil }

// Check is unused: the driver routes module rules through CheckModule.
func (ruleAtomicField) Check(*File, func(token.Pos, string)) {}

// CheckModule runs two passes over every unit of the tag pass. Pass one
// collects each struct field whose address is taken as the argument of a
// sync/atomic function call — those fields are the exchange-ring
// cursors, breaker counters, and metrics of this codebase — keyed by
// declaration position so the same field matches across the separately
// type-checked variants of its package. Pass two reports every other
// selection of such a field in non-test code: a plain load or store
// (including aliasing via a bare &f) races with the atomic accesses.
// Composite-literal keys do not select and are deliberately not flagged:
// keyed zero-initialization before publication is the idiomatic
// constructor shape.
func (ruleAtomicField) CheckModule(units []*unit, report func(*File, token.Pos, string)) {
	atomicFields := map[string]string{} // field decl position → first atomic site
	sanctioned := map[*ast.SelectorExpr]bool{}
	fieldKey := func(fset *token.FileSet, v *types.Var) string {
		return fset.Position(v.Pos()).String()
	}

	for _, u := range units {
		if u.info == nil {
			continue
		}
		for _, f := range u.files {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fnSel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := u.info.Uses[fnSel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					addr, ok := unparen(arg).(*ast.UnaryExpr)
					if !ok || addr.Op != token.AND {
						continue
					}
					sel, ok := unparen(addr.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					v := fieldVar(u.info, sel)
					if v == nil {
						continue
					}
					key := fieldKey(f.Fset, v)
					if _, dup := atomicFields[key]; !dup {
						atomicFields[key] = fmt.Sprintf("atomic.%s at %s", fn.Name(), f.Fset.Position(call.Pos()))
					}
					sanctioned[sel] = true
				}
				return true
			})
		}
	}
	if len(atomicFields) == 0 {
		return
	}

	for _, u := range units {
		if u.info == nil {
			continue
		}
		for _, f := range u.files {
			if f.IsTest {
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sanctioned[sel] {
					return true
				}
				v := fieldVar(u.info, sel)
				if v == nil {
					return true
				}
				if site, hot := atomicFields[fieldKey(f.Fset, v)]; hot {
					report(f, sel.Pos(), fmt.Sprintf(
						"plain access to field %s, which is accessed via %s; mixed atomic/plain access races — use sync/atomic here too",
						v.Name(), site))
				}
				return true
			})
		}
	}
}

// ---------------------------------------------------------------------------
// L10: no context.Context stored in struct fields in library packages.

type ruleCtxField struct{}

func (ruleCtxField) Name() string { return "L10" }
func (ruleCtxField) Doc() string {
	return "no context.Context struct fields in library packages; contexts flow through call parameters (request-scoped carriers: //lint:allow L10 with a reason)"
}

func (ruleCtxField) Applies(f *File) bool {
	return !f.IsTest && f.AST.Name.Name != "main" && f.Info != nil
}

func (ruleCtxField) Check(f *File, report func(token.Pos, string)) {
	ast.Inspect(f.AST, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok || st.Fields == nil {
			return true
		}
		for _, field := range st.Fields.List {
			if !typeIsContext(f.TypeOf(field.Type)) {
				continue
			}
			pos := field.Type.Pos()
			if len(field.Names) > 0 {
				pos = field.Names[0].Pos()
			}
			report(pos, "struct field stores a context.Context, detaching it from the call that created it; pass ctx as a parameter (deliberate request-scoped carriers: //lint:allow L10 with a reason)")
		}
		return true
	})
}

// ---------------------------------------------------------------------------
// L11: no copying of types containing sync.Mutex/WaitGroup/atomic values.

type ruleLockCopy struct{}

func (ruleLockCopy) Name() string { return "L11" }
func (ruleLockCopy) Doc() string {
	return "no copying of values whose type contains sync.Mutex/RWMutex/WaitGroup/Once/Cond or a sync/atomic type — by assignment, range, or by-value parameter/receiver"
}

// Applies everywhere outside tests, package main included: a copied
// mutex in a cmd/ helper deadlocks exactly like one in a library.
func (ruleLockCopy) Applies(f *File) bool {
	return !f.IsTest && f.Info != nil
}

// lockPath describes the first synchronization primitive contained by
// value in t ("" when none): the sync locks, anything declared in
// sync/atomic (Int64, Bool, Value, Pointer[T], ...), and any struct or
// array holding one. Pointers, slices, maps, and channels reference
// rather than contain, so they end the search.
func lockPath(t types.Type, seen map[types.Type]bool) string {
	if t == nil {
		return ""
	}
	t = types.Unalias(t)
	if seen[t] {
		return ""
	}
	switch t := t.(type) {
	case *types.Named:
		if obj := t.Obj(); obj != nil && obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				switch obj.Name() {
				case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
					return "sync." + obj.Name()
				}
			case "sync/atomic":
				return "atomic." + obj.Name()
			}
		}
		if seen == nil {
			seen = map[types.Type]bool{}
		}
		seen[t] = true
		return lockPath(t.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			fld := t.Field(i)
			if p := lockPath(fld.Type(), seen); p != "" {
				return fld.Name() + " (" + p + ")"
			}
		}
	case *types.Array:
		return lockPath(t.Elem(), seen)
	}
	return ""
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// copyRead reports whether e reads an existing value such that using it
// as an initializer or right-hand side copies it: a variable, field
// selection, dereference, or element load. Composite literals and calls
// construct fresh values and are excluded (matching vet's copylocks).
func copyRead(f *File, e ast.Expr) bool {
	e = unparen(e)
	if tv, ok := f.Info.Types[e]; !ok || !tv.IsValue() {
		return false
	}
	switch e := e.(type) {
	case *ast.Ident:
		_, ok := f.Info.Uses[e].(*types.Var)
		return ok
	case *ast.SelectorExpr:
		if fieldVar(f.Info, e) != nil {
			return true
		}
		_, ok := f.Info.Uses[e.Sel].(*types.Var)
		return ok
	case *ast.StarExpr, *ast.IndexExpr:
		return true
	}
	return false
}

func (ruleLockCopy) Check(f *File, report func(token.Pos, string)) {
	checkRHS := func(e ast.Expr) {
		if !copyRead(f, e) {
			return
		}
		if p := lockPath(f.TypeOf(e), nil); p != "" {
			report(e.Pos(), fmt.Sprintf("assignment copies a value containing %s; copy the pointer instead", p))
		}
	}
	checkParams := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if p := lockPath(f.TypeOf(field.Type), nil); p != "" {
				pos := field.Type.Pos()
				if len(field.Names) > 0 {
					pos = field.Names[0].Pos()
				}
				report(pos, fmt.Sprintf("by-value %s copies a value containing %s; take a pointer", what, p))
			}
		}
	}
	checkRangeVar := func(e ast.Expr) {
		if e == nil {
			return
		}
		if id, ok := e.(*ast.Ident); ok && id.Name == "_" {
			return
		}
		if p := lockPath(f.TypeOf(e), nil); p != "" {
			report(e.Pos(), fmt.Sprintf("range clause copies a value containing %s per iteration; range over indices or pointers", p))
		}
	}
	ast.Inspect(f.AST, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			checkParams(n.Recv, "receiver")
			checkParams(n.Type.Params, "parameter")
		case *ast.FuncLit:
			checkParams(n.Type.Params, "parameter")
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				// Assigning to _ discards the value: no usable copy is
				// made, so reporting it would only repeat the finding
				// from wherever the value was first copied.
				if len(n.Lhs) == len(n.Rhs) && isBlank(n.Lhs[i]) {
					continue
				}
				checkRHS(rhs)
			}
		case *ast.ValueSpec:
			for i, v := range n.Values {
				if len(n.Names) == len(n.Values) && n.Names[i].Name == "_" {
					continue
				}
				checkRHS(v)
			}
		case *ast.RangeStmt:
			checkRangeVar(n.Key)
			checkRangeVar(n.Value)
		}
		return true
	})
}

// ---------------------------------------------------------------------------
// L12: goroutines launched in library packages must be cancellable.

type ruleGoCancel struct{}

func (ruleGoCancel) Name() string { return "L12" }
func (ruleGoCancel) Doc() string {
	return "goroutines launched in library packages must be stoppable: the body (or in-package callee) must use a ctx or receive on a done/stop channel (suppress deliberate process-lifetime goroutines with //lint:allow L12)"
}

func (ruleGoCancel) Applies(f *File) bool {
	return !f.IsTest && f.AST.Name.Name != "main" && f.Info != nil
}

// bodyCancellable reports whether a function body holds a stop signal:
// any expression of type context.Context in scope, a channel receive, a
// range over a channel, or a select statement. Nested literals count —
// the signal just has to be reachable from the goroutine.
func bodyCancellable(f *File, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if typeIsContext(f.TypeOf(n)) {
				found = true
			}
		case *ast.SelectorExpr:
			if typeIsContext(f.TypeOf(n)) {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if typeIsChan(f.TypeOf(n.X)) {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		}
		return !found
	})
	return found
}

// declBody resolves the body of the function a goroutine launches when
// it is declared in the same package; ok is false when the callee is
// external (callers must then judge from the call site alone).
func declBody(f *File, fun ast.Expr) (body *ast.BlockStmt, external bool) {
	var obj types.Object
	switch fun := fun.(type) {
	case *ast.Ident:
		obj = f.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = f.Info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil, false // unresolved: degraded type info, stay silent
	}
	if decl := f.unit.declOf(fn); decl != nil && decl.Body != nil {
		return decl.Body, false
	}
	return nil, true
}

// ---------------------------------------------------------------------------
// L15: file durability errors must be checked in library packages.

type ruleFileSyncErr struct{}

func (ruleFileSyncErr) Name() string { return "L15" }
func (ruleFileSyncErr) Doc() string {
	return "no discarded (*os.File).Sync/Close error in library packages; a failed fsync or close is silent data loss — check the error (deliberate best-effort sites: //lint:allow L15 with a reason)"
}

func (ruleFileSyncErr) Applies(f *File) bool {
	return !f.IsTest && f.AST.Name.Name != "main" && f.Info != nil
}

// osFileDurabilityCall reports whether call is f.Sync() or f.Close() on
// an *os.File, returning the method name.
func osFileDurabilityCall(f *File, call *ast.CallExpr) (string, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := f.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return "", false
	}
	if fn.Name() != "Sync" && fn.Name() != "Close" {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recv := types.Unalias(sig.Recv().Type())
	ptr, ok := recv.(*types.Pointer)
	if !ok {
		return "", false
	}
	named, ok := types.Unalias(ptr.Elem()).(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Name() != "File" {
		return "", false
	}
	return fn.Name(), true
}

// Check flags statement-position calls and blank assignments: both throw
// the error away. A deferred f.Close() is exempt — it is the idiomatic
// cleanup for read paths and for error paths already returning a prior
// failure; write paths that care sync or close explicitly before
// returning, which this rule does police.
func (ruleFileSyncErr) Check(f *File, report func(token.Pos, string)) {
	flag := func(call *ast.CallExpr) {
		if name, ok := osFileDurabilityCall(f, call); ok {
			report(call.Pos(), fmt.Sprintf(
				"discarded error from (*os.File).%s: a failed %s is silent data loss — check it, or annotate //lint:allow L15 for deliberate best-effort sites",
				name, name))
		}
	}
	ast.Inspect(f.AST, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := unparen(n.X).(*ast.CallExpr); ok {
				flag(call)
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if len(n.Lhs) != len(n.Rhs) || !isBlank(n.Lhs[i]) {
					continue
				}
				if call, ok := unparen(rhs).(*ast.CallExpr); ok {
					flag(call)
				}
			}
		}
		return true
	})
}

func (ruleGoCancel) Check(f *File, report func(token.Pos, string)) {
	argsCancellable := func(call *ast.CallExpr) bool {
		for _, a := range call.Args {
			if t := f.TypeOf(a); typeIsContext(t) || typeIsChan(t) {
				return true
			}
		}
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			if t := f.TypeOf(sel.X); typeIsContext(t) || typeIsChan(t) {
				return true
			}
		}
		return false
	}
	ast.Inspect(f.AST, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if argsCancellable(g.Call) {
			return true
		}
		switch fun := unparen(g.Call.Fun).(type) {
		case *ast.FuncLit:
			if !bodyCancellable(f, fun.Body) {
				report(g.Pos(), "goroutine has no reachable stop signal: thread a ctx or receive on a done/stop channel so shutdown can reach it")
			}
		case *ast.Ident, *ast.SelectorExpr:
			body, external := declBody(f, fun)
			switch {
			case body != nil:
				if !bodyCancellable(f, body) {
					report(g.Pos(), "goroutine callee has no reachable stop signal: thread a ctx or receive on a done/stop channel so shutdown can reach it")
				}
			case external:
				report(g.Pos(), "goroutine launches an external callee with no ctx or channel at the call site; if it is stopped by other means, annotate //lint:allow L12 with the reason")
			}
		}
		return true
	})
}
