package fpv

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/prenex"
)

func TestGenerateStructure(t *testing.T) {
	p := Params{Services: 3, Steps: 2, Bits: 2, Seed: 5}
	q := Generate(p)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.ScopeConsistent(); err != nil {
		t.Fatalf("FPV instance not scope consistent: %v", err)
	}
	if q.Prefix.IsPrenex() {
		t.Error("multi-service instances must be non-prenex")
	}
	// One subtree per service under the root: prefix level 1 + 2·Steps.
	if got, want := q.Prefix.MaxLevel(), 1+2*p.Steps; got != want {
		t.Errorf("prefix level %d, want %d", got, want)
	}
	if share := prenex.POTOShare(q); share < 0.2 {
		t.Errorf("PO/TO share %v, want ≥ 0.2 for the suite to be meaningful", share)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Params{Services: 2, Steps: 2, Bits: 2, Seed: 9}
	if Generate(p).String() != Generate(p).String() {
		t.Error("same params must generate identical instances")
	}
}

func TestPOAndTOAgree(t *testing.T) {
	trueCnt, n := 0, 0
	for _, p := range Suite(2) {
		if p.Steps > 2 || p.Bits > 8 {
			continue // keep the unit test fast
		}
		n++
		q := Generate(p)
		poRes, err := core.Solve(context.Background(), q, core.Options{Mode: core.ModePartialOrder})
		po := poRes.Verdict
		if err != nil {
			t.Fatal(err)
		}
		toRes, err := core.Solve(context.Background(), prenex.Apply(q, prenex.EUpAUp), core.Options{Mode: core.ModeTotalOrder})
		to := toRes.Verdict
		if err != nil {
			t.Fatal(err)
		}
		if to != po {
			t.Fatalf("%v: TO=%v PO=%v", p, to, po)
		}
		if po == core.True {
			trueCnt++
		}
	}
	if trueCnt == 0 || trueCnt == n {
		t.Errorf("degenerate truth distribution: %d/%d true", trueCnt, n)
	}
}

func TestSuiteShape(t *testing.T) {
	s := Suite(4)
	if len(s) != 2*2*2*2*4 {
		t.Fatalf("suite size %d, want 64", len(s))
	}
}
