// Package fpv generates the Formal Property Verification workload of
// Section VII.B. The paper's 905 instances come from model checking early
// requirements of Web-service compositions (Fuxman et al. [9], Giunchiglia
// et al. [29]) and are not publicly archived, so this package produces the
// same formula shape from a synthetic two-player unfolding: a system
// (existential) chooses a configuration and per-step responses, an
// environment (universal) picks per-step stimuli, and each of several
// composed services unrolls independently for a number of steps — giving a
// quantifier tree with one ∀∃-chain subtree per service under a shared
// existential root. Constraints are random implications from (config,
// stimulus) to responses plus goal clauses, which produce a mix of true
// and false instances with moderate search effort, the regime of Fig. 4.
package fpv

import (
	"fmt"
	"math/rand"

	"repro/internal/invariant"
	"repro/internal/qbf"
)

// Params configures one FPV instance.
type Params struct {
	// Services is the number of composed services (independent subtrees).
	Services int
	// Steps is the unrolling depth of each service (∀∃ pairs).
	Steps int
	// Bits is the number of variables per block.
	Bits int
	// Density is the number of constraint clauses per response bit and
	// step (0 selects the default 6, near the hard region for the clause
	// shape used: one stimulus literal plus three existential literals).
	Density int
	// Seed drives the pseudo-random constraint choices.
	Seed int64
}

func (p Params) String() string {
	return fmt.Sprintf("fpv-s%d-k%d-b%d-%d", p.Services, p.Steps, p.Bits, p.Seed)
}

// Generate builds the instance for p.
func Generate(p Params) *qbf.QBF {
	if p.Services < 1 || p.Steps < 1 || p.Bits < 1 {
		invariant.Violated("fpv: Services, Steps and Bits must be positive")
	}
	rng := rand.New(rand.NewSource(p.Seed ^ 0x6A09E667F3BCC909))
	prefix := qbf.NewPrefix(0)
	var next qbf.Var
	fresh := func(n int) []qbf.Var {
		out := make([]qbf.Var, n)
		for i := range out {
			next++
			prefix.GrowVar(next)
			out[i] = next
		}
		return out
	}

	config := fresh(p.Bits)
	root := prefix.AddBlock(nil, qbf.Exists, config...)
	var matrix []qbf.Clause

	lit := func(v qbf.Var) qbf.Lit {
		if rng.Intn(2) == 0 {
			return v.NegLit()
		}
		return v.PosLit()
	}

	density := p.Density
	if density == 0 {
		density = 6
	}
	for svc := 0; svc < p.Services; svc++ {
		parent := root
		exPool := append([]qbf.Var(nil), config...)
		for step := 0; step < p.Steps; step++ {
			stim := fresh(p.Bits)
			env := prefix.AddBlock(parent, qbf.Forall, stim...)
			resp := fresh(p.Bits)
			sys := prefix.AddBlock(env, qbf.Exists, resp...)
			exPool = append(exPool, resp...)

			// Per-step game constraints: clauses with one stimulus
			// literal and three existential literals (current responses,
			// earlier responses of this service, configuration). The
			// system must find a response policy valid for every
			// stimulus — a small model-A 2QBF per step.
			for i := 0; i < density*p.Bits; i++ {
				seen := map[qbf.Var]bool{}
				c := qbf.Clause{lit(stim[rng.Intn(len(stim))])}
				seen[c[0].Var()] = true
				// Anchor at the current response block so every step
				// matters.
				r := resp[rng.Intn(len(resp))]
				c = append(c, lit(r))
				seen[r] = true
				for len(c) < 4 {
					v := exPool[rng.Intn(len(exPool))]
					if seen[v] {
						continue
					}
					seen[v] = true
					c = append(c, lit(v))
				}
				matrix = append(matrix, c)
			}
			parent = sys
		}
		// Goal: the final responses must realize a random requirement.
		goal := qbf.Clause{}
		seen := map[qbf.Var]bool{}
		for i := 0; i < p.Bits; i++ {
			v := exPool[len(exPool)-1-rng.Intn(p.Bits)]
			if seen[v] {
				continue
			}
			seen[v] = true
			goal = append(goal, lit(v))
		}
		matrix = append(matrix, goal)
	}

	prefix.Finalize()
	q := qbf.New(prefix, matrix)
	q.NormalizeMatrix()
	return q
}

// Suite returns a parameter sweep approximating the paper's 905-instance
// FPV suite at a configurable scale: services × steps × bits × seeds, at
// the density where the per-step games require real search.
func Suite(seeds int) []Params {
	var out []Params
	for _, svc := range []int{2, 3} {
		for _, steps := range []int{2, 3} {
			for _, bits := range []int{8, 12} {
				for _, dens := range []int{4, 5} {
					for s := 0; s < seeds; s++ {
						out = append(out, Params{
							Services: svc, Steps: steps, Bits: bits,
							Density: dens, Seed: int64(s),
						})
					}
				}
			}
		}
	}
	return out
}
