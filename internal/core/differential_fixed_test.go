package core_test

// Differential over the fixed portfolio suite. The random trees and
// pigeonhole formulas of the in-package differential layer never produced
// the shape that broke the first watcher implementation: a clause whose
// only existential sits behind several universals of the same prenex block
// (randqbf.Fixed(5), a prenexed diameter instance). There the repair step
// parked both watches on true universals; backtracking past the satisfier
// revived the falsified existential with no watch covering it, and its
// next falsification was a silent conflict — caught as a watcher-invariant
// panic under qbfdebug, and a potential wrong verdict without it. This
// suite pins those instances across option combos, straight and through
// the node-budget slice-resume path the portfolio scheduler uses. It lives
// in package core_test because randqbf imports core.

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/randqbf"
)

func TestFixedSuiteDifferential(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 6
	}
	combos := []core.Options{
		{Mode: core.ModePartialOrder},
		{Mode: core.ModePartialOrder, DisableCubeLearning: true},
		{Mode: core.ModePartialOrder, MaxLearned: 16},
		{Mode: core.ModeTotalOrder},
	}
	for i, q := range randqbf.FixedSuite(n) {
		want := core.Unknown
		for ci, opt := range combos {
			if opt.DisableCubeLearning && i >= 6 {
				// Without cube learning some of the later TRUE instances
				// need hours; the regression trigger (Fixed(5), po-nocube)
				// sits inside the kept range.
				continue
			}
			opt.CheckInvariants = true
			res, err := core.Solve(context.Background(), q, opt)
			if err != nil {
				t.Fatalf("instance %d combo %d: %v", i, ci, err)
			}
			if res.Verdict == core.Unknown {
				t.Fatalf("instance %d combo %d: Unknown (stop %v)",
					i, ci, res.Stats.StopReason)
			}
			if want == core.Unknown {
				want = res.Verdict
			} else if res.Verdict != want {
				t.Fatalf("instance %d combo %d: verdict %v, siblings said %v",
					i, ci, res.Verdict, want)
			}
		}
	}
	// No semantic-oracle pass here: EvalWithBudget burns minutes per
	// 100+-variable instance, and the configurations above already
	// cross-check each other; the random-instance differential suites keep
	// the oracle on formulas small enough to evaluate.
}

// TestFixedSliceResume replays the portfolio scheduler's suspend/resume
// shape — solve in 64-decision slices, raising the node budget between
// calls — on the fixed suite, and cross-checks the sliced verdict against
// a straight solve. The watcher tables must survive arbitrarily many
// suspensions at quiescent fixpoints.
func TestFixedSliceResume(t *testing.T) {
	n := 6
	if testing.Short() {
		n = 3
	}
	for i, q := range randqbf.FixedSuite(n) {
		res, err := core.Solve(context.Background(), q, core.Options{
			Mode:                core.ModePartialOrder,
			DisableCubeLearning: i%2 == 1,
			CheckInvariants:     true,
		})
		if err != nil || res.Verdict == core.Unknown {
			t.Fatalf("instance %d straight solve: verdict %v err %v", i, res.Verdict, err)
		}
		s, err := core.NewSolver(q, core.Options{
			Mode:                core.ModePartialOrder,
			DisableCubeLearning: i%2 == 1,
			CheckInvariants:     true,
		})
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		v := core.Unknown
		for slice := 1; slice <= 4096 && v == core.Unknown; slice++ {
			s.SetNodeLimit(int64(slice) * 64)
			v = s.Solve(context.Background())
		}
		if v == core.Unknown {
			t.Fatalf("instance %d: still Unknown after 4096 slices", i)
		}
		if v != res.Verdict {
			t.Fatalf("instance %d: sliced verdict %v, straight solve said %v", i, v, res.Verdict)
		}
	}
}
