package core_test

// Cross-engine differential over the fixed portfolio suite. The random
// trees and pigeonhole formulas of the in-package differential layer never
// produced the shape that broke the first watcher implementation: a clause
// whose only existential sits behind several universals of the same
// prenex block (randqbf.Fixed(5), a prenexed diameter instance). There the
// repair step parked both watches on true universals; backtracking past
// the satisfier revived the falsified existential with no watch covering
// it, and its next falsification was a silent conflict — caught as a
// watcher-invariant panic under qbfdebug, and a potential wrong verdict
// without it. This suite pins those instances for both engines, straight
// and through the node-budget slice-resume path the portfolio scheduler
// uses. It lives in package core_test because randqbf imports core.

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/randqbf"
)

func TestCrossEngineFixedSuite(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 6
	}
	combos := []core.Options{
		{Mode: core.ModePartialOrder},
		{Mode: core.ModePartialOrder, DisableCubeLearning: true},
		{Mode: core.ModeTotalOrder},
	}
	for i, q := range randqbf.FixedSuite(n) {
		want := core.Unknown
		for ci, base := range combos {
			if base.DisableCubeLearning && i >= 6 {
				// Without cube learning some of the later TRUE instances
				// need hours under either engine; the regression trigger
				// (Fixed(5), po-nocube) sits inside the kept range.
				continue
			}
			for _, engine := range []core.Propagation{core.PropWatched, core.PropCounters} {
				opt := base
				opt.Propagation = engine
				opt.CheckInvariants = true
				res, err := core.Solve(context.Background(), q, opt)
				if err != nil {
					t.Fatalf("instance %d combo %d engine %v: %v", i, ci, engine, err)
				}
				if res.Verdict == core.Unknown {
					t.Fatalf("instance %d combo %d engine %v: Unknown (stop %v)",
						i, ci, engine, res.Stats.StopReason)
				}
				if want == core.Unknown {
					want = res.Verdict
				} else if res.Verdict != want {
					t.Fatalf("instance %d combo %d engine %v: verdict %v, siblings said %v",
						i, ci, engine, res.Verdict, want)
				}
			}
		}
	}
	// No semantic-oracle pass here: EvalWithBudget burns minutes per
	// 100+-variable instance, and the six configurations above already
	// cross-check each other; the random-instance differential suites keep
	// the oracle on formulas small enough to evaluate.
}

// TestCrossEngineFixedSliceResume replays the portfolio scheduler's
// suspend/resume shape — solve in 64-decision slices, raising the node
// budget between calls — per engine on the fixed suite. The watcher tables
// must survive arbitrarily many suspensions at quiescent fixpoints.
func TestCrossEngineFixedSliceResume(t *testing.T) {
	n := 6
	if testing.Short() {
		n = 3
	}
	for i, q := range randqbf.FixedSuite(n) {
		want := core.Unknown
		for _, engine := range []core.Propagation{core.PropWatched, core.PropCounters} {
			s, err := core.NewSolver(q, core.Options{
				Mode:                core.ModePartialOrder,
				Propagation:         engine,
				DisableCubeLearning: i%2 == 1,
				CheckInvariants:     true,
			})
			if err != nil {
				t.Fatalf("instance %d engine %v: %v", i, engine, err)
			}
			v := core.Unknown
			for slice := 1; slice <= 4096 && v == core.Unknown; slice++ {
				s.SetNodeLimit(int64(slice) * 64)
				v = s.Solve(context.Background())
			}
			if v == core.Unknown {
				t.Fatalf("instance %d engine %v: still Unknown after 4096 slices", i, engine)
			}
			if want == core.Unknown {
				want = v
			} else if v != want {
				t.Fatalf("instance %d engine %v: sliced verdict %v, sibling said %v",
					i, engine, v, want)
			}
		}
	}
}
