package core

import (
	"repro/internal/invariant"
	"repro/internal/qbf"
	"repro/internal/telemetry"
)

// analysis is the outcome of conflict/solution analysis.
type analysis struct {
	// terminal means the whole QBF is decided: a contradictory resolvent
	// was derived (conflict side) or a cube without universal literals
	// (solution side).
	terminal bool
	// asserting means lits is a learnable constraint that becomes unit at
	// blevel, forcing force.
	asserting bool
	lits      []qbf.Lit
	force     qbf.Lit
	blevel    int
	// frame is the deepest assumption frame the derivation resolved with:
	// the maximum frame tag over the seed constraint and every reason
	// constraint entering the Q-resolution. 0 outside incremental sessions
	// and always 0 on the solution side (cubes survive pops; see
	// addLearned).
	frame int
}

// workSet is a sparse literal set keyed by variable — the working
// resolvent of the analysis loops. The lit array is owned by the Solver
// and reused across analyses (cleared through the vars list), which keeps
// the hot solution-analysis path free of map operations.
type workSet struct {
	lit  []qbf.Lit // indexed by variable; 0 = absent
	vars []qbf.Var // current members, unordered
}

// newWorkSet returns the solver's reusable working set, cleared.
func (s *Solver) newWorkSet() *workSet {
	if s.ws.lit == nil {
		s.ws.lit = make([]qbf.Lit, s.nVars+1)
	}
	for _, v := range s.ws.vars {
		s.ws.lit[v] = 0
	}
	s.ws.vars = s.ws.vars[:0]
	return &s.ws
}

func (w *workSet) has(v qbf.Var) bool    { return w.lit[v] != 0 }
func (w *workSet) get(v qbf.Var) qbf.Lit { return w.lit[v] }

// add inserts l, overwriting any literal of the same variable (callers
// check for tautologies before resolving).
func (w *workSet) add(l qbf.Lit) {
	v := l.Var()
	if w.lit[v] == 0 {
		w.vars = append(w.vars, v)
	}
	w.lit[v] = l
}

func (w *workSet) del(v qbf.Var) {
	if w.lit[v] == 0 {
		return
	}
	w.lit[v] = 0
	for i, x := range w.vars {
		if x == v {
			w.vars[i] = w.vars[len(w.vars)-1]
			w.vars = w.vars[:len(w.vars)-1]
			break
		}
	}
}

func (w *workSet) slice() []qbf.Lit {
	out := make([]qbf.Lit, 0, len(w.vars))
	for _, v := range w.vars {
		out = append(out, w.lit[v])
	}
	return out
}

// universalReduceSet applies Lemma 3 to the working clause: universal
// literals with no existential literal of the set in their scope are
// removed.
func (s *Solver) universalReduceSet(w *workSet) {
	var drop []qbf.Var
	for _, v := range w.vars {
		if s.quant[v] != qbf.Forall {
			continue
		}
		keep := false
		for _, x := range w.vars {
			if s.quant[x] == qbf.Exists && s.before(v, x) {
				keep = true
				break
			}
		}
		if !keep {
			drop = append(drop, v)
		}
	}
	for _, v := range drop {
		w.del(v)
	}
	if len(drop) > 0 {
		s.emitEv(telemetry.KindReduce, 0, int64(len(drop)), 0)
	}
}

// existentialReduceSet is the dual reduction for working cubes.
func (s *Solver) existentialReduceSet(w *workSet) {
	var drop []qbf.Var
	for _, v := range w.vars {
		if s.quant[v] != qbf.Exists {
			continue
		}
		keep := false
		for _, y := range w.vars {
			if s.quant[y] == qbf.Forall && s.before(v, y) {
				keep = true
				break
			}
		}
		if !keep {
			drop = append(drop, v)
		}
	}
	for _, v := range drop {
		w.del(v)
	}
	if len(drop) > 0 {
		s.emitEv(telemetry.KindReduce, 0, int64(len(drop)), 1)
	}
}

// analyzeConflict derives a learned clause from the conflicting clause ci
// by Q-resolution on existential unit-propagated literals, universally
// reducing after every step.
func (s *Solver) analyzeConflict(ci int) analysis {
	w := s.newWorkSet()
	for k, n := 0, s.ar.size(ci); k < n; k++ {
		w.add(s.ar.lit(ci, k))
	}
	s.universalReduceSet(w)
	s.ar.bumpActivity(ci)
	frame := s.ar.frame(ci)

	tried := make(map[qbf.Var]bool)
	for {
		if a, done := s.clauseVerdict(w); done {
			a.frame = frame
			return a
		}
		pivot, ok := s.pickClausePivot(w, tried)
		if !ok {
			return analysis{lits: w.slice(), frame: frame} // non-asserting resolvent
		}
		v := pivot.Var()
		rc := s.reasonC[v]
		s.ar.bumpActivity(rc)
		if f := s.ar.frame(rc); f > frame {
			frame = f
		}
		w.del(v)
		for k, n := 0, s.ar.size(rc); k < n; k++ {
			m := s.ar.lit(rc, k)
			if m.Var() == v {
				continue
			}
			w.add(m)
		}
		s.universalReduceSet(w)
	}
}

// pickClausePivot selects the deepest-on-trail existential literal of w
// whose variable was unit-propagated by a clause and whose reason does not
// introduce a (long-distance) tautology into w.
func (s *Solver) pickClausePivot(w *workSet, tried map[qbf.Var]bool) (qbf.Lit, bool) {
	best := qbf.NoLit
	bestPos := -1
	for _, v := range w.vars {
		l := w.get(v)
		if tried[v] || s.quant[v] != qbf.Exists || s.value[v] == undef {
			continue
		}
		if s.reason[v] != reasonConstraint || s.ar.isCube(s.reasonC[v]) {
			continue
		}
		if s.trailPos[v] > bestPos {
			// Tautology check: resolving must not put z and z̄ in w.
			ok := true
			rc := s.reasonC[v]
			for k, n := 0, s.ar.size(rc); k < n; k++ {
				m := s.ar.lit(rc, k)
				if m.Var() == v {
					continue
				}
				if prev := w.get(m.Var()); prev != 0 && prev != m {
					ok = false
					break
				}
			}
			if ok {
				best, bestPos = l, s.trailPos[v]
			} else {
				tried[v] = true
			}
		}
	}
	return best, bestPos >= 0
}

// clauseVerdict checks the working clause for the two stopping conditions:
// a contradictory resolvent (the formula is false) or an asserting clause.
func (s *Solver) clauseVerdict(w *workSet) (analysis, bool) {
	lambda := -1
	var lstar qbf.Lit
	unique := true
	anyE := false
	for _, v := range w.vars {
		l := w.get(v)
		if s.quant[v] != qbf.Exists {
			continue
		}
		anyE = true
		if s.value[v] == undef {
			// An unassigned existential can only enter through a reason
			// clause whose universal side conditions held; treat the
			// resolvent as non-asserting.
			return analysis{}, false
		}
		dl := s.dlevel[v]
		switch {
		case dl > lambda:
			lambda, lstar, unique = dl, l, true
		case dl == lambda:
			unique = false
		}
	}
	if !anyE {
		// Contradictory resolvent: the QBF is false (Lemma 4).
		return analysis{terminal: true}, true
	}
	if lambda == 0 {
		// Every existential literal is falsified at the root level; the
		// residual clause at level 0 is contradictory.
		return analysis{terminal: true}, true
	}
	if !unique {
		return analysis{}, false
	}
	// Compute the backjump level and validate the remaining literals.
	blevel := 0
	for _, v := range w.vars {
		l := w.get(v)
		if l == lstar {
			continue
		}
		switch s.litValue(l) {
		case vTrue:
			return analysis{}, false // satisfied resolvent can't assert
		case vFalse:
			// A universal literal with v ⊀ |lstar| may lose its
			// assignment at the backjump without blocking the unit rule,
			// so it does not bound the backjump level; every existential
			// literal must stay falsified, and so must the universal
			// literals in whose scope lstar lies.
			if s.quant[v] == qbf.Exists || s.before(v, lstar.Var()) {
				if s.dlevel[v] > blevel {
					blevel = s.dlevel[v]
				}
			}
		default:
			// Unassigned universal literal: it must not block the unit
			// propagation of lstar after the backjump.
			if s.before(v, lstar.Var()) {
				return analysis{}, false
			}
		}
	}
	if blevel >= lambda {
		return analysis{}, false
	}
	return analysis{asserting: true, lits: w.slice(), force: lstar, blevel: blevel}, true
}

// analyzeSolution derives a learned cube. ci is the id of a cube whose
// literals are all true, or -1 when the matrix became empty, in which case
// the initial good is a set of true literals covering every original
// clause (Section III).
func (s *Solver) analyzeSolution(ci int) analysis {
	w := s.newWorkSet()
	if ci >= 0 {
		for k, n := 0, s.ar.size(ci); k < n; k++ {
			w.add(s.ar.lit(ci, k))
		}
		s.ar.bumpActivity(ci)
	} else {
		s.coverCube(w)
	}
	s.existentialReduceSet(w)

	tried := make(map[qbf.Var]bool)
	for {
		if a, done := s.cubeVerdict(w); done {
			return a
		}
		pivot, ok := s.pickCubePivot(w, tried)
		if !ok {
			return analysis{lits: w.slice()}
		}
		v := pivot.Var()
		rc := s.reasonC[v]
		s.ar.bumpActivity(rc)
		w.del(v)
		for k, n := 0, s.ar.size(rc); k < n; k++ {
			m := s.ar.lit(rc, k)
			if m.Var() == v {
				continue
			}
			w.add(m)
		}
		s.existentialReduceSet(w)
	}
}

// coverCube fills w with true literals covering every original clause: the
// initial good of Section III. Literal choice matters a great deal for how
// general the learned good is: existential literals whose block has no
// universal below it in the quantifier tree are deleted by existential
// reduction, so they are preferred over anything else (they make the good
// strictly smaller); after that, literals already chosen, then literals
// assigned at the outermost level.
func (s *Solver) coverCube(w *workSet) {
	for ci := 0; ci < s.origEnd; ci = s.ar.next(ci) {
		s.coverClause(w, ci)
	}
	// Incremental sessions keep runtime-added original clauses above
	// origEnd, interleaved with learned constraints; the cover must span
	// them too — a cube is an implicant of the whole current matrix. The
	// maintained list reaches them without walking the learned region.
	for _, ci := range s.runtimeOrig {
		s.coverClause(w, ci)
	}
}

// coverClause extends the cover w to the original clause ci, choosing the
// best true literal by the (class, pure, dlevel) key.
func (s *Solver) coverClause(w *workSet, ci int) {
	if s.ar.learned(ci) || s.ar.deleted(ci) {
		return
	}
	covered := false
	var best qbf.Lit
	bestKey := [3]int{3, 2, int(^uint(0) >> 1)} // (class, pure, dlevel); lower wins
	for k, n := 0, s.ar.size(ci); k < n; k++ {
		l := s.ar.lit(ci, k)
		if s.litValue(l) != vTrue {
			continue
		}
		if w.get(l.Var()) == l {
			covered = true
			break
		}
		// Preference classes: statically reducible existentials never
		// survive the reduction; other existentials may be deleted by
		// the set-level reduction; universal literals never are.
		// Within a class, avoid pure-assigned literals — their
		// decision level is an artifact of when purity was detected,
		// often far deeper than the variable's prefix position, and
		// it poisons the backjump level of the learned good.
		class := 1
		if s.eReducible[l.Var()] {
			class = 0
		} else if s.quant[l.Var()] == qbf.Forall {
			class = 2
		}
		pure := 0
		if s.reason[l.Var()] == reasonPure {
			pure = 1
		}
		key := [3]int{class, pure, s.dlevel[l.Var()]}
		if key[0] < bestKey[0] ||
			(key[0] == bestKey[0] && (key[1] < bestKey[1] ||
				(key[1] == bestKey[1] && key[2] < bestKey[2]))) {
			best, bestKey = l, key
		}
	}
	if covered {
		return
	}
	if best == qbf.NoLit {
		invariant.Violated("core: coverCube called with an unsatisfied original clause")
	}
	if s.eReducible[best.Var()] {
		// Adding best and then existential-reducing would delete it
		// again (no universal can follow it), so skip the insertion;
		// the resulting set equals the reduction of a genuine cover
		// and is therefore a sound good.
		return
	}
	w.add(best)
}

// pickCubePivot selects the deepest-on-trail universal literal of w whose
// variable was propagated by a cube.
func (s *Solver) pickCubePivot(w *workSet, tried map[qbf.Var]bool) (qbf.Lit, bool) {
	best := qbf.NoLit
	bestPos := -1
	for _, v := range w.vars {
		l := w.get(v)
		if tried[v] || s.quant[v] != qbf.Forall || s.value[v] == undef {
			continue
		}
		if s.reason[v] != reasonConstraint || !s.ar.isCube(s.reasonC[v]) {
			continue
		}
		if s.trailPos[v] > bestPos {
			ok := true
			rc := s.reasonC[v]
			for k, n := 0, s.ar.size(rc); k < n; k++ {
				m := s.ar.lit(rc, k)
				if m.Var() == v {
					continue
				}
				if prev := w.get(m.Var()); prev != 0 && prev != m {
					ok = false
					break
				}
			}
			if ok {
				best, bestPos = l, s.trailPos[v]
			} else {
				tried[v] = true
			}
		}
	}
	return best, bestPos >= 0
}

// cubeVerdict checks the working cube for its stopping conditions: a cube
// with no universal literal (the formula is true) or an asserting cube.
func (s *Solver) cubeVerdict(w *workSet) (analysis, bool) {
	lambda := -1
	var ustar qbf.Lit
	unique := true
	anyU := false
	for _, v := range w.vars {
		l := w.get(v)
		if s.quant[v] != qbf.Forall {
			continue
		}
		anyU = true
		if s.value[v] == undef {
			s.dbgCube[0]++
			return analysis{}, false
		}
		dl := s.dlevel[v]
		switch {
		case dl > lambda:
			lambda, ustar, unique = dl, l, true
		case dl == lambda:
			unique = false
		}
	}
	if !anyU {
		// Existential reduction of a universal-free cube empties it: the
		// QBF is true.
		return analysis{terminal: true}, true
	}
	if lambda == 0 {
		return analysis{terminal: true}, true
	}
	if !unique {
		s.dbgCube[1]++
		return analysis{}, false
	}
	blevel := 0
	for _, v := range w.vars {
		l := w.get(v)
		if l == ustar {
			continue
		}
		switch s.litValue(l) {
		case vFalse:
			s.dbgCube[2]++
			return analysis{}, false
		case vTrue:
			// Dual of the clause case: an existential literal with
			// v ⊀ |ustar| may become unassigned at the backjump without
			// blocking the dual unit rule, so it does not bound the
			// backjump level.
			if s.quant[v] == qbf.Forall || s.before(v, ustar.Var()) {
				if s.dlevel[v] > blevel {
					blevel = s.dlevel[v]
				}
			}
		default:
			// Unassigned existential literal (universals were handled
			// above): it must not block the dual unit rule on ustar after
			// the backjump.
			if s.before(v, ustar.Var()) {
				s.dbgCube[3]++
				return analysis{}, false
			}
		}
	}
	if blevel >= lambda {
		s.dbgCube[4]++
		return analysis{}, false
	}
	return analysis{asserting: true, lits: w.slice(), force: ustar.Neg(), blevel: blevel}, true
}

// handleConflict processes a conflicting clause: learn and backjump if an
// asserting clause was derived, otherwise flip the deepest open existential
// decision. It returns false when the formula is proven false.
func (s *Solver) handleConflict(ci int) bool {
	if s.ar.deleted(ci) {
		// An emptied constraint would seed an empty working set, which
		// analysis reads as a terminal verdict — a silent wrong answer.
		// solve() guarantees nothing (in particular not the memory
		// governor) runs between the conflict event and this call.
		invariant.Violated("core: conflict analysis over deleted constraint %d", ci)
	}
	if !s.opt.DisableClauseLearning {
		a := s.analyzeConflict(ci)
		if a.terminal {
			return false
		}
		if a.asserting {
			s.stats.Backjumps++
			s.backtrack(a.blevel)
			id := s.addLearned(a.lits, false, a.frame)
			s.assign(a.force, reasonConstraint, id)
			s.bumpConstraint(a.lits)
			s.reduceDB(false)
			s.maybeRestart()
			return true
		}
	}
	return s.chronoFlip(qbf.Exists)
}

// handleSolution processes a solution event (cube fired, or matrix empty
// when ci < 0). It returns false when the formula is proven true.
func (s *Solver) handleSolution(ci int) bool {
	if ci >= 0 && s.ar.deleted(ci) {
		// Dual of the handleConflict guard: a deleted fired cube reads as
		// a terminal True. ci < 0 is the matrix-empty solution, which
		// carries no constraint.
		invariant.Violated("core: solution analysis over deleted constraint %d", ci)
	}
	if !s.opt.DisableCubeLearning {
		a := s.analyzeSolution(ci)
		if a.terminal {
			return false
		}
		if a.asserting {
			s.stats.Backjumps++
			s.backtrack(a.blevel)
			id := s.addLearned(a.lits, true, 0)
			s.assign(a.force, reasonConstraint, id)
			s.bumpConstraint(a.lits)
			s.reduceDB(true)
			s.maybeRestart()
			return true
		}
	}
	return s.chronoFlip(qbf.Forall)
}

// chronoFlip backtracks chronologically: it pops levels until the deepest
// unflipped decision of quantifier kind q, flips it, and reports success;
// if no such decision exists the search is over (false is returned).
// Decisions of the other kind and already-flipped decisions are popped:
// a conflict propagates past universal choices (the whole ∀-subtree is
// false) and a solution past existential ones, symmetrically.
func (s *Solver) chronoFlip(q qbf.Quant) bool {
	for lvl := s.level; lvl >= 1; lvl-- {
		l := s.trail[s.levelStart[lvl]]
		v := l.Var()
		if s.reason[v] == reasonDecision && s.quant[v] == q {
			s.backtrack(lvl - 1)
			s.level++
			s.levelStart = append(s.levelStart, len(s.trail))
			s.assign(l.Neg(), reasonFlipped, -1)
			s.stats.ChronoBacktracks++
			return true
		}
	}
	return false
}
