//go:build qbfdebug

package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/invariant"
)

// These tests drive the fault-injection harness: faults fire at exact
// propagation-fixpoint ordinals, so containment and cooperative stopping
// are exercised deterministically — no timing, no flakes.

func TestInjectedPanicIsContained(t *testing.T) {
	s, err := NewSolver(phpFormula(8), Options{DisablePureLiterals: true})
	if err != nil {
		t.Fatal(err)
	}
	const at = 5
	s.SetFaultHook(func(fp int64) {
		if fp == at {
			panic("injected fault")
		}
	})
	r, err := s.SafeSolve(context.Background())
	if r != Unknown {
		t.Errorf("result %v, want UNKNOWN", r)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err %T (%v), want *PanicError", err, err)
	}
	if pe.Value != "injected fault" {
		t.Errorf("recovered value %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("no stack captured")
	}
	// The partial Stats must be coherent with the injection point: the
	// fault fired at fixpoint `at`, so exactly `at` fixpoints ran.
	if pe.Stats.Fixpoints != at {
		t.Errorf("Stats.Fixpoints = %d, want %d", pe.Stats.Fixpoints, at)
	}
	if pe.Stats.StopReason != StopPanicked {
		t.Errorf("stop reason %v, want panicked", pe.Stats.StopReason)
	}
	if st := s.Stats(); st.StopReason != StopPanicked {
		t.Errorf("solver stats stop reason %v, want panicked", st.StopReason)
	}
}

func TestInjectedCancellationAtFixpoint(t *testing.T) {
	s, err := NewSolver(phpFormula(8), Options{DisablePureLiterals: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel exactly at a poll point (pollStop samples the channel every
	// pollPeriod fixpoints): the stop must be observed at that same
	// fixpoint, before any further search work.
	const at = 2 * pollPeriod
	s.SetFaultHook(func(fp int64) {
		if fp == at {
			cancel()
		}
	})
	r, err := s.SafeSolve(ctx)
	if err != nil {
		t.Fatalf("clean cancellation errored: %v", err)
	}
	st := s.Stats()
	if r != Unknown || st.StopReason != StopCancelled {
		t.Fatalf("got %v/%v, want UNKNOWN/cancelled", r, st.StopReason)
	}
	if st.Fixpoints != at {
		t.Errorf("stopped at fixpoint %d, want %d (same-fixpoint detection)", st.Fixpoints, at)
	}
	if st.Decisions == 0 {
		t.Error("no decisions before fixpoint 128 — instance too easy for the harness")
	}
}

// TestInjectedInvariantViolationIsContained proves the containment chain
// end-to-end for the project's own panic species: invariant.Violated raised
// inside the engine surfaces as a *PanicError, not a process crash.
func TestInjectedInvariantViolationIsContained(t *testing.T) {
	s, err := NewSolver(phpFormula(8), Options{DisablePureLiterals: true})
	if err != nil {
		t.Fatal(err)
	}
	s.SetFaultHook(func(fp int64) {
		if fp == 3 {
			invariant.Violated("injected invariant violation at fixpoint %d", fp)
		}
	})
	r, err := s.SafeSolve(context.Background())
	var pe *PanicError
	if r != Unknown || !errors.As(err, &pe) {
		t.Fatalf("got %v/%v, want UNKNOWN/*PanicError", r, err)
	}
}
