package core

import (
	"repro/internal/qbf"
)

// This file is the quantifier-aware watched-literal propagation engine. It
// generalizes the classic two-watched-literal scheme to QCDCL over a
// partial prefix order ≺:
//
//   - A clause watches two ≺-deepest unfalsified existential literals. When
//     only one unfalsified existential remains, the second slot holds an
//     unassigned universal of the clause (the "universal guard": either it
//     satisfies the clause or its falsification re-triggers the generalized
//     unit rule of Lemma 5) or — in satisfied or event states — a falsified
//     literal parked behind a blocker. Watch repair only ever moves a watch
//     onto an unfalsified existential; see the repair comment in
//     visitClauseWatches for why true universals must park the clause
//     instead of absorbing the watch. Universal reduction stays implicit:
//     the conflict test (Lemma 4) fires on "no unfalsified existential and
//     no true literal" regardless of unassigned universals, and the unit
//     test re-derives the ≺ side conditions by scanning the clause.
//   - A cube is the quantifier dual: two ≺-deepest unassigned universals
//     plus an existential guard, triggered by literals becoming true.
//
// Watched literals sit at positions 0 and 1 of the constraint's literal
// array in the arena (position 0 only for unit-size constraints), so moving
// a watch is two word swaps and no auxiliary index. Watcher lists are keyed
// by the assigned literal that triggers the visit: a clause watching w lives
// in watchCl[litIdx(w.Neg())] (visited when w is falsified), a cube watching
// w in watchCu[litIdx(w)] (visited when w is satisfied). Each entry carries
// a blocker literal — some other literal of the same constraint — whose
// satisfaction (clause) or falsification (cube) proves the constraint
// dormant without touching the arena, the classic MiniSat cache-miss dodge.
//
// Every event a watcher visit reports is verified by a full scan of the
// constraint against the actual variable values, so a stale watch can defer
// an event but never fabricate one. Soundness does not depend on completeness of unit
// propagation — a deferred unit merely costs a decision — but it does
// depend on conflict detection for original clauses: the maintained
// invariant is that an unsatisfied original clause always watches its
// most recently falsifiable existential, so the assignment that falsifies
// the last one triggers the visit that reports the conflict. The qbfdebug
// deep checker (deepcheck_qbfdebug.go, checkWatchInvariants) recomputes
// this contract at every quiescent fixpoint.
//
// Visits may return an event mid-list: the remaining entries keep their
// watches and the unprocessed trail suffix keeps its queue position. This
// is sound because every literal left unprocessed was assigned at the
// current decision level, and event handling always backtracks below it (an
// asserting backjump satisfies blevel < lambda ≤ level; chronoFlip pops at
// least the current level; terminal events end the search), discarding the
// suffix wholesale.

// watcher is one watch-list entry: the constraint ref and the blocker.
type watcher struct {
	c       int32
	blocker int32
}

// propagateWatched runs the watcher engine to fixpoint: per dequeued
// literal, the original-clause satisfaction walk (residual-matrix and
// pure-literal bookkeeping), then the clause and cube watcher visits.
//
//qbf:hotpath
func (s *Solver) propagateWatched() (event, int) {
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		s.stats.Propagations++
		if s.satWalk(l) {
			return evSolution, -1
		}
		if ev, ci := s.visitClauseWatches(l); ev != evNone {
			return ev, ci
		}
		if ev, ci := s.visitCubeWatches(l); ev != evNone {
			return ev, ci
		}
	}
	return evNone, -1
}

// satWalk updates numTrue over the original clauses containing l (the
// watcher-engine occurrence lists hold originals only) and reports whether
// the residual matrix became empty — the base-case solution. undoSat is the
// backtracking inverse.
//
//qbf:hotpath
func (s *Solver) satWalk(l qbf.Lit) bool {
	for _, ci32 := range s.occ[litIdx(l)] {
		ci := int(ci32)
		s.ar.d[ci+offTrue]++
		if s.ar.d[ci+offTrue] == 1 {
			s.clauseSatisfied(ci)
		}
	}
	return s.numUnsatOriginal == 0
}

//qbf:hotpath
func (s *Solver) undoSat(l qbf.Lit) {
	for _, ci32 := range s.occ[litIdx(l)] {
		ci := int(ci32)
		s.ar.d[ci+offTrue]--
		if s.ar.d[ci+offTrue] == 0 {
			s.clauseUnsatisfied(ci)
		}
	}
}

// visitClauseWatches processes the clauses watching l.Neg(), which l just
// falsified: repair the watch, detect satisfaction, or report the clause
// unit (Lemma 5) or contradictory (Lemma 4).
//
//qbf:hotpath
func (s *Solver) visitClauseWatches(l qbf.Lit) (event, int) {
	idx := litIdx(l)
	ws := s.watchCl[idx]
	j := 0
	for i := 0; i < len(ws); i++ {
		w := ws[i]
		if s.litValue(qbf.Lit(w.blocker)) == vTrue { //lint:allow L2 round-trip decode of a stored watcher blocker
			ws[j] = w
			j++
			continue
		}
		ci := int(w.c)
		if s.ar.deleted(ci) {
			continue // drop the entry; compaction purges the stragglers
		}
		n := s.ar.size(ci)
		if n == 1 {
			// Single-literal clause (an existential, by universal
			// reduction) falsified: contradictory.
			ws[j] = w
			j++
			for i++; i < len(ws); i++ {
				ws[j] = ws[i]
				j++
			}
			s.watchCl[idx] = ws[:j]
			return evConflict, ci
		}
		fw := l.Neg()
		if s.ar.lit(ci, 0) == fw {
			s.ar.swapLits(ci, 0, 1)
		}
		other := s.ar.lit(ci, 0)
		if s.litValue(other) == vTrue {
			ws[j] = watcher{w.c, int32(other)}
			j++
			continue
		}
		// Repair: move the falsified watch to an unfalsified existential at
		// positions ≥ 2. Only existentials may take over a watch slot: a
		// true universal satisfies the clause but may not absorb the watch —
		// backtracking past it would revive falsified existentials that no
		// watch covers, and their next falsification would be a silent
		// conflict. A true universal instead parks the clause: the entry
		// stays on the falsified watch with the satisfier as blocker, which
		// is sound because the satisfier precedes the just-falsified watch
		// on the trail, and backtracking pops trail suffixes — whenever the
		// satisfier is unassigned, the parked watch is unassigned too.
		moved := false
		var satBy qbf.Lit
		for k := 2; k < n; k++ {
			m := s.ar.lit(ci, k)
			mv := s.litValue(m)
			if mv != vFalse && s.quant[m.Var()] == qbf.Exists {
				s.ar.swapLits(ci, 1, k)
				mi := litIdx(m.Neg())
				s.watchCl[mi] = append(s.watchCl[mi], watcher{w.c, int32(other)})
				moved = true
				break
			}
			if mv == vTrue {
				satBy = m
				break
			}
		}
		if moved {
			continue
		}
		if satBy != 0 {
			ws[j] = watcher{w.c, int32(satBy)}
			j++
			continue
		}
		// No replacement and no satisfier: positions ≥ 2 hold only false
		// literals and unassigned universals.
		if s.litValue(other) == vFalse || s.quant[other.Var()] == qbf.Forall {
			// No unfalsified existential and no true literal: the residual
			// clause is contradictory (Lemma 4) no matter how its unassigned
			// universals are set. Keep the watches — conflict handling
			// backtracks below the current level, unassigning fw.
			ws[j] = w
			j++
			for i++; i < len(ws); i++ {
				ws[j] = ws[i]
				j++
			}
			s.watchCl[idx] = ws[:j]
			return evConflict, ci
		}
		// other is the single unfalsified existential. Generalized unit
		// rule: forced, unless an unassigned universal m ≺ other blocks it —
		// then m becomes the universal guard: as a literal of the clause it
		// either satisfies the clause or re-triggers this check when
		// falsified, and m ≺ other means it cannot stay unassigned behind
		// other.
		blocked := false
		for k := 2; k < n; k++ {
			m := s.ar.lit(ci, k)
			if s.value[m.Var()] == undef && s.before(m.Var(), other.Var()) {
				s.ar.swapLits(ci, 1, k)
				mi := litIdx(m.Neg())
				s.watchCl[mi] = append(s.watchCl[mi], watcher{w.c, int32(other)})
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		s.assign(other, reasonConstraint, ci)
		ws[j] = watcher{w.c, int32(other)}
		j++
	}
	s.watchCl[idx] = ws[:j]
	return evNone, -1
}

// visitCubeWatches processes the cubes watching l, which l just satisfied:
// the quantifier dual of visitClauseWatches. A cube with a false literal is
// dead; one whose residual has no universal literal fires as a solution;
// one reduced to a single unassigned universal forces its negation (the
// dual unit rule), unless an unassigned existential ≺ it blocks.
//
//qbf:hotpath
func (s *Solver) visitCubeWatches(l qbf.Lit) (event, int) {
	idx := litIdx(l)
	ws := s.watchCu[idx]
	j := 0
	for i := 0; i < len(ws); i++ {
		w := ws[i]
		if s.litValue(qbf.Lit(w.blocker)) == vFalse { //lint:allow L2 round-trip decode of a stored watcher blocker
			ws[j] = w
			j++
			continue
		}
		ci := int(w.c)
		if s.ar.deleted(ci) {
			continue
		}
		n := s.ar.size(ci)
		if n == 1 {
			// Single-literal cube (a universal, by existential reduction)
			// satisfied: the good fires.
			ws[j] = w
			j++
			for i++; i < len(ws); i++ {
				ws[j] = ws[i]
				j++
			}
			s.watchCu[idx] = ws[:j]
			return evSolution, ci
		}
		tw := l
		if s.ar.lit(ci, 0) == tw {
			s.ar.swapLits(ci, 0, 1)
		}
		other := s.ar.lit(ci, 0)
		if s.litValue(other) == vFalse {
			ws[j] = watcher{w.c, int32(other)}
			j++
			continue
		}
		// Repair: move the satisfied watch to an unsatisfied universal at
		// positions ≥ 2 — the quantifier dual of the clause rule: only
		// universals may take over a cube watch slot. A false existential
		// kills the cube but may not absorb the watch (backtracking past it
		// would revive satisfied universals no watch covers); it parks the
		// cube instead, keeping the entry on the satisfied watch with the
		// death witness as blocker — sound by the same trail-suffix
		// argument as the clause side.
		moved := false
		var deadBy qbf.Lit
		for k := 2; k < n; k++ {
			m := s.ar.lit(ci, k)
			mv := s.litValue(m)
			if mv != vTrue && s.quant[m.Var()] == qbf.Forall {
				s.ar.swapLits(ci, 1, k)
				mi := litIdx(m)
				s.watchCu[mi] = append(s.watchCu[mi], watcher{w.c, int32(other)})
				moved = true
				break
			}
			if mv == vFalse {
				deadBy = m
				break
			}
		}
		if moved {
			continue
		}
		if deadBy != 0 {
			ws[j] = watcher{w.c, int32(deadBy)}
			j++
			continue
		}
		// No replacement and no death witness: positions ≥ 2 hold only true
		// literals and unassigned existentials.
		if s.litValue(other) == vTrue || s.quant[other.Var()] == qbf.Exists {
			// No false literal and no unassigned universal: existential
			// reduction empties the residual cube — the good fires.
			ws[j] = w
			j++
			for i++; i < len(ws); i++ {
				ws[j] = ws[i]
				j++
			}
			s.watchCu[idx] = ws[:j]
			return evSolution, ci
		}
		// other is the single unassigned universal: the universal player
		// must falsify it, unless an unassigned existential m ≺ other keeps
		// the cube from reducing to the unit [other] — then m becomes the
		// existential guard.
		blocked := false
		for k := 2; k < n; k++ {
			m := s.ar.lit(ci, k)
			if s.value[m.Var()] == undef && s.before(m.Var(), other.Var()) {
				s.ar.swapLits(ci, 1, k)
				mi := litIdx(m)
				s.watchCu[mi] = append(s.watchCu[mi], watcher{w.c, int32(other)})
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		s.assign(other.Neg(), reasonConstraint, ci)
		ws[j] = watcher{w.c, int32(other)}
		j++
	}
	s.watchCu[idx] = ws[:j]
	return evNone, -1
}

// initWatches installs the watches of a freshly added constraint under the
// current assignment. Slot priority for a clause: unassigned existentials
// (the two ≺-deepest), then true literals (earliest assigned — the most
// durable blockers), then unassigned universals (sound guards: they either
// satisfy the clause or re-trigger on falsification), then false literals
// by descending trail position, so that in unit/conflicting states any
// backtrack that could revive the clause unassigns a watch first. Cubes
// use the quantifier dual. The caller handles degenerate states itself: an
// asserting learned constraint assigns its forced literal immediately, and
// an imported one is woken by a full scan right after installation.
func (s *Solver) initWatches(ci int) {
	n := s.ar.size(ci)
	isCube := s.ar.isCube(ci)
	if n == 1 {
		l := s.ar.lit(ci, 0)
		if isCube {
			s.watchCu[litIdx(l)] = append(s.watchCu[litIdx(l)], watcher{int32(ci), int32(l)})
		} else {
			mi := litIdx(l.Neg())
			s.watchCl[mi] = append(s.watchCl[mi], watcher{int32(ci), int32(l)})
		}
		return
	}
	rank := func(k int) (int, int) {
		m := s.ar.lit(ci, k)
		mv := s.litValue(m)
		prim := (s.quant[m.Var()] == qbf.Exists) != isCube
		dormant := mv == vTrue
		if isCube {
			dormant = mv == vFalse
		}
		switch {
		case mv == undef && prim:
			return 3, s.plevel[m.Var()] // deeper is better
		case dormant:
			return 2, -s.trailPos[m.Var()] // earlier assigned is better
		case mv == undef:
			return 1, s.plevel[m.Var()]
		default:
			return 0, s.trailPos[m.Var()] // later falsified is better
		}
	}
	w0, w1 := 0, 1
	c0, t0 := rank(0)
	c1, t1 := rank(1)
	if c1 > c0 || (c1 == c0 && t1 > t0) {
		w0, w1 = w1, w0
		c0, t0, c1, t1 = c1, t1, c0, t0
	}
	for k := 2; k < n; k++ {
		ck, tk := rank(k)
		if ck > c0 || (ck == c0 && tk > t0) {
			w1, c1, t1 = w0, c0, t0
			w0, c0, t0 = k, ck, tk
		} else if ck > c1 || (ck == c1 && tk > t1) {
			w1, c1, t1 = k, ck, tk
		}
	}
	s.ar.swapLits(ci, 0, w0)
	if w1 == 0 {
		w1 = w0 // position 0's literal moved to w0 in the swap above
	}
	s.ar.swapLits(ci, 1, w1)
	l0, l1 := s.ar.lit(ci, 0), s.ar.lit(ci, 1)
	if isCube {
		s.watchCu[litIdx(l0)] = append(s.watchCu[litIdx(l0)], watcher{int32(ci), int32(l1)})
		s.watchCu[litIdx(l1)] = append(s.watchCu[litIdx(l1)], watcher{int32(ci), int32(l0)})
	} else {
		i0, i1 := litIdx(l0.Neg()), litIdx(l1.Neg())
		s.watchCl[i0] = append(s.watchCl[i0], watcher{int32(ci), int32(l1)})
		s.watchCl[i1] = append(s.watchCl[i1], watcher{int32(ci), int32(l0)})
	}
}
