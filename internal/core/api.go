package core

import (
	"context"

	"repro/internal/qbf"
)

// Solve decides q under ctx with the given options and returns the
// unified Result (verdict + search statistics). It is the package's
// convenience entry point; construct a Solver directly to reuse
// configuration, resume after a budget stop, or install hooks. Engine
// panics propagate — use SafeSolve for fault containment.
func Solve(ctx context.Context, q *qbf.QBF, opt Options) (Result, error) {
	s, err := NewSolver(q, opt)
	if err != nil {
		return Result{}, err
	}
	v := s.Solve(ctx)
	return Result{Verdict: v, Stats: s.Stats()}, nil
}

// MustSolve is Solve for inputs known to be well formed; it panics on a
// construction error. Intended for generator-produced formulas in tests
// and benchmarks.
func MustSolve(ctx context.Context, q *qbf.QBF, opt Options) Result {
	r, err := Solve(ctx, q, opt)
	if err != nil {
		panic(err) //lint:allow L3 MustSolve's documented contract is to panic with the construction error
	}
	return r
}

// InvariantsCompiled reports whether the deep invariant checker behind
// Options.CheckInvariants is compiled into this binary, i.e. whether the
// build used -tags qbfdebug.
func InvariantsCompiled() bool { return invariantsCompiled }

// TelemetryCompiled reports whether the telemetry emit hooks are compiled
// into this binary; a -tags qbfnotrace build strips them (and ignores
// Options.Telemetry) to serve as the overhead-measurement baseline.
func TelemetryCompiled() bool { return telemetryCompiled }
