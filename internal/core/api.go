package core

import "repro/internal/qbf"

// Solve decides q with the given options and returns the result together
// with search statistics. It is the package's convenience entry point;
// construct a Solver directly to reuse configuration or to install traces.
func Solve(q *qbf.QBF, opt Options) (Result, Stats, error) {
	s, err := NewSolver(q, opt)
	if err != nil {
		return Unknown, Stats{}, err
	}
	r := s.Solve()
	return r, s.Stats(), nil
}

// MustSolve is Solve for inputs known to be well formed; it panics on a
// construction error. Intended for generators-produced formulas in tests
// and benchmarks.
func MustSolve(q *qbf.QBF, opt Options) (Result, Stats) {
	r, st, err := Solve(q, opt)
	if err != nil {
		panic(err) //lint:allow L3 MustSolve's documented contract is to panic with the construction error
	}
	return r, st
}

// InvariantsCompiled reports whether the deep invariant checker behind
// Options.CheckInvariants is compiled into this binary, i.e. whether the
// build used -tags qbfdebug.
func InvariantsCompiled() bool { return invariantsCompiled }
