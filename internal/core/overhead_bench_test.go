package core_test

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/randqbf"
)

// BenchmarkSolveTraceOverhead is the end-to-end probe for the cost of the
// telemetry hooks when no tracer is attached. scripts/check.sh runs it
// twice — once on the default build (hooks compiled in, nil tracer) and
// once under -tags qbfnotrace (hooks compiled to a constant-false branch)
// — and fails when the default build is more than 2% slower. The instance
// is a fixed structured formula so both builds do identical search work.
func BenchmarkSolveTraceOverhead(b *testing.B) {
	q := randqbf.Fixed(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Solve(context.Background(), q, core.Options{Mode: core.ModePartialOrder})
		if err != nil || res.Verdict == core.Unknown {
			b.Fatalf("solve failed: verdict=%v err=%v", res.Verdict, err)
		}
	}
}
