package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/qbf"
)

// DebugLearnedSizes returns a histogram (size → count) of the live learned
// constraints, separately for clauses and cubes. Diagnostic aid for tests
// and tuning; not part of the solving API.
func (s *Solver) DebugLearnedSizes() (clauses, cubes map[int]int) {
	clauses = make(map[int]int)
	cubes = make(map[int]int)
	for ci := s.origEnd; ci < s.ar.end(); ci = s.ar.next(ci) {
		if s.ar.deleted(ci) {
			continue
		}
		if s.ar.isCube(ci) {
			cubes[s.ar.size(ci)]++
		} else {
			clauses[s.ar.size(ci)]++
		}
	}
	return clauses, cubes
}

// DebugSampleCubes returns up to n learned cubes rendered with quantifier
// annotations, most recent first.
func (s *Solver) DebugSampleCubes(n int) []string {
	// The arena only walks forward; collect the live cube refs first and
	// render them in reverse (most recent first).
	var refs []int
	for ci := s.origEnd; ci < s.ar.end(); ci = s.ar.next(ci) {
		if !s.ar.deleted(ci) && s.ar.isCube(ci) {
			refs = append(refs, ci)
		}
	}
	var out []string
	var sb strings.Builder
	for i := len(refs) - 1; i >= 0 && len(out) < n; i-- {
		lits := s.ar.appendLits(nil, refs[i])
		sort.Slice(lits, func(a, b int) bool { return lits[a].Var() < lits[b].Var() })
		sb.Reset()
		sb.WriteByte('[')
		for j, l := range lits {
			if j > 0 {
				sb.WriteByte(' ')
			}
			q := byte('e')
			if s.quant[l.Var()] == qbf.Forall {
				q = 'a'
			}
			sb.WriteByte(q)
			fmt.Fprintf(&sb, "%d", l.Int())
		}
		sb.WriteByte(']')
		out = append(out, sb.String())
	}
	return out
}

// DebugSolutionHook, when non-nil, is called at every solution event with
// the number of assigned universal variables and the number of universal
// variables overall — a cheap probe for how local solutions are.
func (s *Solver) SetDebugSolutionHook(f func(assignedU, totalU int)) {
	s.debugSolutionHook = f
}

func (s *Solver) debugCountUniversals() (assigned, total int) {
	for v := qbf.MinVar; v.Int() <= s.nVars; v++ {
		if s.quant[v] == qbf.Forall {
			total++
			if s.value[v] != undef {
				assigned++
			}
		}
	}
	return assigned, total
}

// DebugCubeFailures returns counters of why cube verdicts were
// non-asserting: [undef-universal, non-unique-deepest, false-literal,
// blocking-existential, blevel>=lambda].
func (s *Solver) DebugCubeFailures() [5]int64 { return s.dbgCube }
