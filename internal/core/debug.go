package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/qbf"
)

// DebugLearnedSizes returns a histogram (size → count) of the live learned
// constraints, separately for clauses and cubes. Diagnostic aid for tests
// and tuning; not part of the solving API.
func (s *Solver) DebugLearnedSizes() (clauses, cubes map[int]int) {
	clauses = make(map[int]int)
	cubes = make(map[int]int)
	for i := s.nOriginalClauses; i < len(s.cons); i++ {
		c := &s.cons[i]
		if c.deleted {
			continue
		}
		if c.isCube {
			cubes[len(c.lits)]++
		} else {
			clauses[len(c.lits)]++
		}
	}
	return clauses, cubes
}

// DebugSampleCubes returns up to n learned cubes rendered with quantifier
// annotations, most recent first.
func (s *Solver) DebugSampleCubes(n int) []string {
	var out []string
	var sb strings.Builder
	for i := len(s.cons) - 1; i >= s.nOriginalClauses && len(out) < n; i-- {
		c := &s.cons[i]
		if c.deleted || !c.isCube {
			continue
		}
		lits := append([]qbf.Lit(nil), c.lits...)
		sort.Slice(lits, func(a, b int) bool { return lits[a].Var() < lits[b].Var() })
		sb.Reset()
		sb.WriteByte('[')
		for j, l := range lits {
			if j > 0 {
				sb.WriteByte(' ')
			}
			q := byte('e')
			if s.quant[l.Var()] == qbf.Forall {
				q = 'a'
			}
			sb.WriteByte(q)
			fmt.Fprintf(&sb, "%d", l.Int())
		}
		sb.WriteByte(']')
		out = append(out, sb.String())
	}
	return out
}

// DebugSolutionHook, when non-nil, is called at every solution event with
// the number of assigned universal variables and the number of universal
// variables overall — a cheap probe for how local solutions are.
func (s *Solver) SetDebugSolutionHook(f func(assignedU, totalU int)) {
	s.debugSolutionHook = f
}

func (s *Solver) debugCountUniversals() (assigned, total int) {
	for v := qbf.MinVar; v.Int() <= s.nVars; v++ {
		if s.quant[v] == qbf.Forall {
			total++
			if s.value[v] != undef {
				assigned++
			}
		}
	}
	return assigned, total
}

// DebugCubeFailures returns counters of why cube verdicts were
// non-asserting: [undef-universal, non-unique-deepest, false-literal,
// blocking-existential, blevel>=lambda].
func (s *Solver) DebugCubeFailures() [5]int64 { return s.dbgCube }
