package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/qbf"
)

// TestDifferentialRandomTrees is the central soundness test: the solver, in
// every mode and option combination, must agree with the exponential
// semantic oracle on randomly generated scope-consistent non-prenex QBFs.
func TestDifferentialRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	n := 400
	if testing.Short() {
		n = 80
	}
	for i := 0; i < n; i++ {
		q := qbf.RandomQBF(rng, 12, 14)
		want, ok := qbf.EvalWithBudget(q, 2_000_000)
		if !ok {
			continue
		}
		modes := []Mode{ModePartialOrder}
		if q.Prefix.IsPrenex() {
			modes = append(modes, ModeTotalOrder)
		}
		for _, mode := range modes {
			for _, opt := range allOptionCombos(mode) {
				rRes, err := Solve(context.Background(), q, opt)
				r, st := rRes.Verdict, rRes.Stats
				if err != nil {
					t.Fatalf("iteration %d (%+v): %v\n%v", i, opt, err, q)
				}
				got := r == True
				if r == Unknown || got != want {
					t.Fatalf("iteration %d: mode=%v opts=%+v got %v want %v (stats %+v)\nQBF: %v",
						i, mode, opt, r, want, st, q)
				}
			}
		}
	}
}

// TestDifferentialRandomPrenex repeats the differential test on prenex
// instances so that ModeTotalOrder is always exercised.
func TestDifferentialRandomPrenex(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	n := 400
	if testing.Short() {
		n = 80
	}
	for i := 0; i < n; i++ {
		q := randomPrenexQBF(rng, 10, 18, 4)
		want, ok := qbf.EvalWithBudget(q, 2_000_000)
		if !ok {
			continue
		}
		for _, mode := range []Mode{ModePartialOrder, ModeTotalOrder} {
			for _, opt := range allOptionCombos(mode) {
				rRes, err := Solve(context.Background(), q, opt)
				r := rRes.Verdict
				if err != nil {
					t.Fatalf("iteration %d: %v", i, err)
				}
				if r == Unknown || (r == True) != want {
					t.Fatalf("iteration %d: mode=%v opts=%+v got %v want %v\nQBF: %v",
						i, mode, opt, r, want, q)
				}
			}
		}
	}
}

// randomPrenexQBF generates a random prenex QBF with up to maxBlocks
// alternating blocks.
func randomPrenexQBF(rng *rand.Rand, maxVars, maxClauses, maxBlocks int) *qbf.QBF {
	n := 2 + rng.Intn(maxVars-1)
	nb := 1 + rng.Intn(maxBlocks)
	runs := make([]qbf.Run, 0, nb)
	q := qbf.Exists
	if rng.Intn(2) == 0 {
		q = qbf.Forall
	}
	v := qbf.Var(1)
	for b := 0; b < nb && int(v) <= n; b++ {
		k := 1 + rng.Intn(3)
		var vars []qbf.Var
		for i := 0; i < k && int(v) <= n; i++ {
			vars = append(vars, v)
			v++
		}
		runs = append(runs, qbf.Run{Quant: q, Vars: vars})
		q = q.Dual()
	}
	// Bind leftovers to the last block's quantifier.
	if int(v) <= n {
		var vars []qbf.Var
		for int(v) <= n {
			vars = append(vars, v)
			v++
		}
		runs = append(runs, qbf.Run{Quant: q, Vars: vars})
	}
	p := qbf.NewPrenexPrefix(n, runs...)
	nc := 1 + rng.Intn(maxClauses)
	matrix := make([]qbf.Clause, 0, nc)
	for i := 0; i < nc; i++ {
		k := 1 + rng.Intn(4)
		seen := map[qbf.Var]bool{}
		var c qbf.Clause
		for j := 0; j < k; j++ {
			vv := qbf.Var(1 + rng.Intn(n))
			if seen[vv] {
				continue
			}
			seen[vv] = true
			l := vv.PosLit()
			if rng.Intn(2) == 0 {
				l = vv.NegLit()
			}
			c = append(c, l)
		}
		if len(c) == 0 {
			continue
		}
		matrix = append(matrix, c)
	}
	return qbf.New(p, matrix)
}

// TestDifferentialDeepAlternation stresses formulas with many alternations,
// where cube/clause learning interact the most.
func TestDifferentialDeepAlternation(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	n := 200
	if testing.Short() {
		n = 40
	}
	for i := 0; i < n; i++ {
		q := randomPrenexQBF(rng, 12, 20, 8)
		want, ok := qbf.EvalWithBudget(q, 2_000_000)
		if !ok {
			continue
		}
		for _, opt := range []Options{
			{Mode: ModePartialOrder, CheckInvariants: true},
			{Mode: ModeTotalOrder, CheckInvariants: true},
			{Mode: ModePartialOrder, DisablePureLiterals: true, CheckInvariants: true},
			{Mode: ModeTotalOrder, DisableClauseLearning: true, DisableCubeLearning: true, CheckInvariants: true},
		} {
			rRes, err := Solve(context.Background(), q, opt)
			r := rRes.Verdict
			if err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
			if (r == True) != want {
				t.Fatalf("iteration %d: opts=%+v got %v want %v\nQBF: %v", i, opt, r, want, q)
			}
		}
	}
}

// TestDifferentialWideTrees exercises trees with many sibling subtrees,
// the shape where partial-order reasoning differs most from prenex.
func TestDifferentialWideTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	n := 200
	if testing.Short() {
		n = 40
	}
	for i := 0; i < n; i++ {
		q := randomWideTree(rng)
		want, ok := qbf.EvalWithBudget(q, 2_000_000)
		if !ok {
			continue
		}
		for _, opt := range allOptionCombos(ModePartialOrder) {
			rRes, err := Solve(context.Background(), q, opt)
			r := rRes.Verdict
			if err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
			if (r == True) != want {
				t.Fatalf("iteration %d: opts=%+v got %v want %v\nQBF: %v", i, opt, r, want, q)
			}
		}
	}
}

// randomWideTree builds ∃-rooted trees with 2–4 independent ∀∃ branches,
// mimicking the diameter formula shape of Section VII.C.
func randomWideTree(rng *rand.Rand) *qbf.QBF {
	p := qbf.NewPrefix(1)
	nRoot := 1 + rng.Intn(2)
	rootVars := []qbf.Var{}
	v := qbf.Var(1)
	for i := 0; i < nRoot; i++ {
		rootVars = append(rootVars, v)
		v++
	}
	p.GrowVar(v + 20)
	root := p.AddBlock(nil, qbf.Exists, rootVars...)
	type branch struct {
		y, x []qbf.Var
	}
	var branches []branch
	nb := 2 + rng.Intn(3)
	for i := 0; i < nb; i++ {
		var br branch
		for j := 0; j < 1+rng.Intn(2); j++ {
			br.y = append(br.y, v)
			v++
		}
		for j := 0; j < 1+rng.Intn(2); j++ {
			br.x = append(br.x, v)
			v++
		}
		yb := p.AddBlock(root, qbf.Forall, br.y...)
		p.AddBlock(yb, qbf.Exists, br.x...)
		branches = append(branches, br)
	}
	p.Finalize()

	var matrix []qbf.Clause
	pick := func(pool []qbf.Var, k int) qbf.Clause {
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		if k > len(pool) {
			k = len(pool)
		}
		var c qbf.Clause
		for _, pv := range pool[:k] {
			l := pv.PosLit()
			if rng.Intn(2) == 0 {
				l = pv.NegLit()
			}
			c = append(c, l)
		}
		return c
	}
	for _, br := range branches {
		pool := append(append([]qbf.Var{}, rootVars...), append(br.y, br.x...)...)
		nc := 2 + rng.Intn(4)
		for j := 0; j < nc; j++ {
			matrix = append(matrix, pick(append([]qbf.Var{}, pool...), 1+rng.Intn(3)))
		}
	}
	return qbf.New(p, matrix)
}
