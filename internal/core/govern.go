package core

import (
	"context"
	"fmt"
	"runtime/debug"
	"strings"
	"unsafe"

	"repro/internal/qbf"
	"repro/internal/telemetry"
)

// This file is the resource-governance and fault-containment layer: the
// learned-constraint memory budget behind Options.MemLimit and the
// SafeSolve wrappers that convert library panics (including
// invariant.Violated) into errors carrying the stack and partial Stats.
// Cancellation and deadline polling live next to the search loop in
// solver.go (pollStop); the qbfdebug fault-injection hook is in
// fault_qbfdebug.go.

// Byte-accounting model for a learned constraint of n literals: its arena
// footprint (hdrWords header words plus one uint32 word per literal) plus,
// per literal, a charge for the list entries referencing it — occurrence
// entries under the counter engine, watcher/export slots under the watched
// engine; one model covers both so MemLimit behaves identically across
// engines. Slice headers, allocator slack, and the counter arrays
// (preallocated per variable, not per constraint) are not charged — the
// estimate tracks the quantity that actually grows without bound during
// search.
const perLiteralBytes = int64(unsafe.Sizeof(qbf.NoLit)) + int64(unsafe.Sizeof(int(0)))

func constraintBytes(n int) int64 {
	return 4*int64(hdrWords+n) + int64(n)*perLiteralBytes
}

// governMemory enforces Options.MemLimit at propagation fixpoints. Over
// budget it degrades gracefully first: one aggressive reduction round over
// both learned databases (ignoring the MaxLearned count gate, keeping only
// locked and above-median-activity constraints). Only if that round cannot
// recover the budget — e.g. everything left is locked as a trail reason —
// does it order a clean stop.
func (s *Solver) governMemory() StopReason {
	if s.opt.MemLimit <= 0 || s.learnedBytes <= s.opt.MemLimit {
		return StopNone
	}
	s.stats.MemReductions++
	s.emitEv(telemetry.KindGovernor, 0, s.learnedBytes, s.opt.MemLimit)
	s.reduceDBNow(false)
	s.reduceDBNow(true)
	if s.learnedBytes > s.opt.MemLimit {
		return StopMemLimit
	}
	return StopNone
}

// PanicError is a library panic contained by SafeSolve: the recovered
// value, the stack at the panic site, and the statistics accumulated up to
// the crash. Stats.StopReason is StopPanicked.
type PanicError struct {
	Value any
	Stack []byte
	Stats Stats
}

func (e *PanicError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "core: solver panicked: %v", e.Value)
	return sb.String()
}

// SafeSolve runs Solve with panic containment: any panic raised by the
// engine — including invariant.Violated from the qbfdebug deep checker —
// is converted into a *PanicError carrying the stack and the partial
// Stats, instead of crashing the process. The solver must be considered
// unusable after a contained panic (its internal state is whatever the
// crash left behind); the Stats remain readable.
func (s *Solver) SafeSolve(ctx context.Context) (v Verdict, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.stats.StopReason = StopPanicked
			s.lastResult = Unknown
			v = Unknown
			err = &PanicError{Value: p, Stack: debug.Stack(), Stats: s.stats}
		}
	}()
	return s.Solve(ctx), nil
}

// SafeSolve decides q under ctx with full fault containment: a panic
// anywhere in construction or search (a nil input, a corrupt prefix, a
// violated solver invariant) becomes a *PanicError instead of killing the
// caller. This is the entry point batch drivers should use — one crashing
// instance must not take down a campaign.
func SafeSolve(ctx context.Context, q *qbf.QBF, opt Options) (r Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			r = Result{}
			r.Stats.StopReason = StopPanicked
			err = &PanicError{Value: p, Stack: debug.Stack(), Stats: r.Stats}
		}
	}()
	s, err := NewSolver(q, opt)
	if err != nil {
		return Result{}, err
	}
	v, err := s.SafeSolve(ctx)
	return Result{Verdict: v, Stats: s.Stats()}, err
}
