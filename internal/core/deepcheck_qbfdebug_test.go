//go:build qbfdebug

package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/qbf"
)

// Tests in this file run only under -tags qbfdebug and prove that the deep
// invariant checker is live: it accepts a healthy solver and panics with an
// "invariant violated" message on deliberately corrupted internal state.

func debugSolver(t *testing.T) *Solver {
	t.Helper()
	p := qbf.NewPrenexPrefix(4,
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{1, 2}},
		qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{3}},
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{4}})
	q := qbf.New(p, []qbf.Clause{
		mkClause(1, 2), mkClause(-1, 3, 4), mkClause(-2, -3, -4)})
	s, err := NewSolver(q, Options{CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func wantViolation(t *testing.T, fragment string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("deep checker did not fire (want panic containing %q)", fragment)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "invariant violated") || !strings.Contains(msg, fragment) {
			t.Fatalf("panic %v, want an invariant violation containing %q", r, fragment)
		}
	}()
	f()
}

func TestInvariantsCompiledUnderTag(t *testing.T) {
	if !InvariantsCompiled() {
		t.Fatal("built with -tags qbfdebug but InvariantsCompiled() is false")
	}
}

func TestDeepCheckAcceptsHealthyState(t *testing.T) {
	s := debugSolver(t)
	s.deepCheck() // must not panic
	if r := s.Solve(context.Background()); r == Unknown {
		t.Fatal("tiny instance must be decided")
	}
}

func TestDeepCheckCatchesCounterCorruption(t *testing.T) {
	s := debugSolver(t)
	s.ar.d[0+offTrue]++ // ref 0 is the first original clause
	wantViolation(t, "counters stale", func() { s.deepCheck() })
}

func TestDeepCheckCatchesPhantomAssignment(t *testing.T) {
	s := debugSolver(t)
	s.value[1] = vTrue // assigned but never pushed on the trail
	wantViolation(t, "", func() { s.deepCheck() })
}

func TestDeepCheckCatchesBlockCorruption(t *testing.T) {
	s := debugSolver(t)
	s.blocks[0].unassigned--
	wantViolation(t, "unassigned", func() { s.deepCheck() })
}

func TestDeepCheckCatchesMatrixCorruption(t *testing.T) {
	s := debugSolver(t)
	s.numUnsatOriginal--
	wantViolation(t, "numUnsatOriginal", func() { s.deepCheck() })
}

func TestCheckLearnedCatchesUnreducedClause(t *testing.T) {
	s := debugSolver(t)
	// {x1, y3} with trailing universal y3 (nothing existential after it):
	// a clause that universal reduction must never let through.
	wantViolation(t, "not universally reduced", func() {
		s.checkLearnedConstraint([]qbf.Lit{1, 3}, false)
	})
}

func TestCheckLearnedCatchesUnreducedCube(t *testing.T) {
	s := debugSolver(t)
	// [y3, x4] with trailing existential x4: existential reduction must
	// have deleted x4 before the cube is learned.
	wantViolation(t, "not existentially reduced", func() {
		s.checkLearnedConstraint([]qbf.Lit{3, 4}, true)
	})
}

func TestCheckLearnedAcceptsReducedConstraints(t *testing.T) {
	s := debugSolver(t)
	s.checkLearnedConstraint([]qbf.Lit{1, 2}, false)      // existential-only clause
	s.checkLearnedConstraint([]qbf.Lit{-1, -3, 4}, false) // y3 guarded by x4
	s.checkLearnedConstraint([]qbf.Lit{1, 3}, true)       // x1 ≺ y3 guards the cube
}
