package core

import (
	"math"

	"repro/internal/qbf"
)

// This file is the arena clause store: every constraint (original clause,
// learned clause, learned cube) lives in one flat []uint32 region and is
// referred to by an integer ref — the word offset of its header. The layout
// replaces the previous pointer-per-constraint []constraint slice: no
// per-constraint allocations, no pointer fields for the GC to trace, and
// deletion plus in-place compaction instead of tenured garbage. Literals are
// stored as uint32(int32(lit)) — variable counts are bounded far below 2^30,
// so the narrowing is lossless — and decoded with a sign extension.
//
// Constraint layout (hdrWords header words, then size literal words):
//
//	word 0   size | flags (isCube, learned, deleted in the top bits)
//	word 1   activity as float32 bits
//	word 2   numTrue — literals currently true
//	word 3   frame   — deepest assumption frame the constraint depends on
//	word 4-5 reserved (zero; freed by the counter-engine removal, kept so
//	         the byte model of the memory governor stays unchanged)
//
// numTrue is maintained for original clauses only (it drives the
// residual-matrix bookkeeping behind pure-literal fixing and the
// empty-matrix solution test). The propagation engine keeps its state in
// the literal order instead: positions 0 and 1 of every constraint are its
// two watched literals (watch.go). frame is 0 outside incremental
// sessions; within one, an original clause carries the depth of the frame
// that added it and a learned clause the deepest frame its derivation
// resolved with, so popping a frame can drop exactly the constraints that
// cited it (incremental.go).
//
// Construction-time original clauses form a fixed prefix of the region
// ([0, Solver.origEnd)): they are never deleted and never move, so their
// refs are stable for the lifetime of the solver. Learned constraints —
// and, in incremental sessions, runtime-added originals — follow and are
// compacted in place when enough of them have been deleted; compaction
// returns an (old ref → new ref) mapping which the solver applies to every
// ref-holding structure (occurrence lists, watcher lists, trail reasons,
// wake queue, frame clause lists).
const (
	hdrWords = 6
	offAct   = 1
	offTrue  = 2
	offFrame = 3

	flagCube    = uint32(1) << 31
	flagLearned = uint32(1) << 30
	flagDeleted = uint32(1) << 29
	sizeMask    = flagDeleted - 1
)

// arena is the flat constraint store. The zero value is ready to use.
type arena struct {
	d []uint32
	// wasted counts the words (headers included) occupied by deleted
	// constraints; the solver compacts when it dominates the learned region.
	wasted int
}

// alloc appends a constraint and returns its ref. Activity starts at 1.
func (a *arena) alloc(lits []qbf.Lit, isCube, learned bool) int {
	ci := len(a.d)
	hdr := uint32(len(lits))
	if isCube {
		hdr |= flagCube
	}
	if learned {
		hdr |= flagLearned
	}
	a.d = append(a.d, hdr, math.Float32bits(1), 0, 0, 0, 0)
	for _, l := range lits {
		a.d = append(a.d, uint32(int32(l)))
	}
	return ci
}

func (a *arena) size(ci int) int     { return int(a.d[ci] & sizeMask) }
func (a *arena) isCube(ci int) bool  { return a.d[ci]&flagCube != 0 }
func (a *arena) learned(ci int) bool { return a.d[ci]&flagLearned != 0 }
func (a *arena) deleted(ci int) bool { return a.d[ci]&flagDeleted != 0 }

// next returns the ref following ci in an arena walk; iterate with
// `for ci := start; ci < a.end(); ci = a.next(ci)` and skip deleted refs.
// Headers of deleted constraints stay valid until the next compaction, so a
// walk crossing them is safe.
func (a *arena) next(ci int) int { return ci + hdrWords + a.size(ci) }
func (a *arena) end() int        { return len(a.d) }

func (a *arena) lit(ci, k int) qbf.Lit { return qbf.Lit(int32(a.d[ci+hdrWords+k])) } //lint:allow L2 round-trip decode of a literal alloc validated and stored

func (a *arena) swapLits(ci, j, k int) {
	b := ci + hdrWords
	a.d[b+j], a.d[b+k] = a.d[b+k], a.d[b+j]
}

// appendLits appends the constraint's literals to dst (for rendering and
// export paths that need a materialized slice).
func (a *arena) appendLits(dst []qbf.Lit, ci int) []qbf.Lit {
	for k, n := 0, a.size(ci); k < n; k++ {
		dst = append(dst, a.lit(ci, k))
	}
	return dst
}

func (a *arena) activity(ci int) float64 {
	return float64(math.Float32frombits(a.d[ci+offAct]))
}

func (a *arena) setActivity(ci int, v float64) {
	a.d[ci+offAct] = math.Float32bits(float32(v))
}

func (a *arena) bumpActivity(ci int) { a.setActivity(ci, a.activity(ci)+1) }

// frame is the assumption-frame tag (see the layout comment above).
func (a *arena) frame(ci int) int   { return int(a.d[ci+offFrame]) }
func (a *arena) setFrame(ci, f int) { a.d[ci+offFrame] = uint32(f) }

// del marks ci deleted. The header (and the literal words) remain readable
// until compactFrom reclaims the space.
func (a *arena) del(ci int) {
	a.d[ci] |= flagDeleted
	a.wasted += hdrWords + a.size(ci)
}

// compactFrom slides live constraints toward the start of the region
// beginning at `from`, dropping deleted ones, and truncates the arena. It
// returns parallel slices (olds strictly ascending, news) mapping each moved
// constraint's old ref to its new one; unmoved refs are absent. Refs below
// `from` are never touched. The caller must purge deleted refs from every
// ref-holding structure before calling (their targets cease to exist) and
// rebind the returned mapping after.
func (a *arena) compactFrom(from int) (olds, news []int32) {
	w := from
	for r := from; r < len(a.d); {
		n := hdrWords + a.size(r)
		if a.deleted(r) {
			r += n
			continue
		}
		if w != r {
			copy(a.d[w:w+n], a.d[r:r+n])
			olds = append(olds, int32(r))
			news = append(news, int32(w))
		}
		w += n
		r += n
	}
	a.d = a.d[:w]
	a.wasted = 0
	return olds, news
}

// rebind maps a ref through a compactFrom result (binary search on the
// ascending olds).
func rebind(ci int32, olds, news []int32) int32 {
	lo, hi := 0, len(olds)
	for lo < hi {
		mid := (lo + hi) / 2
		if olds[mid] < ci {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(olds) && olds[lo] == ci {
		return news[lo]
	}
	return ci
}
