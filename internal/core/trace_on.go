//go:build !qbfnotrace

package core

import (
	"repro/internal/qbf"
	"repro/internal/telemetry"
)

// This file is the default (hooks-compiled-in) half of the telemetry
// split; trace_off.go is the qbfnotrace mirror with empty bodies. The
// pattern follows share_release.go/share_qbfdebug.go: the search loop
// calls these helpers unconditionally, and the build tag decides whether
// they cost a nil-check (here) or nothing at all (qbfnotrace). The
// qbfnotrace build exists to give scripts/check.sh a true no-hook
// baseline for the <2% disabled-overhead gate.

// telemetryCompiled reports whether the emit helpers are compiled in.
const telemetryCompiled = true

// emitEv records one event at the current decision level. depth is the
// prefix-depth attribution; a and b are the per-kind payload.
func (s *Solver) emitEv(k telemetry.Kind, depth int, a, b int64) {
	if t := s.opt.Telemetry; t != nil {
		t.Emit(k, s.level, depth, a, b)
	}
}

// emitConstraintEv records an event about constraint ci, attributing it
// to the deepest prefix level among the constraint's literals (the level
// that "caused" the conflict/solution in the ≺ order).
func (s *Solver) emitConstraintEv(k telemetry.Kind, ci int) {
	t := s.opt.Telemetry
	if t == nil {
		return
	}
	depth, size := int64(0), int64(0)
	if ci >= 0 && ci < s.ar.end() {
		n := s.ar.size(ci)
		size = int64(n)
		d := 0
		for j := 0; j < n; j++ {
			if p := s.plevel[s.ar.lit(ci, j).Var()]; p > d {
				d = p
			}
		}
		depth = int64(d)
	}
	t.Emit(k, s.level, int(depth), int64(ci), size)
}

// emitLitsEv records an event about a literal set not (yet) installed as
// a constraint — a freshly learned or imported one. b carries the
// per-kind payload (0 clause / 1 cube).
func (s *Solver) emitLitsEv(k telemetry.Kind, lits []qbf.Lit, b int64) {
	t := s.opt.Telemetry
	if t == nil {
		return
	}
	t.Emit(k, s.level, int(s.litsDepth(lits)), int64(len(lits)), b)
}

func (s *Solver) litsDepth(lits []qbf.Lit) int64 {
	depth := 0
	for _, l := range lits {
		if p := s.plevel[l.Var()]; p > depth {
			depth = p
		}
	}
	return int64(depth)
}
