//go:build qbfdebug

package core

import (
	"math/rand"

	"repro/internal/invariant"
	"repro/internal/qbf"
)

// invariantsCompiled reports whether the deep checker is compiled into
// this binary (true exactly under the qbfdebug build tag).
const invariantsCompiled = true

// attachInvariantPrefix validates the finalized input prefix and
// cross-checks the solver's O(1) ≺ test against the structural
// Prefix.Before — the property the whole engine's soundness rests on.
// Pairs are exhaustive for small formulas, sampled deterministically
// otherwise.
func (s *Solver) attachInvariantPrefix(p *qbf.Prefix) {
	if !s.opt.CheckInvariants {
		return
	}
	s.dbgPrefix = p
	invariant.Must(invariant.CheckPrefix(p), "core: input prefix after Finalize")
	invariant.Must(invariant.CheckOrder(p, 1024, int64(s.nVars)+1), "core: partial order laws")

	check := func(a, b qbf.Var) {
		if s.blockOf[a] < 0 || s.blockOf[b] < 0 {
			return // ghost variables take no part in solving
		}
		invariant.Check(s.before(a, b) == p.Before(a, b),
			"core: solver before(%d,%d)=%v disagrees with Prefix.Before=%v",
			a, b, s.before(a, b), p.Before(a, b))
	}
	if s.nVars <= 64 {
		for a := qbf.MinVar; a.Int() <= s.nVars; a++ {
			for b := qbf.MinVar; b.Int() <= s.nVars; b++ {
				check(a, b)
			}
		}
		return
	}
	rng := rand.New(rand.NewSource(int64(s.nVars)))
	for i := 0; i < 4096; i++ {
		check(qbf.VarOf(1+rng.Intn(s.nVars)), qbf.VarOf(1+rng.Intn(s.nVars)))
	}
}

// deepCheck recomputes the solver's incremental state from scratch and
// panics (via invariant.Violated) on any mismatch. It is called at every
// propagation fixpoint — between decisions — so all counter effects of the
// trail have been applied (qhead == len(trail)).
func (s *Solver) deepCheck() {
	if !s.opt.CheckInvariants || s.trivial != Unknown {
		return
	}
	s.checkTrail()
	s.checkBlockBookkeeping()
	s.checkConstraintCounters()
	s.checkMatrixBookkeeping()
	s.checkWatchInvariants()
	s.checkFrames()
}

func (s *Solver) checkTrail() {
	invariant.Check(s.qhead == len(s.trail),
		"core: deepCheck at a non-fixpoint: qhead=%d, trail=%d", s.qhead, len(s.trail))
	invariant.Check(len(s.levelStart) == s.level+1,
		"core: levelStart has %d entries for level %d", len(s.levelStart), s.level)

	for i, l := range s.trail {
		v := l.Var()
		invariant.Check(v >= qbf.MinVar && v.Int() <= s.nVars, "core: trail[%d] has variable %d out of range", i, v)
		invariant.Check(s.litValue(l) == vTrue, "core: trail literal %d is not true", l)
		invariant.Check(s.trailPos[v] == i, "core: trailPos[%d]=%d, but the variable sits at %d", v, s.trailPos[v], i)
		invariant.Check(s.dlevel[v] >= 0 && s.dlevel[v] <= s.level, "core: dlevel[%d]=%d outside [0,%d]", v, s.dlevel[v], s.level)
		invariant.Check(s.reason[v] != reasonNone, "core: assigned variable %d has no reason", v)
		invariant.Check(s.blockOf[v] >= 0, "core: ghost variable %d was assigned", v)
	}
	assigned := 0
	for v := qbf.MinVar; v.Int() <= s.nVars; v++ {
		if s.value[v] != undef {
			assigned++
			tp := s.trailPos[v]
			invariant.Check(tp >= 0 && tp < len(s.trail) && s.trail[tp].Var() == v,
				"core: assigned variable %d not found on the trail", v)
		} else {
			invariant.Check(s.reason[v] == reasonNone, "core: unassigned variable %d carries reason %d", v, s.reason[v])
		}
	}
	invariant.Check(assigned == len(s.trail),
		"core: %d variables assigned but the trail holds %d", assigned, len(s.trail))

	// Each open decision level starts with a decision (or flipped
	// decision) literal recorded at that level; starts strictly increase.
	invariant.Check(s.level == 0 || s.levelStart[0] == 0, "core: levelStart[0]=%d", s.levelStart[0])
	for k := 1; k <= s.level; k++ {
		start := s.levelStart[k]
		end := len(s.trail)
		if k < s.level {
			end = s.levelStart[k+1]
		}
		invariant.Check(start < end, "core: decision level %d is empty [%d,%d)", k, start, end)
		l := s.trail[start]
		rk := s.reason[l.Var()]
		invariant.Check(rk == reasonDecision || rk == reasonFlipped,
			"core: level %d starts with reason %d, want a decision", k, rk)
		invariant.Check(s.dlevel[l.Var()] == k,
			"core: decision of level %d recorded at dlevel %d", k, s.dlevel[l.Var()])
	}

	// Constraint-propagated literals must cite a live reason constraint
	// that actually contains them (negated for cube propagations, which
	// assign the complement of the remaining universal literal).
	for _, l := range s.trail {
		v := l.Var()
		if s.reason[v] != reasonConstraint {
			continue
		}
		ci := s.reasonC[v]
		invariant.Check(ci >= 0 && ci < s.ar.end(), "core: reason constraint %d of variable %d out of range", ci, v)
		invariant.Check(!s.ar.deleted(ci), "core: reason constraint %d of variable %d was deleted", ci, v)
		want := l
		if s.ar.isCube(ci) {
			want = l.Neg()
		}
		found := false
		for k, n := 0, s.ar.size(ci); k < n; k++ {
			if s.ar.lit(ci, k) == want {
				found = true
				break
			}
		}
		invariant.Check(found, "core: reason constraint %d does not contain literal %d", ci, want)
	}
}

func (s *Solver) checkBlockBookkeeping() {
	for bi := range s.blocks {
		b := &s.blocks[bi]
		un := 0
		for _, v := range b.vars {
			if s.value[v] == undef {
				un++
			}
		}
		invariant.Check(un == b.unassigned,
			"core: block %d caches unassigned=%d, recomputed %d", bi, b.unassigned, un)
	}
	for bi := range s.blocks {
		open := 0
		for _, g := range s.blocks[bi].guards {
			if s.blocks[g].unassigned > 0 {
				open++
			}
		}
		invariant.Check(open == s.blocks[bi].guardOpen,
			"core: block %d caches guardOpen=%d, recomputed %d", bi, s.blocks[bi].guardOpen, open)
	}
}

func (s *Solver) checkConstraintCounters() {
	// numTrue is maintained on original clauses only — the residual-matrix
	// bookkeeping behind pure-literal fixing. In incremental sessions the
	// originals added at runtime live past origEnd with the learned flag
	// off and are held to the same invariant; learned constraints carry no
	// counters at all.
	for ci := 0; ci < s.ar.end(); ci = s.ar.next(ci) {
		if s.ar.deleted(ci) || s.ar.learned(ci) {
			continue
		}
		nt := 0
		for k, n := 0, s.ar.size(ci); k < n; k++ {
			if s.litValue(s.ar.lit(ci, k)) == vTrue {
				nt++
			}
		}
		invariant.Check(nt == int(s.ar.d[ci+offTrue]),
			"core: constraint %d counters stale: cached true=%d, recomputed %d",
			ci, s.ar.d[ci+offTrue], nt)
	}
}

// checkWatchInvariants validates the watcher engine's data-structure and
// propagation-completeness contract at a fixpoint. Three tiers:
//
//   - Structural, every live constraint: the watched literals are at
//     positions 0 and 1 (position 0 alone for unit-size constraints), each
//     is registered exactly once in its trigger slot (watchCl under the
//     negation for clauses, watchCu under the literal itself for cubes),
//     the constraint appears nowhere else in the tables, and every entry's
//     blocker is a literal of the constraint.
//   - Strong, original clauses: an unsatisfied original clause has at
//     least one unassigned existential literal (otherwise it is a
//     conflicting clause the engine failed to report — a silent conflict)
//     and watches at least one of them (otherwise a future falsification
//     could go unseen). This is the invariant the engine's soundness
//     argument rests on.
//   - Heuristic, cubes: a non-dead cube with an unassigned universal
//     watches an unassigned universal or a true literal.
//
// Learned clauses get the structural tier only: an import installed under
// a deep assignment can legitimately hold watches with no undef
// existential (its events are optional pruning, not soundness).
func (s *Solver) checkWatchInvariants() {
	// Census: total registrations per live ref across both tables (stale
	// entries for deleted refs are permitted — they are purged lazily).
	total := make(map[int32]int)
	for _, lists := range [2][][]watcher{s.watchCl, s.watchCu} {
		for _, ws := range lists {
			for _, e := range ws {
				if !s.ar.deleted(int(e.c)) {
					total[e.c]++
				}
			}
		}
	}
	for ci := 0; ci < s.ar.end(); ci = s.ar.next(ci) {
		if s.ar.deleted(ci) {
			continue
		}
		n := s.ar.size(ci)
		isCube := s.ar.isCube(ci)
		nw := 2
		if n == 1 {
			nw = 1
		}
		invariant.Check(total[int32(ci)] == nw,
			"core: constraint %d has %d watcher registrations, want %d", ci, total[int32(ci)], nw)
		for k := 0; k < nw; k++ {
			w := s.ar.lit(ci, k)
			var list []watcher
			if isCube {
				list = s.watchCu[litIdx(w)]
			} else {
				list = s.watchCl[litIdx(w.Neg())]
			}
			count := 0
			for _, e := range list {
				if int(e.c) != ci {
					continue
				}
				count++
				b := qbf.Lit(e.blocker) //lint:allow L2 round-trip decode of a stored watcher blocker
				member := false
				for j := 0; j < n; j++ {
					if s.ar.lit(ci, j) == b {
						member = true
						break
					}
				}
				invariant.Check(member,
					"core: constraint %d watcher blocker %d is not a literal of the constraint", ci, b)
			}
			invariant.Check(count == 1,
				"core: constraint %d watch %d registered %d times in its trigger slot, want 1", ci, w, count)
		}
		if !isCube && !s.ar.learned(ci) {
			// Strong tier for original clauses.
			sat := false
			undefE := 0
			for k := 0; k < n; k++ {
				l := s.ar.lit(ci, k)
				if s.litValue(l) == vTrue {
					sat = true
					break
				}
				if s.value[l.Var()] == undef && s.quant[l.Var()] == qbf.Exists {
					undefE++
				}
			}
			if !sat {
				invariant.Check(undefE >= 1,
					"core: original clause %d is conflicting at a fixpoint (silent conflict)", ci)
				watchesUndefE := false
				for k := 0; k < nw; k++ {
					w := s.ar.lit(ci, k)
					if s.value[w.Var()] == undef && s.quant[w.Var()] == qbf.Exists {
						watchesUndefE = true
						break
					}
				}
				invariant.Check(watchesUndefE,
					"core: unsatisfied original clause %d watches no unassigned existential", ci)
			}
		}
		if isCube {
			// Heuristic tier for cubes.
			dead := false
			undefU := 0
			for k := 0; k < n; k++ {
				l := s.ar.lit(ci, k)
				if s.litValue(l) == vFalse {
					dead = true
					break
				}
				if s.value[l.Var()] == undef && s.quant[l.Var()] == qbf.Forall {
					undefU++
				}
			}
			if !dead && undefU >= 1 {
				ok := false
				for k := 0; k < nw; k++ {
					w := s.ar.lit(ci, k)
					if s.litValue(w) == vTrue ||
						(s.value[w.Var()] == undef && s.quant[w.Var()] == qbf.Forall) {
						ok = true
						break
					}
				}
				invariant.Check(ok,
					"core: live cube %d watches no unassigned universal or true literal", ci)
			}
		}
	}
}

// checkMatrixBookkeeping recomputes the residual-matrix state driving the
// pure-literal rule: the number of original clauses with no true literal
// and, per literal, how many such clauses contain it.
func (s *Solver) checkMatrixBookkeeping() {
	unsat := 0
	active := make([]int, len(s.activeOcc))
	for ci := 0; ci < s.ar.end(); ci = s.ar.next(ci) {
		if s.ar.deleted(ci) || s.ar.learned(ci) {
			continue
		}
		n := s.ar.size(ci)
		satisfied := false
		for k := 0; k < n; k++ {
			if s.litValue(s.ar.lit(ci, k)) == vTrue {
				satisfied = true
				break
			}
		}
		if satisfied {
			continue
		}
		unsat++
		for k := 0; k < n; k++ {
			active[litIdx(s.ar.lit(ci, k))]++
		}
	}
	invariant.Check(unsat == s.numUnsatOriginal,
		"core: numUnsatOriginal=%d, recomputed %d", s.numUnsatOriginal, unsat)
	for i := range active {
		invariant.Check(active[i] == s.activeOcc[i],
			"core: activeOcc[%d]=%d, recomputed %d", i, s.activeOcc[i], active[i])
	}
}

// checkFrames validates the incremental-session bookkeeping: frame marks
// are monotone positions into the (level-0 prefix of the) trail, every
// clause a frame tracks is a live runtime original carrying that frame's
// depth as its tag, learned tags are bounded by the live frame count, and
// learned cubes — implicants of the current matrix, invalidated by any
// matrix growth — always carry tag 0.
func (s *Solver) checkFrames() {
	invariant.Check(s.falseFrom >= -1 && s.falseFrom <= len(s.frames),
		"core: falseFrom=%d with %d frames", s.falseFrom, len(s.frames))
	prev := 0
	for fi := range s.frames {
		f := &s.frames[fi]
		depth := fi + 1
		invariant.Check(f.mark >= prev && f.mark <= len(s.trail),
			"core: frame %d mark %d outside [%d,%d]", depth, f.mark, prev, len(s.trail))
		prev = f.mark
		for _, ci := range f.clauses {
			invariant.Check(ci >= s.origEnd && ci < s.ar.end(),
				"core: frame %d tracks ref %d outside the runtime region", depth, ci)
			invariant.Check(!s.ar.deleted(ci) && !s.ar.learned(ci) && !s.ar.isCube(ci),
				"core: frame %d tracks ref %d that is not a live original clause", depth, ci)
			invariant.Check(s.ar.frame(ci) == depth,
				"core: frame %d tracks ref %d tagged %d", depth, ci, s.ar.frame(ci))
		}
	}
	for ci := s.origEnd; ci < s.ar.end(); ci = s.ar.next(ci) {
		if s.ar.deleted(ci) {
			continue
		}
		tag := s.ar.frame(ci)
		invariant.Check(tag >= 0 && tag <= len(s.frames),
			"core: constraint %d tagged frame %d with %d frames live", ci, tag, len(s.frames))
		if s.ar.isCube(ci) {
			invariant.Check(tag == 0, "core: learned cube %d carries frame tag %d", ci, tag)
		}
	}
}

// checkLearnedConstraint verifies that a freshly learned clause (cube) is
// universally (existentially) reduced with respect to ≺ and mentions every
// variable at most once — the invariants Q-resolution must maintain, whose
// silent violation is exactly the learning-bug class the JAIR 2006
// soundness analysis warns about.
func (s *Solver) checkLearnedConstraint(lits []qbf.Lit, isCube bool) {
	if !s.opt.CheckInvariants || s.dbgPrefix == nil {
		return
	}
	if isCube {
		invariant.Must(invariant.CheckCubeReduced(s.dbgPrefix, lits), "core: learned cube")
	} else {
		invariant.Must(invariant.CheckClauseReduced(s.dbgPrefix, lits), "core: learned clause")
	}
}
