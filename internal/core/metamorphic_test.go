package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/prenex"
	"repro/internal/qbf"
)

// Metamorphic test layer: transformations that provably preserve a QBF's
// truth value — variable renaming, clause permutation, and prenexing of the
// quantifier tree under every strategy (Theorem 1 territory: any
// linearization extending the partial order yields an equivalent prenex
// QBF) — must leave the solver's verdict unchanged, and every variant must
// also agree with the exponential semantic oracle. Unlike the differential
// tests, which compare option combinations on one formula, these compare
// one engine across formula presentations, so they catch bugs whose effect
// is representation-dependent (ordering assumptions, index arithmetic,
// prefix traversal).

// renameQBF applies the variable permutation perm via qbf.Rename (the
// library home of the rename machinery, shared with the gate's
// canonical-form cache).
func renameQBF(q *qbf.QBF, perm []qbf.Var) *qbf.QBF {
	return qbf.Rename(q, perm)
}

// randPerm returns a uniform permutation of 1..maxVar as a 1-based table.
func randPerm(rng *rand.Rand, maxVar int) []qbf.Var {
	perm := make([]qbf.Var, maxVar+1)
	order := rng.Perm(maxVar)
	for i := 0; i < maxVar; i++ {
		perm[i+1] = qbf.Var(order[i] + 1)
	}
	return perm
}

// permuteClauses returns a copy of q with the matrix in a shuffled order
// (the matrix is a set; order must be irrelevant).
func permuteClauses(rng *rand.Rand, q *qbf.QBF) *qbf.QBF {
	matrix := make([]qbf.Clause, len(q.Matrix))
	for i, j := range rng.Perm(len(q.Matrix)) {
		matrix[j] = q.Matrix[i].Clone()
	}
	return qbf.New(q.Prefix.Clone(), matrix)
}

// solveVariant solves one formula presentation in partial-order mode (the
// mode valid for every quantifier structure).
func solveVariant(t *testing.T, label string, q *qbf.QBF) bool {
	t.Helper()
	rRes, err := Solve(context.Background(), q, Options{Mode: ModePartialOrder})
	r := rRes.Verdict
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if r == Unknown {
		t.Fatalf("%s: Unknown from an unlimited solve", label)
	}
	return r == True
}

// TestMetamorphicInvariance is the main metamorphic sweep. For each random
// tree instance it checks, against the oracle and against each other:
// the identity presentation, a variable renaming, a clause permutation,
// a renaming of the permutation (composition), and every prenexing
// strategy (solved in both PO and TO modes).
func TestMetamorphicInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	n := 250
	if testing.Short() {
		n = 60
	}
	checked := 0
	for i := 0; i < n; i++ {
		q := qbf.RandomQBF(rng, 12, 14)
		want, ok := qbf.EvalWithBudget(q, 2_000_000)
		if !ok {
			continue
		}
		checked++
		if got := solveVariant(t, "identity", q); got != want {
			t.Fatalf("iteration %d: identity: got %v, oracle %v\nQBF: %v", i, got, want, q)
		}

		perm := randPerm(rng, q.Prefix.MaxVar())
		renamed := renameQBF(q, perm)
		if got := solveVariant(t, "renamed", renamed); got != want {
			t.Fatalf("iteration %d: renaming changed the verdict: got %v, oracle %v\noriginal: %v\nrenamed: %v",
				i, got, want, q, renamed)
		}
		if w2, ok2 := qbf.EvalWithBudget(renamed, 2_000_000); ok2 && w2 != want {
			t.Fatalf("iteration %d: renaming is not truth-preserving — transformation bug", i)
		}

		shuffled := permuteClauses(rng, q)
		if got := solveVariant(t, "shuffled", shuffled); got != want {
			t.Fatalf("iteration %d: clause permutation changed the verdict\nQBF: %v", i, q)
		}

		composed := permuteClauses(rng, renamed)
		if got := solveVariant(t, "composed", composed); got != want {
			t.Fatalf("iteration %d: renaming∘permutation changed the verdict", i)
		}

		for _, strat := range prenex.Strategies {
			pq := prenex.Apply(q, strat)
			if got := solveVariant(t, "prenex-po", pq); got != want {
				t.Fatalf("iteration %d: prenexing under %v changed the PO verdict\ntree: %v\nprenex: %v",
					i, strat, q, pq)
			}
			rRes, err := Solve(context.Background(), pq, Options{Mode: ModeTotalOrder})
			r := rRes.Verdict
			if err != nil {
				t.Fatalf("iteration %d: prenex %v TO: %v", i, strat, err)
			}
			if r == Unknown || (r == True) != want {
				t.Fatalf("iteration %d: prenexing under %v changed the TO verdict: %v (oracle %v)",
					i, strat, r, want)
			}
		}
	}
	if checked < n*3/4 {
		t.Fatalf("only %d/%d instances fit the oracle budget — generator drifted", checked, n)
	}
	t.Logf("metamorphic invariance held on %d instances × (4 presentations + %d prenexings × 2 modes)",
		checked, len(prenex.Strategies))
}

// TestMetamorphicRenamingOnPrenex repeats the renaming/permutation checks
// on prenex instances in total-order mode, where the level arithmetic of
// QUBE(TO) is exercised directly.
func TestMetamorphicRenamingOnPrenex(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	n := 250
	if testing.Short() {
		n = 60
	}
	checked := 0
	for i := 0; i < n; i++ {
		q := randomPrenexQBF(rng, 10, 18, 4)
		want, ok := qbf.EvalWithBudget(q, 2_000_000)
		if !ok {
			continue
		}
		checked++
		for _, variant := range []*qbf.QBF{
			renameQBF(q, randPerm(rng, q.Prefix.MaxVar())),
			permuteClauses(rng, q),
		} {
			for _, mode := range []Mode{ModePartialOrder, ModeTotalOrder} {
				rRes, err := Solve(context.Background(), variant, Options{Mode: mode})
				r := rRes.Verdict
				if err != nil {
					t.Fatalf("iteration %d mode %v: %v", i, mode, err)
				}
				if r == Unknown || (r == True) != want {
					t.Fatalf("iteration %d mode %v: variant verdict %v, oracle %v\nQBF: %v",
						i, mode, r, want, variant)
				}
			}
		}
	}
	if checked < n*3/4 {
		t.Fatalf("only %d/%d instances fit the oracle budget — generator drifted", checked, n)
	}
}
