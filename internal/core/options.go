// Package core implements the paper's primary contribution: a search based
// Q-DLL/QCDCL decision procedure for QBFs that does not require the input
// to be in prenex form. The engine works directly on the partial prefix
// order ≺ of a quantifier tree, using the generalized contradictory-clause
// rule (Lemma 4), the generalized unit rule (Lemma 5), universal/existential
// reduction (Lemma 3 and its dual), clause (nogood) and cube (good)
// learning, pure literal fixing, and the two branching heuristics of
// Section VI:
//
//   - ModeTotalOrder reproduces QUBE(TO): literals are ranked by
//     (prefix level, score, id), the configuration meaningful for prenex
//     inputs;
//   - ModePartialOrder reproduces QUBE(PO): the score of a literal is its
//     occurrence counter plus the maximum score one alternation deeper in
//     its scope, which guarantees ≺-ancestors are branched before their
//     descendants while degrading to VSIDS on SAT instances.
//
// The same engine runs in both modes — exactly the comparison the paper
// performs — so measured differences come from the quantifier structure
// available to the heuristic and to learning, not from unrelated
// implementation details.
package core

import (
	"time"

	"repro/internal/result"
	"repro/internal/telemetry"
)

// Mode selects the branching heuristic.
type Mode int

const (
	// ModePartialOrder is QUBE(PO): scores propagate up the quantifier
	// tree (Section VI), exploiting the partial prefix order.
	ModePartialOrder Mode = iota
	// ModeTotalOrder is QUBE(TO): literals are ranked primarily by prefix
	// level, the classic prenex-solver queue.
	ModeTotalOrder
)

func (m Mode) String() string {
	if m == ModeTotalOrder {
		return "TO"
	}
	return "PO"
}

// Options configures a Solver. The zero value enables every inference
// (both learning mechanisms and pure literal fixing) in partial-order mode
// with no resource limits.
//
// Propagation is quantifier-aware watched literals over the arena clause
// store: each clause watches its two ≺-deepest unfalsified existentials,
// with any universal guard literal keeping universal reduction implicit;
// cubes run the dual scheme. The occurrence-counter engine that used to sit
// behind an Options.Propagation switch completed its one-release soak as
// the watcher differential baseline and was removed; the differential net
// now checks the watcher engine against the semantic oracle alone.
type Options struct {
	Mode Mode

	// Incremental enables the push/pop session lifecycle: Push, Pop,
	// Assume and AddClause may be called between Solve calls, learned
	// clauses are tagged with the deepest assumption frame they depend on,
	// and popping a frame drops exactly the constraints that cited it (see
	// incremental.go). Construction differs in two ways: a formula that is
	// trivially decided at build time keeps a fully initialized solver (so
	// later AddClause calls can un-trivialize it), and pure-literal fixing
	// is suppressed at decision level 0 (a root-level pure assignment made
	// under one matrix is not sound once AddClause grows it).
	Incremental bool

	// DisableClauseLearning turns off nogood learning; conflicts then
	// backtrack chronologically.
	DisableClauseLearning bool
	// DisableCubeLearning turns off good learning; solutions then
	// backtrack chronologically.
	DisableCubeLearning bool
	// DisablePureLiterals turns off pure (monotone) literal fixing.
	DisablePureLiterals bool

	// MaxLearned bounds the number of learned clauses (and, separately,
	// cubes) kept; when exceeded, inactive learned constraints are
	// discarded. 0 means the default (4000).
	MaxLearned int

	// NodeLimit bounds the number of decisions; 0 means unlimited.
	NodeLimit int64
	// TimeLimit bounds wall-clock solving time; 0 means unlimited.
	TimeLimit time.Duration
	// MemLimit bounds the estimated bytes held by learned constraints; 0
	// means unlimited. When the learned databases exceed the budget the
	// solver first degrades gracefully — an aggressive learned-DB
	// reduction of both clauses and cubes, regardless of MaxLearned — and
	// only stops (Unknown, StopMemLimit) if a single reduction round
	// cannot get back under the budget.
	MemLimit int64

	// ScoreSeed, when non-zero, deterministically perturbs the initial
	// heuristic scores with sub-unit jitter, so equally scored literals
	// break ties differently per seed. Portfolio drivers use distinct
	// seeds to diversify otherwise identical configurations; 0 keeps the
	// paper's exact initialization.
	ScoreSeed int64

	// CheckInvariants enables the deep self-checker: at construction the
	// prefix tree is validated (structural well-formedness, algebraic laws
	// of ≺, agreement of the solver's O(1) order test with Prefix.Before),
	// and at every propagation fixpoint the trail, the per-block
	// bookkeeping and all constraint counters are recomputed from scratch
	// and compared. Violations panic via invariant.Violated. The checks
	// are compiled only under the qbfdebug build tag; without the tag this
	// flag is a no-op, so production binaries pay nothing.
	CheckInvariants bool

	// Telemetry, when non-nil, receives a structured event stream from the
	// search: decisions, propagation fixpoints, conflicts, solutions,
	// learning, reductions, imports, restarts, governor actions, and the
	// final stop — each stamped with the decision level and a prefix-depth
	// attribution. nil (the default) disables telemetry; the hot-path cost
	// of the disabled state is one nil-check per event site, and a build
	// with -tags qbfnotrace compiles the sites out entirely (the baseline
	// scripts/check.sh measures overhead against).
	Telemetry *telemetry.Tracer
}

// The outcome vocabulary — Verdict, StopReason, Stats, and the unified
// Result struct — is shared with the portfolio and the bench harness and
// lives in internal/result; core aliases it under its historical names so
// existing callers keep compiling while every engine speaks one type set.

// Verdict is the outcome of a solve call: Unknown, True, or False.
type Verdict = result.Verdict

// StopReason explains an Unknown verdict; see result.StopReason.
type StopReason = result.StopReason

// Stats reports search effort; see result.Stats.
type Stats = result.Stats

// Result pairs the verdict of a run with its statistics; it is what the
// context-first package entry points return. See result.Result.
type Result = result.Result

// Verdict values, re-exported for callers of this package.
const (
	Unknown = result.Unknown
	True    = result.True
	False   = result.False
)

// StopReason values, re-exported for callers of this package.
const (
	StopNone      = result.StopNone
	StopTimeout   = result.StopTimeout
	StopNodeLimit = result.StopNodeLimit
	StopMemLimit  = result.StopMemLimit
	StopCancelled = result.StopCancelled
	StopPanicked  = result.StopPanicked
)
