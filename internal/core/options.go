// Package core implements the paper's primary contribution: a search based
// Q-DLL/QCDCL decision procedure for QBFs that does not require the input
// to be in prenex form. The engine works directly on the partial prefix
// order ≺ of a quantifier tree, using the generalized contradictory-clause
// rule (Lemma 4), the generalized unit rule (Lemma 5), universal/existential
// reduction (Lemma 3 and its dual), clause (nogood) and cube (good)
// learning, pure literal fixing, and the two branching heuristics of
// Section VI:
//
//   - ModeTotalOrder reproduces QUBE(TO): literals are ranked by
//     (prefix level, score, id), the configuration meaningful for prenex
//     inputs;
//   - ModePartialOrder reproduces QUBE(PO): the score of a literal is its
//     occurrence counter plus the maximum score one alternation deeper in
//     its scope, which guarantees ≺-ancestors are branched before their
//     descendants while degrading to VSIDS on SAT instances.
//
// The same engine runs in both modes — exactly the comparison the paper
// performs — so measured differences come from the quantifier structure
// available to the heuristic and to learning, not from unrelated
// implementation details.
package core

import "time"

// Mode selects the branching heuristic.
type Mode int

const (
	// ModePartialOrder is QUBE(PO): scores propagate up the quantifier
	// tree (Section VI), exploiting the partial prefix order.
	ModePartialOrder Mode = iota
	// ModeTotalOrder is QUBE(TO): literals are ranked primarily by prefix
	// level, the classic prenex-solver queue.
	ModeTotalOrder
)

func (m Mode) String() string {
	if m == ModeTotalOrder {
		return "TO"
	}
	return "PO"
}

// Options configures a Solver. The zero value enables every inference
// (both learning mechanisms and pure literal fixing) in partial-order mode
// with no resource limits.
type Options struct {
	Mode Mode

	// DisableClauseLearning turns off nogood learning; conflicts then
	// backtrack chronologically.
	DisableClauseLearning bool
	// DisableCubeLearning turns off good learning; solutions then
	// backtrack chronologically.
	DisableCubeLearning bool
	// DisablePureLiterals turns off pure (monotone) literal fixing.
	DisablePureLiterals bool

	// MaxLearned bounds the number of learned clauses (and, separately,
	// cubes) kept; when exceeded, inactive learned constraints are
	// discarded. 0 means the default (4000).
	MaxLearned int

	// NodeLimit bounds the number of decisions; 0 means unlimited.
	NodeLimit int64
	// TimeLimit bounds wall-clock solving time; 0 means unlimited.
	TimeLimit time.Duration
	// MemLimit bounds the estimated bytes held by learned constraints; 0
	// means unlimited. When the learned databases exceed the budget the
	// solver first degrades gracefully — an aggressive learned-DB
	// reduction of both clauses and cubes, regardless of MaxLearned — and
	// only stops (Unknown, StopMemLimit) if a single reduction round
	// cannot get back under the budget.
	MemLimit int64

	// ScoreSeed, when non-zero, deterministically perturbs the initial
	// heuristic scores with sub-unit jitter, so equally scored literals
	// break ties differently per seed. Portfolio drivers use distinct
	// seeds to diversify otherwise identical configurations; 0 keeps the
	// paper's exact initialization.
	ScoreSeed int64

	// CheckInvariants enables the deep self-checker: at construction the
	// prefix tree is validated (structural well-formedness, algebraic laws
	// of ≺, agreement of the solver's O(1) order test with Prefix.Before),
	// and at every propagation fixpoint the trail, the per-block
	// bookkeeping and all constraint counters are recomputed from scratch
	// and compared. Violations panic via invariant.Violated. The checks
	// are compiled only under the qbfdebug build tag; without the tag this
	// flag is a no-op, so production binaries pay nothing.
	CheckInvariants bool
}

// Result is the outcome of a solve call.
type Result int

const (
	// Unknown means a resource limit or a cancellation stopped the search;
	// Stats.StopReason says which.
	Unknown Result = iota
	// True means the QBF evaluated to true.
	True
	// False means the QBF evaluated to false.
	False
)

// StopReason explains an Unknown result: which budget or event ended the
// search before a verdict. Decided runs carry StopNone.
type StopReason int

const (
	// StopNone: the search ran to a True/False verdict (or never ran).
	StopNone StopReason = iota
	// StopTimeout: the TimeLimit (or context deadline) expired.
	StopTimeout
	// StopNodeLimit: the decision budget was exhausted.
	StopNodeLimit
	// StopMemLimit: the learned-constraint byte budget was exceeded and a
	// reduction round could not recover it.
	StopMemLimit
	// StopCancelled: the context passed to SolveContext was cancelled.
	StopCancelled
	// StopPanicked: a library panic was contained by SafeSolve.
	StopPanicked
)

func (r StopReason) String() string {
	switch r {
	case StopNone:
		return "none"
	case StopTimeout:
		return "timeout"
	case StopNodeLimit:
		return "node-limit"
	case StopMemLimit:
		return "mem-limit"
	case StopCancelled:
		return "cancelled"
	case StopPanicked:
		return "panicked"
	default:
		return "unknown-stop"
	}
}

func (r Result) String() string {
	switch r {
	case True:
		return "TRUE"
	case False:
		return "FALSE"
	default:
		return "UNKNOWN"
	}
}

// Stats reports search effort.
type Stats struct {
	Decisions        int64
	Propagations     int64
	PureAssignments  int64
	Conflicts        int64
	Solutions        int64
	LearnedClauses   int64
	LearnedCubes     int64
	Backjumps        int64
	ChronoBacktracks int64
	MaxDecisionLevel int
	Restarts         int64
	Time             time.Duration

	// Fixpoints counts propagation fixpoints — the solver's cancellation
	// and budget polling points (one per main-loop iteration).
	Fixpoints int64
	// PeakLearnedBytes is the high-water estimate of learned-constraint
	// memory (the quantity MemLimit governs).
	PeakLearnedBytes int64
	// MemReductions counts aggressive learned-DB reductions forced by
	// memory pressure (as opposed to routine MaxLearned housekeeping).
	MemReductions int64
	// Imports counts constraints accepted from the import hook (including
	// terminal ones); ImportsRejected counts batch entries discarded by
	// structural validation. Both stay 0 outside portfolio runs.
	Imports         int64
	ImportsRejected int64
	// StopReason explains an Unknown result; StopNone on decided runs.
	StopReason StopReason
}
