//go:build !qbfdebug

package core

import "repro/internal/qbf"

// invariantsCompiled reports whether the deep checker is compiled into
// this binary. Without the qbfdebug build tag every hook below is an empty
// no-op the compiler inlines away, so Options.CheckInvariants costs
// nothing in production builds.
const invariantsCompiled = false

func (s *Solver) attachInvariantPrefix(p *qbf.Prefix) {}

func (s *Solver) deepCheck() {}

func (s *Solver) checkLearnedConstraint(lits []qbf.Lit, isCube bool) {}
