package core

import (
	"repro/internal/qbf"
	"repro/internal/telemetry"
)

// This file is the constraint-exchange surface of the solver: the hooks a
// portfolio driver uses to export learned constraints to sibling solvers
// and to inject constraints learned elsewhere. Exports ride the existing
// SetLearnHook; imports arrive through SetImportHook and are installed at
// quiescent propagation fixpoints only, where the propagation queue is
// drained and addLearned's counter initialization is valid.
//
// Soundness contract: an imported constraint must be a consequence of the
// exact (prefix, matrix) pair this solver was built from — a clause C with
// Φ ∧ C ≡ Φ, or a cube c with Φ ∨ c ≡ Φ — which is precisely what
// clause/term resolution guarantees for constraints learned by another
// solver running on the same formula. Constraints derived under a
// *different* prefix (e.g. a prenexed form of the same tree) are NOT sound
// in general and must not be exchanged; the portfolio layer enforces this
// by grouping workers by quantifier structure. The solver defends itself
// against transport corruption (sanitizeImport), re-reduces every import
// against its own prefix, and under -tags qbfdebug re-derives soundness
// semantically on small instances (checkImportedConstraint).

// Shared is one learned constraint in transit between solvers: a clause
// (nogood) when IsCube is false, a cube (good) when true. The literal
// slice is treated as immutable by every party once published.
type Shared struct {
	Lits   []qbf.Lit
	IsCube bool
}

// maxImportLen is a hard upper bound on the length of an accepted import;
// anything longer is rejected as corrupt (exporters are expected to bound
// shared constraints far below this — long constraints propagate rarely
// and cost memory on every receiver).
const maxImportLen = 256

// SetImportHook installs a callback polled at every quiescent propagation
// fixpoint (no pending conflict or solution). The returned batch is
// installed into the learned databases after validation and reduction
// against this solver's own prefix; the hook must be fast and non-blocking
// (it runs on the search hot path) and must only hand over constraints
// that are sound consequences of the same (prefix, matrix) pair this
// solver was constructed from. Pass nil to disable importing.
func (s *Solver) SetImportHook(f func() []Shared) { s.importHook = f }

// sanitizeImport validates the structure of an incoming literal set:
// non-empty, bounded length, every literal non-zero with a variable bound
// by this solver's prefix, and no variable mentioned twice (a duplicated
// or tautological import is rejected rather than repaired — it indicates
// a corrupt or foreign constraint, not a derivable one).
func (s *Solver) sanitizeImport(lits []qbf.Lit) bool {
	if len(lits) == 0 || len(lits) > maxImportLen {
		return false
	}
	seen := make(map[qbf.Var]bool, len(lits))
	for _, l := range lits {
		if l == qbf.NoLit {
			return false
		}
		v := l.Var()
		if v.Int() < qbf.MinVar.Int() || v.Int() > s.nVars || s.blockOf[v] < 0 {
			return false
		}
		if seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// importShared drains the import hook once: every constraint in the batch
// is validated, reduced against the solver's own prefix (Lemma 3 and its
// dual), semantically re-checked under qbfdebug, and installed via
// addLearned. A constraint that reduces to one with no existential
// (clause) or no universal (cube) literal decides the whole formula —
// importShared reports that as a terminal verdict. Otherwise it returns the
// first conflict/solution event an installed constraint triggers under the
// current assignment, for the main loop to handle exactly like a
// propagation event.
func (s *Solver) importShared() (event, int, Verdict) {
	batch := s.importHook()
	if len(batch) == 0 {
		return evNone, -1, Unknown
	}
	// Two passes. The install pass must not assign anything: addLearned
	// initializes counters from the value array under the invariant that
	// the propagation queue is drained, so a unit import waking up (and
	// enqueueing its forced literal) between two installs would make the
	// later install count the pending assignment twice — once at
	// initialization and once again when propagateAll dequeues it. All
	// constraints are therefore installed first, and only then woken.
	var installed []int
	for _, sc := range batch {
		if !s.sanitizeImport(sc.Lits) {
			s.stats.ImportsRejected++
			continue
		}
		if s.opt.Incremental && sc.IsCube {
			// A sibling's cube is an implicant of the base matrix only;
			// with runtime-added clauses in play it need not cover them,
			// so importing it could fire a false solution. Clauses are
			// safe — a consequence of the base formula remains one of any
			// superset — and install with frame tag 0 below.
			s.stats.ImportsRejected++
			continue
		}
		w := s.newWorkSet()
		for _, l := range sc.Lits {
			w.add(l)
		}
		if sc.IsCube {
			s.existentialReduceSet(w)
		} else {
			s.universalReduceSet(w)
		}
		lits := w.slice()
		if sc.IsCube {
			hasU := false
			for _, l := range lits {
				if s.quant[l.Var()] == qbf.Forall {
					hasU = true
					break
				}
			}
			if !hasU {
				// A good whose existential reduction has no universal
				// literal decides the formula (dual of Lemma 4).
				s.stats.Imports++
				s.emitLitsEv(telemetry.KindImport, lits, 1)
				return evNone, -1, True
			}
		} else {
			hasE := false
			for _, l := range lits {
				if s.quant[l.Var()] == qbf.Exists {
					hasE = true
					break
				}
			}
			if !hasE {
				// A contradictory clause consequence (Lemma 4).
				s.stats.Imports++
				s.emitLitsEv(telemetry.KindImport, lits, 0)
				return evNone, -1, False
			}
		}
		if s.degenerateImport(lits, sc.IsCube) {
			s.stats.ImportsRejected++
			continue
		}
		s.checkImportedConstraint(lits, sc.IsCube)
		if sc.IsCube {
			s.emitLitsEv(telemetry.KindImport, lits, 1)
		} else {
			s.emitLitsEv(telemetry.KindImport, lits, 0)
		}
		s.importing = true
		installed = append(installed, s.addLearned(lits, sc.IsCube, 0))
		s.importing = false
		s.stats.Imports++
	}
	// Wake pass: an import that is already unit assigns its forced literal
	// (picked up by the next propagateAll), and one that is already
	// conflicting or fired becomes this fixpoint's event. scanState derives
	// every candidate's state from the actual variable values — imported
	// constraints carry no counters and their watches were installed under
	// the current assignment — so the wake-ups remain sound even once a
	// unit assignment is pending on the queue. After the first event the
	// remaining imports stay passive until a watched literal of theirs next
	// changes.
	rev, rci := evNone, -1
	for _, id := range installed {
		if ev, ci := s.scanState(id); ev != evNone {
			rev, rci = ev, ci
			break
		}
	}
	if rev == evNone && s.qhead == len(s.trail) {
		// Routine housekeeping: a heavy import stream must respect
		// MaxLearned just like locally learned constraints do. Safe here
		// because no event or assignment is pending and every trail reason
		// is locked by the reduction round.
		s.reduceDB(false)
		s.reduceDB(true)
	}
	return rev, rci, Unknown
}

// degenerateImport reports whether an import would be installed in a state
// from which it can become conflicting (clause) or fire (cube) through
// backtracking alone: a clause currently satisfied but with every
// existential literal already false, or a cube currently dead (some
// literal false) with no unassigned universal left. Watchers trigger on
// assignments, never on unassignments, so such a constraint could reach
// its event state silently when the masking literal is backtracked away.
// Dropping these imports is sound (imports are optional pruning) and
// cheap — a constraint already this tight under the current assignment has
// almost no propagation value left.
func (s *Solver) degenerateImport(lits []qbf.Lit, isCube bool) bool {
	if !isCube {
		sat := false
		unfalsifiedE := 0
		for _, l := range lits {
			if s.litValue(l) == vTrue {
				sat = true
			}
			if s.quant[l.Var()] == qbf.Exists && s.litValue(l) != vFalse {
				unfalsifiedE++
			}
		}
		return sat && unfalsifiedE == 0
	}
	dead := false
	undefU := 0
	for _, l := range lits {
		if s.litValue(l) == vFalse {
			dead = true
		}
		if s.quant[l.Var()] == qbf.Forall && s.value[l.Var()] == undef {
			undefU++
		}
	}
	return dead && undefU == 0
}

// SetNodeLimit replaces the decision budget (0 = unlimited) for subsequent
// Solve calls. Together with the resume property of Solve — the solver's
// state is preserved across an Unknown return, so re-entering continues
// the same search without repeating work — this
// lets a driver run a search in node-budget slices: solve to StopNodeLimit,
// raise the limit, solve again.
func (s *Solver) SetNodeLimit(n int64) { s.opt.NodeLimit = n }
