//go:build qbfdebug

package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/qbf"
)

// Fault-injection stress for the watcher engine: the deep checker
// (including checkWatchInvariants) runs at every propagation fixpoint while
// cancellations land at random fixpoint ordinals, the search resumes after
// each one, and the final verdict is compared against the oracle. Every
// cancel/resume cycle tears the search down mid-flight — backtracking over
// parked guards, dormant blockers, and freshly moved watches — so the
// watcher repair paths are exercised under exactly the interruptions a real
// driver produces.

func TestWatcherInvariantsUnderFaultInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(823))
	type inst struct {
		name string
		q    *qbf.QBF
		want Verdict
	}
	instances := []inst{
		{"php5", phpFormula(5), False},
		{"php6", phpFormula(6), False},
	}
	for i := 0; i < 8; i++ {
		q := randomPrenexQBF(rng, 12, 20, 6)
		if v := oracleVerdict(q); v != Unknown {
			instances = append(instances, inst{name: "rand", q: q, want: v})
		}
	}
	for k, tc := range instances {
		s, err := NewSolver(tc.q, Options{
			MaxLearned:      16, // frequent reductions → deletion + compaction mid-stress
			CheckInvariants: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		var cancel context.CancelFunc
		var next int64
		s.SetFaultHook(func(fp int64) {
			if fp >= next {
				cancel()
			}
		})
		var r Verdict
		for attempt := 0; ; attempt++ {
			if attempt > 4096 {
				t.Fatalf("instance %d (%s): no verdict after %d cancel/resume cycles", k, tc.name, attempt)
			}
			var ctx context.Context
			ctx, cancel = context.WithCancel(context.Background())
			next = s.Stats().Fixpoints + int64(1+rng.Intn(48))
			r = s.Solve(ctx)
			cancel()
			if r != Unknown {
				break
			}
			if sr := s.Stats().StopReason; sr != StopCancelled {
				t.Fatalf("instance %d (%s): Unknown with stop reason %v, want cancelled", k, tc.name, sr)
			}
		}
		if r != tc.want {
			t.Fatalf("instance %d (%s): resumed search decided %v, oracle says %v\nQBF: %v",
				k, tc.name, r, tc.want, tc.q)
		}
	}
}

// TestWatcherInjectedPanicIsContained repeats the panic-containment proof
// on the watcher engine with the deep checker armed: a panic at a random
// mid-search fixpoint must surface as a *PanicError with coherent partial
// stats, never a process crash — no matter what repair state the watcher
// lists were in when the fault fired.
func TestWatcherInjectedPanicIsContained(t *testing.T) {
	rng := rand.New(rand.NewSource(827))
	for trial := 0; trial < 6; trial++ {
		s, err := NewSolver(phpFormula(7), Options{
			MaxLearned:      16,
			CheckInvariants: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		at := int64(1 + rng.Intn(200))
		s.SetFaultHook(func(fp int64) {
			if fp == at {
				panic("injected watcher fault")
			}
		})
		r, err := s.SafeSolve(context.Background())
		if r != Unknown {
			t.Fatalf("trial %d: result %v, want UNKNOWN", trial, r)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("trial %d: err %T (%v), want *PanicError", trial, err, err)
		}
		if pe.Stats.Fixpoints != at {
			t.Errorf("trial %d: Stats.Fixpoints = %d, want %d", trial, pe.Stats.Fixpoints, at)
		}
	}
}
