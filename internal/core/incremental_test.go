package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/qbf"
)

// Metamorphic suite for the incremental session lifecycle. The session
// contract is: after any sequence of Push/Pop/AddClause/Assume, Solve must
// return the verdict of the formula "base matrix ∧ every clause added at a
// currently open depth" under the session's fixed prefix. Each random
// script checks that relation at every Solve step against a fresh
// from-scratch solver over the equivalent formula — and, when the formula
// is small enough to evaluate, against the exponential semantic oracle.
// scripts/check.sh runs this file under -race and under -tags qbfdebug,
// where every fixpoint additionally recomputes the frame invariants
// (deepcheck checkFrames).

// scriptState tracks the clauses the session ought to be equivalent to:
// one clause set per open depth (index 0 = permanent adds).
type scriptState struct {
	base   *qbf.QBF
	stack  [][]qbf.Clause
	bound  []qbf.Var // variables usable in added clauses
	solves int
}

func newScriptState(q *qbf.QBF) *scriptState {
	st := &scriptState{base: q, stack: make([][]qbf.Clause, 1)}
	for _, b := range q.Prefix.Blocks() {
		st.bound = append(st.bound, b.Vars...)
	}
	return st
}

// equivalent materializes the formula the session should currently be
// solving.
func (st *scriptState) equivalent() *qbf.QBF {
	fq := st.base.Clone()
	for _, fr := range st.stack {
		for _, c := range fr {
			fq.Matrix = append(fq.Matrix, append(qbf.Clause(nil), c...))
		}
	}
	return fq
}

// randomClause draws a scope-consistent clause over the bound variables —
// AddClause (like NewSolver) rejects clauses whose blocks do not form a
// chain of the quantifier tree, so candidates are filtered through
// ClauseBlock; a single-literal clause is always consistent and serves as
// the fallback.
func (st *scriptState) randomClause(rng *rand.Rand) qbf.Clause {
	for attempt := 0; attempt < 16; attempt++ {
		k := 1 + rng.Intn(3)
		seen := map[qbf.Var]bool{}
		var c qbf.Clause
		for j := 0; j < k; j++ {
			v := st.bound[rng.Intn(len(st.bound))]
			if seen[v] {
				continue
			}
			seen[v] = true
			l := v.PosLit()
			if rng.Intn(2) == 0 {
				l = v.NegLit()
			}
			c = append(c, l)
		}
		if _, err := st.base.ClauseBlock(c); err == nil {
			return c
		}
	}
	v := st.bound[rng.Intn(len(st.bound))]
	if rng.Intn(2) == 0 {
		return qbf.Clause{v.NegLit()}
	}
	return qbf.Clause{v.PosLit()}
}

// checkSolve runs the session Solve and the from-scratch reference solve
// of the equivalent formula and fails on any divergence. Solving twice
// exercises the verdict cache; the oracle (when affordable) pins both
// against ground truth.
func (st *scriptState) checkSolve(t *testing.T, s *Solver, opt Options, label string) {
	t.Helper()
	st.solves++
	got := s.Solve(context.Background())
	if got == Unknown {
		t.Fatalf("%s: session Solve returned Unknown (stop=%v)", label, s.Stats().StopReason)
	}
	if again := s.Solve(context.Background()); again != got {
		t.Fatalf("%s: repeated Solve flipped %v -> %v", label, got, again)
	}
	fq := st.equivalent()
	ref, err := Solve(context.Background(), fq, Options{Mode: opt.Mode, CheckInvariants: opt.CheckInvariants})
	if err != nil {
		t.Fatalf("%s: reference solve: %v\nQBF: %v", label, err, fq)
	}
	if ref.Verdict != got {
		t.Fatalf("%s: session says %v, fresh solve of the equivalent formula says %v\nQBF: %v",
			label, got, ref.Verdict, fq)
	}
	if want, ok := qbf.EvalWithBudget(fq, 500_000); ok {
		oracle := False
		if want {
			oracle = True
		}
		if got != oracle {
			t.Fatalf("%s: session says %v, oracle says %v\nQBF: %v", label, got, oracle, fq)
		}
	}
}

// runScript drives one random frame script against one base formula.
func runScript(t *testing.T, rng *rand.Rand, q *qbf.QBF, opt Options, ops int, label string) {
	t.Helper()
	opt.Incremental = true
	s, err := NewSolver(q, opt)
	if err != nil {
		t.Fatalf("%s: NewSolver: %v", label, err)
	}
	st := newScriptState(q)
	st.checkSolve(t, s, opt, label+" initial")
	for op := 0; op < ops; op++ {
		olabel := fmt.Sprintf("%s op %d", label, op)
		switch r := rng.Intn(10); {
		case r < 3: // push
			d, err := s.Push()
			if err != nil || d != len(st.stack) {
				t.Fatalf("%s: Push depth=%d err=%v, want depth %d", olabel, d, err, len(st.stack))
			}
			st.stack = append(st.stack, nil)
		case r < 5: // pop (or no-op at depth 0)
			if len(st.stack) == 1 {
				if _, err := s.Pop(); !errors.Is(err, ErrNoFrame) {
					t.Fatalf("%s: Pop at depth 0: err=%v, want ErrNoFrame", olabel, err)
				}
				continue
			}
			d, err := s.Pop()
			if err != nil || d != len(st.stack)-2 {
				t.Fatalf("%s: Pop depth=%d err=%v, want depth %d", olabel, d, err, len(st.stack)-2)
			}
			st.stack = st.stack[:len(st.stack)-1]
		case r < 8: // add a random clause
			c := st.randomClause(rng)
			if err := s.AddClause(c); err != nil {
				t.Fatalf("%s: AddClause(%v): %v", olabel, c, err)
			}
			top := len(st.stack) - 1
			st.stack[top] = append(st.stack[top], c)
		default: // assume a random literal
			c := st.randomClause(rng)[:1]
			if err := s.Assume(c[0]); err != nil {
				t.Fatalf("%s: Assume(%v): %v", olabel, c[0], err)
			}
			top := len(st.stack) - 1
			st.stack[top] = append(st.stack[top], c)
		}
		st.checkSolve(t, s, opt, olabel)
	}
}

// TestIncrementalMetamorphicTrees: random non-prenex trees under random
// frame scripts.
func TestIncrementalMetamorphicTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(911))
	n, ops := 40, 14
	if testing.Short() {
		n, ops = 12, 10
	}
	for i := 0; i < n; i++ {
		q := qbf.RandomQBF(rng, 10, 12)
		runScript(t, rng, q, Options{Mode: ModePartialOrder, CheckInvariants: true}, ops, fmt.Sprintf("tree %d", i))
	}
}

// TestIncrementalMetamorphicPrenex: prenex instances, both branching modes,
// plus the tiny-MaxLearned combo so frame drops race DB reduction and
// arena compaction.
func TestIncrementalMetamorphicPrenex(t *testing.T) {
	rng := rand.New(rand.NewSource(913))
	n, ops := 40, 14
	if testing.Short() {
		n, ops = 12, 10
	}
	for i := 0; i < n; i++ {
		q := randomPrenexQBF(rng, 9, 14, 4)
		opt := Options{Mode: ModePartialOrder, CheckInvariants: true}
		switch i % 3 {
		case 1:
			opt.Mode = ModeTotalOrder
		case 2:
			opt.MaxLearned = 4
		}
		runScript(t, rng, q, opt, ops, fmt.Sprintf("prenex %d", i))
	}
}

// TestIncrementalMetamorphicWideTrees: the diameter-like wide-tree shape,
// where cube learning (and so the cube-invalidation rule of AddClause)
// does the most work.
func TestIncrementalMetamorphicWideTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(917))
	n, ops := 25, 12
	if testing.Short() {
		n, ops = 8, 8
	}
	for i := 0; i < n; i++ {
		q := randomWideTree(rng)
		runScript(t, rng, q, Options{Mode: ModePartialOrder, CheckInvariants: true}, ops, fmt.Sprintf("wide %d", i))
	}
}

// TestIncrementalGates pins the API contract edges that random scripts hit
// only by luck.
func TestIncrementalGates(t *testing.T) {
	q := qbf.New(qbf.NewPrenexPrefix(2,
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{1, 2}}),
		[]qbf.Clause{{qbf.Var(1).PosLit(), qbf.Var(2).PosLit()}})

	t.Run("non-incremental solver rejects session ops", func(t *testing.T) {
		s, err := NewSolver(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Push(); !errors.Is(err, ErrNotIncremental) {
			t.Fatalf("Push: %v, want ErrNotIncremental", err)
		}
		if _, err := s.Pop(); !errors.Is(err, ErrNotIncremental) {
			t.Fatalf("Pop: %v, want ErrNotIncremental", err)
		}
		if err := s.AddClause(qbf.Clause{qbf.Var(1).PosLit()}); !errors.Is(err, ErrNotIncremental) {
			t.Fatalf("AddClause: %v, want ErrNotIncremental", err)
		}
		if err := s.Assume(qbf.Var(1).PosLit()); !errors.Is(err, ErrNotIncremental) {
			t.Fatalf("Assume: %v, want ErrNotIncremental", err)
		}
	})

	t.Run("unbound and zero literals rejected", func(t *testing.T) {
		s, err := NewSolver(q, Options{Incremental: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AddClause(qbf.Clause{qbf.Var(7).PosLit()}); err == nil {
			t.Fatal("AddClause accepted a variable outside the session prefix")
		}
		if err := s.AddClause(qbf.Clause{qbf.NoLit}); err == nil {
			t.Fatal("AddClause accepted the zero literal")
		}
	})

	t.Run("tautology is a no-op", func(t *testing.T) {
		s, err := NewSolver(q, Options{Incremental: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AddClause(qbf.Clause{qbf.Var(1).PosLit(), qbf.Var(1).NegLit()}); err != nil {
			t.Fatal(err)
		}
		if v := s.Solve(context.Background()); v != True {
			t.Fatalf("verdict %v after tautology, want True", v)
		}
	})

	t.Run("contradiction and recovery across frames", func(t *testing.T) {
		s, err := NewSolver(q, Options{Incremental: true})
		if err != nil {
			t.Fatal(err)
		}
		if v := s.Solve(context.Background()); v != True {
			t.Fatalf("base verdict %v, want True", v)
		}
		if _, err := s.Push(); err != nil {
			t.Fatal(err)
		}
		// x1 ∧ ¬x1 under the frame: empty clause after resolution is not
		// even needed — assume both polarities.
		if err := s.Assume(qbf.Var(1).PosLit(), qbf.Var(1).NegLit()); err != nil {
			t.Fatal(err)
		}
		if v := s.Solve(context.Background()); v != False {
			t.Fatalf("contradictory frame verdict %v, want False", v)
		}
		if _, err := s.Pop(); err != nil {
			t.Fatal(err)
		}
		if v := s.Solve(context.Background()); v != True {
			t.Fatalf("verdict %v after Pop, want True", v)
		}
	})

	t.Run("universal assumption reduces to the empty clause", func(t *testing.T) {
		uq := qbf.New(qbf.NewPrenexPrefix(2,
			qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{1}},
			qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{2}}),
			[]qbf.Clause{{qbf.Var(1).PosLit(), qbf.Var(2).PosLit()}})
		s, err := NewSolver(uq, Options{Incremental: true})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Push(); err != nil {
			t.Fatal(err)
		}
		if err := s.Assume(qbf.Var(1).PosLit()); err != nil {
			t.Fatal(err)
		}
		if v := s.Solve(context.Background()); v != False {
			t.Fatalf("verdict %v under a universal assumption, want False", v)
		}
		if _, err := s.Pop(); err != nil {
			t.Fatal(err)
		}
		if v := s.Solve(context.Background()); v != True {
			t.Fatalf("verdict %v after retracting the universal assumption, want True", v)
		}
	})

	t.Run("construction-time contradiction is permanent", func(t *testing.T) {
		fq := qbf.New(qbf.NewPrenexPrefix(1,
			qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{1}}),
			[]qbf.Clause{{qbf.Var(1).PosLit()}})
		s, err := NewSolver(fq, Options{Incremental: true})
		if err != nil {
			t.Fatal(err)
		}
		if v := s.Solve(context.Background()); v != False {
			t.Fatalf("verdict %v, want False", v)
		}
		if _, err := s.Push(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Pop(); err != nil {
			t.Fatal(err)
		}
		if v := s.Solve(context.Background()); v != False {
			t.Fatalf("verdict %v after push/pop, want False (base contradiction)", v)
		}
	})
}

// TestIncrementalLearnedSurvival checks the point of the whole design: a
// session re-solving a hard FALSE instance under throwaway frames must
// reuse the base-tagged learned clauses — the second solve under a fresh
// frame has to come in far below the conflict count of the first.
func TestIncrementalLearnedSurvival(t *testing.T) {
	s, err := NewSolver(phpFormula(5), Options{Mode: ModePartialOrder, Incremental: true, CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	if v := s.Solve(context.Background()); v != False {
		t.Fatalf("php5 verdict %v, want False", v)
	}
	first := s.Stats().Conflicts
	if first == 0 {
		t.Fatal("php5 solved without conflicts — the survival check is vacuous")
	}
	if _, err := s.Push(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Pop(); err != nil {
		t.Fatal(err)
	}
	// Pop forgot the False verdict; the re-solve must rediscover it from
	// the retained clause database at a fraction of the original work.
	if v := s.Solve(context.Background()); v != False {
		t.Fatalf("php5 re-solve verdict %v, want False", v)
	}
	resolve := s.Stats().Conflicts - first
	if resolve*4 > first {
		t.Fatalf("re-solve needed %d conflicts vs %d initially: learned clauses did not survive the frame cycle", resolve, first)
	}
}

// TestIncrementalPureUniversalRetargeted pins the pure-invalidation rule of
// AddClause for AGREEING literals: a universal that enters the session
// unconstrained is pure-fixed to an arbitrary value at the root; a later
// clause mentioning it — even one the arbitrary value happens to satisfy —
// must unwind the assignment so fixPures can re-judge it against the grown
// occurrence sets. Keeping it would count the clause satisfied by a
// wrongly-oriented universal and flip the verdict.
func TestIncrementalPureUniversalRetargeted(t *testing.T) {
	// ∃e ∀u with matrix {e}: u is unconstrained, the formula is True.
	q := qbf.New(qbf.NewPrenexPrefix(2,
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{1}},
		qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{2}}),
		[]qbf.Clause{{qbf.Var(1).PosLit()}})
	s, err := NewSolver(q, Options{Mode: ModePartialOrder, Incremental: true, CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	if v := s.Solve(context.Background()); v != True {
		t.Fatalf("base verdict %v, want True", v)
	}
	// e ∧ u under ∀u is False regardless of which value the pure fix
	// happened to park u at — both polarities, symmetric on purpose, so
	// the test cannot pass by the fix picking the lucky value.
	for _, l := range []qbf.Lit{qbf.Var(2).PosLit(), qbf.Var(2).NegLit()} {
		if _, err := s.Push(); err != nil {
			t.Fatal(err)
		}
		if err := s.AddClause(qbf.Clause{l}); err != nil {
			t.Fatal(err)
		}
		if v := s.Solve(context.Background()); v != False {
			t.Fatalf("verdict %v with clause {%v} over the universal, want False", v, l)
		}
		if _, err := s.Pop(); err != nil {
			t.Fatal(err)
		}
		if v := s.Solve(context.Background()); v != True {
			t.Fatalf("verdict %v after Pop, want True", v)
		}
	}
}
