package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/qbf"
)

// qbfCase wraps a random QBF for testing/quick generation.
type qbfCase struct {
	Q *qbf.QBF
}

func (qbfCase) Generate(r *rand.Rand, size int) reflect.Value {
	if size < 4 {
		size = 4
	}
	if size > 11 {
		size = 11
	}
	return reflect.ValueOf(qbfCase{Q: qbf.RandomQBF(r, size, size)})
}

// TestQuickSolveMatchesOracle is the quick.Check form of the differential
// test: the default PO configuration must agree with the semantic oracle.
func TestQuickSolveMatchesOracle(t *testing.T) {
	prop := func(c qbfCase) bool {
		want, ok := qbf.EvalWithBudget(c.Q, 1_000_000)
		if !ok {
			return true
		}
		rRes, err := Solve(context.Background(), c.Q, Options{CheckInvariants: true})
		r := rRes.Verdict
		if err != nil {
			return false
		}
		return (r == True) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickSolveDeterministic: solving the same formula twice gives the
// same result and the same decision count (the engine has no hidden
// randomness).
func TestQuickSolveDeterministic(t *testing.T) {
	prop := func(c qbfCase) bool {
		r1Res, err1 := Solve(context.Background(), c.Q, Options{CheckInvariants: true})
		r1, st1 := r1Res.Verdict, r1Res.Stats
		r2Res, err2 := Solve(context.Background(), c.Q, Options{CheckInvariants: true})
		r2, st2 := r2Res.Verdict, r2Res.Stats
		if err1 != nil || err2 != nil {
			return false
		}
		return r1 == r2 && st1.Decisions == st2.Decisions &&
			st1.Conflicts == st2.Conflicts && st1.Solutions == st2.Solutions
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickModesAgree: PO and TO must coincide on prenex inputs under
// random option combinations.
func TestQuickModesAgree(t *testing.T) {
	prop := func(seed int64, noCl, noCu, noPure bool) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomPrenexQBF(rng, 10, 16, 5)
		opt := Options{
			DisableClauseLearning: noCl,
			DisableCubeLearning:   noCu,
			DisablePureLiterals:   noPure,
			CheckInvariants:       true,
		}
		opt.Mode = ModePartialOrder
		rPORes, err := Solve(context.Background(), q, opt)
		rPO := rPORes.Verdict
		if err != nil {
			return false
		}
		opt.Mode = ModeTotalOrder
		rTORes, err := Solve(context.Background(), q, opt)
		rTO := rTORes.Verdict
		if err != nil {
			return false
		}
		return rPO == rTO
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickWorkSet checks the sparse working set against a reference map
// implementation under random operation sequences.
func TestQuickWorkSet(t *testing.T) {
	prop := func(ops []int16) bool {
		s := &Solver{nVars: 20}
		w := s.newWorkSet()
		ref := map[qbf.Var]qbf.Lit{}
		for _, op := range ops {
			n := int(op)
			if n < 0 {
				n = -n
			}
			v := qbf.Var(n%20 + 1)
			switch {
			case op%3 == 0: // add positive
				w.add(v.PosLit())
				ref[v] = v.PosLit()
			case op%3 == 1: // add negative (overwrites)
				w.add(v.NegLit())
				ref[v] = v.NegLit()
			default: // delete
				w.del(v)
				delete(ref, v)
			}
		}
		if len(w.vars) != len(ref) {
			return false
		}
		for v, l := range ref {
			if !w.has(v) || w.get(v) != l {
				return false
			}
		}
		for _, l := range w.slice() {
			if ref[l.Var()] != l {
				return false
			}
		}
		// Reset must clear everything.
		w2 := s.newWorkSet()
		return len(w2.vars) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestFootnote5Variant solves the paper's footnote-5 strengthening of
// formula (1): adding the clauses {y1,x1,x2} and {y2,x3,x4} removes the
// pure-literal escape for y1, y2, so the example exercises genuine
// branching on the universals. All configurations must still agree.
func TestFootnote5Variant(t *testing.T) {
	matrix := []qbf.Clause{
		{1, 3, 4}, {-2, 3, -4}, {-3, 4}, {-1, -3, -4},
		{1, 6, 7}, {-5, 6, -7}, {-6, 7}, {-1, -6, -7},
		{2, 3, 4}, // footnote 5: {y1, x1, x2}
		{5, 6, 7}, // footnote 5: {y2, x3, x4}
	}
	tree := qbf.NewPrefix(7)
	root := tree.AddBlock(nil, qbf.Exists, 1)
	y1 := tree.AddBlock(root, qbf.Forall, 2)
	tree.AddBlock(y1, qbf.Exists, 3, 4)
	y2 := tree.AddBlock(root, qbf.Forall, 5)
	tree.AddBlock(y2, qbf.Exists, 6, 7)
	q := qbf.New(tree, matrix)

	want := qbf.Eval(q)
	for _, opt := range allOptionCombos(ModePartialOrder) {
		rRes, err := Solve(context.Background(), q, opt)
		r, st := rRes.Verdict, rRes.Stats
		if err != nil {
			t.Fatal(err)
		}
		if (r == True) != want {
			t.Fatalf("opts %+v: %v, oracle %v", opt, r, want)
		}
		if !opt.DisablePureLiterals && opt.DisableClauseLearning && st.Decisions == 0 {
			t.Error("footnote-5 instance should require branching")
		}
	}
}
