package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/qbf"
)

// TestLearnedConstraintsSound audits learning semantically: every learned
// clause D must leave the formula's value unchanged when added to the
// matrix, and every learned cube T must leave it unchanged when disjoined
// with the matrix (encoded with a fresh outermost existential selector s:
// (s ∨ C) for every clause C plus (¬s ∨ l) for every l ∈ T). The oracle
// decides both sides, so this check is fully independent of the engine.
func TestLearnedConstraintsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(811))
	audited := 0
	for i := 0; i < 400 && audited < 300; i++ {
		q := qbf.RandomQBF(rng, 10, 12)
		base, ok := qbf.EvalWithBudget(q, 1_000_000)
		if !ok {
			continue
		}
		s, err := NewSolver(q, Options{CheckInvariants: true})
		if err != nil {
			t.Fatal(err)
		}
		type learned struct {
			lits   []qbf.Lit
			isCube bool
		}
		var captured []learned
		s.SetLearnHook(func(lits []qbf.Lit, isCube bool) {
			if len(captured) < 8 {
				cp := append([]qbf.Lit(nil), lits...)
				captured = append(captured, learned{cp, isCube})
			}
		})
		if r := s.Solve(context.Background()); (r == True) != base {
			t.Fatalf("iteration %d: solver %v oracle %v", i, r, base)
		}
		for _, l := range captured {
			audited++
			if l.isCube {
				got, ok := qbf.EvalWithBudget(withCube(q, l.lits), 4_000_000)
				if ok && got != base {
					t.Fatalf("iteration %d: unsound cube %v (value %v→%v)\n%v", i, l.lits, base, got, q)
				}
			} else {
				ext := q.Clone()
				ext.Matrix = append(ext.Matrix, qbf.Clause(l.lits))
				got, ok := qbf.EvalWithBudget(ext, 4_000_000)
				if ok && got != base {
					t.Fatalf("iteration %d: unsound clause %v (value %v→%v)\n%v", i, l.lits, base, got, q)
				}
			}
		}
	}
	if audited < 30 {
		t.Fatalf("only %d constraints audited; generator too easy", audited)
	}
}

// withCube builds ⟨≺', Φ'⟩ equivalent to ⟨≺, Φ⟩ ∨ (∧ lits): a fresh
// existential selector s becomes the new root; every original clause gains
// the literal s and each cube literal l yields a clause {¬s, l}.
func withCube(q *qbf.QBF, cube []qbf.Lit) *qbf.QBF {
	sVar := qbf.Var(q.MaxVar() + 1)
	np := qbf.NewPrefix(int(sVar))
	root := np.AddBlock(nil, qbf.Exists, sVar)
	var walk func(src *qbf.Block, parent *qbf.Block)
	walk = func(src *qbf.Block, parent *qbf.Block) {
		nb := np.AddBlock(parent, src.Quant, src.Vars...)
		for _, c := range src.Children {
			walk(c, nb)
		}
	}
	for _, r := range q.Prefix.Roots() {
		walk(r, root)
	}
	np.Finalize()
	matrix := make([]qbf.Clause, 0, len(q.Matrix)+len(cube))
	for _, c := range q.Matrix {
		nc := append(qbf.Clause{sVar.PosLit()}, c...)
		matrix = append(matrix, nc)
	}
	for _, l := range cube {
		matrix = append(matrix, qbf.Clause{sVar.NegLit(), l})
	}
	return qbf.New(np, matrix)
}
