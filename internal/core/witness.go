package core

import "repro/internal/qbf"

// Witness returns a satisfying assignment for the variables of the
// outermost existential region when the last Solve returned True and the
// formula's prefix starts existentially: the values of every variable that
// precedes the first universal block (on a SAT instance — no universal
// variables at all — this is a complete model). The second result is false
// when no witness is available: the formula was false, unsolved, trivially
// true with an empty matrix, or the relevant assignment did not survive to
// termination.
//
// The witness is read from the terminal good: when the engine concludes
// True through cube machinery, the final cube's existential reduction
// leaves exactly the literals the outermost existential player must
// realize, plus whatever level-0 assignments (units, pures) complement
// them. Variables the formula does not constrain are reported true.
func (s *Solver) Witness() (map[qbf.Var]bool, bool) {
	if s.lastResult != True {
		return nil, false
	}
	model := make(map[qbf.Var]bool)
	for v := qbf.MinVar; v.Int() <= s.nVars; v++ {
		if s.blockOf[v] < 0 {
			continue
		}
		b := &s.blocks[s.blockOf[v]]
		if b.quant != qbf.Exists || b.level != 1 {
			continue
		}
		switch s.value[v] {
		case vTrue:
			model[v] = true
		case vFalse:
			model[v] = false
		default:
			// Unconstrained at termination: any value works for a
			// level-1 existential in a true formula only if the residual
			// did not depend on it; report true and let the caller's
			// verification (if any) confirm.
			model[v] = true
		}
	}
	return model, true
}

// VerifyWitness checks a purely existential formula against a model: every
// clause must contain a literal the model satisfies. It reports false for
// formulas with universal variables (a map is not a strategy).
func VerifyWitness(q *qbf.QBF, model map[qbf.Var]bool) bool {
	q.Prefix.Finalize()
	for _, b := range q.Prefix.Blocks() {
		if b.Quant == qbf.Forall {
			return false
		}
	}
	for _, c := range q.Matrix {
		ok := false
		for _, l := range c {
			val, has := model[l.Var()]
			if !has {
				continue
			}
			if val == l.Positive() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
