//go:build qbfdebug

package core

// SetFaultHook installs a test-only callback fired at every propagation
// fixpoint with the 1-based fixpoint ordinal (Stats.Fixpoints at call
// time). The hook may panic — exercising SafeSolve containment — or cancel
// the context passed to Solve — exercising cooperative stopping.
// It runs with the solver in exactly the state a real asynchronous fault
// would find it in. Compiled only under -tags qbfdebug; release builds
// have no setter and a no-op injection site.
func (s *Solver) SetFaultHook(f func(fixpoint int64)) { s.faultHook = f }

func (s *Solver) injectFault(fp int64) {
	if s.faultHook != nil {
		s.faultHook(fp)
	}
}
