package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/qbf"
)

func TestLubySequence(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(i + 1); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestQuickMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{5}, 5},
		{[]float64{3, 1, 2}, 2},
		{[]float64{9, 1, 7, 3, 5}, 5},
		{[]float64{2, 2, 2, 2}, 2},
		{[]float64{4, 1, 3, 2}, 3}, // k = len/2 = 2 → third smallest
	}
	for _, c := range cases {
		in := append([]float64(nil), c.in...)
		if got := quickMedian(in); got != c.want {
			t.Errorf("quickMedian(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestLitIdx(t *testing.T) {
	if litIdx(qbf.Lit(3)) != 6 || litIdx(qbf.Lit(-3)) != 7 {
		t.Error("litIdx mapping broken")
	}
	if litIdx(qbf.Lit(1)) == litIdx(qbf.Lit(-1)) {
		t.Error("polarities must map to distinct indices")
	}
}

// TestReduceDBKeepsAnswers: a tiny learned-constraint cap must not change
// results, only effort.
func TestReduceDBKeepsAnswers(t *testing.T) {
	q := hardishQBF()
	baseRes, err := Solve(context.Background(), q, Options{})
	base := baseRes.Verdict
	if err != nil {
		t.Fatal(err)
	}
	cappedRes, err := Solve(context.Background(), q, Options{MaxLearned: 8})
	capped, st := cappedRes.Verdict, cappedRes.Stats
	if err != nil {
		t.Fatal(err)
	}
	if capped != base {
		t.Fatalf("MaxLearned=8 changed the answer: %v vs %v", capped, base)
	}
	_ = st
}

// TestRestartsPreserveAnswer compares a solver that restarts aggressively
// (tiny restartUnit via many learning events) against the baseline.
func TestRestartsPreserveAnswer(t *testing.T) {
	q := hardishQBF()
	r1Res, err := Solve(context.Background(), q, Options{})
	r1, st1 := r1Res.Verdict, r1Res.Stats
	if err != nil {
		t.Fatal(err)
	}
	// With learning disabled no restarts can trigger (they are gated on
	// learning events), so the search is a pure flip-DFS.
	r2Res, err := Solve(context.Background(), q, Options{DisableClauseLearning: true, DisableCubeLearning: true})
	r2, st2 := r2Res.Verdict, r2Res.Stats
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("results differ: %v vs %v", r1, r2)
	}
	if st2.Restarts != 0 {
		t.Errorf("no-learning run restarted %d times", st2.Restarts)
	}
	_ = st1
}

// hardishQBF builds a 2-alternation formula needing real search.
func hardishQBF() *qbf.QBF {
	p := qbf.NewPrenexPrefix(12,
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{1, 2, 3, 4}},
		qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{5, 6}},
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{7, 8, 9, 10, 11, 12}})
	m := []qbf.Clause{
		{1, 2, 7}, {-1, 3, 8}, {-2, -3, 9}, {4, -7, 10},
		{5, 7, -8}, {-5, 8, -9}, {6, 9, -10}, {-6, 10, 11},
		{5, -6, 12}, {-5, 6, -11}, {-4, -12, 7}, {1, -9, -11},
		{-7, -10, 12}, {2, -8, 11}, {-3, 9, -12},
	}
	return qbf.New(p, m)
}

func TestTimeLimitRespected(t *testing.T) {
	// A formula family the solver cannot finish instantly: random-ish
	// 3-alternation; ensure a 1ns limit yields Unknown quickly.
	q := hardishQBF()
	start := time.Now()
	rRes, err := Solve(context.Background(), q, Options{TimeLimit: time.Nanosecond})
	r := rRes.Verdict
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("limit ignored: ran %v", d)
	}
	// The instance may still solve within the first 64 decisions (the
	// limit-check stride), so both Unknown and a decided result are legal;
	// a decided result must then match the unlimited run.
	if r != Unknown {
		fullRes, _ := Solve(context.Background(), q, Options{})
		full := fullRes.Verdict
		if r != full {
			t.Fatalf("limited run decided %v but full run %v", r, full)
		}
	}
}

func TestSolverReuseForbidden(t *testing.T) {
	// Solve must be callable once per Solver; a second call continues from
	// a terminal state and must return the same answer immediately for
	// trivial formulas.
	p := qbf.NewPrenexPrefix(1, qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{1}})
	q := qbf.New(p, []qbf.Clause{{1}})
	s, err := NewSolver(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r := s.Solve(context.Background()); r != True {
		t.Fatalf("first solve: %v", r)
	}
}

func TestStatsAccumulate(t *testing.T) {
	q := hardishQBF()
	s, err := NewSolver(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Solve(context.Background())
	st := s.Stats()
	if st.Time <= 0 {
		t.Error("Time not recorded")
	}
	if st.Decisions == 0 && st.Propagations == 0 {
		t.Error("no work recorded")
	}
	if st.MaxDecisionLevel == 0 && st.Decisions > 0 {
		t.Error("MaxDecisionLevel not tracked")
	}
}

func TestDebugHelpers(t *testing.T) {
	q := hardishQBF()
	s, err := NewSolver(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	events := 0
	s.SetDebugSolutionHook(func(a, tot int) {
		if a < 0 || a > tot {
			t.Errorf("bad hook values %d/%d", a, tot)
		}
		events++
	})
	s.Solve(context.Background())
	cl, cu := s.DebugLearnedSizes()
	for sz := range cl {
		if sz <= 0 {
			t.Errorf("clause histogram has size %d", sz)
		}
	}
	for sz := range cu {
		if sz <= 0 {
			t.Errorf("cube histogram has size %d", sz)
		}
	}
	_ = s.DebugSampleCubes(3)
}

func TestNewSolverRejectsBadInput(t *testing.T) {
	// Scope-inconsistent: a clause spanning incomparable subtrees.
	p := qbf.NewPrefix(5)
	r := p.AddBlock(nil, qbf.Exists, 1)
	a := p.AddBlock(r, qbf.Forall, 2)
	p.AddBlock(a, qbf.Exists, 3)
	b := p.AddBlock(r, qbf.Forall, 4)
	p.AddBlock(b, qbf.Exists, 5)
	bad := qbf.New(p, []qbf.Clause{{3, 5}})
	if _, err := NewSolver(bad, Options{}); err == nil {
		t.Error("scope-inconsistent input must be rejected")
	}
	// Invalid literal.
	p2 := qbf.NewPrenexPrefix(1, qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{1}})
	invalid := &qbf.QBF{Prefix: p2, Matrix: []qbf.Clause{{0}}}
	if _, err := NewSolver(invalid, Options{}); err == nil {
		t.Error("literal 0 must be rejected")
	}
}
