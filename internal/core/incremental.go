package core

import (
	"errors"
	"fmt"

	"repro/internal/qbf"
	"repro/internal/telemetry"
)

// This file is the incremental session lifecycle (Options.Incremental):
// Push/Pop assumption frames plus AddClause/Assume between Solve calls,
// against one fixed prefix. The formula solved at any moment is the base
// matrix plus every clause added at a currently open frame depth (an
// assumption is just a unit clause), so a fresh solver built over that
// conjunction must agree with the session verdict — the contract the
// metamorphic suite (incremental_test.go) checks step by step.
//
// What survives a Pop is decided by frame tags (arena header word 3):
//
//   - A runtime original clause carries the depth of the frame that added
//     it and dies when that frame pops (depth 0 adds are permanent).
//   - A learned clause carries the deepest tag among the constraints its
//     Q-resolution derivation resolved with: it is a consequence of the
//     base matrix plus the frames up to its tag, so it survives every pop
//     above the tag and dies with the tagged frame. Shallow-tagged lemmas
//     — including everything derived from the base alone — survive the
//     whole session.
//   - A learned cube always carries tag 0 but dies on every AddClause or
//     Assume instead: a cube is an implicant of the *current* matrix
//     (model-side reasoning), so shrinking the matrix preserves it while
//     growing the matrix by any clause invalidates it.
//
// Frame marks make the drops safe. A frame records the level-0 trail
// length at its Push; a constraint tagged d can only have propagated at
// trail positions at or past frame d's mark (it did not exist — or, for a
// lemma, had no frame-d premise — before then), so Pop first unwinds the
// level-0 trail to the mark and only then deletes, leaving no trail entry
// citing a deleted reason. dropAllCubes maintains the same property from
// the other side: when it unwinds cube-reasoned trail entries below an
// open frame's mark, it clamps that mark down, keeping "tagged ≥ d
// propagates ≥ mark_d" true for the rest of the session.
//
// A freshly added clause is installed with watches computed under the
// current level-0 assignment, which the watch machinery never observed
// changing; the clause is therefore queued on wakeRefs and fully scanned
// at the next propagation fixpoint (propagateAll/drainWakes). A clause
// whose universal reduction is empty or existential-free is a
// contradiction (Lemma 4) the moment it is added: falseFrom records the
// shallowest frame depth that did this, Solve returns False while the
// record lives, and the Pop of that depth clears it.

// frame is one open assumption frame.
type frame struct {
	// mark is the level-0 trail position the frame opened at (clamped down
	// by dropAllCubes when cube-reasoned entries below it are unwound);
	// popping the frame unwinds the trail to it.
	mark int
	// clauses are the arena refs of the original clauses added at this
	// depth, removed eagerly on Pop.
	clauses []int
}

// ErrNotIncremental is returned by the session operations of a solver
// built without Options.Incremental.
var ErrNotIncremental = errors.New("core: session operation on a solver built without Options.Incremental")

// ErrNoFrame is returned by Pop when no frame is open.
var ErrNoFrame = errors.New("core: Pop without a matching Push")

// beginOp gates and normalizes every session operation: the solver must be
// incremental, and the search state is rewound to the root so the
// operation manipulates only the level-0 trail.
func (s *Solver) beginOp() error {
	if !s.opt.Incremental {
		return ErrNotIncremental
	}
	s.backtrack(0)
	s.opDirty = true
	return nil
}

// FrameDepth returns the number of open assumption frames.
func (s *Solver) FrameDepth() int { return len(s.frames) }

// Push opens a new assumption frame and returns the new depth. Clauses and
// assumptions added while the frame is open are retracted by the matching
// Pop. Push alone does not change the formula, so a previous verdict
// stands until something is added.
func (s *Solver) Push() (int, error) {
	if err := s.beginOp(); err != nil {
		return 0, err
	}
	s.frames = append(s.frames, frame{mark: len(s.trail)})
	s.emitEv(telemetry.KindFrame, 0, 0, int64(len(s.frames)))
	return len(s.frames), nil
}

// Pop closes the deepest frame and returns the new depth: the frame's
// clauses and assumptions leave the formula, and with them every learned
// clause whose derivation depended on the frame. Learned cubes and
// shallower-tagged lemmas survive — the retained database is what makes a
// session faster than from-scratch solving. A False verdict is forgotten
// (its premises may just have been retracted); a True verdict stands
// (removing clauses cannot falsify a true formula).
func (s *Solver) Pop() (int, error) {
	if err := s.beginOp(); err != nil {
		return 0, err
	}
	d := len(s.frames)
	if d == 0 {
		return 0, ErrNoFrame
	}
	f := s.frames[d-1]
	s.unwindTrail(f.mark)
	for _, ci := range f.clauses {
		s.removeOriginalClause(ci)
	}
	for ci := s.origEnd; ci < s.ar.end(); ci = s.ar.next(ci) {
		if !s.ar.deleted(ci) && s.ar.learned(ci) && s.ar.frame(ci) >= d {
			s.dropLearned(ci)
		}
	}
	s.frames = s.frames[:d-1]
	if s.falseFrom == d {
		s.falseFrom = -1
	}
	if s.lastResult == False {
		// The False verdict may have been a terminal root conflict, which
		// returned with the falsified clause's triggers consumed on the
		// level-0 trail. If the falsifying assignments survive this pop
		// (their frames are still open), nothing would ever revisit the
		// clause, so queue every live clause for a full rescan: the next
		// propagation fixpoint re-derives the conflict if it still holds,
		// and re-asserts root units that the unwind removed if it does not.
		s.lastResult = Unknown
		s.rewakeClauses()
	}
	if s.ar.wasted > 0 && 2*s.ar.wasted >= s.ar.end()-s.origEnd {
		s.compactLearned()
	}
	s.emitEv(telemetry.KindFrame, 0, 1, int64(len(s.frames)))
	return len(s.frames), nil
}

// AddClause conjoins c to the formula at the current frame depth (depth 0:
// permanently). The clause is universally reduced against the prefix
// first; a reduction with no existential literal is a contradiction
// (Lemma 4) recorded against the current depth, making Solve return False
// until that frame pops. A tautological c is a no-op. Every literal must
// use a variable bound by the prefix the solver was built over — the
// prefix is fixed for the session — and the clause must be
// scope-consistent: its variables' blocks must form a chain of the
// quantifier tree, the same condition NewSolver requires of the base
// matrix (the recursive semantics is only defined under it). A True
// verdict is forgotten (the model may violate c); a False verdict stands.
func (s *Solver) AddClause(c qbf.Clause) error {
	if err := s.beginOp(); err != nil {
		return err
	}
	w := s.newWorkSet()
	var deep qbf.Var // deepest-block variable seen so far
	for _, l := range c {
		if l == qbf.NoLit {
			return errors.New("core: AddClause: zero literal")
		}
		v := l.Var()
		if v.Int() < qbf.MinVar.Int() || v.Int() > s.nVars || s.blockOf[v] < 0 {
			return fmt.Errorf("core: AddClause: variable %d not bound by the session prefix", v)
		}
		switch {
		case deep == 0, s.sd[deep] <= s.sd[v] && s.sf[v] <= s.sf[deep]:
			deep = v // v's block sits at or below deep's
		case s.sd[v] <= s.sd[deep] && s.sf[deep] <= s.sf[v]:
			// deep stays the deepest
		default:
			return fmt.Errorf("core: AddClause: variables %d and %d span incomparable scopes", deep, v)
		}
		if prev := w.get(v); prev != 0 && prev != l {
			return nil // tautology: x ∨ ¬x ∨ … is no constraint at all
		}
		w.add(l)
	}
	// A grown formula can only lose models: a True verdict is stale, a
	// False one still stands and is kept.
	if s.lastResult == True {
		s.lastResult = Unknown
	}
	depth := len(s.frames)
	s.universalReduceSet(w)
	lits := w.slice()
	hasE := false
	for _, l := range lits {
		if s.quant[l.Var()] == qbf.Exists {
			hasE = true
			break
		}
	}
	if len(lits) == 0 || !hasE {
		if s.falseFrom < 0 || depth < s.falseFrom {
			s.falseFrom = depth
		}
		s.emitEv(telemetry.KindFrame, 0, 2, int64(depth))
		return nil
	}
	s.dropAllCubes()
	s.invalidatePures(lits)
	s.installRuntimeClause(lits, depth)
	s.emitEv(telemetry.KindFrame, 0, 2, int64(depth))
	return nil
}

// Assume asserts each literal at the current frame depth — sugar for
// adding the corresponding unit clauses, which is exactly what an
// assumption under one fixed prefix is: Solve answers for the formula
// conjoined with the literals, and the matching Pop retracts them.
// Assuming a universal literal l makes the formula trivially false (the
// unit clause [l] universally reduces to the empty clause).
func (s *Solver) Assume(lits ...qbf.Lit) error {
	for _, l := range lits {
		if err := s.AddClause(qbf.Clause{l}); err != nil {
			return err
		}
	}
	return nil
}

// installRuntimeClause installs a validated, universally reduced clause as
// a runtime original: into the arena (learned flag off, tagged with its
// frame depth), the occurrence and heuristic counters, the residual-matrix
// bookkeeping, the watcher tables, and the wake queue. numTrue counts only
// literals the propagation engine has dequeued — satWalk will count the
// pending ones when they drain — so the clause's counters stay symmetric
// with undoSat from the first moment.
func (s *Solver) installRuntimeClause(lits []qbf.Lit, depth int) int {
	id := s.ar.alloc(lits, false, false)
	s.ar.setFrame(id, depth)
	s.nOriginalClauses++
	nt := 0
	for _, l := range lits {
		li := litIdx(l)
		s.occ[li] = append(s.occ[li], int32(id))
		s.counter[li]++
		if s.litValue(l) == vTrue && s.trailPos[l.Var()] < s.qhead {
			nt++
		}
	}
	s.ar.d[id+offTrue] = uint32(nt)
	if nt == 0 {
		s.numUnsatOriginal++
		for _, l := range lits {
			s.activeOcc[litIdx(l)]++
		}
	}
	s.initWatches(id)
	s.wakeRefs = append(s.wakeRefs, id)
	s.runtimeOrig = append(s.runtimeOrig, id)
	if depth > 0 {
		fr := &s.frames[depth-1]
		fr.clauses = append(fr.clauses, id)
	}
	return id
}

// removeOriginalClause retracts a runtime original: the inverse of
// installRuntimeClause. Occurrence refs are removed eagerly — satWalk and
// undoSat iterate occurrence lists without testing the deleted flag —
// while watcher entries are dropped lazily like any deleted constraint's.
func (s *Solver) removeOriginalClause(ci int) {
	n := s.ar.size(ci)
	if s.ar.d[ci+offTrue] == 0 {
		// The clause was part of the residual matrix; it leaves it.
		s.numUnsatOriginal--
		for k := 0; k < n; k++ {
			m := s.ar.lit(ci, k)
			mi := litIdx(m)
			s.activeOcc[mi]--
			if s.activeOcc[mi] == 0 && s.value[m.Var()] == undef {
				s.pureCand = append(s.pureCand, m.Var())
			}
		}
	}
	for k := 0; k < n; k++ {
		li := litIdx(s.ar.lit(ci, k))
		s.counter[li]--
		occ := s.occ[li]
		for j, c := range occ {
			if int(c) == ci {
				occ[j] = occ[len(occ)-1]
				s.occ[li] = occ[:len(occ)-1]
				break
			}
		}
	}
	for j, c := range s.runtimeOrig {
		if c == ci {
			s.runtimeOrig[j] = s.runtimeOrig[len(s.runtimeOrig)-1]
			s.runtimeOrig = s.runtimeOrig[:len(s.runtimeOrig)-1]
			break
		}
	}
	s.nOriginalClauses--
	s.ar.del(ci)
}

// invalidatePures unwinds every root-level pure assignment whose variable
// the incoming clause mentions — in either polarity. A falsified pure loses
// its justification outright (the clause introduces the complement the
// absence of which justified it). But an AGREEING literal is no safer: a
// universal that was pure-or-unconstrained may have been fixed to the value
// that now satisfies the clause, while the grown occurrence sets demand the
// opposite value (the adversary never satisfies a clause it can falsify) —
// keeping it would count the clause satisfied by a wrongly-oriented
// universal. The trail is cut at the earliest such entry (unwound pure
// variables re-enter pureCand and are re-judged against the updated
// occurrence sets at the next fixpoint); open frames whose mark sat above
// the cut are clamped like in dropAllCubes. Pure assignments of variables
// the clause does not mention keep their justification and stay.
func (s *Solver) invalidatePures(lits []qbf.Lit) {
	cut := len(s.trail)
	for _, l := range lits {
		v := l.Var()
		if s.value[v] != undef && s.dlevel[v] == 0 && s.reason[v] == reasonPure {
			if p := s.trailPos[v]; p < cut {
				cut = p
			}
		}
	}
	if cut < len(s.trail) {
		s.unwindTrail(cut)
		for i := range s.frames {
			if s.frames[i].mark > cut {
				s.frames[i].mark = cut
			}
		}
	}
}

// rewakeClauses queues every live clause — base, runtime, learned — for a
// state scan at the next propagation fixpoint (see Pop). Cubes are exempt:
// a consumed solution event cannot go stale, because the matrix-empty check
// is recomputed at every fixpoint and AddClause drops all cubes before the
// matrix can grow.
func (s *Solver) rewakeClauses() {
	for ci := 0; ci < s.ar.end(); ci = s.ar.next(ci) {
		if !s.ar.deleted(ci) && !s.ar.isCube(ci) {
			s.wakeRefs = append(s.wakeRefs, ci)
		}
	}
}

// dropAllCubes deletes every learned cube — the AddClause side of the cube
// lifecycle (see the file comment). Cube-reasoned level-0 trail entries
// would be left citing deleted reasons, so the trail is first unwound to
// the earliest such entry; open frames whose mark sat above the cut are
// clamped down to it, preserving the mark property for their future drops.
func (s *Solver) dropAllCubes() {
	if s.learnedCubes == 0 {
		return
	}
	cut := len(s.trail)
	for i := 0; i < len(s.trail); i++ {
		v := s.trail[i].Var()
		if s.reason[v] == reasonConstraint && s.ar.isCube(s.reasonC[v]) {
			cut = i
			break
		}
	}
	if cut < len(s.trail) {
		s.unwindTrail(cut)
		for i := range s.frames {
			if s.frames[i].mark > cut {
				s.frames[i].mark = cut
			}
		}
	}
	for ci := s.origEnd; ci < s.ar.end(); ci = s.ar.next(ci) {
		if !s.ar.deleted(ci) && s.ar.learned(ci) && s.ar.isCube(ci) {
			s.dropLearned(ci)
		}
	}
}
