package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/qbf"
)

// shareTestQBF builds ∃x1 ∀y2 ∃z3 with a small satisfiable matrix whose
// solution requires actual search, so imports land on a live solver.
func shareTestQBF() *qbf.QBF {
	x, y, z := qbf.Var(1), qbf.Var(2), qbf.Var(3)
	prefix := qbf.NewPrenexPrefix(3,
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{x}},
		qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{y}},
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{z}},
	)
	matrix := []qbf.Clause{
		{x.PosLit(), z.PosLit()},
		{y.PosLit(), z.NegLit(), x.PosLit()},
		{y.NegLit(), z.PosLit()},
	}
	return qbf.New(prefix, matrix)
}

// TestImportSanitization feeds structurally broken constraints through the
// import hook: all must be rejected (counted, not installed) and the solve
// must finish with the correct verdict.
func TestImportSanitization(t *testing.T) {
	q := shareTestQBF()
	want, ok := qbf.EvalWithBudget(q, 1_000_000)
	if !ok {
		t.Fatal("oracle budget exceeded on a 3-variable formula")
	}
	s, err := NewSolver(q, Options{Mode: ModePartialOrder})
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]qbf.Lit{
		nil,                    // empty
		{qbf.NoLit},            // zero literal
		{qbf.Var(99).PosLit()}, // out of range
		{qbf.Var(1).PosLit(), qbf.Var(1).NegLit()}, // duplicate variable
		make([]qbf.Lit, maxImportLen+1),            // over-long (also zero lits)
	}
	fed := false
	s.SetImportHook(func() []Shared {
		if fed {
			return nil
		}
		fed = true
		out := make([]Shared, 0, 2*len(bad))
		for _, lits := range bad {
			out = append(out, Shared{Lits: lits}, Shared{Lits: lits, IsCube: true})
		}
		return out
	})
	r := s.Solve(context.Background())
	if (r == True) != want || r == Unknown {
		t.Fatalf("solve with corrupt imports: got %v, want %v", r, want)
	}
	st := s.Stats()
	if !fed {
		t.Fatal("import hook was never polled")
	}
	if st.Imports != 0 {
		t.Fatalf("%d corrupt imports were installed", st.Imports)
	}
	if st.ImportsRejected != int64(2*len(bad)) {
		t.Fatalf("rejected %d imports, want %d", st.ImportsRejected, 2*len(bad))
	}
}

// TestImportTerminalClause: importing a clause that universal-reduces to an
// all-universal (existential-free) clause must decide the formula False
// immediately — Lemma 4 applied to a consequence of Φ.
func TestImportTerminalClause(t *testing.T) {
	// ∀y ∃z: (y ∨ z)(y ∨ ¬z)(¬y ∨ z)(¬y ∨ ¬z) is false; a sibling that
	// finished conflict analysis would learn the empty-after-reduction
	// clause [y] (universal reduction strips y only at the end; here [y]
	// has no existential literal at all).
	y, z := qbf.Var(1), qbf.Var(2)
	prefix := qbf.NewPrenexPrefix(2,
		qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{y}},
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{z}},
	)
	q := qbf.New(prefix, []qbf.Clause{
		{y.PosLit(), z.PosLit()}, {y.PosLit(), z.NegLit()},
		{y.NegLit(), z.PosLit()}, {y.NegLit(), z.NegLit()},
	})
	s, err := NewSolver(q, Options{Mode: ModePartialOrder})
	if err != nil {
		t.Fatal(err)
	}
	s.SetImportHook(func() []Shared {
		return []Shared{{Lits: []qbf.Lit{y.PosLit()}}}
	})
	if r := s.Solve(context.Background()); r != False {
		t.Fatalf("terminal clause import: got %v, want False", r)
	}
}

// TestImportTerminalCube: importing a cube that existential-reduces to a
// universal-free cube must decide the formula True immediately.
func TestImportTerminalCube(t *testing.T) {
	// ∃x ∀y: (x ∨ y)(x ∨ ¬y) is true via x; the cube [x] has no universal
	// literal, so importing it is a terminal good.
	x, y := qbf.Var(1), qbf.Var(2)
	prefix := qbf.NewPrenexPrefix(2,
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{x}},
		qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{y}},
	)
	q := qbf.New(prefix, []qbf.Clause{
		{x.PosLit(), y.PosLit()}, {x.PosLit(), y.NegLit()},
	})
	s, err := NewSolver(q, Options{Mode: ModePartialOrder})
	if err != nil {
		t.Fatal(err)
	}
	s.SetImportHook(func() []Shared {
		return []Shared{{Lits: []qbf.Lit{x.PosLit()}, IsCube: true}}
	})
	if r := s.Solve(context.Background()); r != True {
		t.Fatalf("terminal cube import: got %v, want True", r)
	}
}

// TestImportBatchWithUnits regresses the install/wake split of
// importShared: a batch where an early import is unit under the current
// (empty) assignment must not corrupt the counter initialization of the
// constraints installed after it. Under -tags qbfdebug the deep checker
// verifies every cached counter; in release builds the verdict check
// still catches gross corruption.
func TestImportBatchWithUnits(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 60; i++ {
		q := qbf.RandomQBF(rng, 10, 12)
		want, ok := qbf.EvalWithBudget(q, 1_000_000)
		if !ok {
			continue
		}
		// Learn real constraints from a pilot solve of the same formula —
		// the only generally sound source of imports.
		var learned []Shared
		pilot, err := NewSolver(q, Options{Mode: ModePartialOrder})
		if err != nil {
			t.Fatal(err)
		}
		pilot.SetLearnHook(func(lits []qbf.Lit, isCube bool) {
			cp := append([]qbf.Lit(nil), lits...)
			learned = append(learned, Shared{Lits: cp, IsCube: isCube})
		})
		pilot.Solve(context.Background())
		if len(learned) == 0 {
			continue
		}
		s, err := NewSolver(q, Options{Mode: ModePartialOrder, CheckInvariants: true})
		if err != nil {
			t.Fatal(err)
		}
		batches := 0
		s.SetImportHook(func() []Shared {
			if batches++; batches > 1 {
				return nil
			}
			return learned // the whole pilot database in one batch
		})
		r := s.Solve(context.Background())
		if r == Unknown || (r == True) != want {
			t.Fatalf("instance %d: got %v with %d imports, oracle says %v", i, r, len(learned), want)
		}
	}
}

// TestSolveContextResume drives a solve in node-budget slices via
// SetNodeLimit and checks the resume contract: progress is monotone, the
// sliced verdict matches the unsliced one, and re-calling after the
// verdict returns it immediately without further work.
func TestSolveContextResume(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	resumedOnce := false
	for i := 0; i < 25; i++ {
		q := denseRandomQBF(rng)
		wantRRes, err := Solve(context.Background(), q, Options{Mode: ModePartialOrder})
		wantR := wantRRes.Verdict
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSolver(q, Options{Mode: ModePartialOrder})
		if err != nil {
			t.Fatal(err)
		}
		var r Verdict
		slices := 0
		for {
			s.SetNodeLimit(s.Stats().Decisions + 2)
			r = s.Solve(context.Background())
			slices++
			if r != Unknown {
				break
			}
			if s.Stats().StopReason != StopNodeLimit {
				t.Fatalf("instance %d: sliced solve stopped with %v", i, s.Stats().StopReason)
			}
			if slices > 100000 {
				t.Fatalf("instance %d: no progress across %d slices", i, slices)
			}
		}
		if slices > 1 {
			resumedOnce = true
		}
		if r != wantR {
			t.Fatalf("instance %d: sliced verdict %v != unsliced %v (in %d slices)", i, r, wantR, slices)
		}
		decisions := s.Stats().Decisions
		if again := s.Solve(context.Background()); again != r {
			t.Fatalf("instance %d: post-verdict re-solve returned %v, want %v", i, again, r)
		}
		if s.Stats().Decisions != decisions {
			t.Fatalf("instance %d: post-verdict re-solve did %d more decisions",
				i, s.Stats().Decisions-decisions)
		}
	}
	if !resumedOnce {
		t.Fatal("no instance ever needed more than one 2-decision slice — resume untested")
	}
}

// denseRandomQBF builds a ∃∀∃ model-A-style instance dense enough that
// propagation and pure literals alone cannot decide it — the sliced-resume
// test needs searches spanning many 2-decision slices.
func denseRandomQBF(rng *rand.Rand) *qbf.QBF {
	const bs = 10
	runs := make([]qbf.Run, 3)
	var ex, un []qbf.Var
	v := qbf.MinVar
	for b := 0; b < 3; b++ {
		quant := qbf.Exists
		if b == 1 {
			quant = qbf.Forall
		}
		vars := make([]qbf.Var, bs)
		for j := range vars {
			vars[j] = v
			if quant == qbf.Exists {
				ex = append(ex, v)
			} else {
				un = append(un, v)
			}
			v++
		}
		runs[b] = qbf.Run{Quant: quant, Vars: vars}
	}
	prefix := qbf.NewPrenexPrefix(int(v)-1, runs...)
	var matrix []qbf.Clause
	for len(matrix) < 6*3*bs {
		seen := map[qbf.Var]bool{}
		var c qbf.Clause
		add := func(pool []qbf.Var) {
			vv := pool[rng.Intn(len(pool))]
			if seen[vv] {
				return
			}
			seen[vv] = true
			l := vv.PosLit()
			if rng.Intn(2) == 0 {
				l = vv.NegLit()
			}
			c = append(c, l)
		}
		if rng.Intn(2) == 0 {
			add(un)
		}
		for len(c) < 5 {
			add(ex)
		}
		cc, taut := c.Normalize()
		if !taut {
			matrix = append(matrix, cc)
		}
	}
	return qbf.New(prefix, matrix)
}
