//go:build qbfdebug

package core

import (
	"repro/internal/invariant"
	"repro/internal/qbf"
)

// importOracleMaxVars bounds the instance size for which imported
// constraints are semantically re-derived: beyond it the exponential
// oracle is hopeless and the structural checks stand alone.
const importOracleMaxVars = 18

// importOracleBudget caps the oracle's work per import check.
const importOracleBudget = 4_000_000

// attachImportOracle retains the solver's working formula (the normalized,
// free-var-bound clone NewSolver built) so that imported constraints can be
// re-derived semantically. Compiled only under -tags qbfdebug and active
// only with Options.CheckInvariants.
func (s *Solver) attachImportOracle(work *qbf.QBF) {
	if s.opt.CheckInvariants {
		s.dbgFormula = work
	}
}

// checkImportedConstraint re-derives the soundness of an imported
// constraint on the semantic oracle: a clause C is sound iff Φ ∧ C ≡ Φ, a
// cube c iff Φ ∨ c ≡ Φ (its defining "good" property). The disjunction is
// put in CNF by distribution — Φ ∨ (l₁∧…∧lₖ) = ∧_cl ∧_i (cl ∨ lᵢ) — which
// is affordable exactly on the small instances the oracle can evaluate.
// Violations panic via invariant.Violated, exactly like the deep checker's
// own invariants.
func (s *Solver) checkImportedConstraint(lits []qbf.Lit, isCube bool) {
	if !s.opt.CheckInvariants || s.dbgFormula == nil || s.nVars > importOracleMaxVars {
		return
	}
	base := s.dbgFormula
	want, ok := qbf.EvalWithBudget(base, importOracleBudget)
	if !ok {
		return
	}
	var matrix []qbf.Clause
	if isCube {
		for _, cl := range base.Matrix {
			for _, l := range lits {
				if cl.Has(l) {
					matrix = append(matrix, cl.Clone())
					continue
				}
				ext := append(cl.Clone(), l)
				matrix = append(matrix, ext)
			}
		}
	} else {
		for _, cl := range base.Matrix {
			matrix = append(matrix, cl.Clone())
		}
		matrix = append(matrix, qbf.Clause(lits).Clone())
	}
	mod := qbf.New(base.Prefix.Clone(), matrix)
	got, ok := qbf.EvalWithBudget(mod, importOracleBudget)
	if !ok {
		return
	}
	invariant.Check(got == want,
		"core: imported %s %v is not a consequence: formula evaluates %v, with it %v",
		map[bool]string{true: "cube", false: "clause"}[isCube], lits, want, got)
}
