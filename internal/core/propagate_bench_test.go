package core

import (
	"context"
	"testing"

	"repro/internal/qbf"
)

// BenchmarkPropagate isolates the propagation fixpoint loop, away from
// learning and analysis: each iteration makes one decision on a fresh
// level of a pigeonhole instance, runs propagateAll to its fixpoint (a
// cascade of unit assignments and watcher maintenance over hundreds of
// clauses), and backtracks to the root. Run with -benchmem: the
// //qbf:hotpath annotations on the watch-walk functions promise a
// heap-clean inner loop, which the lint L13 gate verifies statically and
// this benchmark confirms dynamically.
func BenchmarkPropagate(b *testing.B) {
	q := phpFormula(10)
	s, err := NewSolver(q, Options{
		DisableClauseLearning: true,
		DisableCubeLearning:   true,
		DisablePureLiterals:   true,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Decide pigeon p into hole p (the diagonal): no two decisions clash
	// directly, and every one fires ~10 exclusivity units, each of which
	// shrinks further rows — a deep cascade per decision. Conflicts, if the
	// cascade reaches one, just end the round early.
	var decisions []qbf.Lit
	for v := qbf.Var(1); v.Int() <= s.nVars && len(decisions) < 8; v += 11 {
		decisions = append(decisions, v.PosLit())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range decisions {
			if s.value[d.Var()] != undef {
				continue
			}
			s.decide(d)
			if ev, _ := s.propagateAll(); ev == evConflict {
				break
			}
		}
		s.backtrack(0)
	}
}

// BenchmarkSolve runs the full search end-to-end on a small
// propagation-bound smoke pool; scripts/check.sh records its ns/op in
// results/BENCH_propagate.json as the one-shot baseline history.
func BenchmarkSolve(b *testing.B) {
	pool := []*qbf.QBF{phpFormula(6), phpFormula(7)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, q := range pool {
			res, err := Solve(context.Background(), q, Options{Mode: ModePartialOrder})
			if err != nil || res.Verdict != False {
				b.Fatalf("verdict=%v err=%v", res.Verdict, err)
			}
		}
	}
}
