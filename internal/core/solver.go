package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/invariant"
	"repro/internal/qbf"
	"repro/internal/telemetry"
)

// value of a variable on the trail.
const (
	undef int8 = iota
	vTrue
	vFalse
)

// reasonKind says why a variable was assigned.
type reasonKind int8

const (
	reasonNone       reasonKind = iota
	reasonDecision              // heuristic branch (opens a decision level)
	reasonFlipped               // second branch of a decision (opens a level)
	reasonConstraint            // unit propagation from a clause or cube
	reasonPure                  // pure (monotone) literal fixing
)

// Constraints (clauses and cubes) live in the arena clause store (see
// arena.go): one flat []uint32 region, integer refs, watched-literal or
// counter state in the header words.

// blockInfo caches per-block structure derived from the prefix.
type blockInfo struct {
	quant      qbf.Quant
	level      int
	vars       []qbf.Var
	children   []int // child blocks in the quantifier tree
	guards     []int // blocks whose variables all ≺ ours (alternation-separated ancestors)
	dependents []int // inverse of guards
	unassigned int   // unassigned variables in this block
	guardOpen  int   // number of guards with unassigned > 0
}

// Solver is a QCDCL engine over a (possibly non-prenex) QBF.
type Solver struct {
	opt Options

	nVars   int
	quant   []qbf.Quant // 1-based
	sd      []int       // structural DFS interval of the variable's block
	sf      []int
	plevel  []int // prefix level
	blockOf []int // block index per variable; -1 for ghost variables
	blocks  []blockInfo

	// eReducible marks existential variables whose block has no universal
	// block below it in the quantifier tree: existential reduction always
	// deletes such literals from cubes, so cover construction skips them.
	eReducible []bool

	// ar holds every constraint: originals first (their refs are stable,
	// the region [0, origEnd) never moves), then learned, compacted in
	// place as reduction rounds delete them.
	ar               arena
	origEnd          int // arena offset one past the last original clause
	nOriginalClauses int
	learnedClauses   int
	learnedCubes     int

	// occ: literal index → refs of the original clauses containing that
	// literal (the residual-matrix walk); learned constraints are reached
	// through the watcher lists instead. Under Options.Incremental,
	// clauses added at runtime join these lists on AddClause and are
	// eagerly removed again when their frame pops — satWalk/undoSat do not
	// test the deleted flag.
	occ [][]int32

	// Watcher lists, keyed by the literal whose assignment triggers the
	// visit; see watch.go.
	watchCl [][]watcher
	watchCu [][]watcher

	// activeOcc counts, per literal, the original clauses that currently
	// have no true literal and contain the literal: the paper's dynamic
	// matrix occurrence used by pure literal fixing.
	activeOcc []int

	// numUnsatOriginal is the number of original clauses with no true
	// literal; 0 means the matrix is empty (Section II base case: true).
	numUnsatOriginal int

	value    []int8
	dlevel   []int
	reason   []reasonKind
	reasonC  []int
	trailPos []int

	trail      []qbf.Lit
	qhead      int
	level      int
	levelStart []int // levelStart[k] = trail index where level k starts

	pureCand []qbf.Var

	// Heuristic state (see heuristic.go).
	counter     []int // per literal: occurrences in active constraints
	lastCounter []int
	score       []float64
	blockBonus  []float64
	scoreTicks  int
	scoreInc    float64

	// Restart state (Luby sequence).
	restartEvents int64 // conflicts+solutions since the last restart
	restartLimit  int64
	lubyIndex     int

	stats      Stats
	trivial    Verdict // True/False decided during construction, else Unknown
	lastResult Verdict // outcome of the most recent Solve call

	// Incremental session state (Options.Incremental; see incremental.go).
	// frames is the stack of open assumption frames; falseFrom is the
	// shallowest frame depth at which an added clause universally reduced
	// to a contradiction (-1: none), making the formula false while that
	// frame lives; wakeRefs holds runtime-added clauses whose state against
	// the current assignment has not been scanned yet — the next
	// propagateAll drains them before trusting the watcher tables.
	// runtimeOrig lists the live runtime-added original clauses (which sit
	// above origEnd, interleaved with learned constraints), so matrix-wide
	// walks like coverCube reach them without scanning the learned region.
	// opDirty is set by session operations and consumed by the next Solve,
	// which restarts the Luby schedule: the new query should explore from
	// short restart intervals again instead of inheriting an arbitrarily
	// long interval earned on a different formula.
	frames      []frame
	falseFrom   int
	wakeRefs    []int
	runtimeOrig []int
	opDirty     bool

	ws workSet // reusable analysis working set

	dbgCube [5]int64

	// dbgPrefix retains the finalized input prefix for the deep invariant
	// checker; nil unless built with -tags qbfdebug and CheckInvariants on.
	dbgPrefix *qbf.Prefix

	deadline          time.Time
	cancelCh          <-chan struct{} // context Done channel; nil when uncancellable
	learnedBytes      int64           // estimated bytes held by live learned constraints
	trace             func(string)
	learnHook         func(lits []qbf.Lit, isCube bool)
	debugSolutionHook func(assignedU, totalU int)

	// importHook, when non-nil, is polled at quiescent propagation
	// fixpoints for constraints learned by sibling solvers (see share.go);
	// importing suppresses the learnHook while an import is installed, so
	// exchanged constraints are never echoed back to the exchange.
	importHook func() []Shared
	importing  bool

	// dbgFormula retains the normalized working formula for the qbfdebug
	// import oracle; nil unless built with -tags qbfdebug and
	// CheckInvariants on (share_qbfdebug.go).
	dbgFormula *qbf.QBF

	// faultHook, when non-nil, fires at every propagation fixpoint with
	// the fixpoint ordinal; the qbfdebug fault-injection harness uses it
	// to force panics and cancellations at deterministic points. The
	// setter only compiles under -tags qbfdebug (fault_qbfdebug.go).
	faultHook func(fixpoint int64)
}

// litIdx maps a literal to a dense index: positive 2v, negative 2v+1.
func litIdx(l qbf.Lit) int {
	v := int(l.Var())
	if l > 0 {
		return 2 * v
	}
	return 2*v + 1
}

// NewSolver prepares a solver for q. The input is deep-copied: free
// variables are bound existentially, the matrix is normalized (tautologies
// dropped) and universally reduced (Lemma 3). In ModeTotalOrder the input
// prefix must be prenex, as for any classic prenex solver.
func NewSolver(q *qbf.QBF, opt Options) (*Solver, error) {
	work := q.Clone()
	// Normalize first (duplicate literals and tautologies are benign and
	// common in DIMACS files), then validate what normalization cannot
	// repair, then bind the remaining free variables.
	work.NormalizeMatrix()
	if err := work.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid input: %w", err)
	}
	work.BindFreeVars()
	work.Prefix.Finalize()
	if _, err := work.ScopeConsistent(); err != nil {
		return nil, fmt.Errorf("core: input not scope-consistent: %w", err)
	}
	if opt.Mode == ModeTotalOrder && !work.Prefix.IsPrenex() {
		return nil, fmt.Errorf("core: total-order mode requires a prenex QBF; prenex the input first")
	}
	if opt.MaxLearned == 0 {
		opt.MaxLearned = 4000
	}

	n := work.MaxVar()
	s := &Solver{
		opt:         opt,
		nVars:       n,
		quant:       make([]qbf.Quant, n+1),
		sd:          make([]int, n+1),
		sf:          make([]int, n+1),
		plevel:      make([]int, n+1),
		blockOf:     make([]int, n+1),
		occ:         make([][]int32, 2*(n+1)),
		activeOcc:   make([]int, 2*(n+1)),
		value:       make([]int8, n+1),
		dlevel:      make([]int, n+1),
		reason:      make([]reasonKind, n+1),
		reasonC:     make([]int, n+1),
		trailPos:    make([]int, n+1),
		counter:     make([]int, 2*(n+1)),
		lastCounter: make([]int, 2*(n+1)),
		score:       make([]float64, 2*(n+1)),
		trivial:     Unknown,
		falseFrom:   -1,
	}
	s.watchCl = make([][]watcher, 2*(n+1))
	s.watchCu = make([][]watcher, 2*(n+1))

	// Variables within 1..n that are bound by no block and occur in no
	// clause ("ghosts", e.g. quantifiers dropped by miniscoping) take no
	// part in solving: blockOf stays -1 and they are never assigned.
	for v := range s.blockOf {
		s.blockOf[v] = -1
	}

	p := work.Prefix
	pblocks := p.Blocks()
	s.blocks = make([]blockInfo, len(pblocks))
	s.blockBonus = make([]float64, len(pblocks))
	for i, b := range pblocks {
		bi := blockInfo{
			quant:      b.Quant,
			level:      b.Level(),
			vars:       append([]qbf.Var(nil), b.Vars...),
			unassigned: len(b.Vars),
		}
		for _, c := range b.Children {
			bi.children = append(bi.children, c.ID())
		}
		// Guards: ancestor blocks separated by at least one alternation,
		// i.e. whose variables all ≺ ours. Along a root path the prefix
		// level grows exactly at alternations, so "separated by an
		// alternation" is "has a strictly smaller level".
		for a := b.Parent(); a != nil; a = a.Parent() {
			if a.Level() < b.Level() {
				bi.guards = append(bi.guards, a.ID())
			}
		}
		s.blocks[i] = bi
		bsd, bsf := b.Interval()
		for _, v := range b.Vars {
			s.quant[v] = b.Quant
			s.sd[v] = bsd
			s.sf[v] = bsf
			s.plevel[v] = p.Level(v)
			s.blockOf[v] = i
		}
	}
	for i := range s.blocks {
		for _, g := range s.blocks[i].guards {
			s.blocks[g].dependents = append(s.blocks[g].dependents, i)
			if s.blocks[g].unassigned > 0 {
				s.blocks[i].guardOpen++
			}
		}
	}

	// eReducible: existential variables with no universal block below.
	s.eReducible = make([]bool, n+1)
	hasUniversalBelow := make([]bool, len(s.blocks))
	for i := len(s.blocks) - 1; i >= 0; i-- { // post-order over DFS preorder
		hub := s.blocks[i].quant == qbf.Forall
		for _, c := range s.blocks[i].children {
			if hasUniversalBelow[c] {
				hub = true
			}
		}
		hasUniversalBelow[i] = hub
	}
	for v := qbf.MinVar; v.Int() <= n; v++ {
		b := s.blockOf[v]
		s.eReducible[v] = b >= 0 && s.quant[v] == qbf.Exists && !hasUniversalBelow[b]
	}

	// Deep invariant layer (no-op unless built with -tags qbfdebug and
	// opt.CheckInvariants is set): validate the finalized prefix and pin
	// the solver's O(1) ≺ test to the structural Prefix.Before. The import
	// oracle additionally retains the working formula so constraints
	// arriving through SetImportHook can be re-derived semantically.
	s.attachInvariantPrefix(p)
	s.attachImportOracle(work)

	// Install the (universally reduced) original clauses.
	s.levelStart = append(s.levelStart, 0)
	for _, c := range work.Matrix {
		rc := qbf.UniversalReduce(p, c)
		hasE := false
		for _, l := range rc {
			if s.quant[l.Var()] == qbf.Exists {
				hasE = true
				break
			}
		}
		if len(rc) == 0 || !hasE {
			// Contradictory clause (Lemma 4, or the empty clause of
			// Lemma 3). Incremental solvers record it as a base-frame
			// falsity and finish construction: Pop can never reach below
			// the base, so the verdict is permanent, but the solver must
			// stay fully initialized for the session ops. One-shot solvers
			// keep the historical short-circuit.
			if opt.Incremental {
				s.falseFrom = 0
				continue
			}
			s.trivial = False
			return s, nil
		}
		s.addOriginalClause(rc)
	}
	s.origEnd = s.ar.end()
	s.numUnsatOriginal = s.nOriginalClauses
	if s.numUnsatOriginal == 0 && !opt.Incremental {
		// Empty matrix: trivially true. Incremental solvers skip the
		// shortcut — AddClause may repopulate the matrix — and let the
		// search derive the empty-matrix solution (Section II base case).
		s.trivial = True
		return s, nil
	}

	// Initial heuristic scores: the occurrence counters (Section VI).
	s.initScores()
	s.lubyIndex = 1
	s.restartLimit = luby(1) * restartUnit

	// All bound variables start as pure-literal candidates; fixPures
	// verifies. Ghost variables never enter the queue.
	for v := qbf.MinVar; v.Int() <= n; v++ {
		if s.blockOf[v] >= 0 {
			s.pureCand = append(s.pureCand, v)
		}
	}
	s.deepCheck()
	return s, nil
}

// SetTrace installs a debug trace callback (nil to disable).
func (s *Solver) SetTrace(f func(string)) { s.trace = f }

// SetLearnHook installs a callback invoked with every learned constraint
// (clause or cube) as it is added. Test suites use it to audit the
// soundness of the learning machinery against the semantic oracle.
func (s *Solver) SetLearnHook(f func(lits []qbf.Lit, isCube bool)) { s.learnHook = f }

// Stats returns search statistics accumulated so far.
func (s *Solver) Stats() Stats { return s.stats }

func (s *Solver) addOriginalClause(c qbf.Clause) int {
	id := s.ar.alloc(c, false, false)
	s.nOriginalClauses++
	for _, l := range c {
		s.occ[litIdx(l)] = append(s.occ[litIdx(l)], int32(id))
		s.activeOcc[litIdx(l)]++
		s.counter[litIdx(l)]++
	}
	s.initWatches(id)
	return id
}

// Solve runs the search under ctx: cancellation and the context
// deadline are polled at every propagation fixpoint (time checks gated to
// every pollPeriod-th fixpoint so time.Now stays off the per-propagation
// path). An expired or cancelled ctx yields Unknown with StopCancelled or
// StopTimeout in Stats; a nil ctx is treated as context.Background().
//
// Solve is resumable: after an Unknown return the solver's state is
// exactly the quiescent fixpoint the stop was observed at, and calling
// Solve again continues the same search (typically after raising a
// budget with SetNodeLimit, or with a fresh context). After a True/False
// verdict the search is over and every further call returns the verdict
// immediately.
func (s *Solver) Solve(ctx context.Context) Verdict {
	if s.lastResult != Unknown {
		return s.lastResult
	}
	start := time.Now()
	defer func() { s.stats.Time += time.Since(start) }()
	s.stats.StopReason = StopNone
	s.deadline = time.Time{}
	s.cancelCh = nil
	if s.opt.TimeLimit > 0 {
		s.deadline = start.Add(s.opt.TimeLimit)
	}
	if ctx != nil {
		if ctx.Err() != nil {
			s.stats.StopReason = StopCancelled
			s.lastResult = Unknown
			s.emitEv(telemetry.KindStop, 0, int64(Unknown), int64(StopCancelled))
			return Unknown
		}
		s.cancelCh = ctx.Done()
		if d, ok := ctx.Deadline(); ok && (s.deadline.IsZero() || d.Before(s.deadline)) {
			s.deadline = d
		}
	}
	if s.opDirty {
		s.opDirty = false
		s.restartEvents = 0
		s.lubyIndex = 1
		s.restartLimit = luby(1) * restartUnit
		s.initScores()
	}
	s.lastResult = s.solve()
	s.emitEv(telemetry.KindStop, 0, int64(s.lastResult), int64(s.stats.StopReason))
	return s.lastResult
}

// pollPeriod gates the time.Now/channel checks of pollStop: budgets are
// examined every pollPeriod-th propagation fixpoint, so a run dominated by
// propagation and backtracking (zero decisions) still honors its limits,
// while the per-fixpoint cost stays one counter increment and one integer
// compare.
const pollPeriod = 64

// pollStop is the per-fixpoint budget check. The memory budget is an
// integer compare and runs on every call; cancellation and deadline
// involve a channel operation and a clock read and are gated to every
// pollPeriod-th fixpoint.
func (s *Solver) pollStop() StopReason {
	if sr := s.governMemory(); sr != StopNone {
		return sr
	}
	if s.stats.Fixpoints%pollPeriod != 0 {
		return StopNone
	}
	if !s.deadline.IsZero() && time.Now().After(s.deadline) {
		return StopTimeout
	}
	if s.cancelCh != nil {
		select {
		case <-s.cancelCh:
			return StopCancelled
		default:
		}
	}
	return StopNone
}

func (s *Solver) solve() Verdict {
	if s.trivial != Unknown {
		return s.trivial
	}
	if s.lastResult != Unknown {
		// The formula is already decided and unchanged since (session ops
		// reset the verdicts they can invalidate). Re-entering the search
		// loop here would be worse than wasteful: a terminal root conflict
		// leaves its falsified clause's triggers consumed on the level-0
		// trail, and a resumed search cannot re-detect it.
		return s.lastResult
	}
	if s.falseFrom >= 0 {
		// A clause added at frame depth falseFrom universally reduced to a
		// contradiction; the formula is false while that frame lives (Pop
		// clears the record, ops reset lastResult).
		return False
	}

	for {
		ev, ci := s.propagateAll()
		s.stats.Fixpoints++
		s.emitEv(telemetry.KindFixpoint, 0, int64(len(s.trail)), s.stats.Fixpoints)
		s.injectFault(s.stats.Fixpoints)
		if ev == evNone && s.importHook != nil {
			// Quiescent fixpoint: install constraints shared by sibling
			// solvers. An import that is terminal for the whole formula
			// decides it right here; one that is conflicting or fired under
			// the current assignment becomes this fixpoint's event and is
			// handled below exactly like a propagation event; a merely unit
			// import enqueues its forced literal, which the trail-drain
			// check after the budget poll sends back to propagateAll.
			var terminal Verdict
			ev, ci, terminal = s.importShared()
			if terminal != Unknown {
				return terminal
			}
		}
		// The fixpoint's event is fully handled before any budget check,
		// for two reasons. Soundness: the memory governor must never run
		// while ci is pending — a conflicting/fired learned constraint is
		// not a trail reason, so reduceDBNow could delete it and null its
		// literals, and conflict/solution analysis over an emptied working
		// set reads as a terminal verdict, i.e. a wrong False/True.
		// Completeness: a terminal verdict already in hand must be
		// returned, not discarded as Unknown by a limit stop that fires at
		// the same fixpoint.
		switch ev {
		case evConflict:
			s.stats.Conflicts++
			s.emitConstraintEv(telemetry.KindConflict, ci)
			if !s.handleConflict(ci) {
				return False
			}
		case evSolution:
			s.stats.Solutions++
			s.emitConstraintEv(telemetry.KindSolution, ci)
			if s.debugSolutionHook != nil {
				s.debugSolutionHook(s.debugCountUniversals())
			}
			if !s.handleSolution(ci) {
				return True
			}
		}
		// Safe point: analysis is done, and any constraint the next
		// iteration depends on is a trail reason, which the governor's
		// reduction rounds keep locked.
		if sr := s.pollStop(); sr != StopNone {
			s.stats.StopReason = sr
			return Unknown
		}
		if ev != evNone {
			continue
		}
		if s.qhead < len(s.trail) {
			// An imported constraint assigned a unit literal after the
			// propagation fixpoint; drain it before branching.
			continue
		}
		s.deepCheck()
		if s.fixPures() {
			continue
		}
		lit, ok := s.pickBranch()
		if !ok {
			// Unreachable by construction: if any variable is
			// unassigned, a minimal-level block with unassigned
			// variables is always branchable, and a total assignment
			// without a conflict means every original clause is
			// satisfied, which propagateAll reports as a solution.
			invariant.Violated("core: no branchable variable at a propagation fixpoint")
		}
		s.stats.Decisions++
		if s.opt.NodeLimit > 0 && s.stats.Decisions > s.opt.NodeLimit {
			s.stats.StopReason = StopNodeLimit
			return Unknown
		}
		s.decide(lit)
	}
}

// decide opens a new decision level with literal l.
func (s *Solver) decide(l qbf.Lit) {
	s.level++
	if s.level > s.stats.MaxDecisionLevel {
		s.stats.MaxDecisionLevel = s.level
	}
	s.levelStart = append(s.levelStart, len(s.trail))
	s.assign(l, reasonDecision, -1)
	s.emitEv(telemetry.KindDecision, s.plevel[l.Var()], int64(l), s.stats.Decisions)
	if s.trace != nil {
		s.trace(fmt.Sprintf("decide %d @%d", l, s.level)) //lint:allow L4 trace is nil on the hot path
	}
}

// assign makes l true at the current decision level. It only records the
// assignment; constraint counters are updated when the literal is dequeued
// by propagateAll.
func (s *Solver) assign(l qbf.Lit, why reasonKind, reasonCon int) {
	v := l.Var()
	if s.value[v] != undef {
		invariant.Violated("core: double assignment of variable %d", v)
	}
	if l > 0 {
		s.value[v] = vTrue
	} else {
		s.value[v] = vFalse
	}
	s.dlevel[v] = s.level
	s.reason[v] = why
	s.reasonC[v] = reasonCon
	s.trailPos[v] = len(s.trail)
	s.trail = append(s.trail, l)

	b := s.blockOf[v]
	s.blocks[b].unassigned--
	if s.blocks[b].unassigned == 0 {
		for _, dep := range s.blocks[b].dependents {
			s.blocks[dep].guardOpen--
		}
	}
}

// litValue returns the current value of literal l.
func (s *Solver) litValue(l qbf.Lit) int8 {
	v := s.value[l.Var()]
	if v == undef {
		return undef
	}
	if (v == vTrue) == (l > 0) {
		return vTrue
	}
	return vFalse
}

// before is the O(1) ≺ test: z's block is a structural ancestor of z”s
// with a strictly smaller prefix level. On alternating trees this is
// exactly the parenthesis-theorem test of Section VI, eq. 13.
func (s *Solver) before(z, zp qbf.Var) bool {
	return s.sd[z] <= s.sd[zp] && s.sf[zp] <= s.sf[z] && s.plevel[z] < s.plevel[zp]
}

// backtrack undoes all assignments above decision level target.
func (s *Solver) backtrack(target int) {
	if target >= s.level {
		return
	}
	s.unwindTrail(s.levelStart[target+1])
	s.levelStart = s.levelStart[:target+1]
	s.level = target
}

// unwindTrail pops trail entries down to (exclusive) position end, undoing
// every per-literal effect: the residual-matrix counters of dequeued
// literals, pure-candidate requeueing, and the block bookkeeping. It is the
// shared inner loop of backtrack and of the incremental frame operations,
// which unwind within level 0 (incremental.go).
func (s *Solver) unwindTrail(end int) {
	for i := len(s.trail) - 1; i >= end; i-- {
		l := s.trail[i]
		v := l.Var()
		if i < s.qhead {
			s.undoSat(l)
		}
		if s.reason[v] == reasonPure {
			// The variable may still be pure at the outer level;
			// re-candidate it so fixPures reconsiders it.
			s.pureCand = append(s.pureCand, v)
		}
		s.value[v] = undef
		s.reason[v] = reasonNone
		s.reasonC[v] = -1
		b := s.blockOf[v]
		if s.blocks[b].unassigned == 0 {
			for _, dep := range s.blocks[b].dependents {
				s.blocks[dep].guardOpen++
			}
		}
		s.blocks[b].unassigned++
	}
	s.trail = s.trail[:end]
	if s.qhead > end {
		s.qhead = end
	}
}
