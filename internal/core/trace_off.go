//go:build qbfnotrace

package core

import (
	"repro/internal/qbf"
	"repro/internal/telemetry"
)

// qbfnotrace strips the telemetry emit helpers to empty bodies the
// compiler erases, giving scripts/check.sh a no-hook baseline to measure
// the nil-check cost of the default build against. Options.Telemetry is
// ignored under this tag.

const telemetryCompiled = false

func (s *Solver) emitEv(telemetry.Kind, int, int64, int64) {}

func (s *Solver) emitConstraintEv(telemetry.Kind, int) {}

func (s *Solver) emitLitsEv(telemetry.Kind, []qbf.Lit, int64) {}
