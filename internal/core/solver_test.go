package core

import (
	"context"
	"testing"

	"repro/internal/qbf"
)

func mkClause(lits ...int) qbf.Clause {
	c := make(qbf.Clause, len(lits))
	for i, l := range lits {
		c[i] = qbf.Lit(l)
	}
	return c
}

func allOptionCombos(mode Mode) []Options {
	var out []Options
	for _, noCl := range []bool{false, true} {
		for _, noCu := range []bool{false, true} {
			for _, noPure := range []bool{false, true} {
				out = append(out, Options{
					Mode:                  mode,
					DisableClauseLearning: noCl,
					DisableCubeLearning:   noCu,
					DisablePureLiterals:   noPure,
					// Active only under -tags qbfdebug; a no-op otherwise.
					CheckInvariants: true,
				})
			}
		}
	}
	return out
}

func solveAllCombos(t *testing.T, q *qbf.QBF, want bool, label string) {
	t.Helper()
	modes := []Mode{ModePartialOrder}
	if q.Prefix.IsPrenex() {
		modes = append(modes, ModeTotalOrder)
	}
	for _, mode := range modes {
		for _, opt := range allOptionCombos(mode) {
			rRes, err := Solve(context.Background(), q, opt)
			r := rRes.Verdict
			if err != nil {
				t.Fatalf("%s (%+v): %v", label, opt, err)
			}
			wantR := False
			if want {
				wantR = True
			}
			if r != wantR {
				t.Errorf("%s: mode=%v learnC=%v learnQ=%v pure=%v: got %v, want %v",
					label, mode, !opt.DisableClauseLearning,
					!opt.DisableCubeLearning, !opt.DisablePureLiterals, r, wantR)
			}
		}
	}
}

func TestSolveHandPicked(t *testing.T) {
	// ∀y ∃x: x ≡ ¬y — true.
	p1 := qbf.NewPrenexPrefix(2,
		qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{1}},
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{2}})
	solveAllCombos(t, qbf.New(p1, []qbf.Clause{mkClause(1, 2), mkClause(-1, -2)}), true, "forall-exists-xor")

	// ∃x ∀y: x ≡ ¬y — false.
	p2 := qbf.NewPrenexPrefix(2,
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{2}},
		qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{1}})
	solveAllCombos(t, qbf.New(p2, []qbf.Clause{mkClause(1, 2), mkClause(-1, -2)}), false, "exists-forall-xor")

	// Plain SAT: (1∨2)(¬1∨3)(¬2∨¬3)(2∨3) — satisfiable.
	p3 := qbf.NewPrenexPrefix(3, qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{1, 2, 3}})
	solveAllCombos(t, qbf.New(p3, []qbf.Clause{
		mkClause(1, 2), mkClause(-1, 3), mkClause(-2, -3), mkClause(2, 3)}), true, "sat")

	// Plain UNSAT: all four binary clauses over 2 vars.
	p4 := qbf.NewPrenexPrefix(2, qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{1, 2}})
	solveAllCombos(t, qbf.New(p4, []qbf.Clause{
		mkClause(1, 2), mkClause(1, -2), mkClause(-1, 2), mkClause(-1, -2)}), false, "unsat")

	// Empty matrix — true.
	p5 := qbf.NewPrenexPrefix(1, qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{1}})
	solveAllCombos(t, qbf.New(p5, nil), true, "empty-matrix")

	// Contradictory clause {y} — false by Lemma 4.
	p6 := qbf.NewPrenexPrefix(1, qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{1}})
	solveAllCombos(t, qbf.New(p6, []qbf.Clause{mkClause(1)}), false, "contradictory")

	// ∀y1 ∃x2 ∀y3 ∃x4: (y1≡x2) ∧ (y3≡x4) — true.
	p7 := qbf.NewPrenexPrefix(4,
		qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{1}},
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{2}},
		qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{3}},
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{4}})
	solveAllCombos(t, qbf.New(p7, []qbf.Clause{
		mkClause(1, -2), mkClause(-1, 2), mkClause(3, -4), mkClause(-3, 4)}), true, "two-alternations")

	// Same matrix with the inner pair hoisted: ∀y1 ∀y3 ∃x2 ∃x4 — still true.
	p8 := qbf.NewPrenexPrefix(4,
		qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{1, 3}},
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{2, 4}})
	solveAllCombos(t, qbf.New(p8, []qbf.Clause{
		mkClause(1, -2), mkClause(-1, 2), mkClause(3, -4), mkClause(-3, 4)}), true, "hoisted")

	// ∃x2 ∃x4 ∀y1 ∀y3 over the same matrix — false.
	p9 := qbf.NewPrenexPrefix(4,
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{2, 4}},
		qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{1, 3}})
	solveAllCombos(t, qbf.New(p9, []qbf.Clause{
		mkClause(1, -2), mkClause(-1, 2), mkClause(3, -4), mkClause(-3, 4)}), false, "anti-hoisted")
}

func TestSolveNonPrenexHandPicked(t *testing.T) {
	// ∃x1 (∀y2 ∃x3 (x3≡y2) ∧ ∀y4 ∃x5 (x5≡y4)) — true; the non-prenex tree
	// keeps y2/x5 and y4/x3 incomparable.
	p := qbf.NewPrefix(5)
	r := p.AddBlock(nil, qbf.Exists, 1)
	b2 := p.AddBlock(r, qbf.Forall, 2)
	p.AddBlock(b2, qbf.Exists, 3)
	b4 := p.AddBlock(r, qbf.Forall, 4)
	p.AddBlock(b4, qbf.Exists, 5)
	q := qbf.New(p, []qbf.Clause{
		mkClause(1), // keep x1 relevant
		mkClause(2, -3), mkClause(-2, 3),
		mkClause(4, -5), mkClause(-4, 5),
	})
	solveAllCombos(t, q, true, "tree-two-games")

	// Make one subtree impossible: ∃x1 (∀y2 ∃x3 (x3 ≡ y2 ∧ x3 ≡ ¬y2) ∧ …).
	q2 := qbf.New(p.Clone(), []qbf.Clause{
		mkClause(1),
		mkClause(2, -3), mkClause(-2, 3),
		mkClause(2, 3), mkClause(-2, -3),
		mkClause(4, -5), mkClause(-4, 5),
	})
	solveAllCombos(t, q2, false, "tree-one-impossible")

	// Sibling roots: (∃x1 x1) ∧ (∀y2 (y2 ∨ ¬y2 is taut — use two clauses))
	p3 := qbf.NewPrefix(2)
	p3.AddBlock(nil, qbf.Exists, 1)
	p3.AddBlock(nil, qbf.Forall, 2)
	q3 := qbf.New(p3, []qbf.Clause{mkClause(1), mkClause(2)})
	solveAllCombos(t, q3, false, "sibling-roots-false")
}

func TestTotalOrderRequiresPrenex(t *testing.T) {
	// ∃1 (∀2 ∃4 … ; ∀3 …): x4 and y3 are an incomparable ∃/∀ pair, so the
	// prefix is genuinely non-prenex. (A tree like ∃1(∀2 ; ∀3) would still
	// be prenex by the paper's definition: only ∃/∀ pairs must compare.)
	p := qbf.NewPrefix(4)
	r := p.AddBlock(nil, qbf.Exists, 1)
	b2 := p.AddBlock(r, qbf.Forall, 2)
	p.AddBlock(b2, qbf.Exists, 4)
	p.AddBlock(r, qbf.Forall, 3)
	q := qbf.New(p, []qbf.Clause{mkClause(1, 2, 4), mkClause(1, 3)})
	if _, err := NewSolver(q, Options{Mode: ModeTotalOrder}); err == nil {
		t.Fatal("total-order mode must reject non-prenex input")
	}
	if _, err := NewSolver(q, Options{Mode: ModePartialOrder}); err != nil {
		t.Fatalf("partial-order mode must accept trees: %v", err)
	}
}

func TestSolverStatsPopulated(t *testing.T) {
	p := qbf.NewPrenexPrefix(4,
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{1, 2}},
		qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{3}},
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{4}})
	q := qbf.New(p, []qbf.Clause{
		mkClause(1, 2), mkClause(-1, 3, 4), mkClause(-2, -3, -4), mkClause(-1, -2)})
	rRes, err := Solve(context.Background(), q, Options{})
	r, st := rRes.Verdict, rRes.Stats
	if err != nil {
		t.Fatal(err)
	}
	if r == Unknown {
		t.Fatal("tiny instance must be decided")
	}
	if st.Decisions < 0 || st.Propagations == 0 && st.Decisions == 0 && st.PureAssignments == 0 {
		t.Errorf("stats look empty: %+v", st)
	}
}

func TestNodeLimit(t *testing.T) {
	// A hard-ish random-like instance that needs several decisions.
	p := qbf.NewPrenexPrefix(12, qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}})
	var m []qbf.Clause
	// Pigeonhole-flavored hard clauses: at-least-one rows + conflicts.
	m = append(m,
		mkClause(1, 2, 3), mkClause(4, 5, 6), mkClause(7, 8, 9), mkClause(10, 11, 12),
		mkClause(-1, -4), mkClause(-1, -7), mkClause(-1, -10), mkClause(-4, -7),
		mkClause(-4, -10), mkClause(-7, -10), mkClause(-2, -5), mkClause(-2, -8),
		mkClause(-2, -11), mkClause(-5, -8), mkClause(-5, -11), mkClause(-8, -11),
		mkClause(-3, -6), mkClause(-3, -9), mkClause(-3, -12), mkClause(-6, -9),
		mkClause(-6, -12), mkClause(-9, -12))
	q := qbf.New(p, m)
	rRes, err := Solve(context.Background(), q, Options{NodeLimit: 1, DisablePureLiterals: true})
	r := rRes.Verdict
	if err != nil {
		t.Fatal(err)
	}
	if r != Unknown {
		// The instance is satisfiable and small, so it may legitimately be
		// solved within one decision via propagation; accept True as well.
		if r != True {
			t.Errorf("got %v with NodeLimit=1", r)
		}
	}
}

func TestFreeVariablesSolved(t *testing.T) {
	// Free variable 3 plus ∀1 ∃2: 3 ∧ (¬3 ∨ (1≡2)).
	p := qbf.NewPrenexPrefix(2,
		qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{1}},
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{2}})
	q := qbf.New(p, []qbf.Clause{
		mkClause(3), mkClause(-3, 1, -2), mkClause(-3, -1, 2)})
	solveAllCombos(t, q, true, "free-vars")
}

func TestTautologyAndDuplicateInput(t *testing.T) {
	p := qbf.NewPrenexPrefix(2, qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{1, 2}})
	q := qbf.New(p, []qbf.Clause{
		mkClause(1, -1),     // tautology: dropped
		mkClause(2, 2, 1),   // duplicate literal
		mkClause(-2, 1, -2), // duplicate literal
	})
	solveAllCombos(t, q, true, "messy-input")
}

// TestPaperFigure2Example runs the paper's running example (1) in both the
// non-prenex form (prefix (3)) and its prenex-optimal form (prefix (7)).
// The matrix polarities are reconstructed so that footnote 5 holds (y1, y2
// pure) and the Figure 2 search tree (everywhere contradictory) applies:
// the formula is false.
func TestPaperFigure2Example(t *testing.T) {
	// Variables: x0=1, y1=2, x1=3, x2=4, y2=5, x3=6, x4=7.
	matrix := []qbf.Clause{
		mkClause(1, 3, 4),    // {x0, x1, x2}
		mkClause(-2, 3, -4),  // {¬y1, x1, ¬x2}
		mkClause(-3, 4),      // {¬x1, x2}
		mkClause(-1, -3, -4), // {¬x0, ¬x1, ¬x2}
		mkClause(1, 6, 7),    // {x0, x3, x4}
		mkClause(-5, 6, -7),  // {¬y2, x3, ¬x4}
		mkClause(-6, 7),      // {¬x3, x4}
		mkClause(-1, -6, -7), // {¬x0, ¬x3, ¬x4}
	}
	tree := qbf.NewPrefix(7)
	root := tree.AddBlock(nil, qbf.Exists, 1)
	y1 := tree.AddBlock(root, qbf.Forall, 2)
	tree.AddBlock(y1, qbf.Exists, 3, 4)
	y2 := tree.AddBlock(root, qbf.Forall, 5)
	tree.AddBlock(y2, qbf.Exists, 6, 7)
	qTree := qbf.New(tree, matrix)

	want := qbf.Eval(qTree)
	solveAllCombos(t, qTree, want, "paper-tree")

	prenex := qbf.NewPrenexPrefix(7,
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{1}},
		qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{2, 5}},
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{3, 4, 6, 7}})
	qPrenex := qbf.New(prenex, matrix)
	if got := qbf.Eval(qPrenex); got != want {
		t.Fatalf("prenex-optimal form changed the value: %v vs %v", got, want)
	}
	solveAllCombos(t, qPrenex, want, "paper-prenex")
}
