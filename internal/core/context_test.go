package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/qbf"
)

// phpFormula builds the pigeonhole principle PHP(n+1, n) as an
// all-existential QBF: FALSE, and exponentially hard for resolution, so it
// reliably keeps the search busy for mid-flight governance tests.
func phpFormula(n int) *qbf.QBF {
	pigeons := n + 1
	v := func(p, h int) int { return (p-1)*n + h }
	p := qbf.NewPrefix(pigeons * n)
	var vars []qbf.Var
	for i := 1; i <= pigeons*n; i++ {
		vars = append(vars, qbf.Var(i))
	}
	p.AddBlock(nil, qbf.Exists, vars...)
	var m []qbf.Clause
	for i := 1; i <= pigeons; i++ {
		var row qbf.Clause
		for h := 1; h <= n; h++ {
			row = append(row, qbf.Lit(v(i, h)))
		}
		m = append(m, row)
	}
	for h := 1; h <= n; h++ {
		for i := 1; i <= pigeons; i++ {
			for j := i + 1; j <= pigeons; j++ {
				m = append(m, qbf.Clause{qbf.Lit(-v(i, h)), qbf.Lit(-v(j, h))})
			}
		}
	}
	return qbf.New(p, m)
}

func TestSolveContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := NewSolver(phpFormula(4), Options{DisablePureLiterals: true})
	if err != nil {
		t.Fatal(err)
	}
	if r := s.Solve(ctx); r != Unknown {
		t.Fatalf("pre-cancelled solve returned %v", r)
	}
	st := s.Stats()
	if st.StopReason != StopCancelled {
		t.Errorf("stop reason %v, want cancelled", st.StopReason)
	}
	if st.Decisions != 0 {
		t.Errorf("pre-cancelled solve made %d decisions", st.Decisions)
	}
}

func TestSolveContextMidSearchCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s, err := NewSolver(phpFormula(10), Options{DisablePureLiterals: true})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan Verdict, 1)
	go func() { done <- s.Solve(ctx) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case r := <-done:
		st := s.Stats()
		if r != Unknown || st.StopReason != StopCancelled {
			// PHP(11,10) needs far more than 50 ms; a decided result here
			// means cancellation never fired.
			t.Fatalf("got %v/%v, want UNKNOWN/cancelled", r, st.StopReason)
		}
		if st.Fixpoints == 0 || st.Decisions == 0 {
			t.Errorf("cancelled mid-search but stats empty: %+v", st)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("solver ignored cancellation")
	}
}

func TestContextDeadlineIsTimeout(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	s, err := NewSolver(phpFormula(10), Options{DisablePureLiterals: true})
	if err != nil {
		t.Fatal(err)
	}
	if r := s.Solve(ctx); r != Unknown {
		t.Fatalf("got %v, want UNKNOWN under a 50ms deadline", r)
	}
	// A context deadline is a time budget: it must surface as a timeout,
	// not as a generic cancellation.
	if st := s.Stats(); st.StopReason != StopTimeout {
		t.Errorf("stop reason %v, want timeout", st.StopReason)
	}
}

func TestNodeLimitStopReason(t *testing.T) {
	rRes, err := Solve(context.Background(), phpFormula(10), Options{NodeLimit: 1, DisablePureLiterals: true})
	r, st := rRes.Verdict, rRes.Stats
	if err != nil {
		t.Fatal(err)
	}
	if r != Unknown || st.StopReason != StopNodeLimit {
		t.Errorf("got %v/%v, want UNKNOWN/node-limit", r, st.StopReason)
	}
}

// TestMemLimitGraceful: a budget large enough to hold a reduced database
// must degrade — aggressive reductions, no stop — and still decide.
func TestMemLimitGraceful(t *testing.T) {
	res, err := Solve(context.Background(), phpFormula(7), Options{
		MemLimit:            64 << 10,
		DisablePureLiterals: true,
	})
	r, st := res.Verdict, res.Stats
	if err != nil {
		t.Fatal(err)
	}
	if r != False {
		t.Fatalf("PHP(8,7) = %v, want FALSE", r)
	}
	if st.StopReason != StopNone {
		t.Errorf("decided run carries stop reason %v", st.StopReason)
	}
	if st.MemReductions == 0 {
		t.Error("64KiB budget on PHP(8,7) never triggered a memory reduction")
	}
}

// TestMemLimitForcedStop: a budget no reduction can reach (one byte —
// the first learned clause is locked as the asserting reason, so the
// aggressive round cannot delete it) must produce a clean mem-limit stop.
func TestMemLimitForcedStop(t *testing.T) {
	res, err := Solve(context.Background(), phpFormula(6), Options{
		MemLimit:            1,
		DisablePureLiterals: true,
	})
	r, st := res.Verdict, res.Stats
	if err != nil {
		t.Fatal(err)
	}
	if r != Unknown || st.StopReason != StopMemLimit {
		t.Errorf("got %v/%v, want UNKNOWN/mem-limit", r, st.StopReason)
	}
	if st.MemReductions == 0 {
		t.Error("forced stop without attempting a reduction first")
	}
}

// TestMemLimitSoundness guards the governance/analysis interaction: the
// memory governor must never delete the constraint whose conflict/solution
// event is still pending — analysis over an emptied working set reads as a
// terminal verdict, i.e. a wrong False/True. So under an aggressively tight
// budget every decided result must still agree with the semantic oracle;
// Unknown with a mem-limit stop is the only allowed degradation.
func TestMemLimitSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	n := 300
	if testing.Short() {
		n = 60
	}
	reduced := 0
	for i := 0; i < n; i++ {
		q := randomPrenexQBF(rng, 12, 24, 6)
		want, ok := qbf.EvalWithBudget(q, 2_000_000)
		if !ok {
			continue
		}
		for _, lim := range []int64{64, 128} {
			rRes, err := Solve(context.Background(), q, Options{MemLimit: lim, DisablePureLiterals: true})
			r, st := rRes.Verdict, rRes.Stats
			if err != nil {
				t.Fatalf("iteration %d (lim=%d): %v\nQBF: %v", i, lim, err, q)
			}
			if st.MemReductions > 0 {
				reduced++
			}
			if r == Unknown {
				if st.StopReason != StopMemLimit {
					t.Errorf("iteration %d (lim=%d): Unknown with stop reason %v, want mem-limit", i, lim, st.StopReason)
				}
				continue
			}
			if (r == True) != want {
				t.Fatalf("iteration %d (lim=%d): got %v want %v (stats %+v)\nQBF: %v",
					i, lim, r, want, st, q)
			}
		}
	}
	if reduced == 0 {
		t.Error("no run ever triggered a memory reduction — the budget is too loose to exercise the governor")
	}
}

func TestSafeSolveNilInput(t *testing.T) {
	rRes, err := SafeSolve(context.Background(), nil, Options{})
	r, st := rRes.Verdict, rRes.Stats
	if r != Unknown {
		t.Errorf("result %v, want UNKNOWN", r)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err %T (%v), want *PanicError", err, err)
	}
	if len(pe.Stack) == 0 {
		t.Error("contained panic has no stack")
	}
	if st.StopReason != StopPanicked {
		t.Errorf("stop reason %v, want panicked", st.StopReason)
	}
}

// TestTimeoutNotStarvedByPropagation guards satellite #1: the deadline used
// to be checked only every 64th decision, so a search dominated by
// propagation and backtracking could overshoot its budget without bound.
// Polling now happens at propagation fixpoints; a 50ms budget must stop
// the solver in a small multiple of that.
func TestTimeoutNotStarvedByPropagation(t *testing.T) {
	s, err := NewSolver(phpFormula(10), Options{
		TimeLimit:           50 * time.Millisecond,
		DisablePureLiterals: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	r := s.Solve(context.Background())
	elapsed := time.Since(start)
	if r != Unknown || s.Stats().StopReason != StopTimeout {
		t.Fatalf("got %v/%v, want UNKNOWN/timeout", r, s.Stats().StopReason)
	}
	if elapsed > 2*time.Second {
		t.Errorf("50ms budget overshot to %v", elapsed)
	}
}
