package core

import (
	"repro/internal/qbf"
	"repro/internal/telemetry"
)

// event reported by propagateAll.
type event int

const (
	evNone event = iota
	// evConflict carries the id of a clause whose existential literals are
	// all false (a contradictory residual clause, Lemma 4).
	evConflict
	// evSolution carries the id of a cube whose literals are all true, or
	// -1 when the matrix became empty (all original clauses satisfied).
	evSolution
)

// propagateAll runs unit propagation (clauses and cubes) to fixpoint via
// the watched-literal engine (watch.go), returning the first conflict or
// solution found. Under Options.Incremental, clauses added since the last
// fixpoint are first woken by a full scan — their watcher entries were
// installed against an assignment the watch machinery never observed
// changing, so an install-time unit or conflict would otherwise be silent.
//
//qbf:hotpath
func (s *Solver) propagateAll() (event, int) {
	if len(s.wakeRefs) > 0 {
		if ev, ci := s.drainWakes(); ev != evNone {
			return ev, ci
		}
	}
	if s.numUnsatOriginal == 0 {
		return evSolution, -1
	}
	return s.propagateWatched()
}

// drainWakes scans every pending runtime-added clause against the actual
// variable values. A unit wake assigns its forced literal (dequeued by the
// caller's watcher loop); the first conflict becomes the fixpoint's event,
// and the reporting clause stays queued — events are re-derived on the next
// propagateAll until a frame operation defuses the clause or the search
// ends. Deleted refs (a popped frame) are dropped.
func (s *Solver) drainWakes() (event, int) {
	for i := 0; i < len(s.wakeRefs); i++ {
		ci := s.wakeRefs[i]
		if s.ar.deleted(ci) {
			continue
		}
		if ev, eci := s.scanState(ci); ev != evNone {
			s.wakeRefs = append(s.wakeRefs[:0], s.wakeRefs[i:]...)
			return ev, eci
		}
	}
	s.wakeRefs = s.wakeRefs[:0]
	return evNone, -1
}

// clauseSatisfied updates the pure-literal occurrence counts when an
// original clause gains its first true literal (it leaves the residual
// matrix).
//
//qbf:hotpath
func (s *Solver) clauseSatisfied(ci int) {
	s.numUnsatOriginal--
	for k, n := 0, s.ar.size(ci); k < n; k++ {
		m := s.ar.lit(ci, k)
		mi := litIdx(m)
		s.activeOcc[mi]--
		if s.activeOcc[mi] == 0 && s.value[m.Var()] == undef {
			s.pureCand = append(s.pureCand, m.Var())
		}
	}
}

// clauseUnsatisfied reverses clauseSatisfied on backtracking.
//
//qbf:hotpath
func (s *Solver) clauseUnsatisfied(ci int) {
	s.numUnsatOriginal++
	for k, n := 0, s.ar.size(ci); k < n; k++ {
		s.activeOcc[litIdx(s.ar.lit(ci, k))]++
	}
}

// scanState derives a constraint's state from the actual variable values
// alone: it enqueues the forced literal when the constraint is unit and
// reports conflicts and solutions. Because it never trusts cached counters
// or watch positions, callers may use it on constraints whose incremental
// state is stale — the import wake-ups and the runtime-added clause wakes
// of the incremental session path; a stale watch can at worst defer an
// event to the visit that repairs it, never fabricate one.
//
//qbf:hotpath
func (s *Solver) scanState(ci int) (event, int) {
	n := s.ar.size(ci)
	if !s.ar.isCube(ci) {
		var e qbf.Lit
		undefE := 0
		for k := 0; k < n; k++ {
			m := s.ar.lit(ci, k)
			switch s.litValue(m) {
			case vTrue:
				return evNone, -1
			case undef:
				if s.quant[m.Var()] == qbf.Exists {
					undefE++
					if undefE > 1 {
						return evNone, -1
					}
					e = m
				}
			}
		}
		if undefE == 0 {
			// Residual clause has no existential literal: contradictory
			// under Lemma 4.
			return evConflict, ci
		}
		// Candidate unit (Lemma 5): e is forced unless some unassigned
		// universal m of the clause has m ≺ e.
		for k := 0; k < n; k++ {
			m := s.ar.lit(ci, k)
			if m != e && s.value[m.Var()] == undef && s.before(m.Var(), e.Var()) {
				return evNone, -1
			}
		}
		s.assign(e, reasonConstraint, ci)
		return evNone, -1
	}
	// Cube (good): the dual rules. The residual cube under the current
	// assignment consists of the unassigned literals; existential
	// reduction (the dual of Lemma 3) removes every residual existential
	// e with no residual universal u such that e ≺ u, so unassigned
	// existentials never block by themselves.
	var u qbf.Lit
	for k := 0; k < n; k++ {
		m := s.ar.lit(ci, k)
		switch s.litValue(m) {
		case vFalse:
			return evNone, -1
		case undef:
			if s.quant[m.Var()] == qbf.Forall {
				u = m
			}
		}
	}
	if u == 0 {
		// No residual universal literal: existential reduction empties the
		// residual cube, the good fires, the branch is a solution.
		return evSolution, ci
	}
	// Candidate dual unit: the universal player must falsify u — unless a
	// residual existential in the scope of u keeps the cube from reducing
	// to the unit [u].
	for k := 0; k < n; k++ {
		m := s.ar.lit(ci, k)
		if m != u && s.value[m.Var()] == undef && s.before(m.Var(), u.Var()) {
			return evNone, -1
		}
	}
	s.assign(u.Neg(), reasonConstraint, ci)
	return evNone, -1
}

// fixPures assigns pure (monotone) literals: an existential literal l with
// l̄ absent from the residual original matrix, or a universal literal l
// absent itself (Section III). Purity is judged against original clauses
// only, which keeps the rule sound in the presence of learning; learned
// constraints mentioning the literal merely lose propagation strength.
// fixPures reports whether it assigned anything.
func (s *Solver) fixPures() bool {
	if s.opt.DisablePureLiterals {
		s.pureCand = s.pureCand[:0]
		return false
	}
	// Root-level pure assignments are valid in incremental sessions too:
	// purity can only be broken by a clause mentioning the variable, Pop
	// only shrinks the occurrence sets, and AddClause unwinds any root
	// pure assignment whose variable the incoming clause mentions
	// (invalidatePures) before installing it.
	assigned := false
	for len(s.pureCand) > 0 {
		v := s.pureCand[len(s.pureCand)-1]
		s.pureCand = s.pureCand[:len(s.pureCand)-1]
		if s.value[v] != undef {
			continue
		}
		pos, neg := s.activeOcc[litIdx(v.PosLit())], s.activeOcc[litIdx(v.NegLit())]
		var l qbf.Lit
		switch {
		case s.quant[v] == qbf.Exists && neg == 0:
			l = v.PosLit()
		case s.quant[v] == qbf.Exists && pos == 0:
			l = v.NegLit()
		case s.quant[v] == qbf.Forall && pos == 0:
			l = v.PosLit()
		case s.quant[v] == qbf.Forall && neg == 0:
			l = v.NegLit()
		default:
			continue
		}
		s.assign(l, reasonPure, -1)
		s.stats.PureAssignments++
		assigned = true
	}
	return assigned
}

// addLearned installs a learned clause or cube into the arena and gives it
// its two watches. frame is the deepest assumption frame the derivation
// depended on (0 outside incremental sessions, and always 0 for cubes: a
// cube is an implicant of the current matrix, and popping a frame only
// shrinks the matrix, so every pop preserves it — see incremental.go for
// why AddClause, not Pop, invalidates cubes). The caller must ensure the
// propagation queue is drained (qhead == len(trail)).
func (s *Solver) addLearned(lits []qbf.Lit, isCube bool, frame int) int {
	s.checkLearnedConstraint(lits, isCube)
	id := s.ar.alloc(lits, isCube, true)
	s.ar.setFrame(id, frame)
	s.initWatches(id)
	for _, l := range lits {
		s.counter[litIdx(l)]++
	}
	s.learnedBytes += constraintBytes(len(lits))
	if s.learnedBytes > s.stats.PeakLearnedBytes {
		s.stats.PeakLearnedBytes = s.learnedBytes
	}
	if isCube {
		s.learnedCubes++
		s.stats.LearnedCubes++
	} else {
		s.learnedClauses++
		s.stats.LearnedClauses++
	}
	if !s.importing {
		if isCube {
			s.emitLitsEv(telemetry.KindLearn, lits, 1)
		} else {
			s.emitLitsEv(telemetry.KindLearn, lits, 0)
		}
	}
	if s.learnHook != nil && !s.importing {
		s.learnHook(lits, isCube)
	}
	return id
}

// reduceDB discards low-activity learned constraints of the given kind when
// their number exceeds the configured bound. Constraints currently acting
// as a reason on the trail are kept.
func (s *Solver) reduceDB(isCube bool) {
	n := s.learnedClauses
	if isCube {
		n = s.learnedCubes
	}
	if n <= s.opt.MaxLearned {
		return
	}
	s.reduceDBNow(isCube)
}

// reduceDBNow is the unconditional reduction round behind reduceDB and the
// memory governor: it discards learned constraints of the given kind at or
// below the median activity, regardless of how many are live. Constraints
// currently acting as a reason on the trail are kept. Deleted constraints
// are only flagged here; once they dominate the learned region the arena is
// compacted in place and every ref-holding structure rebound, so the memory
// actually returns (compactLearned).
func (s *Solver) reduceDBNow(isCube bool) {
	locked := make(map[int]bool)
	for _, l := range s.trail {
		v := l.Var()
		if s.reason[v] == reasonConstraint {
			locked[s.reasonC[v]] = true
		}
	}
	// Median activity of the kind under reduction. The learned region also
	// holds the runtime-added original clauses of incremental sessions
	// (learned flag off); those belong to their frames, not to the learned
	// databases, and are skipped.
	var acts []float64
	for ci := s.origEnd; ci < s.ar.end(); ci = s.ar.next(ci) {
		if !s.ar.deleted(ci) && s.ar.learned(ci) && s.ar.isCube(ci) == isCube {
			acts = append(acts, s.ar.activity(ci))
		}
	}
	if len(acts) == 0 {
		return
	}
	pivot := quickMedian(acts)
	for ci := s.origEnd; ci < s.ar.end(); ci = s.ar.next(ci) {
		if s.ar.deleted(ci) || !s.ar.learned(ci) || s.ar.isCube(ci) != isCube ||
			locked[ci] || s.ar.activity(ci) > pivot {
			continue
		}
		// Flag only: headers stay readable, so occurrence and watcher lists
		// drop stale refs lazily until the next compaction purges them.
		s.dropLearned(ci)
	}
	if s.ar.wasted > 0 && 2*s.ar.wasted >= s.ar.end()-s.origEnd {
		s.compactLearned()
	}
}

// dropLearned removes one live learned constraint: heuristic counters,
// byte accounting, the live-count of its kind, and the arena deletion flag.
// It is the shared deletion step of reduceDBNow and of the incremental
// frame operations (popping a frame drops the learned clauses tagged with
// it; AddClause drops every learned cube).
func (s *Solver) dropLearned(ci int) {
	n := s.ar.size(ci)
	for k := 0; k < n; k++ {
		s.counter[litIdx(s.ar.lit(ci, k))]--
	}
	s.learnedBytes -= constraintBytes(n)
	s.ar.del(ci)
	if s.ar.isCube(ci) {
		s.learnedCubes--
	} else {
		s.learnedClauses--
	}
}

// compactLearned slides the live learned constraints over the deleted ones
// (construction-time originals never move), then rebinds every structure
// holding arena refs: occurrence lists, watcher lists, the trail reasons,
// the incremental wake queue, and the per-frame clause lists. Deleted refs
// are purged from the lists first — after compaction their targets no
// longer exist. Callers must ensure no conflict/solution event is pending
// (the same safe-point contract as reduceDBNow).
func (s *Solver) compactLearned() {
	reclaimed := s.ar.wasted
	for i := range s.occ {
		occ := s.occ[i]
		w := 0
		for _, ci := range occ {
			if !s.ar.deleted(int(ci)) {
				occ[w] = ci
				w++
			}
		}
		s.occ[i] = occ[:w]
	}
	purge := func(lists [][]watcher) {
		for i := range lists {
			ws := lists[i]
			w := 0
			for _, e := range ws {
				if !s.ar.deleted(int(e.c)) {
					ws[w] = e
					w++
				}
			}
			lists[i] = ws[:w]
		}
	}
	purge(s.watchCl)
	purge(s.watchCu)
	if len(s.wakeRefs) > 0 {
		w := 0
		for _, ci := range s.wakeRefs {
			if !s.ar.deleted(ci) {
				s.wakeRefs[w] = ci
				w++
			}
		}
		s.wakeRefs = s.wakeRefs[:w]
	}

	olds, news := s.ar.compactFrom(s.origEnd)
	if len(olds) > 0 {
		for i := range s.occ {
			for j, ci := range s.occ[i] {
				s.occ[i][j] = rebind(ci, olds, news)
			}
		}
		rb := func(lists [][]watcher) {
			for i := range lists {
				for j := range lists[i] {
					lists[i][j].c = rebind(lists[i][j].c, olds, news)
				}
			}
		}
		rb(s.watchCl)
		rb(s.watchCu)
		for _, l := range s.trail {
			v := l.Var()
			if s.reason[v] == reasonConstraint {
				s.reasonC[v] = int(rebind(int32(s.reasonC[v]), olds, news))
			}
		}
		for i := range s.wakeRefs {
			s.wakeRefs[i] = int(rebind(int32(s.wakeRefs[i]), olds, news))
		}
		// Frame clause lists hold only live refs: frame originals are
		// deleted exclusively by the Pop that discards their list. The
		// runtime-original list is likewise all-live (removeOriginalClause
		// drops entries eagerly).
		for fi := range s.frames {
			cl := s.frames[fi].clauses
			for j := range cl {
				cl[j] = int(rebind(int32(cl[j]), olds, news))
			}
		}
		for i := range s.runtimeOrig {
			s.runtimeOrig[i] = int(rebind(int32(s.runtimeOrig[i]), olds, news))
		}
	}
	s.emitEv(telemetry.KindReduce, 0, int64(reclaimed), 2)
}

// quickMedian returns an approximate median (exact for odd lengths) by
// selection; the slice is reordered.
func quickMedian(a []float64) float64 {
	k := len(a) / 2
	lo, hi := 0, len(a)-1
	for lo < hi {
		p := a[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for a[i] < p {
				i++
			}
			for a[j] > p {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return a[k]
}
