package core

import (
	"repro/internal/qbf"
	"repro/internal/telemetry"
)

// event reported by propagateAll.
type event int

const (
	evNone event = iota
	// evConflict carries the id of a clause whose existential literals are
	// all false (a contradictory residual clause, Lemma 4).
	evConflict
	// evSolution carries the id of a cube whose literals are all true, or
	// -1 when the matrix became empty (all original clauses satisfied).
	evSolution
)

// propagateAll runs unit propagation (clauses and cubes) to fixpoint,
// returning the first conflict or solution found. It dispatches on the
// configured engine: the watched-literal engine (watch.go, the default) or
// the retained occurrence-counter engine below.
//
//qbf:hotpath
func (s *Solver) propagateAll() (event, int) {
	if s.numUnsatOriginal == 0 {
		return evSolution, -1
	}
	if s.opt.Propagation == PropCounters {
		return s.propagateCounters()
	}
	return s.propagateWatched()
}

// propagateCounters is the occurrence-counter fixpoint loop: every
// assignment walks the full occurrence lists of the literal and its
// negation, updating per-constraint counters. Retained behind
// Options.Propagation == PropCounters for one release as the differential
// baseline of the watcher engine; see PropCounters for the deprecation
// note.
//
//qbf:hotpath
func (s *Solver) propagateCounters() (event, int) {
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		if ev, ci := s.applyCounters(l); ev != evNone {
			return ev, ci
		}
		s.stats.Propagations++
	}
	if s.numUnsatOriginal == 0 {
		return evSolution, -1
	}
	return evNone, -1
}

// applyCounters updates the counters of every constraint containing l or
// l̄ after l became true, enqueueing implied literals and reporting the
// first conflict/solution. Deleted constraints found in occurrence lists
// are compacted away lazily.
//
//qbf:hotpath
func (s *Solver) applyCounters(l qbf.Lit) (event, int) {
	exist := s.quant[l.Var()] == qbf.Exists

	// Both occurrence lists must be walked to completion even after an
	// event is found: the counter updates belong to this dequeue and
	// backtracking will reverse exactly one update per constraint per
	// assigned literal. Only the first event is reported.
	ev, ci := s.walkOcc(litIdx(l), exist, true)
	ev2, ci2 := s.walkOcc(litIdx(l.Neg()), exist, false)
	if ev != evNone {
		return ev, ci
	}
	return ev2, ci2
}

//qbf:hotpath
func (s *Solver) walkOcc(idx int, exist, becameTrue bool) (event, int) {
	occ := s.occ[idx]
	w := 0
	var rev event = evNone
	rci := -1
	for _, ci32 := range occ {
		ci := int(ci32)
		if s.ar.deleted(ci) {
			continue // compact away
		}
		occ[w] = ci32
		w++
		if becameTrue {
			s.ar.d[ci+offTrue]++
		} else {
			s.ar.d[ci+offFalse]++
		}
		if exist {
			s.ar.d[ci+offUE]--
		} else {
			s.ar.d[ci+offUU]--
		}
		if becameTrue && s.ar.d[ci+offTrue] == 1 && !s.ar.isCube(ci) && !s.ar.learned(ci) {
			s.clauseSatisfied(ci)
			if s.numUnsatOriginal == 0 && rev == evNone {
				rev, rci = evSolution, -1
			}
		}
		if rev != evNone {
			continue // keep updating counters, report only the first event
		}
		if ev, eci := s.checkState(ci); ev != evNone {
			rev, rci = ev, eci
		}
	}
	s.occ[idx] = occ[:w]
	return rev, rci
}

// undoCounters reverses applyCounters for literal l on backtracking.
//
//qbf:hotpath
func (s *Solver) undoCounters(l qbf.Lit) {
	exist := s.quant[l.Var()] == qbf.Exists
	for _, ci32 := range s.occ[litIdx(l)] {
		ci := int(ci32)
		if s.ar.deleted(ci) {
			continue
		}
		s.ar.d[ci+offTrue]--
		if exist {
			s.ar.d[ci+offUE]++
		} else {
			s.ar.d[ci+offUU]++
		}
		if s.ar.d[ci+offTrue] == 0 && !s.ar.isCube(ci) && !s.ar.learned(ci) {
			s.clauseUnsatisfied(ci)
		}
	}
	for _, ci32 := range s.occ[litIdx(l.Neg())] {
		ci := int(ci32)
		if s.ar.deleted(ci) {
			continue
		}
		s.ar.d[ci+offFalse]--
		if exist {
			s.ar.d[ci+offUE]++
		} else {
			s.ar.d[ci+offUU]++
		}
	}
}

// clauseSatisfied updates the pure-literal occurrence counts when an
// original clause gains its first true literal (it leaves the residual
// matrix).
//
//qbf:hotpath
func (s *Solver) clauseSatisfied(ci int) {
	s.numUnsatOriginal--
	for k, n := 0, s.ar.size(ci); k < n; k++ {
		m := s.ar.lit(ci, k)
		mi := litIdx(m)
		s.activeOcc[mi]--
		if s.activeOcc[mi] == 0 && s.value[m.Var()] == undef {
			s.pureCand = append(s.pureCand, m.Var())
		}
	}
}

// clauseUnsatisfied reverses clauseSatisfied on backtracking.
//
//qbf:hotpath
func (s *Solver) clauseUnsatisfied(ci int) {
	s.numUnsatOriginal++
	for k, n := 0, s.ar.size(ci); k < n; k++ {
		s.activeOcc[litIdx(s.ar.lit(ci, k))]++
	}
}

// checkState inspects a constraint after a counter change, using the
// counters as a cheap filter in front of scanState. Counter engine only:
// the watcher engine does not maintain the filter counters and goes to
// scanState directly.
//
//qbf:hotpath
func (s *Solver) checkState(ci int) (event, int) {
	if !s.ar.isCube(ci) {
		if s.ar.d[ci+offTrue] > 0 || s.ar.d[ci+offUE] > 1 {
			return evNone, -1
		}
	} else {
		if s.ar.d[ci+offFalse] > 0 || s.ar.d[ci+offUU] > 1 {
			return evNone, -1
		}
	}
	return s.scanState(ci)
}

// scanState derives a constraint's state from the actual variable values
// alone: it enqueues the forced literal when the constraint is unit and
// reports conflicts and solutions. Because it never trusts cached counters,
// callers may use it on constraints whose incremental state is stale (the
// watcher engine's import wake-ups); with the counter filter in front
// (checkState) a stale counter can at worst defer an event to the dequeue
// that updates it, never fabricate one.
//
//qbf:hotpath
func (s *Solver) scanState(ci int) (event, int) {
	n := s.ar.size(ci)
	if !s.ar.isCube(ci) {
		var e qbf.Lit
		undefE := 0
		for k := 0; k < n; k++ {
			m := s.ar.lit(ci, k)
			switch s.litValue(m) {
			case vTrue:
				return evNone, -1
			case undef:
				if s.quant[m.Var()] == qbf.Exists {
					undefE++
					if undefE > 1 {
						return evNone, -1
					}
					e = m
				}
			}
		}
		if undefE == 0 {
			// Residual clause has no existential literal: contradictory
			// under Lemma 4.
			return evConflict, ci
		}
		// Candidate unit (Lemma 5): e is forced unless some unassigned
		// universal m of the clause has m ≺ e.
		for k := 0; k < n; k++ {
			m := s.ar.lit(ci, k)
			if m != e && s.value[m.Var()] == undef && s.before(m.Var(), e.Var()) {
				return evNone, -1
			}
		}
		s.assign(e, reasonConstraint, ci)
		return evNone, -1
	}
	// Cube (good): the dual rules. The residual cube under the current
	// assignment consists of the unassigned literals; existential
	// reduction (the dual of Lemma 3) removes every residual existential
	// e with no residual universal u such that e ≺ u, so unassigned
	// existentials never block by themselves.
	var u qbf.Lit
	for k := 0; k < n; k++ {
		m := s.ar.lit(ci, k)
		switch s.litValue(m) {
		case vFalse:
			return evNone, -1
		case undef:
			if s.quant[m.Var()] == qbf.Forall {
				u = m
			}
		}
	}
	if u == 0 {
		// No residual universal literal: existential reduction empties the
		// residual cube, the good fires, the branch is a solution.
		return evSolution, ci
	}
	// Candidate dual unit: the universal player must falsify u — unless a
	// residual existential in the scope of u keeps the cube from reducing
	// to the unit [u].
	for k := 0; k < n; k++ {
		m := s.ar.lit(ci, k)
		if m != u && s.value[m.Var()] == undef && s.before(m.Var(), u.Var()) {
			return evNone, -1
		}
	}
	s.assign(u.Neg(), reasonConstraint, ci)
	return evNone, -1
}

// fixPures assigns pure (monotone) literals: an existential literal l with
// l̄ absent from the residual original matrix, or a universal literal l
// absent itself (Section III). Purity is judged against original clauses
// only, which keeps the rule sound in the presence of learning; learned
// constraints mentioning the literal merely lose propagation strength.
// fixPures reports whether it assigned anything.
func (s *Solver) fixPures() bool {
	if s.opt.DisablePureLiterals {
		s.pureCand = s.pureCand[:0]
		return false
	}
	assigned := false
	for len(s.pureCand) > 0 {
		v := s.pureCand[len(s.pureCand)-1]
		s.pureCand = s.pureCand[:len(s.pureCand)-1]
		if s.value[v] != undef {
			continue
		}
		pos, neg := s.activeOcc[litIdx(v.PosLit())], s.activeOcc[litIdx(v.NegLit())]
		var l qbf.Lit
		switch {
		case s.quant[v] == qbf.Exists && neg == 0:
			l = v.PosLit()
		case s.quant[v] == qbf.Exists && pos == 0:
			l = v.NegLit()
		case s.quant[v] == qbf.Forall && pos == 0:
			l = v.PosLit()
		case s.quant[v] == qbf.Forall && neg == 0:
			l = v.NegLit()
		default:
			continue
		}
		s.assign(l, reasonPure, -1)
		s.stats.PureAssignments++
		assigned = true
	}
	return assigned
}

// addLearned installs a learned clause or cube into the arena. Under the
// counter engine its counters are initialized against the current
// (post-backtrack) assignment and it joins the occurrence lists; under the
// watcher engine it gets its two watches instead. The caller must ensure
// the propagation queue is drained (qhead == len(trail)).
func (s *Solver) addLearned(lits []qbf.Lit, isCube bool) int {
	s.checkLearnedConstraint(lits, isCube)
	id := s.ar.alloc(lits, isCube, true)
	if s.opt.Propagation == PropCounters {
		for _, l := range lits {
			switch s.litValue(l) {
			case vTrue:
				s.ar.d[id+offTrue]++
			case vFalse:
				s.ar.d[id+offFalse]++
			default:
				if s.quant[l.Var()] == qbf.Exists {
					s.ar.d[id+offUE]++
				} else {
					s.ar.d[id+offUU]++
				}
			}
		}
		for _, l := range lits {
			s.occ[litIdx(l)] = append(s.occ[litIdx(l)], int32(id))
		}
	} else {
		s.initWatches(id)
	}
	for _, l := range lits {
		s.counter[litIdx(l)]++
	}
	s.learnedBytes += constraintBytes(len(lits))
	if s.learnedBytes > s.stats.PeakLearnedBytes {
		s.stats.PeakLearnedBytes = s.learnedBytes
	}
	if isCube {
		s.learnedCubes++
		s.stats.LearnedCubes++
	} else {
		s.learnedClauses++
		s.stats.LearnedClauses++
	}
	if !s.importing {
		if isCube {
			s.emitLitsEv(telemetry.KindLearn, lits, 1)
		} else {
			s.emitLitsEv(telemetry.KindLearn, lits, 0)
		}
	}
	if s.learnHook != nil && !s.importing {
		s.learnHook(lits, isCube)
	}
	return id
}

// reduceDB discards low-activity learned constraints of the given kind when
// their number exceeds the configured bound. Constraints currently acting
// as a reason on the trail are kept.
func (s *Solver) reduceDB(isCube bool) {
	n := s.learnedClauses
	if isCube {
		n = s.learnedCubes
	}
	if n <= s.opt.MaxLearned {
		return
	}
	s.reduceDBNow(isCube)
}

// reduceDBNow is the unconditional reduction round behind reduceDB and the
// memory governor: it discards learned constraints of the given kind at or
// below the median activity, regardless of how many are live. Constraints
// currently acting as a reason on the trail are kept. Deleted constraints
// are only flagged here; once they dominate the learned region the arena is
// compacted in place and every ref-holding structure rebound, so the memory
// actually returns (compactLearned).
func (s *Solver) reduceDBNow(isCube bool) {
	locked := make(map[int]bool)
	for _, l := range s.trail {
		v := l.Var()
		if s.reason[v] == reasonConstraint {
			locked[s.reasonC[v]] = true
		}
	}
	// Median activity of the kind under reduction.
	var acts []float64
	for ci := s.origEnd; ci < s.ar.end(); ci = s.ar.next(ci) {
		if !s.ar.deleted(ci) && s.ar.isCube(ci) == isCube {
			acts = append(acts, s.ar.activity(ci))
		}
	}
	if len(acts) == 0 {
		return
	}
	pivot := quickMedian(acts)
	for ci := s.origEnd; ci < s.ar.end(); ci = s.ar.next(ci) {
		if s.ar.deleted(ci) || s.ar.isCube(ci) != isCube || locked[ci] || s.ar.activity(ci) > pivot {
			continue
		}
		n := s.ar.size(ci)
		for k := 0; k < n; k++ {
			s.counter[litIdx(s.ar.lit(ci, k))]--
		}
		s.learnedBytes -= constraintBytes(n)
		// Flag only: headers stay readable, so occurrence and watcher lists
		// drop stale refs lazily until the next compaction purges them.
		s.ar.del(ci)
		if isCube {
			s.learnedCubes--
		} else {
			s.learnedClauses--
		}
	}
	if s.ar.wasted > 0 && 2*s.ar.wasted >= s.ar.end()-s.origEnd {
		s.compactLearned()
	}
}

// compactLearned slides the live learned constraints over the deleted ones
// (originals never move), then rebinds every structure holding arena refs:
// occurrence lists, watcher lists, and the trail reasons. Deleted refs are
// purged from the lists first — after compaction their targets no longer
// exist. Callers must ensure no conflict/solution event is pending (the
// same safe-point contract as reduceDBNow).
func (s *Solver) compactLearned() {
	reclaimed := s.ar.wasted
	for i := range s.occ {
		occ := s.occ[i]
		w := 0
		for _, ci := range occ {
			if !s.ar.deleted(int(ci)) {
				occ[w] = ci
				w++
			}
		}
		s.occ[i] = occ[:w]
	}
	purge := func(lists [][]watcher) {
		for i := range lists {
			ws := lists[i]
			w := 0
			for _, e := range ws {
				if !s.ar.deleted(int(e.c)) {
					ws[w] = e
					w++
				}
			}
			lists[i] = ws[:w]
		}
	}
	purge(s.watchCl)
	purge(s.watchCu)

	olds, news := s.ar.compactFrom(s.origEnd)
	if len(olds) > 0 {
		for i := range s.occ {
			for j, ci := range s.occ[i] {
				s.occ[i][j] = rebind(ci, olds, news)
			}
		}
		rb := func(lists [][]watcher) {
			for i := range lists {
				for j := range lists[i] {
					lists[i][j].c = rebind(lists[i][j].c, olds, news)
				}
			}
		}
		rb(s.watchCl)
		rb(s.watchCu)
		for _, l := range s.trail {
			v := l.Var()
			if s.reason[v] == reasonConstraint {
				s.reasonC[v] = int(rebind(int32(s.reasonC[v]), olds, news))
			}
		}
	}
	s.emitEv(telemetry.KindReduce, 0, int64(reclaimed), 2)
}

// quickMedian returns an approximate median (exact for odd lengths) by
// selection; the slice is reordered.
func quickMedian(a []float64) float64 {
	k := len(a) / 2
	lo, hi := 0, len(a)-1
	for lo < hi {
		p := a[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for a[i] < p {
				i++
			}
			for a[j] > p {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return a[k]
}
