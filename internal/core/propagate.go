package core

import (
	"repro/internal/qbf"
	"repro/internal/telemetry"
)

// event reported by propagateAll.
type event int

const (
	evNone event = iota
	// evConflict carries the id of a clause whose existential literals are
	// all false (a contradictory residual clause, Lemma 4).
	evConflict
	// evSolution carries the id of a cube whose literals are all true, or
	// -1 when the matrix became empty (all original clauses satisfied).
	evSolution
)

// propagateAll runs unit propagation (clauses and cubes) to fixpoint,
// returning the first conflict or solution found.
//
//qbf:hotpath
func (s *Solver) propagateAll() (event, int) {
	if s.numUnsatOriginal == 0 {
		return evSolution, -1
	}
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		if ev, ci := s.applyCounters(l); ev != evNone {
			return ev, ci
		}
		s.stats.Propagations++
	}
	if s.numUnsatOriginal == 0 {
		return evSolution, -1
	}
	return evNone, -1
}

// applyCounters updates the counters of every constraint containing l or
// l̄ after l became true, enqueueing implied literals and reporting the
// first conflict/solution. Deleted constraints found in occurrence lists
// are compacted away lazily.
//
//qbf:hotpath
func (s *Solver) applyCounters(l qbf.Lit) (event, int) {
	exist := s.quant[l.Var()] == qbf.Exists

	// Both occurrence lists must be walked to completion even after an
	// event is found: the counter updates belong to this dequeue and
	// backtracking will reverse exactly one update per constraint per
	// assigned literal. Only the first event is reported.
	ev, ci := s.walkOcc(litIdx(l), exist, true)
	ev2, ci2 := s.walkOcc(litIdx(l.Neg()), exist, false)
	if ev != evNone {
		return ev, ci
	}
	return ev2, ci2
}

//qbf:hotpath
func (s *Solver) walkOcc(idx int, exist, becameTrue bool) (event, int) {
	occ := s.occ[idx]
	w := 0
	var rev event = evNone
	rci := -1
	for _, ci := range occ {
		if s.cons[ci].deleted {
			continue // compact away
		}
		occ[w] = ci
		w++
		c := &s.cons[ci]
		if becameTrue {
			c.numTrue++
		} else {
			c.numFalse++
		}
		if exist {
			c.unassignedE--
		} else {
			c.unassignedU--
		}
		if !c.isCube && !c.learned && becameTrue && c.numTrue == 1 {
			s.clauseSatisfied(ci)
			if s.numUnsatOriginal == 0 && rev == evNone {
				rev, rci = evSolution, -1
			}
		}
		if rev != evNone {
			continue // keep updating counters, report only the first event
		}
		if ev, eci := s.checkState(ci); ev != evNone {
			rev, rci = ev, eci
		}
	}
	s.occ[idx] = occ[:w]
	return rev, rci
}

// undoCounters reverses applyCounters for literal l on backtracking.
//
//qbf:hotpath
func (s *Solver) undoCounters(l qbf.Lit) {
	exist := s.quant[l.Var()] == qbf.Exists
	for _, ci := range s.occ[litIdx(l)] {
		c := &s.cons[ci]
		if c.deleted {
			continue
		}
		c.numTrue--
		if exist {
			c.unassignedE++
		} else {
			c.unassignedU++
		}
		if !c.isCube && !c.learned && c.numTrue == 0 {
			s.clauseUnsatisfied(ci)
		}
	}
	for _, ci := range s.occ[litIdx(l.Neg())] {
		c := &s.cons[ci]
		if c.deleted {
			continue
		}
		c.numFalse--
		if exist {
			c.unassignedE++
		} else {
			c.unassignedU++
		}
	}
}

// clauseSatisfied updates the pure-literal occurrence counts when an
// original clause gains its first true literal (it leaves the residual
// matrix).
func (s *Solver) clauseSatisfied(ci int) {
	s.numUnsatOriginal--
	for _, m := range s.cons[ci].lits {
		mi := litIdx(m)
		s.activeOcc[mi]--
		if s.activeOcc[mi] == 0 && s.value[m.Var()] == undef {
			s.pureCand = append(s.pureCand, m.Var())
		}
	}
}

// clauseUnsatisfied reverses clauseSatisfied on backtracking.
func (s *Solver) clauseUnsatisfied(ci int) {
	s.numUnsatOriginal++
	for _, m := range s.cons[ci].lits {
		s.activeOcc[litIdx(m)]++
	}
}

// checkState inspects a constraint after a counter change, enqueues a
// forced literal when the constraint is unit, and reports conflicts and
// solutions. The counters are used as a cheap filter only: because the
// trail may hold assignments whose counter effects are still queued, every
// candidate event is verified against the actual variable values, so a
// stale counter can at worst defer an event to the dequeue that updates it,
// never fabricate one.
//
//qbf:hotpath
func (s *Solver) checkState(ci int) (event, int) {
	c := &s.cons[ci]
	if !c.isCube {
		if c.numTrue > 0 || c.unassignedE > 1 {
			return evNone, -1
		}
		var e qbf.Lit
		undefE := 0
		for _, m := range c.lits {
			switch s.litValue(m) {
			case vTrue:
				return evNone, -1
			case undef:
				if s.quant[m.Var()] == qbf.Exists {
					undefE++
					if undefE > 1 {
						return evNone, -1
					}
					e = m
				}
			}
		}
		if undefE == 0 {
			// Residual clause has no existential literal: contradictory
			// under Lemma 4.
			return evConflict, ci
		}
		// Candidate unit (Lemma 5): e is forced unless some unassigned
		// universal m of the clause has m ≺ e.
		for _, m := range c.lits {
			if m != e && s.value[m.Var()] == undef && s.before(m.Var(), e.Var()) {
				return evNone, -1
			}
		}
		s.assign(e, reasonConstraint, ci)
		return evNone, -1
	}
	// Cube (good): the dual rules. The residual cube under the current
	// assignment consists of the unassigned literals; existential
	// reduction (the dual of Lemma 3) removes every residual existential
	// e with no residual universal u such that e ≺ u, so unassigned
	// existentials never block by themselves.
	if c.numFalse > 0 || c.unassignedU > 1 {
		return evNone, -1
	}
	var u qbf.Lit
	for _, m := range c.lits {
		switch s.litValue(m) {
		case vFalse:
			return evNone, -1
		case undef:
			if s.quant[m.Var()] == qbf.Forall {
				u = m
			}
		}
	}
	if u == 0 {
		// No residual universal literal: existential reduction empties the
		// residual cube, the good fires, the branch is a solution.
		return evSolution, ci
	}
	// Candidate dual unit: the universal player must falsify u — unless a
	// residual existential in the scope of u keeps the cube from reducing
	// to the unit [u].
	for _, m := range c.lits {
		if m != u && s.value[m.Var()] == undef && s.before(m.Var(), u.Var()) {
			return evNone, -1
		}
	}
	s.assign(u.Neg(), reasonConstraint, ci)
	return evNone, -1
}

// fixPures assigns pure (monotone) literals: an existential literal l with
// l̄ absent from the residual original matrix, or a universal literal l
// absent itself (Section III). Purity is judged against original clauses
// only, which keeps the rule sound in the presence of learning; learned
// constraints mentioning the literal merely lose propagation strength.
// fixPures reports whether it assigned anything.
func (s *Solver) fixPures() bool {
	if s.opt.DisablePureLiterals {
		s.pureCand = s.pureCand[:0]
		return false
	}
	assigned := false
	for len(s.pureCand) > 0 {
		v := s.pureCand[len(s.pureCand)-1]
		s.pureCand = s.pureCand[:len(s.pureCand)-1]
		if s.value[v] != undef {
			continue
		}
		pos, neg := s.activeOcc[litIdx(v.PosLit())], s.activeOcc[litIdx(v.NegLit())]
		var l qbf.Lit
		switch {
		case s.quant[v] == qbf.Exists && neg == 0:
			l = v.PosLit()
		case s.quant[v] == qbf.Exists && pos == 0:
			l = v.NegLit()
		case s.quant[v] == qbf.Forall && pos == 0:
			l = v.PosLit()
		case s.quant[v] == qbf.Forall && neg == 0:
			l = v.NegLit()
		default:
			continue
		}
		s.assign(l, reasonPure, -1)
		s.stats.PureAssignments++
		assigned = true
	}
	return assigned
}

// addLearned installs a learned clause or cube whose counters are
// initialized against the current (post-backtrack) assignment. The caller
// must ensure the propagation queue is drained (qhead == len(trail)).
func (s *Solver) addLearned(lits []qbf.Lit, isCube bool) int {
	s.checkLearnedConstraint(lits, isCube)
	id := len(s.cons)
	c := constraint{lits: lits, isCube: isCube, learned: true, activity: 1}
	for _, l := range lits {
		switch s.litValue(l) {
		case vTrue:
			c.numTrue++
		case vFalse:
			c.numFalse++
		default:
			if s.quant[l.Var()] == qbf.Exists {
				c.unassignedE++
			} else {
				c.unassignedU++
			}
		}
	}
	s.cons = append(s.cons, c)
	for _, l := range lits {
		s.occ[litIdx(l)] = append(s.occ[litIdx(l)], id)
		s.counter[litIdx(l)]++
	}
	s.learnedBytes += constraintBytes(lits)
	if s.learnedBytes > s.stats.PeakLearnedBytes {
		s.stats.PeakLearnedBytes = s.learnedBytes
	}
	if isCube {
		s.learnedCubes++
		s.stats.LearnedCubes++
	} else {
		s.learnedClauses++
		s.stats.LearnedClauses++
	}
	if !s.importing {
		if isCube {
			s.emitLitsEv(telemetry.KindLearn, lits, 1)
		} else {
			s.emitLitsEv(telemetry.KindLearn, lits, 0)
		}
	}
	if s.learnHook != nil && !s.importing {
		s.learnHook(lits, isCube)
	}
	return id
}

// reduceDB discards low-activity learned constraints of the given kind when
// their number exceeds the configured bound. Constraints currently acting
// as a reason on the trail are kept.
func (s *Solver) reduceDB(isCube bool) {
	n := s.learnedClauses
	if isCube {
		n = s.learnedCubes
	}
	if n <= s.opt.MaxLearned {
		return
	}
	s.reduceDBNow(isCube)
}

// reduceDBNow is the unconditional reduction round behind reduceDB and the
// memory governor: it discards learned constraints of the given kind at or
// below the median activity, regardless of how many are live. Constraints
// currently acting as a reason on the trail are kept; deleted constraints
// release their literal storage so the memory actually returns.
func (s *Solver) reduceDBNow(isCube bool) {
	locked := make(map[int]bool)
	for _, l := range s.trail {
		v := l.Var()
		if s.reason[v] == reasonConstraint {
			locked[s.reasonC[v]] = true
		}
	}
	// Median activity of the kind under reduction.
	var acts []float64
	for i := s.nOriginalClauses; i < len(s.cons); i++ {
		c := &s.cons[i]
		if !c.deleted && c.isCube == isCube {
			acts = append(acts, c.activity)
		}
	}
	if len(acts) == 0 {
		return
	}
	pivot := quickMedian(acts)
	for i := s.nOriginalClauses; i < len(s.cons); i++ {
		c := &s.cons[i]
		if c.deleted || c.isCube != isCube || locked[i] || c.activity > pivot {
			continue
		}
		c.deleted = true
		for _, l := range c.lits {
			s.counter[litIdx(l)]--
		}
		s.learnedBytes -= constraintBytes(c.lits)
		// Release the literal storage: every consumer checks c.deleted
		// before touching lits, and occurrence lists compact deleted ids
		// away lazily, so nothing reads them again.
		c.lits = nil
		if isCube {
			s.learnedCubes--
		} else {
			s.learnedClauses--
		}
	}
}

// quickMedian returns an approximate median (exact for odd lengths) by
// selection; the slice is reordered.
func quickMedian(a []float64) float64 {
	k := len(a) / 2
	lo, hi := 0, len(a)-1
	for lo < hi {
		p := a[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for a[i] < p {
				i++
			}
			for a[j] > p {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return a[k]
}
