package core

import (
	"testing"

	"repro/internal/qbf"
)

// FuzzArena drives the arena clause store with a model-based operation
// stream decoded from the fuzz input: allocate learned clauses/cubes,
// delete them, bump activities, and compact — while a plain-Go shadow model
// tracks what every constraint must contain. After every compaction the
// returned (olds, news) mapping is applied to the model's refs exactly the
// way the solver rebinds its occurrence/watcher lists, and the arena is
// verified ref-by-ref against the model: contents, flags, activity, the
// wasted-words counter, and the stability of the original-clause prefix.
// This mirrors the FuzzRead harness in internal/qdimacs (which found real
// reader bugs): the arena is the one structure whose silent corruption the
// engine could not detect by itself.
func FuzzArena(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 0, 1, 2, 3, 4})
	f.Add([]byte{0, 5, 10, 1, 6, 11, 2, 0, 4, 0, 7, 12, 2, 0, 4})
	f.Add([]byte{1, 9, 9, 9, 2, 0, 2, 0, 4, 4, 3, 1, 0, 2, 2, 1, 4})
	f.Add([]byte{0, 255, 254, 253, 252, 251, 250, 4, 2, 0, 4, 0, 1, 2, 4})
	f.Fuzz(func(t *testing.T, in []byte) {
		type mc struct {
			ref     int32
			lits    []qbf.Lit
			isCube  bool
			deleted bool
			act     float32
		}
		var a arena
		pos := 0
		next := func() byte {
			if pos >= len(in) {
				return 0
			}
			b := in[pos]
			pos++
			return b
		}
		decodeLits := func() []qbf.Lit {
			n := 1 + int(next()%6)
			lits := make([]qbf.Lit, 0, n)
			for i := 0; i < n; i++ {
				b := next()
				v := 1 + int(b%50)
				l := qbf.Var(v).PosLit()
				if b&64 != 0 {
					l = qbf.Var(v).NegLit()
				}
				lits = append(lits, l)
			}
			return lits
		}

		// Fixed original prefix: refs below origEnd must never move.
		var originals []mc
		for i := 0; i < 3; i++ {
			lits := decodeLits()
			ref := int32(a.alloc(lits, false, false))
			originals = append(originals, mc{ref: ref, lits: lits, act: 1})
		}
		origEnd := a.end()

		var model []mc
		live := func() []int { // indexes of live learned model entries
			var out []int
			for i := range model {
				if !model[i].deleted {
					out = append(out, i)
				}
			}
			return out
		}
		verify := func(stage string) {
			t.Helper()
			wantWasted := 0
			for _, m := range append(append([]mc{}, originals...), model...) {
				if m.deleted {
					wantWasted += hdrWords + len(m.lits)
					continue
				}
				ci := int(m.ref)
				if a.deleted(ci) {
					t.Fatalf("%s: live constraint at ref %d reads as deleted", stage, ci)
				}
				if a.isCube(ci) != m.isCube || a.size(ci) != len(m.lits) {
					t.Fatalf("%s: ref %d header mismatch: cube=%v size=%d, want cube=%v size=%d",
						stage, ci, a.isCube(ci), a.size(ci), m.isCube, len(m.lits))
				}
				for k, l := range m.lits {
					if a.lit(ci, k) != l {
						t.Fatalf("%s: ref %d literal %d is %d, want %d", stage, ci, k, a.lit(ci, k), l)
					}
				}
				if got := float32(a.activity(ci)); got != m.act {
					t.Fatalf("%s: ref %d activity %v, want %v", stage, ci, got, m.act)
				}
			}
			if a.wasted != wantWasted {
				t.Fatalf("%s: arena wasted=%d, model says %d", stage, a.wasted, wantWasted)
			}
		}

		steps := 0
		for pos < len(in) && steps < 512 {
			steps++
			op := next() % 5
			switch op {
			case 0, 1:
				lits := decodeLits()
				ref := int32(a.alloc(lits, op == 1, true))
				model = append(model, mc{ref: ref, lits: lits, isCube: op == 1, act: 1})
			case 2:
				lv := live()
				if len(lv) == 0 {
					continue
				}
				i := lv[int(next())%len(lv)]
				a.del(int(model[i].ref))
				model[i].deleted = true
			case 3:
				lv := live()
				if len(lv) == 0 {
					continue
				}
				i := lv[int(next())%len(lv)]
				a.bumpActivity(int(model[i].ref))
				model[i].act = float32(float64(model[i].act) + 1)
			case 4:
				olds, news := a.compactFrom(origEnd)
				// Rebind the model's refs exactly like the solver rebinds
				// its occurrence and watcher lists, and drop deleted
				// entries — their targets no longer exist.
				var kept []mc
				for _, m := range model {
					if m.deleted {
						continue
					}
					m.ref = rebind(m.ref, olds, news)
					kept = append(kept, m)
				}
				model = kept
				// Original refs must be fixed points of every mapping.
				for _, o := range originals {
					if got := rebind(o.ref, olds, news); got != o.ref {
						t.Fatalf("compaction moved original ref %d to %d", o.ref, got)
					}
				}
				// The mapping must be strictly ascending (rebind binary-searches it).
				for i := 1; i < len(olds); i++ {
					if olds[i] <= olds[i-1] {
						t.Fatalf("compaction mapping not ascending: olds=%v", olds)
					}
				}
			}
			verify("step")
		}
		// Final compaction must always leave a dense, fully live arena.
		olds, news := a.compactFrom(origEnd)
		var kept []mc
		for _, m := range model {
			if m.deleted {
				continue
			}
			m.ref = rebind(m.ref, olds, news)
			kept = append(kept, m)
		}
		model = kept
		verify("final")
		want := origEnd
		for _, m := range model {
			want += hdrWords + len(m.lits)
		}
		if a.end() != want {
			t.Fatalf("compacted arena holds %d words, model says %d", a.end(), want)
		}
		for ci := 0; ci < a.end(); ci = a.next(ci) {
			if a.deleted(ci) {
				t.Fatalf("deleted constraint %d survived compaction", ci)
			}
		}
	})
}
