//go:build !qbfdebug

package core

import "repro/internal/qbf"

// Release builds skip the semantic re-derivation of imported constraints;
// the structural checks in importShared (sanitizeImport plus reduction
// against the solver's own prefix) still run.

func (s *Solver) attachImportOracle(work *qbf.QBF) {}

func (s *Solver) checkImportedConstraint(lits []qbf.Lit, isCube bool) {}
