//go:build !qbfdebug

package core

// injectFault is a no-op without the qbfdebug build tag; the compiler
// inlines the empty body away, so the fixpoint loop pays nothing for the
// fault-injection harness in release builds.
func (s *Solver) injectFault(int64) {}
