package core

import (
	"repro/internal/qbf"
	"repro/internal/telemetry"
)

// The branching heuristic follows Section VI. Each literal carries a score
// initialized to its occurrence counter (for an existential literal its
// own; for a universal literal its complement's — a universal branch is
// useful where assigning it shrinks clauses) and updated as a decaying sum
// of learning activity: QUBE periodically halves the score and adds the
// variation of the counter, which ranks literals by an exponential moving
// average of how often they appear in recently learned constraints. We
// realize the same ranking with the multiplicative-increment formulation
// (bump by a growing increment on every learned constraint, occasionally
// rescaling), which avoids full-array sweeps on the hot path.
//
// In ModeTotalOrder literals are ranked by (prefix level, score, id): the
// queue of QUBE(TO). In ModePartialOrder the effective score of a literal
// is its raw score plus the block bonus: the maximum effective score of
// the literals one alternation deeper in its scope. This realizes the
// QUBE(PO) invariant that |l| ≺ |l'| implies score(l) ≥ score(l'), while
// on a SAT instance (a single existential block) every bonus is 0 and the
// heuristic degrades to plain VSIDS.

const (
	bonusRebuildPeriod = 16
	scoreIncGrowth     = 1.1
	scoreRescaleAt     = 1e100
	restartUnit        = 64
)

// rawScore returns the decayed activity score of a literal.
func (s *Solver) rawScore(l qbf.Lit) float64 {
	return s.score[litIdx(l)]
}

// assocCounter returns the counter associated with l per Section VI.
func (s *Solver) assocCounter(l qbf.Lit) int {
	if s.quant[l.Var()] == qbf.Exists {
		return s.counter[litIdx(l)]
	}
	return s.counter[litIdx(l.Neg())]
}

// bumpConstraint bumps the scores of a freshly learned constraint's
// literals and advances the decay.
func (s *Solver) bumpConstraint(lits []qbf.Lit) {
	for _, l := range lits {
		s.score[litIdx(l)] += s.scoreInc
	}
	s.scoreInc *= scoreIncGrowth
	if s.scoreInc > scoreRescaleAt {
		for i := range s.score {
			s.score[i] /= scoreRescaleAt
		}
		s.scoreInc /= scoreRescaleAt
	}
	s.scoreTicks++
	if s.scoreTicks%bonusRebuildPeriod == 0 {
		s.rebuildBlockBonus()
	}
}

// rebuildBlockBonus recomputes, bottom-up, the PO mode bonus of every
// block: the maximum effective score among literals one alternation deeper
// in the block's scope (Section VI).
func (s *Solver) rebuildBlockBonus() {
	if s.opt.Mode != ModePartialOrder {
		return
	}
	maxLit := make([]float64, len(s.blocks))
	// Blocks are stored in DFS preorder, so children follow parents:
	// iterate in reverse for a post-order pass.
	for i := len(s.blocks) - 1; i >= 0; i-- {
		b := &s.blocks[i]
		bonus := 0.0
		for _, c := range b.children {
			var contrib float64
			if s.blocks[c].level == b.level+1 {
				contrib = maxLit[c]
			} else {
				contrib = s.blockBonus[c]
			}
			if contrib > bonus {
				bonus = contrib
			}
		}
		s.blockBonus[i] = bonus
		best := 0.0
		for _, v := range b.vars {
			if p := s.rawScore(v.PosLit()); p > best {
				best = p
			}
			if n := s.rawScore(v.NegLit()); n > best {
				best = n
			}
		}
		maxLit[i] = best + bonus
	}
}

// initScores sets the initial scores to the associated counters, as in
// Section VI, and computes the initial block bonuses. A non-zero
// Options.ScoreSeed adds deterministic sub-unit jitter so that literals
// with equal counters rank differently per seed — integer counter
// differences still dominate, only ties are reshuffled.
func (s *Solver) initScores() {
	s.scoreInc = 1
	for v := qbf.MinVar; v.Int() <= s.nVars; v++ {
		for _, l := range [2]qbf.Lit{v.PosLit(), v.NegLit()} {
			i := litIdx(l)
			s.lastCounter[i] = s.assocCounter(l)
			s.score[i] = float64(s.lastCounter[i])
			if s.opt.ScoreSeed != 0 {
				s.score[i] += scoreJitter(s.opt.ScoreSeed, uint64(i))
			}
		}
	}
	s.rebuildBlockBonus()
}

// scoreJitter maps (seed, literal index) to a deterministic value in
// [0, 1) via a splitmix64 step — cheap, stateless, and identical across
// platforms, which keeps seeded runs reproducible.
func scoreJitter(seed int64, i uint64) float64 {
	z := uint64(seed) ^ (i+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// pickBranch selects the next branching literal among the branchable
// variables (those whose ≺-predecessors are all assigned), or reports that
// none remain.
func (s *Solver) pickBranch() (qbf.Lit, bool) {
	var (
		found     bool
		bestLit   qbf.Lit
		bestLevel int
		bestScore float64
	)
	better := func(level int, score float64, l qbf.Lit) bool {
		if !found {
			return true
		}
		if s.opt.Mode == ModeTotalOrder {
			if level != bestLevel {
				return level < bestLevel
			}
		}
		if score != bestScore {
			return score > bestScore
		}
		// Ties break toward the outermost block: the PO bonus makes an
		// ancestor's score ≥ its descendants', so without this rule an
		// exact tie could branch a descendant before its ≺-ancestor in
		// the same chain, wasting the partial-order freedom.
		if level != bestLevel {
			return level < bestLevel
		}
		return l.Var() < bestLit.Var()
	}
	for bi := range s.blocks {
		b := &s.blocks[bi]
		if b.unassigned == 0 || b.guardOpen > 0 {
			continue
		}
		for _, v := range b.vars {
			if s.value[v] != undef {
				continue
			}
			l := v.PosLit()
			sc := s.rawScore(l)
			if n := s.rawScore(v.NegLit()); n > sc {
				l, sc = v.NegLit(), n
			}
			if s.opt.Mode == ModePartialOrder {
				sc += s.blockBonus[bi]
			}
			if better(b.level, sc, l) {
				found, bestLit, bestLevel, bestScore = true, l, b.level, sc
			}
		}
	}
	return bestLit, found
}

// luby returns the i-th element (1-based) of the Luby restart sequence
// 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …
func luby(i int) int64 {
	for k := 1; ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i < (1<<k)-1 {
			return luby(i - (1 << (k - 1)) + 1)
		}
	}
}

// maybeRestart abandons the current branch after a Luby-scheduled number
// of learning events, keeping the learned constraint database. Restart
// intervals grow without bound, so completeness is preserved.
func (s *Solver) maybeRestart() {
	s.restartEvents++
	if s.restartEvents < s.restartLimit || s.level == 0 {
		return
	}
	s.restartEvents = 0
	s.lubyIndex++
	s.restartLimit = luby(s.lubyIndex) * restartUnit
	s.backtrack(0)
	s.stats.Restarts++
	s.emitEv(telemetry.KindRestart, 0, int64(s.lubyIndex), s.restartLimit)
}
