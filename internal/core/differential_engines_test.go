package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/qbf"
)

// This file is the cross-engine differential net guarding the
// watched-literal propagation engine: every instance is solved by both the
// watcher engine (the default) and the retained occurrence-counter engine,
// and any verdict disagreement — between the engines or against the
// exponential semantic oracle — is a failure. The pool mixes random
// quantifier trees, random prenex instances, wide trees, deep-alternation
// instances, and adversarial fixed formulas (pigeonhole instances that
// force heavy learning, DB reduction, and arena compaction). scripts/check.sh
// runs the suite under -race and under -tags qbfdebug, where every solve
// additionally recomputes the watcher invariants at each fixpoint.

// bothEngines returns opt specialized to the watcher and counter engines.
func bothEngines(opt Options) [2]Options {
	w, c := opt, opt
	w.Propagation = PropWatched
	c.Propagation = PropCounters
	return [2]Options{w, c}
}

// crossEngineSolve solves q under opt with both engines, fails the test on
// any disagreement (engine vs engine, or engine vs oracle when the oracle
// verdict is known), and returns the agreed verdict.
func crossEngineSolve(t *testing.T, q *qbf.QBF, opt Options, oracle Verdict, label string) {
	t.Helper()
	engines := bothEngines(opt)
	var got [2]Verdict
	for i, eo := range engines {
		r, err := Solve(context.Background(), q, eo)
		if err != nil {
			t.Fatalf("%s: engine=%v: %v\nQBF: %v", label, eo.Propagation, err, q)
		}
		if r.Verdict == Unknown {
			t.Fatalf("%s: engine=%v returned Unknown (stop=%v)\nQBF: %v",
				label, eo.Propagation, r.Stats.StopReason, q)
		}
		got[i] = r.Verdict
	}
	if got[0] != got[1] {
		t.Fatalf("%s: ENGINE DISAGREEMENT: watched=%v counters=%v\nopts=%+v\nQBF: %v",
			label, got[0], got[1], opt, q)
	}
	if oracle != Unknown && got[0] != oracle {
		t.Fatalf("%s: both engines say %v but the oracle says %v\nopts=%+v\nQBF: %v",
			label, got[0], oracle, opt, q)
	}
}

// engineComboOptions is the option rotation of the differential suite. The
// MaxLearned: 4 combo keeps the learned databases tiny so every few
// conflicts trigger a reduction round — and with it arena deletion,
// compaction, and ref rebinding on both engines.
func engineComboOptions(mode Mode) []Options {
	return []Options{
		{Mode: mode, CheckInvariants: true},
		{Mode: mode, MaxLearned: 4, CheckInvariants: true},
		{Mode: mode, DisablePureLiterals: true, CheckInvariants: true},
	}
}

func oracleVerdict(q *qbf.QBF) Verdict {
	want, ok := qbf.EvalWithBudget(q, 2_000_000)
	if !ok {
		return Unknown // cross-engine comparison still applies
	}
	if want {
		return True
	}
	return False
}

// TestCrossEngineRandomTrees: random scope-consistent non-prenex trees.
func TestCrossEngineRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(811))
	n := 100
	if testing.Short() {
		n = 25
	}
	for i := 0; i < n; i++ {
		q := qbf.RandomQBF(rng, 12, 14)
		oracle := oracleVerdict(q)
		for _, opt := range engineComboOptions(ModePartialOrder) {
			crossEngineSolve(t, q, opt, oracle, fmt.Sprintf("tree %d", i))
		}
	}
}

// TestCrossEngineRandomPrenex: prenex instances in both branching modes.
func TestCrossEngineRandomPrenex(t *testing.T) {
	rng := rand.New(rand.NewSource(813))
	n := 80
	if testing.Short() {
		n = 20
	}
	for i := 0; i < n; i++ {
		q := randomPrenexQBF(rng, 10, 18, 4)
		oracle := oracleVerdict(q)
		mode := ModePartialOrder
		if i%2 == 1 {
			mode = ModeTotalOrder
		}
		for _, opt := range engineComboOptions(mode) {
			crossEngineSolve(t, q, opt, oracle, fmt.Sprintf("prenex %d", i))
		}
	}
}

// TestCrossEngineWideTrees: many sibling ∀∃ branches — the shape where
// partial-order branching and cube learning interact the most.
func TestCrossEngineWideTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(817))
	n := 40
	if testing.Short() {
		n = 10
	}
	for i := 0; i < n; i++ {
		q := randomWideTree(rng)
		oracle := oracleVerdict(q)
		for _, opt := range engineComboOptions(ModePartialOrder) {
			crossEngineSolve(t, q, opt, oracle, fmt.Sprintf("wide %d", i))
		}
	}
}

// TestCrossEngineDeepAlternation: up to 8 alternating blocks, stressing
// the quantifier-aware watch ranking (≺-deepest selection) hardest.
func TestCrossEngineDeepAlternation(t *testing.T) {
	rng := rand.New(rand.NewSource(819))
	n := 30
	if testing.Short() {
		n = 8
	}
	for i := 0; i < n; i++ {
		q := randomPrenexQBF(rng, 12, 20, 8)
		oracle := oracleVerdict(q)
		for _, opt := range engineComboOptions(ModePartialOrder) {
			crossEngineSolve(t, q, opt, oracle, fmt.Sprintf("alt %d", i))
		}
	}
}

// TestCrossEngineAdversarial: fixed formulas chosen to be propagation- and
// learning-bound. The pigeonhole instances are FALSE, resolution-hard, and
// drive thousands of conflicts through learning, reduction, and compaction;
// the all-universal dual is decided almost purely by propagation.
func TestCrossEngineAdversarial(t *testing.T) {
	cases := []struct {
		name   string
		q      *qbf.QBF
		want   Verdict
		combos []Options
	}{
		{"php4", phpFormula(4), False, engineComboOptions(ModePartialOrder)},
		{"php5", phpFormula(5), False, engineComboOptions(ModePartialOrder)},
		{"php6", phpFormula(6), False, []Options{
			{Mode: ModePartialOrder, CheckInvariants: true},
			{Mode: ModePartialOrder, MaxLearned: 16, CheckInvariants: true},
		}},
	}
	if testing.Short() {
		cases = cases[:2]
	}
	for _, tc := range cases {
		for _, opt := range tc.combos {
			crossEngineSolve(t, tc.q, opt, tc.want, tc.name)
		}
	}
}
