package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/qbf"
)

// This file is the differential net guarding the watched-literal
// propagation engine: every instance is solved under a rotation of option
// combos, and any verdict disagreement — between the combos or against the
// exponential semantic oracle — is a failure. The pool mixes random
// quantifier trees, random prenex instances, wide trees, deep-alternation
// instances, and adversarial fixed formulas (pigeonhole instances that
// force heavy learning, DB reduction, and arena compaction). scripts/check.sh
// runs the suite under -race and under -tags qbfdebug, where every solve
// additionally recomputes the watcher invariants at each fixpoint.

// differentialSolve solves q under every combo, fails the test on any
// disagreement (combo vs combo, or combo vs oracle when the oracle verdict
// is known).
func differentialSolve(t *testing.T, q *qbf.QBF, combos []Options, oracle Verdict, label string) {
	t.Helper()
	agreed := Unknown
	for ci, opt := range combos {
		r, err := Solve(context.Background(), q, opt)
		if err != nil {
			t.Fatalf("%s: combo=%d: %v\nQBF: %v", label, ci, err, q)
		}
		if r.Verdict == Unknown {
			t.Fatalf("%s: combo=%d returned Unknown (stop=%v)\nQBF: %v",
				label, ci, r.Stats.StopReason, q)
		}
		if agreed != Unknown && r.Verdict != agreed {
			t.Fatalf("%s: COMBO DISAGREEMENT: combo %d says %v, earlier combos said %v\nopts=%+v\nQBF: %v",
				label, ci, r.Verdict, agreed, opt, q)
		}
		agreed = r.Verdict
	}
	if oracle != Unknown && agreed != oracle {
		t.Fatalf("%s: every combo says %v but the oracle says %v\nQBF: %v",
			label, agreed, oracle, q)
	}
}

// comboOptions is the option rotation of the differential suite. The
// MaxLearned: 4 combo keeps the learned databases tiny so every few
// conflicts trigger a reduction round — and with it arena deletion,
// compaction, and ref rebinding.
func comboOptions(mode Mode) []Options {
	return []Options{
		{Mode: mode, CheckInvariants: true},
		{Mode: mode, MaxLearned: 4, CheckInvariants: true},
		{Mode: mode, DisablePureLiterals: true, CheckInvariants: true},
	}
}

func oracleVerdict(q *qbf.QBF) Verdict {
	want, ok := qbf.EvalWithBudget(q, 2_000_000)
	if !ok {
		return Unknown // combo cross-comparison still applies
	}
	if want {
		return True
	}
	return False
}

// TestComboAgreementRandomTrees: random scope-consistent non-prenex trees.
func TestComboAgreementRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(811))
	n := 100
	if testing.Short() {
		n = 25
	}
	for i := 0; i < n; i++ {
		q := qbf.RandomQBF(rng, 12, 14)
		differentialSolve(t, q, comboOptions(ModePartialOrder), oracleVerdict(q), fmt.Sprintf("tree %d", i))
	}
}

// TestComboAgreementRandomPrenex: prenex instances in both branching modes.
func TestComboAgreementRandomPrenex(t *testing.T) {
	rng := rand.New(rand.NewSource(813))
	n := 80
	if testing.Short() {
		n = 20
	}
	for i := 0; i < n; i++ {
		q := randomPrenexQBF(rng, 10, 18, 4)
		mode := ModePartialOrder
		if i%2 == 1 {
			mode = ModeTotalOrder
		}
		differentialSolve(t, q, comboOptions(mode), oracleVerdict(q), fmt.Sprintf("prenex %d", i))
	}
}

// TestComboAgreementWideTrees: many sibling ∀∃ branches — the shape where
// partial-order branching and cube learning interact the most.
func TestComboAgreementWideTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(817))
	n := 40
	if testing.Short() {
		n = 10
	}
	for i := 0; i < n; i++ {
		q := randomWideTree(rng)
		differentialSolve(t, q, comboOptions(ModePartialOrder), oracleVerdict(q), fmt.Sprintf("wide %d", i))
	}
}

// TestComboAgreementDeepAlternation: up to 8 alternating blocks, stressing
// the quantifier-aware watch ranking (≺-deepest selection) hardest.
func TestComboAgreementDeepAlternation(t *testing.T) {
	rng := rand.New(rand.NewSource(819))
	n := 30
	if testing.Short() {
		n = 8
	}
	for i := 0; i < n; i++ {
		q := randomPrenexQBF(rng, 12, 20, 8)
		differentialSolve(t, q, comboOptions(ModePartialOrder), oracleVerdict(q), fmt.Sprintf("alt %d", i))
	}
}

// TestComboAgreementAdversarial: fixed formulas chosen to be propagation- and
// learning-bound. The pigeonhole instances are FALSE, resolution-hard, and
// drive thousands of conflicts through learning, reduction, and compaction.
func TestComboAgreementAdversarial(t *testing.T) {
	cases := []struct {
		name   string
		q      *qbf.QBF
		want   Verdict
		combos []Options
	}{
		{"php4", phpFormula(4), False, comboOptions(ModePartialOrder)},
		{"php5", phpFormula(5), False, comboOptions(ModePartialOrder)},
		{"php6", phpFormula(6), False, []Options{
			{Mode: ModePartialOrder, CheckInvariants: true},
			{Mode: ModePartialOrder, MaxLearned: 16, CheckInvariants: true},
		}},
	}
	if testing.Short() {
		cases = cases[:2]
	}
	for _, tc := range cases {
		for _, opt := range tc.combos {
			differentialSolve(t, tc.q, []Options{opt}, tc.want, tc.name)
		}
	}
}
