package portfolio

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/qbf"
)

// Ring is a bounded, lock-free, multi-producer/multi-consumer queue of
// shared constraints (Vyukov's bounded MPMC algorithm): every slot carries
// a sequence number that encodes, relative to the enqueue and dequeue
// cursors, whether it is free or full. Push and Pop are wait-free in the
// absence of contention and never block; a full ring rejects the push
// instead of overwriting, so the accept/deliver contract is exact — every
// accepted constraint is delivered exactly once, and a rejected push is
// reported to the producer, never silently dropped in transit.
type Ring struct {
	mask  uint64
	slots []ringSlot

	_   [56]byte // keep the hot cursors on separate cache lines
	enq atomic.Uint64
	_   [56]byte
	deq atomic.Uint64
}

type ringSlot struct {
	seq atomic.Uint64
	val core.Shared
}

// NewRing returns a ring with capacity rounded up to a power of two (and
// at least 2).
func NewRing(capacity int) *Ring {
	n := 2
	for n < capacity {
		n <<= 1
	}
	r := &Ring{mask: uint64(n - 1), slots: make([]ringSlot, n)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the ring's slot capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// TryPush enqueues v, reporting false when the ring is full. The caller
// must treat v.Lits as immutable after a successful push.
func (r *Ring) TryPush(v core.Shared) bool {
	pos := r.enq.Load()
	for {
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos:
			if r.enq.CompareAndSwap(pos, pos+1) {
				slot.val = v
				slot.seq.Store(pos + 1)
				return true
			}
			pos = r.enq.Load()
		case seq < pos:
			// The slot still holds an unconsumed value from mask+1
			// positions ago: the ring is full.
			return false
		default:
			pos = r.enq.Load()
		}
	}
}

// TryPop dequeues the oldest constraint, reporting false when the ring is
// empty.
func (r *Ring) TryPop() (core.Shared, bool) {
	pos := r.deq.Load()
	for {
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos+1:
			if r.deq.CompareAndSwap(pos, pos+1) {
				v := slot.val
				slot.val = core.Shared{}
				slot.seq.Store(pos + r.mask + 1)
				return v, true
			}
			pos = r.deq.Load()
		case seq < pos+1:
			return core.Shared{}, false // empty
		default:
			pos = r.deq.Load()
		}
	}
}

// Drain pops up to max constraints (all buffered ones when max <= 0).
func (r *Ring) Drain(max int) []core.Shared {
	if max <= 0 {
		max = len(r.slots)
	}
	var out []core.Shared
	for len(out) < max {
		v, ok := r.TryPop()
		if !ok {
			break
		}
		out = append(out, v)
	}
	return out
}

// Exchange routes short learned constraints between portfolio workers.
// Every worker owns one inbox ring; publishing copies the constraint once
// and offers the copy (treated as immutable from then on) to the inbox of
// every *same-group* peer. Groups partition workers by the quantifier
// structure they solve under — constraint exchange is only sound between
// solvers of the identical (prefix, matrix) pair, so a tree-form worker
// never feeds a prenexed one or vice versa (see DESIGN.md §8).
type Exchange struct {
	maxLen  int
	groups  []int
	inboxes []*Ring

	exported atomic.Int64
	dropped  atomic.Int64
}

// NewExchange builds an exchange for len(groups) workers; groups[i] is
// worker i's structure-group id. ringCap is the per-inbox capacity (0 =
// 512 slots) and maxLen the length bound on exported constraints (0 = 8
// literals; longer learned constraints propagate rarely and cost memory on
// every receiver, so only short ones travel).
func NewExchange(groups []int, ringCap, maxLen int) *Exchange {
	if ringCap <= 0 {
		ringCap = 512
	}
	if maxLen <= 0 {
		maxLen = 8
	}
	e := &Exchange{
		maxLen:  maxLen,
		groups:  append([]int(nil), groups...),
		inboxes: make([]*Ring, len(groups)),
	}
	for i := range e.inboxes {
		e.inboxes[i] = NewRing(ringCap)
	}
	return e
}

// Publish offers a constraint learned by worker `from` to every same-group
// peer. Over-long constraints are ignored; a full peer inbox drops that
// peer's copy (sharing is best-effort — losing a redundant learned
// constraint never affects soundness or completeness). It reports how many
// peer inboxes accepted.
func (e *Exchange) Publish(from int, lits []core.Shared) int {
	accepted := 0
	for _, sc := range lits {
		if len(sc.Lits) == 0 || len(sc.Lits) > e.maxLen {
			continue
		}
		copied := core.Shared{Lits: append([]qbf.Lit(nil), sc.Lits...), IsCube: sc.IsCube}
		for j := range e.inboxes {
			if j == from || e.groups[j] != e.groups[from] {
				continue
			}
			if e.inboxes[j].TryPush(copied) {
				accepted++
				e.exported.Add(1)
			} else {
				e.dropped.Add(1)
			}
		}
	}
	return accepted
}

// Collect drains up to max constraints from worker i's inbox.
func (e *Exchange) Collect(i, max int) []core.Shared {
	return e.inboxes[i].Drain(max)
}

// Totals reports the exchange-wide accepted and dropped publication
// counts.
func (e *Exchange) Totals() (exported, dropped int64) {
	return e.exported.Load(), e.dropped.Load()
}
