package portfolio

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/qbf"
)

// payload builds a recognizable constraint: producer id and sequence number
// are encoded in the literals so corruption and duplication are detectable.
func payload(producer, seq int) core.Shared {
	return core.Shared{
		Lits:   []qbf.Lit{qbf.Var(producer + 1).PosLit(), qbf.Var(seq + 100).NegLit()},
		IsCube: seq%2 == 0,
	}
}

func decode(t *testing.T, sc core.Shared) (producer, seq int) {
	t.Helper()
	if len(sc.Lits) != 2 {
		t.Fatalf("corrupt payload: %v", sc)
	}
	producer = int(sc.Lits[0].Var()) - 1
	seq = int(sc.Lits[1].Var()) - 100
	if !sc.Lits[0].Positive() || sc.Lits[1].Positive() || sc.IsCube != (seq%2 == 0) {
		t.Fatalf("corrupt payload: %v", sc)
	}
	return producer, seq
}

func TestRingFIFOSingleThread(t *testing.T) {
	r := NewRing(8)
	if r.Cap() != 8 {
		t.Fatalf("cap = %d, want 8", r.Cap())
	}
	for i := 0; i < 8; i++ {
		if !r.TryPush(payload(0, i)) {
			t.Fatalf("push %d rejected on non-full ring", i)
		}
	}
	if r.TryPush(payload(0, 99)) {
		t.Fatal("push accepted on full ring")
	}
	for i := 0; i < 8; i++ {
		v, ok := r.TryPop()
		if !ok {
			t.Fatalf("pop %d failed on non-empty ring", i)
		}
		if _, seq := decode(t, v); seq != i {
			t.Fatalf("pop %d: got seq %d, want FIFO order", i, seq)
		}
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("pop succeeded on empty ring")
	}
	// The ring must be reusable after wrapping.
	for round := 0; round < 3; round++ {
		for i := 0; i < 5; i++ {
			if !r.TryPush(payload(1, i)) {
				t.Fatalf("round %d: push %d rejected", round, i)
			}
		}
		if got := len(r.Drain(0)); got != 5 {
			t.Fatalf("round %d: drained %d, want 5", round, got)
		}
	}
}

func TestRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, 2}, {1, 2}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16}} {
		if got := NewRing(tc.in).Cap(); got != tc.want {
			t.Errorf("NewRing(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestRingMPMCStress is the exchange-ring concurrency stress: 4 producers
// and 4 consumers (8 goroutines) hammer one deliberately tiny ring, forcing
// constant wrap-around, full-side rejection and empty-side retries, and the
// accept/deliver contract is checked exactly: every accepted push is
// delivered exactly once with an intact payload, and nothing else is ever
// delivered. Under -race this also exercises the algorithm's publication
// ordering (slot value written before its sequence number is released).
func TestRingMPMCStress(t *testing.T) {
	const (
		producers = 4
		consumers = 4
	)
	perProd := 5000
	if testing.Short() {
		perProd = 1000
	}
	r := NewRing(16)

	accepted := make([][]int, producers)
	var prodWG sync.WaitGroup
	for p := 0; p < producers; p++ {
		prodWG.Add(1)
		go func(p int) {
			defer prodWG.Done()
			for seq := 0; seq < perProd; seq++ {
				if r.TryPush(payload(p, seq)) {
					accepted[p] = append(accepted[p], seq)
				}
			}
		}(p)
	}

	var (
		mu        sync.Mutex
		delivered = map[string]int{}
		stop      = make(chan struct{})
		consWG    sync.WaitGroup
	)
	for c := 0; c < consumers; c++ {
		consWG.Add(1)
		go func() {
			defer consWG.Done()
			local := map[string]int{}
			flush := func() {
				mu.Lock()
				for k, n := range local {
					delivered[k] += n
				}
				mu.Unlock()
			}
			for {
				v, ok := r.TryPop()
				if ok {
					p, seq := decode(t, v)
					local[fmt.Sprintf("%d/%d", p, seq)]++
					continue
				}
				select {
				case <-stop:
					// Producers are done and the ring read empty after
					// that: one final drain, then exit.
					for {
						v, ok := r.TryPop()
						if !ok {
							flush()
							return
						}
						p, seq := decode(t, v)
						local[fmt.Sprintf("%d/%d", p, seq)]++
					}
				default:
					runtime.Gosched() // don't starve producers on small GOMAXPROCS
				}
			}
		}()
	}

	prodWG.Wait()
	close(stop)
	consWG.Wait()

	want := map[string]int{}
	total := 0
	for p := range accepted {
		for _, seq := range accepted[p] {
			want[fmt.Sprintf("%d/%d", p, seq)]++
			total++
		}
	}
	if total == 0 {
		t.Fatal("stress accepted zero pushes — contention setup broken")
	}
	sum := 0
	for k, n := range delivered {
		if want[k] == 0 {
			t.Fatalf("delivered constraint %s was never accepted", k)
		}
		if n != want[k] {
			t.Fatalf("constraint %s: accepted %d, delivered %d (lost or duplicated)", k, want[k], n)
		}
		sum += n
	}
	if sum != total {
		t.Fatalf("delivered %d constraints, accepted %d", sum, total)
	}
	t.Logf("accepted and delivered %d/%d pushes through a %d-slot ring", total, producers*perProd, r.Cap())
}

// TestExchangeGroupIsolation checks the soundness gate: constraints never
// cross structure groups, and a worker never receives its own exports.
func TestExchangeGroupIsolation(t *testing.T) {
	// Workers 0,2 share group 0; workers 1,3 share group 1.
	e := NewExchange([]int{0, 1, 0, 1}, 8, 8)
	e.Publish(0, []core.Shared{payload(0, 1)})
	e.Publish(1, []core.Shared{payload(1, 2)})

	if got := e.Collect(0, 0); len(got) != 0 {
		t.Fatalf("worker 0 received its own export: %v", got)
	}
	if got := e.Collect(2, 0); len(got) != 1 {
		t.Fatalf("same-group peer got %d constraints, want 1", len(got))
	}
	if got := e.Collect(3, 0); len(got) != 1 {
		t.Fatalf("worker 3 got %d constraints, want 1 (from worker 1)", len(got))
	} else if p, _ := decode(t, got[0]); p != 1 {
		t.Fatalf("worker 3 received a cross-group constraint from worker %d", p)
	}
	if got := e.Collect(1, 0); len(got) != 0 {
		t.Fatalf("worker 1 received its own export: %v", got)
	}
}

// TestExchangeLengthBound checks that over-long constraints never travel.
func TestExchangeLengthBound(t *testing.T) {
	e := NewExchange([]int{0, 0}, 8, 2)
	long := core.Shared{Lits: []qbf.Lit{qbf.Var(1).PosLit(), qbf.Var(2).PosLit(), qbf.Var(3).PosLit()}}
	if n := e.Publish(0, []core.Shared{long}); n != 0 {
		t.Fatalf("over-long constraint accepted by %d inboxes", n)
	}
	if n := e.Publish(0, []core.Shared{payload(0, 0)}); n != 1 {
		t.Fatalf("short constraint accepted by %d inboxes, want 1", n)
	}
	exported, dropped := e.Totals()
	if exported != 1 || dropped != 0 {
		t.Fatalf("totals = (%d, %d), want (1, 0)", exported, dropped)
	}
}

// TestExchangePublishCopies checks that a published constraint is immune to
// the producer mutating its literal slice afterwards (solvers reuse
// learned-constraint buffers).
func TestExchangePublishCopies(t *testing.T) {
	e := NewExchange([]int{0, 0}, 8, 8)
	lits := []qbf.Lit{qbf.Var(1).PosLit(), qbf.Var(2).NegLit()}
	e.Publish(0, []core.Shared{{Lits: lits}})
	lits[0] = qbf.Var(9).PosLit() // producer reuses its buffer
	got := e.Collect(1, 0)
	if len(got) != 1 || got[0].Lits[0] != qbf.Var(1).PosLit() {
		t.Fatalf("published constraint aliased the producer buffer: %v", got)
	}
}
