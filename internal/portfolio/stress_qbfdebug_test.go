//go:build qbfdebug

package portfolio

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/qbf"
	"repro/internal/randqbf"
)

// TestPortfolioFaultInjectedCancellation injects cancellation mid-solve
// through the qbfdebug fault hook while constraint sharing is live: a
// designated worker cancels the whole portfolio at a pseudo-random
// propagation fixpoint, exactly as an asynchronous stop would land. The
// run must come back Unknown/StopCancelled (or with a sound verdict when a
// sibling won the race first) with every import passing the semantic
// re-derivation oracle that CheckInvariants arms, and a follow-up clean
// run on the same formula must still agree with the sequential solver —
// i.e. the torn-down exchange corrupted nothing that outlives the run.
func TestPortfolioFaultInjectedCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	rounds := 40
	if testing.Short() {
		rounds = 10
	}
	for round := 0; round < rounds; round++ {
		q := randqbf.Fixed(int64(round % 6))
		seqRRes, err := core.Solve(context.Background(), q, core.Options{Mode: core.ModePartialOrder})
		seqR := seqRRes.Verdict
		if err != nil {
			t.Fatalf("round %d: sequential: %v", round, err)
		}

		ctx, cancel := context.WithCancel(context.Background())
		fuse := int64(1 + rng.Intn(400))
		var fired atomic.Bool
		cfg := Options{
			Workers: 6, Share: true, MaxParallel: 2, SliceNodes: 64,
			Base: core.Options{CheckInvariants: true},
		}
		cfg.testSolverHook = func(i, attempt int, s *core.Solver) {
			if i != round%6 {
				return
			}
			s.SetFaultHook(func(fp int64) {
				if fp >= fuse && !fired.Swap(true) {
					cancel()
				}
			})
		}
		rep, err := Solve(ctx, q, cfg)
		cancel()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		switch rep.Verdict {
		case core.Unknown:
			if fired.Load() && rep.Stop != core.StopCancelled {
				t.Fatalf("round %d: cancelled run stopped with %v", round, rep.Stop)
			}
		default:
			if rep.Verdict != seqR {
				t.Fatalf("round %d: racing verdict %v disagrees with sequential %v (winner %s)",
					round, rep.Verdict, seqR, rep.WinnerName())
			}
		}
		for _, w := range rep.Workers {
			if w.Err != nil {
				t.Fatalf("round %d: worker %s failed: %v", round, w.Name, w.Err)
			}
		}

		// The same formula must still solve correctly afterwards: no state
		// leaked out of the cancelled exchange into the shared input.
		again := mustSolve(t, q, Options{Workers: 4, Share: true, MaxParallel: 2, SliceNodes: 64,
			Base: core.Options{CheckInvariants: true}})
		if again.Verdict != seqR {
			t.Fatalf("round %d: post-cancellation rerun says %v, sequential %v", round, again.Verdict, seqR)
		}
	}
}

// TestPortfolioFaultPanicContainment panics one worker mid-solve (through
// the fault hook) and requires the portfolio to contain it: the failing
// worker reports a PanicError, every other worker races on, and the
// verdict still agrees with the sequential solver.
func TestPortfolioFaultPanicContainment(t *testing.T) {
	for round := 0; round < 6; round++ {
		q := randqbf.Fixed(int64(round))
		seqRRes, err := core.Solve(context.Background(), q, core.Options{Mode: core.ModePartialOrder})
		seqR := seqRRes.Verdict
		if err != nil {
			t.Fatalf("round %d: sequential: %v", round, err)
		}
		// Deterministic scheduling runs worker 0 first, so its fuse cannot
		// be defused by a sibling winning the race beforehand.
		cfg := Options{Workers: 4, Share: true, Deterministic: true, SliceNodes: 64}
		cfg.testSolverHook = func(i, attempt int, s *core.Solver) {
			if i == 0 {
				s.SetFaultHook(func(fp int64) {
					if fp == 3 {
						panic("injected portfolio fault")
					}
				})
			}
		}
		rep, err := Solve(context.Background(), q, cfg)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if rep.Verdict != seqR {
			t.Fatalf("round %d: verdict %v != sequential %v", round, rep.Verdict, seqR)
		}
		w0 := rep.Workers[0]
		if w0.Err == nil {
			t.Fatalf("round %d: injected panic vanished (worker report %+v)", round, w0)
		}
		var pe *core.PanicError
		if !errors.As(w0.Err, &pe) {
			t.Fatalf("round %d: worker error %v is not a PanicError", round, w0.Err)
		}
		if rep.Winner == 0 {
			t.Fatalf("round %d: panicked worker won", round)
		}
	}
}

// TestPortfolioImportOracleUnderStress runs sharing-heavy portfolios with
// the import oracle armed on small formulas: every imported constraint is
// re-derived semantically (share_qbfdebug.go), so a single unsound share
// fails the run loudly.
func TestPortfolioImportOracleUnderStress(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	n := 40
	if testing.Short() {
		n = 10
	}
	for i := 0; i < n; i++ {
		q := qbf.RandomQBF(rng, 12, 16)
		rep := mustSolve(t, q, Options{Workers: 6, Share: true, MaxParallel: 3, SliceNodes: 32,
			Base: core.Options{CheckInvariants: true}})
		if rep.Verdict == core.Unknown {
			t.Fatalf("instance %d: unlimited run came back Unknown (stop %v)", i, rep.Stop)
		}
		if want, ok := qbf.EvalWithBudget(q, 2_000_000); ok && (rep.Verdict == core.True) != want {
			t.Fatalf("instance %d: %v disagrees with oracle", i, rep.Verdict)
		}
	}
}
