package portfolio

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/prenex"
	"repro/internal/qbf"
)

// WorkerConfig is one portfolio configuration: which form of the formula
// the worker solves, with which engine options, and whether it runs as a
// restart-free node-limit ladder (fresh solver per attempt with a
// geometrically growing decision budget) instead of a single resumable
// search.
type WorkerConfig struct {
	// Name identifies the configuration in reports and golden output.
	Name string
	// Options are the engine options (Mode, learning toggles, ScoreSeed…).
	// Resource limits are overridden by the portfolio's own budgets.
	Options core.Options
	// Prenexed selects solving the prenex conversion of a tree input under
	// Strategy (required for ModeTotalOrder on non-prenex inputs). On an
	// already-prenex input it is ignored — every worker then shares one
	// structure group.
	Prenexed bool
	Strategy prenex.Strategy
	// Relaunch runs the worker as a restart-free node-limit ladder: each
	// attempt builds a fresh solver with a larger decision budget, so the
	// heuristic re-ranks from scratch instead of restarting in place —
	// diversity the resumable workers cannot provide. Relaunched attempts
	// re-import shared constraints from their group as they run.
	Relaunch bool
}

// DefaultSchedule builds n diverse configurations for q, cycling a fixed
// pattern table with per-index heuristic seeds: the paper's two heuristics
// (partial order on the tree, total order on prenex conversions under
// different strategies), learning and pure-literal toggles, and
// restart-free relaunch ladders. Worker 0 is always the default
// partial-order configuration — the sequential solver's — so a portfolio
// of size 1 degenerates exactly to the sequential engine.
func DefaultSchedule(q *qbf.QBF, n int) []WorkerConfig {
	if n < 1 {
		n = 1
	}
	prenexInput := q != nil && q.Prefix.IsPrenex()
	out := make([]WorkerConfig, 0, n)
	for i := 0; len(out) < n; i++ {
		var w WorkerConfig
		switch i % 8 {
		case 0:
			w = WorkerConfig{Name: "po-default", Options: core.Options{Mode: core.ModePartialOrder}}
		case 1:
			w = WorkerConfig{Name: "to-eu-au", Options: core.Options{Mode: core.ModeTotalOrder},
				Prenexed: true, Strategy: prenex.EUpAUp}
		case 2:
			w = WorkerConfig{Name: "po-nocube", Options: core.Options{Mode: core.ModePartialOrder,
				DisableCubeLearning: true}}
		case 3:
			w = WorkerConfig{Name: "po-relaunch", Options: core.Options{Mode: core.ModePartialOrder},
				Relaunch: true}
		case 4:
			w = WorkerConfig{Name: "to-ed-ad", Options: core.Options{Mode: core.ModeTotalOrder},
				Prenexed: true, Strategy: prenex.EDownADown}
		case 5:
			w = WorkerConfig{Name: "po-nopure", Options: core.Options{Mode: core.ModePartialOrder,
				DisablePureLiterals: true}}
		case 6:
			w = WorkerConfig{Name: "po-seed", Options: core.Options{Mode: core.ModePartialOrder}}
		case 7:
			w = WorkerConfig{Name: "to-relaunch", Options: core.Options{Mode: core.ModeTotalOrder},
				Prenexed: true, Strategy: prenex.EUpADown, Relaunch: true}
		}
		if i >= 8 || i%8 == 6 {
			// Seeded repeats of the pattern table: same inference mix,
			// different tie-breaking in the branching heuristic.
			w.Options.ScoreSeed = int64(i + 1)
			if i >= 8 {
				w.Name = fmt.Sprintf("%s-s%d", w.Name, i+1)
			}
		}
		if prenexInput {
			// The input is its own prenex form: total-order workers solve
			// it directly and every worker shares one structure group.
			w.Prenexed = false
		}
		out = append(out, w)
	}
	return out
}

// groupKey returns the structure-group identifier of a worker config: the
// exact quantifier structure the worker solves under. Only workers with
// equal keys may exchange constraints.
func (w WorkerConfig) groupKey() string {
	if w.Prenexed {
		return "prenex:" + w.Strategy.String()
	}
	return "tree"
}
