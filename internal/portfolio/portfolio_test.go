package portfolio

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/qbf"
	"repro/internal/randqbf"
)

func mustSolve(t *testing.T, q *qbf.QBF, cfg Config) Report {
	t.Helper()
	rep, err := Solve(context.Background(), q, cfg)
	if err != nil {
		t.Fatalf("portfolio.Solve: %v", err)
	}
	return rep
}

func TestPortfolioTrivial(t *testing.T) {
	v := qbf.MinVar
	prefix := qbf.NewPrenexPrefix(1, qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{v}})
	qTrue := qbf.New(prefix, []qbf.Clause{{v.PosLit()}})
	qFalse := qbf.New(prefix.Clone(), []qbf.Clause{{v.PosLit()}, {v.NegLit()}})

	for _, tc := range []struct {
		name string
		q    *qbf.QBF
		want core.Result
	}{{"true", qTrue, core.True}, {"false", qFalse, core.False}} {
		rep := mustSolve(t, tc.q, Config{Workers: 4, Share: true})
		if rep.Result != tc.want {
			t.Fatalf("%s: got %v, want %v (report %+v)", tc.name, rep.Result, tc.want, rep)
		}
		if rep.Winner < 0 || rep.Winner >= len(rep.Workers) {
			t.Fatalf("%s: winner index %d out of range", tc.name, rep.Winner)
		}
		if rep.Stop != core.StopNone {
			t.Fatalf("%s: decided run reports stop %v", tc.name, rep.Stop)
		}
	}
}

func TestPortfolioNilAndEmpty(t *testing.T) {
	if _, err := Solve(context.Background(), nil, Config{}); err == nil {
		t.Fatal("nil formula accepted")
	}
	q := randqbf.Fixed(0)
	if _, err := Solve(context.Background(), q, Config{Schedule: []WorkerConfig{}}); err == nil {
		t.Fatal("empty schedule accepted")
	}
	bad := []WorkerConfig{{Name: "bad", Options: core.Options{Mode: core.ModeTotalOrder}}}
	tree, _, _ := randqbf.MiniscopeFilter(q, 0)
	if !tree.Prefix.IsPrenex() {
		if _, err := Solve(context.Background(), tree, Config{Schedule: bad}); err == nil {
			t.Fatal("total-order worker without Prenexed accepted on a tree input")
		}
	}
}

// TestPortfolioDifferential is the portfolio half of the differential test
// layer: on ≥200 random instances (tree and prenex) the portfolio — across
// worker counts, sharing on and off, oversubscribed and racing slot
// configurations — must agree with the sequential solver and with the
// semantic oracle. Run under -race by scripts/check.sh.
func TestPortfolioDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	n := 240
	if testing.Short() {
		n = 60
	}
	type cfgCase struct {
		name    string
		workers int
		share   bool
		par     int
		det     bool
	}
	cases := []cfgCase{
		{"w1", 1, false, 1, false},
		{"w2-share", 2, true, 2, false},
		{"w4-noshare", 4, false, 2, false},
		{"w4-share", 4, true, 4, false},
		{"w4-share-det", 4, true, 1, true},
		{"w4-share-oversub", 4, true, 1, false},
	}
	checked := 0
	for i := 0; i < n; i++ {
		q := qbf.RandomQBF(rng, 11, 13)
		want, ok := qbf.EvalWithBudget(q, 2_000_000)
		if !ok {
			continue
		}
		seqR, _, err := core.Solve(q, core.Options{Mode: core.ModePartialOrder})
		if err != nil {
			t.Fatalf("iteration %d: sequential: %v", i, err)
		}
		if (seqR == core.True) != want {
			t.Fatalf("iteration %d: sequential solver disagrees with oracle", i)
		}
		for _, c := range cases {
			rep := mustSolve(t, q, Config{
				Workers: c.workers, Share: c.share,
				MaxParallel: c.par, Deterministic: c.det,
				SliceNodes: 64, // small slices: force many resume cycles
			})
			if rep.Result == core.Unknown {
				t.Fatalf("iteration %d cfg %s: Unknown (stop %v, report %+v)\nQBF: %v",
					i, c.name, rep.Stop, rep, q)
			}
			if (rep.Result == core.True) != want {
				t.Fatalf("iteration %d cfg %s: portfolio says %v, oracle says %v (winner %s)\nQBF: %v",
					i, c.name, rep.Result, want, rep.WinnerName(), q)
			}
			if rep.Result != seqR {
				t.Fatalf("iteration %d cfg %s: portfolio %v != sequential %v", i, c.name, rep.Result, seqR)
			}
		}
		checked++
	}
	if checked < n*3/4 {
		t.Fatalf("only %d/%d instances fit the oracle budget — generator drifted", checked, n)
	}
	t.Logf("portfolio agreed with sequential and oracle on %d instances × %d configs", checked, len(cases))
}

// TestPortfolioDifferentialStructured repeats the differential check on
// structured (fixed-class) instances where learning actually fires, so
// constraint sharing moves real clauses and cubes between workers.
func TestPortfolioDifferentialStructured(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 4
	}
	for i := 0; i < n; i++ {
		q := randqbf.Fixed(int64(i))
		seqR, _, err := core.Solve(q, core.Options{Mode: core.ModePartialOrder})
		if err != nil {
			t.Fatalf("instance %d: sequential: %v", i, err)
		}
		rep := mustSolve(t, q, Config{Workers: 4, Share: true, MaxParallel: 2, SliceNodes: 256})
		if rep.Result != seqR {
			t.Fatalf("instance %d: portfolio %v != sequential %v (winner %s)", i, rep.Result, seqR, rep.WinnerName())
		}
	}
}

// TestPortfolioDeterministicReproducible runs the deterministic mode twice
// and demands identical reports modulo wall-clock fields.
func TestPortfolioDeterministicReproducible(t *testing.T) {
	n := 30
	if testing.Short() {
		n = 8
	}
	rng := rand.New(rand.NewSource(977))
	for i := 0; i < n; i++ {
		q := qbf.RandomQBF(rng, 11, 13)
		cfg := Config{Workers: 4, Share: true, Deterministic: true, SliceNodes: 64}
		a := mustSolve(t, q, cfg)
		b := mustSolve(t, q, cfg)
		if a.Result != b.Result || a.Winner != b.Winner {
			t.Fatalf("instance %d: runs differ: (%v, winner %d) vs (%v, winner %d)",
				i, a.Result, a.Winner, b.Result, b.Winner)
		}
		for w := range a.Workers {
			x, y := a.Workers[w], b.Workers[w]
			if x.Attempts != y.Attempts || x.Result != y.Result || x.Stats.Decisions != y.Stats.Decisions {
				t.Fatalf("instance %d worker %d (%s): attempts/decisions differ: %d/%d vs %d/%d",
					i, w, x.Name, x.Attempts, x.Stats.Decisions, y.Attempts, y.Stats.Decisions)
			}
		}
	}
}

// TestPortfolioDegeneratesToSequential: one worker, slots ≥ workers — the
// portfolio must do exactly the sequential solver's work (same verdict;
// same decision count, since worker 0 is the default configuration).
func TestPortfolioDegeneratesToSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	for i := 0; i < 20; i++ {
		q := qbf.RandomQBF(rng, 11, 13)
		seqR, seqSt, err := core.Solve(q, core.Options{Mode: core.ModePartialOrder})
		if err != nil {
			t.Fatalf("sequential: %v", err)
		}
		rep := mustSolve(t, q, Config{Workers: 1})
		if rep.Result != seqR {
			t.Fatalf("instance %d: %v != sequential %v", i, rep.Result, seqR)
		}
		if rep.Stats.Decisions != seqSt.Decisions {
			t.Fatalf("instance %d: portfolio of one did different work: %d decisions vs %d",
				i, rep.Stats.Decisions, seqSt.Decisions)
		}
	}
}

func TestPortfolioNodeBudget(t *testing.T) {
	q := hardInstance()
	rep := mustSolve(t, q, Config{Workers: 4, MaxParallel: 1, SliceNodes: 16,
		Base: core.Options{NodeLimit: 64}})
	if rep.Result != core.Unknown {
		t.Skip("instance solved within the tiny budget — not a budget exercise")
	}
	if rep.Stop != core.StopNodeLimit {
		t.Fatalf("stop = %v, want StopNodeLimit", rep.Stop)
	}
	for _, w := range rep.Workers {
		if w.Ran && w.Stats.Decisions > 64+maxSliceNodes {
			t.Fatalf("worker %s burned %d decisions past its 64-decision budget", w.Name, w.Stats.Decisions)
		}
	}
}

func TestPortfolioTimeout(t *testing.T) {
	q := hardInstance()
	rep := mustSolve(t, q, Config{Workers: 4, MaxParallel: 1, SliceNodes: 32,
		Base: core.Options{TimeLimit: time.Millisecond}})
	if rep.Result != core.Unknown {
		t.Skip("instance solved within a millisecond — not a timeout exercise")
	}
	if rep.Stop != core.StopTimeout {
		t.Fatalf("stop = %v, want StopTimeout", rep.Stop)
	}
}

func TestPortfolioOuterCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Solve(ctx, hardInstance(), Config{Workers: 4})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if rep.Result != core.Unknown || rep.Stop != core.StopCancelled {
		t.Fatalf("cancelled run: result %v stop %v, want Unknown/StopCancelled", rep.Result, rep.Stop)
	}
}

// TestPortfolioWitness checks that a true tree-form verdict carries the
// winner's outermost existential witness and that it is consistent with
// the sequential witness semantics (every reported variable is a level-1
// existential).
func TestPortfolioWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	found := false
	for i := 0; i < 60 && !found; i++ {
		q := qbf.RandomQBF(rng, 10, 10)
		rep := mustSolve(t, q, Config{Workers: 2, Deterministic: true})
		if rep.Result != core.True || rep.Winner != 0 {
			continue
		}
		if rep.Witness == nil {
			// A trivially-true formula can legitimately have no witness;
			// only demand one when the sequential solver produces one.
			s, err := core.NewSolver(q, core.Options{Mode: core.ModePartialOrder})
			if err != nil {
				t.Fatal(err)
			}
			s.Solve()
			if _, ok := s.Witness(); ok {
				t.Fatalf("instance %d: sequential has a witness, portfolio lost it", i)
			}
			continue
		}
		found = true
	}
	if !found {
		t.Skip("no witness-bearing true instance in the sample")
	}
}

// TestPortfolioSharingMovesConstraints makes sure sharing is not
// vacuously sound: across structured instances with small slices, at least
// one exchange actually imports something.
func TestPortfolioSharingMovesConstraints(t *testing.T) {
	var imports int64
	n := 10
	if testing.Short() {
		n = 4
	}
	for i := 0; i < n; i++ {
		q := randqbf.Fixed(int64(i))
		rep := mustSolve(t, q, Config{Workers: 6, Share: true, MaxParallel: 2, SliceNodes: 128})
		imports += rep.Stats.Imports
	}
	if imports == 0 {
		t.Fatal("no constraint was ever imported — the exchange is dead weight")
	}
	t.Logf("imported %d constraints across the suite", imports)
}

func TestBackendFunc(t *testing.T) {
	backend := BackendFunc(Config{Workers: 2, Share: true, Deterministic: true})
	q := randqbf.Fixed(1)
	r, st, err := backend(context.Background(), q, core.Options{Mode: core.ModePartialOrder})
	if err != nil {
		t.Fatalf("backend: %v", err)
	}
	seqR, _, _ := core.Solve(q, core.Options{Mode: core.ModePartialOrder})
	if r != seqR {
		t.Fatalf("backend %v != sequential %v", r, seqR)
	}
	if st.Decisions == 0 && r != core.Unknown {
		t.Fatal("backend lost the merged statistics")
	}
}

// hardInstance returns a formula comfortably beyond tiny node budgets
// (~6000 decisions, tens of milliseconds for the sequential default).
func hardInstance() *qbf.QBF {
	return randqbf.Prob(randqbf.ProbParams{
		Blocks: 3, BlockSize: 24, Clauses: 504, Length: 5, MaxUniversal: 1, Seed: 2,
	})
}
