package portfolio

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/qbf"
	"repro/internal/randqbf"
	"repro/internal/telemetry"
)

func mustSolve(t *testing.T, q *qbf.QBF, cfg Options) Result {
	t.Helper()
	rep, err := Solve(context.Background(), q, cfg)
	if err != nil {
		t.Fatalf("portfolio.Solve: %v", err)
	}
	return rep
}

func TestPortfolioTrivial(t *testing.T) {
	v := qbf.MinVar
	prefix := qbf.NewPrenexPrefix(1, qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{v}})
	qTrue := qbf.New(prefix, []qbf.Clause{{v.PosLit()}})
	qFalse := qbf.New(prefix.Clone(), []qbf.Clause{{v.PosLit()}, {v.NegLit()}})

	for _, tc := range []struct {
		name string
		q    *qbf.QBF
		want core.Verdict
	}{{"true", qTrue, core.True}, {"false", qFalse, core.False}} {
		rep := mustSolve(t, tc.q, Options{Workers: 4, Share: true})
		if rep.Verdict != tc.want {
			t.Fatalf("%s: got %v, want %v (report %+v)", tc.name, rep.Verdict, tc.want, rep)
		}
		if rep.Winner < 0 || rep.Winner >= len(rep.Workers) {
			t.Fatalf("%s: winner index %d out of range", tc.name, rep.Winner)
		}
		if rep.Stop != core.StopNone {
			t.Fatalf("%s: decided run reports stop %v", tc.name, rep.Stop)
		}
	}
}

func TestPortfolioNilAndEmpty(t *testing.T) {
	if _, err := Solve(context.Background(), nil, Options{}); err == nil {
		t.Fatal("nil formula accepted")
	}
	q := randqbf.Fixed(0)
	if _, err := Solve(context.Background(), q, Options{Schedule: []WorkerConfig{}}); err == nil {
		t.Fatal("empty schedule accepted")
	}
	bad := []WorkerConfig{{Name: "bad", Options: core.Options{Mode: core.ModeTotalOrder}}}
	tree, _, _ := randqbf.MiniscopeFilter(q, 0)
	if !tree.Prefix.IsPrenex() {
		if _, err := Solve(context.Background(), tree, Options{Schedule: bad}); err == nil {
			t.Fatal("total-order worker without Prenexed accepted on a tree input")
		}
	}
}

// TestPortfolioDifferential is the portfolio half of the differential test
// layer: on ≥200 random instances (tree and prenex) the portfolio — across
// worker counts, sharing on and off, oversubscribed and racing slot
// configurations — must agree with the sequential solver and with the
// semantic oracle. Run under -race by scripts/check.sh.
func TestPortfolioDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	n := 240
	if testing.Short() {
		n = 60
	}
	type cfgCase struct {
		name    string
		workers int
		share   bool
		par     int
		det     bool
	}
	cases := []cfgCase{
		{"w1", 1, false, 1, false},
		{"w2-share", 2, true, 2, false},
		{"w4-noshare", 4, false, 2, false},
		{"w4-share", 4, true, 4, false},
		{"w4-share-det", 4, true, 1, true},
		{"w4-share-oversub", 4, true, 1, false},
	}
	checked := 0
	for i := 0; i < n; i++ {
		q := qbf.RandomQBF(rng, 11, 13)
		want, ok := qbf.EvalWithBudget(q, 2_000_000)
		if !ok {
			continue
		}
		seqRRes, err := core.Solve(context.Background(), q, core.Options{Mode: core.ModePartialOrder})
		seqR := seqRRes.Verdict
		if err != nil {
			t.Fatalf("iteration %d: sequential: %v", i, err)
		}
		if (seqR == core.True) != want {
			t.Fatalf("iteration %d: sequential solver disagrees with oracle", i)
		}
		for _, c := range cases {
			rep := mustSolve(t, q, Options{
				Workers: c.workers, Share: c.share,
				MaxParallel: c.par, Deterministic: c.det,
				SliceNodes: 64, // small slices: force many resume cycles
			})
			if rep.Verdict == core.Unknown {
				t.Fatalf("iteration %d cfg %s: Unknown (stop %v, report %+v)\nQBF: %v",
					i, c.name, rep.Stop, rep, q)
			}
			if (rep.Verdict == core.True) != want {
				t.Fatalf("iteration %d cfg %s: portfolio says %v, oracle says %v (winner %s)\nQBF: %v",
					i, c.name, rep.Verdict, want, rep.WinnerName(), q)
			}
			if rep.Verdict != seqR {
				t.Fatalf("iteration %d cfg %s: portfolio %v != sequential %v", i, c.name, rep.Verdict, seqR)
			}
		}
		checked++
	}
	if checked < n*3/4 {
		t.Fatalf("only %d/%d instances fit the oracle budget — generator drifted", checked, n)
	}
	t.Logf("portfolio agreed with sequential and oracle on %d instances × %d configs", checked, len(cases))
}

// TestPortfolioDifferentialStructured repeats the differential check on
// structured (fixed-class) instances where learning actually fires, so
// constraint sharing moves real clauses and cubes between workers.
func TestPortfolioDifferentialStructured(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 4
	}
	for i := 0; i < n; i++ {
		q := randqbf.Fixed(int64(i))
		seqRRes, err := core.Solve(context.Background(), q, core.Options{Mode: core.ModePartialOrder})
		seqR := seqRRes.Verdict
		if err != nil {
			t.Fatalf("instance %d: sequential: %v", i, err)
		}
		rep := mustSolve(t, q, Options{Workers: 4, Share: true, MaxParallel: 2, SliceNodes: 256})
		if rep.Verdict != seqR {
			t.Fatalf("instance %d: portfolio %v != sequential %v (winner %s)", i, rep.Verdict, seqR, rep.WinnerName())
		}
	}
}

// TestPortfolioDeterministicReproducible runs the deterministic mode twice
// and demands identical reports modulo wall-clock fields.
func TestPortfolioDeterministicReproducible(t *testing.T) {
	n := 30
	if testing.Short() {
		n = 8
	}
	rng := rand.New(rand.NewSource(977))
	for i := 0; i < n; i++ {
		q := qbf.RandomQBF(rng, 11, 13)
		cfg := Options{Workers: 4, Share: true, Deterministic: true, SliceNodes: 64}
		a := mustSolve(t, q, cfg)
		b := mustSolve(t, q, cfg)
		if a.Verdict != b.Verdict || a.Winner != b.Winner {
			t.Fatalf("instance %d: runs differ: (%v, winner %d) vs (%v, winner %d)",
				i, a.Verdict, a.Winner, b.Verdict, b.Winner)
		}
		for w := range a.Workers {
			x, y := a.Workers[w], b.Workers[w]
			if x.Attempts != y.Attempts || x.Verdict != y.Verdict || x.Stats.Decisions != y.Stats.Decisions {
				t.Fatalf("instance %d worker %d (%s): attempts/decisions differ: %d/%d vs %d/%d",
					i, w, x.Name, x.Attempts, x.Stats.Decisions, y.Attempts, y.Stats.Decisions)
			}
		}
	}
}

// TestPortfolioDegeneratesToSequential: one worker, slots ≥ workers — the
// portfolio must do exactly the sequential solver's work (same verdict;
// same decision count, since worker 0 is the default configuration).
func TestPortfolioDegeneratesToSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	for i := 0; i < 20; i++ {
		q := qbf.RandomQBF(rng, 11, 13)
		seqRRes, err := core.Solve(context.Background(), q, core.Options{Mode: core.ModePartialOrder})
		seqR, seqSt := seqRRes.Verdict, seqRRes.Stats
		if err != nil {
			t.Fatalf("sequential: %v", err)
		}
		rep := mustSolve(t, q, Options{Workers: 1})
		if rep.Verdict != seqR {
			t.Fatalf("instance %d: %v != sequential %v", i, rep.Verdict, seqR)
		}
		if rep.Stats.Decisions != seqSt.Decisions {
			t.Fatalf("instance %d: portfolio of one did different work: %d decisions vs %d",
				i, rep.Stats.Decisions, seqSt.Decisions)
		}
	}
}

func TestPortfolioNodeBudget(t *testing.T) {
	q := hardInstance()
	rep := mustSolve(t, q, Options{Workers: 4, MaxParallel: 1, SliceNodes: 16,
		Base: core.Options{NodeLimit: 64}})
	if rep.Verdict != core.Unknown {
		t.Skip("instance solved within the tiny budget — not a budget exercise")
	}
	if rep.Stop != core.StopNodeLimit {
		t.Fatalf("stop = %v, want StopNodeLimit", rep.Stop)
	}
	for _, w := range rep.Workers {
		if w.Ran && w.Stats.Decisions > 64+maxSliceNodes {
			t.Fatalf("worker %s burned %d decisions past its 64-decision budget", w.Name, w.Stats.Decisions)
		}
	}
}

func TestPortfolioTimeout(t *testing.T) {
	q := hardInstance()
	rep := mustSolve(t, q, Options{Workers: 4, MaxParallel: 1, SliceNodes: 32,
		Base: core.Options{TimeLimit: time.Millisecond}})
	if rep.Verdict != core.Unknown {
		t.Skip("instance solved within a millisecond — not a timeout exercise")
	}
	if rep.Stop != core.StopTimeout {
		t.Fatalf("stop = %v, want StopTimeout", rep.Stop)
	}
}

func TestPortfolioOuterCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Solve(ctx, hardInstance(), Options{Workers: 4})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if rep.Verdict != core.Unknown || rep.Stop != core.StopCancelled {
		t.Fatalf("cancelled run: result %v stop %v, want Unknown/StopCancelled", rep.Verdict, rep.Stop)
	}
}

// TestPortfolioWitness checks that a true tree-form verdict carries the
// winner's outermost existential witness and that it is consistent with
// the sequential witness semantics (every reported variable is a level-1
// existential).
func TestPortfolioWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	found := false
	for i := 0; i < 60 && !found; i++ {
		q := qbf.RandomQBF(rng, 10, 10)
		rep := mustSolve(t, q, Options{Workers: 2, Deterministic: true})
		if rep.Verdict != core.True || rep.Winner != 0 {
			continue
		}
		if rep.Witness == nil {
			// A trivially-true formula can legitimately have no witness;
			// only demand one when the sequential solver produces one.
			s, err := core.NewSolver(q, core.Options{Mode: core.ModePartialOrder})
			if err != nil {
				t.Fatal(err)
			}
			s.Solve(context.Background())
			if _, ok := s.Witness(); ok {
				t.Fatalf("instance %d: sequential has a witness, portfolio lost it", i)
			}
			continue
		}
		found = true
	}
	if !found {
		t.Skip("no witness-bearing true instance in the sample")
	}
}

// TestPortfolioSharingMovesConstraints makes sure sharing is not
// vacuously sound: across structured instances with small slices, at least
// one exchange actually imports something.
func TestPortfolioSharingMovesConstraints(t *testing.T) {
	var imports int64
	n := 10
	if testing.Short() {
		n = 4
	}
	for i := 0; i < n; i++ {
		q := randqbf.Fixed(int64(i))
		rep := mustSolve(t, q, Options{Workers: 6, Share: true, MaxParallel: 2, SliceNodes: 128})
		imports += rep.Stats.Imports
	}
	if imports == 0 {
		t.Fatal("no constraint was ever imported — the exchange is dead weight")
	}
	t.Logf("imported %d constraints across the suite", imports)
}

func TestBackendFunc(t *testing.T) {
	backend := BackendFunc(Options{Workers: 2, Share: true, Deterministic: true})
	q := randqbf.Fixed(1)
	res, err := backend(context.Background(), q, core.Options{Mode: core.ModePartialOrder})
	if err != nil {
		t.Fatalf("backend: %v", err)
	}
	r, st := res.Verdict, res.Stats
	seqRRes, _ := core.Solve(context.Background(), q, core.Options{Mode: core.ModePartialOrder})
	seqR := seqRRes.Verdict
	if r != seqR {
		t.Fatalf("backend %v != sequential %v", r, seqR)
	}
	if st.Decisions == 0 && r != core.Unknown {
		t.Fatal("backend lost the merged statistics")
	}
}

// hardInstance returns a formula comfortably beyond tiny node budgets
// (~6000 decisions, tens of milliseconds for the sequential default).
func hardInstance() *qbf.QBF {
	return randqbf.Prob(randqbf.ProbParams{
		Blocks: 3, BlockSize: 24, Clauses: 504, Length: 5, MaxUniversal: 1, Seed: 2,
	})
}

// TestPortfolioDifferentialTraced re-runs a slice of the differential
// suite with full telemetry attached — JSONL sink plus metrics registry
// shared by every worker — which makes the concurrent emit path visible
// to the race detector (scripts/check.sh runs this package under -race).
// Verdicts must still agree with the sequential solver, the trace must
// replay cleanly, and its counts must match the metrics registry.
func TestPortfolioDifferentialTraced(t *testing.T) {
	rng := rand.New(rand.NewSource(613))
	n := 40
	if testing.Short() {
		n = 10
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := telemetry.NewJSONLSink(f)
	m := telemetry.NewMetrics()
	tracer := telemetry.New(sink, m)
	for i := 0; i < n; i++ {
		q := qbf.RandomQBF(rng, 11, 13)
		seqRes, err := core.Solve(context.Background(), q, core.Options{Mode: core.ModePartialOrder})
		if err != nil {
			t.Fatalf("iteration %d: sequential: %v", i, err)
		}
		rep := mustSolve(t, q, Options{
			Workers: 4, Share: true, MaxParallel: 4, SliceNodes: 64,
			Base: core.Options{Telemetry: tracer},
		})
		if rep.Verdict != seqRes.Verdict {
			t.Fatalf("iteration %d: traced portfolio %v != sequential %v", i, rep.Verdict, seqRes.Verdict)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	sum, err := telemetry.Summarize(rf)
	if err != nil {
		t.Fatalf("trace written under contention does not replay: %v", err)
	}
	if sum.Total == 0 || sum.ByKind[telemetry.KindDecision] == 0 || sum.ByKind[telemetry.KindStop] == 0 {
		t.Fatalf("trace too thin: %+v", sum)
	}
	for w := range sum.ByWorker {
		if w < 0 || w >= 4 {
			t.Errorf("event tagged with out-of-range worker %d", w)
		}
	}
	for _, k := range telemetry.Kinds() {
		if got, want := m.Count(k), sum.ByKind[k]; got != want {
			t.Errorf("metrics[%v]=%d but trace has %d — sink and registry drifted", k, got, want)
		}
	}
}
