// Package portfolio races diverse solver configurations on one QBF: the
// paper's own QUBE(TO)-vs-QUBE(PO) comparison shows per-instance runtime
// differences of orders of magnitude between configurations, which is
// exactly the variance a racing portfolio converts into speed. Workers run
// the same formula under different quantifier structures (tree partial
// order vs. prenex conversions), inference mixes (clause/cube learning,
// pure literals), heuristic seeds, and restart-free node-limit ladders;
// the first definitive True/False cancels the rest.
//
// Scheduling adapts to the hardware: with at least as many slots
// (MaxParallel) as workers, every worker races concurrently in a single
// unbounded slice. With fewer slots — the oversubscribed case, including
// MaxParallel=1 — workers are time-multiplexed in node-budget slices over
// the resumable solver (the resumable core Solve continues a stopped search, so
// slicing wastes no work), round-robin by (attempts, index). Worker 0 is
// the sequential default configuration, so on easy instances an
// oversubscribed portfolio costs the sequential runtime plus microseconds.
//
// Workers solving the identical (prefix, matrix) pair may exchange short
// learned constraints through lock-free rings; clause/term resolution
// guarantees every learned clause (cube) is a consequence of that exact
// formula, so imports preserve soundness. Workers on different quantifier
// structures never exchange (see DESIGN.md §8 for the argument).
package portfolio

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/prenex"
	"repro/internal/qbf"
	"repro/internal/telemetry"
)

// Options controls a portfolio solve. Telemetry attaches through
// Base.Telemetry: each worker's solver gets a tracer forked with its
// worker index and structure group, so every event in a shared trace is
// attributable to one configuration and one sharing group.
type Options struct {
	// Workers is the schedule size when Schedule is nil (0 = 4).
	Workers int
	// Schedule overrides the generated DefaultSchedule.
	Schedule []WorkerConfig
	// Share enables constraint exchange between same-structure workers.
	Share bool
	// ShareMaxLen bounds exported constraint length (0 = 8 literals).
	ShareMaxLen int
	// RingCap is the per-worker inbox capacity (0 = 512).
	RingCap int
	// MaxParallel bounds concurrently running workers (0 = NumCPU).
	// Deterministic mode forces 1.
	MaxParallel int
	// Deterministic serializes the schedule (MaxParallel=1, fixed slice
	// order, ties broken toward the lowest worker index), making the
	// report reproducible modulo wall-clock fields. See DESIGN.md §8 for
	// the exact contract.
	Deterministic bool
	// SliceNodes is the base node quantum of a time-multiplexed slice and
	// the first rung of relaunch ladders (0 = 2048). Quanta double per
	// attempt; ladder rungs grow 4×.
	SliceNodes int64
	// Base carries the shared budgets and flags: TimeLimit (enforced as a
	// portfolio-wide deadline), NodeLimit (per-worker decision budget),
	// MemLimit (per worker), MaxLearned, CheckInvariants. Mode, learning
	// toggles and ScoreSeed come from each worker's own configuration.
	Base core.Options

	// testSolverHook, when non-nil, runs after each worker's solver is
	// constructed (worker index, attempt ordinal, solver). In-package
	// tests use it to install fault-injection hooks.
	testSolverHook func(i, attempt int, s *core.Solver)
}

// WorkerReport is one worker's contribution to a portfolio run.
type WorkerReport struct {
	Name    string
	Verdict core.Verdict
	// Stop explains an undecided worker (StopNone when it decided or was
	// never granted a slice — see Ran).
	Stop core.StopReason
	// Stats aggregates the worker's search effort across all attempts.
	Stats core.Stats
	// Attempts counts granted slices (resumable) or relaunches (ladder).
	Attempts int
	// Ran reports whether the worker was ever granted a slice.
	Ran bool
	// Err carries a contained construction error or solver panic.
	Err error
	// Exported counts constraints this worker offered to the exchange;
	// Imported/ImportsRejected mirror the solver's import counters.
	Exported int64
	Imported int64
	Rejected int64
}

// Result is the outcome of a portfolio solve.
type Result struct {
	Verdict core.Verdict
	// Stop explains an Unknown result (aggregated across workers: the
	// portfolio deadline and outer cancellation take precedence, then the
	// lowest-indexed worker's stop reason).
	Stop core.StopReason
	// Winner is the index of the deciding worker (-1 when undecided). When
	// several workers of one scheduling round decide, the lowest index
	// wins — with one slot (deterministic mode) rounds hold one slice, so
	// the tie-break never depends on goroutine timing.
	Winner  int
	Workers []WorkerReport
	// Witness is the winning solver's outermost existential assignment,
	// captured only when the winner solved the original (tree) structure
	// and the result is True; nil otherwise.
	Witness map[qbf.Var]bool
	// Stats sums search effort over every worker and attempt.
	Stats core.Stats
	// Exported/Dropped are exchange-wide publication totals.
	Exported int64
	Dropped  int64
	Time     time.Duration
}

// WinnerName returns the winning configuration's name, or "none".
func (r Result) WinnerName() string {
	if r.Winner < 0 || r.Winner >= len(r.Workers) {
		return "none"
	}
	return r.Workers[r.Winner].Name
}

// Err returns nil when the run produced a verdict or a clean governed
// stop, and the first worker error when every worker that ran failed —
// the condition under which a batch driver should count the instance as
// errored rather than out-of-budget.
func (r Result) Err() error {
	if r.Verdict != core.Unknown {
		return nil
	}
	var first error
	anyClean := false
	for _, w := range r.Workers {
		if !w.Ran {
			continue
		}
		if w.Err == nil {
			anyClean = true
		} else if first == nil {
			first = w.Err
		}
	}
	if anyClean {
		return nil
	}
	return first
}

// worker is the engine-side state of one schedule entry.
type worker struct {
	idx     int
	cfg     WorkerConfig
	group   int
	formula *qbf.QBF
	solver  *core.Solver
	opts    core.Options

	tracer *telemetry.Tracer

	attempts  int
	done      bool
	verdict   core.Verdict
	stop      core.StopReason
	err       error
	ran       bool
	agg       core.Stats // completed relaunch attempts (resumable workers accumulate in-solver)
	exported  int64
	witness   map[qbf.Var]bool
	seen      map[string]struct{}
	lastStats core.Stats
}

const (
	defaultWorkers    = 4
	defaultSliceNodes = 2048
	maxSliceNodes     = 1 << 18
	maxRungNodes      = 1 << 30
	importBatch       = 64
)

// Solve races the configured portfolio on q under ctx and returns the
// merged result. The only error return is a configuration or input error;
// per-worker failures are contained in the result's worker reports.
func Solve(ctx context.Context, q *qbf.QBF, opts Options) (Result, error) {
	cfg := opts
	start := time.Now()
	if q == nil {
		return Result{}, errors.New("portfolio: nil formula")
	}
	if ctx == nil {
		ctx = context.Background() //lint:allow L8 nil-context normalization at the API edge
	}
	schedule := cfg.Schedule
	if schedule == nil {
		n := cfg.Workers
		if n <= 0 {
			n = defaultWorkers
		}
		schedule = DefaultSchedule(q, n)
	}
	if len(schedule) == 0 {
		return Result{}, errors.New("portfolio: empty schedule")
	}
	for i, w := range schedule {
		if w.Options.Mode == core.ModeTotalOrder && !w.Prenexed && !q.Prefix.IsPrenex() {
			return Result{}, fmt.Errorf("portfolio: worker %d (%s): total-order mode on a non-prenex input requires Prenexed", i, w.Name)
		}
	}

	slice := cfg.SliceNodes
	if slice <= 0 {
		slice = defaultSliceNodes
	}
	slots := cfg.MaxParallel
	if slots <= 0 {
		slots = runtime.NumCPU()
	}
	if cfg.Deterministic {
		slots = 1
	}
	if slots > len(schedule) {
		slots = len(schedule)
	}
	sliced := slots < len(schedule)

	// Structure groups for sound sharing.
	groupIDs := map[string]int{}
	groups := make([]int, len(schedule))
	prenexInput := q.Prefix.IsPrenex()
	for i, wc := range schedule {
		key := wc.groupKey()
		if prenexInput {
			key = "tree"
		}
		id, ok := groupIDs[key]
		if !ok {
			id = len(groupIDs)
			groupIDs[key] = id
		}
		groups[i] = id
	}
	var exch *Exchange
	if cfg.Share {
		exch = NewExchange(groups, cfg.RingCap, cfg.ShareMaxLen)
	}

	ctx2, cancel := context.WithCancel(ctx)
	defer cancel()
	if cfg.Base.TimeLimit > 0 {
		var cancelT context.CancelFunc
		ctx2, cancelT = context.WithTimeout(ctx2, cfg.Base.TimeLimit)
		defer cancelT()
	}

	workers := make([]*worker, len(schedule))
	for i, wc := range schedule {
		workers[i] = &worker{idx: i, cfg: wc, group: groups[i], seen: map[string]struct{}{}}
	}

	eng := &engine{cfg: cfg, q: q, exch: exch, slice: slice, sliced: sliced, cancel: cancel}

	winner := -1
	for ctx2.Err() == nil {
		batch := eng.pickBatch(workers, slots)
		if len(batch) == 0 {
			break
		}
		var wg sync.WaitGroup
		for _, w := range batch {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				defer func() {
					if p := recover(); p != nil {
						// runSlice is already panic-contained via SafeSolve;
						// this guards engine bookkeeping itself.
						w.done, w.err = true, fmt.Errorf("portfolio: worker %d harness panic: %v", w.idx, p)
						w.stop = core.StopPanicked
					}
				}()
				eng.runSlice(ctx2, w)
			}(w)
		}
		wg.Wait()
		for _, w := range batch { // index order within the round
			if w.done && w.err == nil && w.verdict != core.Unknown && (winner < 0 || w.idx < winner) {
				winner = w.idx
			}
		}
		if winner >= 0 {
			cancel()
			break
		}
	}

	rep := Result{Winner: winner, Workers: make([]WorkerReport, len(workers)), Time: time.Since(start)}
	for i, w := range workers {
		st := w.currentStats()
		wr := WorkerReport{
			Name: w.cfg.Name, Verdict: w.verdict, Stop: w.stop, Stats: st,
			Attempts: w.attempts, Ran: w.ran, Err: w.err,
			Exported: w.exported, Imported: st.Imports, Rejected: st.ImportsRejected,
		}
		rep.Workers[i] = wr
		mergeStats(&rep.Stats, st)
	}
	if exch != nil {
		rep.Exported, rep.Dropped = exch.Totals()
	}
	if winner >= 0 {
		rep.Verdict = workers[winner].verdict
		rep.Stop = core.StopNone
		rep.Witness = workers[winner].witness
	} else {
		rep.Verdict = core.Unknown
		rep.Stop = aggregateStop(ctx, ctx2, workers)
	}
	rep.Stats.StopReason = rep.Stop
	return rep, nil
}

// engine carries the per-run scheduling state shared by slices.
type engine struct {
	cfg    Options
	q      *qbf.QBF
	exch   *Exchange
	slice  int64
	sliced bool
	cancel context.CancelFunc
}

// pickBatch selects up to n live workers, round-robin by (attempts, index).
func (e *engine) pickBatch(workers []*worker, n int) []*worker {
	var live []*worker
	for _, w := range workers {
		if !w.done {
			live = append(live, w)
		}
	}
	sort.Slice(live, func(i, j int) bool {
		if live[i].attempts != live[j].attempts {
			return live[i].attempts < live[j].attempts
		}
		return live[i].idx < live[j].idx
	})
	if len(live) > n {
		live = live[:n]
	}
	return live
}

// build constructs (or, for relaunch ladders, reconstructs) the worker's
// solver and installs the exchange hooks. Construction is lazy so that an
// oversubscribed portfolio only pays for configurations it actually runs.
func (e *engine) build(w *worker) error {
	if w.formula == nil {
		if w.cfg.Prenexed && !e.q.Prefix.IsPrenex() {
			w.formula = prenex.Apply(e.q, w.cfg.Strategy)
		} else {
			w.formula = e.q
		}
	}
	opts := w.cfg.Options
	opts.TimeLimit = 0 // the portfolio deadline governs
	opts.NodeLimit = 0 // set per slice
	opts.MemLimit = e.cfg.Base.MemLimit
	opts.MaxLearned = e.cfg.Base.MaxLearned
	opts.CheckInvariants = e.cfg.Base.CheckInvariants
	w.tracer = e.cfg.Base.Telemetry.Fork(w.idx, w.group)
	opts.Telemetry = w.tracer
	s, err := core.NewSolver(w.formula, opts)
	if err != nil {
		return err
	}
	w.solver, w.opts = s, opts
	if e.exch != nil {
		idx := w.idx
		s.SetLearnHook(func(lits []qbf.Lit, isCube bool) {
			w.exported++
			e.exch.Publish(idx, []core.Shared{{Lits: lits, IsCube: isCube}})
		})
		s.SetImportHook(func() []core.Shared {
			batch := e.exch.Collect(idx, importBatch)
			if len(batch) == 0 {
				return nil
			}
			fresh := batch[:0]
			for _, sc := range batch {
				k := shareKey(sc)
				if _, dup := w.seen[k]; dup {
					continue
				}
				w.seen[k] = struct{}{}
				fresh = append(fresh, sc)
			}
			return fresh
		})
	}
	if e.cfg.testSolverHook != nil {
		e.cfg.testSolverHook(w.idx, w.attempts, s)
	}
	return nil
}

// runSlice grants the worker one scheduling slice: a bounded resume (or
// ladder relaunch) in sliced mode, a full solve otherwise. All solver
// panics are contained by SafeSolve; a decided worker cancels the
// portfolio context so racing siblings stop at their next fixpoint.
func (e *engine) runSlice(ctx context.Context, w *worker) {
	if w.solver == nil || w.cfg.Relaunch {
		if w.solver != nil {
			// Ladder relaunch: bank the finished attempt's effort.
			mergeStats(&w.agg, w.solver.Stats())
		}
		if err := e.build(w); err != nil {
			w.done, w.err = true, err
			return
		}
	}
	w.ran = true
	budget := e.cfg.Base.NodeLimit
	spent := w.agg.Decisions + w.solver.Stats().Decisions
	var limit int64
	switch {
	case w.cfg.Relaunch:
		// Ladder rungs grow 4× per attempt without the slice ceiling:
		// a capped rung could never finish a search larger than the cap.
		rung := e.slice << uint(2*min64(int64(w.attempts), 12))
		if rung <= 0 || rung > maxRungNodes {
			rung = maxRungNodes
		}
		limit = w.solver.Stats().Decisions + rung
	case e.sliced:
		quantum := capNodes(e.slice << uint(min64(int64(w.attempts), 16)))
		limit = w.solver.Stats().Decisions + quantum
	default:
		limit = 0
	}
	if budget > 0 {
		remaining := budget - spent
		if remaining <= 0 {
			w.done, w.stop = true, core.StopNodeLimit
			return
		}
		if limit == 0 || limit > w.solver.Stats().Decisions+remaining {
			limit = w.solver.Stats().Decisions + remaining
		}
	}
	w.solver.SetNodeLimit(limit)
	w.tracer.Emit(telemetry.KindSlice, 0, 0, int64(w.attempts), limit)
	r, err := w.solver.SafeSolve(ctx)
	w.attempts++
	w.lastStats = w.solver.Stats()
	if err != nil {
		w.done, w.err, w.stop = true, err, core.StopPanicked
		return
	}
	if r != core.Unknown {
		w.done, w.verdict, w.stop = true, r, core.StopNone
		if r == core.True && !w.cfg.Prenexed {
			w.witness, _ = w.solver.Witness()
		}
		e.cancel()
		return
	}
	switch stop := w.lastStats.StopReason; stop {
	case core.StopNodeLimit:
		total := w.agg.Decisions + w.lastStats.Decisions
		if budget > 0 && total >= budget {
			w.done, w.stop = true, core.StopNodeLimit
		}
		// Otherwise the worker stays live for its next slice or rung.
	default:
		// Timeout, cancellation, memory stop, or a clean stop the engine
		// cannot continue from.
		w.done, w.stop = true, stop
	}
}

// currentStats returns the worker's aggregated effort: banked relaunch
// attempts plus the live solver's counters.
func (w *worker) currentStats() core.Stats {
	st := w.agg
	if w.solver != nil {
		mergeStats(&st, w.solver.Stats())
	} else {
		st = w.lastStats
	}
	return st
}

// aggregateStop explains an undecided portfolio: the portfolio deadline
// (Base.TimeLimit lives on the derived context) and outer cancellation
// dominate, then the lowest-indexed ran worker's reason.
func aggregateStop(outer, derived context.Context, workers []*worker) core.StopReason {
	if derived.Err() == context.DeadlineExceeded {
		return core.StopTimeout
	}
	if outer.Err() != nil {
		return core.StopCancelled
	}
	for _, w := range workers {
		if w.ran && w.stop != core.StopNone {
			return w.stop
		}
	}
	return core.StopCancelled
}

// mergeStats accumulates src into dst (sums, with maxima where a sum is
// meaningless; see result.Stats.Merge). StopReason is left to the caller.
func mergeStats(dst *core.Stats, src core.Stats) { dst.Merge(src) }

// shareKey canonicalizes a shared constraint for per-worker deduplication.
func shareKey(sc core.Shared) string {
	lits := append([]qbf.Lit(nil), sc.Lits...)
	sort.Slice(lits, func(i, j int) bool { return lits[i] < lits[j] })
	var sb strings.Builder
	if sc.IsCube {
		sb.WriteByte('c')
	} else {
		sb.WriteByte('n')
	}
	for _, l := range lits {
		fmt.Fprintf(&sb, " %d", l)
	}
	return sb.String()
}

func capNodes(n int64) int64 {
	if n <= 0 || n > maxSliceNodes {
		return maxSliceNodes
	}
	return n
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// BackendFunc adapts a portfolio configuration to the batch-harness
// backend signature (see bench.SolveBackend): the per-solve core.Options
// become the portfolio's Base budgets, and the merged portfolio result
// collapses into a single core.Result.
func BackendFunc(opts Options) func(ctx context.Context, q *qbf.QBF, opt core.Options) (core.Result, error) {
	return func(ctx context.Context, q *qbf.QBF, opt core.Options) (core.Result, error) {
		c := opts
		c.Base = opt
		rep, err := Solve(ctx, q, c)
		if err != nil {
			return core.Result{}, err
		}
		return core.Result{Verdict: rep.Verdict, Stats: rep.Stats}, rep.Err()
	}
}
