package invariant

import (
	"strings"
	"testing"

	"repro/internal/qbf"
)

func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected a panic containing %q", want)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v does not contain %q", r, want)
		}
	}()
	f()
}

func TestViolatedAndCheck(t *testing.T) {
	mustPanic(t, "invariant violated: boom 42", func() { Violated("boom %d", 42) })
	mustPanic(t, "invariant violated: cond", func() { Check(false, "cond") })
	Check(true, "must not fire")
	Must(nil, "ok")
	mustPanic(t, "ctx", func() { Must(errTest{}, "ctx") })
}

type errTest struct{}

func (errTest) Error() string { return "synthetic" }

// paperTree builds the running example of the paper: ∃1 (∀2 ∃3,4 ; ∀5 ∃6,7).
func paperTree() *qbf.Prefix {
	p := qbf.NewPrefix(7)
	root := p.AddBlock(nil, qbf.Exists, 1)
	y1 := p.AddBlock(root, qbf.Forall, 2)
	p.AddBlock(y1, qbf.Exists, 3, 4)
	y2 := p.AddBlock(root, qbf.Forall, 5)
	p.AddBlock(y2, qbf.Exists, 6, 7)
	p.Finalize()
	return p
}

// gnarlyTree builds a shape with same-quantifier parent/child blocks plus
// branching — the shape on which the interval test is inexact.
func gnarlyTree() *qbf.Prefix {
	p := qbf.NewPrefix(6)
	root := p.AddBlock(nil, qbf.Exists, 1)
	p.AddBlock(root, qbf.Forall, 2)
	e3 := p.AddBlock(root, qbf.Exists, 3) // same-quantifier child of the root
	p.AddBlock(e3, qbf.Forall, 4)
	p.AddBlock(nil, qbf.Forall, 5) // sibling root
	// Variable 6 stays free.
	p.Finalize()
	return p
}

func TestCheckPrefixAcceptsWellFormedTrees(t *testing.T) {
	trees := map[string]*qbf.Prefix{
		"paper":  paperTree(),
		"gnarly": gnarlyTree(),
		"prenex": qbf.NewPrenexPrefix(4,
			qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{1, 2}},
			qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{3, 4}}),
		"empty": qbf.NewPrefix(3),
	}
	for name, p := range trees {
		p.Finalize()
		if err := CheckPrefix(p); err != nil {
			t.Errorf("%s: CheckPrefix: %v", name, err)
		}
		if err := CheckOrder(p, 512, 1); err != nil {
			t.Errorf("%s: CheckOrder: %v", name, err)
		}
	}
}

func TestCheckOrderSamplesLargeTrees(t *testing.T) {
	// More than 16 variables forces the sampling path.
	p := qbf.NewPrefix(40)
	cur := p.AddBlock(nil, qbf.Exists, 1, 2)
	q := qbf.Forall
	for v := 3; v <= 40; v += 2 {
		cur = p.AddBlock(cur, q, qbf.VarOf(v), qbf.VarOf(v+1))
		q = q.Dual()
	}
	p.Finalize()
	if err := CheckPrefix(p); err != nil {
		t.Fatalf("CheckPrefix: %v", err)
	}
	if err := CheckOrder(p, 2048, 7); err != nil {
		t.Fatalf("CheckOrder: %v", err)
	}
}

func TestCheckLits(t *testing.T) {
	if err := CheckLits([]qbf.Lit{1, -2, 3}); err != nil {
		t.Errorf("clean literal set rejected: %v", err)
	}
	if err := CheckLits([]qbf.Lit{1, -2, 1}); err == nil {
		t.Error("duplicate literal not detected")
	}
	if err := CheckLits([]qbf.Lit{1, -1}); err == nil {
		t.Error("complementary pair not detected")
	}
	if err := CheckLits([]qbf.Lit{1, qbf.NoLit}); err == nil {
		t.Error("zero literal not detected")
	}
}

func TestCheckClauseReduced(t *testing.T) {
	// ∀1 ∃2: {¬1, 2} is reduced (1 ≺ 2 witnesses the universal).
	p := qbf.NewPrenexPrefix(2,
		qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{1}},
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{2}})
	if err := CheckClauseReduced(p, []qbf.Lit{-1, 2}); err != nil {
		t.Errorf("reduced clause rejected: %v", err)
	}
	// ∃1 ∀2: {1, 2} has a trailing universal — not reduced.
	q := qbf.NewPrenexPrefix(2,
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{1}},
		qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{2}})
	if err := CheckClauseReduced(q, []qbf.Lit{1, 2}); err == nil {
		t.Error("unreduced clause accepted")
	}
	// Non-prenex: ∃1 (∀2 ∃3 ; ∀4): universal 4 has no existential in *its*
	// scope, so {3, 4} is not reduced even though an existential is present.
	tr := qbf.NewPrefix(4)
	root := tr.AddBlock(nil, qbf.Exists, 1)
	b2 := tr.AddBlock(root, qbf.Forall, 2)
	tr.AddBlock(b2, qbf.Exists, 3)
	tr.AddBlock(root, qbf.Forall, 4)
	tr.Finalize()
	if err := CheckClauseReduced(tr, []qbf.Lit{3, 4}); err == nil {
		t.Error("cross-branch universal accepted as reduced")
	}
	if err := CheckClauseReduced(tr, []qbf.Lit{-2, 3}); err != nil {
		t.Errorf("in-scope universal rejected: %v", err)
	}
}

func TestCheckCubeReduced(t *testing.T) {
	// ∃1 ∀2: [1, 2] is reduced (1 ≺ 2 witnesses the existential).
	p := qbf.NewPrenexPrefix(2,
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{1}},
		qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{2}})
	if err := CheckCubeReduced(p, []qbf.Lit{1, 2}); err != nil {
		t.Errorf("reduced cube rejected: %v", err)
	}
	// ∀1 ∃2: [1, 2] has a trailing existential — not reduced.
	q := qbf.NewPrenexPrefix(2,
		qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{1}},
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{2}})
	if err := CheckCubeReduced(q, []qbf.Lit{1, 2}); err == nil {
		t.Error("unreduced cube accepted")
	}
}
