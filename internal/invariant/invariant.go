// Package invariant is the correctness backstop of the solver stack. It
// has two layers:
//
//   - Violated/Check, the designated panic funnel of lint rule L3: library
//     packages must report broken internal invariants through it (or carry
//     an explicit //lint:allow L3 justification), which keeps the set of
//     process-crashing sites greppable and reviewable;
//   - deep structural checkers over the public qbf API — prefix-tree
//     well-formedness after Finalize, algebraic laws of the partial prefix
//     order ≺, and the universal/existential reduction invariants learned
//     constraints must satisfy. internal/core wires these (plus checks over
//     its private state) into the search loop behind Options.CheckInvariants
//     and the qbfdebug build tag.
//
// The checkers return errors rather than panicking so test suites can
// assert on failures; runtime call sites convert a non-nil error into a
// Violated panic.
package invariant

import "fmt"

// Violated reports a violated internal invariant by panicking with a
// formatted message. It never returns.
func Violated(format string, args ...any) {
	panic("invariant violated: " + fmt.Sprintf(format, args...))
}

// Check panics via Violated when cond is false.
func Check(cond bool, format string, args ...any) {
	if !cond {
		Violated(format, args...)
	}
}

// Must panics via Violated when err is non-nil, prefixing the given
// context. It adapts the error-returning deep checkers to runtime gates.
func Must(err error, context string) {
	if err != nil {
		Violated("%s: %v", context, err)
	}
}
