package invariant

import (
	"fmt"

	"repro/internal/qbf"
)

// CheckLits validates basic literal-set hygiene shared by clauses and
// cubes: no zero literal, no duplicate variable (which covers both
// duplicates and complementary pairs — a learned constraint must mention a
// variable at most once).
func CheckLits(lits []qbf.Lit) error {
	seen := make(map[qbf.Var]qbf.Lit, len(lits))
	for _, l := range lits {
		if l == qbf.NoLit {
			return fmt.Errorf("zero literal in constraint %v", lits)
		}
		if prev, dup := seen[l.Var()]; dup {
			if prev == l {
				return fmt.Errorf("duplicate literal %d in constraint %v", l, lits)
			}
			return fmt.Errorf("complementary literals %d and %d in constraint %v", prev, l, lits)
		}
		seen[l.Var()] = l
	}
	return nil
}

// CheckClauseReduced reports whether the clause is universally reduced
// with respect to the partial prefix order ≺ of p (Lemma 3): every
// universal literal must have some existential literal of the clause in
// its scope, i.e. ∃ existential x with |l| ≺ |x|. Learned clauses must
// satisfy this after every Q-resolution step, or the contradictory-clause
// test of Lemma 4 silently weakens.
func CheckClauseReduced(p *qbf.Prefix, lits []qbf.Lit) error {
	if err := CheckLits(lits); err != nil {
		return err
	}
	for _, l := range lits {
		if p.QuantOf(l.Var()) != qbf.Forall {
			continue
		}
		witnessed := false
		for _, x := range lits {
			if p.QuantOf(x.Var()) == qbf.Exists && p.Before(l.Var(), x.Var()) {
				witnessed = true
				break
			}
		}
		if !witnessed {
			return fmt.Errorf("clause %v not universally reduced: universal %d has no existential in its scope", lits, l)
		}
	}
	return nil
}

// CheckCubeReduced is the dual test for cubes (goods): every existential
// literal must have some universal literal of the cube in its scope, or
// existential reduction would have deleted it.
func CheckCubeReduced(p *qbf.Prefix, lits []qbf.Lit) error {
	if err := CheckLits(lits); err != nil {
		return err
	}
	for _, l := range lits {
		if p.QuantOf(l.Var()) != qbf.Exists {
			continue
		}
		witnessed := false
		for _, u := range lits {
			if p.QuantOf(u.Var()) == qbf.Forall && p.Before(l.Var(), u.Var()) {
				witnessed = true
				break
			}
		}
		if !witnessed {
			return fmt.Errorf("cube %v not existentially reduced: existential %d has no universal in its scope", lits, l)
		}
	}
	return nil
}
