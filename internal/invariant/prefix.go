package invariant

import (
	"fmt"
	"math/rand"

	"repro/internal/qbf"
)

// CheckPrefix validates the structural well-formedness of a finalized
// prefix: block ids are the DFS preorder, levels grow exactly at
// quantifier alternations, the structural DFS intervals realize the
// parenthesis theorem (children nest, siblings are disjoint), every
// variable agrees with its block on quantifier/level/timestamps, and no
// variable is bound twice. It returns the first violation found, or nil.
func CheckPrefix(p *qbf.Prefix) error {
	blocks := p.Blocks()
	if len(blocks) == 0 && len(p.Roots()) > 0 {
		return fmt.Errorf("prefix has roots but no finalized blocks (Finalize not called?)")
	}
	for i, b := range blocks {
		if b.ID() != i {
			return fmt.Errorf("block %d carries id %d (Blocks() must be DFS preorder)", i, b.ID())
		}
	}

	seen := make(map[qbf.Var]int) // var → block id
	var walk func(b *qbf.Block, parent *qbf.Block) error
	walk = func(b *qbf.Block, parent *qbf.Block) error {
		if b.Parent() != parent {
			return fmt.Errorf("block %d has wrong parent pointer", b.ID())
		}
		switch {
		case parent == nil:
			if b.Level() != 1 {
				return fmt.Errorf("root block %d has level %d, want 1", b.ID(), b.Level())
			}
		case parent.Quant == b.Quant:
			if b.Level() != parent.Level() {
				return fmt.Errorf("same-quantifier child block %d has level %d, parent has %d",
					b.ID(), b.Level(), parent.Level())
			}
		default:
			if b.Level() != parent.Level()+1 {
				return fmt.Errorf("alternating child block %d has level %d, parent has %d",
					b.ID(), b.Level(), parent.Level())
			}
		}
		sd, sf := b.Interval()
		if sd > sf {
			return fmt.Errorf("block %d has inverted structural interval [%d,%d]", b.ID(), sd, sf)
		}
		if parent != nil && !parent.AncestorOf(b) {
			return fmt.Errorf("parent interval of block %d does not contain the child's", b.ID())
		}
		for _, v := range b.Vars {
			if v < qbf.MinVar {
				return fmt.Errorf("block %d binds invalid variable %d", b.ID(), v)
			}
			if prev, dup := seen[v]; dup {
				return fmt.Errorf("variable %d bound by both block %d and block %d", v, prev, b.ID())
			}
			seen[v] = b.ID()
			if p.BlockOf(v) != b {
				return fmt.Errorf("BlockOf(%d) disagrees with the tree walk", v)
			}
			if p.QuantOf(v) != b.Quant {
				return fmt.Errorf("QuantOf(%d) = %v, block %d has %v", v, p.QuantOf(v), b.ID(), b.Quant)
			}
			if p.Level(v) != b.Level() {
				return fmt.Errorf("Level(%d) = %d, block %d has %d", v, p.Level(v), b.ID(), b.Level())
			}
			//lint:allow L1 the checker validates the raw timestamps themselves
			if p.D(v) > p.F(v) {
				return fmt.Errorf("variable %d has inverted timestamps d=%d f=%d", v, p.D(v), p.F(v))
			}
		}
		// Sibling structural intervals must be pairwise disjoint and the
		// alternation timestamps of children must nest inside the parent's.
		for ci, c := range b.Children {
			if err := checkNested(p, b, c); err != nil {
				return err
			}
			for _, c2 := range b.Children[ci+1:] {
				if overlap(c, c2) {
					return fmt.Errorf("sibling blocks %d and %d have overlapping intervals", c.ID(), c2.ID())
				}
			}
			if err := walk(c, b); err != nil {
				return err
			}
		}
		return nil
	}
	for i, r := range p.Roots() {
		for _, r2 := range p.Roots()[i+1:] {
			if overlap(r, r2) {
				return fmt.Errorf("sibling roots %d and %d have overlapping intervals", r.ID(), r2.ID())
			}
		}
		if err := walk(r, nil); err != nil {
			return err
		}
	}
	if got := p.NumBound(); got != len(seen) {
		return fmt.Errorf("NumBound() = %d but the tree binds %d variables", got, len(seen))
	}
	return nil
}

// checkNested verifies the parenthesis nesting of the per-variable
// alternation timestamps across a parent/child edge: a child's [d,f]
// interval lies inside the parent's. Blocks without variables are skipped
// (their timestamps are not observable through the public API).
func checkNested(p *qbf.Prefix, parent, child *qbf.Block) error {
	if len(parent.Vars) == 0 || len(child.Vars) == 0 {
		return nil
	}
	pv, cv := parent.Vars[0], child.Vars[0]
	//lint:allow L1 the checker validates the raw timestamps themselves
	if p.D(cv) < p.D(pv) || p.F(cv) > p.F(pv) {
		return fmt.Errorf("timestamps of block %d ([%d,%d]) not nested in parent %d ([%d,%d])",
			child.ID(), p.D(cv), p.F(cv), parent.ID(), p.D(pv), p.F(pv))
	}
	return nil
}

func overlap(a, b *qbf.Block) bool {
	asd, asf := a.Interval()
	bsd, bsf := b.Interval()
	return asd <= bsf && bsd <= asf
}

// CheckOrder spot-checks the algebraic laws of the partial prefix order ≺
// on sampled pairs and triples of variables (all pairs/triples when the
// variable count is small): irreflexivity, antisymmetry, transitivity,
// strict level growth along ≺, and the free-variable conventions (a free
// variable precedes every bound one and follows none). The sampling is
// deterministic in seed.
func CheckOrder(p *qbf.Prefix, samples int, seed int64) error {
	vars := p.Vars()
	// Include one variable beyond the bound set, if representable, to
	// exercise the free-variable rules.
	var free qbf.Var
	if p.MaxVar() > 0 {
		for v := qbf.MinVar; v.Int() <= p.MaxVar(); v++ {
			if !p.Bound(v) {
				free = v
				break
			}
		}
	}
	pool := vars
	if free != 0 {
		pool = append(append([]qbf.Var(nil), vars...), free)
	}
	if len(pool) == 0 {
		return nil
	}

	check2 := func(a, b qbf.Var) error {
		if a == b && p.Before(a, a) {
			return fmt.Errorf("Before(%d,%d): ≺ must be irreflexive", a, a)
		}
		ab, ba := p.Before(a, b), p.Before(b, a)
		if a != b && ab && ba {
			return fmt.Errorf("Before(%d,%d) and Before(%d,%d) both hold: ≺ must be antisymmetric", a, b, b, a)
		}
		if ab && p.Bound(a) && p.Bound(b) && p.Level(a) >= p.Level(b) {
			return fmt.Errorf("Before(%d,%d) holds but levels are %d ≥ %d", a, b, p.Level(a), p.Level(b))
		}
		if !p.Bound(a) && p.Bound(b) && !ab {
			return fmt.Errorf("free variable %d must precede bound variable %d", a, b)
		}
		if p.Bound(a) && !p.Bound(b) && ab {
			return fmt.Errorf("bound variable %d must not precede free variable %d", a, b)
		}
		if (ab || ba) != p.Comparable(a, b) {
			return fmt.Errorf("Comparable(%d,%d) disagrees with Before", a, b)
		}
		return nil
	}
	check3 := func(a, b, c qbf.Var) error {
		if p.Before(a, b) && p.Before(b, c) && !p.Before(a, c) {
			return fmt.Errorf("≺ not transitive on (%d, %d, %d)", a, b, c)
		}
		return nil
	}

	if len(pool) <= 16 {
		for _, a := range pool {
			for _, b := range pool {
				if err := check2(a, b); err != nil {
					return err
				}
				for _, c := range pool {
					if err := check3(a, b, c); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < samples; i++ {
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		c := pool[rng.Intn(len(pool))]
		if err := check2(a, b); err != nil {
			return err
		}
		if err := check3(a, b, c); err != nil {
			return err
		}
	}
	return nil
}
