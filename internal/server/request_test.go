package server

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/qbf"
)

const tinyTrue = "p cnf 2 2\ne 1 2 0\n1 0\n-2 0\n"
const tinyFalse = "p cnf 1 2\na 1 0\n1 0\n-1 0\n"

// A non-prenex QTREE instance (the paper's running example prefix:
// two universal branches under the root existential).
const tinyTree = `p qtree 7 3
q e 1 0
q a 2 0
q e 3 4 0
u 2
q a 5 0
q e 6 7 0
u 3
1 3 4 0
2 -3 0
1 6 -7 0
`

func TestParseSolveRequest(t *testing.T) {
	req, err := ParseSolveRequest([]byte(`{"formula":"p cnf 1 1\ne 1 0\n1 0\n","max_time_ms":500,"witness":true}`))
	if err != nil {
		t.Fatal(err)
	}
	if req.MaxTimeMS != 500 || !req.Witness || req.Formula == "" {
		t.Fatalf("misdecoded: %+v", req)
	}
}

func TestParseSolveRequestRejectsUnknownFields(t *testing.T) {
	// A typoed budget field must be an error, not a silently absent budget.
	_, err := ParseSolveRequest([]byte(`{"formula":"x","max_time":500}`))
	if err == nil || !strings.Contains(err.Error(), "max_time") {
		t.Fatalf("unknown field not rejected: %v", err)
	}
}

func TestParseSolveRequestRejectsTrailingData(t *testing.T) {
	_, err := ParseSolveRequest([]byte(`{"formula":"x"} {"formula":"y"}`))
	if err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing document not rejected: %v", err)
	}
}

func TestParseSolveRequestRejectsGarbage(t *testing.T) {
	if _, err := ParseSolveRequest([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestBuildSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		req  SolveRequest
		want string // substring of the error
	}{
		{"empty formula", SolveRequest{}, "empty formula"},
		{"bad formula", SolveRequest{Formula: "p cnf oops"}, "parsing formula"},
		{"negative budget", SolveRequest{Formula: tinyTrue, MaxTimeMS: -1}, "negative budget"},
		{"unknown mode", SolveRequest{Formula: tinyTrue, Mode: "magic"}, "unknown mode"},
		{"unknown strategy", SolveRequest{Formula: tinyTrue, Mode: "to", Strategy: "zz"}, "unknown strategy"},
		{"strategy with po", SolveRequest{Formula: tinyTrue, Strategy: "eu-au"}, "only meaningful"},
		{"strategy with portfolio", SolveRequest{Formula: tinyTrue, Mode: "portfolio", Strategy: "eu-au"}, "only meaningful"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := buildSpec(&c.req, Caps{})
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestBuildSpecModesAndKeys(t *testing.T) {
	cases := []struct {
		req     SolveRequest
		mode    core.Mode
		key     string
		portfol bool
	}{
		{SolveRequest{Formula: tinyTrue}, core.ModePartialOrder, "po", false},
		{SolveRequest{Formula: tinyTrue, Mode: "po"}, core.ModePartialOrder, "po", false},
		{SolveRequest{Formula: tinyTrue, Mode: "to"}, core.ModeTotalOrder, "to:eu-au", false},
		{SolveRequest{Formula: tinyTree, Mode: "to", Strategy: "ed-ad"}, core.ModeTotalOrder, "to:ed-ad", false},
		{SolveRequest{Formula: tinyTrue, Mode: "portfolio"}, 0, "portfolio", true},
	}
	for _, c := range cases {
		spec, err := buildSpec(&c.req, Caps{})
		if err != nil {
			t.Fatalf("%+v: %v", c.req, err)
		}
		if spec.key != c.key || spec.portfolio != c.portfol {
			t.Errorf("%+v: key=%q portfolio=%v, want %q/%v", c.req, spec.key, spec.portfolio, c.key, c.portfol)
		}
		if !c.portfol && spec.opt.Mode != c.mode {
			t.Errorf("%+v: mode=%v, want %v", c.req, spec.opt.Mode, c.mode)
		}
	}
}

func TestBuildSpecPrenexesTreeForTotalOrder(t *testing.T) {
	spec, err := buildSpec(&SolveRequest{Formula: tinyTree, Mode: "to"}, Caps{})
	if err != nil {
		t.Fatal(err)
	}
	if !spec.q.Prefix.IsPrenex() {
		t.Fatal("mode to on a tree input must prenex the prefix")
	}
	// Mode po keeps the tree.
	spec, err = buildSpec(&SolveRequest{Formula: tinyTree}, Caps{})
	if err != nil {
		t.Fatal(err)
	}
	if spec.q.Prefix.IsPrenex() {
		t.Fatal("mode po must keep the non-prenex prefix")
	}
}

func TestBuildSpecClampsBudgets(t *testing.T) {
	caps := Caps{MaxTime: time.Second, MaxNodes: 100, MaxMem: 1 << 20}
	cases := []struct {
		name      string
		req       SolveRequest
		wantTime  time.Duration
		wantNodes int64
		wantMem   int64
	}{
		{"zero asks get the caps", SolveRequest{Formula: tinyTrue},
			time.Second, 100, 1 << 20},
		{"over-asks are clamped", SolveRequest{Formula: tinyTrue, MaxTimeMS: 60_000, MaxNodes: 1e6, MaxMemMB: 64},
			time.Second, 100, 1 << 20},
		{"under-asks are kept", SolveRequest{Formula: tinyTrue, MaxTimeMS: 100, MaxNodes: 7, MaxMemMB: 1},
			100 * time.Millisecond, 7, 1 << 20}, // 1 MiB ask == the cap
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			spec, err := buildSpec(&c.req, caps)
			if err != nil {
				t.Fatal(err)
			}
			if spec.opt.TimeLimit != c.wantTime || spec.opt.NodeLimit != c.wantNodes || spec.opt.MemLimit != c.wantMem {
				t.Fatalf("got time=%v nodes=%d mem=%d, want %v/%d/%d",
					spec.opt.TimeLimit, spec.opt.NodeLimit, spec.opt.MemLimit,
					c.wantTime, c.wantNodes, c.wantMem)
			}
		})
	}
	// Uncapped server: requests pass through, zero stays unlimited.
	spec, err := buildSpec(&SolveRequest{Formula: tinyTrue, MaxNodes: 42}, Caps{})
	if err != nil {
		t.Fatal(err)
	}
	if spec.opt.NodeLimit != 42 || spec.opt.TimeLimit != 0 || spec.opt.MemLimit != 0 {
		t.Fatalf("uncapped passthrough broken: %+v", spec.opt)
	}
}

func TestWitnessInts(t *testing.T) {
	model := map[qbf.Var]bool{1: true, 3: false, 4: true}
	got := witnessInts(model, 4)
	want := []int{1, -3, 4}
	if len(got) != len(want) {
		t.Fatalf("witnessInts = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("witnessInts = %v, want %v", got, want)
		}
	}
	if witnessInts(nil, 4) != nil {
		t.Fatal("nil model must give nil witness")
	}
}
